(** Parameterized hardware descriptions (paper §V-A, §VI).

    One record captures what both the analytic roofline model and the
    ground-truth simulator need about a core and its memory hierarchy.
    The analytic model uses only the paper's "key hardware
    parameters"; the structural cache fields, division latency and
    vectorization efficiency feed the simulator. *)

type cache_level = {
  size_bytes : int;
  line_bytes : int;
  assoc : int;  (** ways; the simulator builds [size/(line*assoc)] sets *)
  latency_cycles : float;  (** load-to-use *)
}

type t = {
  name : string;
  freq_ghz : float;
  issue_width : float;  (** instructions sustained per cycle *)
  vector_width : int;  (** double-precision SIMD lanes *)
  fma : bool;  (** fused multiply-add doubles peak flops per issue *)
  flop_issue_per_cycle : float;
      (** scalar floating point instructions issued per cycle *)
  div_latency : float;
      (** unpipelined cycles per FP division (simulator only) *)
  vec_efficiency : float;
      (** fraction of declared SIMD lanes the native compiler actually
          exploits (simulator only); effective lanes are
          [1 + (min(vec, vector_width) - 1) * vec_efficiency] *)
  l1 : cache_level;
  l2 : cache_level;
  mem_latency_cycles : float;
  mem_bw_gbs : float;  (** achievable per-core DRAM bandwidth, GB/s *)
  mlp : float;
      (** memory-level parallelism: outstanding misses that overlap *)
}

val cycles_per_sec : t -> float

(** Peak scalar flops/second: issue rate x (2 if FMA). *)
val scalar_flops : t -> float

(** Peak vector flops/second (the roofline "peak" line). *)
val peak_flops : t -> float

val pp : t Fmt.t
