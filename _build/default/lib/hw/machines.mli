(** Machine catalog (paper §VI).

    Parameters follow the paper's experimental methodology where
    stated; remaining microarchitectural details use public
    specifications of the two processors. *)

(** IBM Blue Gene/Q node: 1.6 GHz in-order Power A2 core, 4-wide QPX
    FMA, 16 KB L1, 32 MB shared L2 at 51 cycles, DRAM at 180 cycles. *)
val bgq : Machine.t

(** Intel Xeon E5-2420 core: 1.9 GHz, AVX, aggressive compiler
    vectorization, small shared LLC slice. *)
val xeon : Machine.t

(** A hypothetical co-design target: plentiful flops, relatively
    starved memory. *)
val future : Machine.t

val all : Machine.t list

(** Lookup by name, tolerant of case and punctuation
    ("bgq" = "BG/Q"). *)
val find : string -> Machine.t option

(** @raise Invalid_argument when unknown. *)
val find_exn : string -> Machine.t
