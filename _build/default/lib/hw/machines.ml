(** Machine catalog (paper §VI).

    Parameters follow the paper's experimental methodology where
    stated: the BG/Q Power A2 core runs at 1.6 GHz with 16 KB L1
    caches, a 32 MB shared L2 measured at 51 cycles and DRAM at 180
    cycles; the Xeon E5-2420 runs at 1.9 GHz with wider SIMD, a smaller
    effective shared cache slice and a larger (in cycles) memory
    latency but faster processing.  Remaining microarchitectural
    details (associativities, bandwidth shares, division latencies) use
    public specifications of the two processors.

    [future] is a hypothetical co-design target used by the examples:
    plentiful flops, relatively starved memory — the kind of
    conceptual machine the paper motivates studying before it can be
    simulated. *)

let bgq : Machine.t =
  {
    name = "BG/Q";
    freq_ghz = 1.6;
    issue_width = 2.;
    vector_width = 4;
    (* QPX *)
    fma = true;
    flop_issue_per_cycle = 1.;
    div_latency = 32.;
    vec_efficiency = 0.4;
    l1 =
      {
        size_bytes = 16 * 1024;
        line_bytes = 64;
        assoc = 8;
        latency_cycles = 6.;
      };
    l2 =
      {
        size_bytes = 32 * 1024 * 1024;
        line_bytes = 128;
        assoc = 16;
        latency_cycles = 51.;
      };
    mem_latency_cycles = 180.;
    mem_bw_gbs = 1.8;
    (* ~28.5 GB/s per node / 16 cores *)
    mlp = 4.;
  }

let xeon : Machine.t =
  {
    name = "Xeon";
    freq_ghz = 1.9;
    issue_width = 4.;
    vector_width = 4;
    (* AVX, 256-bit DP *)
    fma = false;
    flop_issue_per_cycle = 2.;
    div_latency = 14.;
    vec_efficiency = 1.0;
    l1 =
      {
        size_bytes = 32 * 1024;
        line_bytes = 64;
        assoc = 8;
        latency_cycles = 4.;
      };
    l2 =
      {
        size_bytes = 1280 * 1024;
        (* 256KB private L2 + LLC slice, folded into one level *)
        line_bytes = 64;
        assoc = 16;
        latency_cycles = 30.;
      };
    mem_latency_cycles = 220.;
    mem_bw_gbs = 3.5;
    mlp = 8.;
  }

let future : Machine.t =
  {
    name = "Future";
    freq_ghz = 2.4;
    issue_width = 6.;
    vector_width = 8;
    fma = true;
    flop_issue_per_cycle = 2.;
    div_latency = 18.;
    vec_efficiency = 1.0;
    l1 =
      {
        size_bytes = 64 * 1024;
        line_bytes = 64;
        assoc = 8;
        latency_cycles = 5.;
      };
    l2 =
      {
        size_bytes = 4 * 1024 * 1024;
        line_bytes = 64;
        assoc = 16;
        latency_cycles = 40.;
      };
    mem_latency_cycles = 300.;
    mem_bw_gbs = 4.0;
    mlp = 10.;
  }

let all = [ bgq; xeon; future ]

let find name =
  (* Accept "BG/Q", "bgq", "Xeon", ... *)
  let norm s =
    String.lowercase_ascii s
    |> String.to_seq
    |> Seq.filter (fun c -> c <> '/' && c <> '-' && c <> ' ')
    |> String.of_seq
  in
  let n = norm name in
  List.find_opt (fun (m : Machine.t) -> norm m.name = n) all

let find_exn name =
  match find name with
  | Some m -> m
  | None ->
    invalid_arg
      (Fmt.str "unknown machine %S (expected one of: %s)" name
         (String.concat ", " (List.map (fun (m : Machine.t) -> m.name) all)))
