(** Hardware design-space exploration: machine variants along one
    design axis, for sweeping conceptual architectures without any
    target execution (the point of the paper's title). *)

type axis =
  | Mem_bandwidth of float list  (** GB/s per core *)
  | Mem_latency of float list  (** cycles *)
  | Vector_width of int list
  | Issue_width of float list
  | Frequency of float list  (** GHz *)
  | L2_size of int list  (** bytes *)
  | Div_latency of float list

val axis_name : axis -> string

(** Machine variants along [axis], tagged with the swept value. *)
val variants : Machine.t -> axis -> (string * Machine.t) list

(** Quarter to quadruple the base machine's memory bandwidth. *)
val default_bandwidth_sweep : Machine.t -> (string * Machine.t) list
