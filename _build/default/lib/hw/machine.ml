(** Parameterized hardware descriptions (paper §V-A, §VI).

    One record captures everything both the analytic roofline model and
    the ground-truth simulator need about a core and its memory
    hierarchy.  The analytic model uses only the "key hardware
    parameters" the paper lists — peak flop rate, frequency,
    instruction latency, issue width, vector width, cache and memory
    latencies, peak memory bandwidth; the simulator additionally uses
    the structural cache fields and the division latency. *)

type cache_level = {
  size_bytes : int;
  line_bytes : int;
  assoc : int;  (** ways; the simulator builds [size/(line*assoc)] sets *)
  latency_cycles : float;  (** load-to-use *)
}

type t = {
  name : string;
  freq_ghz : float;
  issue_width : float;  (** instructions sustained per cycle *)
  vector_width : int;  (** double-precision SIMD lanes *)
  fma : bool;  (** fused multiply-add doubles peak flops per issue *)
  flop_issue_per_cycle : float;
      (** scalar floating point instructions issued per cycle *)
  div_latency : float;
      (** unpipelined cycles per FP division (simulator only) *)
  vec_efficiency : float;
      (** fraction of the declared SIMD lanes the native compiler
          actually exploits (simulator only): effective lanes are
          [1 + (min(vec, vector_width) - 1) * vec_efficiency].  The
          paper observes gfortran on Xeon vectorizing aggressively
          while XL on BG/Q vectorizes selectively (§VII-A/B). *)
  l1 : cache_level;
  l2 : cache_level;
  mem_latency_cycles : float;
  mem_bw_gbs : float;  (** achievable per-core DRAM bandwidth, GB/s *)
  mlp : float;
      (** memory-level parallelism: outstanding misses that overlap *)
}

let cycles_per_sec m = m.freq_ghz *. 1e9

(** Peak scalar flops/second: issue rate x (2 if FMA). *)
let scalar_flops m =
  m.flop_issue_per_cycle *. (if m.fma then 2. else 1.) *. cycles_per_sec m

(** Peak vector flops/second (the roofline "peak" line). *)
let peak_flops m = scalar_flops m *. float_of_int m.vector_width

let pp ppf m =
  Fmt.pf ppf
    "@[<v>%s: %.2f GHz, issue %.1f/cyc, %d-wide SIMD%s@,\
     L1 %dKB/%dB/%d-way @%.0fcyc; L2 %dKB/%dB/%d-way @%.0fcyc@,\
     mem %.0f cyc, %.1f GB/s, MLP %.1f@]"
    m.name m.freq_ghz m.issue_width m.vector_width
    (if m.fma then "+FMA" else "")
    (m.l1.size_bytes / 1024) m.l1.line_bytes m.l1.assoc m.l1.latency_cycles
    (m.l2.size_bytes / 1024) m.l2.line_bytes m.l2.assoc m.l2.latency_cycles
    m.mem_latency_cycles m.mem_bw_gbs m.mlp
