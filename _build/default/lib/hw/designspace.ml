(** Hardware design-space exploration.

    The point of the paper's title: because projection needs no
    execution on the target, a designer can sweep architecture
    parameters of a {e conceptual} machine and watch how the
    application's hot spots and bottlenecks move.  This module builds
    machine variants along one design axis; the examples and benches
    combine it with the pipeline to produce sensitivity tables. *)

type axis =
  | Mem_bandwidth of float list  (** GB/s per core *)
  | Mem_latency of float list  (** cycles *)
  | Vector_width of int list
  | Issue_width of float list
  | Frequency of float list  (** GHz *)
  | L2_size of int list  (** bytes *)
  | Div_latency of float list

let axis_name = function
  | Mem_bandwidth _ -> "memory bandwidth (GB/s)"
  | Mem_latency _ -> "memory latency (cycles)"
  | Vector_width _ -> "vector width (DP lanes)"
  | Issue_width _ -> "issue width"
  | Frequency _ -> "frequency (GHz)"
  | L2_size _ -> "L2 size (bytes)"
  | Div_latency _ -> "division latency (cycles)"

(** Machine variants along [axis], each tagged with the swept value
    rendered as a string. *)
let variants (base : Machine.t) (axis : axis) : (string * Machine.t) list =
  let tag fmt v = Fmt.str fmt v in
  match axis with
  | Mem_bandwidth vs ->
    List.map
      (fun v ->
        ( tag "%.1f" v,
          { base with Machine.name = Fmt.str "%s/bw=%.1f" base.Machine.name v;
            mem_bw_gbs = v } ))
      vs
  | Mem_latency vs ->
    List.map
      (fun v ->
        ( tag "%.0f" v,
          { base with Machine.name = Fmt.str "%s/lat=%.0f" base.Machine.name v;
            mem_latency_cycles = v } ))
      vs
  | Vector_width vs ->
    List.map
      (fun v ->
        ( tag "%d" v,
          { base with Machine.name = Fmt.str "%s/vw=%d" base.Machine.name v;
            vector_width = v } ))
      vs
  | Issue_width vs ->
    List.map
      (fun v ->
        ( tag "%.0f" v,
          { base with Machine.name = Fmt.str "%s/iw=%.0f" base.Machine.name v;
            issue_width = v } ))
      vs
  | Frequency vs ->
    List.map
      (fun v ->
        ( tag "%.1f" v,
          { base with Machine.name = Fmt.str "%s/f=%.1f" base.Machine.name v;
            freq_ghz = v } ))
      vs
  | L2_size vs ->
    List.map
      (fun v ->
        ( tag "%dK" (v / 1024),
          {
            base with
            Machine.name = Fmt.str "%s/l2=%dK" base.Machine.name (v / 1024);
            l2 = { base.Machine.l2 with Machine.size_bytes = v };
          } ))
      vs
  | Div_latency vs ->
    List.map
      (fun v ->
        ( tag "%.0f" v,
          { base with Machine.name = Fmt.str "%s/div=%.0f" base.Machine.name v;
            div_latency = v } ))
      vs

(** A balanced sweep around [base] for quick exploration: halve and
    double the memory bandwidth. *)
let default_bandwidth_sweep (base : Machine.t) =
  let bw = base.Machine.mem_bw_gbs in
  variants base (Mem_bandwidth [ bw /. 4.; bw /. 2.; bw; bw *. 2.; bw *. 4. ])
