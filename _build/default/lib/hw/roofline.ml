(** Extended roofline performance model (paper §III-C, §V-A).

    For one execution of a code block with work vector [w], the model
    computes the computation time [tc], the memory time [tm], and the
    overlapped portion [t_overlap = min(tc,tm) * delta] with
    [delta = 1 - 1/flops] — small blocks cannot hide their memory
    accesses behind computation.  The block estimate is
    [t = tc + tm - t_overlap].

    Following the paper, the baseline model deliberately:
    - prices all floating point operations alike (divisions included),
    - assumes scalar issue (no SIMD),
    - assumes a constant cache hit ratio at each level.

    [opts] can switch on division-latency and vectorization awareness;
    the ablation benches use these to quantify the two error sources
    the paper identifies in §VII-B. *)

open Skope_bet

type opts = {
  hit_l1 : float;  (** constant L1 hit ratio (paper footnote: 0.85) *)
  hit_l2 : float;  (** constant L2 hit ratio for L1 misses *)
  vector_aware : bool;
      (** price vectorizable flops at SIMD throughput (off in paper) *)
  div_aware : bool;
      (** charge divisions their real latency (off in paper) *)
  ilp : float;
      (** fraction of the issue width real dependency chains sustain;
          1.0 is the paper's perfect-ILP assumption (§VII-C) *)
}

let default_opts =
  {
    hit_l1 = 0.85;
    hit_l2 = 0.85;
    vector_aware = false;
    div_aware = false;
    ilp = 1.0;
  }

type bound = Compute_bound | Memory_bound | Balanced

let pp_bound ppf = function
  | Compute_bound -> Fmt.string ppf "compute"
  | Memory_bound -> Fmt.string ppf "memory"
  | Balanced -> Fmt.string ppf "balanced"

type breakdown = {
  tc : float;  (** computation seconds *)
  tm : float;  (** memory seconds *)
  t_overlap : float;  (** overlapped seconds *)
  total : float;  (** tc + tm - t_overlap *)
  bound : bound;
}

let zero_breakdown =
  { tc = 0.; tm = 0.; t_overlap = 0.; total = 0.; bound = Balanced }

(** Degree of computation/memory overlap: blocks with more floating
    point work overlap better (paper §V-A). *)
let overlap_degree ~flops =
  if flops <= 1. then 0. else 1. -. (1. /. flops)

let compute_time ?(opts = default_opts) (m : Machine.t) (w : Work.t) =
  let cps = Machine.cycles_per_sec m in
  (* Floating point throughput term.  [vec_issue] was recorded at the
     lane count the compiler would use; a narrower machine caps it. *)
  let flop_instr =
    if opts.vector_aware then
      let vec_issue =
        Float.max w.vec_issue
          (w.vec_flops /. float_of_int (max 1 m.vector_width))
      in
      w.flops -. w.vec_flops +. vec_issue
    else w.flops
  in
  let flop_time = flop_instr /. Machine.scalar_flops m in
  let div_extra =
    if opts.div_aware then
      Float.max 0.
        ((w.divs *. m.div_latency /. cps) -. (w.divs /. Machine.scalar_flops m))
    else 0.
  in
  (* Issue bandwidth term over all instructions; vectorized flops
     issue as vector instructions. *)
  let issue_ops = Work.ops w -. w.flops +. flop_instr in
  let ilp = Float.min 1. (Float.max 0.05 opts.ilp) in
  let issue_time = issue_ops /. (m.issue_width *. ilp *. cps) in
  Float.max flop_time issue_time +. div_extra

let memory_time ?(opts = default_opts) (m : Machine.t) (w : Work.t) =
  let cps = Machine.cycles_per_sec m in
  let acc = Work.mem_accesses w in
  let l1 = acc *. opts.hit_l1 in
  let l2 = acc *. (1. -. opts.hit_l1) *. opts.hit_l2 in
  let dram = acc *. (1. -. opts.hit_l1) *. (1. -. opts.hit_l2) in
  let latency_time =
    ((l1 *. m.l1.latency_cycles)
    +. (l2 *. m.l2.latency_cycles)
    +. (dram *. m.mem_latency_cycles))
    /. m.mlp /. cps
  in
  (* DRAM traffic moves whole lines: each access that misses both
     levels fetches [l2.line_bytes]. *)
  let dram_bytes = dram *. float_of_int m.l2.line_bytes in
  let bw_time = dram_bytes /. (m.mem_bw_gbs *. 1e9) in
  Float.max latency_time bw_time

(** Estimate the run time of one execution of a block with work [w]
    on machine [m]. *)
let estimate ?(opts = default_opts) (m : Machine.t) (w : Work.t) : breakdown =
  if Work.is_zero w then zero_breakdown
  else begin
    let tc = compute_time ~opts m w in
    let tm = memory_time ~opts m w in
    let delta = overlap_degree ~flops:w.flops in
    let t_overlap = Float.min tc tm *. delta in
    let total = tc +. tm -. t_overlap in
    let bound =
      if tc > tm *. 1.25 then Compute_bound
      else if tm > tc *. 1.25 then Memory_bound
      else Balanced
    in
    { tc; tm; t_overlap; total; bound }
  end

(** Classic roofline attainable performance (flops/s) at operational
    intensity [oi] (flops/DRAM-byte): min(peak, oi * bandwidth).  Used
    by reports to position blocks under the roof. *)
let attainable ?(opts = default_opts) (m : Machine.t) ~oi =
  ignore opts;
  Float.min (Machine.peak_flops m) (oi *. m.mem_bw_gbs *. 1e9)
