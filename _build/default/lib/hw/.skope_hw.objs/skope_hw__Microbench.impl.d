lib/hw/microbench.ml: Ast Builder Fmt Machine Skope_bet Skope_skeleton Value
