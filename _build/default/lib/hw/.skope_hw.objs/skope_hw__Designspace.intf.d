lib/hw/designspace.mli: Machine
