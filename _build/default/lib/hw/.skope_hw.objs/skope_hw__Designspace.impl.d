lib/hw/designspace.ml: Fmt List Machine
