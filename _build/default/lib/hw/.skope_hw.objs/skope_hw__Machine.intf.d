lib/hw/machine.mli: Fmt
