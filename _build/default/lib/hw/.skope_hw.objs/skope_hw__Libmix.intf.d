lib/hw/libmix.mli: Skope_bet Work
