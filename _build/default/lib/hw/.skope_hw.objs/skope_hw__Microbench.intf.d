lib/hw/microbench.mli: Ast Fmt Machine Skope_bet Skope_skeleton Value
