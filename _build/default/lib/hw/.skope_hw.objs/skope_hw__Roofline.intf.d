lib/hw/roofline.mli: Fmt Machine Skope_bet Work
