lib/hw/roofline.ml: Float Fmt Machine Skope_bet Work
