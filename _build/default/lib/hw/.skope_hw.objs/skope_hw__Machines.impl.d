lib/hw/machines.ml: Fmt List Machine Seq String
