lib/hw/libmix.ml: List Map Option Skope_bet String Work
