lib/hw/machines.mli: Machine
