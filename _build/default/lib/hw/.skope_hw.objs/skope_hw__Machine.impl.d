lib/hw/machine.ml: Fmt
