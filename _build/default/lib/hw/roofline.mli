(** Extended roofline performance model (paper §III-C, §V-A).

    For one execution of a code block with work [w]:
    [t = tc + tm - t_overlap] where
    [t_overlap = min(tc, tm) * (1 - 1/flops)] — small blocks cannot
    hide their memory accesses behind computation.

    The baseline model deliberately prices all flops alike (divisions
    included), assumes scalar issue, and uses constant cache hit
    ratios; [opts] switches on the refinements the paper identifies as
    its two main error sources (§VII-B). *)

open Skope_bet

type opts = {
  hit_l1 : float;  (** constant L1 hit ratio (default 0.85) *)
  hit_l2 : float;  (** constant L2 hit ratio for L1 misses *)
  vector_aware : bool;  (** price vectorizable flops at SIMD rate *)
  div_aware : bool;  (** charge divisions their real latency *)
  ilp : float;
      (** sustained fraction of issue width (1.0 = the paper's
          perfect-ILP assumption, §VII-C); clamped to [0.05, 1] *)
}

val default_opts : opts

type bound = Compute_bound | Memory_bound | Balanced

val pp_bound : bound Fmt.t

type breakdown = {
  tc : float;  (** computation seconds *)
  tm : float;  (** memory seconds *)
  t_overlap : float;  (** overlapped seconds *)
  total : float;  (** [tc + tm - t_overlap] *)
  bound : bound;
}

val zero_breakdown : breakdown

(** [1 - 1/flops], clamped to 0 for tiny blocks. *)
val overlap_degree : flops:float -> float

val compute_time : ?opts:opts -> Machine.t -> Work.t -> float
val memory_time : ?opts:opts -> Machine.t -> Work.t -> float

(** Estimate one execution of a block with work [w] on machine [m]. *)
val estimate : ?opts:opts -> Machine.t -> Work.t -> breakdown

(** Classic roofline attainable flops/s at operational intensity
    [oi]: [min(peak, oi * bandwidth)]. *)
val attainable : ?opts:opts -> Machine.t -> oi:float -> float
