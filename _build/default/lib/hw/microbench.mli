(** Machine-characterization microbenchmarks (paper §VI methodology):
    cache-level latency probes (random gather sized to each level) and
    a stream-triad bandwidth probe, expressed as skeleton programs so
    any executor can run them. *)

open Skope_skeleton
open Skope_bet

type kind =
  | Latency of { footprint_bytes : int }
  | Bandwidth

type t = {
  name : string;
  kind : kind;
  program : Ast.program;
  inputs : (string * Value.t) list;
  accesses : float;  (** memory accesses the kernel performs *)
  bytes : float;  (** bytes it moves *)
}

val latency_probe : name:string -> footprint_bytes:int -> iters:int -> t
val stream_probe : name:string -> elems:int -> t

(** L1-, L2- and DRAM-resident latency probes plus a bandwidth
    stream, sized from the machine's cache geometry. *)
val suite : Machine.t -> t list

type measurement = {
  bench : t;
  cycles_per_access : float;
  gb_per_sec : float;
}

(** Derive characterization numbers from a probe run's cycle count. *)
val measure : t -> total_cycles:float -> freq_ghz:float -> measurement

val pp_measurement : measurement Fmt.t
