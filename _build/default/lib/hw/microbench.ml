(** Machine-characterization microbenchmarks (paper §VI).

    The paper derives its hardware parameters "with a series of in
    house micro benchmarks" — e.g. BG/Q's 51-cycle L2 and 180-cycle
    DRAM latencies.  This module builds those microbenchmarks as
    skeleton programs so the same methodology runs against any
    executor: a pointer-chase-style dependent gather sized to each
    cache level measures effective access latency, and a streaming
    triad measures effective bandwidth.  The benches use them (via the
    simulator) to cross-check that the machine models round-trip their
    own parameters. *)

open Skope_skeleton
open Skope_bet

type kind =
  | Latency of { footprint_bytes : int }
      (** random dependent gather over a working set of this size *)
  | Bandwidth  (** stream triad over a DRAM-sized working set *)

type t = {
  name : string;
  kind : kind;
  program : Ast.program;
  inputs : (string * Value.t) list;
  accesses : float;  (** memory accesses the kernel performs *)
  bytes : float;  (** bytes it moves *)
}

(** Dependent random gather: [iters] accesses at stride-defeating
    pseudo-random indices within [footprint_bytes] of 8-byte data. *)
let latency_probe ~name ~footprint_bytes ~iters : t =
  let elems = max 64 (footprint_bytes / 8) in
  let open Builder in
  let program =
    program ("ubench_" ^ name)
      ~globals:[ array "chase" [ var "elems" ] ]
      [
        func "main"
          [
            for_ ~label:"probe" "i" (int 0) (var "iters" - int 1)
              [
                load [ a_ "chase" [ var "i" * int 7919 % var "elems" ] ];
                comp ~iops:(int 1) ();
              ];
          ];
      ]
  in
  {
    name;
    kind = Latency { footprint_bytes };
    program;
    inputs = [ ("elems", Value.int elems); ("iters", Value.int iters) ];
    accesses = float_of_int iters;
    bytes = 8. *. float_of_int iters;
  }

(** Stream triad [a(i) = b(i) + s*c(i)] over a working set far larger
    than the last-level cache. *)
let stream_probe ~name ~elems : t =
  let open Builder in
  let program =
    program ("ubench_" ^ name)
      ~globals:
        [
          array "sa" [ var "elems" ]; array "sb" [ var "elems" ];
          array "sc" [ var "elems" ];
        ]
      [
        func "main"
          [
            for_ ~label:"triad" "i" (int 0) (var "elems" - int 1)
              [
                load [ a_ "sb" [ var "i" ]; a_ "sc" [ var "i" ] ];
                comp ~flops:(int 2) ~vec:4 ();
                store [ a_ "sa" [ var "i" ] ];
              ];
          ];
      ]
  in
  {
    name;
    kind = Bandwidth;
    program;
    inputs = [ ("elems", Value.int elems) ];
    accesses = 3. *. float_of_int elems;
    bytes = 24. *. float_of_int elems;
  }

(** The standard characterization suite for a machine: L1-, L2- and
    DRAM-resident latency probes plus a bandwidth stream. *)
let suite (m : Machine.t) : t list =
  [
    latency_probe ~name:"l1_latency"
      ~footprint_bytes:(m.Machine.l1.Machine.size_bytes / 2)
      ~iters:200_000;
    latency_probe ~name:"l2_latency"
      ~footprint_bytes:(min (m.Machine.l2.Machine.size_bytes / 2) (8 * 1024 * 1024))
      ~iters:200_000;
    latency_probe ~name:"mem_latency"
      ~footprint_bytes:(4 * m.Machine.l2.Machine.size_bytes)
      ~iters:100_000;
    stream_probe ~name:"stream_triad" ~elems:2_000_000;
  ]

type measurement = {
  bench : t;
  cycles_per_access : float;
  gb_per_sec : float;
}

(** Derive the characterization numbers from a run's total cycle
    count (produced by any executor of the probe program). *)
let measure (bench : t) ~total_cycles ~freq_ghz : measurement =
  let cycles_per_access = total_cycles /. bench.accesses in
  let seconds = total_cycles /. (freq_ghz *. 1e9) in
  let gb_per_sec = bench.bytes /. seconds /. 1e9 in
  { bench; cycles_per_access; gb_per_sec }

let pp_measurement ppf m =
  match m.bench.kind with
  | Latency { footprint_bytes } ->
    Fmt.pf ppf "%-14s %8d B footprint: %6.1f cycles/access" m.bench.name
      footprint_bytes m.cycles_per_access
  | Bandwidth ->
    Fmt.pf ppf "%-14s %27s %6.2f GB/s" m.bench.name "" m.gb_per_sec
