(** SORD — Support Operator Rupture Dynamics (paper §VI): 3D
    viscoelastic earthquake simulation over a structured grid,
    modeled as ~20 labeled phases with distinct compute / memory /
    vectorization / cache-capacity profiles. *)

open Skope_skeleton
open Skope_bet

(** [make ~scale] returns the skeleton and its input bindings; [scale]
    multiplies the grid dimensions and time steps. *)
val make : scale:float -> Ast.program * (string * Value.t) list
