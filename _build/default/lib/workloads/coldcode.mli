(** Cold-code mass for workload models: setup, configuration parsing,
    checkpointing and never-taken error handling, so the 10%
    code-leanness criterion is meaningful (production applications are
    mostly cold code). *)

open Skope_skeleton

(** [funcs ~prefix ~weight] returns cold functions totalling roughly
    [weight] static instructions plus the calls to splice into
    [main]. *)
val funcs : prefix:string -> weight:int -> Ast.func list * Ast.stmt list
