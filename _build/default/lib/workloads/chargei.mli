(** CHARGEI — GTC ion-density deposition (paper §VI): particle-in-cell
    gather/scatter with two dominating hot spots (44%/38% in the
    paper). *)

open Skope_skeleton
open Skope_bet

val make : scale:float -> Ast.program * (string * Value.t) list
