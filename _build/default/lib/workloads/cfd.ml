(** CFD — unstructured-grid finite-volume Euler solver (paper §VI,
    Rodinia-style miniapp).

    A main time-stepping loop iterates a 3-stage Runge–Kutta scheme;
    each stage computes per-cell step factors, per-face fluxes through
    an indirection array (the unstructured connectivity), and advances
    pressure, momentum and density.

    The skeleton deliberately includes the paper's §VII-B anecdote: the
    [compute_velocity] block derives velocity from density and momentum
    with a series of floating point {e divisions}.  The analytic model
    prices all flops alike, so it projects under 3 % of run time for
    this block, while on BG/Q — where division expands into a long
    reciprocal-refinement sequence — it actually takes a much larger
    share.  The simulator charges real division latency, reproducing
    the underestimation. *)

open Skope_skeleton
open Skope_bet

let make ~scale =
  let ncell = max 512 (int_of_float (Float.round (97000. *. scale))) in
  let nt = max 2 (int_of_float (Float.round (32. *. scale))) in
  let nface = 3 * ncell in
  let nbound = max 16 (ncell / 16) in
  let open Builder in
  let cells ?label body = for_ ?label "c" (int 0) (var "ncell" - int 1) body in
  let faces ?label body = for_ ?label "f" (int 0) (var "nface" - int 1) body in
  let step_factor =
    func "step_factor"
      [
        cells ~label:"compute_step_factor"
          [
            comp ~flops:(int 11) ~iops:(int 2) ~divs:(int 1) ~vec:4 ();
            load
              [
                a_ "density" [ var "c" ]; a_ "momx" [ var "c" ];
                a_ "momy" [ var "c" ]; a_ "energy" [ var "c" ];
                a_ "areas" [ var "c" ];
              ];
            store [ a_ "stepf" [ var "c" ] ];
          ];
      ]
  in
  let flux =
    func "flux"
      [
        (* Per-face flux with indirect neighbor access through the
           connectivity array: a load of the neighbor index, then
           gathers at an effectively random cell.  Heavy flops, not
           vectorized due to the gathers. *)
        faces ~label:"compute_flux"
          [
            load [ a_ "neigh" [ var "f" ] ];
            comp ~flops:(int 2) ~iops:(int 6) ();
            load
              [
                a_ "density" [ var "f" * int 1103 % var "ncell" ];
                a_ "momx" [ var "f" * int 1103 % var "ncell" ];
                a_ "momy" [ var "f" * int 1103 % var "ncell" ];
                a_ "energy" [ var "f" * int 1103 % var "ncell" ];
                a_ "normals" [ var "f" ];
              ];
            comp ~flops:(int 42) ~iops:(int 4) ~vec:1 ();
            store [ a_ "fluxes" [ var "f" ] ];
          ];
      ]
  in
  let velocity =
    func "velocity"
      [
        (* v = momentum / density, speed of sound, pressure ratio —
           division-dominated (§VII-B). *)
        cells ~label:"compute_velocity"
          [
            comp ~flops:(int 9) ~iops:(int 1) ~divs:(int 2) ~vec:1 ();
            load
              [
                a_ "density" [ var "c" ]; a_ "momx" [ var "c" ];
                a_ "momy" [ var "c" ];
              ];
            store [ a_ "velx" [ var "c" ]; a_ "vely" [ var "c" ] ];
          ];
      ]
  in
  let time_step =
    func "advance"
      [
        cells ~label:"time_step"
          [
            comp ~flops:(int 13) ~iops:(int 2) ~vec:4 ();
            load
              [
                a_ "fluxes" [ var "c" ]; a_ "stepf" [ var "c" ];
                a_ "old_density" [ var "c" ];
              ];
            store [ a_ "density" [ var "c" ] ];
          ];
        cells ~label:"momentum_update"
          [
            comp ~flops:(int 8) ~iops:(int 2) ~vec:4 ();
            load [ a_ "fluxes" [ var "c" ]; a_ "old_momx" [ var "c" ] ];
            store [ a_ "momx" [ var "c" ]; a_ "momy" [ var "c" ] ];
          ];
        cells ~label:"pressure_update"
          [
            comp ~flops:(int 7) ~iops:(int 1) ~vec:4 ();
            load [ a_ "density" [ var "c" ]; a_ "energy" [ var "c" ] ];
            store [ a_ "pressure" [ var "c" ] ];
          ];
      ]
  in
  let copy_state =
    func "copy_state"
      [
        cells ~label:"copy_state"
          [
            comp ~flops:(int 0) ~iops:(int 2) ~vec:4 ();
            load [ a_ "density" [ var "c" ]; a_ "momx" [ var "c" ] ];
            store [ a_ "old_density" [ var "c" ]; a_ "old_momx" [ var "c" ] ];
          ];
      ]
  in
  let boundary =
    func "boundary"
      [
        for_ ~label:"boundary_flux" "f" (int 0) (var "nbound" - int 1)
          [
            comp ~flops:(int 18) ~iops:(int 3) ~vec:1 ();
            load [ a_ "normals" [ var "f" ]; a_ "density" [ var "f" ] ];
            store [ a_ "fluxes" [ var "f" ] ];
          ];
      ]
  in
  let reduce =
    func "reduce"
      [
        cells ~label:"reduce_rms"
          [
            comp ~flops:(int 3) ~iops:(int 1) ~vec:4 ();
            load [ a_ "density" [ var "c" ] ];
          ];
      ]
  in
  let cold_funcs, cold_calls = Coldcode.funcs ~prefix:"cfd" ~weight:2400 in
  let main =
    func "main"
      (cold_calls
      @ [
        cells ~label:"initialize"
          [
            comp ~flops:(int 5) ~iops:(int 2) ~vec:4 ();
            store
              [
                a_ "density" [ var "c" ]; a_ "momx" [ var "c" ];
                a_ "momy" [ var "c" ]; a_ "energy" [ var "c" ];
              ];
          ];
        for_ ~label:"time_loop" "it" (int 1) (var "nt")
          [
            call "copy_state" [];
            for_ ~label:"rk_loop" "rk" (int 1) (int 3)
              [
                call "step_factor" [];
                call "velocity" [];
                call "flux" [];
                call "boundary" [];
                call "advance" [];
              ];
            call "reduce" [];
          ];
      ])
  in
  let g name = array name [ var "ncell" ] in
  let gf name = array name [ var "nface" ] in
  let program =
    program "cfd"
      ~globals:
        [
          g "density"; g "momx"; g "momy"; g "energy"; g "pressure";
          g "velx"; g "vely"; g "stepf"; g "areas"; g "old_density";
          g "old_momx";
          gf "fluxes"; gf "normals";
          array ~elem_bytes:4 "neigh" [ var "nface" ];
        ]
      ([
         main; step_factor; flux; velocity; time_step; copy_state; boundary;
         reduce;
       ]
      @ cold_funcs)
  in
  ( program,
    [
      ("ncell", Value.int ncell);
      ("nface", Value.int nface);
      ("nbound", Value.int nbound);
      ("nt", Value.int nt);
    ] )
