(** The paper's pedagogical example (Fig. 2): a data-dependent knob
    set in [main] steers a branch inside a twice-mounted callee. *)

open Skope_skeleton
open Skope_bet

val make : scale:float -> Ast.program * (string * Value.t) list
