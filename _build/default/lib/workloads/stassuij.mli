(** STASSUIJ — GFMC two-body correlation kernel (paper §VI): sparse x
    dense-complex multiply (68%) plus a butterfly exchange (23%); the
    AXPY is the XL-vectorized loop the baseline model overestimates. *)

open Skope_skeleton
open Skope_bet

val make : scale:float -> Ast.program * (string * Value.t) list
