(** STASSUIJ — two-body correlation operator from Green's Function
    Monte Carlo (paper §VI).

    The kernel has two algorithmic phases: (1) multiply a 132x132
    sparse real matrix with a 132x2048 dense complex matrix — per
    non-zero, a scaled complex AXPY over a 2048-wide row; (2) exchange
    groups of four elements within each row in a butterfly pattern,
    with exchange indices loaded from a separate index array.

    The paper measures the first phase at 68 % and the butterfly at
    23 %.  The sparse AXPY is exactly the loop the IBM XL compiler
    vectorizes aggressively, which the baseline analytic model does not
    account for — so the model {e overestimates} the first hot spot's
    time (§VII-B, Fig. 13).  The skeleton marks that statement [vec=4]
    for the simulator while the baseline model ignores it. *)

open Skope_skeleton
open Skope_bet

let make ~scale =
  let ncols = max 128 (int_of_float (Float.round (2048. *. scale *. 4.))) in
  let nrows = 132 in
  let nnz = nrows * 8 in
  (* ~6% non-zeros *)
  let open Builder in
  let sparse_mult =
    func "sparse_mult"
      [
        (* For each non-zero a(i,k): row_i += a * row_k over 2048
           complex columns.  Complex AXPY with a real scalar: 4 flops
           per column (2 mults + 2 adds), 2 loads + 2 stores of 8-byte
           halves. *)
        for_ ~label:"nonzeros" "e" (int 0) (var "nnz" - int 1)
          [
            load [ a_ "sval" [ var "e" ]; a_ "scol" [ var "e" ] ];
            comp ~flops:(int 0) ~iops:(int 4) ();
            for_ ~label:"sparse_axpy" "j" (int 0) (var "ncols" - int 1)
              [
                comp ~flops:(int 4) ~iops:(int 1) ~vec:4 ();
                load
                  [
                    a_ "psi_re" [ (var "e" % var "nrows" * var "ncols") + var "j" ];
                    a_ "psi_im" [ (var "e" % var "nrows" * var "ncols") + var "j" ];
                  ];
                store
                  [
                    a_ "out_re" [ (var "e" % var "nrows" * var "ncols") + var "j" ];
                    a_ "out_im" [ (var "e" % var "nrows" * var "ncols") + var "j" ];
                  ];
              ];
          ];
      ]
  in
  let butterfly =
    func "butterfly"
      [
        (* Exchange groups of 4 elements per row; indices come from a
           separate table, so accesses are indirect and the loop is
           not vectorized. *)
        for_ ~label:"rows" "r" (int 0) (var "nrows" - int 1)
          [
            for_ ~label:"butterfly_exchange" "g" (int 0)
              (var "ncols" / int 4 - int 1)
              [
                load [ a_ "xidx" [ var "g" ] ];
                comp ~flops:(int 0) ~iops:(int 12) ~vec:1 ();
                (* Exchange a group of four complex elements between
                   table-driven positions: 8 loads + 8 stores, all
                   effectively random within the row. *)
                load
                  [
                    a_ "out_re" [ (var "r" * var "ncols") + (var "g" * int 997 % var "ncols") ];
                    a_ "out_im" [ (var "r" * var "ncols") + (var "g" * int 997 % var "ncols") ];
                    a_ "out_re" [ (var "r" * var "ncols") + (var "g" * int 331 % var "ncols") ];
                    a_ "out_im" [ (var "r" * var "ncols") + (var "g" * int 331 % var "ncols") ];
                    a_ "out_re" [ (var "r" * var "ncols") + (var "g" * int 613 % var "ncols") ];
                    a_ "out_im" [ (var "r" * var "ncols") + (var "g" * int 613 % var "ncols") ];
                    a_ "out_re" [ (var "r" * var "ncols") + (var "g" * int 211 % var "ncols") ];
                    a_ "out_im" [ (var "r" * var "ncols") + (var "g" * int 211 % var "ncols") ];
                  ];
                store
                  [
                    a_ "out_re" [ (var "r" * var "ncols") + (var "g" * int 331 % var "ncols") ];
                    a_ "out_im" [ (var "r" * var "ncols") + (var "g" * int 331 % var "ncols") ];
                    a_ "out_re" [ (var "r" * var "ncols") + (var "g" * int 997 % var "ncols") ];
                    a_ "out_im" [ (var "r" * var "ncols") + (var "g" * int 997 % var "ncols") ];
                    a_ "out_re" [ (var "r" * var "ncols") + (var "g" * int 211 % var "ncols") ];
                    a_ "out_im" [ (var "r" * var "ncols") + (var "g" * int 211 % var "ncols") ];
                    a_ "out_re" [ (var "r" * var "ncols") + (var "g" * int 613 % var "ncols") ];
                    a_ "out_im" [ (var "r" * var "ncols") + (var "g" * int 613 % var "ncols") ];
                  ];
              ];
          ];
      ]
  in
  let cold_funcs, cold_calls = Coldcode.funcs ~prefix:"gfmc" ~weight:400 in
  let main =
    func "main"
      (cold_calls
      @ [
        for_ ~label:"zero_out" "z" (int 0) (var "nrows" * var "ncols" - int 1)
          [
            comp ~iops:(int 1) ~vec:4 ();
            store [ a_ "out_re" [ var "z" ]; a_ "out_im" [ var "z" ] ];
          ];
        call "sparse_mult" [];
        call "butterfly" [];
        for_ ~label:"norm_check" "z" (int 0) (var "ncols" - int 1)
          [
            load [ a_ "out_re" [ var "z" ] ];
            comp ~flops:(int 2) ~iops:(int 1) ~vec:4 ();
          ];
      ])
  in
  let size = [ var "nrows" * var "ncols" ] in
  let program =
    program "stassuij"
      ~globals:
        [
          array "psi_re" size;
          array "psi_im" size;
          array "out_re" size;
          array "out_im" size;
          array "sval" [ var "nnz" ];
          array ~elem_bytes:4 "scol" [ var "nnz" ];
          array ~elem_bytes:4 "xidx" [ var "ncols" ];
        ]
      ([ main; sparse_mult; butterfly ] @ cold_funcs)
  in
  ( program,
    [
      ("nrows", Value.int nrows);
      ("ncols", Value.int ncols);
      ("nnz", Value.int nnz);
    ] )
