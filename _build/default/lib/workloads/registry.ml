(** Catalog of bundled workload models.

    Every workload provides a scalable skeleton program and its input
    bindings (the paper's "hint file" of input sizes).  [default_scale]
    is tuned so the ground-truth simulation of one workload finishes in
    a couple of seconds; the analytic projection is input-size
    independent, so scale only matters for simulation. *)

open Skope_skeleton
open Skope_bet
open Skope_hw

type t = {
  name : string;
  description : string;
  make : scale:float -> Ast.program * (string * Value.t) list;
  default_scale : float;
  libmix : Libmix.t;
  paper_top_k : int;
      (** how many hot spots the paper reports for this workload *)
}

let all : t list =
  [
    {
      name = "pedagogical";
      description = "the paper's Fig. 2 example (branch-dependent contexts)";
      make = Pedagogical.make;
      default_scale = 1.0;
      libmix = Libmix.default;
      paper_top_k = 4;
    };
    {
      name = "sord";
      description =
        "Support Operator Rupture Dynamics: 3D viscoelastic earthquake \
         simulation on a structured grid";
      make = Sord.make;
      default_scale = 0.22;
      libmix = Libmix.default;
      paper_top_k = 10;
    };
    {
      name = "chargei";
      description =
        "GTC chargei: particle-in-cell ion density deposition (gather, \
         scatter, field solve)";
      make = Chargei.make;
      default_scale = 0.35;
      libmix = Libmix.default;
      paper_top_k = 5;
    };
    {
      name = "srad";
      description =
        "speckle-reducing anisotropic diffusion for ultrasound images \
         (exp/rand library hot spots)";
      make = Srad.make;
      default_scale = 0.25;
      libmix = Libmix.default;
      paper_top_k = 3;
    };
    {
      name = "cfd";
      description =
        "unstructured finite-volume 3D Euler solver (division-heavy \
         velocity kernel)";
      make = Cfd.make;
      default_scale = 0.25;
      libmix = Libmix.default;
      paper_top_k = 10;
    };
    {
      name = "stassuij";
      description =
        "GFMC two-body correlation kernel: sparse x dense-complex multiply \
         + butterfly exchange";
      make = Stassuij.make;
      default_scale = 0.5;
      libmix = Libmix.default;
      paper_top_k = 2;
    };
  ]

let names = List.map (fun w -> w.name) all

let find name =
  let l = String.lowercase_ascii name in
  List.find_opt (fun w -> String.equal w.name l) all

let find_exn name =
  match find name with
  | Some w -> w
  | None ->
    invalid_arg
      (Fmt.str "unknown workload %S (expected one of: %s)" name
         (String.concat ", " names))
