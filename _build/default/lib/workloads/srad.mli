(** SRAD — speckle-reducing anisotropic diffusion (paper §VI); its top
    hot spots are the libm [exp] and [rand] calls, exercising the
    semi-analytic library modeling of §IV-C. *)

open Skope_skeleton
open Skope_bet

val make : scale:float -> Ast.program * (string * Value.t) list
