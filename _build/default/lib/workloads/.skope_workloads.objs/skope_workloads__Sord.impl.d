lib/workloads/sord.ml: Builder Coldcode Float Skope_bet Skope_skeleton Value
