lib/workloads/registry.mli: Ast Libmix Skope_bet Skope_hw Skope_skeleton Value
