lib/workloads/sord.mli: Ast Skope_bet Skope_skeleton Value
