lib/workloads/pedagogical.mli: Ast Skope_bet Skope_skeleton Value
