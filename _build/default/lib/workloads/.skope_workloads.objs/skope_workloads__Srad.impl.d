lib/workloads/srad.ml: Builder Coldcode Float Skope_bet Skope_skeleton Value
