lib/workloads/registry.ml: Ast Cfd Chargei Fmt Libmix List Pedagogical Skope_bet Skope_hw Skope_skeleton Sord Srad Stassuij String Value
