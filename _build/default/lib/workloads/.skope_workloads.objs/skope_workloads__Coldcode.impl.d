lib/workloads/coldcode.ml: Ast Builder Skope_skeleton
