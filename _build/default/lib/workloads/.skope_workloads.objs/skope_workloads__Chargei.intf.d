lib/workloads/chargei.mli: Ast Skope_bet Skope_skeleton Value
