lib/workloads/coldcode.mli: Ast Skope_skeleton
