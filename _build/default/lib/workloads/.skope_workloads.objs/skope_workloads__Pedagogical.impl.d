lib/workloads/pedagogical.ml: Builder Skope_bet Skope_skeleton Value
