lib/workloads/stassuij.mli: Ast Skope_bet Skope_skeleton Value
