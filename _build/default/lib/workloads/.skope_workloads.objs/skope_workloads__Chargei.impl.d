lib/workloads/chargei.ml: Builder Coldcode Float Skope_bet Skope_skeleton Value
