lib/workloads/srad.mli: Ast Skope_bet Skope_skeleton Value
