lib/workloads/stassuij.ml: Builder Coldcode Float Skope_bet Skope_skeleton Value
