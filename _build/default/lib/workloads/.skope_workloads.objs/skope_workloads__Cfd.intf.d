lib/workloads/cfd.mli: Ast Skope_bet Skope_skeleton Value
