(** CFD — unstructured finite-volume Euler solver (paper §VI), with
    the division-heavy [compute_velocity] kernel of the §VII-B
    anecdote. *)

open Skope_skeleton
open Skope_bet

val make : scale:float -> Ast.program * (string * Value.t) list
