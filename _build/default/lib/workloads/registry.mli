(** Catalog of bundled workload models (the paper's five benchmarks
    plus the pedagogical example of Fig. 2). *)

open Skope_skeleton
open Skope_bet
open Skope_hw

type t = {
  name : string;
  description : string;
  make : scale:float -> Ast.program * (string * Value.t) list;
      (** scalable skeleton + input bindings (the paper's "hint file") *)
  default_scale : float;
      (** tuned so one ground-truth simulation takes a few seconds *)
  libmix : Libmix.t;
  paper_top_k : int;
      (** how many hot spots the paper reports for this workload *)
}

val all : t list
val names : string list

(** Case-insensitive lookup. *)
val find : string -> t option

(** @raise Invalid_argument when unknown. *)
val find_exn : string -> t
