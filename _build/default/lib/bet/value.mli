(** Runtime values of context variables.

    Context variables are the small set of scalars that influence
    control flow and data sizes (paper §IV); the integer/float
    distinction is preserved so loop bounds stay exact. *)

type t = I of int | F of float | B of bool

val pp : t Fmt.t
val to_string : t -> string

(** Numeric equality crosses the int/float divide:
    [equal (I 3) (F 3.) = true]. *)
val equal : t -> t -> bool

(** Total order: booleans first, then numerics by value. *)
val compare : t -> t -> int

val to_float : t -> float

(** C-style truthiness: zero and [false] are false. *)
val truthy : t -> bool

(** Wrap a float, returning [I] when it is integral. *)
val of_float : float -> t

val int : int -> t
val float : float -> t
val bool : bool -> t
