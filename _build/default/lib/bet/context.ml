(** Weighted execution contexts.

    A context is a probability-carrying snapshot of the variables that
    influence control flow (paper §IV-A).  BET construction threads a
    small set of contexts through each block; data-dependent branches
    split mass, [let] bindings under different outcomes make contexts
    diverge, and value-identical contexts are re-merged to keep the set
    small. *)

module Smap = Eval.Smap

type t = { env : Eval.env; mass : float }

let make ?(mass = 1.0) bindings = { env = Eval.env_of_list bindings; mass }

let mass_of cs = List.fold_left (fun acc c -> acc +. c.mass) 0. cs

let bind c name v = { c with env = Smap.add name v c.env }

let unbind c name = { c with env = Smap.remove name c.env }

let scale c f = { c with mass = c.mass *. f }

let lookup c name = Smap.find_opt name c.env

let env_equal (a : Eval.env) (b : Eval.env) = Smap.equal Value.equal a b

let pp ppf c =
  Fmt.pf ppf "{%a | %.4f}"
    (Fmt.iter_bindings ~sep:Fmt.comma Smap.iter (fun ppf (k, v) ->
         Fmt.pf ppf "%s=%a" k Value.pp v))
    c.env c.mass

(** Merge value-identical contexts (summing mass), drop negligible
    mass, and enforce the [cap]: when more than [cap] distinct contexts
    remain, the lightest ones are folded into the heaviest context.
    Total mass is preserved up to the negligible-mass cutoff.  Returns
    contexts sorted by decreasing mass. *)
let normalize ?(cap = 64) (cs : t list) : t list =
  let cs = List.filter (fun c -> c.mass > 1e-12) cs in
  (* Group by environment equality.  Context lists are tiny (<= cap),
     so the quadratic grouping is fine. *)
  let groups : t list ref = ref [] in
  List.iter
    (fun c ->
      let rec insert = function
        | [] -> [ c ]
        | g :: rest when env_equal g.env c.env ->
          { g with mass = g.mass +. c.mass } :: rest
        | g :: rest -> g :: insert rest
      in
      groups := insert !groups)
    cs;
  let sorted =
    List.sort (fun a b -> Float.compare b.mass a.mass) !groups
  in
  if List.length sorted <= cap then sorted
  else
    match sorted with
    | [] -> []
    | heaviest :: _ ->
      let kept = List.filteri (fun i _ -> i < cap) sorted in
      let dropped_mass =
        List.fold_left
          (fun acc c -> acc +. c.mass)
          0.
          (List.filteri (fun i _ -> i >= cap) sorted)
      in
      List.map
        (fun c ->
          if env_equal c.env heaviest.env then
            { c with mass = c.mass +. dropped_mass }
          else c)
        kept

(** Expected (mass-weighted mean) value of [e] over live contexts,
    normalized by their total mass; [default] when nothing evaluates. *)
let expect ?(default = 0.) (cs : t list) e =
  let total, weighted =
    List.fold_left
      (fun (t, w) c ->
        (t +. c.mass, w +. (c.mass *. Eval.eval_float ~default c.env e)))
      (0., 0.) cs
  in
  if total <= 0. then default else weighted /. total

(** Mass-weighted mean probability of [e] over live contexts. *)
let expect_prob ?(default = 0.5) cs e =
  let total, weighted =
    List.fold_left
      (fun (t, w) c ->
        (t +. c.mass, w +. (c.mass *. Eval.eval_prob ~default c.env e)))
      (0., 0.) cs
  in
  if total <= 0. then default else weighted /. total
