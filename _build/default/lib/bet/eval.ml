(** Evaluation of skeleton expressions over a variable environment.

    Evaluation is partial: an expression mentioning an unbound variable
    yields [None], which BET construction treats as "statistically
    unknown" and resolves with declared probabilities or defaults. *)

open Skope_skeleton

module Smap = Map.Make (String)

type env = Value.t Smap.t

let env_of_list l : env =
  List.fold_left (fun m (k, v) -> Smap.add k v m) Smap.empty l

let ( let* ) = Option.bind

let arith op a b =
  let open Value in
  match (op, a, b) with
  | Ast.Add, I a, I b -> Some (I (a + b))
  | Ast.Sub, I a, I b -> Some (I (a - b))
  | Ast.Mul, I a, I b -> Some (I (a * b))
  | Ast.Div, I a, I b when b <> 0 -> Some (I (a / b))
  | Ast.Mod, I a, I b when b <> 0 -> Some (I (a mod b))
  | Ast.Min, I a, I b -> Some (I (min a b))
  | Ast.Max, I a, I b -> Some (I (max a b))
  | Ast.Pow, I a, I b when b >= 0 ->
    let rec go acc n = if n = 0 then acc else go (acc * a) (n - 1) in
    Some (I (go 1 b))
  | op, a, b -> (
    let a = to_float a and b = to_float b in
    match op with
    | Ast.Add -> Some (F (a +. b))
    | Ast.Sub -> Some (F (a -. b))
    | Ast.Mul -> Some (F (a *. b))
    | Ast.Div -> if b = 0. then None else Some (F (a /. b))
    | Ast.Mod -> if b = 0. then None else Some (F (Float.rem a b))
    | Ast.Min -> Some (F (Float.min a b))
    | Ast.Max -> Some (F (Float.max a b))
    | Ast.Pow -> Some (F (a ** b)))

let rec eval (env : env) (e : Ast.expr) : Value.t option =
  match e with
  | Ast.Int i -> Some (Value.I i)
  | Ast.Float f -> Some (Value.F f)
  | Ast.Bool b -> Some (Value.B b)
  | Ast.Var v -> Smap.find_opt v env
  | Ast.Binop (op, a, b) ->
    let* a = eval env a in
    let* b = eval env b in
    arith op a b
  | Ast.Cmp (op, a, b) ->
    let* a = eval env a in
    let* b = eval env b in
    let c = Value.compare a b in
    let r =
      match op with
      | Ast.Lt -> c < 0
      | Ast.Le -> c <= 0
      | Ast.Gt -> c > 0
      | Ast.Ge -> c >= 0
      | Ast.Eq -> c = 0
      | Ast.Ne -> c <> 0
    in
    Some (Value.B r)
  | Ast.And (a, b) -> (
    let* a = eval env a in
    if not (Value.truthy a) then Some (Value.B false)
    else
      let* b = eval env b in
      Some (Value.B (Value.truthy b)))
  | Ast.Or (a, b) -> (
    let* a = eval env a in
    if Value.truthy a then Some (Value.B true)
    else
      let* b = eval env b in
      Some (Value.B (Value.truthy b)))
  | Ast.Unop (op, a) -> (
    let* a = eval env a in
    match op with
    | Ast.Neg -> (
      match a with
      | Value.I i -> Some (Value.I (-i))
      | v -> Some (Value.F (-.Value.to_float v)))
    | Ast.Not -> Some (Value.B (not (Value.truthy a)))
    | Ast.Floor -> Some (Value.I (int_of_float (Float.floor (Value.to_float a))))
    | Ast.Ceil -> Some (Value.I (int_of_float (Float.ceil (Value.to_float a))))
    | Ast.Sqrt ->
      let f = Value.to_float a in
      if f < 0. then None else Some (Value.F (Float.sqrt f))
    | Ast.Log2 ->
      let f = Value.to_float a in
      if f <= 0. then None else Some (Value.F (Float.log f /. Float.log 2.))
    | Ast.Abs -> (
      match a with
      | Value.I i -> Some (Value.I (abs i))
      | v -> Some (Value.F (Float.abs (Value.to_float v)))))

(** Evaluate to a float, with a fallback default. *)
let eval_float ?(default = 0.) env e =
  match eval env e with Some v -> Value.to_float v | None -> default

(** Evaluate to a non-negative count (clamped at 0). *)
let eval_count ?(default = 0.) env e = Float.max 0. (eval_float ~default env e)

(** Evaluate a probability expression, clamped to [0,1]. *)
let eval_prob ?(default = 0.5) env e =
  Float.min 1. (Float.max 0. (eval_float ~default env e))
