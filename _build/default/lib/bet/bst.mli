(** Block Skeleton Tree: static tables derived from a parsed skeleton
    (paper §III-A).

    The hardware- and input-independent view of the program: for every
    static code block, a human-readable name, the source location, the
    exclusive static instruction weight (the code-leanness unit), and
    nesting relationships. *)

open Skope_skeleton

type block_info = {
  id : Block_id.t;
  name : string;  (** label if present, else derived from kind/location *)
  loc : Loc.t;
  func : string;  (** enclosing function *)
  size : int;  (** exclusive static instruction weight *)
  parent : Block_id.t option;
}

type t

val build : Ast.program -> t
val block_info : t -> Block_id.t -> block_info option
val block_name : t -> Block_id.t -> string
val block_size : t -> Block_id.t -> int
val blocks : t -> block_info list

(** Total static instruction weight of the program (the leanness
    denominator). *)
val total_instructions : t -> int

val program : t -> Ast.program
