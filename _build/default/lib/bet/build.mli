(** Bayesian Execution Tree construction (paper §IV-B).

    Traverses the BST from the entry function, threading weighted
    contexts: function calls mount the callee in place, loops become
    single nodes carrying expected trip counts, branches split context
    mass, and [return]/[break]/[continue] promote their probabilities
    to the right ancestor.  Construction cost is independent of the
    input size. *)

open Skope_skeleton

type result = {
  root : Node.t;
  bst : Bst.t;
  node_count : int;
  warnings : string list;
}

(** Expected trips of a loop over at most [n] iterations when each
    iteration exits early with probability [p]:
    [(1 - (1-p)^n) / p], clamped to [\[0, n\]]. *)
val truncated_geometric : p:float -> n:float -> float

(** Expected trips of a [while] loop continuing with probability [p]
    per iteration, capped at [n] (the first iteration always runs). *)
val while_trips : p:float -> n:float -> float

(** Build the BET for a program.

    [inputs] supplies the entry parameters and global constants (the
    paper's "hint file"), visible in every function.  [hints] carries
    profiled branch statistics, which override declared probabilities.
    [lib_work] maps a library function name to its per-unit-scale
    instruction mix (§IV-C).  [max_contexts] caps the number of
    simultaneously tracked contexts per program point. *)
val build :
  ?hints:Hints.t ->
  ?lib_work:(string -> Work.t option) ->
  ?max_contexts:int ->
  ?inputs:(string * Value.t) list ->
  Ast.program ->
  result
