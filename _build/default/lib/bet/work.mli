(** Work vectors: performance characteristics of one execution of a
    code region (paper §V-A).

    Counts are floats because they are statistical expectations over
    contexts.  [divs] and the [vec_*] fields record information the
    baseline analytic model deliberately ignores; the ablation benches
    switch those refinements on. *)

type t = {
  flops : float;  (** floating point operations (includes [divs]) *)
  iops : float;  (** fixed point / integer operations *)
  divs : float;  (** floating point divisions, a subset of [flops] *)
  vec_flops : float;  (** flops in statements the compiler vectorizes *)
  vec_issue : float;  (** the same flops counted as vector issues *)
  loads : float;  (** data elements read *)
  stores : float;  (** data elements written *)
  lbytes : float;  (** bytes read *)
  sbytes : float;  (** bytes written *)
}

val zero : t
val add : t -> t -> t
val scale : float -> t -> t
val is_zero : t -> bool

(** Total dynamic operations: computation plus memory instructions. *)
val ops : t -> float

val mem_accesses : t -> float
val bytes : t -> float

(** Operational intensity (flops per byte moved): the roofline
    x-axis.  [infinity] for compute-only work, [0.] for pure data
    movement and for [zero]. *)
val intensity : t -> float

val of_comp : flops:float -> iops:float -> divs:float -> vec:int -> t

val of_mem :
  loads:float -> stores:float -> lbytes:float -> sbytes:float -> t

val equal : t -> t -> bool
val pp : t Fmt.t
