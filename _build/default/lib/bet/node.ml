(** Bayesian Execution Tree nodes (paper §IV-A).

    A node is the dynamic execution of a code block under a given
    context: a mounted function call, a loop (a single node regardless
    of trip count), a branch arm, or an opaque library call.  Each node
    carries the conditional probability of reaching it given one
    execution of its parent, its expected trip count, and the expected
    work of one execution of its {e direct} statements. *)

type kind =
  | Func of string  (** function mounted at a call site (or the root) *)
  | Loop  (** [for]/[while]; [trips] is the expected iteration count *)
  | Arm of bool  (** branch arm *)
  | Libcall of string  (** opaque library function (§IV-C) *)

type t = {
  id : int;
  block : Block_id.t;  (** static block this invocation executes *)
  kind : kind;
  prob : float;
      (** conditional probability of executing, given one execution of
          the parent *)
  trips : float;  (** expected iterations; 1.0 for non-loops *)
  work : Work.t;
      (** expected work of one execution of the node's direct
          statements (children excluded) *)
  note : string;  (** context annotation for reports (bounds, sizes) *)
  mutable children : t list;  (** in execution order *)
}

let pp_kind ppf = function
  | Func f -> Fmt.pf ppf "func %s" f
  | Loop -> Fmt.string ppf "loop"
  | Arm true -> Fmt.string ppf "then"
  | Arm false -> Fmt.string ppf "else"
  | Libcall l -> Fmt.pf ppf "lib %s" l

(** Number of nodes in the (sub)tree. *)
let rec size t = List.fold_left (fun n c -> n + size c) 1 t.children

(** Pre-order fold over the tree.  [f] receives the accumulator, the
    node, and the node's expected number of repetitions (ENR), computed
    as [trips * prob * ENR(parent)] with ENR(root) = trips(root)
    (paper §V-A). *)
let fold_enr f acc t =
  let rec go acc node parent_enr =
    let enr = node.trips *. node.prob *. parent_enr in
    let acc = f acc node ~enr in
    List.fold_left (fun acc c -> go acc c enr) acc node.children
  in
  go acc t 1.

let iter_enr f t = fold_enr (fun () node ~enr -> f node ~enr) () t

(** Depth-first listing of nodes with their ENR. *)
let to_list_enr t =
  List.rev (fold_enr (fun acc n ~enr -> (n, enr) :: acc) [] t)

let rec pp ?(indent = 0) ppf t =
  Fmt.pf ppf "%s[%d] %a %a p=%.3g trips=%.6g%s@,"
    (String.make indent ' ')
    t.id Block_id.pp t.block pp_kind t.kind t.prob t.trips
    (if t.note = "" then "" else " (" ^ t.note ^ ")");
  List.iter (pp ~indent:(indent + 2) ppf) t.children
