(** Evaluation of skeleton expressions over a variable environment.

    Evaluation is partial: an expression mentioning an unbound
    variable (or dividing by zero) yields [None], which BET
    construction treats as "statistically unknown". *)

open Skope_skeleton

module Smap : Map.S with type key = string

type env = Value.t Smap.t

val env_of_list : (string * Value.t) list -> env

(** Arithmetic on values; [None] on division/modulo by zero.
    Integer operands stay integral where possible. *)
val arith : Ast.binop -> Value.t -> Value.t -> Value.t option

val eval : env -> Ast.expr -> Value.t option

(** Evaluate to a float, with a fallback default. *)
val eval_float : ?default:float -> env -> Ast.expr -> float

(** Evaluate to a non-negative count (clamped at 0). *)
val eval_count : ?default:float -> env -> Ast.expr -> float

(** Evaluate a probability, clamped to [0, 1]. *)
val eval_prob : ?default:float -> env -> Ast.expr -> float
