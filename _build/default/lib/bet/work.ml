(** Work vectors: performance characteristics of one execution of a
    code region (paper §V-A).

    Counts are floats because they are statistical expectations over
    contexts.  [divs] and the [vec_*] fields record information the
    baseline analytic model deliberately ignores (all flops priced
    alike, no SIMD); they exist so the ablation benches can switch the
    refinements on and quantify their effect. *)

type t = {
  flops : float;  (** floating point operations (includes [divs]) *)
  iops : float;  (** fixed point / integer operations *)
  divs : float;  (** floating point divisions, a subset of [flops] *)
  vec_flops : float;
      (** flops issued in statements the compiler can vectorize *)
  vec_issue : float;
      (** the same flops counted as vector issues, i.e. Σ flops/vec *)
  loads : float;  (** data elements read *)
  stores : float;  (** data elements written *)
  lbytes : float;  (** bytes read *)
  sbytes : float;  (** bytes written *)
}

let zero =
  {
    flops = 0.;
    iops = 0.;
    divs = 0.;
    vec_flops = 0.;
    vec_issue = 0.;
    loads = 0.;
    stores = 0.;
    lbytes = 0.;
    sbytes = 0.;
  }

let add a b =
  {
    flops = a.flops +. b.flops;
    iops = a.iops +. b.iops;
    divs = a.divs +. b.divs;
    vec_flops = a.vec_flops +. b.vec_flops;
    vec_issue = a.vec_issue +. b.vec_issue;
    loads = a.loads +. b.loads;
    stores = a.stores +. b.stores;
    lbytes = a.lbytes +. b.lbytes;
    sbytes = a.sbytes +. b.sbytes;
  }

let scale k a =
  {
    flops = k *. a.flops;
    iops = k *. a.iops;
    divs = k *. a.divs;
    vec_flops = k *. a.vec_flops;
    vec_issue = k *. a.vec_issue;
    loads = k *. a.loads;
    stores = k *. a.stores;
    lbytes = k *. a.lbytes;
    sbytes = k *. a.sbytes;
  }

let is_zero w = w = zero

(** Total dynamic operations: computation plus memory instructions. *)
let ops w = w.flops +. w.iops +. w.loads +. w.stores

let mem_accesses w = w.loads +. w.stores

let bytes w = w.lbytes +. w.sbytes

(** Operational intensity: flops per byte moved (the roofline x-axis).
    [infinity] for compute-only regions, [0.] for pure data movement
    and empty work. *)
let intensity w =
  let b = bytes w in
  if b > 0. then w.flops /. b else if w.flops > 0. then Float.infinity else 0.

let of_comp ~flops ~iops ~divs ~vec =
  let vec = max 1 vec in
  let vec_flops = if vec > 1 then flops else 0. in
  let vec_issue = if vec > 1 then flops /. float_of_int vec else 0. in
  { zero with flops; iops; divs; vec_flops; vec_issue }

let of_mem ~loads ~stores ~lbytes ~sbytes = { zero with loads; stores; lbytes; sbytes }

let equal a b = a = b

let pp ppf w =
  Fmt.pf ppf
    "@[<h>{flops=%.6g iops=%.6g divs=%.6g ld=%.6g st=%.6g lB=%.6g sB=%.6g}@]"
    w.flops w.iops w.divs w.loads w.stores w.lbytes w.sbytes
