(** Bayesian Execution Tree nodes (paper §IV-A).

    A node is the dynamic execution of a code block under a given
    context: a mounted function call, a loop (a single node regardless
    of trip count), a branch arm, or an opaque library call. *)

type kind =
  | Func of string  (** function mounted at a call site (or the root) *)
  | Loop  (** [for]/[while]; [trips] holds the expected iterations *)
  | Arm of bool  (** branch arm *)
  | Libcall of string  (** opaque library function (§IV-C) *)

type t = {
  id : int;
  block : Block_id.t;  (** static block this invocation executes *)
  kind : kind;
  prob : float;
      (** conditional probability given one execution of the parent *)
  trips : float;  (** expected iterations; 1.0 for non-loops *)
  work : Work.t;
      (** expected work of one execution of the node's direct
          statements (children excluded) *)
  note : string;  (** context annotation for reports *)
  mutable children : t list;  (** in execution order *)
}

val pp_kind : kind Fmt.t

(** Number of nodes in the (sub)tree. *)
val size : t -> int

(** Pre-order fold; [f] receives each node's expected number of
    repetitions [ENR = trips * prob * ENR(parent)] (paper §V-A). *)
val fold_enr : ('a -> t -> enr:float -> 'a) -> 'a -> t -> 'a

val iter_enr : (t -> enr:float -> unit) -> t -> unit

(** Depth-first listing of nodes with their ENR. *)
val to_list_enr : t -> (t * float) list

val pp : ?indent:int -> t Fmt.t
