(** Weighted execution contexts (paper §IV-A).

    A context is a probability-carrying snapshot of the variables that
    influence control flow.  BET construction threads a small set of
    contexts through each block; data-dependent branches split mass,
    diverging [let] bindings fork contexts, and value-identical
    contexts re-merge. *)

type t = { env : Eval.env; mass : float }

val make : ?mass:float -> (string * Value.t) list -> t

(** Total probability mass of a context set. *)
val mass_of : t list -> float

val bind : t -> string -> Value.t -> t
val unbind : t -> string -> t
val scale : t -> float -> t
val lookup : t -> string -> Value.t option
val env_equal : Eval.env -> Eval.env -> bool
val pp : t Fmt.t

(** Merge value-identical contexts (summing mass), drop negligible
    mass, and enforce [cap] by folding the lightest contexts into the
    heaviest.  Total mass is preserved; the result is sorted by
    decreasing mass. *)
val normalize : ?cap:int -> t list -> t list

(** Mass-weighted mean value of an expression over live contexts. *)
val expect : ?default:float -> t list -> Skope_skeleton.Ast.expr -> float

(** Mass-weighted mean probability, clamped to [0, 1]. *)
val expect_prob : ?default:float -> t list -> Skope_skeleton.Ast.expr -> float
