(** Static identity of code blocks.

    Hot spots in the paper are {e source} code blocks — a loop, a
    branch arm, a function body, or an opaque library call (§V-A).
    Many BET nodes (dynamic invocations) can map to the same static
    block; analysis aggregates time per block id.  Ids are comparable
    so they can key maps. *)

type t =
  | Fn of string  (** straight-line statements of a function body *)
  | Loop of int  (** body of the [for]/[while] with this statement id *)
  | Arm of int * bool  (** then/else arm of the [if] with this id *)
  | Libc of int  (** the [lib] call with this statement id *)

let compare (a : t) (b : t) = Stdlib.compare a b

let equal a b = compare a b = 0

let pp ppf = function
  | Fn f -> Fmt.pf ppf "fn:%s" f
  | Loop sid -> Fmt.pf ppf "loop#%d" sid
  | Arm (sid, arm) -> Fmt.pf ppf "arm#%d:%s" sid (if arm then "then" else "else")
  | Libc sid -> Fmt.pf ppf "lib#%d" sid

let to_string t = Fmt.str "%a" pp t

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
