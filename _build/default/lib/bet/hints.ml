(** Profiling hints: branch outcome statistics and loop trip counts.

    The paper gathers these once on a local machine with gcov
    (§III-B); here they come from one profiling run of the skeleton
    interpreter (lib/sim).  Hints are hardware-independent, so a single
    profile serves projections for every target architecture. *)

module Smap = Map.Make (String)

type branch_stat = { taken : int; total : int }

type loop_stat = { iters : int; entries : int }

type t = { branches : branch_stat Smap.t; loops : loop_stat Smap.t }

let empty = { branches = Smap.empty; loops = Smap.empty }

let is_empty t = Smap.is_empty t.branches && Smap.is_empty t.loops

(** Record one observed outcome of data-dependent branch [name]. *)
let observe_branch t name ~taken =
  let s =
    match Smap.find_opt name t.branches with
    | Some s -> s
    | None -> { taken = 0; total = 0 }
  in
  let s =
    { taken = (s.taken + if taken then 1 else 0); total = s.total + 1 }
  in
  { t with branches = Smap.add name s t.branches }

(** Record one completed execution of loop [name] with [iters]
    iterations. *)
let observe_loop t name ~iters =
  let s =
    match Smap.find_opt name t.loops with
    | Some s -> s
    | None -> { iters = 0; entries = 0 }
  in
  let s = { iters = s.iters + iters; entries = s.entries + 1 } in
  { t with loops = Smap.add name s t.loops }

(** Empirical fall-through probability of branch [name], or [default]
    when the branch was never observed. *)
let branch_prob t name ~default =
  match Smap.find_opt name t.branches with
  | Some { total; _ } when total = 0 -> default
  | Some { taken; total } -> float_of_int taken /. float_of_int total
  | None -> default

(** Mean trip count of loop [name], or [default] when unobserved. *)
let loop_trips t name ~default =
  match Smap.find_opt name t.loops with
  | Some { entries; _ } when entries = 0 -> default
  | Some { iters; entries } -> float_of_int iters /. float_of_int entries
  | None -> default

let merge a b =
  let merge_branch _ x y =
    match (x, y) with
    | Some x, Some y ->
      Some { taken = x.taken + y.taken; total = x.total + y.total }
    | (Some _ as s), None | None, (Some _ as s) -> s
    | None, None -> None
  in
  let merge_loop _ x y =
    match (x, y) with
    | Some x, Some y ->
      Some { iters = x.iters + y.iters; entries = x.entries + y.entries }
    | (Some _ as s), None | None, (Some _ as s) -> s
    | None, None -> None
  in
  {
    branches = Smap.merge merge_branch a.branches b.branches;
    loops = Smap.merge merge_loop a.loops b.loops;
  }

let pp ppf t =
  Fmt.pf ppf "@[<v>branches:@,";
  Smap.iter
    (fun name { taken; total } ->
      Fmt.pf ppf "  %s: %d/%d@," name taken total)
    t.branches;
  Fmt.pf ppf "loops:@,";
  Smap.iter
    (fun name { iters; entries } ->
      Fmt.pf ppf "  %s: %d iters over %d entries@," name iters entries)
    t.loops;
  Fmt.pf ppf "@]"
