(** Profiling hints: branch outcome statistics and loop trip counts
    (paper §III-B).

    Gathered by one local profiling run (lib/sim plays gcov's role);
    hardware-independent, so a single profile serves projections for
    every target architecture. *)

module Smap : Map.S with type key = string

type branch_stat = { taken : int; total : int }
type loop_stat = { iters : int; entries : int }
type t = { branches : branch_stat Smap.t; loops : loop_stat Smap.t }

val empty : t
val is_empty : t -> bool

(** Record one observed outcome of a data-dependent branch. *)
val observe_branch : t -> string -> taken:bool -> t

(** Record one completed loop execution with its iteration count. *)
val observe_loop : t -> string -> iters:int -> t

(** Empirical fall-through probability, or [default] if unobserved. *)
val branch_prob : t -> string -> default:float -> float

(** Mean trip count, or [default] if unobserved. *)
val loop_trips : t -> string -> default:float -> float

(** Pointwise sum of two sets of observations. *)
val merge : t -> t -> t

val pp : t Fmt.t
