(** Block Skeleton Tree: static tables derived from a parsed skeleton
    (paper §III-A).

    The BST is the hardware- and input-independent view of the
    program: for every static code block it records a human-readable
    name, the source location, the exclusive static instruction count
    (used by the code-leanness criterion), and the nesting
    relationships.  BET construction conceptually traverses this tree
    mounting callee trees at call sites (§IV-B). *)

open Skope_skeleton

type block_info = {
  id : Block_id.t;
  name : string;  (** label if present, else derived from kind and location *)
  loc : Loc.t;
  func : string;  (** enclosing function *)
  size : int;  (** exclusive static instruction statements *)
  parent : Block_id.t option;
}

type t = {
  program : Ast.program;
  blocks : block_info Block_id.Map.t;
  total_instructions : int;
}

let block_info t id = Block_id.Map.find_opt id t.blocks

let block_name t id =
  match block_info t id with
  | Some b -> b.name
  | None -> Block_id.to_string id

let block_size t id =
  match block_info t id with Some b -> b.size | None -> 0

let blocks t = List.map snd (Block_id.Map.bindings t.blocks)

let total_instructions t = t.total_instructions

let program t = t.program

(* Exclusive size: static instruction weight of the statements
   directly inside a block, not nested within an inner block.  [lib]
   statements form their own block, so their weight is excluded
   here. *)
let exclusive_size (b : Ast.block) =
  List.fold_left
    (fun n (s : Ast.stmt) ->
      match s.kind with Ast.Lib _ -> n | _ -> n + Ast.stmt_weight s)
    0 b

let derive_name (s : Ast.stmt) (func : string) =
  match s.label with
  | Some l -> l
  | None -> (
    let at =
      if Loc.equal s.loc Loc.none then Fmt.str "%s#%d" func s.sid
      else Fmt.str "%s@%s" func (Loc.to_string s.loc)
    in
    match s.kind with
    | Ast.For _ -> "for:" ^ at
    | Ast.While _ -> "while:" ^ at
    | Ast.If _ -> "if:" ^ at
    | Ast.Lib { name; _ } -> Fmt.str "lib:%s:%s" name at
    | Ast.Comp _ | Ast.Mem _ | Ast.Let _ | Ast.Call _ | Ast.Return
    | Ast.Break _ | Ast.Continue _ ->
      at)

let build (p : Ast.program) : t =
  let blocks = ref Block_id.Map.empty in
  let add info = blocks := Block_id.Map.add info.id info !blocks in
  let rec walk_block func parent (b : Ast.block) =
    List.iter (walk_stmt func parent) b
  and walk_stmt func parent (s : Ast.stmt) =
    match s.kind with
    | Ast.Comp _ | Ast.Mem _ | Ast.Let _ | Ast.Call _ | Ast.Return
    | Ast.Break _ | Ast.Continue _ ->
      ()
    | Ast.Lib _ ->
      let id = Block_id.Libc s.sid in
      add
        {
          id;
          name = derive_name s func;
          loc = s.loc;
          func;
          size = Ast.stmt_weight s;
          parent;
        }
    | Ast.For { body; _ } | Ast.While { body; _ } ->
      let id = Block_id.Loop s.sid in
      add
        {
          id;
          name = derive_name s func;
          loc = s.loc;
          func;
          size = exclusive_size body;
          parent;
        };
      walk_block func (Some id) body
    | Ast.If { then_; else_; _ } ->
      let arm which body =
        let id = Block_id.Arm (s.sid, which) in
        let suffix = if which then "/then" else "/else" in
        add
          {
            id;
            name = derive_name s func ^ suffix;
            loc = s.loc;
            func;
            size = exclusive_size body;
            parent;
          };
        walk_block func (Some id) body
      in
      arm true then_;
      if else_ <> [] then arm false else_
  in
  List.iter
    (fun (f : Ast.func) ->
      let id = Block_id.Fn f.fname in
      let loc =
        match f.body with s :: _ -> s.loc | [] -> Loc.none
      in
      add
        {
          id;
          name = f.fname;
          loc;
          func = f.fname;
          size = exclusive_size f.body;
          parent = None;
        };
      walk_block f.fname (Some id) f.body)
    p.funcs;
  { program = p; blocks = !blocks; total_instructions = Ast.instruction_count p }
