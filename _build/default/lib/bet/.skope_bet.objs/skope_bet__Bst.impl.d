lib/bet/bst.ml: Ast Block_id Fmt List Loc Skope_skeleton
