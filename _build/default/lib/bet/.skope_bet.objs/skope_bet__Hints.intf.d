lib/bet/hints.mli: Fmt Map
