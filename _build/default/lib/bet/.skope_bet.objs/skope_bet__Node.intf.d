lib/bet/node.mli: Block_id Fmt Work
