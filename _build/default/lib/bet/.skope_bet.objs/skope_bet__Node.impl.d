lib/bet/node.ml: Block_id Fmt List String Work
