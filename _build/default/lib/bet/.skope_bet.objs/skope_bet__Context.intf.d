lib/bet/context.mli: Eval Fmt Skope_skeleton Value
