lib/bet/bst.mli: Ast Block_id Loc Skope_skeleton
