lib/bet/hints.ml: Fmt Map String
