lib/bet/work.ml: Float Fmt
