lib/bet/eval.ml: Ast Float List Map Option Skope_skeleton String Value
