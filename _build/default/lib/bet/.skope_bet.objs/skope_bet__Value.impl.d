lib/bet/value.ml: Bool Float Fmt Int
