lib/bet/block_id.ml: Fmt Map Set Stdlib
