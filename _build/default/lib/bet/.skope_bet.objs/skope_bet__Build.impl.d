lib/bet/build.ml: Ast Block_id Bst Context Eval Float Fmt Hints List Loc Node Pretty Skope_skeleton String Value Work
