lib/bet/block_id.mli: Fmt Map Set
