lib/bet/work.mli: Fmt
