lib/bet/value.mli: Fmt
