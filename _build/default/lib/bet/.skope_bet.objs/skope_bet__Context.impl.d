lib/bet/context.ml: Eval Float Fmt List Value
