lib/bet/eval.mli: Ast Map Skope_skeleton Value
