lib/bet/build.mli: Ast Bst Hints Node Skope_skeleton Value Work
