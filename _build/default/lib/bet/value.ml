(** Runtime values of context variables.

    Context variables are the small set of scalars that influence
    control flow and data sizes (paper §IV).  Integer/float distinction
    is preserved so loop bounds stay exact. *)

type t = I of int | F of float | B of bool

let pp ppf = function
  | I i -> Fmt.int ppf i
  | F f -> Fmt.pf ppf "%g" f
  | B b -> Fmt.bool ppf b

let to_string v = Fmt.str "%a" pp v

let equal a b =
  match (a, b) with
  | I a, I b -> a = b
  | F a, F b -> Float.equal a b
  | B a, B b -> a = b
  | I a, F b | F b, I a -> Float.equal (float_of_int a) b
  | (I _ | F _ | B _), _ -> false

let compare a b =
  match (a, b) with
  | B a, B b -> Bool.compare a b
  | B _, _ -> -1
  | _, B _ -> 1
  | I a, I b -> Int.compare a b
  | (I _ | F _), (I _ | F _) ->
    let f = function I i -> float_of_int i | F f -> f | B _ -> assert false in
    Float.compare (f a) (f b)

let to_float = function
  | I i -> float_of_int i
  | F f -> f
  | B true -> 1.
  | B false -> 0.

let truthy = function B b -> b | I i -> i <> 0 | F f -> f <> 0.

(** Wrap a float as an [I] when it is integral (within 1 ulp-ish), so
    arithmetic on integers stays integral. *)
let of_float f = if Float.is_integer f then I (int_of_float f) else F f

let int i = I i
let float f = F f
let bool b = B b
