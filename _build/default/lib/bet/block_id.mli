(** Static identity of code blocks.

    Hot spots are {e source} code blocks — a loop, a branch arm, a
    function body, or a library call site (§V-A); many BET nodes can
    map to the same static block. *)

type t =
  | Fn of string  (** straight-line statements of a function body *)
  | Loop of int  (** body of the [for]/[while] with this statement id *)
  | Arm of int * bool  (** then/else arm of the [if] with this id *)
  | Libc of int  (** the [lib] call with this statement id *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
