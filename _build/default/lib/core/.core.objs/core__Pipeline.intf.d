lib/core/pipeline.mli: Ast Build Hints Hotpath Hotspot Interp Libmix Machine Perf Registry Roofline Skope_analysis Skope_bet Skope_hw Skope_sim Skope_skeleton Skope_workloads Value
