lib/core/core.ml: Pipeline Skope_analysis Skope_bet Skope_frontend Skope_hw Skope_multinode Skope_report Skope_sim Skope_skeleton Skope_workloads
