(** Per-block hardware counters collected during simulation — the
    stand-in for the paper's profiled measurements (§VI) and the
    source of Fig. 8's issue-rate / instructions-per-L1-miss data. *)

open Skope_bet

type entry = {
  block : Block_id.t;
  mutable cycles : float;
  mutable comp_cycles : float;
  mutable mem_cycles : float;
  mutable instrs : float;
  mutable flops : float;
  mutable loads : int;
  mutable stores : int;
  mutable l1_misses : int;
  mutable l2_misses : int;
  mutable bytes : float;
  mutable execs : int;
}

type t

val create : unit -> t

(** Find or create the entry for a block. *)
val entry : t -> Block_id.t -> entry

val entries : t -> entry list
val total_cycles : t -> float

(** Instructions issued per cycle within the block. *)
val issue_rate : entry -> float

(** Instructions retired per L1 miss ([infinity] with no misses). *)
val instrs_per_l1_miss : entry -> float

val find : t -> Block_id.t -> entry option
