(** Set-associative LRU cache simulator (one instance per level). *)

open Skope_hw

type t = {
  level : Machine.cache_level;
  sets : int;
  line_shift : int;
  tags : int array;
  stamps : int array;
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

(** @raise Invalid_argument on non-positive geometry or a line size
    that is not a power of two. *)
val create : Machine.cache_level -> t

(** Probe with a byte address; [true] on hit.  Misses allocate
    (write-allocate; victim write-back time is folded into the miss
    latency). *)
val access : t -> addr:int -> bool

val reset : t -> unit
val accesses : t -> int
val misses : t -> int
val hits : t -> int
val miss_rate : t -> float
