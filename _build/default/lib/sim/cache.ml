(** Set-associative LRU cache simulator.

    One instance per level.  Tag arrays are flat [int array]s indexed
    by [set * assoc + way]; recency is tracked with a global access
    stamp per way, which implements exact LRU without list
    manipulation. *)

open Skope_hw

type t = {
  level : Machine.cache_level;
  sets : int;
  line_shift : int;
  tags : int array;  (** -1 = invalid *)
  stamps : int array;
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let log2_int n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create (level : Machine.cache_level) : t =
  if level.size_bytes <= 0 || level.line_bytes <= 0 || level.assoc <= 0 then
    invalid_arg "Cache.create: non-positive geometry";
  if level.line_bytes land (level.line_bytes - 1) <> 0 then
    invalid_arg "Cache.create: line size must be a power of two";
  let sets = max 1 (level.size_bytes / (level.line_bytes * level.assoc)) in
  {
    level;
    sets;
    line_shift = log2_int level.line_bytes;
    tags = Array.make (sets * level.assoc) (-1);
    stamps = Array.make (sets * level.assoc) 0;
    clock = 0;
    accesses = 0;
    misses = 0;
  }

(** Probe the cache with a byte address.  Returns [true] on hit;
    misses allocate (write-allocate, no distinction between loads and
    stores — victim writeback time is folded into miss latency). *)
let access t ~addr : bool =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let line = addr lsr t.line_shift in
  let set = line mod t.sets in
  let base = set * t.level.assoc in
  let tag = line in
  let rec find i =
    if i >= t.level.assoc then None
    else if t.tags.(base + i) = tag then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some way ->
    t.stamps.(base + way) <- t.clock;
    true
  | None ->
    t.misses <- t.misses + 1;
    (* Evict the LRU way. *)
    let victim = ref 0 in
    for i = 1 to t.level.assoc - 1 do
      if t.stamps.(base + i) < t.stamps.(base + !victim) then victim := i
    done;
    t.tags.(base + !victim) <- tag;
    t.stamps.(base + !victim) <- t.clock;
    false

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.clock <- 0;
  t.accesses <- 0;
  t.misses <- 0

let accesses t = t.accesses
let misses t = t.misses
let hits t = t.accesses - t.misses

let miss_rate t =
  if t.accesses = 0 then 0. else float_of_int t.misses /. float_of_int t.accesses
