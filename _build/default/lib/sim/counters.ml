(** Per-block hardware counters collected during simulation.

    These play the role of the paper's profiled measurements: exclusive
    cycles per source block (the "gprof + manual timers" baseline of
    §VI) and the counter-derived metrics of Fig. 8 — issue rate and
    instructions per L1 miss. *)

open Skope_bet

type entry = {
  block : Block_id.t;
  mutable cycles : float;
  mutable comp_cycles : float;
  mutable mem_cycles : float;
  mutable instrs : float;
  mutable flops : float;
  mutable loads : int;
  mutable stores : int;
  mutable l1_misses : int;
  mutable l2_misses : int;
  mutable bytes : float;
  mutable execs : int;
}

type t = (Block_id.t, entry) Hashtbl.t

let create () : t = Hashtbl.create 64

let entry (t : t) block =
  match Hashtbl.find_opt t block with
  | Some e -> e
  | None ->
    let e =
      {
        block;
        cycles = 0.;
        comp_cycles = 0.;
        mem_cycles = 0.;
        instrs = 0.;
        flops = 0.;
        loads = 0;
        stores = 0;
        l1_misses = 0;
        l2_misses = 0;
        bytes = 0.;
        execs = 0;
      }
    in
    Hashtbl.add t block e;
    e

let entries (t : t) = Hashtbl.fold (fun _ e l -> e :: l) t []

let total_cycles (t : t) =
  Hashtbl.fold (fun _ e acc -> acc +. e.cycles) t 0.

(** Instructions issued per cycle within the block. *)
let issue_rate e = if e.cycles > 0. then e.instrs /. e.cycles else 0.

(** Instructions retired per L1 miss — the paper's computation
    intensity proxy in Fig. 8. *)
let instrs_per_l1_miss e =
  if e.l1_misses > 0 then e.instrs /. float_of_int e.l1_misses
  else Float.infinity

let find (t : t) block = Hashtbl.find_opt t block
