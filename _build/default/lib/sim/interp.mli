(** Concrete skeleton interpreter with a cycle-level cost model — the
    repo's ground truth, standing in for the paper's real machines and
    native profilers (§VI), and doubling as the gcov-style branch
    profiler (§III-B).

    Programs are compiled once into closures (slot-resolved variables,
    folded constants), then executed with real loop iteration,
    set-associative cache simulation, division latency and SIMD
    throughput — exactly the effects the analytic model ignores. *)

open Skope_skeleton
open Skope_bet
open Skope_hw

exception Brk
exception Cont
exception Ret

(** Raised at compile time for a variable that is neither local nor a
    global input. *)
exception Unbound of string * Loc.t

type config = { machine : Machine.t; libmix : Libmix.t; seed : int64 }

val default_config :
  ?machine:Machine.t -> ?libmix:Libmix.t -> ?seed:int64 -> unit -> config

type result = {
  machine : Machine.t;
  blocks : Skope_analysis.Blockstat.t list;
      (** measured exclusive time per executed block, ranked *)
  total_cycles : float;
  total_time : float;  (** seconds *)
  hints : Hints.t;  (** branch/trip statistics for BET construction *)
  counters : Counters.t;  (** per-block counter detail (Fig. 8) *)
}

(** Execute [program] with [inputs] bound as global constants. *)
val run :
  ?config:config -> inputs:(string * Value.t) list -> Ast.program -> result
