(** Deterministic pseudo-random stream (SplitMix64).

    The simulator uses it to draw the outcomes of data-dependent
    branches — the stand-in for the paper's input data sets.  A fixed
    seed makes every simulation, and hence every "measured" profile,
    reproducible. *)

type t = { mutable state : int64 }

let create seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform float in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

(** Bernoulli draw: [true] with probability [p]. *)
let bernoulli t p = float t < p

(** Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int bound))
