(** Deterministic pseudo-random stream (SplitMix64).

    Draws the outcomes of data-dependent branches — the stand-in for
    the paper's input data sets.  A fixed seed makes every simulation
    reproducible. *)

type t

val create : int64 -> t
val next_int64 : t -> int64

(** Uniform float in [0, 1). *)
val float : t -> float

(** [true] with probability [p]. *)
val bernoulli : t -> float -> bool

(** Uniform int in [0, bound); 0 when [bound <= 0]. *)
val int : t -> int -> int
