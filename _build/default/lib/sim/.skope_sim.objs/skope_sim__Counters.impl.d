lib/sim/counters.ml: Block_id Float Hashtbl Skope_bet
