lib/sim/interp.ml: Array Ast Block_id Bst Cache Counters Eval Float Hashtbl Hints Lazy Libmix List Loc Machine Machines Rng Skope_analysis Skope_bet Skope_hw Skope_skeleton String Value Work
