lib/sim/interp.mli: Ast Counters Hints Libmix Loc Machine Skope_analysis Skope_bet Skope_hw Skope_skeleton Value
