lib/sim/cache.mli: Machine Skope_hw
