lib/sim/rng.mli:
