lib/sim/counters.mli: Block_id Skope_bet
