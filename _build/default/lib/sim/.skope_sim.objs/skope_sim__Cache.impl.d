lib/sim/cache.ml: Array Machine Skope_hw
