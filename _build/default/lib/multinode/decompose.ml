(** Domain decomposition for structured grids.

    Chooses the rank factorization [px * py * pz = p] that minimizes
    the halo surface of each subdomain — the standard choice MPI codes
    like SORD make — and reports the per-rank cell count and exchange
    surface the communication model needs. *)

type grid = { nx : int; ny : int; nz : int }

type t = {
  grid : grid;
  ranks : int;
  px : int;
  py : int;
  pz : int;
  cells_per_rank : float;
  halo_elems : float;  (** elements exchanged per halo swap per rank *)
  neighbors : int;  (** messages per exchange per rank *)
}

let divisors n =
  let rec go i acc =
    if i > n then List.rev acc
    else go (i + 1) (if n mod i = 0 then i :: acc else acc)
  in
  go 1 []

(** Surface area (in elements) of one [cx * cy * cz] subdomain,
    counting each face that has a neighbor. *)
let surface ~px ~py ~pz ~(grid : grid) =
  let cx = float_of_int grid.nx /. float_of_int px in
  let cy = float_of_int grid.ny /. float_of_int py in
  let cz = float_of_int grid.nz /. float_of_int pz in
  let faces_x = if px > 1 then 2. *. cy *. cz else 0. in
  let faces_y = if py > 1 then 2. *. cx *. cz else 0. in
  let faces_z = if pz > 1 then 2. *. cx *. cy else 0. in
  faces_x +. faces_y +. faces_z

(** Best 3D factorization of [ranks] for [grid], minimizing the
    exchange surface. *)
let best ~(grid : grid) ~ranks : t =
  if ranks <= 0 then invalid_arg "Decompose.best: ranks must be positive";
  let best = ref None in
  List.iter
    (fun px ->
      List.iter
        (fun py ->
          if ranks mod (px * py) = 0 then begin
            let pz = ranks / (px * py) in
            let s = surface ~px ~py ~pz ~grid in
            (* Tie-break equal surfaces toward balanced subdomains
               (smallest semi-perimeter), like MPI_Dims_create. *)
            let semi =
              (float_of_int grid.nx /. float_of_int px)
              +. (float_of_int grid.ny /. float_of_int py)
              +. (float_of_int grid.nz /. float_of_int pz)
            in
            match !best with
            | Some (_, _, _, s', semi') when s' < s || (s' = s && semi' <= semi)
              ->
              ()
            | _ -> best := Some (px, py, pz, s, semi)
          end)
        (divisors (ranks / px)))
    (divisors ranks);
  match !best with
  | None -> invalid_arg "Decompose.best: no factorization"
  | Some (px, py, pz, s, _) ->
    let nbr d p = if p > 1 then 2 * d else 0 in
    {
      grid;
      ranks;
      px;
      py;
      pz;
      cells_per_rank =
        float_of_int (grid.nx * grid.ny * grid.nz) /. float_of_int ranks;
      halo_elems = s;
      neighbors = nbr 1 px + nbr 1 py + nbr 1 pz;
    }

let pp ppf t =
  Fmt.pf ppf "%dx%dx%d ranks over %dx%dx%d grid: %.0f cells/rank, %.0f halo \
              elems, %d neighbors"
    t.px t.py t.pz t.grid.nx t.grid.ny t.grid.nz t.cells_per_rank t.halo_elems
    t.neighbors
