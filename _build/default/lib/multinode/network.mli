(** Interconnect models for multi-node projection: first-order
    latency/bandwidth per message, plus an overlap factor for
    communication hidden behind computation. *)

type t = {
  name : string;
  latency_us : float;  (** per-message one-way latency *)
  bandwidth_gbs : float;  (** per-link sustained bandwidth *)
  overlap : float;  (** fraction of communication hidden (0..1) *)
}

val bgq_torus : t
val infiniband : t
val ethernet : t
val all : t list

(** Time for one neighbor exchange: parallel latency, serialized
    bandwidth over [messages] of [bytes] each. *)
val exchange_time : t -> messages:int -> bytes:float -> float

val pp : t Fmt.t
