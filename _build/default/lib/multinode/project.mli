(** Multi-node strong-scaling projection (paper §VIII future work).

    Combines the single-rank analytic projection with the
    decomposition and network models:
    [T(p) = distributed/p + replicated + (1-overlap) * T_halo(p)]. *)

type spec = {
  grid : Decompose.grid;
  fields : int;  (** fields exchanged per halo swap *)
  elem_bytes : int;
  steps : int;  (** halo exchanges over the run *)
  distributed_share : float;
      (** fraction of single-rank time that scales with cells/rank *)
}

type point = {
  ranks : int;
  decomposition : Decompose.t;
  t_compute : float;
  t_comm : float;
  t_total : float;
  speedup : float;
  efficiency : float;
  comm_fraction : float;
}

type scaling = {
  spec : spec;
  network : Network.t;
  t_single : float;
  points : point list;
}

val strong_scaling :
  spec:spec ->
  network:Network.t ->
  t_single:float ->
  ranks_list:int list ->
  unit ->
  scaling

(** First rank count whose communication share exceeds [threshold]
    (default 0.5). *)
val comm_crossover : ?threshold:float -> scaling -> int option

(** SORD's distribution spec: 9 exchanged fields, 8-byte elements. *)
val sord_spec : nx:int -> ny:int -> nz:int -> steps:int -> spec

val pp_point : point Fmt.t
