(** Domain decomposition for structured grids.

    Chooses the rank factorization minimizing each subdomain's halo
    surface (tie-broken toward balanced subdomains, like
    [MPI_Dims_create]). *)

type grid = { nx : int; ny : int; nz : int }

type t = {
  grid : grid;
  ranks : int;
  px : int;
  py : int;
  pz : int;
  cells_per_rank : float;
  halo_elems : float;  (** elements exchanged per halo swap per rank *)
  neighbors : int;  (** messages per exchange per rank *)
}

(** Surface elements of one subdomain under the given factorization,
    counting only faces with neighbors. *)
val surface : px:int -> py:int -> pz:int -> grid:grid -> float

(** @raise Invalid_argument when [ranks <= 0]. *)
val best : grid:grid -> ranks:int -> t

val pp : t Fmt.t
