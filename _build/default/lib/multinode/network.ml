(** Interconnect models for multi-node projection.

    The paper lists extending the framework "to project hot regions
    and performance bottlenecks for multi-node execution" as future
    work (§VIII); this library implements a first-order version using
    the same philosophy as the roofline: a latency/bandwidth model per
    message, no contention simulation. *)

type t = {
  name : string;
  latency_us : float;  (** per-message one-way latency *)
  bandwidth_gbs : float;  (** per-link sustained bandwidth *)
  overlap : float;
      (** fraction of communication hidden behind computation
          (0 = fully exposed, 1 = fully overlapped) *)
}

(** BG/Q 5D torus: low latency, solid bandwidth, good overlap through
    the messaging unit. *)
let bgq_torus =
  { name = "BG/Q torus"; latency_us = 2.5; bandwidth_gbs = 1.8; overlap = 0.7 }

(** Commodity InfiniBand QDR cluster. *)
let infiniband =
  { name = "InfiniBand"; latency_us = 1.5; bandwidth_gbs = 4.0; overlap = 0.3 }

(** 10G Ethernet: high latency, modest bandwidth. *)
let ethernet =
  { name = "10G Ethernet"; latency_us = 20.; bandwidth_gbs = 1.2; overlap = 0.1 }

let all = [ bgq_torus; infiniband; ethernet ]

(** Time for one neighbor exchange of [bytes] per message over
    [messages] concurrent messages (serialized bandwidth, parallel
    latency). *)
let exchange_time t ~messages ~bytes =
  (t.latency_us *. 1e-6)
  +. (float_of_int messages *. bytes /. (t.bandwidth_gbs *. 1e9))

let pp ppf t =
  Fmt.pf ppf "%s: %.1f us, %.1f GB/s, overlap %.0f%%" t.name t.latency_us
    t.bandwidth_gbs (100. *. t.overlap)
