lib/multinode/project.mli: Decompose Fmt Network
