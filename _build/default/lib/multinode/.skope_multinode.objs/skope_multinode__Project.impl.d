lib/multinode/project.ml: Decompose Fmt List Network Option
