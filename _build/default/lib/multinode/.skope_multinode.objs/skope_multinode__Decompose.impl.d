lib/multinode/decompose.ml: Fmt List
