lib/multinode/network.mli: Fmt
