lib/multinode/network.ml: Fmt
