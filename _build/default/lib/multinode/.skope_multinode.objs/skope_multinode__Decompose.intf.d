lib/multinode/decompose.mli: Fmt
