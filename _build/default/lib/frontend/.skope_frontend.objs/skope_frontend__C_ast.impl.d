lib/frontend/c_ast.ml: Fmt List String
