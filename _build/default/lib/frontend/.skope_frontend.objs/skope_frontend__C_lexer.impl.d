lib/frontend/c_lexer.ml: Fmt List String
