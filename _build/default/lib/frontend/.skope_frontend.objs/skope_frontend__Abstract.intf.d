lib/frontend/abstract.mli: Ast C_ast Skope_skeleton
