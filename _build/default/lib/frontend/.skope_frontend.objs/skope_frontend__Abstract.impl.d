lib/frontend/abstract.ml: C_ast Fmt List Map Option Set Skope_skeleton String
