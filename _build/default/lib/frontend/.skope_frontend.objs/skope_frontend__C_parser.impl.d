lib/frontend/c_parser.ml: C_ast C_lexer Fmt List Option
