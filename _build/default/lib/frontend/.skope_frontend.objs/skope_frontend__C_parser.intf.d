lib/frontend/c_parser.mli: C_ast
