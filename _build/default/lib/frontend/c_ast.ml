(** Abstract syntax of the mini-C input language.

    The paper's application analysis engine converts Fortran/C into
    code skeletons with the ROSE compiler (§III-B); this frontend
    plays that role for a C subset rich enough for the array-based
    scientific kernels the paper targets: scalar and array
    declarations, canonical [for] loops, [while], [if]/[else],
    assignments, math-library calls, and [param] declarations that
    mark the input variables of the paper's "hint file". *)

type ty = Tint | Tfloat

let pp_ty ppf = function
  | Tint -> Fmt.string ppf "int"
  | Tfloat -> Fmt.string ppf "double"

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or

type unop = Neg | Not

type expr =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Index of string * expr list  (** array element access *)
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Call of string * expr list  (** math intrinsic, e.g. [exp(x)] *)

type lhs = Lvar of string | Lindex of string * expr list

type stmt = { sloc : int  (** source line *); skind : skind }

and skind =
  | Decl of ty * string * expr option  (** local scalar declaration *)
  | Assign of lhs * expr
  | If of expr * block * block
  | For of {
      var : string;
      init : expr;
      limit_incl : bool;  (** [<=] vs [<] *)
      limit : expr;
      step : expr;  (** from [i++] / [i += c] *)
      body : block;
    }
  | While of expr * block
  | Call_stmt of string * expr list  (** user function call *)
  | Return
  | Break
  | Continue

and block = stmt list

type decl =
  | Param of ty * string  (** input variable (the paper's hint file) *)
  | Array of ty * string * expr list  (** global array with expr dims *)
  | Func of string * (ty * string) list * block

type program = decl list

(** Math-library functions lowered to [lib] skeleton statements
    (semi-analytic modeling, §IV-C). *)
let libm_functions = [ "exp"; "log"; "sqrt"; "rand"; "sincos" ]

let is_libm name = List.mem name libm_functions

let find_func (p : program) name =
  List.find_map
    (function
      | Func (n, params, body) when String.equal n name -> Some (params, body)
      | _ -> None)
    p
