(** Abstraction: mini-C -> code skeleton (the paper's application
    analysis engine, Fig. 1 / §III-B).

    The pass performs what the paper's ROSE-based source-to-source
    translator does:

    - {b instruction-mix counting}: typed walks over each statement
      count floating point operations (divisions separately), integer
      operations, and array loads/stores;
    - {b control-flow abstraction}: canonical [for] loops become
      skeleton loops; conditions that only involve input parameters
      and tracked integer scalars stay analyzable; anything
      data-dependent becomes a [data] branch (line-keyed name) whose
      probability one profiling run will supply;
    - {b unknown values}: an integer scalar assigned from memory (an
      indirection index) can no longer be tracked — its uses in array
      subscripts are replaced by a pseudo-random surrogate within the
      array, preserving the access's cache behaviour class, and loops
      bounded by such values fall back to profiled trip counts;
    - {b library calls}: [exp]/[log]/[sqrt]/[rand]/[sincos] lower to
      [lib] statements for semi-analytic modeling (§IV-C);
    - {b vectorizability}: innermost loops whose accesses are all
      unit-stride in the induction variable and whose bodies are
      branch- and call-free are marked [vec=4], mimicking the native
      compiler's vectorizer. *)

open C_ast
module A = Skope_skeleton.Ast
module B = Skope_skeleton.Builder

type result = {
  program : A.program;
  params : (string * ty) list;
      (** the input variables a hint file must bind *)
  warnings : string list;
}

exception Error of int * string

let error line fmt = Fmt.kstr (fun m -> raise (Error (line, m))) fmt

(* ------------------------------------------------------------------ *)

module Sset = Set.Make (String)
module Smap = Map.Make (String)

type env = {
  params : ty Smap.t;
  arrays : (ty * expr list) Smap.t;  (** element type and dim exprs *)
  funcs : Sset.t;
  mutable locals : ty Smap.t;  (** per-function scalar types *)
  mutable tracked : Sset.t;
      (** int scalars whose value the skeleton still models *)
  mutable loop_vars : string list;  (** innermost first *)
  mutable fresh : int;
  mutable warnings : string list;
}

let warn env fmt =
  Fmt.kstr
    (fun m -> if not (List.mem m env.warnings) then env.warnings <- m :: env.warnings)
    fmt

let fresh env prefix =
  env.fresh <- env.fresh + 1;
  Fmt.str "%s_%d" prefix env.fresh

let var_ty env v =
  match Smap.find_opt v env.locals with
  | Some ty -> Some ty
  | None -> Smap.find_opt v env.params

let rec expr_ty env = function
  | Int_lit _ -> Tint
  | Float_lit _ -> Tfloat
  | Var v -> Option.value ~default:Tint (var_ty env v)
  | Index (a, _) -> (
    match Smap.find_opt a env.arrays with
    | Some (ty, _) -> ty
    | None -> Tfloat)
  | Bin ((Lt | Le | Gt | Ge | Eq | Ne | And | Or), _, _) -> Tint
  | Bin (_, a, b) ->
    if expr_ty env a = Tfloat || expr_ty env b = Tfloat then Tfloat else Tint
  | Un (Not, _) -> Tint
  | Un (Neg, a) -> expr_ty env a
  | Call _ -> Tfloat

(* An expression is analyzable when the skeleton can evaluate it:
   literals, parameters, tracked integer scalars, and arithmetic over
   them. *)
let rec analyzable env = function
  | Int_lit _ | Float_lit _ -> true
  | Var v ->
    Smap.mem v env.params
    || Sset.mem v env.tracked
    || List.mem v env.loop_vars
  | Index _ | Call _ -> false
  | Bin (_, a, b) -> analyzable env a && analyzable env b
  | Un (_, a) -> analyzable env a

(* Translate an analyzable expression to a skeleton expression. *)
let rec trans env (e : expr) : A.expr =
  match e with
  | Int_lit i -> A.Int i
  | Float_lit f -> A.Float f
  | Var v -> A.Var v
  | Bin (op, a, b) -> (
    let a = trans env a and b = trans env b in
    match op with
    | Add -> A.Binop (A.Add, a, b)
    | Sub -> A.Binop (A.Sub, a, b)
    | Mul -> A.Binop (A.Mul, a, b)
    | Div -> A.Binop (A.Div, a, b)
    | Mod -> A.Binop (A.Mod, a, b)
    | Lt -> A.Cmp (A.Lt, a, b)
    | Le -> A.Cmp (A.Le, a, b)
    | Gt -> A.Cmp (A.Gt, a, b)
    | Ge -> A.Cmp (A.Ge, a, b)
    | Eq -> A.Cmp (A.Eq, a, b)
    | Ne -> A.Cmp (A.Ne, a, b)
    | And -> A.And (a, b)
    | Or -> A.Or (a, b))
  | Un (Neg, a) -> A.Unop (A.Neg, trans env a)
  | Un (Not, a) -> A.Unop (A.Not, trans env a)
  | Index _ | Call _ -> assert false

(* Subscript translation: analyzable subscripts translate directly;
   unknown ones (indirection through data) become a pseudo-random
   surrogate within the dimension, keyed to the innermost loop
   variable so the access stream varies per iteration. *)
let trans_subscript env ~array dim_expr (e : expr) : A.expr =
  if analyzable env e then trans env e
  else begin
    let dim =
      if analyzable env dim_expr then trans env dim_expr else A.Int 4096
    in
    warn env
      "subscript of %s at an unknown value; modeled as a pseudo-random \
       access within the dimension"
      array;
    match env.loop_vars with
    | v :: _ -> A.Binop (A.Mod, A.Binop (A.Mul, A.Var v, A.Int 7919), dim)
    | [] -> A.Int 0
  end

(* ------------------------------------------------------------------ *)
(* Instruction-mix measurement of one expression. *)

type mix = {
  mutable flops : int;
  mutable iops : int;
  mutable divs : int;
  mutable loads : A.access list;  (** reverse order *)
  mutable libs : string list;
}

let new_mix () = { flops = 0; iops = 0; divs = 0; loads = []; libs = [] }

let access_of env ~line name (idx : expr list) : A.access =
  match Smap.find_opt name env.arrays with
  | None -> error line "use of undeclared array %s" name
  | Some (_, dims) ->
    if List.length dims <> List.length idx then
      error line "array %s has %d dimensions, subscripted with %d" name
        (List.length dims) (List.length idx);
    {
      A.array = name;
      index = List.map2 (fun d e -> trans_subscript env ~array:name d e) dims idx;
    }

let rec measure env ~line (m : mix) (e : expr) : unit =
  match e with
  | Int_lit _ | Float_lit _ | Var _ -> ()
  | Index (a, idx) ->
    List.iter (measure env ~line m) idx;
    (* subscript arithmetic *)
    m.iops <- m.iops + List.length idx;
    m.loads <- access_of env ~line a idx :: m.loads
  | Bin (op, a, b) ->
    measure env ~line m a;
    measure env ~line m b;
    let float_ctx = expr_ty env a = Tfloat || expr_ty env b = Tfloat in
    (match op with
    | Add | Sub | Mul ->
      if float_ctx then m.flops <- m.flops + 1 else m.iops <- m.iops + 1
    | Div ->
      if float_ctx then begin
        m.flops <- m.flops + 1;
        m.divs <- m.divs + 1
      end
      else m.iops <- m.iops + 1
    | Mod -> m.iops <- m.iops + 1
    | Lt | Le | Gt | Ge | Eq | Ne | And | Or -> m.iops <- m.iops + 1)
  | Un (Neg, a) ->
    measure env ~line m a;
    if expr_ty env a = Tfloat then m.flops <- m.flops + 1
    else m.iops <- m.iops + 1
  | Un (Not, a) ->
    measure env ~line m a;
    m.iops <- m.iops + 1
  | Call ("__prob", args) ->
    (* probability annotation: only the condition costs anything *)
    (match args with c :: _ -> measure env ~line m c | [] -> ())
  | Call (f, args) ->
    List.iter (measure env ~line m) args;
    if not (is_libm f) then
      warn env "unknown function %s in expression treated as a library call" f;
    m.libs <- f :: m.libs

(* Emit skeleton statements realizing a measured mix plus an optional
   store target; [vec] marks vectorizability. *)
let emit_mix ?(vec = 1) env ~line (m : mix) ~(stores : A.access list) :
    A.stmt list =
  ignore env;
  ignore line;
  (* A compiler keeps repeated reads of the same element in a
     register: dedupe structurally identical accesses. *)
  let dedupe accesses =
    List.fold_left
      (fun acc a -> if List.mem a acc then acc else a :: acc)
      [] accesses
    |> List.rev
  in
  let loads = dedupe (List.rev m.loads) in
  let stmts = ref [] in
  if loads <> [] then stmts := B.load loads :: !stmts;
  List.iter (fun l -> stmts := B.lib l :: !stmts) (List.rev m.libs);
  if m.flops > 0 || m.iops > 0 then
    stmts :=
      B.comp ~flops:(A.Int m.flops) ~iops:(A.Int m.iops) ~divs:(A.Int m.divs)
        ~vec ()
      :: !stmts;
  if stores <> [] then stmts := B.store stores :: !stmts;
  List.rev !stmts

(* ------------------------------------------------------------------ *)
(* Statement lowering. *)

let rec lower_block env (b : block) : A.stmt list =
  List.concat_map (lower_stmt env) b

and lower_stmt env (s : stmt) : A.stmt list =
  let line = s.sloc in
  match s.skind with
  | Decl (ty, name, init) -> (
    env.locals <- Smap.add name ty env.locals;
    match init with
    | Some e when ty = Tint && analyzable env e ->
      env.tracked <- Sset.add name env.tracked;
      [ B.let_ name (trans env e) ]
    | Some e ->
      env.tracked <- Sset.remove name env.tracked;
      let m = new_mix () in
      measure env ~line m e;
      emit_mix env ~line m ~stores:[]
    | None -> [])
  | Assign (Lvar name, rhs) ->
    let ty = Option.value ~default:Tint (var_ty env name) in
    if ty = Tint && analyzable env rhs then begin
      env.tracked <- Sset.add name env.tracked;
      [ B.let_ name (trans env rhs) ]
    end
    else begin
      if Sset.mem name env.tracked then begin
        warn env
          "value of %s becomes data-dependent at line %d; no longer tracked"
          name line;
        env.tracked <- Sset.remove name env.tracked
      end;
      let m = new_mix () in
      measure env ~line m rhs;
      (* scalar write itself *)
      m.iops <- m.iops + 1;
      emit_mix env ~line m ~stores:[]
    end
  | Assign (Lindex (a, idx), rhs) ->
    let m = new_mix () in
    measure env ~line m rhs;
    List.iter (measure env ~line m) idx;
    m.iops <- m.iops + List.length idx;
    let store = access_of env ~line a idx in
    emit_mix env ~line m ~stores:[ store ]
  | If (cond, then_, else_) ->
    (* Developer annotation [__prob(cond, p)] declares the
       fall-through probability of a data-dependent branch (the
       paper's developer-supplied hints, refined by profiling). *)
    let cond, declared_p =
      match cond with
      | C_ast.Call ("__prob", [ c; Float_lit p ]) -> (c, Some p)
      | C_ast.Call ("__prob", [ c; Int_lit p ]) -> (c, Some (float_of_int p))
      | c -> (c, None)
    in
    (* Decide analyzability before the arms run (they may untrack the
       very scalars the condition reads). *)
    let cond_static =
      if declared_p = None && analyzable env cond then Some (trans env cond)
      else None
    in
    let m = new_mix () in
    measure env ~line m cond;
    let prefix =
      if m.loads <> [] || m.flops > 0 then emit_mix env ~line m ~stores:[]
      else []
    in
    let saved = env.tracked in
    let then_l = lower_block env then_ in
    env.tracked <- saved;
    let else_l = lower_block env else_ in
    (* Conservatively stop tracking scalars assigned in either arm. *)
    env.tracked <- saved;
    let assigned = assigned_ints then_ @ assigned_ints else_ in
    List.iter
      (fun v -> env.tracked <- Sset.remove v env.tracked)
      assigned;
    let branch =
      match cond_static with
      | Some c -> B.if_ c then_l else_l
      | None ->
        B.if_data
          (fresh env (Fmt.str "branch_l%d" line))
          (A.Float (Option.value ~default:0.5 declared_p))
          then_l else_l
    in
    prefix @ [ branch ]
  | For { var; init; limit_incl; limit; step; body } ->
    let bounds_known =
      analyzable env init && analyzable env limit && analyzable env step
    in
    env.locals <- Smap.add var Tint env.locals;
    if bounds_known then begin
      env.loop_vars <- var :: env.loop_vars;
      let vec = if vectorizable env var body then 4 else 1 in
      let body_l = lower_with_vec env vec body in
      env.loop_vars <- List.tl env.loop_vars;
      let hi =
        if limit_incl then trans env limit
        else A.Binop (A.Sub, trans env limit, A.Int 1)
      in
      [
        B.for_
          ~label:(Fmt.str "for_l%d" line)
          ~step:(trans env step) var (trans env init) hi body_l;
      ]
    end
    else begin
      (* Data-dependent bounds: the trip count comes from profiling,
         and the induction variable's value is unknown per iteration,
         so its uses degrade to surrogate subscripts. *)
      warn env
        "loop bounds at line %d are data-dependent; trip count left to \
         profiling"
        line;
      env.tracked <- Sset.remove var env.tracked;
      let body_l = lower_block env body in
      [
        B.while_
          ~label:(Fmt.str "for_l%d" line)
          (fresh env (Fmt.str "loop_l%d" line))
          ~p_continue:(A.Float 0.9) ~max_iter:(A.Int 1_000_000) body_l;
      ]
    end
  | While (cond, body) ->
    let m = new_mix () in
    measure env ~line m cond;
    let prefix =
      if m.loads <> [] || m.flops > 0 then emit_mix env ~line m ~stores:[]
      else []
    in
    let body_l = lower_block env body in
    prefix
    @ [
        B.while_
          ~label:(Fmt.str "while_l%d" line)
          (fresh env (Fmt.str "while_l%d" line))
          ~p_continue:(A.Float 0.9) ~max_iter:(A.Int 1_000_000) body_l;
      ]
  | Call_stmt (f, args) ->
    if is_libm f then [ B.lib f ]
    else if Sset.mem f env.funcs then begin
      let targs =
        List.map
          (fun a ->
            if analyzable env a then trans env a
            else begin
              warn env "argument of %s at line %d is data-dependent; passed 0"
                f line;
              A.Int 0
            end)
          args
      in
      [ B.call f targs ]
    end
    else begin
      warn env "call to unknown function %s treated as a library call" f;
      [ B.lib f ]
    end
  | Return -> [ B.return_ () ]
  | Break -> [ B.break_ (fresh env (Fmt.str "break_l%d" line)) (A.Float 1.0) ]
  | Continue ->
    [ B.continue_ (fresh env (Fmt.str "continue_l%d" line)) (A.Float 1.0) ]

(* Integer scalars assigned anywhere in a block (for conservative
   tracking across branches). *)
and assigned_ints (b : block) : string list =
  List.concat_map
    (fun (s : stmt) ->
      match s.skind with
      | Assign (Lvar v, _) | Decl (_, v, Some _) -> [ v ]
      | If (_, t, e) -> assigned_ints t @ assigned_ints e
      | For { body; var; _ } -> var :: assigned_ints body
      | While (_, body) -> assigned_ints body
      | _ -> [])
    b

(* A loop is "vectorizable" when its body is straight-line assignments
   whose array accesses are all unit-stride in the induction variable
   and which call no functions. *)
and vectorizable env var (body : block) : bool =
  let ok = ref (body <> []) in
  let rec refs_var = function
    | Var v -> String.equal v var
    | Int_lit _ | Float_lit _ -> false
    | Index (_, idx) -> List.exists refs_var idx
    | Bin (_, a, b) -> refs_var a || refs_var b
    | Un (_, a) -> refs_var a
    | Call (_, args) -> List.exists refs_var args
  in
  let rec check_expr = function
    | Call _ -> ok := false
    | Index (a, idx) -> (
      List.iter check_expr idx;
      match Smap.find_opt a env.arrays with
      | Some (_, dims) when List.length dims = List.length idx -> (
        match List.rev idx with
        | last :: _ -> (
          match last with
          | Var v when String.equal v var -> ()
          | Bin ((Add | Sub), Var v, Int_lit _) when String.equal v var -> ()
          | Bin (Add, Int_lit _, Var v) when String.equal v var -> ()
          (* loop-invariant last subscript: a broadcast, fine *)
          | e -> if refs_var e then ok := false)
        | [] -> ok := false)
      | _ -> ok := false)
    | Bin (_, a, b) ->
      check_expr a;
      check_expr b
    | Un (_, a) -> check_expr a
    | Int_lit _ | Float_lit _ | Var _ -> ()
  in
  List.iter
    (fun (s : stmt) ->
      match s.skind with
      | Assign (lhs, rhs) ->
        check_expr rhs;
        (match lhs with
        | Lindex (a, idx) -> check_expr (Index (a, idx))
        | Lvar _ -> ())
      | Decl (_, _, Some e) -> check_expr e
      | Decl (_, _, None) -> ()
      | If _ | For _ | While _ | Call_stmt _ | Return | Break | Continue ->
        ok := false)
    body;
  !ok

and lower_with_vec env vec (body : block) : A.stmt list =
  if vec = 1 then lower_block env body
  else
    (* Re-tag the comp statements emitted for this straight-line body. *)
    List.map
      (fun (st : A.stmt) ->
        match st.A.kind with
        | A.Comp c -> { st with A.kind = A.Comp { c with A.vec } }
        | _ -> st)
      (lower_block env body)

(* ------------------------------------------------------------------ *)

(** Convert a mini-C program to a code skeleton.

    [name] becomes the skeleton program name.  The result's [params]
    are the [param] declarations; callers bind them as inputs (the
    paper's hint file). *)
let lower ?(name = "imported") (p : program) : result =
  let params =
    List.filter_map (function Param (ty, n) -> Some (n, ty) | _ -> None) p
  in
  let arrays =
    List.filter_map
      (function Array (ty, n, dims) -> Some (n, (ty, dims)) | _ -> None)
      p
  in
  let funcs =
    List.filter_map (function Func (n, _, _) -> Some n | _ -> None) p
  in
  let env =
    {
      params = Smap.of_seq (List.to_seq params);
      arrays = Smap.of_seq (List.to_seq arrays);
      funcs = Sset.of_list funcs;
      locals = Smap.empty;
      tracked = Sset.empty;
      loop_vars = [];
      fresh = 0;
      warnings = [];
    }
  in
  let globals =
    List.filter_map
      (function
        | Array (ty, n, dims) ->
          let dims =
            List.map
              (fun d ->
                if analyzable env d then trans env d
                else error 0 "dimension of array %s must be a parameter expression" n)
              dims
          in
          Some
            (B.array ~elem_bytes:(match ty with Tfloat -> 8 | Tint -> 4) n dims)
        | _ -> None)
      p
  in
  let funcs =
    List.filter_map
      (function
        | Func (fname, fparams, body) ->
          env.locals <-
            List.fold_left
              (fun m (ty, n) -> Smap.add n ty m)
              Smap.empty fparams;
          env.tracked <-
            List.fold_left
              (fun s (ty, n) -> if ty = Tint then Sset.add n s else s)
              Sset.empty fparams;
          env.loop_vars <- [];
          Some (B.func ~params:(List.map snd fparams) fname (lower_block env body))
        | _ -> None)
      p
  in
  if not (List.exists (fun (f : A.func) -> f.A.fname = "main") funcs) then
    error 0 "the program must define main()";
  {
    program = B.program name ~globals funcs;
    params;
    warnings = List.rev env.warnings;
  }
