(** Lexer for the mini-C subset: C-style comments, compound operators
    ([++], [+=], [<=], [&&] ...), integer and floating literals. *)

type token =
  | IDENT of string
  | INT_LIT of int
  | FLOAT_LIT of float
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | PLUSPLUS
  | MINUSMINUS
  | PLUSEQ
  | MINUSEQ
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | ANDAND
  | OROR
  | BANG
  | EOF

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %S" s
  | INT_LIT i -> Fmt.pf ppf "integer %d" i
  | FLOAT_LIT f -> Fmt.pf ppf "float %g" f
  | LPAREN -> Fmt.string ppf "'('"
  | RPAREN -> Fmt.string ppf "')'"
  | LBRACE -> Fmt.string ppf "'{'"
  | RBRACE -> Fmt.string ppf "'}'"
  | LBRACKET -> Fmt.string ppf "'['"
  | RBRACKET -> Fmt.string ppf "']'"
  | SEMI -> Fmt.string ppf "';'"
  | COMMA -> Fmt.string ppf "','"
  | ASSIGN -> Fmt.string ppf "'='"
  | PLUS -> Fmt.string ppf "'+'"
  | MINUS -> Fmt.string ppf "'-'"
  | STAR -> Fmt.string ppf "'*'"
  | SLASH -> Fmt.string ppf "'/'"
  | PERCENT -> Fmt.string ppf "'%'"
  | PLUSPLUS -> Fmt.string ppf "'++'"
  | MINUSMINUS -> Fmt.string ppf "'--'"
  | PLUSEQ -> Fmt.string ppf "'+='"
  | MINUSEQ -> Fmt.string ppf "'-='"
  | LT -> Fmt.string ppf "'<'"
  | LE -> Fmt.string ppf "'<='"
  | GT -> Fmt.string ppf "'>'"
  | GE -> Fmt.string ppf "'>='"
  | EQ -> Fmt.string ppf "'=='"
  | NE -> Fmt.string ppf "'!='"
  | ANDAND -> Fmt.string ppf "'&&'"
  | OROR -> Fmt.string ppf "'||'"
  | BANG -> Fmt.string ppf "'!'"
  | EOF -> Fmt.string ppf "end of input"

exception Error of int * string
(** line, message *)

type lexed = { tok : token; line : int }

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize (src : string) : lexed list =
  let n = String.length src in
  let line = ref 1 in
  let toks = ref [] in
  let push tok = toks := { tok; line = !line } :: !toks in
  let i = ref 0 in
  let peek () = if !i + 1 < n then Some src.[!i + 1] else None in
  while !i < n do
    let c = src.[!i] in
    (match c with
    | '\n' ->
      incr line;
      incr i
    | ' ' | '\t' | '\r' -> incr i
    | '/' when peek () = Some '/' ->
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    | '/' when peek () = Some '*' ->
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && !i + 1 < n && src.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then raise (Error (!line, "unterminated comment"))
    | '(' ->
      push LPAREN;
      incr i
    | ')' ->
      push RPAREN;
      incr i
    | '{' ->
      push LBRACE;
      incr i
    | '}' ->
      push RBRACE;
      incr i
    | '[' ->
      push LBRACKET;
      incr i
    | ']' ->
      push RBRACKET;
      incr i
    | ';' ->
      push SEMI;
      incr i
    | ',' ->
      push COMMA;
      incr i
    | '+' -> (
      match peek () with
      | Some '+' ->
        push PLUSPLUS;
        i := !i + 2
      | Some '=' ->
        push PLUSEQ;
        i := !i + 2
      | _ ->
        push PLUS;
        incr i)
    | '-' -> (
      match peek () with
      | Some '-' ->
        push MINUSMINUS;
        i := !i + 2
      | Some '=' ->
        push MINUSEQ;
        i := !i + 2
      | _ ->
        push MINUS;
        incr i)
    | '*' ->
      push STAR;
      incr i
    | '/' ->
      push SLASH;
      incr i
    | '%' ->
      push PERCENT;
      incr i
    | '<' ->
      if peek () = Some '=' then (
        push LE;
        i := !i + 2)
      else (
        push LT;
        incr i)
    | '>' ->
      if peek () = Some '=' then (
        push GE;
        i := !i + 2)
      else (
        push GT;
        incr i)
    | '=' ->
      if peek () = Some '=' then (
        push EQ;
        i := !i + 2)
      else (
        push ASSIGN;
        incr i)
    | '!' ->
      if peek () = Some '=' then (
        push NE;
        i := !i + 2)
      else (
        push BANG;
        incr i)
    | '&' ->
      if peek () = Some '&' then (
        push ANDAND;
        i := !i + 2)
      else raise (Error (!line, "bitwise '&' is not supported"))
    | '|' ->
      if peek () = Some '|' then (
        push OROR;
        i := !i + 2)
      else raise (Error (!line, "bitwise '|' is not supported"))
    | c when is_digit c ->
      let start = !i in
      let j = ref !i in
      while !j < n && is_digit src.[!j] do
        incr j
      done;
      let is_float = ref false in
      if !j < n && src.[!j] = '.' then begin
        is_float := true;
        incr j;
        while !j < n && is_digit src.[!j] do
          incr j
        done
      end;
      if !j < n && (src.[!j] = 'e' || src.[!j] = 'E') then begin
        is_float := true;
        incr j;
        if !j < n && (src.[!j] = '+' || src.[!j] = '-') then incr j;
        while !j < n && is_digit src.[!j] do
          incr j
        done
      end;
      (* Trailing f/F suffix. *)
      if !j < n && (src.[!j] = 'f' || src.[!j] = 'F') then begin
        is_float := true;
        incr j
      end;
      let text = String.sub src start (!j - start) in
      let text =
        if String.length text > 0 && (text.[String.length text - 1] = 'f' || text.[String.length text - 1] = 'F')
        then String.sub text 0 (String.length text - 1)
        else text
      in
      if !is_float then push (FLOAT_LIT (float_of_string text))
      else push (INT_LIT (int_of_string text));
      i := !j
    | c when is_ident_start c ->
      let start = !i in
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do
        incr j
      done;
      push (IDENT (String.sub src start (!j - start)));
      i := !j
    | c -> raise (Error (!line, Fmt.str "unexpected character %C" c)));
    ()
  done;
  push EOF;
  List.rev !toks
