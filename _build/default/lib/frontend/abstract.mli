(** Abstraction: mini-C -> code skeleton (the paper's source-to-source
    application analysis engine, Fig. 1 / §III-B).

    Counts instruction mixes per statement, keeps analyzable control
    flow symbolic, turns data-dependent conditions into profiled
    [data] branches, replaces untrackable subscripts with
    pseudo-random surrogates, lowers math-library calls to [lib]
    statements, and marks unit-stride straight-line loops
    vectorizable. *)

open Skope_skeleton

type result = {
  program : Ast.program;  (** the generated skeleton *)
  params : (string * C_ast.ty) list;
      (** input variables a hint file must bind *)
  warnings : string list;
}

exception Error of int * string

(** @raise Error when the program has no [main] or uses unsupported
    constructs. *)
val lower : ?name:string -> C_ast.program -> result
