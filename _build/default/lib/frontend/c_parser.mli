(** Recursive-descent parser for the mini-C subset (see the
    implementation header for the grammar).  [for] loops must be
    canonical: initialized induction variable, [<]/[<=] limit,
    [++]/[+= c] update. *)

exception Error of int * string
(** line, message *)

val parse : string -> C_ast.program
val parse_file : string -> C_ast.program
