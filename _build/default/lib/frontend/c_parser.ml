(** Recursive-descent parser for the mini-C subset.

    Grammar sketch:

    {v
    program  ::= top*
    top      ::= "param" type IDENT ";"
               | type IDENT ("[" expr "]")+ ";"          # global array
               | ("void" | type) IDENT "(" params ")" "{" stmt* "}"
    stmt     ::= type IDENT ("=" expr)? ";"              # local scalar
               | lhs ("=" | "+=" | "-=") expr ";"
               | lhs ("++" | "--") ";"
               | "if" "(" expr ")" block ("else" block)?
               | "for" "(" simple ";" expr ";" update ")" block
               | "while" "(" expr ")" block
               | IDENT "(" args ")" ";"
               | "return" ";" | "break" ";" | "continue" ";"
    v}

    Canonical [for] loops only: the induction variable must be
    initialized, compared with [<] or [<=], and advanced with [++] or
    [+= constant]. *)

open C_ast

exception Error of int * string

let error line fmt = Fmt.kstr (fun m -> raise (Error (line, m))) fmt

type state = { mutable toks : C_lexer.lexed list }

let peek st =
  match st.toks with t :: _ -> t | [] -> { C_lexer.tok = C_lexer.EOF; line = 0 }

let peek2 st =
  match st.toks with
  | _ :: t :: _ -> Some t.C_lexer.tok
  | _ -> None

let advance st = match st.toks with _ :: r -> st.toks <- r | [] -> ()

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok =
  let t = next st in
  if t.C_lexer.tok <> tok then
    error t.C_lexer.line "expected %a, found %a" C_lexer.pp_token tok
      C_lexer.pp_token t.C_lexer.tok

let expect_ident st =
  let t = next st in
  match t.C_lexer.tok with
  | C_lexer.IDENT s -> (s, t.C_lexer.line)
  | tok -> error t.C_lexer.line "expected identifier, found %a" C_lexer.pp_token tok

let accept st tok =
  if (peek st).C_lexer.tok = tok then (
    advance st;
    true)
  else false

let type_of_ident = function
  | "int" -> Some Tint
  | "double" | "float" -> Some Tfloat
  | _ -> None

let is_type_kw st =
  match (peek st).C_lexer.tok with
  | C_lexer.IDENT s -> type_of_ident s <> None
  | _ -> false

(* --- expressions ---------------------------------------------------- *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while (peek st).C_lexer.tok = C_lexer.OROR do
    advance st;
    lhs := Bin (Or, !lhs, parse_and st)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_cmp st) in
  while (peek st).C_lexer.tok = C_lexer.ANDAND do
    advance st;
    lhs := Bin (And, !lhs, parse_cmp st)
  done;
  !lhs

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match (peek st).C_lexer.tok with
    | C_lexer.LT -> Some Lt
    | C_lexer.LE -> Some Le
    | C_lexer.GT -> Some Gt
    | C_lexer.GE -> Some Ge
    | C_lexer.EQ -> Some Eq
    | C_lexer.NE -> Some Ne
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance st;
    Bin (op, lhs, parse_add st)

and parse_add st =
  let lhs = ref (parse_mul st) in
  let continue = ref true in
  while !continue do
    match (peek st).C_lexer.tok with
    | C_lexer.PLUS ->
      advance st;
      lhs := Bin (Add, !lhs, parse_mul st)
    | C_lexer.MINUS ->
      advance st;
      lhs := Bin (Sub, !lhs, parse_mul st)
    | _ -> continue := false
  done;
  !lhs

and parse_mul st =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match (peek st).C_lexer.tok with
    | C_lexer.STAR ->
      advance st;
      lhs := Bin (Mul, !lhs, parse_unary st)
    | C_lexer.SLASH ->
      advance st;
      lhs := Bin (Div, !lhs, parse_unary st)
    | C_lexer.PERCENT ->
      advance st;
      lhs := Bin (Mod, !lhs, parse_unary st)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  match (peek st).C_lexer.tok with
  | C_lexer.MINUS ->
    advance st;
    Un (Neg, parse_unary st)
  | C_lexer.BANG ->
    advance st;
    Un (Not, parse_unary st)
  | _ -> parse_atom st

and parse_atom st =
  let t = next st in
  match t.C_lexer.tok with
  | C_lexer.INT_LIT i -> Int_lit i
  | C_lexer.FLOAT_LIT f -> Float_lit f
  | C_lexer.LPAREN ->
    let e = parse_expr st in
    expect st C_lexer.RPAREN;
    e
  | C_lexer.IDENT name -> (
    match (peek st).C_lexer.tok with
    | C_lexer.LPAREN ->
      advance st;
      let args = parse_args st in
      Call (name, args)
    | C_lexer.LBRACKET ->
      let index = ref [] in
      while accept st C_lexer.LBRACKET do
        index := parse_expr st :: !index;
        expect st C_lexer.RBRACKET
      done;
      Index (name, List.rev !index)
    | _ -> Var name)
  | tok -> error t.C_lexer.line "expected expression, found %a" C_lexer.pp_token tok

and parse_args st =
  if accept st C_lexer.RPAREN then []
  else begin
    let first = parse_expr st in
    let rest = ref [] in
    while accept st C_lexer.COMMA do
      rest := parse_expr st :: !rest
    done;
    expect st C_lexer.RPAREN;
    first :: List.rev !rest
  end

(* --- statements ------------------------------------------------------ *)

let parse_lhs st =
  let name, line = expect_ident st in
  if (peek st).C_lexer.tok = C_lexer.LBRACKET then begin
    let index = ref [] in
    while accept st C_lexer.LBRACKET do
      index := parse_expr st :: !index;
      expect st C_lexer.RBRACKET
    done;
    (Lindex (name, List.rev !index), line)
  end
  else (Lvar name, line)

let lhs_to_expr = function
  | Lvar v -> Var v
  | Lindex (a, idx) -> Index (a, idx)

let rec parse_block st : block =
  expect st C_lexer.LBRACE;
  let stmts = ref [] in
  while (peek st).C_lexer.tok <> C_lexer.RBRACE do
    stmts := parse_stmt st :: !stmts
  done;
  expect st C_lexer.RBRACE;
  List.rev !stmts

and parse_stmt st : stmt =
  let t = peek st in
  let line = t.C_lexer.line in
  let mk skind = { sloc = line; skind } in
  match t.C_lexer.tok with
  | C_lexer.IDENT "if" ->
    advance st;
    expect st C_lexer.LPAREN;
    let cond = parse_expr st in
    expect st C_lexer.RPAREN;
    let then_ = parse_block st in
    let else_ =
      if
        match (peek st).C_lexer.tok with
        | C_lexer.IDENT "else" -> true
        | _ -> false
      then begin
        advance st;
        parse_block st
      end
      else []
    in
    mk (If (cond, then_, else_))
  | C_lexer.IDENT "for" ->
    advance st;
    expect st C_lexer.LPAREN;
    (* init: [int i = e] or [i = e] *)
    let var, init =
      if is_type_kw st then begin
        advance st;
        let v, _ = expect_ident st in
        expect st C_lexer.ASSIGN;
        (v, parse_expr st)
      end
      else begin
        let v, _ = expect_ident st in
        expect st C_lexer.ASSIGN;
        (v, parse_expr st)
      end
    in
    expect st C_lexer.SEMI;
    (* cond: [var < e] or [var <= e] *)
    let cv, cline = expect_ident st in
    if cv <> var then error cline "for condition must test %s" var;
    let limit_incl =
      match (next st).C_lexer.tok with
      | C_lexer.LT -> false
      | C_lexer.LE -> true
      | tok -> error cline "for condition must use < or <=, found %a" C_lexer.pp_token tok
    in
    let limit = parse_expr st in
    expect st C_lexer.SEMI;
    (* update: [var++] or [var += c] *)
    let uv, uline = expect_ident st in
    if uv <> var then error uline "for update must advance %s" var;
    let step =
      match (next st).C_lexer.tok with
      | C_lexer.PLUSPLUS -> Int_lit 1
      | C_lexer.PLUSEQ -> parse_expr st
      | tok -> error uline "for update must be ++ or +=, found %a" C_lexer.pp_token tok
    in
    expect st C_lexer.RPAREN;
    mk (For { var; init; limit_incl; limit; step; body = parse_block st })
  | C_lexer.IDENT "while" ->
    advance st;
    expect st C_lexer.LPAREN;
    let cond = parse_expr st in
    expect st C_lexer.RPAREN;
    mk (While (cond, parse_block st))
  | C_lexer.IDENT "return" ->
    advance st;
    expect st C_lexer.SEMI;
    mk Return
  | C_lexer.IDENT "break" ->
    advance st;
    expect st C_lexer.SEMI;
    mk Break
  | C_lexer.IDENT "continue" ->
    advance st;
    expect st C_lexer.SEMI;
    mk Continue
  | C_lexer.IDENT kw when type_of_ident kw <> None ->
    (* local scalar declaration *)
    advance st;
    let ty = Option.get (type_of_ident kw) in
    let name, _ = expect_ident st in
    let init =
      if accept st C_lexer.ASSIGN then Some (parse_expr st) else None
    in
    expect st C_lexer.SEMI;
    mk (Decl (ty, name, init))
  | C_lexer.IDENT name when peek2 st = Some C_lexer.LPAREN -> (
    (* call statement OR assignment to name(...) — only calls make
       sense here *)
    advance st;
    advance st;
    let args = parse_args st in
    expect st C_lexer.SEMI;
    ignore name;
    mk (Call_stmt (name, args)))
  | C_lexer.IDENT _ -> (
    let lhs, lline = parse_lhs st in
    match (next st).C_lexer.tok with
    | C_lexer.ASSIGN ->
      let rhs = parse_expr st in
      expect st C_lexer.SEMI;
      mk (Assign (lhs, rhs))
    | C_lexer.PLUSEQ ->
      let rhs = parse_expr st in
      expect st C_lexer.SEMI;
      mk (Assign (lhs, Bin (Add, lhs_to_expr lhs, rhs)))
    | C_lexer.MINUSEQ ->
      let rhs = parse_expr st in
      expect st C_lexer.SEMI;
      mk (Assign (lhs, Bin (Sub, lhs_to_expr lhs, rhs)))
    | C_lexer.PLUSPLUS ->
      expect st C_lexer.SEMI;
      mk (Assign (lhs, Bin (Add, lhs_to_expr lhs, Int_lit 1)))
    | C_lexer.MINUSMINUS ->
      expect st C_lexer.SEMI;
      mk (Assign (lhs, Bin (Sub, lhs_to_expr lhs, Int_lit 1)))
    | tok -> error lline "expected assignment operator, found %a" C_lexer.pp_token tok)
  | tok -> error line "expected a statement, found %a" C_lexer.pp_token tok

(* --- top level -------------------------------------------------------- *)

let parse_top st : decl =
  let t = peek st in
  let line = t.C_lexer.line in
  match t.C_lexer.tok with
  | C_lexer.IDENT "param" ->
    advance st;
    let ty_name, tline = expect_ident st in
    let ty =
      match type_of_ident ty_name with
      | Some ty -> ty
      | None -> error tline "param needs a type"
    in
    let name, _ = expect_ident st in
    expect st C_lexer.SEMI;
    Param (ty, name)
  | C_lexer.IDENT "void" ->
    advance st;
    let name, _ = expect_ident st in
    expect st C_lexer.LPAREN;
    let params =
      if accept st C_lexer.RPAREN then []
      else begin
        let parse_param () =
          let ty_name, tline = expect_ident st in
          let ty =
            match type_of_ident ty_name with
            | Some ty -> ty
            | None -> error tline "parameter needs a type"
          in
          let pname, _ = expect_ident st in
          (ty, pname)
        in
        let first = parse_param () in
        let rest = ref [] in
        while accept st C_lexer.COMMA do
          rest := parse_param () :: !rest
        done;
        expect st C_lexer.RPAREN;
        first :: List.rev !rest
      end
    in
    Func (name, params, parse_block st)
  | C_lexer.IDENT kw when type_of_ident kw <> None -> (
    advance st;
    let ty = Option.get (type_of_ident kw) in
    let name, _ = expect_ident st in
    match (peek st).C_lexer.tok with
    | C_lexer.LBRACKET ->
      let dims = ref [] in
      while accept st C_lexer.LBRACKET do
        dims := parse_expr st :: !dims;
        expect st C_lexer.RBRACKET
      done;
      expect st C_lexer.SEMI;
      Array (ty, name, List.rev !dims)
    | tok ->
      error line "global %s must be an array or use 'param', found %a" name
        C_lexer.pp_token tok)
  | tok -> error line "expected a declaration, found %a" C_lexer.pp_token tok

(** Parse a mini-C translation unit. *)
let parse (src : string) : program =
  let st = { toks = C_lexer.tokenize src } in
  let decls = ref [] in
  while (peek st).C_lexer.tok <> C_lexer.EOF do
    decls := parse_top st :: !decls
  done;
  List.rev !decls

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse src
