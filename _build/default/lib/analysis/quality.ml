(** Selection-quality metric (paper §VI).

    The developer cares about the {e measured} run-time coverage a hot
    spot selection achieves.  For a selection size [k]:

    [Q(k) = measured coverage of the top-k candidate selection
            / measured coverage of the top-k measured selection]

    so [Q = 1] when the candidate selection (e.g. the model's
    projection, or a profile imported from another machine) captures as
    much real run time as the best possible selection of the same
    size.  The paper reports an average quality of 95.8 % and a worst
    case above 80 %. *)

open Skope_bet

let time_of (measured : Blockstat.t list) id =
  match Blockstat.find measured id with
  | Some b -> b.Blockstat.time
  | None -> 0.

(** Measured time captured by the top-[k] blocks of [candidate]. *)
let captured ~measured ~candidate ~k =
  Hotspot.top_k ~k candidate
  |> List.fold_left
       (fun acc (b : Blockstat.t) -> acc +. time_of measured b.block)
       0.

(** Quality of [candidate]'s top-[k] selection against the [measured]
    profile. *)
let quality ~measured ~candidate ~k =
  let best = captured ~measured ~candidate:measured ~k in
  if best <= 0. then 1. else captured ~measured ~candidate ~k /. best

(** Quality for every selection size 1..k. *)
let curve ~measured ~candidate ~k =
  List.init k (fun i -> quality ~measured ~candidate ~k:(i + 1))

(** Number of blocks common to the top-[k] of both rankings — the
    paper's portability observation (§VII-A: only 4 of the top 10 SORD
    hot spots are shared between Xeon and BG/Q). *)
let overlap ~a ~b ~k =
  let ids l =
    Hotspot.top_k ~k l
    |> List.map (fun (s : Blockstat.t) -> s.block)
    |> Block_id.Set.of_list
  in
  Block_id.Set.cardinal (Block_id.Set.inter (ids a) (ids b))

(** Kendall-style pairwise rank agreement of the top-[k] of [a] within
    [b]'s ranking; 1.0 means identical order.  Used to compare hot
    spot orderings across machines. *)
let rank_agreement ~a ~b ~k =
  let pos l =
    let ranked = Hotspot.top_k ~k:max_int l in
    List.mapi (fun i (s : Blockstat.t) -> (s.block, i)) ranked
  in
  let pa = pos a and pb = pos b in
  let top = Hotspot.top_k ~k a |> List.map (fun (s : Blockstat.t) -> s.block) in
  let find l id = Option.map snd (List.find_opt (fun (b, _) -> Block_id.equal b id) l) in
  let pairs = ref 0 and agree = ref 0 in
  List.iteri
    (fun i x ->
      List.iteri
        (fun j y ->
          if i < j then
            match (find pa x, find pa y, find pb x, find pb y) with
            | Some ax, Some ay, Some bx, Some by ->
              incr pairs;
              if compare ax ay = compare bx by then incr agree
            | _ -> ())
        top)
    top;
  if !pairs = 0 then 1. else float_of_int !agree /. float_of_int !pairs
