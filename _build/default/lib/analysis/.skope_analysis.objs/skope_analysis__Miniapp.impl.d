lib/analysis/miniapp.ml: Ast Block_id Builder Float Fmt Hotpath List Map Node Skope_bet Skope_skeleton String Value
