lib/analysis/miniapp.mli: Ast Hotpath Skope_bet Skope_skeleton Value
