lib/analysis/quality.ml: Block_id Blockstat Hotspot List Option Skope_bet
