lib/analysis/hotpath.mli: Block_id Fmt Hashtbl Node Skope_bet
