lib/analysis/blockstat.ml: Block_id Float Fmt List Roofline Skope_bet Skope_hw Work
