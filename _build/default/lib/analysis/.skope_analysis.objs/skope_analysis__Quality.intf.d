lib/analysis/quality.mli: Block_id Blockstat Skope_bet
