lib/analysis/invocations.mli: Block_id Blockstat Build Fmt Hotspot Perf Skope_bet
