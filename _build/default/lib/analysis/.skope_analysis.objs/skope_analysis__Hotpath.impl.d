lib/analysis/hotpath.ml: Block_id Fmt Hashtbl List Node Option Skope_bet String
