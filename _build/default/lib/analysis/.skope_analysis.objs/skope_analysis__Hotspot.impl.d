lib/analysis/hotspot.ml: Block_id Blockstat List Skope_bet
