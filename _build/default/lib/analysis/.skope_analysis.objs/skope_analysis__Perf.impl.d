lib/analysis/perf.ml: Block_id Blockstat Bst Build Hashtbl List Machine Node Roofline Skope_bet Skope_hw Work
