lib/analysis/hotspot.mli: Block_id Blockstat Skope_bet
