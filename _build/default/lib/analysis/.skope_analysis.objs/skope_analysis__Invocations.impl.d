lib/analysis/invocations.ml: Block_id Blockstat Bst Build Float Fmt Hashtbl Hotspot List Node Option Perf Skope_bet String
