lib/analysis/perf.mli: Blockstat Build Hashtbl Machine Node Roofline Skope_bet Skope_hw
