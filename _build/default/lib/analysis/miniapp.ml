(** Mini-application generation from hot paths (paper §I, §V-C).

    The paper motivates hot-path extraction with mini-app
    construction: "a hot path is conceptually a stripped-down version
    of the workload with only hot spots and the control flows that
    lead to them ... Hot paths can also be used for constructing
    mini-applications."  This module closes that loop: it turns a hot
    path back into a {e runnable} skeleton program —

    - loops on the path become loops with their {e expected} trip
      counts baked in (so the mini-app needs no input model);
    - branch arms become data-dependent branches with the path's
      reaching probabilities;
    - function mounts are inlined;
    - hot blocks keep their exclusive instruction statements (compute,
      memory and library calls) from the original skeleton; cold
      intermediate blocks keep only their control structure;
    - every array the retained statements touch is re-declared.

    The generated program can be pretty-printed to the DSL, analyzed,
    or simulated; the integration tests check that its simulated time
    approximates the hot spots' share of the full application. *)

open Skope_skeleton
open Skope_bet

module Smap = Map.Make (String)

type t = {
  program : Ast.program;  (** the generated mini-app *)
  inputs : (string * Value.t) list;  (** bindings it needs *)
  retained_statements : int;
  original_statements : int;
}

(* Direct instruction statements of a block body (nested blocks are
   represented by the hot path's children, not copied; [lib] calls are
   their own blocks and are emitted by their own path nodes). *)
let exclusive_stmts (b : Ast.block) =
  List.filter
    (fun (s : Ast.stmt) ->
      match s.Ast.kind with
      | Ast.Lib _ -> false
      | _ -> Ast.is_instruction s)
    b

let body_of_block (p : Ast.program) (id : Block_id.t) : Ast.block =
  let find_stmt sid =
    Ast.fold_program
      (fun acc s -> if s.Ast.sid = sid then Some s else acc)
      None p
  in
  match id with
  | Block_id.Fn name -> (
    match Ast.find_func p name with f -> f.Ast.body | exception Not_found -> [])
  | Block_id.Loop sid -> (
    match find_stmt sid with
    | Some { Ast.kind = Ast.For { body; _ }; _ }
    | Some { Ast.kind = Ast.While { body; _ }; _ } ->
      body
    | _ -> [])
  | Block_id.Arm (sid, which) -> (
    match find_stmt sid with
    | Some { Ast.kind = Ast.If { then_; else_; _ }; _ } ->
      if which then then_ else else_
    | _ -> [])
  | Block_id.Libc sid -> (
    match find_stmt sid with Some s -> [ s ] | None -> [])

(* Collect array names accessed in retained statements. *)
let rec arrays_of_stmts acc (stmts : Ast.stmt list) =
  List.fold_left
    (fun acc (s : Ast.stmt) ->
      match s.Ast.kind with
      | Ast.Mem { loads; stores } ->
        List.fold_left
          (fun acc (a : Ast.access) -> Smap.add a.Ast.array () acc)
          acc (loads @ stores)
      | Ast.If { then_; else_; _ } ->
        arrays_of_stmts (arrays_of_stmts acc then_) else_
      | Ast.For { body; _ } | Ast.While { body; _ } -> arrays_of_stmts acc body
      | _ -> acc)
    acc stmts

(* Variables referenced by retained statements that are not bound
   within the mini-app itself (loop variables are re-bound by the
   regenerated loops). *)
let rec free_vars_stmts bound acc (stmts : Ast.stmt list) =
  let expr_vars acc e =
    let rec go acc = function
      | Ast.Var v -> if List.mem v bound then acc else Smap.add v () acc
      | Ast.Int _ | Ast.Float _ | Ast.Bool _ -> acc
      | Ast.Binop (_, a, b) | Ast.Cmp (_, a, b) | Ast.And (a, b) | Ast.Or (a, b)
        ->
        go (go acc a) b
      | Ast.Unop (_, a) -> go acc a
    in
    go acc e
  in
  List.fold_left
    (fun acc (s : Ast.stmt) ->
      match s.Ast.kind with
      | Ast.Comp { flops; iops; divs; _ } ->
        expr_vars (expr_vars (expr_vars acc flops) iops) divs
      | Ast.Mem { loads; stores } ->
        List.fold_left
          (fun acc (a : Ast.access) ->
            List.fold_left expr_vars acc a.Ast.index)
          acc (loads @ stores)
      | Ast.Let (_, e) -> expr_vars acc e
      | Ast.Lib { scale; _ } -> expr_vars acc scale
      | Ast.For { body; var; _ } -> free_vars_stmts (var :: bound) acc body
      | Ast.While { body; _ } -> free_vars_stmts bound acc body
      | Ast.If { then_; else_; _ } ->
        free_vars_stmts bound (free_vars_stmts bound acc then_) else_
      | _ -> acc)
    acc stmts

(** Generate a mini-app from [path] (built over [program]).

    [inputs] are the original input bindings; the subset the mini-app
    still references is re-exported.  The loop trip counts baked into
    the mini-app are per-invocation expectations ([trips] of each path
    node), so the mini-app reproduces one pass over the hot path with
    the original expected repetition structure. *)
let generate ~(program : Ast.program) ~(inputs : (string * Value.t) list)
    (path : Hotpath.t) : t =
  let fresh =
    let n = ref 0 in
    fun prefix ->
      incr n;
      Fmt.str "%s%d" prefix !n
  in
  let rec convert (node : Hotpath.t) : Ast.stmt list =
    let kids = List.concat_map convert node.Hotpath.children in
    let own =
      if node.Hotpath.is_hot then
        exclusive_stmts (body_of_block program node.Hotpath.node.Node.block)
      else []
    in
    let body = own @ kids in
    match node.Hotpath.node.Node.kind with
    | Node.Func _ ->
      (* Inline the mounted function: just its contents. *)
      body
    | Node.Libcall _ ->
      (* The lib statement itself was retained by [exclusive_stmts]
         of its parent if hot; emit it directly from the block. *)
      body_of_block program node.Hotpath.node.Node.block
    | Node.Loop ->
      let trips =
        max 1 (int_of_float (Float.round node.Hotpath.node.Node.trips))
      in
      (* Keep the original loop variable so retained accesses like
         [A[c]] stay bound. *)
      let var =
        let find_stmt sid =
          Ast.fold_program
            (fun acc s -> if s.Ast.sid = sid then Some s else acc)
            None program
        in
        match node.Hotpath.node.Node.block with
        | Block_id.Loop sid -> (
          match find_stmt sid with
          | Some { Ast.kind = Ast.For { var; _ }; _ } -> var
          | _ -> "i__")
        | _ -> "i__"
      in
      if body = [] then []
      else
        [
          Builder.for_
            ~label:(fresh "mini_loop")
            var (Builder.int 1) (Builder.int trips) body;
        ]
    | Node.Arm which ->
      if body = [] then []
      else begin
        let p = node.Hotpath.node.Node.prob in
        let p = if which then p else 1. -. p in
        if p >= 0.999 then body
        else
          [
            Builder.if_data (fresh "mini_branch") (Builder.float p) body [];
          ]
      end
  in
  (* The root is the entry function mount. *)
  let body = convert path in
  let arrays = arrays_of_stmts Smap.empty body in
  let original_arrays =
    List.fold_left
      (fun m (a : Ast.array_decl) -> Smap.add a.Ast.aname a m)
      Smap.empty program.Ast.globals
  in
  let func_arrays =
    List.fold_left
      (fun m (f : Ast.func) ->
        List.fold_left
          (fun m (a : Ast.array_decl) -> Smap.add a.Ast.aname a m)
          m f.Ast.arrays)
      original_arrays program.Ast.funcs
  in
  let globals =
    Smap.fold
      (fun name () acc ->
        match Smap.find_opt name func_arrays with
        | Some decl -> decl :: acc
        | None ->
          { Ast.aname = name; dims = [ Ast.Int 4096 ]; elem_bytes = 8 } :: acc)
      arrays []
  in
  (* Keep only the inputs the mini-app (statements or array dims)
     still references. *)
  let referenced =
    let acc = free_vars_stmts [] Smap.empty body in
    List.fold_left
      (fun acc (d : Ast.array_decl) ->
        List.fold_left
          (fun acc e ->
            let rec go acc = function
              | Ast.Var v -> Smap.add v () acc
              | Ast.Binop (_, a, b) -> go (go acc a) b
              | Ast.Unop (_, a) -> go acc a
              | _ -> acc
            in
            go acc e)
          acc d.Ast.dims)
      acc globals
  in
  let inputs =
    List.filter (fun (name, _) -> Smap.mem name referenced) inputs
  in
  let mini =
    Builder.program
      (program.Ast.pname ^ "_mini")
      ~globals
      [ Builder.func "main" body ]
  in
  {
    program = mini;
    inputs;
    retained_statements = Ast.program_size mini;
    original_statements = Ast.program_size program;
  }
