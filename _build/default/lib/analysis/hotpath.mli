(** Hot-path extraction (paper §V-C).

    Back-traces every hot spot's BET nodes to the root and merges the
    paths: shared prefixes collapse, distinct suffixes branch.  The
    result is a stripped-down view of the workload annotated with
    expected repetitions, probabilities and contexts — the starting
    point for mini-application construction. *)

open Skope_bet

type t = {
  node : Node.t;
  enr : float;
  time : float;  (** projected/measured exclusive seconds *)
  is_hot : bool;  (** an invocation of a selected hot spot *)
  children : t list;
}

(** Prune the BET to the paths reaching blocks in [selection]; [None]
    when nothing matches. *)
val extract :
  selection:Block_id.Set.t ->
  node_time:(int, float) Hashtbl.t ->
  node_enr:(int, float) Hashtbl.t ->
  Node.t ->
  t option

val size : t -> int
val hot_invocations : t -> int

(** All root-to-hot-spot chains. *)
val paths : t -> t list list

val pp : ?total_time:float -> t Fmt.t
