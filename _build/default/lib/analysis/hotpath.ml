(** Hot-path extraction (paper §V-C).

    Each hot spot corresponds to one or more BET nodes; back-tracing a
    node's ancestors to the root yields the control-flow path leading
    to that invocation.  Merging the paths of all hot spots — shared
    prefixes collapse, distinct suffixes branch — produces the hot
    path: a stripped-down skeleton of the workload containing only the
    hot spots and the control flow reaching them, annotated with
    iteration counts, probabilities and invocation contexts.  It is
    the starting point for mini-application construction. *)

open Skope_bet

type t = {
  node : Node.t;
  enr : float;
  time : float;  (** projected/measured exclusive seconds of this node *)
  is_hot : bool;  (** this node is an invocation of a selected hot spot *)
  children : t list;
}

(** [extract ~selection ~node_time ~node_enr root] prunes the BET to
    the paths reaching blocks in [selection].  Returns [None] when no
    node matches (empty selection or cold tree). *)
let extract ~(selection : Block_id.Set.t) ~node_time ~node_enr
    (root : Node.t) : t option =
  let time_of (n : Node.t) =
    Option.value ~default:0. (Hashtbl.find_opt node_time n.Node.id)
  in
  let enr_of (n : Node.t) =
    Option.value ~default:0. (Hashtbl.find_opt node_enr n.Node.id)
  in
  let rec prune (n : Node.t) : t option =
    let kids = List.filter_map prune n.Node.children in
    let hot = Block_id.Set.mem n.Node.block selection in
    if hot || kids <> [] then
      Some
        {
          node = n;
          enr = enr_of n;
          time = time_of n;
          is_hot = hot;
          children = kids;
        }
    else None
  in
  prune root

(** Number of nodes on the hot path. *)
let rec size t = List.fold_left (fun acc c -> acc + size c) 1 t.children

(** Distinct hot spot invocations (hot nodes) on the path. *)
let rec hot_invocations t =
  List.fold_left
    (fun acc c -> acc + hot_invocations c)
    (if t.is_hot then 1 else 0)
    t.children

(** All root-to-hot-spot paths as lists of nodes (for tests and
    mini-app generation). *)
let paths t =
  let rec go prefix t acc =
    let prefix = t :: prefix in
    let acc = if t.is_hot then List.rev prefix :: acc else acc in
    List.fold_left (fun acc c -> go prefix c acc) acc t.children
  in
  List.rev (go [] t [])

let pp ?(total_time = 0.) ppf t =
  let rec go indent t =
    let pct =
      if total_time > 0. then Fmt.str " %4.1f%%" (100. *. t.time /. total_time)
      else ""
    in
    Fmt.pf ppf "%s%s%a [%a] x%.4g p=%.3g%s%s@,"
      (String.make indent ' ')
      (if t.is_hot then "* " else "")
      Node.pp_kind t.node.Node.kind Block_id.pp t.node.Node.block t.enr
      t.node.Node.prob pct
      (if t.node.Node.note = "" then "" else " (" ^ t.node.Node.note ^ ")");
    List.iter (go (indent + 2)) t.children
  in
  Fmt.pf ppf "@[<v>";
  go 0 t;
  Fmt.pf ppf "@]"
