(** Mini-application generation from hot paths (paper §I, §V-C).

    Turns a hot path back into a runnable skeleton: loops carry their
    expected trip counts, branch arms their reaching probabilities,
    function mounts are inlined, hot blocks keep their instruction
    statements, and every touched array is re-declared.  The result
    can be pretty-printed, analyzed or simulated like any skeleton. *)

open Skope_skeleton
open Skope_bet

type t = {
  program : Ast.program;  (** the generated mini-app *)
  inputs : (string * Value.t) list;  (** bindings it still needs *)
  retained_statements : int;
  original_statements : int;
}

val generate :
  program:Ast.program ->
  inputs:(string * Value.t) list ->
  Hotpath.t ->
  t
