(** Per-invocation contexts of a hot spot (paper §V-C, §VII-A): the
    same block reached along different control-flow paths, each with
    its own repetition count, probability and context annotation. *)

open Skope_bet

type invocation = {
  call_path : string list;
      (** block names from the root to (excluding) the invocation *)
  enr : float;  (** expected repetitions of this invocation *)
  prob : float;  (** conditional probability at the invocation site *)
  trips : float;
  time : float;  (** projected exclusive seconds of this invocation *)
  note : string;  (** context annotation (bounds, argument values) *)
}

(** All invocations of a block, most expensive first. *)
val of_block :
  Build.result -> Perf.projection -> Block_id.t -> invocation list

(** Invocation lists for every selected hot spot. *)
val of_selection :
  Build.result ->
  Perf.projection ->
  Hotspot.selection ->
  (Blockstat.t * invocation list) list

val pp_invocation : invocation Fmt.t
