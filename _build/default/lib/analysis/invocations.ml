(** Per-invocation contexts of a hot spot (paper §V-C, §VII-A).

    The same hot spot can be reached along several control-flow paths,
    each invocation operating in a different runtime context and
    consuming a different amount of time; the paper highlights being
    able to "further distinguish different invocations of the same hot
    spot" and report each one's repetitions, probability, and data
    sizes.  Because the BET keeps one node per (block, context), this
    is a read-out: collect the nodes of a block with their ancestor
    chains. *)

open Skope_bet

type invocation = {
  call_path : string list;
      (** block names from the root to (excluding) the invocation *)
  enr : float;  (** expected repetitions of this invocation *)
  prob : float;  (** conditional probability at the invocation site *)
  trips : float;
  time : float;  (** projected exclusive seconds of this invocation *)
  note : string;  (** context annotation (bounds, argument values) *)
}

(** All invocations of [block] in the BET, most expensive first. *)
let of_block (built : Build.result) (projection : Perf.projection)
    (block : Block_id.t) : invocation list =
  let time_of id =
    Option.value ~default:0. (Hashtbl.find_opt projection.Perf.node_time id)
  in
  let rec go (node : Node.t) ~parent_enr ~path acc =
    let enr = node.Node.trips *. node.Node.prob *. parent_enr in
    let acc =
      if Block_id.equal node.Node.block block then
        {
          call_path = List.rev path;
          enr;
          prob = node.Node.prob;
          trips = node.Node.trips;
          time = time_of node.Node.id;
          note = node.Node.note;
        }
        :: acc
      else acc
    in
    let name = Bst.block_name built.Build.bst node.Node.block in
    List.fold_left
      (fun acc c -> go c ~parent_enr:enr ~path:(name :: path) acc)
      acc node.Node.children
  in
  go built.Build.root ~parent_enr:1. ~path:[] []
  |> List.sort (fun a b -> Float.compare b.time a.time)

(** Invocation summaries for every selected hot spot. *)
let of_selection (built : Build.result) (projection : Perf.projection)
    (selection : Hotspot.selection) : (Blockstat.t * invocation list) list =
  List.map
    (fun (s : Hotspot.spot) ->
      (s.Hotspot.stat, of_block built projection s.Hotspot.stat.Blockstat.block))
    selection.Hotspot.spots

let pp_invocation ppf i =
  Fmt.pf ppf "%s  x%.4g p=%.3g trips=%.4g %.3gms%s"
    (String.concat " > " i.call_path)
    i.enr i.prob i.trips (i.time *. 1e3)
    (if i.note = "" then "" else " (" ^ i.note ^ ")")
