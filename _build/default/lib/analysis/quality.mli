(** Selection-quality metric (paper §VI).

    [quality ~measured ~candidate ~k] is the measured run time
    captured by [candidate]'s top-k blocks relative to the best
    possible top-k selection: 1.0 means the candidate selection is as
    good as profiling the real machine. *)

open Skope_bet

(** Measured time captured by the top-[k] blocks of [candidate]. *)
val captured :
  measured:Blockstat.t list -> candidate:Blockstat.t list -> k:int -> float

val quality :
  measured:Blockstat.t list -> candidate:Blockstat.t list -> k:int -> float

(** Quality for every selection size 1..k. *)
val curve :
  measured:Blockstat.t list ->
  candidate:Blockstat.t list ->
  k:int ->
  float list

(** Blocks common to the top-[k] of both rankings (the paper's
    portability observation: SORD shares only 4 of 10 across
    machines). *)
val overlap : a:Blockstat.t list -> b:Blockstat.t list -> k:int -> int

(** Pairwise rank agreement of [a]'s top-[k] within [b]'s ranking;
    1.0 means identical order, 0.0 fully reversed. *)
val rank_agreement :
  a:Blockstat.t list -> b:Blockstat.t list -> k:int -> float

(**/**)

val time_of : Blockstat.t list -> Block_id.t -> float
