(** Plain-text tables with column alignment. *)

type align = Left | Right

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  rows : string list list;
}

(** [aligns] defaults to all-[Left]. *)
val make :
  ?title:string ->
  headers:string list ->
  ?aligns:align list ->
  string list list ->
  t

val render : t -> string
val print : t -> unit

(** Comma-separated values with RFC-4180 quoting (headers included). *)
val to_csv : t -> string
