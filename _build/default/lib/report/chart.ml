(** ASCII charts for the paper's figures.

    [bars] renders one horizontal bar per labeled value (Figs. 6-8
    breakdowns); [stacked_bars] splits each bar into segments
    (compute / overlap / memory); [curves] renders several series
    against a shared integer x-axis as aligned columns plus a coarse
    plot (the coverage and quality curves of Figs. 4-5, 10-13). *)

let bar_width = 40

let bar ~max_value v =
  if max_value <= 0. then ""
  else
    let n =
      int_of_float (Float.round (float_of_int bar_width *. v /. max_value))
    in
    String.make (max 0 (min bar_width n)) '#'

(** [bars ~title ~unit items] where items are [(label, value)]. *)
let bars ?(title = "") ?(unit = "") items : string =
  let buf = Buffer.create 256 in
  if title <> "" then (
    Buffer.add_string buf title;
    Buffer.add_char buf '\n');
  let max_value = List.fold_left (fun a (_, v) -> Float.max a v) 0. items in
  let lwidth =
    List.fold_left (fun a (l, _) -> max a (String.length l)) 0 items
  in
  List.iter
    (fun (label, v) ->
      Buffer.add_string buf
        (Fmt.str "  %-*s %10.4g%s |%s\n" lwidth label v unit
           (bar ~max_value v)))
    items;
  Buffer.contents buf

(** Stacked horizontal bars: each item is
    [(label, segments)] with [(segment_char, value)] pairs. *)
let stacked_bars ?(title = "") items : string =
  let buf = Buffer.create 256 in
  if title <> "" then (
    Buffer.add_string buf title;
    Buffer.add_char buf '\n');
  let total (segs : (char * float) list) =
    List.fold_left (fun a (_, v) -> a +. v) 0. segs
  in
  let max_value = List.fold_left (fun a (_, s) -> Float.max a (total s)) 0. items in
  let lwidth =
    List.fold_left (fun a (l, _) -> max a (String.length l)) 0 items
  in
  List.iter
    (fun (label, segs) ->
      let render_segs =
        String.concat ""
          (List.map
             (fun (c, v) ->
               if max_value <= 0. then ""
               else
                 let n =
                   int_of_float
                     (Float.round (float_of_int bar_width *. v /. max_value))
                 in
                 String.make (max 0 n) c)
             segs)
      in
      Buffer.add_string buf
        (Fmt.str "  %-*s %10.4g |%s\n" lwidth label (total segs) render_segs))
    items;
  Buffer.contents buf

(** Multi-series curves over x = 1..n.  [series] are
    [(name, values)] — shorter series are padded with blanks. *)
let curves ?(title = "") ?(ylabel = "") ~(series : (string * float list) list)
    () : string =
  let buf = Buffer.create 256 in
  if title <> "" then (
    Buffer.add_string buf title;
    Buffer.add_char buf '\n');
  if ylabel <> "" then Buffer.add_string buf (Fmt.str "  (%s)\n" ylabel);
  let n = List.fold_left (fun a (_, v) -> max a (List.length v)) 0 series in
  let headers =
    "k" :: List.map fst series
  in
  let cell v = Fmt.str "%.3f" v in
  let rows =
    List.init n (fun i ->
        string_of_int (i + 1)
        :: List.map
             (fun (_, vals) ->
               match List.nth_opt vals i with
               | Some v -> cell v
               | None -> "")
             series)
  in
  let t =
    Table.make ~headers
      ~aligns:(Table.Right :: List.map (fun _ -> Table.Right) series)
      rows
  in
  Buffer.add_string buf (Table.render t);
  (* Coarse plot: one row per series, one glyph per x. *)
  let glyph v =
    let ticks = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |] in
    let i = int_of_float (Float.round (v *. 9.)) in
    ticks.(max 0 (min 9 i))
  in
  List.iter
    (fun (name, vals) ->
      let maxv = List.fold_left Float.max 1e-30 vals in
      let s = String.init (List.length vals) (fun i -> glyph (List.nth vals i /. maxv)) in
      Buffer.add_string buf (Fmt.str "  %-12s [%s]\n" name s))
    series;
  Buffer.contents buf
