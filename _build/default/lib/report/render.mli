(** Serializers from analysis results to JSON and roofline-position
    tables. *)

open Skope_bet
open Skope_hw
open Skope_analysis

val json_of_work : Work.t -> Json.t
val json_of_blockstat : total_time:float -> Blockstat.t -> Json.t
val json_of_projection : Perf.projection -> Json.t
val json_of_selection : Hotspot.selection -> Json.t
val json_of_hotpath : Hotpath.t -> Json.t

(** Graphviz DOT rendering of a hot path (the paper's Fig. 9 diagram):
    hot spots are filled boxes, edges carry reaching probabilities. *)
val dot_of_hotpath : ?graph_name:string -> Hotpath.t -> string

(** Rows: block, flops/byte, achieved GF/s, attainable GF/s, fraction
    of roof, bound.  The bandwidth leg uses DRAM line traffic under
    the model's cache ratios, so fractions stay within 100%. *)
val roofline_rows :
  ?opts:Roofline.opts ->
  Machine.t ->
  Blockstat.t list ->
  k:int ->
  string list list

val roofline_table :
  ?opts:Roofline.opts -> Machine.t -> Blockstat.t list -> k:int -> Table.t
