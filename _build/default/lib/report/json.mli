(** Minimal JSON emitter (no external dependencies).

    Non-finite floats serialize as [null] (NaN) or out-of-range
    literals; strings are escaped per RFC 8259. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
