lib/report/chart.ml: Array Buffer Float Fmt List String Table
