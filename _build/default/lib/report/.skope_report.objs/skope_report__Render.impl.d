lib/report/render.ml: Block_id Blockstat Buffer Float Fmt Hotpath Hotspot Json List Machine Node Perf Roofline Skope_analysis Skope_bet Skope_hw String Table Work
