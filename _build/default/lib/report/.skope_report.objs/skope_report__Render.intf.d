lib/report/render.mli: Blockstat Hotpath Hotspot Json Machine Perf Roofline Skope_analysis Skope_bet Skope_hw Table Work
