lib/report/table.mli:
