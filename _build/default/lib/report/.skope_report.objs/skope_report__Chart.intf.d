lib/report/chart.mli:
