lib/report/json.mli:
