(** ASCII charts for the paper's figures. *)

(** Horizontal bars, one per [(label, value)]. *)
val bars : ?title:string -> ?unit:string -> (string * float) list -> string

(** Stacked horizontal bars; each item is
    [(label, \[(segment_glyph, value); ...\])]. *)
val stacked_bars :
  ?title:string -> (string * (char * float) list) list -> string

(** Multi-series curves over x = 1..n, rendered as an aligned table
    plus a coarse glyph plot; shorter series pad with blanks. *)
val curves :
  ?title:string ->
  ?ylabel:string ->
  series:(string * float list) list ->
  unit ->
  string
