(** Plain-text table rendering with column alignment.

    Used by the bench harness to print the paper's tables and by the
    CLI for hot-spot listings. *)

type align = Left | Right

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  rows : string list list;
}

let make ?(title = "") ~headers ?(aligns = []) rows =
  let aligns =
    if aligns <> [] then aligns else List.map (fun _ -> Left) headers
  in
  { title; headers; aligns; rows }

let widths t =
  let ncols = List.length t.headers in
  let w = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell ->
        if i < ncols then w.(i) <- max w.(i) (String.length cell))
      row
  in
  measure t.headers;
  List.iter measure t.rows;
  w

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let render t : string =
  let w = widths t in
  let aligns = Array.of_list t.aligns in
  let line row =
    String.concat "  "
      (List.mapi
         (fun i cell ->
           let a = if i < Array.length aligns then aligns.(i) else Left in
           pad a w.(i) cell)
         row)
  in
  let sep =
    String.concat "  "
      (Array.to_list (Array.map (fun n -> String.make n '-') w))
  in
  let buf = Buffer.create 256 in
  if t.title <> "" then (
    Buffer.add_string buf t.title;
    Buffer.add_char buf '\n');
  Buffer.add_string buf (line t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.contents buf

let print t = print_string (render t)

(** Render rows as comma-separated values (headers included). *)
let to_csv t : string =
  let quote s =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
    else s
  in
  let line row = String.concat "," (List.map quote row) in
  String.concat "\n" (line t.headers :: List.map line t.rows) ^ "\n"
