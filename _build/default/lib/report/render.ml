(** Serializers from analysis results to JSON and roofline-position
    tables. *)

open Skope_bet
open Skope_hw
open Skope_analysis

let json_of_work (w : Work.t) =
  Json.Obj
    [
      ("flops", Json.Float w.Work.flops);
      ("iops", Json.Float w.Work.iops);
      ("divs", Json.Float w.Work.divs);
      ("loads", Json.Float w.Work.loads);
      ("stores", Json.Float w.Work.stores);
      ("bytes", Json.Float (Work.bytes w));
    ]

let json_of_blockstat ~total_time (b : Blockstat.t) =
  Json.Obj
    [
      ("block", Json.String (Block_id.to_string b.Blockstat.block));
      ("name", Json.String b.Blockstat.name);
      ("seconds", Json.Float b.Blockstat.time);
      ( "share",
        Json.Float
          (if total_time > 0. then b.Blockstat.time /. total_time else 0.) );
      ("tc", Json.Float b.Blockstat.tc);
      ("tm", Json.Float b.Blockstat.tm);
      ("t_overlap", Json.Float b.Blockstat.t_overlap);
      ("executions", Json.Float b.Blockstat.enr);
      ("static_size", Json.Int b.Blockstat.static_size);
      ("bound", Json.String (Fmt.str "%a" Roofline.pp_bound b.Blockstat.bound));
      ("work", json_of_work b.Blockstat.work);
    ]

let json_of_projection (p : Perf.projection) =
  Json.Obj
    [
      ("machine", Json.String p.Perf.machine.Machine.name);
      ("total_seconds", Json.Float p.Perf.total_time);
      ( "blocks",
        Json.List
          (List.map (json_of_blockstat ~total_time:p.Perf.total_time) p.Perf.blocks)
      );
    ]

let json_of_selection (s : Hotspot.selection) =
  Json.Obj
    [
      ("coverage", Json.Float s.Hotspot.coverage);
      ("leanness", Json.Float s.Hotspot.leanness);
      ( "criteria",
        Json.Obj
          [
            ("time_coverage", Json.Float s.Hotspot.criteria.Hotspot.time_coverage);
            ("code_leanness", Json.Float s.Hotspot.criteria.Hotspot.code_leanness);
          ] );
      ( "spots",
        Json.List
          (List.map
             (fun (sp : Hotspot.spot) ->
               Json.Obj
                 [
                   ("rank", Json.Int sp.Hotspot.rank);
                   ("name", Json.String sp.Hotspot.stat.Blockstat.name);
                   ("coverage", Json.Float sp.Hotspot.coverage);
                   ("cumulative", Json.Float sp.Hotspot.cum_coverage);
                 ])
             s.Hotspot.spots) );
    ]

let rec json_of_hotpath (p : Hotpath.t) =
  Json.Obj
    [
      ("block", Json.String (Block_id.to_string p.Hotpath.node.Node.block));
      ("kind", Json.String (Fmt.str "%a" Node.pp_kind p.Hotpath.node.Node.kind));
      ("hot", Json.Bool p.Hotpath.is_hot);
      ("enr", Json.Float p.Hotpath.enr);
      ("prob", Json.Float p.Hotpath.node.Node.prob);
      ("trips", Json.Float p.Hotpath.node.Node.trips);
      ("seconds", Json.Float p.Hotpath.time);
      ("children", Json.List (List.map json_of_hotpath p.Hotpath.children));
    ]

(** Graphviz DOT rendering of a hot path (the diagram of the paper's
    Fig. 9): hot spots are filled boxes, structural nodes are plain
    ellipses, and edges carry the reaching probability. *)
let dot_of_hotpath ?(graph_name = "hotpath") (p : Hotpath.t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Fmt.str "digraph %s {\n" graph_name);
  Buffer.add_string buf "  rankdir=TB;\n  node [fontsize=10];\n";
  let escape s =
    String.concat "\\\"" (String.split_on_char '"' s)
  in
  let next = ref 0 in
  let rec emit (t : Hotpath.t) : int =
    let id = !next in
    incr next;
    let label =
      Fmt.str "%s\\nx%.4g"
        (escape (Block_id.to_string t.Hotpath.node.Node.block))
        t.Hotpath.enr
    in
    let style =
      if t.Hotpath.is_hot then
        " shape=box style=filled fillcolor=\"#ffcccc\""
      else " shape=ellipse"
    in
    Buffer.add_string buf (Fmt.str "  n%d [label=\"%s\"%s];\n" id label style);
    List.iter
      (fun (c : Hotpath.t) ->
        let cid = emit c in
        Buffer.add_string buf
          (Fmt.str "  n%d -> n%d [label=\"p=%.3g\"];\n" id cid
             c.Hotpath.node.Node.prob))
      t.Hotpath.children;
    id
  in
  ignore (emit p);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** Roofline position of each block: operational intensity, attainable
    performance under the roof, achieved performance, and how close to
    the roof the block runs. *)
let roofline_rows ?(opts = Roofline.default_opts) (m : Machine.t)
    (blocks : Blockstat.t list) ~k : string list list =
  List.filteri (fun i _ -> i < k) blocks
  |> List.filter_map (fun (b : Blockstat.t) ->
         if b.Blockstat.time <= 0. then None
         else begin
           let w = b.Blockstat.work in
           let oi = Work.intensity w in
           let achieved = w.Work.flops /. b.Blockstat.time in
           (* The roof's bandwidth leg is DRAM traffic: accesses that
              miss both cache levels fetch whole lines (same traffic
              model as Roofline.memory_time). *)
           let dram_bytes =
             Work.mem_accesses w
             *. (1. -. opts.Roofline.hit_l1)
             *. (1. -. opts.Roofline.hit_l2)
             *. float_of_int m.Machine.l2.Machine.line_bytes
           in
           let attainable =
             if dram_bytes > 0. then
               Roofline.attainable ~opts m ~oi:(w.Work.flops /. dram_bytes)
             else Machine.peak_flops m
           in
           Some
             [
               b.Blockstat.name;
               (if Float.is_finite oi then Fmt.str "%.3f" oi else "inf");
               Fmt.str "%.3g" (achieved /. 1e9);
               Fmt.str "%.3g" (attainable /. 1e9);
               Fmt.str "%.1f%%" (100. *. achieved /. attainable);
               Fmt.str "%a" Roofline.pp_bound b.Blockstat.bound;
             ]
         end)

let roofline_table ?(opts = Roofline.default_opts) (m : Machine.t)
    (blocks : Blockstat.t list) ~k : Table.t =
  Table.make
    ~title:
      (Fmt.str "roofline positions on %s (peak %.1f GF/s, %.1f GB/s)"
         m.Machine.name
         (Machine.peak_flops m /. 1e9)
         m.Machine.mem_bw_gbs)
    ~headers:
      [ "block"; "flops/byte"; "achieved GF/s"; "attainable GF/s"; "of roof";
        "bound" ]
    ~aligns:Table.[ Left; Right; Right; Right; Right; Left ]
    (roofline_rows ~opts m blocks ~k)
