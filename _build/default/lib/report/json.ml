(** Minimal JSON emitter (no external dependencies).

    Produces machine-readable analysis results for downstream tools —
    the paper pitches its output as input to auto-tuners and compilers
    (§II-b, §V-C); this is the interchange format. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else if Float.is_finite f then Printf.sprintf "%.17g" f
  else if Float.is_nan f then "null"
  else if f > 0. then "1e999"
  else "-1e999"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf
