(** Pretty-printer for skeleton programs.

    Emits the concrete DSL syntax accepted by {!Parser}; the round
    trip [Parser.parse (Pretty.to_string p)] reproduces [p] up to
    statement ids and source locations (checked by property tests). *)

val pp_expr : Ast.expr Fmt.t
val pp_access : Ast.access Fmt.t
val pp_cond : Ast.cond Fmt.t
val pp_program : Ast.program Fmt.t
val to_string : Ast.program -> string
