(** Source locations for skeleton statements. *)

type t = { file : string; line : int }

(** Placeholder location for programs built with {!Builder}. *)
val none : t

val make : file:string -> line:int -> t
val pp : t Fmt.t
val to_string : t -> string
val equal : t -> t -> bool
