(** Source locations for skeleton statements.

    Skeletons are small, so a location is just a file name and a line
    number; it is used to give hot spots human-readable names and to
    report parse errors. *)

type t = { file : string; line : int }

let none = { file = "<builtin>"; line = 0 }

let make ~file ~line = { file; line }

let pp ppf { file; line } = Fmt.pf ppf "%s:%d" file line

let to_string t = Fmt.str "%a" pp t

let equal a b = String.equal a.file b.file && a.line = b.line
