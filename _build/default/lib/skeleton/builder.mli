(** Combinator API for constructing skeleton programs directly in
    OCaml, mirroring what the paper's source-to-source engine emits.

    The arithmetic and comparison operators are shadowed to build
    {!Ast.expr} values, so open this module locally:

    {[
      let open Builder in
      for_ "i" (int 1) (var "n") [ comp ~flops:(int 4) () ]
    ]} *)

(** {1 Expressions} *)

val int : int -> Ast.expr
val float : float -> Ast.expr
val bool : bool -> Ast.expr
val var : string -> Ast.expr
val ( + ) : Ast.expr -> Ast.expr -> Ast.expr
val ( - ) : Ast.expr -> Ast.expr -> Ast.expr
val ( * ) : Ast.expr -> Ast.expr -> Ast.expr
val ( / ) : Ast.expr -> Ast.expr -> Ast.expr
val ( % ) : Ast.expr -> Ast.expr -> Ast.expr
val min_ : Ast.expr -> Ast.expr -> Ast.expr
val max_ : Ast.expr -> Ast.expr -> Ast.expr
val pow : Ast.expr -> Ast.expr -> Ast.expr
val ( < ) : Ast.expr -> Ast.expr -> Ast.expr
val ( <= ) : Ast.expr -> Ast.expr -> Ast.expr
val ( > ) : Ast.expr -> Ast.expr -> Ast.expr
val ( >= ) : Ast.expr -> Ast.expr -> Ast.expr
val ( == ) : Ast.expr -> Ast.expr -> Ast.expr
val ( != ) : Ast.expr -> Ast.expr -> Ast.expr
val ( && ) : Ast.expr -> Ast.expr -> Ast.expr
val ( || ) : Ast.expr -> Ast.expr -> Ast.expr
val neg : Ast.expr -> Ast.expr
val not_ : Ast.expr -> Ast.expr
val floor_ : Ast.expr -> Ast.expr
val ceil_ : Ast.expr -> Ast.expr
val sqrt_ : Ast.expr -> Ast.expr
val log2_ : Ast.expr -> Ast.expr
val abs_ : Ast.expr -> Ast.expr

(** {1 Statements} *)

val stmt : ?label:string -> ?loc:Loc.t -> Ast.kind -> Ast.stmt

(** Computation characteristics per execution; [vec] is the SIMD width
    the native compiler would achieve (simulator-only, see
    {!Ast.comp}). *)
val comp :
  ?label:string ->
  ?flops:Ast.expr ->
  ?iops:Ast.expr ->
  ?divs:Ast.expr ->
  ?vec:int ->
  unit ->
  Ast.stmt

(** [a_ name idx] is an array access. *)
val a_ : string -> Ast.expr list -> Ast.access

val load : ?label:string -> Ast.access list -> Ast.stmt
val store : ?label:string -> Ast.access list -> Ast.stmt
val let_ : ?label:string -> string -> Ast.expr -> Ast.stmt

(** Branch with a condition over context variables. *)
val if_ : ?label:string -> Ast.expr -> Ast.block -> Ast.block -> Ast.stmt

(** Data-dependent branch taken with probability [p]; the name keys
    the branch in the profiler's hint table. *)
val if_data :
  ?label:string -> string -> Ast.expr -> Ast.block -> Ast.block -> Ast.stmt

val for_ :
  ?label:string ->
  ?step:Ast.expr ->
  string ->
  Ast.expr ->
  Ast.expr ->
  Ast.block ->
  Ast.stmt

val while_ :
  ?label:string ->
  string ->
  p_continue:Ast.expr ->
  max_iter:Ast.expr ->
  Ast.block ->
  Ast.stmt

val call : ?label:string -> string -> Ast.expr list -> Ast.stmt

val lib :
  ?label:string -> ?args:Ast.expr list -> ?scale:Ast.expr -> string -> Ast.stmt

val return_ : ?label:string -> unit -> Ast.stmt
val break_ : ?label:string -> string -> Ast.expr -> Ast.stmt
val continue_ : ?label:string -> string -> Ast.expr -> Ast.stmt

(** {1 Declarations} *)

val array : ?elem_bytes:int -> string -> Ast.expr list -> Ast.array_decl

val func :
  ?params:string list ->
  ?arrays:Ast.array_decl list ->
  string ->
  Ast.block ->
  Ast.func

(** Assemble and renumber a program. *)
val program :
  ?globals:Ast.array_decl list ->
  ?entry:string ->
  string ->
  Ast.func list ->
  Ast.program
