(** Combinator API for constructing skeleton programs directly in
    OCaml.

    The bundled workload models (lib/workloads) are written with these
    combinators rather than parsed from text, mirroring how the paper's
    analysis engine emits skeletons from ROSE.  All expression helpers
    are re-exported so a workload file reads close to the DSL:

    {[
      let open Builder in
      func "main" [ "n" ]
        [
          for_ "i" (int 1) (var "n")
            [ comp ~flops:(int 4) (); load [ a_ "x" [ var "i" ] ] ];
        ]
    ]} *)

open Ast

(* Expressions ------------------------------------------------------- *)

let int i = Int i
let float f = Float f
let bool b = Bool b
let var v = Var v
let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( / ) a b = Binop (Div, a, b)
let ( % ) a b = Binop (Mod, a, b)
let min_ a b = Binop (Min, a, b)
let max_ a b = Binop (Max, a, b)
let pow a b = Binop (Pow, a, b)
let ( < ) a b = Cmp (Lt, a, b)
let ( <= ) a b = Cmp (Le, a, b)
let ( > ) a b = Cmp (Gt, a, b)
let ( >= ) a b = Cmp (Ge, a, b)
let ( == ) a b = Cmp (Eq, a, b)
let ( != ) a b = Cmp (Ne, a, b)
let ( && ) a b = And (a, b)
let ( || ) a b = Or (a, b)
let neg a = Unop (Neg, a)
let not_ a = Unop (Not, a)
let floor_ a = Unop (Floor, a)
let ceil_ a = Unop (Ceil, a)
let sqrt_ a = Unop (Sqrt, a)
let log2_ a = Unop (Log2, a)
let abs_ a = Unop (Abs, a)

(* Statements -------------------------------------------------------- *)

let stmt ?label ?(loc = Loc.none) kind = { sid = -1; loc; label; kind }

let comp ?label ?(flops = Int 0) ?(iops = Int 0) ?(divs = Int 0) ?(vec = 1) ()
    =
  stmt ?label (Comp { flops; iops; divs; vec })

(** [a_ name idx] is an array access. *)
let a_ array index = { array; index }

let load ?label accesses = stmt ?label (Mem { loads = accesses; stores = [] })
let store ?label accesses = stmt ?label (Mem { loads = []; stores = accesses })
let let_ ?label v e = stmt ?label (Let (v, e))

let if_ ?label cond then_ else_ =
  stmt ?label (If { cond = Cexpr cond; then_; else_ })

(** Data-dependent branch taken with probability [p]. *)
let if_data ?label name p then_ else_ =
  stmt ?label (If { cond = Cdata { name; p }; then_; else_ })

let for_ ?label ?(step = Int 1) v lo hi body =
  stmt ?label (For { var = v; lo; hi; step; body })

let while_ ?label name ~p_continue ~max_iter body =
  stmt ?label (While { name; p_continue; max_iter; body })

let call ?label f args = stmt ?label (Call (f, args))

let lib ?label ?(args = []) ?(scale = Int 1) name =
  stmt ?label (Lib { name; args; scale })

let return_ ?label () = stmt ?label Return
let break_ ?label name p = stmt ?label (Break { name; p })
let continue_ ?label name p = stmt ?label (Continue { name; p })

(* Declarations ------------------------------------------------------ *)

let array ?(elem_bytes = 8) aname dims = { aname; dims; elem_bytes }

let func ?(params = []) ?(arrays = []) fname body =
  { fname; params; arrays; body }

(** Assemble and renumber a program. *)
let program ?(globals = []) ?(entry = "main") pname funcs =
  Ast.renumber { pname; globals; funcs; entry }
