(** Abstract syntax of the SKOPE-like code skeleton language.

    A skeleton preserves the control-flow structure of the original
    application (functions, loops, branches) but replaces instruction
    sequences with performance characteristics: operation counts,
    memory access patterns, and data-dependent branch statistics
    (paper §III-A).  Expressions range over the {e context} — the small
    set of variables that influence control flow and data sizes. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Min
  | Max
  | Pow

type cmpop = Lt | Le | Gt | Ge | Eq | Ne

type unop = Neg | Not | Floor | Ceil | Sqrt | Log2 | Abs

type expr =
  | Int of int
  | Float of float
  | Bool of bool
  | Var of string
  | Binop of binop * expr * expr
  | Cmp of cmpop * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Unop of unop * expr

(** A single access to a named array; [index] has one expression per
    dimension.  The element size comes from the array declaration. *)
type access = { array : string; index : expr list }

(** Branch conditions.

    [Cexpr e] is a condition over context variables that the model can
    evaluate analytically.  [Cdata] is a data-dependent condition whose
    outcome is unknowable statically: [name] keys the branch in the
    profiler's hint table, and [p] is the developer-declared
    fall-through (true) probability used when no profile is available.
    The simulator draws the outcome pseudo-randomly with probability
    [p], standing in for the input data (DESIGN.md §2). *)
type cond =
  | Cexpr of expr
  | Cdata of { name : string; p : expr }

(** Computation characteristics of a straight-line region, per single
    execution.  [divs] is the subset of [flops] that are divisions and
    [vec] the SIMD width the native compiler would achieve — both are
    honoured by the ground-truth simulator but deliberately ignored by
    the analytic roofline model, reproducing the paper's two dominant
    error sources (§VII-B/§VII-C). *)
type comp = { flops : expr; iops : expr; divs : expr; vec : int }

type stmt = { sid : int; loc : Loc.t; label : string option; kind : kind }

and kind =
  | Comp of comp
  | Mem of { loads : access list; stores : access list }
  | Let of string * expr
  | If of { cond : cond; then_ : block; else_ : block }
  | For of { var : string; lo : expr; hi : expr; step : expr; body : block }
      (** Iterates [var] over [lo, lo+step, ...] while [var <= hi]
          (inclusive; [step] must evaluate > 0). *)
  | While of { name : string; p_continue : expr; max_iter : expr; body : block }
      (** A data-dependent loop: each iteration continues with
          probability [p_continue], capped at [max_iter] iterations.
          [name] keys the loop in the profiler's hint table. *)
  | Call of string * expr list
  | Lib of { name : string; args : expr list; scale : expr }
      (** Opaque library call modeled semi-analytically (§IV-C):
          [scale] multiplies the per-call instruction-mix profile
          registered for [name]. *)
  | Return
  | Break of { name : string; p : expr }
      (** Data-dependent early exit: executed with probability [p] per
          reaching execution; promoted to the enclosing loop (§IV-B). *)
  | Continue of { name : string; p : expr }

and block = stmt list

type array_decl = { aname : string; dims : expr list; elem_bytes : int }

type func = {
  fname : string;
  params : string list;
  arrays : array_decl list;
  body : block;
}

type program = {
  pname : string;
  globals : array_decl list;
  funcs : func list;
  entry : string;
}

let comp_zero = { flops = Int 0; iops = Int 0; divs = Int 0; vec = 1 }

(** [find_func p name] returns the function named [name].
    @raise Not_found if absent. *)
let find_func p name = List.find (fun f -> String.equal f.fname name) p.funcs

let entry_func p = find_func p p.entry

(** Fold over every statement of a block, depth first, pre-order. *)
let rec fold_block f acc (b : block) = List.fold_left (fold_stmt f) acc b

and fold_stmt f acc s =
  let acc = f acc s in
  match s.kind with
  | Comp _ | Mem _ | Let _ | Call _ | Lib _ | Return | Break _ | Continue _ ->
    acc
  | If { then_; else_; _ } -> fold_block f (fold_block f acc then_) else_
  | For { body; _ } | While { body; _ } -> fold_block f acc body

let fold_program f acc p =
  List.fold_left (fun acc fn -> fold_block f acc fn.body) acc p.funcs

(** Number of statements in a program (all functions, all nesting). *)
let program_size p = fold_program (fun n _ -> n + 1) 0 p

(** Statements that stand for machine instructions when computing the
    code-leanness criterion (§V-B): computation, memory, scalar
    bookkeeping and opaque library calls.  Structural statements
    (loops, branches, calls) carry no instruction weight themselves. *)
let is_instruction s =
  match s.kind with
  | Comp _ | Mem _ | Let _ | Lib _ -> true
  | If _ | For _ | While _ | Call _ | Return | Break _ | Continue _ -> false

(* A [comp flops=15] statement summarizes ~15 static instructions of
   the original source; count expressions that are not literals (rare)
   at a nominal 4. *)
let expr_weight = function
  | Int n when n >= 0 -> n
  | Int _ -> 0
  | Float f when f >= 0. -> int_of_float f
  | _ -> 4

(** Static instruction weight of a statement: how many machine
    instructions of the original program it stands for.  This is the
    unit of the code-leanness criterion. *)
let stmt_weight s =
  match s.kind with
  | Comp { flops; iops; divs; _ } ->
    1 + expr_weight flops + expr_weight iops + expr_weight divs
  | Mem { loads; stores } -> List.length loads + List.length stores
  | Let _ -> 1
  | Lib _ -> 8
  | If _ | For _ | While _ | Call _ | Return | Break _ | Continue _ -> 0

let instruction_count p = fold_program (fun n s -> n + stmt_weight s) 0 p

(** Renumber every statement with a fresh dense id (pre-order over
    functions in declaration order).  Parsers and builders call this so
    that statement ids are stable identities for profiling and
    hot-spot naming. *)
let renumber (p : program) : program =
  let next = ref 0 in
  let fresh () =
    let i = !next in
    incr next;
    i
  in
  let rec stmt s =
    let sid = fresh () in
    let kind =
      match s.kind with
      | (Comp _ | Mem _ | Let _ | Call _ | Lib _ | Return | Break _ | Continue _)
        as k ->
        k
      | If r -> If { r with then_ = block r.then_; else_ = block r.else_ }
      | For r -> For { r with body = block r.body }
      | While r -> While { r with body = block r.body }
    in
    { s with sid; kind }
  and block b = List.map stmt b in
  let funcs = List.map (fun f -> { f with body = block f.body }) p.funcs in
  { p with funcs }
