(** Recursive-descent parser for the skeleton DSL.

    See the module implementation header for the grammar.  Parsed
    programs are renumbered with dense pre-order statement ids. *)

exception Error of Loc.t * string

(** Parse a complete skeleton program from source text.
    @raise Error on syntax errors.
    @raise Lexer.Error on lexical errors. *)
val parse : file:string -> string -> Ast.program

(** Parse a skeleton program from a file on disk. *)
val parse_file : string -> Ast.program
