(** Lexer for the skeleton DSL. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | COLON
  | SEMI
  | AT
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | CARET
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | ANDAND
  | OROR
  | BANG
  | EOF

val pp_token : token Fmt.t

exception Error of Loc.t * string

type lexed = { tok : token; tloc : Loc.t }

(** Tokenize [src]; [file] is used for locations only.  Comments run
    from ['#'] to end of line; the token stream always ends with
    {!EOF}.
    @raise Error on malformed input. *)
val tokenize : file:string -> string -> lexed list
