lib/skeleton/pretty.mli: Ast Fmt
