lib/skeleton/parser.mli: Ast Loc
