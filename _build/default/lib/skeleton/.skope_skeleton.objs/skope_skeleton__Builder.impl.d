lib/skeleton/builder.ml: Ast Loc
