lib/skeleton/lexer.ml: Fmt List Loc String
