lib/skeleton/builder.mli: Ast Loc
