lib/skeleton/parser.ml: Ast Filename Fmt Lexer List Loc String
