lib/skeleton/validate.ml: Ast Fmt Hashtbl List Loc Map Set Stdlib String
