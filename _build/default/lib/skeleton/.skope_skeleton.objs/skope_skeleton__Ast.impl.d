lib/skeleton/ast.ml: List Loc String
