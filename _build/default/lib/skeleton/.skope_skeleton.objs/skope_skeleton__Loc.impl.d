lib/skeleton/loc.ml: Fmt String
