lib/skeleton/loc.mli: Fmt
