lib/skeleton/lexer.mli: Fmt Loc
