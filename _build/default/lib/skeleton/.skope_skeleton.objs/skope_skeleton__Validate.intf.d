lib/skeleton/validate.mli: Ast Fmt Loc
