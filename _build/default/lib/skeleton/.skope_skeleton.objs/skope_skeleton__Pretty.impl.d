lib/skeleton/pretty.ml: Ast Fmt List String
