(* Import a C kernel through the frontend (the paper's
   source-to-source analysis engine), profile it once, and project it
   across machines — the complete Fig. 1 workflow starting from
   source code.

   Run with: dune exec examples/import_c.exe *)

open Core

let source =
  {|
/* Gauss-Seidel-flavored smoother with a data-dependent relaxation. */
param int n;
param int sweeps;

double u[n][n];
double f[n][n];

void smooth() {
  for (int i = 1; i < n - 1; i++) {
    for (int j = 1; j < n - 1; j++) {
      u[i][j] = 0.2 * (u[i+1][j] + u[i-1][j] + u[i][j+1] + u[i][j-1] + f[i][j]);
      if (__prob(u[i][j] > 1000.0, 0.02)) {
        u[i][j] = u[i][j] / 2.0;   /* rare clamp: data-dependent */
      }
    }
  }
}

void main() {
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++) {
      u[i][j] = 0.0;
      f[i][j] = 1.0;
    }
  }
  for (int s = 0; s < sweeps; s++) {
    smooth();
  }
}
|}

let () =
  (* 1. Source -> skeleton. *)
  let c = Frontend.C_parser.parse source in
  let r = Frontend.Abstract.lower ~name:"smoother" c in
  List.iter (fun w -> Fmt.pr "frontend warning: %s@." w) r.warnings;
  Fmt.pr "Generated skeleton (%d statements):@.%s@."
    (Skeleton.Ast.program_size r.program)
    (Skeleton.Pretty.to_string r.program);

  (* 2. Bind the hint-file inputs and profile once locally. *)
  let inputs =
    [ ("n", Bet.Value.int 256); ("sweeps", Bet.Value.int 10) ]
  in
  Skeleton.Validate.check_exn ~inputs:(List.map fst inputs) r.program;
  let hints =
    Pipeline.profile ~libmix:Hw.Libmix.default ~inputs r.program
  in
  Fmt.pr "profiled clamp rate: %.4f@."
    (Bet.Hints.branch_prob hints "branch_l13_1" ~default:(-1.));

  (* 3. Project on every machine. *)
  List.iter
    (fun machine ->
      let built =
        Bet.Build.build ~hints
          ~lib_work:(Hw.Libmix.work_fn Hw.Libmix.default)
          ~inputs r.program
      in
      let proj = Analysis.Perf.project machine built in
      match proj.blocks with
      | top :: _ ->
        Fmt.pr "%-6s: %8.2f ms, #1 %s (%a)@." machine.Hw.Machine.name
          (proj.total_time *. 1e3) top.Analysis.Blockstat.name
          Hw.Roofline.pp_bound top.Analysis.Blockstat.bound
      | [] -> ())
    Hw.Machines.all
