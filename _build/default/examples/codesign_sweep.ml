(* Co-design sweep: how do an application's hot spots and bottlenecks
   move as a conceptual machine's parameters change?

   This is the workflow the paper's title promises: no simulator, no
   testbed — each design point is a few milliseconds of analysis.

   Run with: dune exec examples/codesign_sweep.exe *)

open Core
module BS = Analysis.Blockstat

let project ?(opts = Hw.Roofline.default_opts) workload machine =
  let a = Pipeline.analyze ~opts ~machine ~workload ~scale:1.0 () in
  a.Pipeline.a_projection

let describe (p : Analysis.Perf.projection) =
  match p.blocks with
  | top :: _ ->
    Fmt.str "%8.1f ms | #1 %-18s (%a)" (p.total_time *. 1e3) top.BS.name
      Hw.Roofline.pp_bound top.BS.bound
  | [] -> "(empty)"

let sweep ?opts title workload variants =
  Fmt.pr "@.%s@." title;
  List.iter
    (fun (tag, machine) ->
      Fmt.pr "  %8s -> %s@." tag (describe (project ?opts workload machine)))
    variants

let () =
  let cfd = Workloads.Registry.find_exn "cfd" in
  let sord = Workloads.Registry.find_exn "sord" in
  let base = Hw.Machines.future in
  Fmt.pr "Design-space exploration on the hypothetical '%s' machine@."
    base.Hw.Machine.name;
  Fmt.pr "(total projected time and the #1 hot spot at each design point)@.";

  (* Memory bandwidth: where does CFD flip from memory- to
     compute-bound? *)
  sweep "CFD vs memory bandwidth:" cfd
    (Hw.Designspace.variants base
       (Hw.Designspace.Mem_bandwidth [ 0.25; 0.5; 1.; 2.; 4.; 8. ]));

  (* Vector width: diminishing returns once memory dominates.  The
     baseline model is deliberately vector-blind (paper SSVII-B), so
     this sweep uses the vector-aware refinement. *)
  sweep
    ~opts:{ Hw.Roofline.default_opts with Hw.Roofline.vector_aware = true }
    "SORD vs vector width (vector-aware model):" sord
    (Hw.Designspace.variants base (Hw.Designspace.Vector_width [ 1; 2; 4; 8; 16 ]));

  (* Memory latency: the sensitivity of gather-heavy codes. *)
  sweep "SORD vs memory latency:" sord
    (Hw.Designspace.variants base
       (Hw.Designspace.Mem_latency [ 100.; 200.; 400.; 800. ]));

  (* A classic co-design question: with a fixed transistor budget,
     spend it on frequency or width? *)
  Fmt.pr "@.Frequency vs issue width at iso-'budget' (CFD):@.";
  let designs =
    [
      ("3.2GHz narrow", { base with Hw.Machine.freq_ghz = 3.2; issue_width = 2. });
      ("2.4GHz medium", { base with Hw.Machine.freq_ghz = 2.4; issue_width = 4. });
      ("1.6GHz wide", { base with Hw.Machine.freq_ghz = 1.6; issue_width = 8. });
    ]
  in
  List.iter
    (fun (tag, m) -> Fmt.pr "  %14s -> %s@." tag (describe (project cfd m)))
    designs
