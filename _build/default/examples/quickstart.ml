(* Quickstart: project the hot spots of a bundled workload on a
   machine that does not need to exist, then validate the projection
   against the ground-truth simulator.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Pick a workload model and a target machine. *)
  let workload = Core.Workloads.Registry.find_exn "sord" in
  let machine = Core.Hw.Machines.bgq in

  (* 2. Analytic projection only — this is all a co-designer needs,
     and it never executes anything on the target. *)
  let analysis =
    Core.Pipeline.analyze ~machine ~workload ~scale:1.0 ()
  in
  Fmt.pr "Projected hot spots of %s on %s:@." workload.name machine.name;
  List.iteri
    (fun i (b : Core.Analysis.Blockstat.t) ->
      if i < 5 then
        Fmt.pr "  %d. %-20s %5.1f%%  (%a-bound)@." (i + 1) b.name
          (100. *. b.time /. analysis.a_projection.total_time)
          Core.Hw.Roofline.pp_bound b.bound)
    analysis.a_projection.blocks;

  (* 3. Full validation run: also simulates the workload as ground
     truth and scores the selection quality (paper SSVI). *)
  let r = Core.Pipeline.run ~machine workload in
  Fmt.pr "@.Selection quality against simulated ground truth: Q(10) = %.1f%%@."
    (100. *. Core.Pipeline.model_quality r ~k:10);

  (* 4. The hot path: how control flow reaches the hot spots. *)
  match Core.Pipeline.hot_path r with
  | Some path ->
    Fmt.pr "@.Hot path:@.%a@."
      (Core.Analysis.Hotpath.pp ~total_time:r.projection.total_time)
      path
  | None -> Fmt.pr "no hot path@."
