(* Mini-application extraction: turn a workload's hot path into a
   runnable, stripped-down skeleton and check it stands in for the
   original (paper SSI: hot paths "can also be used for constructing
   mini-applications").

   Run with: dune exec examples/miniapp_extract.exe *)

open Core

let () =
  let workload = Workloads.Registry.find_exn "cfd" in
  let machine = Hw.Machines.bgq in
  let r = Pipeline.run ~machine workload in

  (* Extract the hot path and generate the mini-app from it. *)
  let path =
    match Pipeline.hot_path r with
    | Some p -> p
    | None -> failwith "no hot path"
  in
  let mini =
    Analysis.Miniapp.generate ~program:r.Pipeline.program
      ~inputs:r.Pipeline.inputs path
  in
  Fmt.pr "Mini-app generated from %s's hot path:@." workload.name;
  Fmt.pr "  original: %d statements; mini-app: %d statements@."
    mini.Analysis.Miniapp.original_statements
    mini.Analysis.Miniapp.retained_statements;

  (* The mini-app is an ordinary skeleton: print it in the DSL. *)
  Fmt.pr "@.--- generated skeleton -------------------------------------@.";
  Fmt.pr "%s@." (Skeleton.Pretty.to_string mini.Analysis.Miniapp.program);
  Fmt.pr "-------------------------------------------------------------@.";

  (* Validate: simulate the mini-app on the same machine and compare
     its time to the hot spots' share of the full application. *)
  let config = Sim.Interp.default_config ~machine () in
  let mini_run =
    Sim.Interp.run ~config ~inputs:mini.Analysis.Miniapp.inputs
      mini.Analysis.Miniapp.program
  in
  let full = r.Pipeline.measured.total_time in
  let hot_share =
    Pipeline.modl_measured_coverage r
      ~k:(List.length r.Pipeline.model_sel.spots)
  in
  Fmt.pr "@.full app simulated:      %8.2f ms@." (full *. 1e3);
  Fmt.pr "hot spots' share:        %8.2f ms (%.0f%%)@."
    (full *. hot_share *. 1e3) (100. *. hot_share);
  Fmt.pr "mini-app simulated:      %8.2f ms@."
    (mini_run.Sim.Interp.total_time *. 1e3);
  let ratio = mini_run.Sim.Interp.total_time /. (full *. hot_share) in
  Fmt.pr "mini-app / hot share:    %8.2fx@." ratio
