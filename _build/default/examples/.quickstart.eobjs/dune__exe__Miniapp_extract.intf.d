examples/miniapp_extract.mli:
