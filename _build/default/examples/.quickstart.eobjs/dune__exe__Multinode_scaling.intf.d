examples/multinode_scaling.mli:
