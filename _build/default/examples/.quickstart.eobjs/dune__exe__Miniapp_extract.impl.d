examples/miniapp_extract.ml: Analysis Core Fmt Hw List Pipeline Sim Skeleton Workloads
