examples/custom_workload.ml: Analysis Bet Core Fmt Hw List Sim Skeleton
