examples/import_c.ml: Analysis Bet Core Fmt Frontend Hw List Pipeline Skeleton
