examples/codesign_sweep.ml: Analysis Core Fmt Hw List Pipeline Workloads
