examples/import_c.mli:
