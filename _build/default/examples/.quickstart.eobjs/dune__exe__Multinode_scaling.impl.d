examples/multinode_scaling.ml: Bet Core Fmt Hw List Multinode Pipeline Workloads
