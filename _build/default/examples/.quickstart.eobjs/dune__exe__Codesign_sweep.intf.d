examples/codesign_sweep.mli:
