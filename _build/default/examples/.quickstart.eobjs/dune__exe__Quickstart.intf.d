examples/quickstart.mli:
