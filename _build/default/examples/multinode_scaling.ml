(* Multi-node strong-scaling projection (the paper's SSVIII future
   work): combine the single-rank analytic projection with a domain
   decomposition and an interconnect model to ask, before the machine
   exists, where communication starts to dominate.

   Run with: dune exec examples/multinode_scaling.exe *)

open Core
module MN = Multinode

let () =
  let workload = Workloads.Registry.find_exn "sord" in
  let machine = Hw.Machines.bgq in
  let scale = 0.5 in

  (* Single-rank projected time (pure analysis, no execution). *)
  let a = Pipeline.analyze ~machine ~workload ~scale () in
  let t_single = a.a_projection.total_time in
  let program_inputs = snd (workload.make ~scale) in
  let dim name =
    match List.assoc_opt name program_inputs with
    | Some v -> int_of_float (Bet.Value.to_float v)
    | None -> 1
  in
  let nt = dim "nt" in
  let spec =
    MN.Project.sord_spec ~nx:(dim "nx") ~ny:(dim "ny") ~nz:(dim "nz") ~steps:nt
  in
  Fmt.pr "SORD single-rank projection on %s: %.2f ms (%dx%dx%d grid, %d steps)@."
    machine.name (t_single *. 1e3) spec.grid.nx spec.grid.ny spec.grid.nz nt;

  let ranks = [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024 ] in
  List.iter
    (fun network ->
      let s =
        MN.Project.strong_scaling ~spec ~network ~t_single ~ranks_list:ranks ()
      in
      Fmt.pr "@.%a@." MN.Network.pp network;
      List.iter (fun p -> Fmt.pr "  %a@." MN.Project.pp_point p) s.points;
      match MN.Project.comm_crossover s with
      | Some r ->
        Fmt.pr "  -> communication exceeds half the step time at %d ranks@." r
      | None -> Fmt.pr "  -> compute-dominated over the whole sweep@.")
    MN.Network.all
