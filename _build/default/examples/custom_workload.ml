(* Bring your own workload: write a skeleton in the DSL (the artifact
   the paper's source-to-source engine would emit from your Fortran/C
   code), parse it, profile it once, and project it on every machine.

   Run with: dune exec examples/custom_workload.exe *)

open Core

(* A small conjugate-gradient-style solver described in the skeleton
   DSL.  `data' branches carry developer-estimated probabilities that
   one local profiling run then replaces with observed statistics. *)
let source =
  {|
program cg_solver

array x[n] : f64
array r[n] : f64
array p[n] : f64
array q[n] : f64
array val[nnz] : f64
array col[nnz] : i32

def spmv()
{
  @spmv_rows: for i = 0 to n - 1 {
    comp iops=3
    @spmv_inner: for k = 0 to nnz / n - 1 {
      load val[i * 7 + k], col[i * 7 + k], p[i * 13 % n]
      comp flops=2, iops=2
    }
    store q[i]
  }
}

def axpy_updates()
{
  @axpy_x: for i = 0 to n - 1 {
    load p[i], x[i]
    comp flops=2, vec=4
    store x[i]
  }
  @axpy_r: for i = 0 to n - 1 {
    load q[i], r[i]
    comp flops=2, vec=4
    store r[i]
  }
  @dot: for i = 0 to n - 1 {
    load r[i]
    comp flops=2, vec=4
  }
}

def main()
{
  @init: for i = 0 to n - 1 {
    comp flops=1, iops=1
    store x[i], r[i], p[i]
  }
  while cg_iter prob 0.98 max 200 {
    call spmv()
    call axpy_updates()
    comp flops=6, divs=2
    if data precond prob 0.25 {
      @precond_apply: for i = 0 to n - 1 {
        load r[i]
        comp flops=4
        store p[i]
      }
    }
  }
}
|}

let () =
  (* Parse and validate the DSL text. *)
  let program = Skeleton.Parser.parse ~file:"cg_solver.skope" source in
  let inputs =
    [ ("n", Bet.Value.int 60000); ("nnz", Bet.Value.int 420000) ]
  in
  Skeleton.Validate.check_exn ~inputs:(List.map fst inputs) program;
  Fmt.pr "parsed %s: %d statements, %d functions@." program.pname
    (Skeleton.Ast.program_size program)
    (List.length program.funcs);

  (* One local profiling run (the gcov step): how many CG iterations
     until convergence, how often the preconditioner fires. *)
  let config = Sim.Interp.default_config ~machine:Hw.Machines.xeon () in
  let profile = Sim.Interp.run ~config ~inputs program in
  Fmt.pr "profiled: CG iterations observed = %.1f, preconditioner rate = %.2f@."
    (Bet.Hints.loop_trips profile.hints "cg_iter" ~default:0.)
    (Bet.Hints.branch_prob profile.hints "precond" ~default:0.);

  (* Project on each machine, with the profile folded in. *)
  List.iter
    (fun machine ->
      let built =
        Bet.Build.build ~hints:profile.hints
          ~lib_work:(Hw.Libmix.work_fn Hw.Libmix.default)
          ~inputs program
      in
      let proj = Analysis.Perf.project machine built in
      (* A kernel this small has no cold-code bulk, so relax the
         leanness criterion (the paper's 10% makes sense for full
         applications). *)
      let criteria =
        { Analysis.Hotspot.time_coverage = 0.9; code_leanness = 0.5 }
      in
      let sel =
        Analysis.Hotspot.select ~criteria
          ~total_instructions:(Bet.Bst.total_instructions built.bst)
          proj.blocks
      in
      Fmt.pr "@.%s: projected %.2f ms; hot spots:@." machine.Hw.Machine.name
        (proj.total_time *. 1e3);
      List.iter
        (fun (s : Analysis.Hotspot.spot) ->
          Fmt.pr "  %d. %-14s %5.1f%% [%a]@." s.rank s.stat.name
            (100. *. s.coverage) Hw.Roofline.pp_bound s.stat.bound)
        sel.spots)
    Hw.Machines.all
