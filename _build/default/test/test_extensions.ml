(* Tests for the extension modules: mini-app generation, multi-node
   projection, and design-space exploration. *)

open Core

let bgq = Hw.Machines.bgq

(* --- miniapp ---------------------------------------------------------- *)

let mini_of ?(name = "cfd") ?(scale = 0.05) () =
  let w = Workloads.Registry.find_exn name in
  let r = Pipeline.run ~scale ~machine:bgq w in
  let path = Option.get (Pipeline.hot_path r) in
  (r, Analysis.Miniapp.generate ~program:r.Pipeline.program
        ~inputs:r.Pipeline.inputs path)

let test_miniapp_valid () =
  let _, mini = mini_of () in
  match
    Skeleton.Validate.check
      ~inputs:(List.map fst mini.Analysis.Miniapp.inputs)
      mini.Analysis.Miniapp.program
  with
  | [] -> ()
  | issues ->
    Alcotest.failf "invalid mini-app: %a"
      (Fmt.list ~sep:Fmt.semi Skeleton.Validate.pp_issue)
      issues

let test_miniapp_smaller () =
  let _, mini = mini_of () in
  Alcotest.(check bool) "strictly smaller" true
    (mini.Analysis.Miniapp.retained_statements
    < mini.Analysis.Miniapp.original_statements)

let test_miniapp_roundtrips () =
  let _, mini = mini_of () in
  let text = Skeleton.Pretty.to_string mini.Analysis.Miniapp.program in
  let p2 = Skeleton.Parser.parse ~file:"mini.skope" text in
  Alcotest.(check int) "parses back"
    (Skeleton.Ast.program_size mini.Analysis.Miniapp.program)
    (Skeleton.Ast.program_size p2)

let test_miniapp_time_representative () =
  (* The mini-app's simulated time must approximate the hot spots'
     share of the full application. *)
  let r, mini = mini_of ~name:"cfd" ~scale:0.05 () in
  let config = Sim.Interp.default_config ~machine:bgq () in
  let mini_run =
    Sim.Interp.run ~config ~inputs:mini.Analysis.Miniapp.inputs
      mini.Analysis.Miniapp.program
  in
  let hot_share =
    Pipeline.modl_measured_coverage r
      ~k:(List.length r.Pipeline.model_sel.Analysis.Hotspot.spots)
  in
  let target = r.Pipeline.measured.total_time *. hot_share in
  let ratio = mini_run.Sim.Interp.total_time /. target in
  Alcotest.(check bool)
    (Fmt.str "within 2x of hot share (ratio %.2f)" ratio)
    true
    (ratio > 0.5 && ratio < 2.)

let test_miniapp_simulable_for_all_workloads () =
  List.iter
    (fun name ->
      let _, mini = mini_of ~name () in
      let config = Sim.Interp.default_config ~machine:bgq () in
      let run =
        Sim.Interp.run ~config ~inputs:mini.Analysis.Miniapp.inputs
          mini.Analysis.Miniapp.program
      in
      Alcotest.(check bool)
        (name ^ " mini-app runs")
        true
        (run.Sim.Interp.total_time > 0.))
    [ "sord"; "cfd"; "srad"; "chargei"; "stassuij" ]

(* --- multinode --------------------------------------------------------- *)

let grid = { Multinode.Decompose.nx = 64; ny = 128; nz = 128 }

let test_decompose_exact_cells () =
  List.iter
    (fun ranks ->
      let d = Multinode.Decompose.best ~grid ~ranks in
      Alcotest.(check int) "px*py*pz = ranks" ranks
        Multinode.Decompose.(d.px * d.py * d.pz);
      Alcotest.(check (float 1e-6)) "cells partitioned"
        (float_of_int (64 * 128 * 128) /. float_of_int ranks)
        d.Multinode.Decompose.cells_per_rank)
    [ 1; 2; 4; 8; 16; 64; 128 ]

let test_decompose_minimizes_surface () =
  (* For a cubic-ish grid and 8 ranks, 2x2x2 beats 8x1x1. *)
  let g = { Multinode.Decompose.nx = 128; ny = 128; nz = 128 } in
  let d = Multinode.Decompose.best ~grid:g ~ranks:8 in
  Alcotest.(check (list int)) "2x2x2" [ 2; 2; 2 ]
    (List.sort compare Multinode.Decompose.[ d.px; d.py; d.pz ])

let test_decompose_single_rank_no_halo () =
  let d = Multinode.Decompose.best ~grid ~ranks:1 in
  Alcotest.(check (float 0.)) "no halo" 0. d.Multinode.Decompose.halo_elems;
  Alcotest.(check int) "no neighbors" 0 d.Multinode.Decompose.neighbors

let test_decompose_rejects_zero () =
  match Multinode.Decompose.best ~grid ~ranks:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let scaling_fixture network =
  let spec = Multinode.Project.sord_spec ~nx:64 ~ny:128 ~nz:128 ~steps:10 in
  Multinode.Project.strong_scaling ~spec ~network ~t_single:1.0
    ~ranks_list:[ 1; 2; 4; 8; 16; 64; 256; 1024 ]
    ()

let test_scaling_monotone_compute () =
  let s = scaling_fixture Multinode.Network.bgq_torus in
  let rec check = function
    | (a : Multinode.Project.point) :: (b :: _ as rest) ->
      Alcotest.(check bool) "compute time shrinks" true
        (b.Multinode.Project.t_compute <= a.Multinode.Project.t_compute +. 1e-12);
      check rest
    | _ -> ()
  in
  check s.Multinode.Project.points

let test_scaling_efficiency_degrades () =
  let s = scaling_fixture Multinode.Network.ethernet in
  let first = List.hd s.Multinode.Project.points in
  let last = List.nth s.Multinode.Project.points 7 in
  Alcotest.(check (float 1e-9)) "eff(1) = 1" 1. first.Multinode.Project.efficiency;
  Alcotest.(check bool) "eff decays" true
    (last.Multinode.Project.efficiency < first.Multinode.Project.efficiency)

let test_scaling_speedup_bounded () =
  let s = scaling_fixture Multinode.Network.infiniband in
  List.iter
    (fun (p : Multinode.Project.point) ->
      Alcotest.(check bool) "speedup <= ranks" true
        (p.Multinode.Project.speedup
        <= float_of_int p.Multinode.Project.ranks +. 1e-9))
    s.Multinode.Project.points

let test_crossover_network_dependence () =
  (* A slower network must cross over no later than a faster one. *)
  let co n =
    Option.value ~default:max_int
      (Multinode.Project.comm_crossover ~threshold:0.3 (scaling_fixture n))
  in
  Alcotest.(check bool) "ethernet crosses earlier or equal" true
    (co Multinode.Network.ethernet <= co Multinode.Network.bgq_torus)

let test_exchange_time_monotone () =
  let n = Multinode.Network.infiniband in
  Alcotest.(check bool) "more bytes, more time" true
    (Multinode.Network.exchange_time n ~messages:6 ~bytes:1e6
    > Multinode.Network.exchange_time n ~messages:6 ~bytes:1e3)

(* --- designspace -------------------------------------------------------- *)

let test_variants_change_machine () =
  let vs =
    Hw.Designspace.variants bgq (Hw.Designspace.Mem_bandwidth [ 1.; 2. ])
  in
  Alcotest.(check int) "two variants" 2 (List.length vs);
  List.iter2
    (fun (_, (m : Hw.Machine.t)) v ->
      Alcotest.(check (float 1e-9)) "bandwidth set" v m.Hw.Machine.mem_bw_gbs)
    vs [ 1.; 2. ]

let test_bandwidth_sweep_moves_projection () =
  let w = Workloads.Registry.find_exn "cfd" in
  let time m =
    (Pipeline.analyze ~machine:m ~workload:w ~scale:0.1 ()).Pipeline
      .a_projection.Analysis.Perf.total_time
  in
  let vs =
    Hw.Designspace.variants bgq (Hw.Designspace.Mem_bandwidth [ 0.1; 10. ])
  in
  match List.map (fun (_, m) -> time m) vs with
  | [ slow; fast ] ->
    Alcotest.(check bool) "starved bandwidth is slower" true (slow > fast)
  | _ -> Alcotest.fail "unexpected"

let test_latency_sweep_monotone () =
  let w = Workloads.Registry.find_exn "sord" in
  let times =
    Hw.Designspace.variants bgq
      (Hw.Designspace.Mem_latency [ 90.; 180.; 360. ])
    |> List.map (fun (_, m) ->
           (Pipeline.analyze ~machine:m ~workload:w ~scale:0.1 ()).Pipeline
             .a_projection.Analysis.Perf.total_time)
  in
  let rec mono = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-12 && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone in latency" true (mono times)

let test_frequency_speeds_compute () =
  let w = Workloads.Registry.find_exn "stassuij" in
  let vs = Hw.Designspace.variants bgq (Hw.Designspace.Frequency [ 0.8; 3.2 ]) in
  let t =
    List.map
      (fun (_, m) ->
        (Pipeline.analyze ~machine:m ~workload:w ~scale:0.2 ()).Pipeline
          .a_projection.Analysis.Perf.total_time)
      vs
  in
  match t with
  | [ slow; fast ] -> Alcotest.(check bool) "higher clock faster" true (slow > fast)
  | _ -> Alcotest.fail "unexpected"

let suite =
  [
    ( "miniapp",
      [
        Alcotest.test_case "generated program validates" `Quick
          test_miniapp_valid;
        Alcotest.test_case "smaller than original" `Quick test_miniapp_smaller;
        Alcotest.test_case "DSL round trip" `Quick test_miniapp_roundtrips;
        Alcotest.test_case "time representative" `Quick
          test_miniapp_time_representative;
        Alcotest.test_case "all workloads simulable" `Slow
          test_miniapp_simulable_for_all_workloads;
      ] );
    ( "multinode",
      [
        Alcotest.test_case "decomposition partitions cells" `Quick
          test_decompose_exact_cells;
        Alcotest.test_case "surface minimized" `Quick
          test_decompose_minimizes_surface;
        Alcotest.test_case "single rank no halo" `Quick
          test_decompose_single_rank_no_halo;
        Alcotest.test_case "rejects zero ranks" `Quick
          test_decompose_rejects_zero;
        Alcotest.test_case "compute time shrinks" `Quick
          test_scaling_monotone_compute;
        Alcotest.test_case "efficiency degrades" `Quick
          test_scaling_efficiency_degrades;
        Alcotest.test_case "speedup bounded by ranks" `Quick
          test_scaling_speedup_bounded;
        Alcotest.test_case "crossover network dependence" `Quick
          test_crossover_network_dependence;
        Alcotest.test_case "exchange time monotone" `Quick
          test_exchange_time_monotone;
      ] );
    ( "designspace",
      [
        Alcotest.test_case "variants set the parameter" `Quick
          test_variants_change_machine;
        Alcotest.test_case "bandwidth moves projection" `Quick
          test_bandwidth_sweep_moves_projection;
        Alcotest.test_case "latency monotone" `Quick test_latency_sweep_monotone;
        Alcotest.test_case "frequency speeds compute" `Quick
          test_frequency_speeds_compute;
      ] );
  ]
