(* Unit tests for the BET engine: values, evaluation, contexts, hints,
   BST tables, and BET construction semantics. *)

open Core.Skeleton
open Core.Bet

let parse src = Parser.parse ~file:"t.skope" src

let build ?hints ?inputs src =
  Build.build ?hints
    ~lib_work:(Core.Hw.Libmix.work_fn Core.Hw.Libmix.default)
    ?inputs (parse src)

(* Find a node by block anywhere in the tree. *)
let find_nodes root pred =
  List.filter (fun (n, _) -> pred n) (Node.to_list_enr root)

let find_loop root ~label bst =
  find_nodes root (fun n ->
      match n.Node.block with
      | Block_id.Loop _ -> String.equal (Bst.block_name bst n.Node.block) label
      | _ -> false)

(* --- Value ----------------------------------------------------------- *)

let test_value_compare () =
  Alcotest.(check bool) "int vs float" true (Value.compare (Value.I 2) (Value.F 2.5) < 0);
  Alcotest.(check bool) "equal across kinds" true (Value.equal (Value.I 3) (Value.F 3.));
  Alcotest.(check bool) "bool order" true (Value.compare (Value.B false) (Value.B true) < 0)

let test_value_truthy () =
  Alcotest.(check bool) "zero false" false (Value.truthy (Value.I 0));
  Alcotest.(check bool) "nonzero true" true (Value.truthy (Value.F 0.1));
  Alcotest.(check bool) "bool passthrough" true (Value.truthy (Value.B true))

let test_value_of_float () =
  Alcotest.(check bool) "integral wraps to I" true
    (Value.of_float 4. = Value.I 4);
  Alcotest.(check bool) "fractional stays F" true
    (Value.of_float 4.5 = Value.F 4.5)

(* --- Eval ------------------------------------------------------------ *)

let env l = Eval.env_of_list (List.map (fun (k, v) -> (k, Value.I v)) l)

let eval_ok e env_l expect =
  match Eval.eval (env env_l) e with
  | Some v -> Alcotest.(check bool) "value" true (Value.equal v expect)
  | None -> Alcotest.fail "evaluation failed"

let test_eval_arith () =
  eval_ok (Ast.Binop (Ast.Add, Ast.Int 2, Ast.Int 3)) [] (Value.I 5);
  eval_ok (Ast.Binop (Ast.Div, Ast.Int 7, Ast.Int 2)) [] (Value.I 3);
  eval_ok (Ast.Binop (Ast.Div, Ast.Float 7., Ast.Int 2)) [] (Value.F 3.5);
  eval_ok (Ast.Binop (Ast.Mod, Ast.Int 7, Ast.Int 3)) [] (Value.I 1);
  eval_ok (Ast.Binop (Ast.Pow, Ast.Int 2, Ast.Int 10)) [] (Value.I 1024);
  eval_ok (Ast.Binop (Ast.Min, Ast.Int 2, Ast.Int 5)) [] (Value.I 2)

let test_eval_vars () =
  eval_ok (Ast.Binop (Ast.Mul, Ast.Var "n", Ast.Var "m")) [ ("n", 6); ("m", 7) ]
    (Value.I 42);
  Alcotest.(check bool)
    "unbound yields None" true
    (Eval.eval (env []) (Ast.Var "nope") = None)

let test_eval_division_by_zero () =
  Alcotest.(check bool)
    "div by zero is None" true
    (Eval.eval (env []) (Ast.Binop (Ast.Div, Ast.Int 1, Ast.Int 0)) = None)

let test_eval_cmp_and_logic () =
  eval_ok (Ast.Cmp (Ast.Le, Ast.Int 3, Ast.Int 3)) [] (Value.B true);
  eval_ok
    (Ast.And (Ast.Bool true, Ast.Cmp (Ast.Gt, Ast.Int 1, Ast.Int 2)))
    [] (Value.B false);
  eval_ok (Ast.Or (Ast.Bool false, Ast.Bool true)) [] (Value.B true)

let test_eval_short_circuit () =
  (* And with false left must not evaluate right. *)
  eval_ok
    (Ast.And (Ast.Bool false, Ast.Var "unbound"))
    [] (Value.B false)

let test_eval_unops () =
  eval_ok (Ast.Unop (Ast.Floor, Ast.Float 3.9)) [] (Value.I 3);
  eval_ok (Ast.Unop (Ast.Ceil, Ast.Float 3.1)) [] (Value.I 4);
  eval_ok (Ast.Unop (Ast.Abs, Ast.Int (-4))) [] (Value.I 4);
  eval_ok (Ast.Unop (Ast.Sqrt, Ast.Float 16.)) [] (Value.F 4.);
  eval_ok (Ast.Unop (Ast.Log2, Ast.Float 8.)) [] (Value.F 3.)

let test_eval_prob_clamped () =
  Alcotest.(check (float 1e-9)) "clamp high" 1.
    (Eval.eval_prob (env []) (Ast.Float 3.7));
  Alcotest.(check (float 1e-9)) "clamp low" 0.
    (Eval.eval_prob (env []) (Ast.Float (-2.)))

let test_eval_pow_and_mod_float () =
  eval_ok (Ast.Binop (Ast.Pow, Ast.Float 2., Ast.Float 0.5)) []
    (Value.F (Float.sqrt 2.));
  (match Eval.eval (env []) (Ast.Binop (Ast.Mod, Ast.Float 7.5, Ast.Float 2.)) with
  | Some (Value.F f) -> Alcotest.(check (float 1e-9)) "fmod" 1.5 f
  | _ -> Alcotest.fail "float mod");
  eval_ok (Ast.Binop (Ast.Max, Ast.Int 3, Ast.Float 4.5)) [] (Value.F 4.5)

let test_eval_count_clamps () =
  Alcotest.(check (float 0.)) "negative clamps to 0" 0.
    (Eval.eval_count (env []) (Ast.Int (-5)));
  Alcotest.(check (float 0.)) "default on unbound" 7.
    (Eval.eval_count ~default:7. (env []) (Ast.Var "zz"))

(* --- Context ---------------------------------------------------------- *)

let ctx ?(mass = 1.0) l =
  Context.make ~mass (List.map (fun (k, v) -> (k, Value.I v)) l)

let test_context_normalize_merges () =
  let cs = [ ctx ~mass:0.25 [ ("a", 1) ]; ctx ~mass:0.25 [ ("a", 1) ] ] in
  match Context.normalize cs with
  | [ c ] -> Alcotest.(check (float 1e-12)) "merged mass" 0.5 c.Context.mass
  | l -> Alcotest.failf "expected one context, got %d" (List.length l)

let test_context_normalize_cap_preserves_mass () =
  let cs = List.init 100 (fun i -> ctx ~mass:0.01 [ ("a", i) ]) in
  let out = Context.normalize ~cap:8 cs in
  Alcotest.(check int) "capped" 8 (List.length out);
  Alcotest.(check (float 1e-9)) "mass preserved" 1.0 (Context.mass_of out)

let test_context_normalize_drops_negligible () =
  let cs = [ ctx ~mass:1e-15 [ ("a", 1) ]; ctx ~mass:1.0 [ ("a", 2) ] ] in
  Alcotest.(check int) "dropped" 1 (List.length (Context.normalize cs))

let test_context_expect () =
  let cs = [ ctx ~mass:0.5 [ ("n", 10) ]; ctx ~mass:0.5 [ ("n", 20) ] ] in
  Alcotest.(check (float 1e-9)) "expectation" 15. (Context.expect cs (Ast.Var "n"))

let test_context_bind_lookup () =
  let c = ctx [ ("a", 1) ] in
  let c = Context.bind c "b" (Value.I 9) in
  Alcotest.(check bool) "lookup bound" true
    (Context.lookup c "b" = Some (Value.I 9));
  let c = Context.unbind c "b" in
  Alcotest.(check bool) "unbound gone" true (Context.lookup c "b" = None)

(* --- Hints ------------------------------------------------------------ *)

let test_hints_branch () =
  let h = Hints.empty in
  let h = Hints.observe_branch h "b" ~taken:true in
  let h = Hints.observe_branch h "b" ~taken:true in
  let h = Hints.observe_branch h "b" ~taken:false in
  Alcotest.(check (float 1e-9)) "2/3" (2. /. 3.)
    (Hints.branch_prob h "b" ~default:0.);
  Alcotest.(check (float 1e-9)) "default" 0.9
    (Hints.branch_prob h "missing" ~default:0.9)

let test_hints_loop_and_merge () =
  let h1 = Hints.observe_loop Hints.empty "w" ~iters:10 in
  let h2 = Hints.observe_loop Hints.empty "w" ~iters:20 in
  let h = Hints.merge h1 h2 in
  Alcotest.(check (float 1e-9)) "mean trips" 15.
    (Hints.loop_trips h "w" ~default:0.)

(* --- truncated geometric ---------------------------------------------- *)

let test_truncated_geometric () =
  Alcotest.(check (float 1e-9)) "p=0 gives n" 100.
    (Build.truncated_geometric ~p:0. ~n:100.);
  Alcotest.(check (float 1e-9)) "p=1 gives 1" 1.
    (Build.truncated_geometric ~p:1. ~n:100.);
  let e = Build.truncated_geometric ~p:0.5 ~n:1e9 in
  Alcotest.(check (float 1e-6)) "p=.5 unbounded ~2" 2. e;
  Alcotest.(check bool) "monotone in n" true
    (Build.truncated_geometric ~p:0.1 ~n:5.
    < Build.truncated_geometric ~p:0.1 ~n:50.)

let test_while_trips () =
  Alcotest.(check (float 1e-9)) "p=0 single trip" 1.
    (Build.while_trips ~p:0. ~n:10.);
  Alcotest.(check (float 1e-9)) "p=1 runs to cap" 10.
    (Build.while_trips ~p:1. ~n:10.);
  Alcotest.(check bool) "never exceeds cap" true
    (Build.while_trips ~p:0.99 ~n:7. <= 7.)

(* --- Bst --------------------------------------------------------------- *)

let test_bst_blocks () =
  let p =
    parse
      "program t\n\
       array A[8]\n\
       def main() {\n\
       @hot: for i = 1 to 4 { comp flops=10\nload A[i] }\n\
       if (1 < 2) { comp flops=1 } else { comp flops=2 }\n\
       lib exp\n\
       }"
  in
  let bst = Bst.build p in
  let blocks = Bst.blocks bst in
  Alcotest.(check int) "fn + loop + 2 arms + lib" 5 (List.length blocks);
  let loop =
    List.find
      (fun (b : Bst.block_info) ->
        match b.Bst.id with Block_id.Loop _ -> true | _ -> false)
      blocks
  in
  Alcotest.(check string) "label used" "hot" loop.Bst.name;
  Alcotest.(check int) "loop exclusive weight" 12 loop.Bst.size

let test_bst_total_instructions () =
  let p = parse "program t\ndef main() { comp flops=5\nlet x = 1 }" in
  Alcotest.(check int) "total" 7 (Bst.total_instructions (Bst.build p))

(* --- Work --------------------------------------------------------------- *)

let w1 =
  Work.of_comp ~flops:10. ~iops:4. ~divs:2. ~vec:4

let test_work_monoid () =
  Alcotest.(check bool) "zero is neutral" true
    (Work.equal (Work.add Work.zero w1) w1);
  let w2 = Work.of_mem ~loads:3. ~stores:1. ~lbytes:24. ~sbytes:8. in
  Alcotest.(check bool) "commutative" true
    (Work.equal (Work.add w1 w2) (Work.add w2 w1))

let test_work_scale () =
  let s = Work.scale 2.5 w1 in
  Alcotest.(check (float 1e-9)) "flops scaled" 25. s.Work.flops;
  Alcotest.(check (float 1e-9)) "vec issue scaled" (2.5 *. 10. /. 4.)
    s.Work.vec_issue

let test_work_intensity () =
  let w = Work.add w1 (Work.of_mem ~loads:2. ~stores:0. ~lbytes:20. ~sbytes:0.) in
  Alcotest.(check (float 1e-9)) "flops/byte" 0.5 (Work.intensity w);
  Alcotest.(check bool) "compute-only infinite" true
    (Work.intensity w1 = Float.infinity)

(* --- Build: core semantics ---------------------------------------------- *)

let test_build_single_loop_trips () =
  let b = build "program t\ndef main() { for i = 1 to 10 { comp flops=2 } }" in
  match find_nodes b.Build.root (fun n -> n.Node.kind = Node.Loop) with
  | [ (n, enr) ] ->
    Alcotest.(check (float 1e-9)) "trips" 10. n.Node.trips;
    Alcotest.(check (float 1e-9)) "enr includes trips" 10. enr;
    Alcotest.(check (float 1e-9)) "per-iteration work" 2. n.Node.work.Work.flops
  | l -> Alcotest.failf "expected 1 loop node, got %d" (List.length l)

let test_build_input_dependent_bounds () =
  let b =
    build ~inputs:[ ("n", Value.I 37) ]
      "program t\ndef main() { for i = 1 to n { comp flops=1 } }"
  in
  match find_nodes b.Build.root (fun n -> n.Node.kind = Node.Loop) with
  | [ (n, _) ] -> Alcotest.(check (float 1e-9)) "trips from input" 37. n.Node.trips
  | _ -> Alcotest.fail "loop node"

let test_build_nested_triangular () =
  (* Inner bound depends on outer variable: evaluated at the midpoint,
     trips ~ n/2. *)
  let b =
    build ~inputs:[ ("n", Value.I 100) ]
      "program t\n\
       def main() { for i = 1 to n { for j = 1 to i { comp flops=1 } } }"
  in
  let loops = find_nodes b.Build.root (fun n -> n.Node.kind = Node.Loop) in
  Alcotest.(check int) "two loop nodes" 2 (List.length loops);
  let inner =
    List.find (fun ((n : Node.t), _) -> n.Node.trips < 100.) loops
  in
  Alcotest.(check (float 1.)) "inner trips ~ midpoint" 50. (fst inner).Node.trips

let test_build_branch_probabilities () =
  let b =
    build
      "program t\n\
       def main() { if data d prob 0.3 { comp flops=1 } else { comp flops=2 } }"
  in
  let arms = find_nodes b.Build.root (fun n -> match n.Node.kind with Node.Arm _ -> true | _ -> false) in
  let probs =
    List.sort compare (List.map (fun ((n : Node.t), _) -> n.Node.prob) arms)
  in
  Alcotest.(check int) "two arms" 2 (List.length arms);
  Alcotest.(check (float 1e-9)) "p then" 0.3 (List.nth probs 0);
  Alcotest.(check (float 1e-9)) "p else" 0.7 (List.nth probs 1)

let test_build_static_branch_resolved () =
  let b =
    build ~inputs:[ ("n", Value.I 5) ]
      "program t\n\
       def main() { if (n > 3) { comp flops=1 } else { comp flops=2 } }"
  in
  let arms =
    find_nodes b.Build.root (fun n ->
        match n.Node.kind with Node.Arm _ -> true | _ -> false)
  in
  (* Only the taken arm is built (the other has zero probability). *)
  Alcotest.(check int) "one arm" 1 (List.length arms);
  Alcotest.(check (float 1e-9)) "certain" 1. (fst (List.hd arms)).Node.prob

let test_build_hints_override_declared () =
  let hints =
    List.fold_left
      (fun h taken -> Hints.observe_branch h "d" ~taken)
      Hints.empty [ true; true; true; false ]
  in
  let b =
    build ~hints
      "program t\ndef main() { if data d prob 0.1 { comp flops=1 } }"
  in
  let arms =
    find_nodes b.Build.root (fun n ->
        match n.Node.kind with Node.Arm true -> true | _ -> false)
  in
  Alcotest.(check (float 1e-9)) "profiled 0.75 wins" 0.75
    (fst (List.hd arms)).Node.prob

let test_build_function_mounting () =
  let b =
    build
      "program t\n\
       def kernel(m) { for j = 1 to m { comp flops=1 } }\n\
       def main() { call kernel(10)\ncall kernel(20) }"
  in
  let mounts =
    find_nodes b.Build.root (fun n -> n.Node.kind = Node.Func "kernel")
  in
  Alcotest.(check int) "mounted twice" 2 (List.length mounts);
  let trips =
    List.sort compare
      (List.concat_map
         (fun ((n : Node.t), _) ->
           List.map (fun (c : Node.t) -> c.Node.trips) n.Node.children)
         mounts)
  in
  Alcotest.(check (list (float 1e-9))) "per-site contexts" [ 10.; 20. ] trips

let test_build_knob_contexts () =
  (* The paper's Fig. 2 situation: a data branch sets a knob consumed
     by a branch inside a later call; the callee must be analyzed
     under both contexts with the right weights. *)
  let b =
    build
      "program t\n\
       def foo(k) { if (k == 1) { comp flops=100 } else { comp flops=1 } }\n\
       def main() { let knob = 0\n\
       if data cal prob 0.3 { let knob = 1 }\n\
       call foo(knob) }"
  in
  let arms =
    find_nodes b.Build.root (fun n ->
        match (n.Node.kind, n.Node.block) with
        | Node.Arm _, Block_id.Arm (_, _) -> true
        | _ -> false)
  in
  (* cal/then, foo/then (knob=1, p=.3), foo/else (knob=0, p=.7) *)
  let foo_arms =
    List.filter (fun ((n : Node.t), _) -> n.Node.work.Work.flops >= 1.) arms
  in
  let probs =
    List.sort compare (List.map (fun ((n : Node.t), _) -> n.Node.prob) foo_arms)
  in
  Alcotest.(check bool) "both contexts present" true (List.length foo_arms >= 2);
  Alcotest.(check (float 1e-9)) "knob=1 weight" 0.3 (List.nth probs 0);
  Alcotest.(check (float 1e-9)) "knob=0 weight" 0.7 (List.nth probs 1)

let test_build_return_kills_mass () =
  let b =
    build
      "program t\n\
       def main() { if data early prob 0.4 { return }\ncomp flops=10 }"
  in
  (* The trailing comp runs with probability 0.6 only. *)
  let root = b.Build.root in
  Alcotest.(check (float 1e-9)) "root work scaled" 6. root.Node.work.Work.flops

let test_build_break_truncates_loop () =
  let b =
    build
      "program t\n\
       def main() { for i = 1 to 1000 { comp flops=1\nbreak b prob 0.5 } }"
  in
  match find_nodes b.Build.root (fun n -> n.Node.kind = Node.Loop) with
  | [ (n, _) ] ->
    Alcotest.(check (float 1e-6)) "expected trips ~ 2" 2. n.Node.trips
  | _ -> Alcotest.fail "loop node"

let test_build_while_uses_hints () =
  let hints = Hints.observe_loop Hints.empty "w" ~iters:42 in
  let b =
    build ~hints
      "program t\ndef main() { while w prob 0.5 max 1000 { comp flops=1 } }"
  in
  match find_nodes b.Build.root (fun n -> n.Node.kind = Node.Loop) with
  | [ (n, _) ] -> Alcotest.(check (float 1e-9)) "profiled trips" 42. n.Node.trips
  | _ -> Alcotest.fail "loop node"

let test_build_lib_node () =
  let b = build "program t\ndef main() { lib exp scale 50 }" in
  match
    find_nodes b.Build.root (fun n ->
        match n.Node.kind with Node.Libcall "exp" -> true | _ -> false)
  with
  | [ (n, _) ] ->
    Alcotest.(check bool) "scaled work" true (n.Node.work.Work.flops > 100.)
  | _ -> Alcotest.fail "lib node"

let test_build_zero_trip_loop () =
  let b = build "program t\ndef main() { for i = 1 to 0 { comp flops=1 } }" in
  match find_nodes b.Build.root (fun n -> n.Node.kind = Node.Loop) with
  | [ (n, _) ] -> Alcotest.(check (float 1e-9)) "zero trips" 0. n.Node.trips
  | _ -> Alcotest.fail "loop node"

let test_build_size_independent_of_input () =
  let src = "program t\ndef main() { for i = 1 to n { comp flops=1 } }" in
  let small = build ~inputs:[ ("n", Value.I 10) ] src in
  let large = build ~inputs:[ ("n", Value.I 10_000_000) ] src in
  Alcotest.(check int) "same BET size" small.Build.node_count
    large.Build.node_count

let test_build_enr_multiplies () =
  let b =
    build
      "program t\n\
       def main() { for i = 1 to 10 { for j = 1 to 5 { comp flops=1 } } }"
  in
  let inner =
    find_nodes b.Build.root (fun n ->
        n.Node.kind = Node.Loop && n.Node.trips = 5.)
  in
  Alcotest.(check (float 1e-9)) "ENR = 10*5" 50. (snd (List.hd inner))

let suite =
  [
    ( "bet.value",
      [
        Alcotest.test_case "compare" `Quick test_value_compare;
        Alcotest.test_case "truthiness" `Quick test_value_truthy;
        Alcotest.test_case "of_float" `Quick test_value_of_float;
      ] );
    ( "bet.eval",
      [
        Alcotest.test_case "arithmetic" `Quick test_eval_arith;
        Alcotest.test_case "variables" `Quick test_eval_vars;
        Alcotest.test_case "division by zero" `Quick
          test_eval_division_by_zero;
        Alcotest.test_case "comparisons and logic" `Quick
          test_eval_cmp_and_logic;
        Alcotest.test_case "short circuit" `Quick test_eval_short_circuit;
        Alcotest.test_case "unary operators" `Quick test_eval_unops;
        Alcotest.test_case "probability clamped" `Quick test_eval_prob_clamped;
        Alcotest.test_case "pow/mod/minmax mixed" `Quick
          test_eval_pow_and_mod_float;
        Alcotest.test_case "count clamping" `Quick test_eval_count_clamps;
      ] );
    ( "bet.context",
      [
        Alcotest.test_case "normalize merges duplicates" `Quick
          test_context_normalize_merges;
        Alcotest.test_case "cap preserves mass" `Quick
          test_context_normalize_cap_preserves_mass;
        Alcotest.test_case "drops negligible" `Quick
          test_context_normalize_drops_negligible;
        Alcotest.test_case "expectation" `Quick test_context_expect;
        Alcotest.test_case "bind/lookup/unbind" `Quick test_context_bind_lookup;
      ] );
    ( "bet.hints",
      [
        Alcotest.test_case "branch statistics" `Quick test_hints_branch;
        Alcotest.test_case "loop trips and merge" `Quick
          test_hints_loop_and_merge;
      ] );
    ( "bet.math",
      [
        Alcotest.test_case "truncated geometric" `Quick
          test_truncated_geometric;
        Alcotest.test_case "while trips" `Quick test_while_trips;
      ] );
    ( "bet.bst",
      [
        Alcotest.test_case "block table" `Quick test_bst_blocks;
        Alcotest.test_case "total instructions" `Quick
          test_bst_total_instructions;
      ] );
    ( "bet.work",
      [
        Alcotest.test_case "monoid laws" `Quick test_work_monoid;
        Alcotest.test_case "scaling" `Quick test_work_scale;
        Alcotest.test_case "operational intensity" `Quick test_work_intensity;
      ] );
    ( "bet.build",
      [
        Alcotest.test_case "loop trips and work" `Quick
          test_build_single_loop_trips;
        Alcotest.test_case "input-dependent bounds" `Quick
          test_build_input_dependent_bounds;
        Alcotest.test_case "triangular nest midpoint" `Quick
          test_build_nested_triangular;
        Alcotest.test_case "data branch probabilities" `Quick
          test_build_branch_probabilities;
        Alcotest.test_case "static branch resolved" `Quick
          test_build_static_branch_resolved;
        Alcotest.test_case "hints override declared p" `Quick
          test_build_hints_override_declared;
        Alcotest.test_case "function mounting per site" `Quick
          test_build_function_mounting;
        Alcotest.test_case "knob contexts (Fig 2)" `Quick
          test_build_knob_contexts;
        Alcotest.test_case "return kills mass" `Quick
          test_build_return_kills_mass;
        Alcotest.test_case "break truncates trips" `Quick
          test_build_break_truncates_loop;
        Alcotest.test_case "while trips from hints" `Quick
          test_build_while_uses_hints;
        Alcotest.test_case "library node" `Quick test_build_lib_node;
        Alcotest.test_case "zero-trip loop" `Quick test_build_zero_trip_loop;
        Alcotest.test_case "BET size input-independent" `Quick
          test_build_size_independent_of_input;
        Alcotest.test_case "ENR multiplies down the tree" `Quick
          test_build_enr_multiplies;
      ] );
  ]
