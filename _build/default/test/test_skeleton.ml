(* Unit tests for the skeleton DSL: lexer, parser, pretty-printer,
   validator, builder. *)

open Core.Skeleton

let parse src = Parser.parse ~file:"test.skope" src

let minimal = "program t\ndef main() { comp flops=1 }"

(* --- lexer --------------------------------------------------------- *)

let tok_kinds src =
  Lexer.tokenize ~file:"t" src |> List.map (fun l -> l.Lexer.tok)

let test_lex_punct () =
  Alcotest.(check int)
    "token count" 11
    (List.length (tok_kinds "( ) { } [ ] , : ; @"))

let test_lex_numbers () =
  match tok_kinds "42 3.5 1e3 2.5e-2" with
  | [ Lexer.INT 42; Lexer.FLOAT a; Lexer.FLOAT b; Lexer.FLOAT c; Lexer.EOF ] ->
    Alcotest.(check (float 1e-9)) "3.5" 3.5 a;
    Alcotest.(check (float 1e-9)) "1e3" 1000. b;
    Alcotest.(check (float 1e-9)) "2.5e-2" 0.025 c
  | _ -> Alcotest.fail "unexpected token stream"

let test_lex_operators () =
  match tok_kinds "<= >= == != && || < >" with
  | [
   Lexer.LE; Lexer.GE; Lexer.EQ; Lexer.NE; Lexer.ANDAND; Lexer.OROR;
   Lexer.LT; Lexer.GT; Lexer.EOF;
  ] ->
    ()
  | _ -> Alcotest.fail "unexpected operator tokens"

let test_lex_comment () =
  Alcotest.(check int)
    "comment skipped" 2
    (List.length (tok_kinds "# a comment line\nfoo"))

let test_lex_line_numbers () =
  let toks = Lexer.tokenize ~file:"t" "a\nb\nc" in
  let lines = List.map (fun l -> l.Lexer.tloc.Loc.line) toks in
  Alcotest.(check (list int)) "lines" [ 1; 2; 3; 3 ] lines

let test_lex_error () =
  match tok_kinds "a $ b" with
  | exception Lexer.Error (_, _) -> ()
  | _ -> Alcotest.fail "expected lexer error on '$'"

let test_lex_string () =
  match tok_kinds {|"hello world"|} with
  | [ Lexer.STRING "hello world"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "string literal"

(* --- parser -------------------------------------------------------- *)

let test_parse_minimal () =
  let p = parse minimal in
  Alcotest.(check string) "name" "t" p.Ast.pname;
  Alcotest.(check int) "one function" 1 (List.length p.Ast.funcs)

let test_parse_for_loop () =
  let p = parse "program t\ndef main() { for i = 1 to 10 step 2 { comp flops=3 } }" in
  match (List.hd p.Ast.funcs).Ast.body with
  | [ { Ast.kind = Ast.For { var = "i"; step = Ast.Int 2; body = [ _ ]; _ }; _ } ]
    ->
    ()
  | _ -> Alcotest.fail "for loop shape"

let test_parse_if_else () =
  let p =
    parse
      "program t\n\
       def main() { if (1 < 2) { comp flops=1 } else { comp flops=2 } }"
  in
  match (List.hd p.Ast.funcs).Ast.body with
  | [ { Ast.kind = Ast.If { cond = Ast.Cexpr _; then_ = [ _ ]; else_ = [ _ ] }; _ } ]
    ->
    ()
  | _ -> Alcotest.fail "if/else shape"

let test_parse_data_branch () =
  let p =
    parse "program t\ndef main() { if data conv prob 0.25 { comp flops=1 } }"
  in
  match (List.hd p.Ast.funcs).Ast.body with
  | [
   {
     Ast.kind =
       Ast.If { cond = Ast.Cdata { name = "conv"; p = Ast.Float 0.25 }; _ };
     _;
   };
  ] ->
    ()
  | _ -> Alcotest.fail "data branch shape"

let test_parse_while () =
  let p =
    parse "program t\ndef main() { while conv prob 0.9 max 50 { comp flops=1 } }"
  in
  match (List.hd p.Ast.funcs).Ast.body with
  | [ { Ast.kind = Ast.While { name = "conv"; max_iter = Ast.Int 50; _ }; _ } ]
    ->
    ()
  | _ -> Alcotest.fail "while shape"

let test_parse_mem () =
  let p =
    parse
      "program t\n\
       array A[100][10] : f32\n\
       def main() { load A[1][2], A[3][4]\n store A[5][6] }"
  in
  (match p.Ast.globals with
  | [ { Ast.aname = "A"; elem_bytes = 4; dims = [ Ast.Int 100; Ast.Int 10 ] } ]
    ->
    ()
  | _ -> Alcotest.fail "array decl");
  match (List.hd p.Ast.funcs).Ast.body with
  | [
   { Ast.kind = Ast.Mem { loads = [ _; _ ]; stores = [] }; _ };
   { Ast.kind = Ast.Mem { loads = []; stores = [ _ ] }; _ };
  ] ->
    ()
  | _ -> Alcotest.fail "mem shape"

let test_parse_call_lib () =
  let p =
    parse
      "program t\n\
       def f(x, y) { comp flops=x }\n\
       def main() { call f(1, 2)\n lib exp scale 100\n return }"
  in
  match (Ast.find_func p "main").Ast.body with
  | [
   { Ast.kind = Ast.Call ("f", [ Ast.Int 1; Ast.Int 2 ]); _ };
   { Ast.kind = Ast.Lib { name = "exp"; scale = Ast.Int 100; _ }; _ };
   { Ast.kind = Ast.Return; _ };
  ] ->
    ()
  | _ -> Alcotest.fail "call/lib shape"

let test_parse_break_continue () =
  let p =
    parse
      "program t\n\
       def main() { for i = 1 to 9 { break early prob 0.1\n\
       continue skip prob 0.2 } }"
  in
  match (List.hd p.Ast.funcs).Ast.body with
  | [ { Ast.kind = Ast.For { body = [ b; c ]; _ }; _ } ] -> (
    match (b.Ast.kind, c.Ast.kind) with
    | Ast.Break { name = "early"; _ }, Ast.Continue { name = "skip"; _ } -> ()
    | _ -> Alcotest.fail "break/continue kinds")
  | _ -> Alcotest.fail "loop shape"

let test_parse_labels () =
  let p = parse "program t\ndef main() { @hot: for i = 1 to 2 { comp flops=1 } }" in
  match (List.hd p.Ast.funcs).Ast.body with
  | [ { Ast.label = Some "hot"; _ } ] -> ()
  | _ -> Alcotest.fail "label"

let test_parse_precedence () =
  let p = parse "program t\ndef main() { let x = 1 + 2 * 3 }" in
  match (List.hd p.Ast.funcs).Ast.body with
  | [
   {
     Ast.kind =
       Ast.Let
         ( "x",
           Ast.Binop
             (Ast.Add, Ast.Int 1, Ast.Binop (Ast.Mul, Ast.Int 2, Ast.Int 3)) );
     _;
   };
  ] ->
    ()
  | _ -> Alcotest.fail "precedence 1+2*3"

let test_parse_cmp_binds_looser_than_add () =
  let p = parse "program t\ndef main() { let x = 1 + 2 < 4 }" in
  match (List.hd p.Ast.funcs).Ast.body with
  | [ { Ast.kind = Ast.Let ("x", Ast.Cmp (Ast.Lt, Ast.Binop _, Ast.Int 4)); _ } ]
    ->
    ()
  | _ -> Alcotest.fail "comparison precedence"

let test_parse_builtins () =
  let p = parse "program t\ndef main() { let x = min(1, 2) + floor(3.7) }" in
  match (List.hd p.Ast.funcs).Ast.body with
  | [
   {
     Ast.kind =
       Ast.Let
         ( "x",
           Ast.Binop
             ( Ast.Add,
               Ast.Binop (Ast.Min, Ast.Int 1, Ast.Int 2),
               Ast.Unop (Ast.Floor, Ast.Float 3.7) ) );
     _;
   };
  ] ->
    ()
  | _ -> Alcotest.fail "builtin calls"

let test_parse_entry () =
  let p = parse "program t\ndef start() { comp flops=1 }\nentry start" in
  Alcotest.(check string) "entry" "start" p.Ast.entry

let test_parse_error_reports_location () =
  match parse "program t\ndef main() {\n  bogus_kw thing\n}" with
  | exception Parser.Error (loc, _) ->
    Alcotest.(check int) "error line" 3 loc.Loc.line
  | _ -> Alcotest.fail "expected parse error"

let test_parse_sids_unique () =
  let p =
    parse
      "program t\n\
       def f() { comp flops=1 }\n\
       def main() { for i = 1 to 3 { call f() } comp flops=2 }"
  in
  let sids = Ast.fold_program (fun acc s -> s.Ast.sid :: acc) [] p in
  let sorted = List.sort_uniq compare sids in
  Alcotest.(check int) "all unique" (List.length sids) (List.length sorted);
  Alcotest.(check bool) "non-negative" true (List.for_all (fun s -> s >= 0) sids)

let test_parse_step_loop_semantics () =
  let p =
    parse "program t\ndef main() { for i = 0 to 20 step 5 { comp flops=1 } }"
  in
  match (List.hd p.Ast.funcs).Ast.body with
  | [ { Ast.kind = Ast.For { step = Ast.Int 5; lo = Ast.Int 0; hi = Ast.Int 20; _ }; _ } ]
    ->
    ()
  | _ -> Alcotest.fail "step loop shape"

let test_parse_function_arrays () =
  let p =
    parse
      "program t\n\
       def f(m)\n\
       array scratch[m] : f32\n\
       array tmp[m][2]\n\
       { load scratch[0]\nstore tmp[1][0] }\n\
       def main() { call f(8) }"
  in
  let f = Ast.find_func p "f" in
  Alcotest.(check int) "two local arrays" 2 (List.length f.Ast.arrays)

(* --- pretty-printer round trip ------------------------------------- *)

let strip_ids p =
  (* Compare programs modulo statement ids and locations. *)
  let rec stmt (s : Ast.stmt) =
    let kind =
      match s.Ast.kind with
      | Ast.If r -> Ast.If { r with then_ = block r.then_; else_ = block r.else_ }
      | Ast.For r -> Ast.For { r with body = block r.body }
      | Ast.While r -> Ast.While { r with body = block r.body }
      | k -> k
    in
    { s with Ast.sid = 0; loc = Loc.none; kind }
  and block b = List.map stmt b in
  {
    p with
    Ast.funcs = List.map (fun f -> { f with Ast.body = block f.Ast.body }) p.Ast.funcs;
  }

let roundtrip src =
  let p = parse src in
  let printed = Pretty.to_string p in
  let p2 =
    try parse printed
    with Parser.Error (loc, m) ->
      Alcotest.failf "reparse failed at %a: %s@.--- printed:@.%s" Loc.pp loc m
        printed
  in
  Alcotest.(check bool)
    (Fmt.str "round trip stable for:@.%s" printed)
    true
    (strip_ids p = strip_ids p2)

let test_roundtrip_rich () =
  roundtrip
    "program rich\n\
     array A[100] : f64\n\
     array B[10][20] : f32\n\
     def helper(n) { comp flops=n, iops=2\n return }\n\
     def main() {\n\
     let x = 3 + 4 * 2\n\
     @outer: for i = 1 to 100 step 2 {\n\
     load A[i], B[i][2]\n\
     if data d1 prob 0.5 { store A[i] } else { comp flops=1 }\n\
     break b prob 0.01\n\
     }\n\
     while w prob 0.8 max 10 { comp flops=2, divs=1, vec=4 }\n\
     call helper(5)\n\
     lib exp scale 3\n\
     }"

let test_roundtrip_ops () =
  roundtrip
    "program ops\n\
     def main() { let a = 1 - 2 - 3\n let b = 2 ^ 3 ^ 2\n\
     let c = -a + abs(b) % 7\n let d = (1 + 2) * 3\n\
     let e = a < b && c >= d || a != e0 }\n\
     entry main"

(* --- validator ------------------------------------------------------ *)

let issues src = Validate.check (parse src)

let test_validate_clean () =
  Alcotest.(check int) "no issues" 0 (List.length (issues minimal))

let test_validate_undefined_call () =
  Alcotest.(check bool)
    "undefined function flagged" true
    (issues "program t\ndef main() { call nope() }" <> [])

let test_validate_arity () =
  Alcotest.(check bool)
    "arity flagged" true
    (issues "program t\ndef f(a, b) { comp flops=1 }\ndef main() { call f(1) }"
    <> [])

let test_validate_unbound_var () =
  Alcotest.(check bool)
    "unbound variable flagged" true
    (issues "program t\ndef main() { comp flops=zzz }" <> [])

let test_validate_inputs_bound_everywhere () =
  let p =
    parse "program t\ndef f() { comp flops=n }\ndef main() { call f() }"
  in
  Alcotest.(check int)
    "input visible in callee" 0
    (List.length (Validate.check ~inputs:[ "n" ] p))

let test_validate_undeclared_array () =
  Alcotest.(check bool)
    "undeclared array flagged" true
    (issues "program t\ndef main() { load X[1] }" <> [])

let test_validate_array_rank () =
  Alcotest.(check bool)
    "wrong rank flagged" true
    (issues "program t\narray A[4][4]\ndef main() { load A[1] }" <> [])

let test_validate_recursion () =
  Alcotest.(check bool)
    "recursion flagged" true
    (issues "program t\ndef main() { call main() }" <> [])

let test_validate_mutual_recursion () =
  Alcotest.(check bool)
    "mutual recursion flagged" true
    (issues
       "program t\n\
        def a() { call b() }\n\
        def b() { call a() }\n\
        def main() { call a() }"
    <> [])

let test_validate_missing_entry () =
  Alcotest.(check bool)
    "missing entry flagged" true
    (issues "program t\ndef foo() { comp flops=1 }" <> [])

let test_validate_loop_var_scoped () =
  Alcotest.(check int)
    "loop var bound in body" 0
    (List.length
       (issues "program t\ndef main() { for i = 1 to 3 { comp flops=i } }"))

let test_validate_duplicate_stat_names () =
  Alcotest.(check bool)
    "pooled statistics name flagged" true
    (issues
       "program t\n\
        def main() { if data d prob 0.2 { comp flops=1 }\n\
        if data d prob 0.9 { comp flops=2 } }"
    <> []);
  Alcotest.(check int)
    "distinct names fine" 0
    (List.length
       (issues
          "program t\n\
           def main() { if data d1 prob 0.2 { comp flops=1 }\n\
           if data d2 prob 0.9 { comp flops=2 } }"))

let test_validate_exn () =
  match Validate.check_exn (parse "program t\ndef main() { call nope() }") with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument"

(* --- AST helpers ---------------------------------------------------- *)

let test_program_size () =
  let p =
    parse "program t\ndef main() { for i = 1 to 2 { comp flops=1 } return }"
  in
  Alcotest.(check int) "size counts all statements" 3 (Ast.program_size p)

let test_stmt_weight () =
  let p =
    parse
      "program t\n\
       array A[8]\n\
       def main() { comp flops=10, iops=5, divs=2\n load A[1], A[2]\n\
       let x = 1\n lib exp }"
  in
  let weights =
    List.map Ast.stmt_weight (Ast.entry_func p).Ast.body
  in
  Alcotest.(check (list int)) "weights" [ 18; 2; 1; 8 ] weights

let test_instruction_count_excludes_control () =
  let p =
    parse "program t\ndef main() { for i = 1 to 2 { comp flops=3 } return }"
  in
  Alcotest.(check int) "only the comp counts" 4 (Ast.instruction_count p)

(* --- builder --------------------------------------------------------- *)

let test_builder_renumbers () =
  let open Builder in
  let p =
    program "b"
      [
        func "main"
          [ for_ "i" (int 0) (int 9) [ comp ~flops:(int 1) () ]; return_ () ];
      ]
  in
  let sids = Ast.fold_program (fun acc s -> s.Ast.sid :: acc) [] p in
  Alcotest.(check (list int)) "dense pre-order ids" [ 2; 1; 0 ] sids

let test_builder_matches_parser () =
  let built =
    let open Builder in
    program "t"
      [
        func "main"
          [
            let_ "x" (int 1 + (int 2 * int 3));
            if_ (var "x" > int 5) [ comp ~flops:(int 1) () ] [];
          ];
      ]
  in
  let parsed =
    parse
      "program t\ndef main() { let x = 1 + 2 * 3\nif (x > 5) { comp flops=1 } }"
  in
  Alcotest.(check bool) "same AST" true (strip_ids built = strip_ids parsed)

let suite =
  [
    ( "skeleton.lexer",
      [
        Alcotest.test_case "punctuation" `Quick test_lex_punct;
        Alcotest.test_case "numbers" `Quick test_lex_numbers;
        Alcotest.test_case "operators" `Quick test_lex_operators;
        Alcotest.test_case "comments" `Quick test_lex_comment;
        Alcotest.test_case "line numbers" `Quick test_lex_line_numbers;
        Alcotest.test_case "error on stray char" `Quick test_lex_error;
        Alcotest.test_case "string literal" `Quick test_lex_string;
      ] );
    ( "skeleton.parser",
      [
        Alcotest.test_case "minimal program" `Quick test_parse_minimal;
        Alcotest.test_case "for loop" `Quick test_parse_for_loop;
        Alcotest.test_case "if/else" `Quick test_parse_if_else;
        Alcotest.test_case "data branch" `Quick test_parse_data_branch;
        Alcotest.test_case "while" `Quick test_parse_while;
        Alcotest.test_case "arrays and mem" `Quick test_parse_mem;
        Alcotest.test_case "call and lib" `Quick test_parse_call_lib;
        Alcotest.test_case "break/continue" `Quick test_parse_break_continue;
        Alcotest.test_case "labels" `Quick test_parse_labels;
        Alcotest.test_case "precedence mul over add" `Quick
          test_parse_precedence;
        Alcotest.test_case "precedence cmp under add" `Quick
          test_parse_cmp_binds_looser_than_add;
        Alcotest.test_case "builtin functions" `Quick test_parse_builtins;
        Alcotest.test_case "entry declaration" `Quick test_parse_entry;
        Alcotest.test_case "error location" `Quick
          test_parse_error_reports_location;
        Alcotest.test_case "statement ids unique" `Quick test_parse_sids_unique;
        Alcotest.test_case "step loop semantics" `Quick
          test_parse_step_loop_semantics;
        Alcotest.test_case "function-local arrays" `Quick
          test_parse_function_arrays;
      ] );
    ( "skeleton.pretty",
      [
        Alcotest.test_case "round trip rich program" `Quick test_roundtrip_rich;
        Alcotest.test_case "round trip operators" `Quick test_roundtrip_ops;
      ] );
    ( "skeleton.validate",
      [
        Alcotest.test_case "clean program" `Quick test_validate_clean;
        Alcotest.test_case "undefined call" `Quick test_validate_undefined_call;
        Alcotest.test_case "arity mismatch" `Quick test_validate_arity;
        Alcotest.test_case "unbound variable" `Quick test_validate_unbound_var;
        Alcotest.test_case "inputs bound everywhere" `Quick
          test_validate_inputs_bound_everywhere;
        Alcotest.test_case "undeclared array" `Quick
          test_validate_undeclared_array;
        Alcotest.test_case "array rank" `Quick test_validate_array_rank;
        Alcotest.test_case "self recursion" `Quick test_validate_recursion;
        Alcotest.test_case "mutual recursion" `Quick
          test_validate_mutual_recursion;
        Alcotest.test_case "missing entry" `Quick test_validate_missing_entry;
        Alcotest.test_case "loop variable scoping" `Quick
          test_validate_loop_var_scoped;
        Alcotest.test_case "duplicate statistics names" `Quick
          test_validate_duplicate_stat_names;
        Alcotest.test_case "check_exn raises" `Quick test_validate_exn;
      ] );
    ( "skeleton.ast",
      [
        Alcotest.test_case "program size" `Quick test_program_size;
        Alcotest.test_case "statement weights" `Quick test_stmt_weight;
        Alcotest.test_case "instruction count" `Quick
          test_instruction_count_excludes_control;
      ] );
    ( "skeleton.builder",
      [
        Alcotest.test_case "renumbering" `Quick test_builder_renumbers;
        Alcotest.test_case "builder = parser" `Quick test_builder_matches_parser;
      ] );
  ]
