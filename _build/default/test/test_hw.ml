(* Unit tests for machine models, the extended roofline, and library
   instruction mixes. *)

open Core.Hw
open Core.Bet

let bgq = Machines.bgq
let xeon = Machines.xeon

let compute_work = Work.of_comp ~flops:1000. ~iops:100. ~divs:0. ~vec:1

let memory_work =
  Work.of_mem ~loads:1000. ~stores:500. ~lbytes:8000. ~sbytes:4000.

(* --- machines -------------------------------------------------------- *)

let test_machine_peaks () =
  (* BG/Q: 1.6 GHz, FMA, 4-wide QPX -> 12.8 GF peak per core. *)
  Alcotest.(check (float 1e6)) "BG/Q peak" 12.8e9 (Machine.peak_flops bgq);
  Alcotest.(check (float 1e6)) "BG/Q scalar" 3.2e9 (Machine.scalar_flops bgq)

let test_machine_find_aliases () =
  Alcotest.(check bool) "bgq alias" true (Machines.find "bgq" <> None);
  Alcotest.(check bool) "BG/Q exact" true (Machines.find "BG/Q" <> None);
  Alcotest.(check bool) "xeon" true (Machines.find "Xeon" <> None);
  Alcotest.(check bool) "unknown" true (Machines.find "cray" = None)

let test_machine_find_exn () =
  match Machines.find_exn "nope" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* --- roofline --------------------------------------------------------- *)

let test_roofline_zero_work () =
  let b = Roofline.estimate bgq Work.zero in
  Alcotest.(check (float 0.)) "zero time" 0. b.Roofline.total

let test_roofline_compute_bound () =
  let b = Roofline.estimate bgq compute_work in
  Alcotest.(check bool) "compute bound" true (b.Roofline.bound = Roofline.Compute_bound);
  Alcotest.(check bool) "tc dominates" true (b.Roofline.tc > b.Roofline.tm)

let test_roofline_memory_bound () =
  let b = Roofline.estimate bgq memory_work in
  Alcotest.(check bool) "memory bound" true
    (b.Roofline.bound = Roofline.Memory_bound)

let test_roofline_total_identity () =
  let w = Work.add compute_work memory_work in
  let b = Roofline.estimate bgq w in
  Alcotest.(check (float 1e-15)) "T = Tc + Tm - To" b.Roofline.total
    (b.Roofline.tc +. b.Roofline.tm -. b.Roofline.t_overlap);
  Alcotest.(check bool) "overlap bounded" true
    (b.Roofline.t_overlap <= Float.min b.Roofline.tc b.Roofline.tm +. 1e-18)

let test_roofline_overlap_grows_with_flops () =
  (* delta = 1 - 1/flops: small blocks cannot overlap. *)
  Alcotest.(check (float 1e-12)) "1 flop, no overlap" 0.
    (Roofline.overlap_degree ~flops:1.);
  Alcotest.(check bool) "monotone" true
    (Roofline.overlap_degree ~flops:10. < Roofline.overlap_degree ~flops:100.)

let test_roofline_div_awareness () =
  let w = Work.of_comp ~flops:100. ~iops:0. ~divs:100. ~vec:1 in
  let base = Roofline.estimate bgq w in
  let aware =
    Roofline.estimate ~opts:{ Roofline.default_opts with div_aware = true } bgq
      w
  in
  Alcotest.(check bool) "divisions cost more when modeled" true
    (aware.Roofline.tc > base.Roofline.tc *. 5.)

let test_roofline_vector_awareness () =
  let w = Work.of_comp ~flops:1000. ~iops:0. ~divs:0. ~vec:4 in
  let base = Roofline.estimate bgq w in
  let aware =
    Roofline.estimate
      ~opts:{ Roofline.default_opts with vector_aware = true }
      bgq w
  in
  Alcotest.(check bool) "vectorization reduces projected time" true
    (aware.Roofline.tc < base.Roofline.tc)

let test_roofline_hit_ratio_effect () =
  let cold =
    Roofline.estimate
      ~opts:{ Roofline.default_opts with hit_l1 = 0.5; hit_l2 = 0.5 }
      bgq memory_work
  in
  let warm =
    Roofline.estimate
      ~opts:{ Roofline.default_opts with hit_l1 = 0.99; hit_l2 = 0.99 }
      bgq memory_work
  in
  Alcotest.(check bool) "lower hit ratio costs more" true
    (cold.Roofline.tm > warm.Roofline.tm)

let test_roofline_attainable () =
  (* Below the ridge point performance is bandwidth-limited. *)
  let low = Roofline.attainable bgq ~oi:0.1 in
  Alcotest.(check (float 1.)) "bw limited"
    (0.1 *. bgq.Machine.mem_bw_gbs *. 1e9)
    low;
  let high = Roofline.attainable bgq ~oi:1e6 in
  Alcotest.(check (float 1.)) "peak limited" (Machine.peak_flops bgq) high

let test_roofline_machines_differ () =
  let w = Work.add compute_work memory_work in
  let b1 = (Roofline.estimate bgq w).Roofline.total in
  let b2 = (Roofline.estimate xeon w).Roofline.total in
  Alcotest.(check bool) "different projections" true
    (Float.abs (b1 -. b2) > 1e-12)

let test_roofline_ilp () =
  let w = Work.of_comp ~flops:10. ~iops:1000. ~divs:0. ~vec:1 in
  let perfect = Roofline.estimate bgq w in
  let realistic =
    Roofline.estimate ~opts:{ Roofline.default_opts with ilp = 0.5 } bgq w
  in
  Alcotest.(check bool) "lower ILP is slower" true
    (realistic.Roofline.tc > perfect.Roofline.tc *. 1.5);
  (* ilp is clamped away from zero. *)
  let degenerate =
    Roofline.estimate ~opts:{ Roofline.default_opts with ilp = 0. } bgq w
  in
  Alcotest.(check bool) "clamped" true
    (Float.is_finite degenerate.Roofline.total)

let test_roofline_bound_classification () =
  let b m w = (Roofline.estimate m w).Roofline.bound in
  Alcotest.(check bool) "pure flops compute-bound" true
    (b bgq (Work.of_comp ~flops:1e6 ~iops:0. ~divs:0. ~vec:1)
    = Roofline.Compute_bound);
  Alcotest.(check bool) "pure streaming memory-bound" true
    (b bgq (Work.of_mem ~loads:1e6 ~stores:0. ~lbytes:8e6 ~sbytes:0.)
    = Roofline.Memory_bound)

let test_machine_pp () =
  let s = Fmt.str "%a" Machine.pp bgq in
  Alcotest.(check bool) "mentions name" true
    (let n = String.length s in
     let rec go i = i + 4 <= n && (String.sub s i 4 = "BG/Q" || go (i + 1)) in
     go 0)

(* --- libmix ------------------------------------------------------------ *)

let test_libmix_defaults () =
  Alcotest.(check bool) "exp registered" true (Libmix.find Libmix.default "exp" <> None);
  Alcotest.(check bool) "rand registered" true
    (Libmix.find Libmix.default "rand" <> None);
  Alcotest.(check bool) "unknown absent" true
    (Libmix.find Libmix.default "fft" = None)

let test_libmix_work_fn () =
  match Libmix.work_fn Libmix.default "exp" with
  | Some w -> Alcotest.(check bool) "exp has flops" true (w.Work.flops > 0.)
  | None -> Alcotest.fail "exp profile"

let test_libmix_register () =
  let p =
    Libmix.mk "fft" ~flops:100. ~iops:50. ~divs:0. ~loads:10. ~stores:10.
      ~lbytes:80. ~sbytes:80. ()
  in
  let t = Libmix.register Libmix.default p in
  Alcotest.(check bool) "registered" true (Libmix.find t "fft" <> None)

let test_libmix_measure_averages () =
  (* Averaging randomized instances (paper §IV-C). *)
  let sample i =
    Work.of_comp ~flops:(float_of_int (10 + (i mod 3))) ~iops:0. ~divs:0.
      ~vec:1
  in
  let p = Libmix.measure ~name:"var" ~runs:300 sample in
  Alcotest.(check (float 0.1)) "mean flops ~11" 11. p.Libmix.per_call.Work.flops

let test_libmix_measure_invalid () =
  match Libmix.measure ~name:"x" ~runs:0 (fun _ -> Work.zero) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let suite =
  [
    ( "hw.machine",
      [
        Alcotest.test_case "peak flops" `Quick test_machine_peaks;
        Alcotest.test_case "find aliases" `Quick test_machine_find_aliases;
        Alcotest.test_case "find_exn" `Quick test_machine_find_exn;
      ] );
    ( "hw.roofline",
      [
        Alcotest.test_case "zero work" `Quick test_roofline_zero_work;
        Alcotest.test_case "compute bound" `Quick test_roofline_compute_bound;
        Alcotest.test_case "memory bound" `Quick test_roofline_memory_bound;
        Alcotest.test_case "T identity" `Quick test_roofline_total_identity;
        Alcotest.test_case "overlap degree" `Quick
          test_roofline_overlap_grows_with_flops;
        Alcotest.test_case "division awareness" `Quick
          test_roofline_div_awareness;
        Alcotest.test_case "vector awareness" `Quick
          test_roofline_vector_awareness;
        Alcotest.test_case "hit ratio effect" `Quick
          test_roofline_hit_ratio_effect;
        Alcotest.test_case "attainable roofline" `Quick
          test_roofline_attainable;
        Alcotest.test_case "machines differ" `Quick
          test_roofline_machines_differ;
        Alcotest.test_case "ILP refinement" `Quick test_roofline_ilp;
        Alcotest.test_case "bound classification" `Quick
          test_roofline_bound_classification;
        Alcotest.test_case "machine pretty-print" `Quick test_machine_pp;
      ] );
    ( "hw.libmix",
      [
        Alcotest.test_case "defaults" `Quick test_libmix_defaults;
        Alcotest.test_case "work_fn" `Quick test_libmix_work_fn;
        Alcotest.test_case "register" `Quick test_libmix_register;
        Alcotest.test_case "measure averages" `Quick
          test_libmix_measure_averages;
        Alcotest.test_case "measure rejects zero runs" `Quick
          test_libmix_measure_invalid;
      ] );
  ]
