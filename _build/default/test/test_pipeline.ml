(* Integration tests: the full paper workflow end to end. *)

open Core

let bgq = Hw.Machines.bgq
let xeon = Hw.Machines.xeon

let small_run ?(machine = bgq) name scale =
  Pipeline.run ~scale ~machine (Workloads.Registry.find_exn name)

let test_pedagogical_end_to_end () =
  let r = small_run "pedagogical" 1.0 in
  Alcotest.(check bool) "measured time > 0" true
    (r.Pipeline.measured.total_time > 0.);
  Alcotest.(check bool) "projected time > 0" true
    (r.Pipeline.projection.total_time > 0.);
  Alcotest.(check bool) "hints collected" true
    (not (Bet.Hints.is_empty r.Pipeline.hints))

let test_quality_in_range () =
  List.iter
    (fun name ->
      let r = small_run name 0.05 in
      let q = Pipeline.model_quality r ~k:5 in
      Alcotest.(check bool)
        (Fmt.str "%s quality %.3f in [0,1]" name q)
        true
        (q >= 0. && q <= 1. +. 1e-9))
    [ "sord"; "cfd"; "srad"; "chargei"; "stassuij" ]

let test_top_spot_agreement () =
  (* The model must at least find the simulator's #1 hot spot within
     its top 3 on the small configs. *)
  List.iter
    (fun name ->
      let r = small_run name 0.08 in
      let top_measured =
        match r.Pipeline.measured.blocks with
        | b :: _ -> b.Analysis.Blockstat.block
        | [] -> Alcotest.fail "no measured blocks"
      in
      let top3_model =
        Analysis.Hotspot.top_k ~k:3 r.Pipeline.projection.blocks
        |> List.map (fun (b : Analysis.Blockstat.t) -> b.Analysis.Blockstat.block)
      in
      Alcotest.(check bool)
        (Fmt.str "%s: measured #1 in model top-3" name)
        true
        (List.exists (Bet.Block_id.equal top_measured) top3_model))
    [ "sord"; "cfd"; "chargei"; "stassuij" ]

let test_projection_input_size_independent () =
  (* Same workload at very different scales: the BET has the same
     size; only trip counts change. *)
  let w = Workloads.Registry.find_exn "cfd" in
  let a1 = Pipeline.analyze ~machine:bgq ~workload:w ~scale:0.05 () in
  let a2 = Pipeline.analyze ~machine:bgq ~workload:w ~scale:5.0 () in
  Alcotest.(check int) "same BET size" a1.Pipeline.a_built.node_count
    a2.Pipeline.a_built.node_count;
  Alcotest.(check bool) "bigger input, more projected time" true
    (a2.Pipeline.a_projection.total_time > a1.Pipeline.a_projection.total_time)

let test_hints_are_hardware_independent () =
  (* Profiling on different machines yields identical statistics: the
     hints depend only on the seeded input draws. *)
  let w = Workloads.Registry.find_exn "sord" in
  let program, inputs = w.Workloads.Registry.make ~scale:0.05 in
  let hints_on machine =
    let config =
      Sim.Interp.default_config ~machine ~libmix:w.Workloads.Registry.libmix
        ~seed:42L ()
    in
    (Sim.Interp.run ~config ~inputs program).Sim.Interp.hints
  in
  let hb = hints_on bgq and hx = hints_on xeon in
  Alcotest.(check (float 1e-12))
    "same rupture probability"
    (Bet.Hints.branch_prob hb "rupturing" ~default:(-1.))
    (Bet.Hints.branch_prob hx "rupturing" ~default:(-2.))

let test_hot_path_exists () =
  let r = small_run "sord" 0.05 in
  match Pipeline.hot_path r with
  | None -> Alcotest.fail "expected a hot path"
  | Some path ->
    Alcotest.(check bool) "has hot invocations" true
      (Analysis.Hotpath.hot_invocations path > 0);
    (* The root of the hot path is main. *)
    Alcotest.(check bool) "rooted at main" true
      (match path.Analysis.Hotpath.node.Bet.Node.kind with
      | Bet.Node.Func "main" -> true
      | _ -> false)

let test_coverage_curves_monotone () =
  let r = small_run "cfd" 0.05 in
  let ks = [ 1; 2; 3; 5; 8 ] in
  let check_monotone name f =
    let vals = List.map (fun k -> f ~k) ks in
    let rec mono = function
      | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
      | _ -> true
    in
    Alcotest.(check bool) (name ^ " monotone") true (mono vals);
    List.iter
      (fun v ->
        Alcotest.(check bool) (name ^ " in [0,1]") true (v >= 0. && v <= 1.01))
      vals
  in
  check_monotone "Prof" (Pipeline.prof_coverage r);
  check_monotone "Modl(p)" (Pipeline.modl_projected_coverage r);
  check_monotone "Modl(m)" (Pipeline.modl_measured_coverage r)

let test_prof_dominates_modl_measured () =
  (* By construction the measured-profile-driven selection captures at
     least as much measured time as the model-driven one. *)
  let r = small_run "chargei" 0.05 in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Fmt.str "Prof >= Modl(m) at k=%d" k)
        true
        (Pipeline.prof_coverage r ~k
        >= Pipeline.modl_measured_coverage r ~k -. 1e-9))
    [ 1; 2; 3; 5; 10 ]

let test_bet_size_vs_source () =
  (* Paper §IV-B: BET size stays within 2x the source statements. *)
  List.iter
    (fun name ->
      let w = Workloads.Registry.find_exn name in
      let a = Pipeline.analyze ~machine:bgq ~workload:w ~scale:0.05 () in
      let src_size = Skeleton.Ast.program_size a.Pipeline.a_program in
      let ratio =
        float_of_int a.Pipeline.a_built.node_count /. float_of_int src_size
      in
      Alcotest.(check bool)
        (Fmt.str "%s BET/source = %.2f <= 2" name ratio)
        true (ratio <= 2.))
    [ "pedagogical"; "sord"; "cfd"; "srad"; "chargei"; "stassuij" ]

let test_selection_respects_criteria () =
  let r = small_run "sord" 0.05 in
  let sel = r.Pipeline.model_sel in
  Alcotest.(check bool) "leanness <= 10%" true
    (sel.Analysis.Hotspot.leanness <= 0.10 +. 1e-9)

let test_analyze_hypothetical_machine () =
  (* The whole point of the paper: analysis works for machines that
     cannot run anything. *)
  let w = Workloads.Registry.find_exn "srad" in
  let a = Pipeline.analyze ~machine:Hw.Machines.future ~workload:w ~scale:1.0 () in
  Alcotest.(check bool) "spots found" true
    (a.Pipeline.a_selection.Analysis.Hotspot.spots <> [])

let test_no_warnings_on_workloads () =
  List.iter
    (fun name ->
      let w = Workloads.Registry.find_exn name in
      let a = Pipeline.analyze ~machine:bgq ~workload:w ~scale:0.1 () in
      Alcotest.(check (list string))
        (name ^ " builds without warnings")
        []
        a.Pipeline.a_built.warnings)
    [ "pedagogical"; "sord"; "cfd"; "srad"; "chargei"; "stassuij" ]

let suite =
  [
    ( "pipeline",
      [
        Alcotest.test_case "pedagogical end-to-end" `Quick
          test_pedagogical_end_to_end;
        Alcotest.test_case "quality in range (all workloads)" `Slow
          test_quality_in_range;
        Alcotest.test_case "top spot agreement" `Slow test_top_spot_agreement;
        Alcotest.test_case "input-size independence" `Quick
          test_projection_input_size_independent;
        Alcotest.test_case "hints hardware-independent" `Slow
          test_hints_are_hardware_independent;
        Alcotest.test_case "hot path exists" `Quick test_hot_path_exists;
        Alcotest.test_case "coverage curves monotone" `Quick
          test_coverage_curves_monotone;
        Alcotest.test_case "Prof dominates Modl(m)" `Quick
          test_prof_dominates_modl_measured;
        Alcotest.test_case "BET size <= 2x source" `Quick
          test_bet_size_vs_source;
        Alcotest.test_case "selection criteria respected" `Quick
          test_selection_respects_criteria;
        Alcotest.test_case "hypothetical machine" `Quick
          test_analyze_hypothetical_machine;
        Alcotest.test_case "no build warnings" `Quick
          test_no_warnings_on_workloads;
      ] );
  ]
