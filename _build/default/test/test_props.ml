(* Property-based tests (qcheck) on core invariants. *)

open Core.Skeleton
open Core.Bet
open Core.Analysis

let to_alcotest = QCheck_alcotest.to_alcotest

(* --- generators ------------------------------------------------------- *)

let gen_small_int = QCheck.Gen.int_range 0 20

let gen_expr : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                map (fun i -> Ast.Int i) gen_small_int;
                map (fun f -> Ast.Float (Float.of_int f /. 4.)) gen_small_int;
                oneofl [ Ast.Var "n"; Ast.Var "m" ];
              ]
          else
            frequency
              [
                (2, map (fun i -> Ast.Int i) gen_small_int);
                ( 3,
                  map3
                    (fun op a b -> Ast.Binop (op, a, b))
                    (oneofl
                       Ast.[ Add; Sub; Mul; Div; Mod; Min; Max ])
                    (self (n / 2))
                    (self (n / 2)) );
                ( 1,
                  map3
                    (fun op a b -> Ast.Cmp (op, a, b))
                    (oneofl Ast.[ Lt; Le; Gt; Ge; Eq; Ne ])
                    (self (n / 2))
                    (self (n / 2)) );
                ( 1,
                  map2
                    (fun op a -> Ast.Unop (op, a))
                    (oneofl Ast.[ Neg; Floor; Ceil; Abs ])
                    (self (n - 1)) );
              ])
        (min n 8))

let arbitrary_expr = QCheck.make ~print:(Fmt.str "%a" Pretty.pp_expr) gen_expr

(* Random structured programs built from safe pieces (always valid).
   Statistics names must be unique per site (checked by Validate), so
   a counter mints them. *)
let name_counter = ref 0

let fresh_name prefix =
  incr name_counter;
  Fmt.str "%s%d" prefix !name_counter

let gen_program : Ast.program QCheck.Gen.t =
  let open QCheck.Gen in
  let gen_leaf =
    oneof
      [
        map2
          (fun f i ->
            Builder.comp ~flops:(Ast.Int f) ~iops:(Ast.Int i) ())
          gen_small_int gen_small_int;
        map
          (fun i -> Builder.load [ Builder.a_ "A" [ Ast.Int i ] ])
          gen_small_int;
        map
          (fun i -> Builder.store [ Builder.a_ "A" [ Ast.Int i ] ])
          gen_small_int;
        map (fun i -> Builder.let_ "x" (Ast.Int i)) gen_small_int;
        return (Builder.lib "exp");
      ]
  in
  let rec gen_stmt depth =
    if depth <= 0 then gen_leaf
    else
      frequency
        [
          (4, gen_leaf);
          ( 2,
            map2
              (fun hi body -> Builder.for_ "i" (Ast.Int 1) (Ast.Int hi) body)
              (int_range 0 12)
              (list_size (int_range 1 3) (gen_stmt (depth - 1))) );
          ( 2,
            map3
              (fun p t e ->
                Builder.if_data (fresh_name "d")
                  (Ast.Float (float_of_int p /. 10.))
                  t e)
              (int_range 0 10)
              (list_size (int_range 1 2) (gen_stmt (depth - 1)))
              (list_size (int_range 0 2) (gen_stmt (depth - 1))) );
          ( 1,
            map
              (fun body ->
                Builder.while_ (fresh_name "w") ~p_continue:(Ast.Float 0.5)
                  ~max_iter:(Ast.Int 8) body)
              (list_size (int_range 1 2) (gen_stmt (depth - 1))) );
          ( 1,
            map2
              (fun p body ->
                Builder.for_ "j" (Ast.Int 1) (Ast.Int 10)
                  (Builder.break_ (fresh_name "b")
                     (Ast.Float (float_of_int p /. 10.))
                  :: body))
              (int_range 0 10)
              (list_size (int_range 1 2) (gen_stmt (depth - 1))) );
        ]
  in
  map
    (fun body ->
      Builder.program "prop"
        ~globals:[ Builder.array "A" [ Ast.Int 64 ] ]
        [ Builder.func "main" body ])
    (list_size (int_range 1 5) (gen_stmt 3))

let arbitrary_program =
  QCheck.make ~print:(fun p -> Pretty.to_string p) gen_program

(* --- properties -------------------------------------------------------- *)

let env = Eval.env_of_list [ ("n", Value.I 7); ("m", Value.I 3) ]

let prop_eval_deterministic =
  QCheck.Test.make ~name:"eval is deterministic" ~count:500 arbitrary_expr
    (fun e -> Eval.eval env e = Eval.eval env e)

let prop_eval_total_on_bound_env =
  (* With all variables bound, evaluation only fails on division by
     zero (None), never raises. *)
  QCheck.Test.make ~name:"eval never raises" ~count:500 arbitrary_expr
    (fun e ->
      match Eval.eval env e with Some _ | None -> true)

let prop_expr_pretty_roundtrip =
  QCheck.Test.make ~name:"expression pretty/parse round trip" ~count:500
    arbitrary_expr (fun e ->
      let src =
        Fmt.str "program t\ndef main() { let y = %a }" Pretty.pp_expr e
      in
      let p = Parser.parse ~file:"prop" src in
      match (Ast.entry_func p).Ast.body with
      | [ { Ast.kind = Ast.Let ("y", e2); _ } ] -> e = e2
      | _ -> false)

let prop_program_roundtrip =
  QCheck.Test.make ~name:"program pretty/parse round trip" ~count:200
    arbitrary_program (fun p ->
      let p2 = Parser.parse ~file:"prop" (Pretty.to_string p) in
      Ast.program_size p = Ast.program_size p2
      && Ast.instruction_count p = Ast.instruction_count p2)

let prop_programs_validate =
  QCheck.Test.make ~name:"generated programs validate" ~count:200
    arbitrary_program (fun p -> Validate.check p = [])

let ctx_list_gen =
  let open QCheck.Gen in
  list_size (int_range 1 40)
    (map2
       (fun v m ->
         Context.make
           ~mass:(float_of_int (m + 1) /. 10.)
           [ ("a", Value.I (v mod 5)) ])
       gen_small_int gen_small_int)

let arbitrary_ctxs =
  QCheck.make
    ~print:(fun cs -> Fmt.str "%a" (Fmt.list Context.pp) cs)
    ctx_list_gen

let prop_normalize_preserves_mass =
  QCheck.Test.make ~name:"context normalize preserves mass" ~count:300
    arbitrary_ctxs (fun cs ->
      let before = Context.mass_of cs in
      let after = Context.mass_of (Context.normalize ~cap:4 cs) in
      Float.abs (before -. after) < 1e-9)

let prop_normalize_caps =
  QCheck.Test.make ~name:"context normalize respects cap" ~count:300
    arbitrary_ctxs (fun cs ->
      List.length (Context.normalize ~cap:3 cs) <= 3)

let prop_normalize_idempotent =
  QCheck.Test.make ~name:"context normalize idempotent" ~count:300
    arbitrary_ctxs (fun cs ->
      let once = Context.normalize ~cap:8 cs in
      let twice = Context.normalize ~cap:8 once in
      List.length once = List.length twice
      && Float.abs (Context.mass_of once -. Context.mass_of twice) < 1e-12)

let prop_truncated_geometric_bounds =
  QCheck.Test.make ~name:"truncated geometric within bounds" ~count:500
    QCheck.(pair (float_bound_inclusive 1.) (float_bound_inclusive 1000.))
    (fun (p, n) ->
      let e = Build.truncated_geometric ~p ~n in
      e >= 0. && e <= n +. 1e-9 && (p <= 0. || e <= (1. /. p) +. 1e-9))

let gen_work =
  let open QCheck.Gen in
  map3
    (fun f i (l, s) ->
      Work.add
        (Work.of_comp ~flops:(float_of_int f) ~iops:(float_of_int i)
           ~divs:(float_of_int (f / 4))
           ~vec:(1 + (i mod 4)))
        (Work.of_mem ~loads:(float_of_int l) ~stores:(float_of_int s)
           ~lbytes:(float_of_int (8 * l))
           ~sbytes:(float_of_int (8 * s))))
    gen_small_int gen_small_int
    (pair gen_small_int gen_small_int)

let arbitrary_work = QCheck.make ~print:(Fmt.str "%a" Work.pp) gen_work

let close a b = Float.abs (a -. b) <= 1e-9 *. (1. +. Float.abs a)

let work_close a b =
  close a.Work.flops b.Work.flops
  && close a.Work.iops b.Work.iops
  && close a.Work.divs b.Work.divs
  && close a.Work.loads b.Work.loads
  && close a.Work.stores b.Work.stores
  && close a.Work.lbytes b.Work.lbytes
  && close a.Work.sbytes b.Work.sbytes

let prop_work_assoc =
  QCheck.Test.make ~name:"work addition associative" ~count:300
    QCheck.(triple arbitrary_work arbitrary_work arbitrary_work)
    (fun (a, b, c) ->
      work_close (Work.add a (Work.add b c)) (Work.add (Work.add a b) c))

let prop_work_scale_distributes =
  QCheck.Test.make ~name:"work scaling distributes" ~count:300
    QCheck.(pair arbitrary_work arbitrary_work)
    (fun (a, b) ->
      work_close
        (Work.scale 3. (Work.add a b))
        (Work.add (Work.scale 3. a) (Work.scale 3. b)))

let prop_roofline_nonnegative =
  QCheck.Test.make ~name:"roofline times non-negative and consistent"
    ~count:300 arbitrary_work (fun w ->
      let b = Core.Hw.Roofline.estimate Core.Hw.Machines.bgq w in
      b.Core.Hw.Roofline.tc >= 0.
      && b.Core.Hw.Roofline.tm >= 0.
      && b.Core.Hw.Roofline.t_overlap
         <= Float.min b.Core.Hw.Roofline.tc b.Core.Hw.Roofline.tm +. 1e-15
      && close b.Core.Hw.Roofline.total
           (b.Core.Hw.Roofline.tc +. b.Core.Hw.Roofline.tm
           -. b.Core.Hw.Roofline.t_overlap))

(* Cache vs a naive reference model. *)
let reference_lru ~sets ~assoc ~line addrs =
  let state = Array.make sets [] in
  let misses = ref 0 in
  List.iter
    (fun addr ->
      let lineno = addr / line in
      let set = lineno mod sets in
      let ways = state.(set) in
      if List.mem lineno ways then
        state.(set) <- lineno :: List.filter (fun t -> t <> lineno) ways
      else begin
        incr misses;
        let ways = lineno :: ways in
        state.(set) <-
          (if List.length ways > assoc then
             List.filteri (fun i _ -> i < assoc) ways
           else ways)
      end)
    addrs;
  !misses

let prop_cache_matches_reference =
  QCheck.Test.make ~name:"cache simulator matches reference LRU" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 300) (QCheck.int_bound 4095))
    (fun addrs ->
      let level =
        {
          Core.Hw.Machine.size_bytes = 512;
          line_bytes = 32;
          assoc = 2;
          latency_cycles = 1.;
        }
      in
      let c = Core.Sim.Cache.create level in
      List.iter (fun a -> ignore (Core.Sim.Cache.access c ~addr:a)) addrs;
      let expected = reference_lru ~sets:8 ~assoc:2 ~line:32 addrs in
      Core.Sim.Cache.misses c = expected)

let gen_blockstats =
  let open QCheck.Gen in
  list_size (int_range 1 30)
    (map3
       (fun i t s ->
         Blockstat.make
           ~block:(Block_id.Loop i)
           ~name:(Fmt.str "b%d" i)
           ~time:(float_of_int t /. 7.)
           ~static_size:(1 + s) ())
       (int_range 0 1000) (int_range 0 100) (int_range 0 30))

let arbitrary_blockstats =
  QCheck.make
    ~print:(fun l -> Fmt.str "%a" (Fmt.list Blockstat.pp) l)
    gen_blockstats

let prop_selection_invariants =
  QCheck.Test.make ~name:"hot spot selection invariants" ~count:300
    arbitrary_blockstats (fun blocks ->
      let total_instructions = 200 in
      let sel = Hotspot.select ~total_instructions blocks in
      let sizes =
        List.fold_left
          (fun acc s -> acc + s.Hotspot.stat.Blockstat.static_size)
          0 sel.Hotspot.spots
      in
      (* leanness bound *)
      float_of_int sizes
      <= (0.10 *. float_of_int total_instructions) +. 1e-9
      (* spots ranked by decreasing time *)
      && fst
           (List.fold_left
              (fun (ok, prev) s ->
                (ok && s.Hotspot.stat.Blockstat.time <= prev +. 1e-12,
                 s.Hotspot.stat.Blockstat.time))
              (true, Float.infinity) sel.Hotspot.spots)
      (* cumulative coverage consistent *)
      && fst
           (List.fold_left
              (fun (ok, cum) (s : Hotspot.spot) ->
                let cum = cum +. s.Hotspot.coverage in
                (ok && Float.abs (cum -. s.Hotspot.cum_coverage) < 1e-9, cum))
              (true, 0.) sel.Hotspot.spots))

let prop_quality_range =
  QCheck.Test.make ~name:"quality within [0,1], self = 1" ~count:300
    QCheck.(pair arbitrary_blockstats arbitrary_blockstats)
    (fun (measured, candidate) ->
      let q = Quality.quality ~measured ~candidate ~k:5 in
      let qself = Quality.quality ~measured ~candidate:measured ~k:5 in
      q >= 0. && q <= 1. +. 1e-9 && Float.abs (qself -. 1.) < 1e-9)

let prop_bet_mass_conservation =
  (* Total root work of a generated program is finite and the build
     never raises; node probabilities stay in [0,1]. *)
  QCheck.Test.make ~name:"BET probabilities within [0,1]" ~count:150
    arbitrary_program (fun p ->
      let b =
        Build.build ~lib_work:(Core.Hw.Libmix.work_fn Core.Hw.Libmix.default) p
      in
      List.for_all
        (fun ((n : Node.t), enr) ->
          n.Node.prob >= -1e-9
          && n.Node.prob <= 1. +. 1e-9
          && n.Node.trips >= -1e-9
          && enr >= -1e-9 && Float.is_finite enr)
        (Node.to_list_enr b.Build.root))

let prop_bet_enr_matches_simulated_execs =
  (* Feed one simulated profile back into the BET: the projected
     expected repetitions per block must then match the simulator's
     observed execution counts (exactly for deterministic control
     flow, within sampling noise for data-dependent branches). *)
  QCheck.Test.make ~name:"BET ENR matches simulated executions" ~count:60
    arbitrary_program (fun p ->
      let config = Core.Sim.Interp.default_config ~seed:9L () in
      let sim = Core.Sim.Interp.run ~config ~inputs:[] p in
      let built =
        Build.build ~hints:sim.Core.Sim.Interp.hints
          ~lib_work:(Core.Hw.Libmix.work_fn Core.Hw.Libmix.default)
          p
      in
      (* Aggregate ENR per block id. *)
      let enr_tbl = Hashtbl.create 16 in
      Node.iter_enr
        (fun node ~enr ->
          let prev =
            Option.value ~default:0. (Hashtbl.find_opt enr_tbl node.Node.block)
          in
          Hashtbl.replace enr_tbl node.Node.block (prev +. enr))
        built.Build.root;
      List.for_all
        (fun (b : Blockstat.t) ->
          let measured = b.Blockstat.enr in
          let projected =
            Option.value ~default:0.
              (Hashtbl.find_opt enr_tbl b.Blockstat.block)
          in
          (* Generated branch probabilities are multiples of 0.1 over
             small loops: allow sampling noise plus slack for nested
             break/continue interactions. *)
          let tol = 4. *. Float.sqrt (measured +. 1.) +. (0.25 *. measured) in
          Float.abs (measured -. projected) <= tol)
        sim.Core.Sim.Interp.blocks)

let prop_sim_model_total_positive =
  (* Any generated program simulates without raising and yields
     non-negative time on both machines. *)
  QCheck.Test.make ~name:"simulator total time non-negative" ~count:60
    arbitrary_program (fun p ->
      let config = Core.Sim.Interp.default_config ~seed:3L () in
      let r = Core.Sim.Interp.run ~config ~inputs:[] p in
      r.Core.Sim.Interp.total_time >= 0. && Float.is_finite r.Core.Sim.Interp.total_time)

let suite =
  [
    ( "props",
      List.map to_alcotest
        [
          prop_eval_deterministic;
          prop_eval_total_on_bound_env;
          prop_expr_pretty_roundtrip;
          prop_program_roundtrip;
          prop_programs_validate;
          prop_normalize_preserves_mass;
          prop_normalize_caps;
          prop_normalize_idempotent;
          prop_truncated_geometric_bounds;
          prop_work_assoc;
          prop_work_scale_distributes;
          prop_roofline_nonnegative;
          prop_cache_matches_reference;
          prop_selection_invariants;
          prop_quality_range;
          prop_bet_mass_conservation;
          prop_bet_enr_matches_simulated_execs;
          prop_sim_model_total_positive;
        ] );
  ]
