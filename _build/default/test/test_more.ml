(* Additional depth tests: the footprint cache model, interpreter
   cost-model details, and BET edge cases not covered by the basic
   suites. *)

open Core.Skeleton
open Core.Bet
open Core.Analysis
open Core.Hw

let bgq = Machines.bgq
let xeon = Machines.xeon

let parse src = Parser.parse ~file:"t.skope" src

let build ?inputs src =
  Build.build ~lib_work:(Libmix.work_fn Libmix.default) ?inputs (parse src)

let project ?cache ?(machine = bgq) b = Perf.project ?cache machine b

let block_time (p : Perf.projection) name =
  match
    List.find_opt (fun (b : Blockstat.t) -> String.equal b.Blockstat.name name) p.Perf.blocks
  with
  | Some b -> b.Blockstat.time
  | None -> 0.

(* --- footprint cache model -------------------------------------------- *)

let test_bytes_per_exec () =
  let b =
    build
      "program t\narray A[1000]\n\
       def main() { @l: for i = 0 to 999 { load A[i]\nstore A[i] } }"
  in
  (* One loop child: per root execution = trips * per-iteration bytes. *)
  let per_exec = Perf.bytes_per_exec b.Build.root in
  Alcotest.(check (float 1.)) "1000 iters x 16 bytes" 16000. per_exec

let footprint_fixture n =
  build
    ~inputs:[ ("n", Value.I n) ]
    "program t\narray A[n]\n\
     def main() { for r = 1 to 50 { @sweep: for i = 0 to n - 1 { load A[i]\n\
     comp flops=1 } } }"

(* Per-access time of the sweep for a working set of [n] 8-byte
   elements. *)
let per_access cache machine n =
  let b = footprint_fixture n in
  block_time (project ~cache ~machine b) "sweep" /. float_of_int n

let test_footprint_resident_cheaper () =
  (* The footprint model prices an L1-resident sweep cheaper per
     access than a DRAM-sized streaming sweep; the constant-ratio
     model cannot tell them apart. *)
  let resident = per_access Perf.Footprint bgq 512 in
  let streaming = per_access Perf.Footprint bgq 8_000_000 in
  Alcotest.(check bool)
    (Fmt.str "resident %.3g < streaming %.3g" resident streaming)
    true
    (resident < streaming *. 0.9);
  let c_res = per_access Perf.Constant bgq 512 in
  let c_str = per_access Perf.Constant bgq 8_000_000 in
  Alcotest.(check bool) "constant model is size-blind" true
    (Float.abs (c_res -. c_str) /. c_str < 0.05)

let test_footprint_distinguishes_machines () =
  (* A ~2 MB working set fits BG/Q's 32 MB L2 but not Xeon's 1.25 MB.
     Normalize each machine by its own L1-resident cost: the capacity
     penalty factor must be larger on Xeon, and only under the
     footprint model. *)
  let penalty cache machine =
    per_access cache machine 262_144 /. per_access cache machine 512
  in
  let pb = penalty Perf.Footprint bgq and px = penalty Perf.Footprint xeon in
  Alcotest.(check bool)
    (Fmt.str "Xeon penalty %.2f > BG/Q penalty %.2f" px pb)
    true (px > pb);
  let cb = penalty Perf.Constant bgq and cx = penalty Perf.Constant xeon in
  Alcotest.(check (float 0.05)) "constant model: no BG/Q penalty" 1. cb;
  Alcotest.(check (float 0.05)) "constant model: no Xeon penalty" 1. cx

let test_footprint_hits_bounds () =
  (* The footprint model must yield finite, non-negative projections
     across working sets spanning registers to DRAM. *)
  List.iter
    (fun elems ->
      let b = footprint_fixture elems in
      let t = (project ~cache:Perf.Footprint b).Perf.total_time in
      Alcotest.(check bool) "finite, non-negative" true
        (Float.is_finite t && t >= 0.))
    [ 8; 12_500; 6_250_000 ]

(* --- interpreter cost model details ------------------------------------ *)

let run ?(machine = bgq) ?(inputs = []) src =
  let config = Core.Sim.Interp.default_config ~machine ~seed:5L () in
  Core.Sim.Interp.run ~config ~inputs (parse src)

let test_interp_lib_scale_linear () =
  let t s =
    (run
       (Fmt.str
          "program t\ndef main() { for i = 1 to 100 { lib exp scale %d } }" s))
      .Core.Sim.Interp.total_cycles
  in
  let t1 = t 1 and t10 = t 10 in
  Alcotest.(check bool)
    (Fmt.str "10x scale ~10x cycles (%.0f vs %.0f)" t10 t1)
    true
    (t10 > t1 *. 8. && t10 < t1 *. 12.)

let test_interp_elem_bytes_affect_locality () =
  (* f32 packs twice as many elements per line as f64: streaming the
     same element count misses half as often. *)
  let t ty =
    (run ~inputs:[ ("n", Value.I 100_000) ]
       (Fmt.str
          "program t\narray A[n] : %s\n\
           def main() { for i = 0 to n - 1 { load A[i] } }"
          ty))
      .Core.Sim.Interp.total_cycles
  in
  Alcotest.(check bool) "f32 streaming cheaper" true (t "f32" < t "f64")

let test_interp_function_local_arrays () =
  (* A function-local array is laid out per declaration and reachable
     only inside that function. *)
  let r =
    run
      "program t\n\
       def worker(m)\n\
       array scratch[m]\n\
       { @w: for i = 0 to m - 1 { store scratch[i] } }\n\
       def main() { call worker(64)\ncall worker(64) }"
  in
  let b =
    List.find
      (fun (b : Blockstat.t) -> b.Blockstat.name = "w")
      r.Core.Sim.Interp.blocks
  in
  Alcotest.(check (float 0.)) "both calls execute" 128. b.Blockstat.enr

let test_interp_while_zero_max () =
  let r =
    run "program t\ndef main() { while w prob 0.9 max 0 { comp flops=1 } }"
  in
  Alcotest.(check (float 0.1)) "zero max, zero iterations" 0.
    (Hints.loop_trips r.Core.Sim.Interp.hints "w" ~default:0.)

let test_interp_nested_break_scopes () =
  (* break exits only the innermost loop. *)
  let r =
    run
      "program t\n\
       def main() { @outer: for i = 1 to 10 {\n\
       @inner: for j = 1 to 100 { break b prob 1.0\ncomp flops=1 } } }"
  in
  let enr name =
    match
      List.find_opt
        (fun (b : Blockstat.t) -> b.Blockstat.name = name)
        r.Core.Sim.Interp.blocks
    with
    | Some b -> b.Blockstat.enr
    | None -> 0.
  in
  Alcotest.(check (float 0.)) "outer runs all 10" 10. (enr "outer");
  Alcotest.(check (float 0.)) "inner breaks immediately" 10. (enr "inner")

let test_interp_prob_expression () =
  (* Branch probability can be an expression over context variables. *)
  let r =
    run ~inputs:[ ("p", Value.F 0.75) ]
      "program t\n\
       def main() { for i = 1 to 4000 { if data d prob p { comp flops=1 } } }"
  in
  Alcotest.(check (float 0.05)) "expression probability honored" 0.75
    (Hints.branch_prob r.Core.Sim.Interp.hints "d" ~default:0.)

(* --- BET edge cases ----------------------------------------------------- *)

let test_bet_continue_probability () =
  (* continue skips the rest of the iteration with probability p: the
     trailing statement's expected work scales by (1-p). *)
  let b =
    build
      "program t\n\
       def main() { for i = 1 to 100 { continue c prob 0.4\ncomp flops=10 } }"
  in
  let loops =
    List.filter
      (fun ((n : Node.t), _) -> n.Node.kind = Node.Loop)
      (Node.to_list_enr b.Build.root)
  in
  match loops with
  | [ (n, _) ] ->
    Alcotest.(check (float 1e-9)) "work scaled by survivors" 6.
      n.Node.work.Work.flops
  | _ -> Alcotest.fail "expected one loop"

let test_bet_else_only_branch () =
  let b =
    build
      "program t\n\
       def main() { if data d prob 0.9 { comp flops=1 } else { comp flops=7 } }"
  in
  let arms =
    List.filter_map
      (fun ((n : Node.t), enr) ->
        match n.Node.kind with
        | Node.Arm which -> Some (which, n.Node.prob, enr)
        | _ -> None)
      (Node.to_list_enr b.Build.root)
  in
  Alcotest.(check int) "two arms" 2 (List.length arms);
  List.iter
    (fun (which, prob, enr) ->
      Alcotest.(check (float 1e-9))
        (Fmt.str "arm %b prob = enr" which)
        prob enr)
    arms

let test_bet_deep_context_chain_capped () =
  (* A chain of data branches each assigning a distinct variable would
     explode contexts; the cap must keep construction linear while
     conserving mass. *)
  let stmts =
    String.concat "\n"
      (List.init 24 (fun i ->
           Fmt.str "if data d%d prob 0.5 { let v%d = 1 }" i i))
  in
  let b = build (Fmt.str "program t\ndef main() { %s\ncomp flops=10 }" stmts) in
  Alcotest.(check bool) "bounded BET" true (b.Build.node_count < 200);
  Alcotest.(check (float 1e-6)) "root work mass conserved" 10.
    b.Build.root.Node.work.Work.flops

let test_bet_call_in_branch_context () =
  (* A call under a data branch must carry the branch probability into
     the mounted function's ENR. *)
  let b =
    build
      "program t\n\
       def k() { @kk: for j = 1 to 10 { comp flops=1 } }\n\
       def main() { if data d prob 0.25 { call k() } }"
  in
  let kk =
    List.find
      (fun ((n : Node.t), _) -> n.Node.kind = Node.Loop)
      (Node.to_list_enr b.Build.root)
  in
  Alcotest.(check (float 1e-9)) "ENR includes branch probability" 2.5 (snd kk)

let test_bet_while_break_combination () =
  (* A while loop whose body breaks: effective trips below the
     geometric expectation. *)
  let b =
    build
      "program t\n\
       def main() { while w prob 0.9 max 100 { break b prob 0.5\ncomp flops=1 } }"
  in
  match
    List.find_opt
      (fun ((n : Node.t), _) -> n.Node.kind = Node.Loop)
      (Node.to_list_enr b.Build.root)
  with
  | Some (n, _) ->
    Alcotest.(check bool)
      (Fmt.str "trips %.2f < 3" n.Node.trips)
      true (n.Node.trips < 3.)
  | None -> Alcotest.fail "loop node"

let test_bet_warning_on_unknown_lib () =
  let b = build "program t\ndef main() { lib fft_unknown }" in
  Alcotest.(check bool) "warning emitted" true (b.Build.warnings <> [])

(* --- machine microbenchmarks ------------------------------------------- *)

let test_microbench_latency_ordering () =
  List.iter
    (fun machine ->
      let cycles_of (bench : Microbench.t) =
        let config = Core.Sim.Interp.default_config ~machine ~seed:3L () in
        let r =
          Core.Sim.Interp.run ~config ~inputs:bench.Microbench.inputs
            bench.Microbench.program
        in
        (Microbench.measure bench ~total_cycles:r.Core.Sim.Interp.total_cycles
           ~freq_ghz:machine.Machine.freq_ghz)
          .Microbench.cycles_per_access
      in
      match Microbench.suite machine with
      | [ l1; l2; mem; _stream ] ->
        let c1 = cycles_of l1 and c2 = cycles_of l2 and cm = cycles_of mem in
        Alcotest.(check bool)
          (Fmt.str "%s: L1 %.1f < L2 %.1f < mem %.1f" machine.Machine.name c1
             c2 cm)
          true
          (c1 < c2 && c2 < cm)
      | _ -> Alcotest.fail "unexpected suite shape")
    [ bgq; xeon ]

let test_microbench_stream_plausible () =
  let machine = bgq in
  match List.rev (Microbench.suite machine) with
  | stream :: _ ->
    let config = Core.Sim.Interp.default_config ~machine ~seed:3L () in
    let r =
      Core.Sim.Interp.run ~config ~inputs:stream.Microbench.inputs
        stream.Microbench.program
    in
    let m =
      Microbench.measure stream ~total_cycles:r.Core.Sim.Interp.total_cycles
        ~freq_ghz:machine.Machine.freq_ghz
    in
    (* The simulator has no explicit bandwidth throttle; the measured
       stream rate should land within a small factor of the configured
       figure. *)
    Alcotest.(check bool)
      (Fmt.str "stream %.2f GB/s within 4x of %.2f" m.Microbench.gb_per_sec
         machine.Machine.mem_bw_gbs)
      true
      (m.Microbench.gb_per_sec > machine.Machine.mem_bw_gbs /. 4.
      && m.Microbench.gb_per_sec < machine.Machine.mem_bw_gbs *. 4.)
  | [] -> Alcotest.fail "empty suite"

let suite =
  [
    ( "hw.microbench",
      [
        Alcotest.test_case "latency ordering" `Quick
          test_microbench_latency_ordering;
        Alcotest.test_case "stream bandwidth plausible" `Quick
          test_microbench_stream_plausible;
      ] );
    ( "perf.footprint",
      [
        Alcotest.test_case "bytes per exec" `Quick test_bytes_per_exec;
        Alcotest.test_case "residency pricing" `Quick
          test_footprint_resident_cheaper;
        Alcotest.test_case "machine differentiation" `Quick
          test_footprint_distinguishes_machines;
        Alcotest.test_case "stability across footprints" `Quick
          test_footprint_hits_bounds;
      ] );
    ( "sim.details",
      [
        Alcotest.test_case "lib scale linear" `Quick
          test_interp_lib_scale_linear;
        Alcotest.test_case "element size locality" `Quick
          test_interp_elem_bytes_affect_locality;
        Alcotest.test_case "function-local arrays" `Quick
          test_interp_function_local_arrays;
        Alcotest.test_case "while max 0" `Quick test_interp_while_zero_max;
        Alcotest.test_case "nested break scopes" `Quick
          test_interp_nested_break_scopes;
        Alcotest.test_case "probability expressions" `Quick
          test_interp_prob_expression;
      ] );
    ( "bet.edge",
      [
        Alcotest.test_case "continue scales work" `Quick
          test_bet_continue_probability;
        Alcotest.test_case "arm probabilities equal ENR" `Quick
          test_bet_else_only_branch;
        Alcotest.test_case "context cap bounds the tree" `Quick
          test_bet_deep_context_chain_capped;
        Alcotest.test_case "call under branch" `Quick
          test_bet_call_in_branch_context;
        Alcotest.test_case "while + break" `Quick
          test_bet_while_break_combination;
        Alcotest.test_case "unknown lib warns" `Quick
          test_bet_warning_on_unknown_lib;
      ] );
  ]
