(* Shape-regression tests: encode the paper's evaluation findings as
   assertions over the calibrated workload models, so recalibration
   cannot silently lose the reproduced phenomena (EXPERIMENTS.md).

   These run full pipelines at the default scales and are tagged
   `Slow. *)

open Core
module BS = Analysis.Blockstat
module HS = Analysis.Hotspot

let bgq = Hw.Machines.bgq
let xeon = Hw.Machines.xeon

(* One cached run per workload/machine used below. *)
let cache : (string, Pipeline.run) Hashtbl.t = Hashtbl.create 8

let run name machine =
  let key = name ^ "/" ^ machine.Hw.Machine.name in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
    let r = Pipeline.run ~machine (Workloads.Registry.find_exn name) in
    Hashtbl.add cache key r;
    r

let share blocks name =
  let total = BS.total_time blocks in
  match List.find_opt (fun (b : BS.t) -> String.equal b.BS.name name) blocks with
  | Some b -> b.BS.time /. total
  | None -> 0.

let top_names blocks k =
  HS.top_k ~k blocks |> List.map (fun (b : BS.t) -> b.BS.name)

let check_range what lo hi v =
  Alcotest.(check bool)
    (Fmt.str "%s = %.3f within [%.2f, %.2f]" what v lo hi)
    true
    (v >= lo && v <= hi)

(* --- SRAD: top-3 are exp, diffusion, rand (paper 37/28/25%) --------- *)

let test_srad_order () =
  let r = run "srad" bgq in
  match top_names r.Pipeline.measured.blocks 3 with
  | [ first; second; third ] ->
    Alcotest.(check bool) "1st is libm exp" true
      (String.length first >= 7 && String.sub first 0 7 = "lib:exp");
    Alcotest.(check string) "2nd is the diffusion loop" "diffusion_update"
      second;
    Alcotest.(check bool) "3rd is rand" true
      (String.length third >= 8 && String.sub third 0 8 = "lib:rand")
  | _ -> Alcotest.fail "missing top 3"

let test_srad_coverages () =
  let r = run "srad" bgq in
  let b = r.Pipeline.measured.blocks in
  check_range "exp share" 0.25 0.45 (share b "lib:exp:gradient#18");
  check_range "diffusion share" 0.20 0.36 (share b "diffusion_update")

(* --- CHARGEI: two dominating spots (paper 44/38%) -------------------- *)

let test_chargei_dominant_pair () =
  let r = run "chargei" bgq in
  let b = r.Pipeline.measured.blocks in
  (match top_names b 2 with
  | [ "gyro_average"; "charge_scatter" ] -> ()
  | other -> Alcotest.failf "top-2 = %a" Fmt.(list string) other);
  check_range "gyro share" 0.38 0.55 (share b "gyro_average");
  check_range "scatter share" 0.30 0.48 (share b "charge_scatter")

(* --- STASSUIJ: 68/23 split; model overestimates the AXPY ------------- *)

let test_stassuij_split () =
  let r = run "stassuij" bgq in
  let b = r.Pipeline.measured.blocks in
  check_range "axpy share" 0.60 0.85 (share b "sparse_axpy");
  check_range "butterfly share" 0.12 0.32 (share b "butterfly_exchange")

let test_stassuij_model_overestimates_vectorized_spot () =
  let r = run "stassuij" bgq in
  Alcotest.(check bool) "projected > measured for the XL-vectorized loop" true
    (share r.Pipeline.projection.blocks "sparse_axpy"
    > share r.Pipeline.measured.blocks "sparse_axpy")

(* --- CFD: division anecdote (paper SSVII-B) --------------------------- *)

let test_cfd_velocity_underestimated () =
  let r = run "cfd" bgq in
  let proj = share r.Pipeline.projection.blocks "compute_velocity" in
  let meas = share r.Pipeline.measured.blocks "compute_velocity" in
  Alcotest.(check bool)
    (Fmt.str "projected %.3f clearly below measured %.3f" proj meas)
    true
    (proj < meas *. 0.8);
  check_range "measured velocity share" 0.10 0.30 meas

let test_cfd_all_top10_found () =
  let r = run "cfd" bgq in
  let prof = top_names r.Pipeline.measured.blocks 10 in
  let modl = top_names r.Pipeline.projection.blocks 10 in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " in model top-10") true
        (List.mem name modl))
    prof

let test_cfd_division_ablation_direction () =
  (* Making the model division-aware must raise the projected share of
     the division-heavy kernel. *)
  let w = Workloads.Registry.find_exn "cfd" in
  let p opts =
    let a = Pipeline.analyze ~opts ~machine:bgq ~workload:w ~scale:0.1 () in
    share a.Pipeline.a_projection.Analysis.Perf.blocks "compute_velocity"
  in
  Alcotest.(check bool) "div-aware raises the share" true
    (p { Hw.Roofline.default_opts with div_aware = true }
    > p Hw.Roofline.default_opts)

(* --- SORD: portability (paper SSI/SSVII-A) ----------------------------- *)

let test_sord_machines_disagree () =
  let rb = run "sord" bgq and rx = run "sord" xeon in
  let overlap =
    Analysis.Quality.overlap ~a:rb.Pipeline.measured.blocks
      ~b:rx.Pipeline.measured.blocks ~k:10
  in
  Alcotest.(check bool)
    (Fmt.str "top-10 overlap %d < 10" overlap)
    true
    (overlap < 10);
  let agreement =
    Analysis.Quality.rank_agreement ~a:rb.Pipeline.measured.blocks
      ~b:rx.Pipeline.measured.blocks ~k:10
  in
  Alcotest.(check bool)
    (Fmt.str "rank agreement %.2f < 1" agreement)
    true (agreement < 0.999)

let test_sord_machine_specific_spots () =
  (* The cache-capacity-driven spots must flip between machines:
     the 2MB table gather is hot on Xeon (spills its small L2), the
     small-array convolution is hot on BG/Q (thrashes its 16KB L1). *)
  let rb = run "sord" bgq and rx = run "sord" xeon in
  let b = rb.Pipeline.measured.blocks and x = rx.Pipeline.measured.blocks in
  Alcotest.(check bool) "material_lookup hotter on Xeon" true
    (share x "material_lookup" > share b "material_lookup");
  Alcotest.(check bool) "stf_convolve hotter on BG/Q" true
    (share b "stf_convolve" > share x "stf_convolve")

(* --- quality thresholds (paper: mean 95.8%, min >= 80%) ---------------- *)

let test_quality_thresholds () =
  let qs =
    List.concat_map
      (fun name ->
        let k =
          (Workloads.Registry.find_exn name).Workloads.Registry.paper_top_k
        in
        List.map
          (fun m -> Pipeline.model_quality (run name m) ~k)
          [ bgq; xeon ])
      [ "sord"; "cfd"; "srad"; "chargei"; "stassuij" ]
  in
  let mean = List.fold_left ( +. ) 0. qs /. float_of_int (List.length qs) in
  let min_q = List.fold_left Float.min 1. qs in
  Alcotest.(check bool)
    (Fmt.str "mean quality %.3f >= 0.90" mean)
    true (mean >= 0.90);
  Alcotest.(check bool)
    (Fmt.str "min quality %.3f >= 0.80" min_q)
    true (min_q >= 0.80)

(* --- BET size claim (paper SSIV-B) -------------------------------------- *)

let test_bet_never_exceeds_2x () =
  List.iter
    (fun name ->
      let w = Workloads.Registry.find_exn name in
      let a = Pipeline.analyze ~machine:bgq ~workload:w ~scale:0.1 () in
      let ratio =
        float_of_int a.Pipeline.a_built.Bet.Build.node_count
        /. float_of_int (Skeleton.Ast.program_size a.Pipeline.a_program)
      in
      Alcotest.(check bool)
        (Fmt.str "%s ratio %.2f <= 2" name ratio)
        true (ratio <= 2.))
    Workloads.Registry.names

let suite =
  [
    ( "shapes",
      [
        Alcotest.test_case "srad hot spot order" `Slow test_srad_order;
        Alcotest.test_case "srad coverages" `Slow test_srad_coverages;
        Alcotest.test_case "chargei dominant pair" `Slow
          test_chargei_dominant_pair;
        Alcotest.test_case "stassuij 68/23 split" `Slow test_stassuij_split;
        Alcotest.test_case "stassuij vectorization overestimate" `Slow
          test_stassuij_model_overestimates_vectorized_spot;
        Alcotest.test_case "cfd velocity underestimated" `Slow
          test_cfd_velocity_underestimated;
        Alcotest.test_case "cfd all top-10 found" `Slow
          test_cfd_all_top10_found;
        Alcotest.test_case "cfd division ablation direction" `Slow
          test_cfd_division_ablation_direction;
        Alcotest.test_case "sord machines disagree" `Slow
          test_sord_machines_disagree;
        Alcotest.test_case "sord machine-specific spots" `Slow
          test_sord_machine_specific_spots;
        Alcotest.test_case "quality thresholds" `Slow test_quality_thresholds;
        Alcotest.test_case "BET within 2x of source" `Quick
          test_bet_never_exceeds_2x;
      ] );
  ]
