(* Tests for the report library: tables, CSV, charts. *)

open Core.Report

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let fixture =
  Table.make ~title:"T"
    ~headers:[ "name"; "value" ]
    ~aligns:Table.[ Left; Right ]
    [ [ "alpha"; "1" ]; [ "beta-long"; "22" ] ]

let test_table_alignment () =
  let out = Table.render fixture in
  let lines = String.split_on_char '\n' out in
  (* title, header, separator, two rows (and trailing empty). *)
  Alcotest.(check int) "line count" 6 (List.length lines);
  let header = List.nth lines 1 in
  let row1 = List.nth lines 3 in
  Alcotest.(check bool) "columns padded to same width" true
    (String.length header = String.length row1);
  (* Right-aligned numeric column: the value ends the row. *)
  let row2 = List.nth lines 4 in
  Alcotest.(check bool) "right aligned" true
    (String.length row2 > 0 && row2.[String.length row2 - 1] = '2')

let test_table_empty_rows () =
  let t = Table.make ~headers:[ "a" ] [] in
  let out = Table.render t in
  Alcotest.(check bool) "renders header" true
    (String.length out > 0)

let test_csv_escaping () =
  let t =
    Table.make ~headers:[ "a"; "b" ]
      [ [ "plain"; "with,comma" ]; [ "with\"quote"; "x" ] ]
  in
  let csv = Table.to_csv t in
  Alcotest.(check bool) "comma cell quoted" true
    (contains csv "\"with,comma\"")

let test_chart_bars_scale () =
  let out = Chart.bars ~title:"t" [ ("big", 100.); ("half", 50.) ] in
  let count_hashes line =
    String.fold_left (fun n c -> if c = '#' then n + 1 else n) 0 line
  in
  match String.split_on_char '\n' out with
  | _title :: big :: half :: _ ->
    Alcotest.(check bool) "bar lengths proportional" true
      (count_hashes big >= 2 * count_hashes half - 2
      && count_hashes big > count_hashes half)
  | _ -> Alcotest.fail "unexpected chart shape"

let test_chart_bars_empty () =
  Alcotest.(check bool) "no crash on empty" true
    (String.length (Chart.bars []) >= 0)

let test_stacked_bars_total () =
  let out =
    Chart.stacked_bars [ ("x", [ ('C', 1.); ('M', 3.) ]) ]
  in
  Alcotest.(check bool) "contains both segment glyphs" true
    (String.contains out 'C' && String.contains out 'M')

let test_curves_table () =
  let out =
    Chart.curves ~title:"q" ~ylabel:"y"
      ~series:[ ("a", [ 0.1; 0.2 ]); ("b", [ 1.0 ]) ]
      ()
  in
  (* Series of different lengths pad with blanks and don't crash. *)
  Alcotest.(check bool) "mentions both series" true
    (contains out "a" && contains out "b" && contains out "0.200")

(* --- json ------------------------------------------------------------- *)

let test_json_escaping () =
  let j =
    Json.Obj [ ("k\"ey", Json.String "line\nbreak\ttab \\ quote\"") ]
  in
  Alcotest.(check string) "escaped"
    {|{"k\"ey":"line\nbreak\ttab \\ quote\""}|} (Json.to_string j)

let test_json_values () =
  Alcotest.(check string) "null" "null" (Json.to_string Json.Null);
  Alcotest.(check string) "bool" "true" (Json.to_string (Json.Bool true));
  Alcotest.(check string) "int" "42" (Json.to_string (Json.Int 42));
  Alcotest.(check string) "float integral" "2.0"
    (Json.to_string (Json.Float 2.));
  Alcotest.(check string) "nan becomes null" "null"
    (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "list" "[1,2]"
    (Json.to_string (Json.List [ Json.Int 1; Json.Int 2 ]))

let test_json_projection_shape () =
  let w = Core.Workloads.Registry.find_exn "pedagogical" in
  let a =
    Core.Pipeline.analyze ~machine:Core.Hw.Machines.bgq ~workload:w ~scale:1.0
      ()
  in
  let s =
    Json.to_string (Render.json_of_projection a.Core.Pipeline.a_projection)
  in
  Alcotest.(check bool) "has machine field" true
    (contains s {|"machine":"BG/Q"|});
  Alcotest.(check bool) "has blocks" true (contains s {|"blocks":[|});
  Alcotest.(check bool) "has bounds" true (contains s {|"bound":|})

let test_roofline_rows_bounded () =
  let w = Core.Workloads.Registry.find_exn "sord" in
  let a =
    Core.Pipeline.analyze ~machine:Core.Hw.Machines.bgq ~workload:w ~scale:0.1
      ()
  in
  let rows =
    Render.roofline_rows Core.Hw.Machines.bgq
      a.Core.Pipeline.a_projection.Core.Analysis.Perf.blocks ~k:10
  in
  Alcotest.(check bool) "has rows" true (rows <> []);
  List.iter
    (fun row ->
      match List.nth_opt row 4 with
      | Some pct ->
        let v = float_of_string (String.sub pct 0 (String.length pct - 1)) in
        Alcotest.(check bool)
          (Fmt.str "roof fraction %s <= 100%%" pct)
          true
          (v <= 100. +. 1e-6)
      | None -> Alcotest.fail "missing column")
    rows

let suite =
  [
    ( "report.json",
      [
        Alcotest.test_case "string escaping" `Quick test_json_escaping;
        Alcotest.test_case "scalar values" `Quick test_json_values;
        Alcotest.test_case "projection shape" `Quick test_json_projection_shape;
        Alcotest.test_case "roofline rows bounded" `Quick
          test_roofline_rows_bounded;
      ] );
    ( "report",
      [
        Alcotest.test_case "table alignment" `Quick test_table_alignment;
        Alcotest.test_case "empty table" `Quick test_table_empty_rows;
        Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
        Alcotest.test_case "bars scale" `Quick test_chart_bars_scale;
        Alcotest.test_case "bars empty" `Quick test_chart_bars_empty;
        Alcotest.test_case "stacked bars" `Quick test_stacked_bars_total;
        Alcotest.test_case "curves" `Quick test_curves_table;
      ] );
  ]
