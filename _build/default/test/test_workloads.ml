(* Tests for the bundled workload models: every skeleton must be
   valid, scalable, and structurally faithful to the paper's
   description. *)

open Core.Skeleton
open Core.Workloads

let labels p =
  Ast.fold_program
    (fun acc s -> match s.Ast.label with Some l -> l :: acc | None -> acc)
    [] p

let test_all_validate () =
  List.iter
    (fun (w : Registry.t) ->
      let program, inputs = w.Registry.make ~scale:w.Registry.default_scale in
      match Validate.check ~inputs:(List.map fst inputs) program with
      | [] -> ()
      | issues ->
        Alcotest.failf "%s invalid: %a" w.Registry.name
          (Fmt.list ~sep:Fmt.semi Validate.pp_issue)
          issues)
    Registry.all

let test_all_pretty_roundtrip () =
  (* Every workload skeleton must survive print -> parse. *)
  List.iter
    (fun (w : Registry.t) ->
      let program, _ = w.Registry.make ~scale:0.1 in
      let src = Pretty.to_string program in
      match Parser.parse ~file:(w.Registry.name ^ ".skope") src with
      | p2 ->
        Alcotest.(check int)
          (w.Registry.name ^ " same size")
          (Ast.program_size program) (Ast.program_size p2)
      | exception Parser.Error (loc, m) ->
        Alcotest.failf "%s reparse failed at %a: %s" w.Registry.name Loc.pp loc
          m)
    Registry.all

let test_scaling_changes_inputs () =
  List.iter
    (fun (w : Registry.t) ->
      if w.Registry.name <> "pedagogical" then begin
        let _, small = w.Registry.make ~scale:0.1 in
        let _, large = w.Registry.make ~scale:1.0 in
        let total l =
          List.fold_left
            (fun acc (_, v) -> acc +. Core.Bet.Value.to_float v)
            0. l
        in
        Alcotest.(check bool)
          (w.Registry.name ^ " scales")
          true
          (total large > total small)
      end)
    Registry.all

let test_registry_lookup () =
  Alcotest.(check bool) "sord present" true (Registry.find "sord" <> None);
  Alcotest.(check bool) "SORD case-insensitive" true
    (Registry.find "SORD" <> None);
  Alcotest.(check bool) "unknown" true (Registry.find "doom" = None);
  match Registry.find_exn "nope" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let has_label name p = List.mem name (labels p)

let test_sord_structure () =
  let p, inputs = (Registry.find_exn "sord").Registry.make ~scale:0.1 in
  (* The paper's SORD phases must be present. *)
  List.iter
    (fun l ->
      Alcotest.(check bool) ("has " ^ l) true (has_label l p))
    [
      "stress_diag"; "hourglass_gather"; "momentum_acc"; "fault_plane";
      "halo_pack"; "viscosity"; "timestep";
    ];
  Alcotest.(check bool) "3D grid input" true (List.mem_assoc "ncell" inputs);
  Alcotest.(check bool) "multiple functions" true (List.length p.Ast.funcs > 8)

let test_sord_has_data_branch () =
  let p, _ = (Registry.find_exn "sord").Registry.make ~scale:0.1 in
  let has_rupture =
    Ast.fold_program
      (fun acc s ->
        acc
        ||
        match s.Ast.kind with
        | Ast.If { cond = Ast.Cdata { name = "rupturing"; _ }; _ } -> true
        | _ -> false)
      false p
  in
  Alcotest.(check bool) "rupture branch" true has_rupture

let test_cfd_structure () =
  let p, inputs = (Registry.find_exn "cfd").Registry.make ~scale:0.1 in
  List.iter
    (fun l -> Alcotest.(check bool) ("has " ^ l) true (has_label l p))
    [
      "compute_flux"; "compute_velocity"; "compute_step_factor"; "time_step";
      "rk_loop"; "time_loop";
    ];
  (* The velocity kernel must carry divisions (the §VII-B anecdote). *)
  let divs =
    Ast.fold_program
      (fun acc s ->
        match (s.Ast.label, s.Ast.kind) with
        | _, Ast.For { body; _ }
          when List.exists
                 (fun (x : Ast.stmt) ->
                   match x.Ast.kind with
                   | Ast.Comp { divs = Ast.Int d; _ } -> d >= 2
                   | _ -> false)
                 body ->
          acc || true
        | _ -> acc)
      false p
  in
  Alcotest.(check bool) "division-heavy kernel present" true divs;
  Alcotest.(check bool) "grid size input" true (List.mem_assoc "ncell" inputs)

let test_srad_uses_libraries () =
  let p, _ = (Registry.find_exn "srad").Registry.make ~scale:0.1 in
  let libs =
    Ast.fold_program
      (fun acc s ->
        match s.Ast.kind with Ast.Lib { name; _ } -> name :: acc | _ -> acc)
      [] p
  in
  Alcotest.(check bool) "exp called" true (List.mem "exp" libs);
  Alcotest.(check bool) "rand called" true (List.mem "rand" libs)

let test_chargei_structure () =
  let p, inputs = (Registry.find_exn "chargei").Registry.make ~scale:0.1 in
  List.iter
    (fun l -> Alcotest.(check bool) ("has " ^ l) true (has_label l p))
    [ "gyro_average"; "charge_scatter"; "smooth_field"; "poisson_sweep" ];
  (* Paper: ~8 loop structures. *)
  let loops =
    Ast.fold_program
      (fun n s ->
        match s.Ast.kind with
        | Ast.For _ | Ast.While _ -> n + 1
        | _ -> n)
      0 p
  in
  Alcotest.(check bool) "at least 8 loops" true (loops >= 8);
  let np = List.assoc "npart" inputs and ng = List.assoc "ngrid" inputs in
  Alcotest.(check bool) "more particles than grid" true
    (Core.Bet.Value.to_float np > Core.Bet.Value.to_float ng)

let test_stassuij_structure () =
  let p, inputs = (Registry.find_exn "stassuij").Registry.make ~scale:1.0 in
  List.iter
    (fun l -> Alcotest.(check bool) ("has " ^ l) true (has_label l p))
    [ "sparse_axpy"; "butterfly_exchange" ];
  (* 132 rows as in the paper. *)
  Alcotest.(check bool) "132 rows" true
    (Core.Bet.Value.equal (List.assoc "nrows" inputs) (Core.Bet.Value.I 132));
  (* The AXPY must be marked vectorizable (vec>1), the butterfly not. *)
  let vec_of label =
    Ast.fold_program
      (fun acc s ->
        match (s.Ast.label, s.Ast.kind) with
        | Some l, Ast.For { body; _ } when String.equal l label ->
          List.fold_left
            (fun a (x : Ast.stmt) ->
              match x.Ast.kind with Ast.Comp { vec; _ } -> max a vec | _ -> a)
            acc body
        | _ -> acc)
      1 p
  in
  Alcotest.(check bool) "axpy vectorized" true (vec_of "sparse_axpy" > 1);
  Alcotest.(check int) "butterfly scalar" 1 (vec_of "butterfly_exchange")

let test_cold_code_present () =
  (* Each production workload carries cold-code mass so the leanness
     criterion is meaningful: the hot loops must be a small fraction of
     static instructions. *)
  List.iter
    (fun name ->
      let w = Registry.find_exn name in
      let p, _ = w.Registry.make ~scale:0.1 in
      let total = Ast.instruction_count p in
      Alcotest.(check bool)
        (Fmt.str "%s has >= 1000 static instructions (got %d)" name total)
        true (total >= 1000))
    [ "sord"; "cfd"; "srad"; "chargei" ]

let test_pedagogical_shape () =
  let p, _ = (Registry.find_exn "pedagogical").Registry.make ~scale:1.0 in
  Alcotest.(check int) "two functions" 2 (List.length p.Ast.funcs);
  (* foo is called twice (the Fig. 2 double mount). *)
  let calls =
    Ast.fold_program
      (fun n s ->
        match s.Ast.kind with Ast.Call ("foo", _) -> n + 1 | _ -> n)
      0 p
  in
  Alcotest.(check int) "foo called twice" 2 calls

let suite =
  [
    ( "workloads",
      [
        Alcotest.test_case "all validate" `Quick test_all_validate;
        Alcotest.test_case "all pretty-print round trip" `Quick
          test_all_pretty_roundtrip;
        Alcotest.test_case "scaling changes inputs" `Quick
          test_scaling_changes_inputs;
        Alcotest.test_case "registry lookup" `Quick test_registry_lookup;
        Alcotest.test_case "sord structure" `Quick test_sord_structure;
        Alcotest.test_case "sord rupture branch" `Quick
          test_sord_has_data_branch;
        Alcotest.test_case "cfd structure" `Quick test_cfd_structure;
        Alcotest.test_case "srad library hot spots" `Quick
          test_srad_uses_libraries;
        Alcotest.test_case "chargei structure" `Quick test_chargei_structure;
        Alcotest.test_case "stassuij structure" `Quick test_stassuij_structure;
        Alcotest.test_case "cold code mass" `Quick test_cold_code_present;
        Alcotest.test_case "pedagogical shape" `Quick test_pedagogical_shape;
      ] );
  ]
