(* Unit tests for the ground-truth simulator: RNG, cache, interpreter
   semantics, counters and profiling output. *)

open Core.Skeleton
open Core.Bet
open Core.Sim
open Core.Hw

let parse src = Parser.parse ~file:"t.skope" src

let run ?(machine = Machines.bgq) ?(seed = 7L) ?(inputs = []) src =
  let config = Interp.default_config ~machine ~seed () in
  Interp.run ~config ~inputs (parse src)

let block_named (r : Interp.result) name =
  List.find_opt
    (fun (b : Core.Analysis.Blockstat.t) ->
      String.equal b.Core.Analysis.Blockstat.name name)
    r.Interp.blocks

let enr_of r name =
  match block_named r name with
  | Some b -> b.Core.Analysis.Blockstat.enr
  | None -> 0.

(* --- rng --------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 1L and b = Rng.create 1L in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.)) "same stream" (Rng.float a) (Rng.float b)
  done

let test_rng_uniform_mean () =
  let r = Rng.create 99L in
  let n = 20000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.float r
  done;
  Alcotest.(check (float 0.02)) "mean ~0.5" 0.5 (!sum /. float_of_int n)

let test_rng_bernoulli () =
  let r = Rng.create 123L in
  let n = 20000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  Alcotest.(check (float 0.02)) "p ~0.3" 0.3
    (float_of_int !hits /. float_of_int n)

let test_rng_int_bounds () =
  let r = Rng.create 5L in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

(* --- cache --------------------------------------------------------------- *)

let level : Machine.cache_level =
  { size_bytes = 1024; line_bytes = 64; assoc = 2; latency_cycles = 1. }

let test_cache_cold_miss_then_hit () =
  let c = Cache.create level in
  Alcotest.(check bool) "cold miss" false (Cache.access c ~addr:0);
  Alcotest.(check bool) "hit" true (Cache.access c ~addr:8);
  Alcotest.(check int) "one miss" 1 (Cache.misses c);
  Alcotest.(check int) "two accesses" 2 (Cache.accesses c)

let test_cache_line_granularity () =
  let c = Cache.create level in
  ignore (Cache.access c ~addr:0);
  Alcotest.(check bool) "same line hits" true (Cache.access c ~addr:63);
  Alcotest.(check bool) "next line misses" false (Cache.access c ~addr:64)

let test_cache_lru_eviction () =
  (* 1024B / 64B / 2-way = 8 sets; addresses 0, 8*64, 16*64 all map to
     set 0.  With 2 ways, accessing a third conflicting line evicts the
     least recently used. *)
  let c = Cache.create level in
  let l0 = 0 and l1 = 8 * 64 and l2 = 16 * 64 in
  ignore (Cache.access c ~addr:l0);
  ignore (Cache.access c ~addr:l1);
  ignore (Cache.access c ~addr:l0);
  (* l1 is now LRU *)
  ignore (Cache.access c ~addr:l2);
  (* evicts l1 *)
  Alcotest.(check bool) "l0 still resident" true (Cache.access c ~addr:l0);
  Alcotest.(check bool) "l1 evicted" false (Cache.access c ~addr:l1)

let test_cache_working_set () =
  (* A working set that fits is all hits after the first pass. *)
  let c = Cache.create level in
  let lines = 8 in
  for pass = 1 to 3 do
    for i = 0 to lines - 1 do
      let hit = Cache.access c ~addr:(i * 64) in
      if pass > 1 then Alcotest.(check bool) "warm hit" true hit
    done
  done;
  Alcotest.(check int) "only cold misses" lines (Cache.misses c)

let test_cache_reset () =
  let c = Cache.create level in
  ignore (Cache.access c ~addr:0);
  Cache.reset c;
  Alcotest.(check int) "zeroed" 0 (Cache.accesses c);
  Alcotest.(check bool) "cold again" false (Cache.access c ~addr:0)

let test_cache_invalid_geometry () =
  match Cache.create { level with line_bytes = 48 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected invalid geometry"

(* --- interpreter: semantics ----------------------------------------------- *)

let test_interp_loop_count () =
  let r = run "program t\ndef main() { @l: for i = 1 to 10 { comp flops=1 } }" in
  Alcotest.(check (float 0.)) "10 iterations" 10. (enr_of r "l")

let test_interp_nested_counts () =
  let r =
    run
      "program t\n\
       def main() { @o: for i = 1 to 4 { @n: for j = 1 to i { comp flops=1 } } }"
  in
  Alcotest.(check (float 0.)) "triangular 1+2+3+4" 10. (enr_of r "n")

let test_interp_step () =
  let r =
    run "program t\ndef main() { @l: for i = 0 to 9 step 3 { comp flops=1 } }"
  in
  Alcotest.(check (float 0.)) "0,3,6,9" 4. (enr_of r "l")

let test_interp_branch_statistics () =
  let r =
    run
      "program t\n\
       def main() { for i = 1 to 2000 { if data d prob 0.25 { comp flops=1 } } }"
  in
  Alcotest.(check (float 0.03)) "observed ~0.25" 0.25
    (Hints.branch_prob r.Interp.hints "d" ~default:0.)

let test_interp_static_branch () =
  let r =
    run ~inputs:[ ("n", Value.I 5) ]
      "program t\n\
       def main() { if (n > 3) { @t: for i = 1 to 2 { comp flops=1 } } else {\n\
       @e: for i = 1 to 2 { comp flops=1 } } }"
  in
  Alcotest.(check (float 0.)) "then taken" 2. (enr_of r "t");
  Alcotest.(check (float 0.)) "else not taken" 0. (enr_of r "e")

let test_interp_while_profiles_trips () =
  let r =
    run
      "program t\n\
       def main() { for i = 1 to 500 { while w prob 0.5 max 100 { comp flops=1 } } }"
  in
  let mean = Hints.loop_trips r.Interp.hints "w" ~default:0. in
  (* E[trips] = 1/(1-0.5) = 2 *)
  Alcotest.(check (float 0.2)) "geometric mean trips" 2. mean

let test_interp_break () =
  let r =
    run
      "program t\n\
       def main() { @l: for i = 1 to 1000000 { break b prob 1.0\ncomp flops=1 } }"
  in
  Alcotest.(check (float 0.)) "break exits first iteration" 1. (enr_of r "l")

let test_interp_continue () =
  let r =
    run
      "program t\n\
       def main() { @l: for i = 1 to 100 { continue c prob 1.0\n\
       @after: for j = 1 to 1 { comp flops=1 } } }"
  in
  Alcotest.(check (float 0.)) "loop runs all iterations" 100. (enr_of r "l");
  Alcotest.(check (float 0.)) "tail never runs" 0. (enr_of r "after")

let test_interp_return () =
  let r =
    run
      "program t\n\
       def f() { return\n@dead: for i = 1 to 5 { comp flops=1 } }\n\
       def main() { call f() }"
  in
  Alcotest.(check (float 0.)) "code after return dead" 0. (enr_of r "dead")

let test_interp_call_args () =
  let r =
    run
      "program t\n\
       def k(m) { @body: for j = 1 to m { comp flops=1 } }\n\
       def main() { call k(3)\ncall k(7) }"
  in
  Alcotest.(check (float 0.)) "3 + 7 iterations" 10. (enr_of r "body")

let test_interp_let_updates () =
  let r =
    run
      "program t\n\
       def main() { let n = 2\nlet n = n * 5\n@l: for i = 1 to n { comp flops=1 } }"
  in
  Alcotest.(check (float 0.)) "n = 10" 10. (enr_of r "l")

let test_interp_deterministic () =
  let src =
    "program t\n\
     def main() { for i = 1 to 100 { if data d prob 0.5 { comp flops=3 } } }"
  in
  let a = run ~seed:11L src and b = run ~seed:11L src in
  Alcotest.(check (float 0.)) "same cycles" a.Interp.total_cycles
    b.Interp.total_cycles

let test_interp_seed_changes_draws () =
  let src =
    "program t\n\
     def main() { for i = 1 to 1001 { if data d prob 0.5 { comp flops=3 } } }"
  in
  let a = run ~seed:1L src and b = run ~seed:2L src in
  Alcotest.(check bool) "different outcomes" true
    (a.Interp.total_cycles <> b.Interp.total_cycles)

(* --- interpreter: cost model ----------------------------------------------- *)

let test_interp_flops_cost () =
  let r1 = run "program t\ndef main() { for i = 1 to 1000 { comp flops=1 } }" in
  let r8 = run "program t\ndef main() { for i = 1 to 1000 { comp flops=8 } }" in
  Alcotest.(check bool) "more flops, more cycles" true
    (r8.Interp.total_cycles > r1.Interp.total_cycles)

let test_interp_division_expensive () =
  let plain =
    run "program t\ndef main() { for i = 1 to 1000 { comp flops=4 } }"
  in
  let divs =
    run "program t\ndef main() { for i = 1 to 1000 { comp flops=4, divs=4 } }"
  in
  Alcotest.(check bool) "divisions much slower (BG/Q)" true
    (divs.Interp.total_cycles > plain.Interp.total_cycles *. 5.)

let test_interp_vectorization_speedup () =
  let scalar =
    run "program t\ndef main() { for i = 1 to 1000 { comp flops=64 } }"
  in
  let vector =
    run "program t\ndef main() { for i = 1 to 1000 { comp flops=64, vec=4 } }"
  in
  Alcotest.(check bool) "vec=4 faster" true
    (vector.Interp.total_cycles < scalar.Interp.total_cycles /. 2.)

let test_interp_cache_locality_matters () =
  (* Streaming over a small array (fits L1) vs a large strided walk. *)
  let small =
    run ~inputs:[ ("n", Value.I 100_000 ) ]
      "program t\narray A[512]\n\
       def main() { for i = 1 to n { load A[i % 512] } }"
  in
  let large =
    run ~inputs:[ ("n", Value.I 100_000) ]
      "program t\narray A[8000000]\n\
       def main() { for i = 1 to n { load A[i * 1023 % 8000000] } }"
  in
  Alcotest.(check bool) "locality is cheaper" true
    (small.Interp.total_cycles *. 2. < large.Interp.total_cycles)

let test_interp_counters_l1_misses () =
  let r =
    run ~inputs:[ ("n", Value.I 10_000) ]
      "program t\narray A[10000]\n\
       def main() { @l: for i = 0 to n - 1 { load A[i] } }"
  in
  match block_named r "l" with
  | None -> Alcotest.fail "block missing"
  | Some _ ->
    let entry =
      Counters.entries r.Interp.counters
      |> List.find (fun (e : Counters.entry) -> e.Counters.loads > 0)
    in
    (* Sequential 8B loads: one miss per 64B/128B line. *)
    Alcotest.(check bool) "miss rate ~ 1/8 .. 1/16" true
      (entry.Counters.l1_misses > 10_000 / 20
      && entry.Counters.l1_misses < 10_000 / 4)

let test_interp_machine_changes_time () =
  let src =
    "program t\narray A[100000]\n\
     def main() { for i = 0 to 99999 { load A[i]\ncomp flops=2 } }"
  in
  let a = run ~machine:Machines.bgq src in
  let b = run ~machine:Machines.xeon src in
  Alcotest.(check bool) "different machines differ" true
    (Float.abs (a.Interp.total_time -. b.Interp.total_time) > 1e-9)

let test_interp_total_equals_block_sum () =
  let r =
    run
      "program t\n\
       def main() { for i = 1 to 100 { comp flops=5 }\ncomp flops=100 }"
  in
  let sum =
    List.fold_left
      (fun acc (b : Core.Analysis.Blockstat.t) ->
        acc +. b.Core.Analysis.Blockstat.time)
      0. r.Interp.blocks
  in
  Alcotest.(check (float 1e-12)) "exclusive sums to total" r.Interp.total_time
    sum

let suite =
  [
    ( "sim.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "uniform mean" `Quick test_rng_uniform_mean;
        Alcotest.test_case "bernoulli" `Quick test_rng_bernoulli;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
      ] );
    ( "sim.cache",
      [
        Alcotest.test_case "cold miss then hit" `Quick
          test_cache_cold_miss_then_hit;
        Alcotest.test_case "line granularity" `Quick
          test_cache_line_granularity;
        Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
        Alcotest.test_case "resident working set" `Quick
          test_cache_working_set;
        Alcotest.test_case "reset" `Quick test_cache_reset;
        Alcotest.test_case "invalid geometry" `Quick
          test_cache_invalid_geometry;
      ] );
    ( "sim.interp.semantics",
      [
        Alcotest.test_case "loop count" `Quick test_interp_loop_count;
        Alcotest.test_case "nested triangular" `Quick test_interp_nested_counts;
        Alcotest.test_case "loop step" `Quick test_interp_step;
        Alcotest.test_case "branch statistics" `Quick
          test_interp_branch_statistics;
        Alcotest.test_case "static branch" `Quick test_interp_static_branch;
        Alcotest.test_case "while trip profile" `Quick
          test_interp_while_profiles_trips;
        Alcotest.test_case "break" `Quick test_interp_break;
        Alcotest.test_case "continue" `Quick test_interp_continue;
        Alcotest.test_case "return" `Quick test_interp_return;
        Alcotest.test_case "call arguments" `Quick test_interp_call_args;
        Alcotest.test_case "let rebinding" `Quick test_interp_let_updates;
        Alcotest.test_case "deterministic" `Quick test_interp_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick
          test_interp_seed_changes_draws;
      ] );
    ( "sim.interp.cost",
      [
        Alcotest.test_case "flops cost" `Quick test_interp_flops_cost;
        Alcotest.test_case "division latency" `Quick
          test_interp_division_expensive;
        Alcotest.test_case "vectorization" `Quick
          test_interp_vectorization_speedup;
        Alcotest.test_case "cache locality" `Quick
          test_interp_cache_locality_matters;
        Alcotest.test_case "L1 miss counters" `Quick
          test_interp_counters_l1_misses;
        Alcotest.test_case "machine dependence" `Quick
          test_interp_machine_changes_time;
        Alcotest.test_case "block times sum to total" `Quick
          test_interp_total_equals_block_sum;
      ] );
  ]
