test/test_bet.ml: Alcotest Ast Block_id Bst Build Context Core Eval Float Hints List Node Parser String Value Work
