test/test_sim.ml: Alcotest Cache Core Counters Float Hints Interp List Machine Machines Parser Rng String Value
