test/test_frontend.ml: Abstract Alcotest Ast C_ast C_lexer C_parser Core List Parser Pretty String Validate
