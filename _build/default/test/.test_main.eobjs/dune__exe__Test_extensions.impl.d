test/test_extensions.ml: Alcotest Analysis Core Fmt Hw List Multinode Option Pipeline Sim Skeleton Workloads
