test/test_report.ml: Alcotest Chart Core Float Fmt Json List Render String Table
