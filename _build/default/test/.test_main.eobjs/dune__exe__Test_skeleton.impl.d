test/test_skeleton.ml: Alcotest Ast Builder Core Fmt Lexer List Loc Parser Pretty Validate
