test/test_analysis.ml: Alcotest Block_id Blockstat Build Core Float Hotpath Hotspot Invocations Libmix List Machines Parser Perf Quality String Value Work
