test/test_workloads.ml: Alcotest Ast Core Fmt List Loc Parser Pretty Registry String Validate
