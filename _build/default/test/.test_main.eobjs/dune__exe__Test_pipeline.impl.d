test/test_pipeline.ml: Alcotest Analysis Bet Core Fmt Hw List Pipeline Sim Skeleton Workloads
