test/test_hw.ml: Alcotest Core Float Fmt Libmix Machine Machines Roofline String Work
