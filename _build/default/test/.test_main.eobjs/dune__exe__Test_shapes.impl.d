test/test_shapes.ml: Alcotest Analysis Bet Core Float Fmt Hashtbl Hw List Pipeline Skeleton String Workloads
