test/test_more.ml: Alcotest Blockstat Build Core Float Fmt Hints Libmix List Machine Machines Microbench Node Parser Perf String Value Work
