test/test_props.ml: Array Ast Block_id Blockstat Build Builder Context Core Eval Float Fmt Hashtbl Hotspot List Node Option Parser Pretty QCheck QCheck_alcotest Quality Validate Value Work
