(* Unit tests for performance projection, hot-spot selection, quality
   metric and hot-path extraction. *)

open Core.Skeleton
open Core.Bet
open Core.Analysis
open Core.Hw

let parse src = Parser.parse ~file:"t.skope" src

let build ?inputs src =
  Build.build ~lib_work:(Libmix.work_fn Libmix.default) ?inputs (parse src)

let mkstat ?(size = 10) name time =
  Blockstat.make
    ~block:(Block_id.Fn name)
    ~name ~time ~static_size:size ()

(* --- Perf ------------------------------------------------------------- *)

let test_perf_totals () =
  let b =
    build "program t\ndef main() { for i = 1 to 100 { comp flops=10 } }"
  in
  let proj = Perf.project Machines.bgq b in
  Alcotest.(check bool) "positive total" true (proj.Perf.total_time > 0.);
  Alcotest.(check (float 1e-12)) "total = sum of blocks"
    proj.Perf.total_time
    (Blockstat.total_time proj.Perf.blocks)

let test_perf_loop_scaling () =
  (* 10x the iterations => 10x the projected time (analysis is linear
     in ENR, not re-simulated). *)
  let time n =
    let b =
      build
        ~inputs:[ ("n", Value.I n) ]
        "program t\ndef main() { for i = 1 to n { comp flops=10 } }"
    in
    (Perf.project Machines.bgq b).Perf.total_time
  in
  Alcotest.(check (float 1e-9))
    "linear in trips"
    (10. *. time 1000)
    (time 10000)

let test_perf_exclusive_attribution () =
  let b =
    build
      "program t\n\
       def main() { for i = 1 to 10 { comp flops=5\n\
       for j = 1 to 10 { comp flops=7 } } }"
  in
  let proj = Perf.project Machines.bgq b in
  let outer, inner =
    match
      List.sort
        (fun (a : Blockstat.t) b -> compare a.block b.block)
        (List.filter
           (fun (b : Blockstat.t) ->
             match b.Blockstat.block with
             | Block_id.Loop _ -> true
             | _ -> false)
           proj.Perf.blocks)
    with
    | [ a; b ] -> (a, b)
    | _ -> Alcotest.fail "expected two loops"
  in
  Alcotest.(check (float 1e-9)) "outer flops exclusive" 50.
    outer.Blockstat.work.Work.flops;
  Alcotest.(check (float 1e-9)) "inner flops" 700.
    inner.Blockstat.work.Work.flops

let test_perf_ranked () =
  let b =
    build
      "program t\n\
       def main() { for i = 1 to 10 { comp flops=1 }\n\
       for i = 1 to 1000 { comp flops=1 } }"
  in
  let proj = Perf.project Machines.bgq b in
  match proj.Perf.blocks with
  | first :: second :: _ ->
    Alcotest.(check bool) "descending" true
      (first.Blockstat.time >= second.Blockstat.time)
  | _ -> Alcotest.fail "blocks"

(* --- Hotspot ----------------------------------------------------------- *)

let test_hotspot_selects_top () =
  let blocks =
    [ mkstat "a" 10.; mkstat "b" 5.; mkstat "c" 1.; mkstat "d" 0.1 ]
  in
  let sel = Hotspot.select ~total_instructions:1000 blocks in
  match sel.Hotspot.spots with
  | s1 :: _ ->
    Alcotest.(check string) "top block first" "a" s1.Hotspot.stat.Blockstat.name
  | [] -> Alcotest.fail "no spots selected"

let test_hotspot_leanness_binds () =
  (* Budget of 10% of 100 instructions = 10; each block is 10, so at
     most one is selected even though coverage is unmet. *)
  let blocks = [ mkstat "a" 10.; mkstat "b" 9.; mkstat "c" 8. ] in
  let sel = Hotspot.select ~total_instructions:100 blocks in
  Alcotest.(check int) "one spot fits" 1 (List.length sel.Hotspot.spots);
  Alcotest.(check bool) "leanness respected" true
    (sel.Hotspot.leanness <= 0.1 +. 1e-9)

let test_hotspot_skips_oversized () =
  (* A huge block that would blow the budget is skipped in favour of
     smaller later blocks. *)
  let blocks =
    [ mkstat ~size:500 "huge" 10.; mkstat ~size:5 "small" 8.;
      mkstat ~size:5 "tiny" 6. ]
  in
  let sel = Hotspot.select ~total_instructions:1000 blocks in
  let names =
    List.map (fun s -> s.Hotspot.stat.Blockstat.name) sel.Hotspot.spots
  in
  Alcotest.(check (list string)) "greedy skips" [ "small"; "tiny" ] names

let test_hotspot_coverage_target_stops () =
  let blocks =
    [ mkstat ~size:1 "a" 95.; mkstat ~size:1 "b" 4.; mkstat ~size:1 "c" 1. ]
  in
  let sel = Hotspot.select ~total_instructions:1000 blocks in
  Alcotest.(check int) "stops at 95% >= 90%" 1 (List.length sel.Hotspot.spots)

let test_hotspot_custom_criteria () =
  let blocks = [ mkstat ~size:1 "a" 50.; mkstat ~size:1 "b" 50. ] in
  let sel =
    Hotspot.select
      ~criteria:{ Hotspot.time_coverage = 1.0; code_leanness = 1.0 }
      ~total_instructions:10 blocks
  in
  Alcotest.(check int) "both selected" 2 (List.length sel.Hotspot.spots);
  Alcotest.(check (float 1e-9)) "full coverage" 1.0 sel.Hotspot.coverage

let test_hotspot_cumulative_coverage () =
  let blocks = [ mkstat ~size:1 "a" 60.; mkstat ~size:1 "b" 40. ] in
  let sel =
    Hotspot.select
      ~criteria:{ Hotspot.time_coverage = 1.0; code_leanness = 1.0 }
      ~total_instructions:100 blocks
  in
  let cums = List.map (fun s -> s.Hotspot.cum_coverage) sel.Hotspot.spots in
  Alcotest.(check (list (float 1e-9))) "cumulative" [ 0.6; 1.0 ] cums

let test_hotspot_coverage_curve () =
  let blocks = [ mkstat "a" 50.; mkstat "b" 30.; mkstat "c" 20. ] in
  let curve = Hotspot.coverage_curve ~k:3 blocks in
  Alcotest.(check (list (float 1e-9))) "curve" [ 0.5; 0.8; 1.0 ] curve

let test_hotspot_empty () =
  let sel = Hotspot.select ~total_instructions:100 [] in
  Alcotest.(check int) "no spots" 0 (List.length sel.Hotspot.spots);
  Alcotest.(check (float 0.)) "no coverage" 0. sel.Hotspot.coverage

(* --- Quality ------------------------------------------------------------ *)

let measured = [ mkstat "a" 50.; mkstat "b" 30.; mkstat "c" 15.; mkstat "d" 5. ]

let test_quality_perfect () =
  Alcotest.(check (float 1e-9)) "self quality" 1.
    (Quality.quality ~measured ~candidate:measured ~k:3)

let test_quality_reordered_top_k_equal () =
  (* Same top-2 set in different order: quality over k=2 is still 1. *)
  let candidate = [ mkstat "b" 99.; mkstat "a" 98.; mkstat "c" 1. ] in
  Alcotest.(check (float 1e-9)) "set equality" 1.
    (Quality.quality ~measured ~candidate ~k:2)

let test_quality_miss_costs () =
  (* The candidate's #1 is the measured #4: captured 5+50 vs best 50+30. *)
  let candidate = [ mkstat "d" 99.; mkstat "a" 98. ] in
  Alcotest.(check (float 1e-9)) "partial" (55. /. 80.)
    (Quality.quality ~measured ~candidate ~k:2)

let test_quality_unknown_block_zero () =
  let candidate = [ mkstat "zz" 100. ] in
  Alcotest.(check (float 1e-9)) "unknown captures nothing" 0.
    (Quality.quality ~measured ~candidate ~k:1)

let test_quality_curve_monotone_domain () =
  let candidate = [ mkstat "b" 9.; mkstat "a" 8.; mkstat "d" 7.; mkstat "c" 6. ] in
  let curve = Quality.curve ~measured ~candidate ~k:4 in
  Alcotest.(check int) "length" 4 (List.length curve);
  List.iter
    (fun q -> Alcotest.(check bool) "in [0,1]" true (q >= 0. && q <= 1. +. 1e-9))
    curve;
  Alcotest.(check (float 1e-9)) "full k is 1" 1. (List.nth curve 3)

let test_overlap () =
  let a = [ mkstat "a" 9.; mkstat "b" 8.; mkstat "c" 7. ] in
  let b = [ mkstat "c" 9.; mkstat "d" 8.; mkstat "a" 7. ] in
  Alcotest.(check int) "2 of 3 shared" 2 (Quality.overlap ~a ~b ~k:3)

let test_rank_agreement () =
  let a = [ mkstat "a" 9.; mkstat "b" 8.; mkstat "c" 7. ] in
  Alcotest.(check (float 1e-9)) "identical" 1.
    (Quality.rank_agreement ~a ~b:a ~k:3);
  let rev = [ mkstat "c" 9.; mkstat "b" 8.; mkstat "a" 7. ] in
  Alcotest.(check (float 1e-9)) "reversed" 0.
    (Quality.rank_agreement ~a ~b:rev ~k:3)

(* --- Hotpath ------------------------------------------------------------- *)

let hotpath_fixture () =
  let b =
    build
      "program t\n\
       def kernel() { @hot: for j = 1 to 100 { comp flops=50 } }\n\
       def main() { for i = 1 to 10 { call kernel()\ncomp flops=1 } }"
  in
  let proj = Perf.project Machines.bgq b in
  (b, proj)

let test_hotpath_reaches_hot_spot () =
  let b, proj = hotpath_fixture () in
  let hot_block =
    (List.hd proj.Perf.blocks).Blockstat.block
  in
  match
    Hotpath.extract
      ~selection:(Block_id.Set.singleton hot_block)
      ~node_time:proj.Perf.node_time ~node_enr:proj.Perf.node_enr
      b.Build.root
  with
  | None -> Alcotest.fail "no hot path"
  | Some path ->
    Alcotest.(check int) "one hot invocation" 1 (Hotpath.hot_invocations path);
    (* Path: main -> loop -> kernel -> hot loop. *)
    Alcotest.(check int) "path length" 4 (Hotpath.size path);
    let chains = Hotpath.paths path in
    Alcotest.(check int) "one chain" 1 (List.length chains);
    Alcotest.(check int) "chain depth" 4 (List.length (List.hd chains))

let test_hotpath_merges_shared_prefix () =
  let b =
    build
      "program t\n\
       def main() { for i = 1 to 10 { @h1: for a = 1 to 50 { comp flops=9 }\n\
       @h2: for z = 1 to 50 { comp flops=9 } } }"
  in
  let proj = Perf.project Machines.bgq b in
  let sel =
    proj.Perf.blocks
    |> List.filter (fun (s : Blockstat.t) ->
           s.Blockstat.name = "h1" || s.Blockstat.name = "h2")
    |> List.map (fun (s : Blockstat.t) -> s.Blockstat.block)
    |> Block_id.Set.of_list
  in
  match
    Hotpath.extract ~selection:sel ~node_time:proj.Perf.node_time
      ~node_enr:proj.Perf.node_enr b.Build.root
  with
  | None -> Alcotest.fail "no hot path"
  | Some path ->
    (* main, outer loop shared; two hot leaves. *)
    Alcotest.(check int) "merged size" 4 (Hotpath.size path);
    Alcotest.(check int) "two hot spots" 2 (Hotpath.hot_invocations path)

let test_hotpath_empty_selection () =
  let b, proj = hotpath_fixture () in
  Alcotest.(check bool) "none" true
    (Hotpath.extract ~selection:Block_id.Set.empty
       ~node_time:proj.Perf.node_time ~node_enr:proj.Perf.node_enr
       b.Build.root
    = None)

(* --- Invocations --------------------------------------------------------- *)

let test_invocations_two_sites () =
  (* A kernel called from two places: the hot block must report two
     invocation contexts with different repetition counts. *)
  let b =
    build
      "program t\n\
       def k(m) { @hot: for j = 1 to m { comp flops=5 } }\n\
       def main() { call k(100)\nfor i = 1 to 10 { call k(20) } }"
  in
  let proj = Perf.project Machines.bgq b in
  let hot =
    List.find
      (fun (s : Blockstat.t) -> String.equal s.Blockstat.name "hot")
      proj.Perf.blocks
  in
  let invs = Invocations.of_block b proj hot.Blockstat.block in
  Alcotest.(check int) "two invocation sites" 2 (List.length invs);
  let enrs =
    List.sort compare (List.map (fun i -> i.Invocations.enr) invs)
  in
  Alcotest.(check (list (float 1e-6))) "ENRs 100 and 200" [ 100.; 200. ] enrs;
  List.iter
    (fun (i : Invocations.invocation) ->
      Alcotest.(check bool) "path starts at main" true
        (match i.Invocations.call_path with
        | "main" :: _ -> true
        | _ -> false))
    invs

let test_invocations_times_sum () =
  let b =
    build
      "program t\n\
       def k() { @hot: for j = 1 to 50 { comp flops=5 } }\n\
       def main() { call k()\ncall k() }"
  in
  let proj = Perf.project Machines.bgq b in
  let hot =
    List.find
      (fun (s : Blockstat.t) -> String.equal s.Blockstat.name "hot")
      proj.Perf.blocks
  in
  let invs = Invocations.of_block b proj hot.Blockstat.block in
  let total = List.fold_left (fun a i -> a +. i.Invocations.time) 0. invs in
  Alcotest.(check bool) "invocation times sum to the block's time" true
    (Float.abs (total -. hot.Blockstat.time) < 1e-12)

(* --- DOT export ----------------------------------------------------------- *)

let test_dot_export () =
  let b, proj = hotpath_fixture () in
  let hot_block = (List.hd proj.Perf.blocks).Blockstat.block in
  match
    Hotpath.extract
      ~selection:(Block_id.Set.singleton hot_block)
      ~node_time:proj.Perf.node_time ~node_enr:proj.Perf.node_enr b.Build.root
  with
  | None -> Alcotest.fail "no hot path"
  | Some path ->
    let dot = Core.Report.Render.dot_of_hotpath ~graph_name:"t" path in
    let contains needle =
      let nh = String.length dot and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub dot i nn = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "digraph header" true (contains "digraph t {");
    Alcotest.(check bool) "hot node filled" true (contains "fillcolor");
    Alcotest.(check bool) "edges labeled with p" true (contains "p=");
    Alcotest.(check bool) "closed" true (contains "}")

let suite =
  [
    ( "analysis.invocations",
      [
        Alcotest.test_case "two call sites" `Quick test_invocations_two_sites;
        Alcotest.test_case "times sum to block" `Quick
          test_invocations_times_sum;
        Alcotest.test_case "DOT export" `Quick test_dot_export;
      ] );
    ( "analysis.perf",
      [
        Alcotest.test_case "totals consistent" `Quick test_perf_totals;
        Alcotest.test_case "linear in iterations" `Quick test_perf_loop_scaling;
        Alcotest.test_case "exclusive attribution" `Quick
          test_perf_exclusive_attribution;
        Alcotest.test_case "ranked output" `Quick test_perf_ranked;
      ] );
    ( "analysis.hotspot",
      [
        Alcotest.test_case "selects top blocks" `Quick test_hotspot_selects_top;
        Alcotest.test_case "leanness binds" `Quick test_hotspot_leanness_binds;
        Alcotest.test_case "greedy skips oversized" `Quick
          test_hotspot_skips_oversized;
        Alcotest.test_case "stops at coverage target" `Quick
          test_hotspot_coverage_target_stops;
        Alcotest.test_case "custom criteria" `Quick test_hotspot_custom_criteria;
        Alcotest.test_case "cumulative coverage" `Quick
          test_hotspot_cumulative_coverage;
        Alcotest.test_case "coverage curve" `Quick test_hotspot_coverage_curve;
        Alcotest.test_case "empty input" `Quick test_hotspot_empty;
      ] );
    ( "analysis.quality",
      [
        Alcotest.test_case "perfect selection" `Quick test_quality_perfect;
        Alcotest.test_case "set equality beats order" `Quick
          test_quality_reordered_top_k_equal;
        Alcotest.test_case "misses cost" `Quick test_quality_miss_costs;
        Alcotest.test_case "unknown block" `Quick test_quality_unknown_block_zero;
        Alcotest.test_case "quality curve" `Quick
          test_quality_curve_monotone_domain;
        Alcotest.test_case "top-k overlap" `Quick test_overlap;
        Alcotest.test_case "rank agreement" `Quick test_rank_agreement;
      ] );
    ( "analysis.hotpath",
      [
        Alcotest.test_case "back-trace to root" `Quick
          test_hotpath_reaches_hot_spot;
        Alcotest.test_case "merge shared prefix" `Quick
          test_hotpath_merges_shared_prefix;
        Alcotest.test_case "empty selection" `Quick test_hotpath_empty_selection;
      ] );
  ]
