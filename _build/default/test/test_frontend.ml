(* Tests for the mini-C frontend: lexer, parser, and the abstraction
   pass (the paper's source-to-source application analysis engine). *)

open Core.Frontend
open Core.Skeleton

let parse_c src = C_parser.parse src
let lower src = Abstract.lower (parse_c src)

(* Find the first skeleton statement satisfying [pred]. *)
let find_stmt (p : Ast.program) pred =
  Ast.fold_program
    (fun acc s -> match acc with Some _ -> acc | None -> if pred s then Some s else None)
    None p

let comp_counts (p : Ast.program) =
  Ast.fold_program
    (fun (f, i, d) s ->
      match s.Ast.kind with
      | Ast.Comp { flops = Ast.Int fl; iops = Ast.Int io; divs = Ast.Int dv; _ }
        ->
        (f + fl, i + io, d + dv)
      | _ -> (f, i, d))
    (0, 0, 0) p

(* --- lexer -------------------------------------------------------------- *)

let test_clex_comments () =
  let toks = C_lexer.tokenize "a /* multi\nline */ b // trailing\nc" in
  Alcotest.(check int) "3 idents + eof" 4 (List.length toks)

let test_clex_compound_ops () =
  let kinds = List.map (fun t -> t.C_lexer.tok) (C_lexer.tokenize "++ += <= == && !=") in
  Alcotest.(check bool) "ops" true
    (kinds
    = C_lexer.[ PLUSPLUS; PLUSEQ; LE; EQ; ANDAND; NE; EOF ])

let test_clex_float_suffix () =
  match C_lexer.tokenize "1.5f 2e3 7" |> List.map (fun t -> t.C_lexer.tok) with
  | [ C_lexer.FLOAT_LIT a; C_lexer.FLOAT_LIT b; C_lexer.INT_LIT 7; C_lexer.EOF ]
    ->
    Alcotest.(check (float 1e-9)) "1.5f" 1.5 a;
    Alcotest.(check (float 1e-9)) "2e3" 2000. b
  | _ -> Alcotest.fail "literals"

let test_clex_rejects_bitand () =
  match C_lexer.tokenize "a & b" with
  | exception C_lexer.Error (_, _) -> ()
  | _ -> Alcotest.fail "expected error"

(* --- parser ------------------------------------------------------------- *)

let test_cparse_shapes () =
  let p =
    parse_c
      "param int n;\n\
       double a[n];\n\
       void main() { for (int i = 0; i < n; i++) { a[i] = 1.0; } }"
  in
  Alcotest.(check int) "three declarations" 3 (List.length p)

let test_cparse_for_canonical_only () =
  match parse_c "void main() { for (int i = 0; i > 10; i++) { } }" with
  | exception C_parser.Error (_, _) -> ()
  | _ -> Alcotest.fail "descending loops must be rejected"

let test_cparse_compound_assign () =
  let p = parse_c "param int n;\ndouble a[n];\nvoid main() { a[0] += 2.0; }" in
  match C_ast.find_func p "main" with
  | Some (_, [ { C_ast.skind = C_ast.Assign (_, C_ast.Bin (C_ast.Add, _, _)); _ } ])
    ->
    ()
  | _ -> Alcotest.fail "+= desugars to assignment"

let test_cparse_error_line () =
  match parse_c "void main() {\n  int x = ;\n}" with
  | exception C_parser.Error (line, _) -> Alcotest.(check int) "line" 2 line
  | _ -> Alcotest.fail "expected parse error"

(* --- abstraction: counting ---------------------------------------------- *)

let test_abs_flop_counting () =
  (* 0.25 * (a+b+c+d): 3 float adds + 1 mul = 4 flops. *)
  let r =
    lower
      "param int n;\n\
       double a[n];\n\
       void main() { for (int i = 1; i < n - 1; i++) {\n\
       a[i] = 0.25 * (a[i+1] + a[i-1] + a[i] + a[i]); } }"
  in
  let f, _, d = comp_counts r.Abstract.program in
  Alcotest.(check int) "4 flops" 4 f;
  Alcotest.(check int) "0 divs" 0 d

let test_abs_div_counting () =
  let r =
    lower
      "param int n;\ndouble a[n];\n\
       void main() { for (int i = 0; i < n; i++) { a[i] = a[i] / 3.0; } }"
  in
  let f, _, d = comp_counts r.Abstract.program in
  Alcotest.(check int) "1 flop" 1 f;
  Alcotest.(check int) "1 div" 1 d

let test_abs_int_ops_not_flops () =
  let r =
    lower "param int n;\nvoid main() { int x;\nx = (n + 3) * 2 % 5; }"
  in
  let f, _, _ = comp_counts r.Abstract.program in
  Alcotest.(check int) "no flops in integer code" 0 f

let test_abs_load_dedupe () =
  (* (a[i]-b[i])*(a[i]-b[i]) reads each element once after CSE. *)
  let r =
    lower
      "param int n;\ndouble a[n];\ndouble b[n];\ndouble c[n];\n\
       void main() { for (int i = 0; i < n; i++) {\n\
       c[i] = (a[i] - b[i]) * (a[i] - b[i]); } }"
  in
  let loads =
    Ast.fold_program
      (fun acc s ->
        match s.Ast.kind with
        | Ast.Mem { loads; _ } -> acc + List.length loads
        | _ -> acc)
      0 r.Abstract.program
  in
  Alcotest.(check int) "two distinct loads" 2 loads

let test_abs_libm_lowering () =
  let r =
    lower
      "param int n;\ndouble a[n];\n\
       void main() { for (int i = 0; i < n; i++) { a[i] = exp(a[i]); } }"
  in
  let libs =
    Ast.fold_program
      (fun acc s ->
        match s.Ast.kind with Ast.Lib { name; _ } -> name :: acc | _ -> acc)
      [] r.Abstract.program
  in
  Alcotest.(check (list string)) "exp lowered to lib" [ "exp" ] libs

(* --- abstraction: control flow ------------------------------------------ *)

let test_abs_analyzable_branch_stays_static () =
  let r =
    lower
      "param int n;\nvoid main() { int x;\nx = 3;\n\
       if (x < n) { x = 4; } }"
  in
  match
    find_stmt r.Abstract.program (fun s ->
        match s.Ast.kind with Ast.If _ -> true | _ -> false)
  with
  | Some { Ast.kind = Ast.If { cond = Ast.Cexpr _; _ }; _ } -> ()
  | _ -> Alcotest.fail "tracked condition must remain analyzable"

let test_abs_data_branch_detected () =
  let r =
    lower
      "param int n;\ndouble a[n];\n\
       void main() { for (int i = 0; i < n; i++) {\n\
       if (a[i] > 0.5) { a[i] = 0.0; } } }"
  in
  match
    find_stmt r.Abstract.program (fun s ->
        match s.Ast.kind with Ast.If _ -> true | _ -> false)
  with
  | Some { Ast.kind = Ast.If { cond = Ast.Cdata _; _ }; _ } -> ()
  | _ -> Alcotest.fail "memory-dependent condition must become a data branch"

let test_abs_prob_annotation () =
  let r =
    lower
      "param int n;\ndouble a[n];\n\
       void main() { for (int i = 0; i < n; i++) {\n\
       if (__prob(a[i] > 0.5, 0.07)) { a[i] = 0.0; } } }"
  in
  match
    find_stmt r.Abstract.program (fun s ->
        match s.Ast.kind with Ast.If _ -> true | _ -> false)
  with
  | Some { Ast.kind = Ast.If { cond = Ast.Cdata { p = Ast.Float p; _ }; _ }; _ }
    ->
    Alcotest.(check (float 1e-9)) "declared probability" 0.07 p
  | _ -> Alcotest.fail "__prob must produce a data branch with declared p"

let test_abs_while_profiled () =
  let r =
    lower
      "void main() { double e;\ne = 1.0;\nwhile (e > 0.1) { e = e * 0.5; } }"
  in
  match
    find_stmt r.Abstract.program (fun s ->
        match s.Ast.kind with Ast.While _ -> true | _ -> false)
  with
  | Some _ -> ()
  | None -> Alcotest.fail "while must lower to a profiled loop"

let test_abs_indirection_surrogate () =
  let r =
    lower
      "param int n;\ndouble x[n];\nint idx[n];\ndouble y[n];\n\
       void main() { for (int i = 0; i < n; i++) { int c;\n\
       c = idx[i];\ny[i] = x[c]; } }"
  in
  Alcotest.(check bool) "warned about surrogate" true
    (List.exists
       (fun w ->
         let has =
           let n = String.length w in
           n >= 13 &&
           let rec go i = i + 13 <= n && (String.sub w i 13 = "pseudo-random" || go (i+1)) in
           go 0
         in
         has)
       r.Abstract.warnings);
  (* The generated program must still validate with only the params
     bound. *)
  Alcotest.(check int) "validates" 0
    (List.length
       (Validate.check ~inputs:(List.map fst r.Abstract.params)
          r.Abstract.program))

let test_abs_vectorization_heuristic () =
  let vec_of src =
    let r = lower src in
    Ast.fold_program
      (fun acc s ->
        match s.Ast.kind with
        | Ast.Comp { vec; _ } -> max acc vec
        | _ -> acc)
      1 r.Abstract.program
  in
  Alcotest.(check int) "unit stride vectorizes" 4
    (vec_of
       "param int n;\ndouble a[n];\ndouble b[n];\n\
        void main() { for (int i = 0; i < n; i++) { a[i] = b[i] + 1.0; } }");
  Alcotest.(check int) "branchy body stays scalar" 1
    (vec_of
       "param int n;\ndouble a[n];\n\
        void main() { for (int i = 0; i < n; i++) {\n\
        if (a[i] > 0.0) { a[i] = 0.0; } } }");
  Alcotest.(check int) "strided access stays scalar" 1
    (vec_of
       "param int n;\ndouble a[n];\n\
        void main() { for (int i = 0; i < n; i++) { a[i * 8 % n] = 1.0; } }")

(* --- end to end ---------------------------------------------------------- *)

let heat2d_src =
  "param int n;\nparam int maxiter;\n\
   double t_old[n][n];\ndouble t_new[n][n];\n\
   void sweep() {\n\
   for (int i = 1; i < n - 1; i++) {\n\
   for (int j = 1; j < n - 1; j++) {\n\
   t_new[i][j] = 0.25 * (t_old[i+1][j] + t_old[i-1][j] + t_old[i][j+1] + t_old[i][j-1]);\n\
   } } }\n\
   void main() { int it;\nit = 0;\n\
   while (it < maxiter) { sweep();\nit = it + 1; } }"

let test_abs_end_to_end_pipeline () =
  let r = lower heat2d_src in
  let inputs =
    [ ("n", Core.Bet.Value.int 64); ("maxiter", Core.Bet.Value.int 8) ]
  in
  Validate.check_exn ~inputs:(List.map fst inputs) r.Abstract.program;
  (* Profile, build the BET with the profile, project, and check the
     hot spot is the stencil loop. *)
  let config = Core.Sim.Interp.default_config ~machine:Core.Hw.Machines.bgq () in
  let sim = Core.Sim.Interp.run ~config ~inputs r.Abstract.program in
  Alcotest.(check bool) "simulates" true (sim.Core.Sim.Interp.total_time > 0.);
  let built =
    Core.Bet.Build.build ~hints:sim.Core.Sim.Interp.hints
      ~lib_work:(Core.Hw.Libmix.work_fn Core.Hw.Libmix.default)
      ~inputs r.Abstract.program
  in
  let proj = Core.Analysis.Perf.project Core.Hw.Machines.bgq built in
  match proj.Core.Analysis.Perf.blocks with
  | top :: _ ->
    Alcotest.(check bool) "stencil loop is the hot spot" true
      (String.length top.Core.Analysis.Blockstat.name >= 3
      && String.sub top.Core.Analysis.Blockstat.name 0 3 = "for")
  | [] -> Alcotest.fail "no blocks"

let test_abs_skeleton_roundtrips () =
  let r = lower heat2d_src in
  let text = Pretty.to_string r.Abstract.program in
  let p2 = Parser.parse ~file:"gen.skope" text in
  Alcotest.(check int) "pretty/parse round trip"
    (Ast.program_size r.Abstract.program)
    (Ast.program_size p2)

let test_abs_requires_main () =
  match lower "param int n;\nvoid helper() { return; }" with
  | exception Abstract.Error (_, _) -> ()
  | _ -> Alcotest.fail "missing main must be an error"

let suite =
  [
    ( "frontend.lexer",
      [
        Alcotest.test_case "comments" `Quick test_clex_comments;
        Alcotest.test_case "compound operators" `Quick test_clex_compound_ops;
        Alcotest.test_case "float literals" `Quick test_clex_float_suffix;
        Alcotest.test_case "rejects bitwise and" `Quick test_clex_rejects_bitand;
      ] );
    ( "frontend.parser",
      [
        Alcotest.test_case "declaration shapes" `Quick test_cparse_shapes;
        Alcotest.test_case "canonical for only" `Quick
          test_cparse_for_canonical_only;
        Alcotest.test_case "compound assignment" `Quick
          test_cparse_compound_assign;
        Alcotest.test_case "error line numbers" `Quick test_cparse_error_line;
      ] );
    ( "frontend.abstract",
      [
        Alcotest.test_case "flop counting" `Quick test_abs_flop_counting;
        Alcotest.test_case "division counting" `Quick test_abs_div_counting;
        Alcotest.test_case "integer ops" `Quick test_abs_int_ops_not_flops;
        Alcotest.test_case "load dedupe (CSE)" `Quick test_abs_load_dedupe;
        Alcotest.test_case "libm lowering" `Quick test_abs_libm_lowering;
        Alcotest.test_case "analyzable branch" `Quick
          test_abs_analyzable_branch_stays_static;
        Alcotest.test_case "data branch detection" `Quick
          test_abs_data_branch_detected;
        Alcotest.test_case "__prob annotation" `Quick test_abs_prob_annotation;
        Alcotest.test_case "while profiled" `Quick test_abs_while_profiled;
        Alcotest.test_case "indirection surrogate" `Quick
          test_abs_indirection_surrogate;
        Alcotest.test_case "vectorization heuristic" `Quick
          test_abs_vectorization_heuristic;
        Alcotest.test_case "end-to-end pipeline" `Quick
          test_abs_end_to_end_pipeline;
        Alcotest.test_case "generated skeleton round trips" `Quick
          test_abs_skeleton_roundtrips;
        Alcotest.test_case "requires main" `Quick test_abs_requires_main;
      ] );
  ]
