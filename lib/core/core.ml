(** Public façade of the reproduction of "Analytically Modeling
    Application Execution for Software-Hardware Co-Design" (IPDPS
    workshops 2014).

    Sub-libraries, re-exported for convenience:

    - {!Skeleton} — the SKOPE-like workload description language
      (AST, parser, pretty-printer, combinator builder, validator);
    - {!Bet} — contexts, hints, the Block Skeleton Tree and the
      Bayesian Execution Tree;
    - {!Hw} — machine models, the extended roofline, library
      instruction mixes;
    - {!Analysis} — performance projection, hot spots, hot paths,
      selection quality;
    - {!Sim} — the ground-truth cache-aware simulator and profiler;
    - {!Workloads} — the paper's five benchmarks plus the pedagogical
      example;
    - {!Report} — plain-text tables and charts;
    - {!Lint} — interval-domain static analysis with rustc-style
      diagnostics ([L001]..[L010]);
    - {!Telemetry} — phase-level tracing spans, counters and
      Prometheus-style exposition;
    - {!Pipeline} — the end-to-end workflow of the paper's Fig. 1.

    Quickstart:

    {[
      let wl = Core.Workloads.Registry.find_exn "sord" in
      let r = Core.Pipeline.run ~machine:Core.Hw.Machines.bgq wl in
      List.iter
        (fun (s : Core.Analysis.Hotspot.spot) ->
          Fmt.pr "%d. %s (%.1f%%)@." s.rank s.stat.name (100. *. s.coverage))
        r.Core.Pipeline.model_sel.spots
    ]} *)

module Skeleton = Skope_skeleton
module Bet = Skope_bet
module Hw = Skope_hw
module Analysis = Skope_analysis
module Sim = Skope_sim
module Workloads = Skope_workloads
module Report = Skope_report
module Lint = Skope_lint
module Multinode = Skope_multinode
module Frontend = Skope_frontend
module Telemetry = Skope_telemetry
module Version = Version
module Pipeline = Pipeline
