(** End-to-end analysis pipeline (paper Fig. 1): skeleton -> one local
    profiling run -> BET -> roofline projection -> hot regions, plus a
    ground-truth simulation for validation. *)

open Skope_skeleton
open Skope_bet
open Skope_hw
open Skope_analysis
open Skope_sim
open Skope_workloads

(** A full validation run: the analytic projection (Modl) next to the
    simulator ground truth (Prof). *)
type run = {
  workload : Registry.t;
  machine : Machine.t;
  scale : float;
  program : Ast.program;
  inputs : (string * Value.t) list;
  hints : Hints.t;
  built : Build.result;  (** the BET *)
  projection : Perf.projection;  (** Modl: analytic per-block times *)
  measured : Interp.result;  (** Prof: simulator ground truth *)
  model_sel : Hotspot.selection;
  measured_sel : Hotspot.selection;
}

(** Analytic-only result: what a user studying a not-yet-built machine
    has (no ground truth available). *)
type analysis = {
  a_program : Ast.program;
  a_built : Build.result;
  a_projection : Perf.projection;
  a_selection : Hotspot.selection;
}

(** The machine that plays "local host" for profiling runs. *)
val local_machine : Machine.t

(** One local profiling run: branch statistics and while-loop trip
    counts (the gcov step, §III-B); hardware-independent. *)
val profile :
  ?seed:int64 ->
  libmix:Libmix.t ->
  inputs:(string * Value.t) list ->
  Ast.program ->
  Hints.t

(** The machine-independent prefix of the pipeline (workload make,
    validation, lint, optional profiling, BET construction): build it
    once and price it on any number of target machines. *)
type prepared = {
  pre_workload : Registry.t;
  pre_scale : float;
  pre_program : Ast.program;
  pre_inputs : (string * Value.t) list;
  pre_hints : Hints.t;
  pre_built : Build.result;  (** the BET *)
}

(** Build the machine-independent artifact.  [profile_hints] runs one
    local profiling pass and uses its hints (the {!run} path);
    otherwise [hints] (default empty) feeds BET construction directly
    (the {!analyze} path).

    @deprecated New code should use {!Prepared.create}, which also
    fixes the pricing engine; [prepare] remains as a wrapper
    (equivalent to the tree engine) for existing callers. *)
val prepare :
  ?hints:Hints.t ->
  ?profile_hints:bool ->
  ?seed:int64 ->
  workload:Registry.t ->
  scale:float ->
  unit ->
  prepared

(** Price a prepared BET on one target machine.  Read-only on
    [prepared]: concurrent calls from several domains are safe, which
    is what makes grid exploration embarrassingly parallel.

    @deprecated Use {!Prepared.project}: it prices through the engine
    chosen at {!Prepared.create} time and supports batch and delta
    re-pricing.  This wrapper remains for source compatibility and
    always uses the tree engine. *)
val project_onto :
  ?criteria:Hotspot.criteria ->
  ?opts:Roofline.opts ->
  ?cache:Perf.cache_model ->
  prepared ->
  Machine.t ->
  analysis

(** BET pricing engines.  [Tree] is the recursive walk of
    {!Perf.project}; [Arena] flattens the BET once into a post-order
    arena ({!Skope_bet.Arena}) and re-prices it with flat forward
    loops and per-axis incrementality ({!Arena_price}).  Both produce
    bit-for-bit identical blocks and totals. *)
type engine = Tree | Arena

val engine_to_string : engine -> string
val engine_of_string : string -> engine option

(** Wire names, in advertisement order: [["tree"; "arena"]]. *)
val engine_names : string list

(** The projection API: an abstract handle over the
    machine-independent pipeline prefix plus a pricing engine.
    Replaces the exposed {!prepare}/{!project_onto} pair. *)
module Prepared : sig
  type t

  (** Result of pricing one machine point, engine-independent. *)
  type outcome = {
    o_machine : Machine.t;
    o_blocks : Blockstat.t list;  (** ranked by decreasing time *)
    o_total_time : float;
    o_selection : Hotspot.selection;
    o_state : Arena_price.priced option;
        (** arena engine only: pricing state {!project_delta}
            continues from *)
  }

  (** Build the machine-independent artifact once and fix the pricing
      engine (default [Tree]).  For [Arena] the BET is flattened
      eagerly, so the handle is safe to share across domains. *)
  val create :
    ?hints:Hints.t ->
    ?profile_hints:bool ->
    ?seed:int64 ->
    ?engine:engine ->
    workload:Registry.t ->
    scale:float ->
    unit ->
    t

  (** Upgrade an existing {!type-prepared} artifact to a handle. *)
  val of_prepared : ?engine:engine -> prepared -> t

  val prepared : t -> prepared
  val built : t -> Build.result
  val workload : t -> Registry.t
  val scale : t -> float
  val engine : t -> engine

  (** Drop the delta-pricing state (callers retaining many outcomes
      should store them stripped). *)
  val strip_state : outcome -> outcome

  (** Repackage a tree-engine {!type-analysis}. *)
  val of_analysis : analysis -> outcome

  (** Price one machine point. *)
  val project :
    ?criteria:Hotspot.criteria ->
    ?opts:Roofline.opts ->
    ?cache:Perf.cache_model ->
    t ->
    Machine.t ->
    outcome

  (** Price one machine point, re-using [prev] where the machine diff
      permits (arena engine; the tree engine falls back to a full
      {!project}).  Bit-for-bit identical to {!project}. *)
  val project_delta :
    ?criteria:Hotspot.criteria ->
    ?opts:Roofline.opts ->
    ?cache:Perf.cache_model ->
    prev:outcome ->
    t ->
    Machine.t ->
    outcome

  (** Price a machine sweep; the arena engine delta-chains consecutive
      points.  Equivalent to mapping {!project}. *)
  val project_batch :
    ?criteria:Hotspot.criteria ->
    ?opts:Roofline.opts ->
    ?cache:Perf.cache_model ->
    t ->
    Machine.t array ->
    outcome array
end

(** Analytic projection only — nothing executes on [machine].
    Equivalent to {!prepare} followed by {!project_onto}. *)
val analyze :
  ?criteria:Hotspot.criteria ->
  ?opts:Roofline.opts ->
  ?cache:Perf.cache_model ->
  ?hints:Hints.t ->
  machine:Machine.t ->
  workload:Registry.t ->
  scale:float ->
  unit ->
  analysis

(** Static performance audit of a bundled workload: symbolic scaling /
    working-set / communication diagnostics (A001..A008) at [scale].
    The workload's own [make] becomes the audit's scale-sweep hook, so
    growth probes rebind every input consistently. *)
val audit :
  ?config:Skope_lint.Audit.config ->
  workload:Registry.t ->
  scale:float ->
  unit ->
  Skope_lint.Audit.report

(** Full validation run: profile locally, project analytically,
    simulate on the target as ground truth. *)
val run :
  ?criteria:Hotspot.criteria ->
  ?opts:Roofline.opts ->
  ?seed:int64 ->
  ?scale:float ->
  machine:Machine.t ->
  Registry.t ->
  run

(** Selection quality of the projection against the ground truth at
    top-[k] (§VI). *)
val model_quality : run -> k:int -> float

(** Hot path of the model-selected spots through the BET (§V-C). *)
val hot_path : run -> Hotpath.t option

(** Measured coverage captured by the model's top-[k] selection — the
    Modl(m) curve of Figs. 5/10-13. *)
val modl_measured_coverage : run -> k:int -> float

(** Projected coverage of the model's top-[k] selection — Modl(p). *)
val modl_projected_coverage : run -> k:int -> float

(** Measured coverage of the measured top-[k] selection — Prof. *)
val prof_coverage : run -> k:int -> float
