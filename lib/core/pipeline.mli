(** End-to-end analysis pipeline (paper Fig. 1): skeleton -> one local
    profiling run -> BET -> roofline projection -> hot regions, plus a
    ground-truth simulation for validation. *)

open Skope_skeleton
open Skope_bet
open Skope_hw
open Skope_analysis
open Skope_sim
open Skope_workloads

(** A full validation run: the analytic projection (Modl) next to the
    simulator ground truth (Prof). *)
type run = {
  workload : Registry.t;
  machine : Machine.t;
  scale : float;
  program : Ast.program;
  inputs : (string * Value.t) list;
  hints : Hints.t;
  built : Build.result;  (** the BET *)
  projection : Perf.projection;  (** Modl: analytic per-block times *)
  measured : Interp.result;  (** Prof: simulator ground truth *)
  model_sel : Hotspot.selection;
  measured_sel : Hotspot.selection;
}

(** Analytic-only result: what a user studying a not-yet-built machine
    has (no ground truth available). *)
type analysis = {
  a_program : Ast.program;
  a_built : Build.result;
  a_projection : Perf.projection;
  a_selection : Hotspot.selection;
}

(** The machine that plays "local host" for profiling runs. *)
val local_machine : Machine.t

(** One local profiling run: branch statistics and while-loop trip
    counts (the gcov step, §III-B); hardware-independent. *)
val profile :
  ?seed:int64 ->
  libmix:Libmix.t ->
  inputs:(string * Value.t) list ->
  Ast.program ->
  Hints.t

(** The machine-independent prefix of the pipeline (workload make,
    validation, lint, optional profiling, BET construction): build it
    once and price it on any number of target machines. *)
type prepared = {
  pre_workload : Registry.t;
  pre_scale : float;
  pre_program : Ast.program;
  pre_inputs : (string * Value.t) list;
  pre_hints : Hints.t;
  pre_built : Build.result;  (** the BET *)
}

(** Build the machine-independent artifact.  [profile_hints] runs one
    local profiling pass and uses its hints (the {!run} path);
    otherwise [hints] (default empty) feeds BET construction directly
    (the {!analyze} path). *)
val prepare :
  ?hints:Hints.t ->
  ?profile_hints:bool ->
  ?seed:int64 ->
  workload:Registry.t ->
  scale:float ->
  unit ->
  prepared

(** Price a prepared BET on one target machine.  Read-only on
    [prepared]: concurrent calls from several domains are safe, which
    is what makes grid exploration embarrassingly parallel. *)
val project_onto :
  ?criteria:Hotspot.criteria ->
  ?opts:Roofline.opts ->
  ?cache:Perf.cache_model ->
  prepared ->
  Machine.t ->
  analysis

(** Analytic projection only — nothing executes on [machine].
    Equivalent to {!prepare} followed by {!project_onto}. *)
val analyze :
  ?criteria:Hotspot.criteria ->
  ?opts:Roofline.opts ->
  ?cache:Perf.cache_model ->
  ?hints:Hints.t ->
  machine:Machine.t ->
  workload:Registry.t ->
  scale:float ->
  unit ->
  analysis

(** Static performance audit of a bundled workload: symbolic scaling /
    working-set / communication diagnostics (A001..A008) at [scale].
    The workload's own [make] becomes the audit's scale-sweep hook, so
    growth probes rebind every input consistently. *)
val audit :
  ?config:Skope_lint.Audit.config ->
  workload:Registry.t ->
  scale:float ->
  unit ->
  Skope_lint.Audit.report

(** Full validation run: profile locally, project analytically,
    simulate on the target as ground truth. *)
val run :
  ?criteria:Hotspot.criteria ->
  ?opts:Roofline.opts ->
  ?seed:int64 ->
  ?scale:float ->
  machine:Machine.t ->
  Registry.t ->
  run

(** Selection quality of the projection against the ground truth at
    top-[k] (§VI). *)
val model_quality : run -> k:int -> float

(** Hot path of the model-selected spots through the BET (§V-C). *)
val hot_path : run -> Hotpath.t option

(** Measured coverage captured by the model's top-[k] selection — the
    Modl(m) curve of Figs. 5/10-13. *)
val modl_measured_coverage : run -> k:int -> float

(** Projected coverage of the model's top-[k] selection — Modl(p). *)
val modl_projected_coverage : run -> k:int -> float

(** Measured coverage of the measured top-[k] selection — Prof. *)
val prof_coverage : run -> k:int -> float
