(** Build provenance: semantic version plus the git revision the
    binary was built from ([unknown] outside a checkout). *)

let version = "1.1.0"
let git = Version_info.git

let describe =
  if git = "unknown" then version else Printf.sprintf "%s (%s)" version git
