(** End-to-end analysis pipeline (paper Fig. 1).

    For a workload and a target machine the pipeline:

    + builds the skeleton program and its input bindings,
    + profiles it {e once} on a local machine to obtain the
      hardware-independent branch statistics (gcov stand-in, §III-B),
    + constructs the Bayesian Execution Tree (§IV),
    + projects per-block performance on the target with the roofline
      model (§V-A) — no execution on the target is needed,
    + selects hot spots under the coverage/leanness criteria (§V-B),

    and, for validation only, also runs the ground-truth simulator on
    the target to obtain the "measured" profile the paper compares
    against (§VI). *)

open Skope_skeleton
open Skope_bet
open Skope_hw
open Skope_analysis
open Skope_sim
open Skope_workloads

type run = {
  workload : Registry.t;
  machine : Machine.t;
  scale : float;
  program : Ast.program;
  inputs : (string * Value.t) list;
  hints : Hints.t;
  built : Build.result;  (** the BET *)
  projection : Perf.projection;  (** Modl: analytic per-block times *)
  measured : Interp.result;  (** Prof: simulator ground truth *)
  model_sel : Hotspot.selection;
  measured_sel : Hotspot.selection;
}

(** Analytic-only result: what a user studying a not-yet-built machine
    would have (no ground truth available). *)
type analysis = {
  a_program : Ast.program;
  a_built : Build.result;
  a_projection : Perf.projection;
  a_selection : Hotspot.selection;
}

let local_machine = Machines.xeon

module Span = Skope_telemetry.Span

(** Profile the skeleton once on the local machine to gather branch
    outcome statistics and while-loop trip counts. *)
let profile ?(seed = 42L) ~libmix ~inputs program : Hints.t =
  Span.with_ ~name:"profile" (fun () ->
      let config =
        Interp.default_config ~machine:local_machine ~libmix ~seed ()
      in
      (Interp.run ~config ~inputs program).Interp.hints)

(** The machine-independent prefix of the pipeline: everything that
    does not depend on the target machine, so a design-space explorer
    can run it once and re-price the same BET on every grid point. *)
type prepared = {
  pre_workload : Registry.t;
  pre_scale : float;
  pre_program : Ast.program;
  pre_inputs : (string * Value.t) list;
  pre_hints : Hints.t;
  pre_built : Build.result;  (** the BET, priced by nothing yet *)
}

(** Build the machine-independent artifact: workload make -> validate
    -> lint -> (optional local profiling) -> BET construction.
    [profile_hints] replaces the caller-supplied [hints] with one
    local profiling run (the [run] path); [hints] defaults to empty
    (the [analyze] path). *)
let prepare ?(hints = Hints.empty) ?(profile_hints = false) ?(seed = 42L)
    ~(workload : Registry.t) ~scale () : prepared =
  let program, inputs =
    Span.with_ ~name:"workload_make"
      ~attrs:[ ("workload", workload.Registry.name) ]
      (fun () -> workload.Registry.make ~scale)
  in
  Span.with_ ~name:"validate" (fun () ->
      Validate.check_exn ~inputs:(List.map fst inputs) program);
  Span.with_ ~name:"lint" (fun () ->
      Skope_lint.Engine.check_exn ~inputs program);
  let libmix = workload.Registry.libmix in
  let hints =
    if profile_hints then profile ~seed ~libmix ~inputs program else hints
  in
  let built =
    Build.build ~hints ~lib_work:(Libmix.work_fn libmix) ~inputs program
  in
  {
    pre_workload = workload;
    pre_scale = scale;
    pre_program = program;
    pre_inputs = inputs;
    pre_hints = hints;
    pre_built = built;
  }

(** Price a prepared BET on one target machine: projection plus hot
    spot selection, nothing machine-independent recomputed.  Safe to
    call concurrently from several domains on the same [prepared]
    (the BET is read-only here). *)
let project_onto ?(criteria = Hotspot.default_criteria)
    ?(opts = Roofline.default_opts) ?(cache = Perf.Constant) (p : prepared)
    (machine : Machine.t) : analysis =
  let projection = Perf.project ~opts ~cache machine p.pre_built in
  let selection =
    Span.with_ ~name:"hotspot" (fun () ->
        Hotspot.select ~criteria ~assume_ranked:true
          ~total_instructions:(Bst.total_instructions p.pre_built.Build.bst)
          projection.Perf.blocks)
  in
  {
    a_program = p.pre_program;
    a_built = p.pre_built;
    a_projection = projection;
    a_selection = selection;
  }

(** BET pricing engines.  [Tree] is the recursive walk of
    {!Perf.project}; [Arena] flattens the BET once into a post-order
    arena ({!Skope_bet.Arena}) and re-prices it with flat forward
    loops and per-axis incrementality ({!Arena_price}).  The two are
    bit-for-bit identical on blocks and totals. *)
type engine = Tree | Arena

let engine_to_string = function Tree -> "tree" | Arena -> "arena"

let engine_of_string s =
  match String.lowercase_ascii s with
  | "tree" -> Some Tree
  | "arena" -> Some Arena
  | _ -> None

let engine_names = [ "tree"; "arena" ]

(** The redesigned projection API: an abstract handle over the
    machine-independent artifact plus the pricing engine chosen for
    it.  {!prepare}/{!project_onto} remain as thin wrappers over the
    tree engine for existing callers and are deprecated in favor of
    this module. *)
module Prepared = struct
  type handle = {
    pre : prepared;
    h_engine : engine;
    h_arena : Arena.t option;  (** [Some] iff [h_engine = Arena] *)
  }

  type t = handle

  (** Result of pricing one machine point, engine-independent.
      [o_state] (arena engine only) carries the pricing state that
      {!project_delta} continues from; [strip_state] drops it when a
      caller retains many outcomes. *)
  type outcome = {
    o_machine : Machine.t;
    o_blocks : Blockstat.t list;  (** ranked by decreasing time *)
    o_total_time : float;
    o_selection : Hotspot.selection;
    o_state : Arena_price.priced option;
  }

  (* The arena is built eagerly: OCaml's [Lazy.force] is not safe to
     race from the explorer's domain pool. *)
  let of_prepared ?(engine = Tree) (pre : prepared) : t =
    {
      pre;
      h_engine = engine;
      h_arena =
        (match engine with
        | Tree -> None
        | Arena ->
          Some
            (Span.with_ ~name:"arena_build" (fun () ->
                 Arena.of_build pre.pre_built)));
    }

  let create ?hints ?profile_hints ?seed ?engine ~workload ~scale () : t =
    of_prepared ?engine (prepare ?hints ?profile_hints ?seed ~workload ~scale ())

  let prepared t = t.pre
  let built t = t.pre.pre_built
  let workload t = t.pre.pre_workload
  let scale t = t.pre.pre_scale
  let engine t = t.h_engine
  let strip_state o = { o with o_state = None }

  (* Both engines rank before we get here ([Perf.project] and
     [Arena_price.aggregate]), so the selection re-sort is skipped. *)
  let select ~criteria t blocks =
    Span.with_ ~name:"hotspot" (fun () ->
        Hotspot.select ~criteria ~assume_ranked:true
          ~total_instructions:(Bst.total_instructions t.pre.pre_built.Build.bst)
          blocks)

  let of_priced ~criteria t (p : Arena_price.priced) : outcome =
    let blocks = Arena_price.blocks p in
    {
      o_machine = Arena_price.machine p;
      o_blocks = blocks;
      o_total_time = Arena_price.total_time p;
      o_selection = select ~criteria t blocks;
      o_state = Some p;
    }

  (** Repackage a tree-engine [analysis] (for callers bridging the two
      APIs, e.g. cached render paths). *)
  let of_analysis (a : analysis) : outcome =
    {
      o_machine = a.a_projection.Perf.machine;
      o_blocks = a.a_projection.Perf.blocks;
      o_total_time = a.a_projection.Perf.total_time;
      o_selection = a.a_selection;
      o_state = None;
    }

  let project ?(criteria = Hotspot.default_criteria)
      ?(opts = Roofline.default_opts) ?(cache = Perf.Constant) (t : t)
      (machine : Machine.t) : outcome =
    match t.h_arena with
    | Some arena ->
      of_priced ~criteria t (Arena_price.price ~opts ~cache arena machine)
    | None ->
      let projection = Perf.project ~opts ~cache machine t.pre.pre_built in
      {
        o_machine = machine;
        o_blocks = projection.Perf.blocks;
        o_total_time = projection.Perf.total_time;
        o_selection = select ~criteria t projection.Perf.blocks;
        o_state = None;
      }

  let project_delta ?(criteria = Hotspot.default_criteria)
      ?(opts = Roofline.default_opts) ?(cache = Perf.Constant) ~prev (t : t)
      (machine : Machine.t) : outcome =
    match (t.h_arena, prev.o_state) with
    | Some arena, Some p ->
      of_priced ~criteria t
        (Arena_price.price_delta ~opts ~cache ~prev:p arena machine)
    | _ -> project ~criteria ~opts ~cache t machine

  let project_batch ?(criteria = Hotspot.default_criteria)
      ?(opts = Roofline.default_opts) ?(cache = Perf.Constant) (t : t)
      (machines : Machine.t array) : outcome array =
    match t.h_arena with
    | Some arena ->
      Array.map (of_priced ~criteria t)
        (Arena_price.price_batch ~opts ~cache arena machines)
    | None -> Array.map (project ~criteria ~opts ~cache t) machines
end

(** Analytic projection only — no execution on [machine] at all. *)
let analyze ?(criteria = Hotspot.default_criteria)
    ?(opts = Roofline.default_opts) ?(cache = Perf.Constant)
    ?(hints = Hints.empty) ~machine ~(workload : Registry.t) ~scale () :
    analysis =
  let prepared = prepare ~hints ~workload ~scale () in
  project_onto ~criteria ~opts ~cache prepared machine

(** Static performance audit of a bundled workload: symbolic scaling /
    working-set / communication diagnostics at [scale], with the
    workload's own [make] as the scale-sweep [vary] hook so growth
    probes rebind every input consistently. *)
let audit ?(config = Skope_lint.Audit.default_config)
    ~(workload : Registry.t) ~scale () : Skope_lint.Audit.report =
  let program, inputs =
    Span.with_ ~name:"workload_make"
      ~attrs:[ ("workload", workload.Registry.name) ]
      (fun () -> workload.Registry.make ~scale)
  in
  let config =
    {
      config with
      Skope_lint.Audit.vary =
        Some (fun m -> snd (workload.Registry.make ~scale:(scale *. m)));
    }
  in
  Skope_lint.Audit.run ~config ~inputs program

(** Full validation run: profile locally, project analytically, and
    simulate on the target as ground truth. *)
let run ?(criteria = Hotspot.default_criteria) ?(opts = Roofline.default_opts)
    ?(seed = 42L) ?scale ~machine (workload : Registry.t) : run =
  let scale =
    match scale with Some s -> s | None -> workload.Registry.default_scale
  in
  let p = prepare ~profile_hints:true ~seed ~workload ~scale () in
  let built = p.pre_built in
  let projection = Perf.project ~opts machine built in
  let libmix = workload.Registry.libmix in
  let config = Interp.default_config ~machine ~libmix ~seed () in
  let measured = Interp.run ~config ~inputs:p.pre_inputs p.pre_program in
  let total_instructions = Bst.total_instructions built.Build.bst in
  let model_sel, measured_sel =
    Span.with_ ~name:"hotspot" (fun () ->
        ( Hotspot.select ~criteria ~total_instructions projection.Perf.blocks,
          Hotspot.select ~criteria ~total_instructions measured.Interp.blocks
        ))
  in
  {
    workload;
    machine;
    scale;
    program = p.pre_program;
    inputs = p.pre_inputs;
    hints = p.pre_hints;
    built;
    projection;
    measured;
    model_sel;
    measured_sel;
  }

(** Selection quality of the model's projection against the simulator
    ground truth, for top-[k] spots (§VI). *)
let model_quality (r : run) ~k =
  Quality.quality ~measured:r.measured.Interp.blocks
    ~candidate:r.projection.Perf.blocks ~k

(** Hot path of the model-selected spots through the BET (§V-C). *)
let hot_path (r : run) : Hotpath.t option =
  Span.with_ ~name:"hotpath" (fun () ->
      Hotpath.extract
        ~selection:(Hotspot.spot_set r.model_sel)
        ~node_time:r.projection.Perf.node_time
        ~node_enr:r.projection.Perf.node_enr r.built.Build.root)

(** Measured coverage (fraction of simulated time) captured by the
    model's top-[k] selection — the Modl(m) curve of Figs. 5/10-13. *)
let modl_measured_coverage (r : run) ~k =
  let total = Blockstat.total_time r.measured.Interp.blocks in
  if total <= 0. then 0.
  else
    Quality.captured ~measured:r.measured.Interp.blocks
      ~candidate:r.projection.Perf.blocks ~k
    /. total

(** Projected coverage of the model's top-[k] selection — Modl(p). *)
let modl_projected_coverage (r : run) ~k =
  let total = r.projection.Perf.total_time in
  if total <= 0. then 0.
  else
    Quality.captured ~measured:r.projection.Perf.blocks
      ~candidate:r.projection.Perf.blocks ~k
    /. total

(** Measured coverage of the measured top-[k] selection — Prof. *)
let prof_coverage (r : run) ~k =
  let total = Blockstat.total_time r.measured.Interp.blocks in
  if total <= 0. then 0.
  else
    Quality.captured ~measured:r.measured.Interp.blocks
      ~candidate:r.measured.Interp.blocks ~k
    /. total
