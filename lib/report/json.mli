(** Minimal JSON emitter and parser (no external dependencies).

    Non-finite floats serialize as [null] (NaN) or out-of-range
    literals; strings are escaped per RFC 8259. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

(** Parse one RFC 8259 JSON text.  Numbers without a fraction or
    exponent that fit [int] parse as [Int], everything else as
    [Float]; out-of-range literals such as [1e999] become infinities.
    String escapes (including [\uXXXX] and surrogate pairs, decoded to
    UTF-8) are handled.  Errors carry a byte offset and a message;
    trailing non-whitespace input is an error. *)
val of_string : string -> (t, string) result

(** {1 Accessors}

    Total lookups used by the service layer to destructure requests. *)

val member : string -> t -> t option
val to_string_opt : t -> string option
val to_float_opt : t -> float option
val to_int_opt : t -> int option
