(** Minimal JSON emitter (no external dependencies).

    Produces machine-readable analysis results for downstream tools —
    the paper pitches its output as input to auto-tuners and compilers
    (§II-b, §V-C); this is the interchange format. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else if Float.is_finite f then Printf.sprintf "%.17g" f
  else if Float.is_nan f then "null"
  else if f > 0. then "1e999"
  else "-1e999"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

(* --- parser (RFC 8259) -------------------------------------------- *)

exception Parse_error of int * string

type parser_state = { text : string; mutable pos : int }

let peek st = if st.pos < String.length st.text then Some st.text.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let fail st msg = raise (Parse_error (st.pos, msg))

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | Some x -> fail st (Printf.sprintf "expected %C, found %C" c x)
  | None -> fail st (Printf.sprintf "expected %C, found end of input" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.text
    && String.sub st.text st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "invalid literal (expected %s)" word)

(* Encode a Unicode code point as UTF-8 into [buf]. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 st =
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail st "invalid \\u escape (expected four hex digits)"
  in
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
    | Some c ->
      v := (!v lsl 4) lor digit c;
      advance st
    | None -> fail st "unterminated \\u escape");
  done;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' ->
      advance st;
      Buffer.contents buf
    | Some '\\' ->
      advance st;
      (match peek st with
      | None -> fail st "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let cp = hex4 st in
          if cp >= 0xD800 && cp <= 0xDBFF then begin
            (* high surrogate: require a \uXXXX low surrogate *)
            if
              st.pos + 1 < String.length st.text
              && st.text.[st.pos] = '\\'
              && st.text.[st.pos + 1] = 'u'
            then begin
              advance st;
              advance st;
              let lo = hex4 st in
              if lo >= 0xDC00 && lo <= 0xDFFF then
                add_utf8 buf
                  (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
              else fail st "invalid low surrogate"
            end
            else fail st "unpaired high surrogate"
          end
          else if cp >= 0xDC00 && cp <= 0xDFFF then
            fail st "unpaired low surrogate"
          else add_utf8 buf cp
        | c -> fail st (Printf.sprintf "invalid escape \\%c" c)));
      go ()
    | Some c when Char.code c < 0x20 ->
      fail st "unescaped control character in string"
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  if peek st = Some '-' then advance st;
  let digits () =
    let n = ref 0 in
    let rec go () =
      match peek st with
      | Some '0' .. '9' ->
        incr n;
        advance st;
        go ()
      | _ -> ()
    in
    go ();
    if !n = 0 then fail st "expected digit"
  in
  (match peek st with
  | Some '0' -> advance st
  | Some '1' .. '9' -> digits ()
  | _ -> fail st "expected digit");
  (match peek st with
  | Some '.' ->
    is_float := true;
    advance st;
    digits ()
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
    is_float := true;
    advance st;
    (match peek st with
    | Some ('+' | '-') -> advance st
    | _ -> ());
    digits ()
  | _ -> ());
  let s = String.sub st.text start (st.pos - start) in
  if !is_float then Float (float_of_string s)
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> Float (float_of_string s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']' in array"
      in
      List (items [])
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let field () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields (kv :: acc)
        | Some '}' ->
          advance st;
          List.rev (kv :: acc)
        | _ -> fail st "expected ',' or '}' in object"
      in
      Obj (fields [])
    end
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

let of_string text =
  let st = { text; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos < String.length text then
      Error (Printf.sprintf "byte %d: trailing input after JSON value" st.pos)
    else Ok v
  | exception Parse_error (pos, msg) ->
    Error (Printf.sprintf "byte %d: %s" pos msg)

(* --- accessors ----------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_string_opt = function String s -> Some s | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function
  | Int i -> Some i
  | Float f when Float.is_integer f && Float.abs f <= 2. ** 52. ->
    Some (int_of_float f)
  | _ -> None
