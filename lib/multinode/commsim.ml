(** Synchronous-rendezvous communication simulator for static deadlock
    detection.

    Each rank is a straight-line sequence of blocking point-to-point
    operations.  A [Send q] on rank [r] completes only when rank [q] is
    simultaneously at a [Recv r] (and vice versa) — the classic
    unbuffered/rendezvous semantics under which a ring of
    send-then-receive ranks deadlocks.  The simulation advances matched
    pairs to a fixpoint; any rank left with pending operations is
    stuck, and the wait-for graph over stuck ranks is walked to extract
    a cycle witness.

    Soundness under truncation: removing a suffix of any rank's
    program can only remove future match opportunities for {e other}
    ranks' later operations, never unblock a currently stuck pair, so
    a deadlock found on truncated programs is a real deadlock of the
    full programs' prefix. *)

type op = Send of int | Recv of int

type stuck = { rank : int; index : int; op : op }

type verdict =
  | Clean
  | Deadlock of { stuck : stuck list; cycle : int list }

let peer = function Send q | Recv q -> q

let pp_op ppf = function
  | Send q -> Fmt.pf ppf "send->%d" q
  | Recv q -> Fmt.pf ppf "recv<-%d" q

let simulate (progs : op list array) : verdict =
  let n = Array.length progs in
  let prog = Array.map Array.of_list progs in
  let pc = Array.make n 0 in
  let cur r = if pc.(r) < Array.length prog.(r) then Some prog.(r).(pc.(r)) else None in
  (* Advance matched rendezvous pairs until no pair matches.  Scanning
     ranks in index order and restarting after each match keeps the
     result deterministic; the fixpoint itself is order-independent
     because matching a ready pair never disables another ready pair. *)
  let progressed = ref true in
  while !progressed do
    progressed := false;
    let r = ref 0 in
    while (not !progressed) && !r < n do
      (match cur !r with
      | Some (Send q) when q <> !r && q >= 0 && q < n -> (
        match cur q with
        | Some (Recv s) when s = !r ->
          pc.(!r) <- pc.(!r) + 1;
          pc.(q) <- pc.(q) + 1;
          progressed := true
        | _ -> ())
      | _ -> ());
      incr r
    done
  done;
  let stuck =
    Array.to_list
      (Array.mapi
         (fun r _ ->
           match cur r with
           | Some op -> Some { rank = r; index = pc.(r); op }
           | None -> None)
         prog)
    |> List.filter_map Fun.id
  in
  if stuck = [] then Clean
  else begin
    (* Wait-for successor: a stuck rank waits on the peer of its
       current operation.  Walk from the smallest stuck rank; a
       revisit inside the stuck set yields the cycle slice, leaving
       the set means this chain ends at a terminated/absent rank. *)
    let stuck_op r = List.find_opt (fun s -> s.rank = r) stuck in
    let cycle =
      match stuck with
      | [] -> []
      | first :: _ ->
        let rec walk path r =
          match stuck_op r with
          | None -> []
          | Some s -> (
            match List.find_index (fun x -> x = r) path with
            | Some i -> List.filteri (fun j _ -> j >= i) path
            | None ->
              let q = peer s.op in
              if q < 0 || q >= n then [] else walk (path @ [ r ]) q)
        in
        walk [] first.rank
    in
    Deadlock { stuck; cycle }
  end
