(** Synchronous-rendezvous communication simulator for static deadlock
    detection (audit rule A007).

    Each rank's program is a straight-line list of blocking operations;
    a send completes only when its peer is simultaneously at the
    matching receive.  Matched pairs advance to a fixpoint; leftover
    pending operations mean deadlock.  Detection is sound under
    per-rank program truncation: a stuck prefix cannot be unstuck by
    operations that come after it. *)

type op = Send of int | Recv of int

type stuck = { rank : int; index : int; op : op }

type verdict =
  | Clean
  | Deadlock of { stuck : stuck list; cycle : int list }
      (** [stuck] lists every blocked rank with its pending operation;
          [cycle] is a wait-for cycle among them when one exists
          (empty for chains ending at a terminated rank). *)

val simulate : op list array -> verdict

val pp_op : op Fmt.t
