(** Multi-node strong-scaling projection (paper §VIII future work).

    Combines the single-rank analytic projection with the domain
    decomposition and network models: per step,

    [T(p) = T_compute(1 rank, cells/p) + (1 - overlap) * T_halo(p)]

    where the compute term comes from the BET/roofline projection —
    loops over distributed cells scale with the per-rank cell count
    because their trip counts are cell-proportional, while
    serial/replicated work does not shrink.  The projection therefore
    also reports which hot spots {e become} hot at scale: halo
    exchange and the non-distributed regions — the multi-node analogue
    of the paper's "hot spots do not port across machines". *)

type spec = {
  grid : Decompose.grid;  (** the distributed 3D grid *)
  fields : int;  (** fields exchanged per halo swap *)
  elem_bytes : int;
  steps : int;  (** halo exchanges over the run *)
  distributed_share : float;
      (** fraction of single-rank time that scales with cells/rank;
          the rest is replicated on every rank *)
}

type point = {
  ranks : int;
  decomposition : Decompose.t;
  t_compute : float;
  t_comm : float;
  t_total : float;
  speedup : float;
  efficiency : float;
  comm_fraction : float;
}

type scaling = {
  spec : spec;
  network : Network.t;
  t_single : float;
  points : point list;
}

(** Strong-scaling projection of a workload whose single-rank
    projected time is [t_single] seconds. *)
let strong_scaling ~(spec : spec) ~(network : Network.t) ~t_single ~ranks_list
    () : scaling =
  Skope_telemetry.Span.with_ ~name:"multinode" (fun () ->
  Skope_telemetry.Span.count "multinode_points"
    (float_of_int (List.length ranks_list));
  let points =
    List.map
      (fun ranks ->
        let d = Decompose.best ~grid:spec.grid ~ranks in
        let distributed = t_single *. spec.distributed_share in
        let replicated = t_single *. (1. -. spec.distributed_share) in
        let t_compute = (distributed /. float_of_int ranks) +. replicated in
        let halo_bytes =
          d.Decompose.halo_elems *. float_of_int (spec.fields * spec.elem_bytes)
        in
        let per_exchange =
          Network.exchange_time network ~messages:d.Decompose.neighbors
            ~bytes:(halo_bytes /. float_of_int (max 1 d.Decompose.neighbors))
        in
        let t_comm_raw = float_of_int spec.steps *. per_exchange in
        let t_comm =
          if ranks = 1 then 0. else t_comm_raw *. (1. -. network.Network.overlap)
        in
        let t_total = t_compute +. t_comm in
        {
          ranks;
          decomposition = d;
          t_compute;
          t_comm;
          t_total;
          speedup = t_single /. t_total;
          efficiency = t_single /. t_total /. float_of_int ranks;
          comm_fraction = (if t_total > 0. then t_comm /. t_total else 0.);
        })
      ranks_list
  in
  { spec; network; t_single; points })

(** First rank count at which communication exceeds [threshold] of the
    step time — the co-design "crossover" the examples look for. *)
let comm_crossover ?(threshold = 0.5) (s : scaling) =
  List.find_opt (fun p -> p.comm_fraction > threshold) s.points
  |> Option.map (fun p -> p.ranks)

(** SORD's distribution spec (§VI: one rank processes 50x400x400
    cells; velocity-stress codes exchange ~9 fields per step). *)
let sord_spec ~nx ~ny ~nz ~steps =
  {
    grid = { Decompose.nx; ny; nz };
    fields = 9;
    elem_bytes = 8;
    steps;
    distributed_share = 0.97;
  }

let pp_point ppf p =
  Fmt.pf ppf "p=%4d compute %8.2f ms, comm %7.2f ms, speedup %7.1fx, eff %5.1f%%"
    p.ranks (p.t_compute *. 1e3) (p.t_comm *. 1e3) p.speedup
    (100. *. p.efficiency)
