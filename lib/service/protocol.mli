(** `skoped` wire protocol: newline-delimited JSON over TCP, one
    request per connection.

    Requests are JSON objects with a ["kind"] field:

    - [{"kind":"analyze","workload":W,"machine":M, ...}] — analytic
      projection; optional ["scale"], ["top"], ["coverage"],
      ["leanness"], and ["overrides"] (an object of machine-parameter
      overrides, e.g. [{"mem_bw_gbs": 50.0}]);
    - [{"kind":"sweep", ...,"axis":A,"values":[...]}] — the same
      query fanned out server-side along one design axis
      (bw | lat | vec | issue | freq | l2 | div);
    - [{"kind":"lint","workload":W}] or
      [{"kind":"lint","source":"skeleton p { ... }"}] — run the
      interval-domain linter; optional ["scale"],
      ["deny_warnings"] (bool) and ["disable"] (list of rule codes);
    - [{"kind":"workloads"}], [{"kind":"machines"}] — catalogs;
    - [{"kind":"stats"}] — metrics snapshot;
    - [{"kind":"metrics_prom"}] — Prometheus text exposition (the
      result is [{"content_type":...,"body":...}]);
    - [{"kind":"version"}] — server version and git revision.

    Any request may carry ["timeout_ms"]: the server refuses to start
    (or continue fanning out) work past the deadline.

    Responses are [{"ok":true,"result":...}] or
    [{"ok":false,"error":{"code":C,"message":M}}]. *)

open Skope_hw
module Json = Skope_report.Json

type query = {
  workload : string;
  machine : string;
  overrides : (string * float) list;  (** machine-parameter overrides *)
  scale : float option;  (** [None]: the workload's default scale *)
  coverage : float;
  leanness : float;
  top : int;  (** hot spots to return *)
}

type lint_query = {
  l_workload : string option;  (** bundled workload name … *)
  l_source : string option;  (** … or inline DSL source (exactly one) *)
  l_scale : float option;  (** workload scale; [None]: its default *)
  l_deny_warnings : bool;
  l_disabled : string list;  (** rule codes to suppress *)
}

type request =
  | Analyze of query
  | Sweep of query * Designspace.axis
  | Lint of lint_query
  | Workloads
  | Machines
  | Stats
  | Metrics_prom
  | Version

type error_code =
  | Parse_error  (** body is not valid JSON *)
  | Invalid_request  (** valid JSON, invalid shape/kind/field *)
  | Unknown_workload
  | Unknown_machine
  | Oversized
  | Deadline_exceeded
  | Internal

val error_code_to_string : error_code -> string

(** Kind label for metrics, even for invalid requests ("?" when the
    kind cannot be determined). *)
val kind_label : request -> string

(** Parse and validate a request body.  Returns the request plus its
    optional [timeout_ms].  Catalog existence of workload/machine
    names is NOT checked here (the dispatcher owns the catalogs). *)
val parse_request :
  string -> (request * float option, error_code * string) result

(** Build the machine for [q]: catalog lookup plus overrides.
    Recognized override keys: freq_ghz, issue_width, vector_width,
    flop_issue_per_cycle, div_latency, vec_efficiency,
    mem_latency_cycles, mem_bw_gbs, mlp, l2_size_bytes. *)
val resolve_machine :
  query -> (Machine.t, error_code * string) result

val ok_response : Json.t -> string
val error_response : error_code -> string -> string
