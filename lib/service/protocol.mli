(** `skoped` wire protocol: newline-delimited JSON over TCP, one
    request per connection.

    Requests are JSON objects with a ["kind"] field:

    - [{"kind":"analyze","workload":W,"machine":M, ...}] — analytic
      projection; optional ["scale"], ["top"], ["coverage"],
      ["leanness"], and ["overrides"] (an object of machine-parameter
      overrides, e.g. [{"mem_bw_gbs": 50.0}]);
    - [{"kind":"sweep", ...,"axis":A,"values":[...]}] — the same
      query fanned out server-side along one design axis
      (bw | lat | vec | issue | freq | l2 | div);
    - [{"kind":"explore", ...,"axes":[{"axis":A,"values":[...]}, ...]}]
      — a multi-axis grid (cartesian product of the axes) priced
      against one shared BET; optional ["sample"] (latin-hypercube
      sample size) and ["seed"].  The result carries the point list,
      the Pareto frontier over (projected time, cost proxy) and the
      per-point Tc/Tm/To split;
    - [{"kind":"lint","workload":W}] or
      [{"kind":"lint","source":"skeleton p { ... }"}] — run the
      interval-domain linter; optional ["scale"],
      ["deny_warnings"] (bool) and ["disable"] (list of rule codes);
    - [{"kind":"workloads"}], [{"kind":"machines"}] — catalogs;
    - [{"kind":"stats"}] — metrics snapshot;
    - [{"kind":"metrics_prom"}] — Prometheus text exposition (the
      result is [{"content_type":...,"body":...}]);
    - [{"kind":"version"}] — server version and git revision;
    - [{"kind":"capabilities"}] — protocol version, supported request
      kinds and design axes (feature discovery);
    - [{"kind":"cluster_stats"}] — cluster topology and per-shard
      health/cache statistics.  Served only by the cluster router
      ([skope route]); a plain skoped answers [invalid_request].

    Responses proxied through the cluster router additionally carry a
    top-level ["shard"] field naming the member that produced them —
    an additive field that single-process clients ignore.

    Any request may carry ["timeout_ms"]: the server refuses to start
    (or continue fanning out) work past the deadline.

    Responses are [{"v":1,"ok":true,"result":...}] or
    [{"v":1,"ok":false,"error":{"code":C,"message":M}}].  An
    [overloaded] error additionally carries ["retry_after_ms"], the
    server's backoff hint for the retrying client.

    {2 Compatibility rules}

    - ["v"] is the protocol major version, stamped on every response.
      It only changes when an existing client could misread a
      response: a field is removed or renamed, a field's type or
      meaning changes, or an error code is repurposed.
    - {e Additions} are not breaking and do not bump ["v"]: servers
      may add response fields, request kinds, axes and error codes at
      any time.  Clients must ignore unknown response fields and
      treat unknown error codes as [Internal].
    - Clients should reject responses whose ["v"] is greater than the
      version they were built against, and may use
      [{"kind":"capabilities"}] to discover what a server supports
      before issuing requests.
    - Servers answer requests with unknown fields by ignoring them
      (so old servers tolerate new optional fields); an unknown
      ["kind"] is an [Invalid_request] error, which is what a client
      probing for a feature on an old server will see. *)

open Skope_hw
module Json = Skope_report.Json

type query = {
  workload : string;
  machine : string;
  overrides : (string * float) list;  (** machine-parameter overrides *)
  scale : float option;  (** [None]: the workload's default scale *)
  coverage : float;
  leanness : float;
  top : int;  (** hot spots to return *)
  engine : Core.Pipeline.engine option;
      (** optional ["engine"] field ("tree"/"arena"); [None] means the
          server default (tree).  Unknown names are an
          [Invalid_request].  Advertised via [capabilities] as
          ["bet_engines"]. *)
}

type lint_query = {
  l_workload : string option;  (** bundled workload name … *)
  l_source : string option;  (** … or inline DSL source (exactly one) *)
  l_scale : float option;  (** workload scale; [None]: its default *)
  l_deny_warnings : bool;
  l_disabled : string list;  (** rule codes to suppress *)
}

type audit_query = {
  a_workload : string option;  (** bundled workload name … *)
  a_source : string option;  (** … or inline DSL source (exactly one) *)
  a_scale : float option;  (** workload scale; [None]: its default *)
  a_machine : string;  (** cache geometry/balance; default ["bgq"] *)
  a_ranks : int;  (** rank space when no rank-count input; default 4 *)
  a_deny_warnings : bool;
  a_disabled : string list;  (** rule codes to suppress *)
}

(** Multi-axis exploration: the cartesian grid of [e_axes], optionally
    latin-hypercube sampled down to [e_sample] points with [e_seed].
    The parsed grid is capped at 4096 points. *)
type explore_spec = {
  e_axes : Designspace.axis list;
  e_sample : int option;
  e_seed : int;
}

(** Flight-recorder readback ([{"kind":"recent"}]): the last [rc_n]
    requests (default 20), newest first; [rc_errors_only] keeps only
    non-ok outcomes and [rc_min_ms] only requests at least that
    slow. *)
type recent_query = {
  rc_n : int;
  rc_errors_only : bool;
  rc_min_ms : float option;
}

type request =
  | Analyze of query
  | Sweep of query * Designspace.axis
  | Explore of query * explore_spec
  | Lint of lint_query
  | Audit of audit_query
  | Workloads
  | Machines
  | Stats
  | Metrics_prom
  | Version
  | Capabilities
  | Cluster_stats
      (** parsed everywhere, served only by the cluster router *)
  | Recent of recent_query
  | Trace of string
      (** [{"kind":"trace","id":ID}] — one request's span tree from
          the flight recorder *)

(** Cross-process trace context, from the request's optional
    [{"trace":{"id":ID,"parent":P}}] object: handlers adopt [t_id]
    instead of minting one, so a single id follows a query through
    client → router → shard; [t_parent] labels the forwarding hop. *)
type trace_context = { t_id : string; t_parent : string option }

(** Request fields that ride alongside every [kind]. *)
type envelope = { timeout_ms : float option; trace : trace_context option }

type error_code =
  | Parse_error  (** body is not valid JSON *)
  | Invalid_request  (** valid JSON, invalid shape/kind/field *)
  | Unknown_workload
  | Unknown_machine
  | Oversized
  | Deadline_exceeded
  | Overloaded
      (** transient: the work queue is full (admission control) or a
          fault-injection layer simulated saturation.  The error object
          carries a ["retry_after_ms"] hint; retrying after a backoff
          is expected to succeed.  Every other code is terminal for
          the request as written. *)
  | Internal

val error_code_to_string : error_code -> string

(** Kind label for metrics, even for invalid requests ("?" when the
    kind cannot be determined). *)
val kind_label : request -> string

(** The protocol major version stamped as ["v"] on every response. *)
val protocol_version : int

(** Every request kind a single-process skoped serves, as advertised
    by [{"kind":"capabilities"}].  [cluster_stats] is excluded: the
    router appends it to the capabilities it proxies. *)
val request_kinds : string list

(** Upper bound on the (possibly sampled) explore grid size. *)
val max_grid_points : int

(** Parse and validate a request body.  Returns the request plus its
    envelope (optional [timeout_ms] and trace context).  Catalog
    existence of workload/machine names is NOT checked here (the
    dispatcher owns the catalogs). *)
val parse_request : string -> (request * envelope, error_code * string) result

(** Build the machine for [q]: catalog lookup plus overrides.
    Recognized override keys: freq_ghz, issue_width, vector_width,
    flop_issue_per_cycle, div_latency, vec_efficiency,
    mem_latency_cycles, mem_bw_gbs, mlp, l2_size_bytes. *)
val resolve_machine :
  query -> (Machine.t, error_code * string) result

(** [trace_id] is echoed as a top-level ["trace_id"] field so callers
    can correlate responses with the flight recorder and logs. *)
val ok_response : ?trace_id:string -> Json.t -> string

(** [retry_after_ms] adds the client backoff hint — meaningful only
    with {!Overloaded}.  [trace_id] as in {!ok_response}. *)
val error_response :
  ?retry_after_ms:float -> ?trace_id:string -> error_code -> string -> string
