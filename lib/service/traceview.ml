module Json = Skope_report.Json
module Span = Skope_telemetry.Span
module Recorder = Skope_telemetry.Recorder

let span_to_json (s : Span.t) =
  Json.Obj
    ([ ("id", Json.Int s.Span.id) ]
    @ (match s.Span.parent with
      | Some p -> [ ("parent", Json.Int p) ]
      | None -> [])
    @ [
        ("name", Json.String s.Span.name);
        ("start", Json.Float s.Span.start);
        ("duration_ms", Json.Float (s.Span.duration *. 1e3));
        ("domain", Json.Int s.Span.domain);
      ]
    @ (if s.Span.attrs = [] then []
       else
         [
           ( "attrs",
             Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) s.Span.attrs)
           );
         ])
    @
    if s.Span.counters = [] then []
    else
      [
        ( "counters",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.Span.counters)
        );
      ])

let base_fields (r : Recorder.record) =
  [
    ("trace_id", Json.String r.Recorder.trace_id);
    ("kind", Json.String r.Recorder.kind);
    ("outcome", Json.String r.Recorder.outcome);
    ("retries", Json.Int r.Recorder.retries);
    ("queue_wait_ms", Json.Float r.Recorder.queue_wait_ms);
    ("start", Json.Float r.Recorder.start);
    ("duration_ms", Json.Float r.Recorder.duration_ms);
  ]
  @ (match r.Recorder.fingerprint with
    | Some fp -> [ ("fingerprint", Json.String fp) ]
    | None -> [])
  @
  match r.Recorder.shard with
  | Some s -> [ ("shard", Json.String s) ]
  | None -> []

let record_to_json (r : Recorder.record) =
  Json.Obj
    (base_fields r
    @ [
        ( "spans",
          (* Completion order is innermost-first; present parents
             first so readers see the tree top-down. *)
          Json.List (List.rev_map span_to_json r.Recorder.spans) );
      ])

let record_summary_json (r : Recorder.record) =
  Json.Obj (base_fields r @ [ ("spans", Json.Int (List.length r.Recorder.spans)) ])

let trace_result ~trace_id processes =
  Json.Obj
    [
      ("trace_id", Json.String trace_id);
      ( "processes",
        Json.List
          (List.map
             (fun (name, r) ->
               Json.Obj
                 [
                   ("process", Json.String name); ("record", record_to_json r);
                 ])
             processes) );
    ]

let processes_of_trace json =
  match Json.member "processes" json with
  | Some (Json.List ps) -> ps
  | _ -> []

let relabel_processes ~process json =
  match json with
  | Json.Obj fields ->
    Json.Obj
      (List.map
         (fun (k, v) ->
           if k <> "processes" then (k, v)
           else
             match v with
             | Json.List ps ->
               ( k,
                 Json.List
                   (List.map
                      (function
                        | Json.Obj pf ->
                          Json.Obj
                            (List.map
                               (fun (pk, pv) ->
                                 if pk = "process" then
                                   (pk, Json.String process)
                                 else (pk, pv))
                               pf)
                        | other -> other)
                      ps) )
             | other -> (k, other))
         fields)
  | other -> other

(* --- Chrome conversion --------------------------------------------- *)

let num = function
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let chrome_of_trace json =
  let processes = processes_of_trace json in
  if processes = [] then Error "trace result has no processes"
  else begin
    (* Spans carry epoch-seconds starts from the same wall clock in
       every process, so one global origin aligns the timelines. *)
    let t0 =
      List.fold_left
        (fun acc p ->
          match Option.bind (Json.member "record" p) (Json.member "spans") with
          | Some (Json.List spans) ->
            List.fold_left
              (fun acc s ->
                match num (Json.member "start" s) with
                | Some st -> Float.min acc st
                | None -> acc)
              acc spans
          | _ -> acc)
        infinity processes
    in
    let t0 = if t0 = infinity then 0. else t0 in
    let events = ref [] in
    List.iteri
      (fun i p ->
        let pid = i + 1 in
        let name =
          match Json.member "process" p with
          | Some (Json.String s) -> s
          | _ -> Printf.sprintf "process-%d" pid
        in
        events :=
          Json.Obj
            [
              ("name", Json.String "process_name");
              ("ph", Json.String "M");
              ("pid", Json.Int pid);
              ("args", Json.Obj [ ("name", Json.String name) ]);
            ]
          :: !events;
        match Option.bind (Json.member "record" p) (Json.member "spans") with
        | Some (Json.List spans) ->
          List.iter
            (fun s ->
              let field k = Json.member k s in
              let sname =
                match field "name" with
                | Some (Json.String n) -> n
                | _ -> "span"
              in
              let start = Option.value ~default:t0 (num (field "start")) in
              let dur_ms = Option.value ~default:0. (num (field "duration_ms")) in
              let tid =
                match field "domain" with Some (Json.Int d) -> d | _ -> 0
              in
              let args =
                (match field "id" with
                | Some (Json.Int id) -> [ ("span_id", Json.Int id) ]
                | _ -> [])
                @ (match field "parent" with
                  | Some (Json.Int pid') -> [ ("parent_id", Json.Int pid') ]
                  | _ -> [])
                @ (match field "attrs" with
                  | Some (Json.Obj _ as a) -> [ ("attrs", a) ]
                  | _ -> [])
                @
                match field "counters" with
                | Some (Json.Obj _ as c) -> [ ("counters", c) ]
                | _ -> []
              in
              events :=
                Json.Obj
                  [
                    ("name", Json.String sname);
                    ("cat", Json.String "skope");
                    ("ph", Json.String "X");
                    ("ts", Json.Float ((start -. t0) *. 1e6));
                    ("dur", Json.Float (dur_ms *. 1e3));
                    ("pid", Json.Int pid);
                    ("tid", Json.Int tid);
                    ("args", Json.Obj args);
                  ]
                :: !events)
            spans
        | _ -> ())
      processes;
    Ok
      (Json.to_string
         (Json.Obj
            [
              ("displayTimeUnit", Json.String "ms");
              ("traceEvents", Json.List (List.rev !events));
            ]))
  end
