(** Typed builders for skoped request bodies.

    The client-side counterpart of {!Protocol}: every request the
    server parses can be built here without hand-assembling JSON, so
    [skope query], the tests and the load generator all speak the same
    dialect.  A raw-JSON escape hatch remains available (pass any
    string straight to {!Client.roundtrip}); these builders are for
    the common path where a typo should be a type error. *)

module Json = Skope_report.Json

type query_opts = {
  scale : float option;  (** [None]: the workload's default scale *)
  top : int;
  coverage : float;
  leanness : float;
  overrides : (string * float) list;
  engine : string option;
      (** BET pricing engine ("tree"/"arena"); [None]: server default *)
}

let default_query_opts =
  {
    scale = None;
    top = 10;
    coverage = 0.90;
    leanness = 0.10;
    overrides = [];
    engine = None;
  }

type request =
  | Analyze of { workload : string; machine : string; opts : query_opts }
  | Sweep of {
      workload : string;
      machine : string;
      opts : query_opts;
      axis : string;
      values : float list;
    }
  | Explore of {
      workload : string;
      machine : string;
      opts : query_opts;
      axes : (string * float list) list;
      sample : int option;
      seed : int option;
    }
  | Lint of {
      workload : string option;
      source : string option;
      scale : float option;
      deny_warnings : bool;
      disable : string list;
    }
  | Audit of {
      workload : string option;
      source : string option;
      scale : float option;
      machine : string option;
      ranks : int option;
      deny_warnings : bool;
      disable : string list;
    }
  | Workloads
  | Machines
  | Stats
  | Metrics_prom
  | Version
  | Capabilities
  | Cluster_stats
  | Recent of { n : int option; errors_only : bool; min_ms : float option }
  | Trace of { id : string }

let recent ?n ?(errors_only = false) ?min_ms () = Recent { n; errors_only; min_ms }
let trace ~id () = Trace { id }

let analyze ?(opts = default_query_opts) ~workload ~machine () =
  Analyze { workload; machine; opts }

let sweep ?(opts = default_query_opts) ~workload ~machine ~axis ~values () =
  Sweep { workload; machine; opts; axis; values }

let explore ?(opts = default_query_opts) ?sample ?seed ~workload ~machine ~axes
    () =
  Explore { workload; machine; opts; axes; sample; seed }

let lint_workload ?scale ?(deny_warnings = false) ?(disable = []) workload =
  Lint { workload = Some workload; source = None; scale; deny_warnings; disable }

let lint_source ?(deny_warnings = false) ?(disable = []) source =
  Lint
    {
      workload = None;
      source = Some source;
      scale = None;
      deny_warnings;
      disable;
    }

let audit_workload ?scale ?machine ?ranks ?(deny_warnings = false)
    ?(disable = []) workload =
  Audit
    {
      workload = Some workload;
      source = None;
      scale;
      machine;
      ranks;
      deny_warnings;
      disable;
    }

let audit_source ?machine ?ranks ?(deny_warnings = false) ?(disable = []) source
    =
  Audit
    {
      workload = None;
      source = Some source;
      scale = None;
      machine;
      ranks;
      deny_warnings;
      disable;
    }

let kind = function
  | Analyze _ -> "analyze"
  | Sweep _ -> "sweep"
  | Explore _ -> "explore"
  | Lint _ -> "lint"
  | Audit _ -> "audit"
  | Workloads -> "workloads"
  | Machines -> "machines"
  | Stats -> "stats"
  | Metrics_prom -> "metrics_prom"
  | Version -> "version"
  | Capabilities -> "capabilities"
  | Cluster_stats -> "cluster_stats"
  | Recent _ -> "recent"
  | Trace _ -> "trace"

let query_fields ~workload ~machine (o : query_opts) =
  [ ("workload", Json.String workload); ("machine", Json.String machine) ]
  @ (match o.scale with Some s -> [ ("scale", Json.Float s) ] | None -> [])
  @ [
      ("top", Json.Int o.top);
      ("coverage", Json.Float o.coverage);
      ("leanness", Json.Float o.leanness);
    ]
  @ (match o.engine with
    | Some e -> [ ("engine", Json.String e) ]
    | None -> [])
  @
  if o.overrides = [] then []
  else
    [
      ( "overrides",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) o.overrides) );
    ]

let axis_obj (axis, values) =
  Json.Obj
    [
      ("axis", Json.String axis);
      ("values", Json.List (List.map (fun v -> Json.Float v) values));
    ]

let to_json ?timeout_ms ?trace_id ?trace_parent request =
  let base =
    [ ("kind", Json.String (kind request)) ]
    @ (match timeout_ms with
      | Some t -> [ ("timeout_ms", Json.Float t) ]
      | None -> [])
    @
    match trace_id with
    | Some id ->
      [
        ( "trace",
          Json.Obj
            ([ ("id", Json.String id) ]
            @
            match trace_parent with
            | Some p -> [ ("parent", Json.String p) ]
            | None -> []) );
      ]
    | None -> []
  in
  let fields =
    match request with
    | Analyze { workload; machine; opts } ->
      query_fields ~workload ~machine opts
    | Sweep { workload; machine; opts; axis; values } ->
      query_fields ~workload ~machine opts
      @ [
          ("axis", Json.String axis);
          ("values", Json.List (List.map (fun v -> Json.Float v) values));
        ]
    | Explore { workload; machine; opts; axes; sample; seed } ->
      query_fields ~workload ~machine opts
      @ [ ("axes", Json.List (List.map axis_obj axes)) ]
      @ (match sample with
        | Some n -> [ ("sample", Json.Int n) ]
        | None -> [])
      @ (match seed with Some s -> [ ("seed", Json.Int s) ] | None -> [])
    | Lint { workload; source; scale; deny_warnings; disable } ->
      (match workload with
      | Some w -> [ ("workload", Json.String w) ]
      | None -> [])
      @ (match source with
        | Some s -> [ ("source", Json.String s) ]
        | None -> [])
      @ (match scale with Some s -> [ ("scale", Json.Float s) ] | None -> [])
      @ (if deny_warnings then [ ("deny_warnings", Json.Bool true) ] else [])
      @
      if disable = [] then []
      else
        [ ("disable", Json.List (List.map (fun c -> Json.String c) disable)) ]
    | Audit { workload; source; scale; machine; ranks; deny_warnings; disable }
      ->
      (match workload with
      | Some w -> [ ("workload", Json.String w) ]
      | None -> [])
      @ (match source with
        | Some s -> [ ("source", Json.String s) ]
        | None -> [])
      @ (match scale with Some s -> [ ("scale", Json.Float s) ] | None -> [])
      @ (match machine with
        | Some m -> [ ("machine", Json.String m) ]
        | None -> [])
      @ (match ranks with Some r -> [ ("ranks", Json.Int r) ] | None -> [])
      @ (if deny_warnings then [ ("deny_warnings", Json.Bool true) ] else [])
      @
      if disable = [] then []
      else
        [ ("disable", Json.List (List.map (fun c -> Json.String c) disable)) ]
    | Recent { n; errors_only; min_ms } ->
      (match n with Some n -> [ ("n", Json.Int n) ] | None -> [])
      @ (if errors_only then [ ("errors_only", Json.Bool true) ] else [])
      @ (match min_ms with
        | Some ms -> [ ("min_ms", Json.Float ms) ]
        | None -> [])
    | Trace { id } -> [ ("id", Json.String id) ]
    | Workloads | Machines | Stats | Metrics_prom | Version | Capabilities
    | Cluster_stats -> []
  in
  Json.Obj (base @ fields)

let to_body ?timeout_ms ?trace_id ?trace_parent request =
  Json.to_string (to_json ?timeout_ms ?trace_id ?trace_parent request)

(* --- response decoding ---------------------------------------------- *)

type response = {
  r_v : int option;
  r_ok : bool;
  r_trace_id : string option;
  r_result : Json.t option;
  r_error_code : string option;
  r_error_message : string option;
  r_retry_after_ms : float option;
}

let parse_response body =
  match Json.of_string body with
  | Error e -> Error (Printf.sprintf "response is not JSON: %s" e)
  | Ok json -> (
    match json with
    | Json.Obj _ ->
      let error = Json.member "error" json in
      let str key =
        Option.bind (Option.bind error (Json.member key)) Json.to_string_opt
      in
      Ok
        {
          r_v = Option.bind (Json.member "v" json) Json.to_int_opt;
          r_ok = Json.member "ok" json = Some (Json.Bool true);
          r_trace_id =
            Option.bind (Json.member "trace_id" json) Json.to_string_opt;
          r_result = Json.member "result" json;
          r_error_code = str "code";
          r_error_message = str "message";
          r_retry_after_ms =
            Option.bind
              (Option.bind error (Json.member "retry_after_ms"))
              Json.to_float_opt;
        }
    | _ -> Error "response is not a JSON object")
