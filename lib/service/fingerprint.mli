(** Content-addressed cache keys for projection queries.

    A fingerprint digests everything the analytic projection depends
    on — workload name, every machine parameter, input scale, the
    hot-spot criteria, and the pricing engine — so two requests that would compute the same
    projection share one cache slot, whether they arrived as
    [analyze] queries, parameter-override queries, or server-side
    sweep fan-out. *)

open Skope_hw
open Skope_analysis

(** Canonical, human-readable key material (stable field order).
    [engine] is the pricing engine's wire name ("tree"/"arena"): the
    two engines agree bit-for-bit, but keeping their cache slots
    disjoint keeps a differential check honest. *)
val canonical :
  workload:string ->
  machine:Machine.t ->
  scale:float ->
  criteria:Hotspot.criteria ->
  top:int ->
  engine:string ->
  string

(** MD5 hex digest of {!canonical}. *)
val of_query :
  workload:string ->
  machine:Machine.t ->
  scale:float ->
  criteria:Hotspot.criteria ->
  top:int ->
  engine:string ->
  string
