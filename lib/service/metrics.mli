(** Service metrics registry: request counters by (kind, outcome),
    cache hit/miss counters, and a latency reservoir with percentile
    estimates.  All operations are thread-safe. *)

type t

val create : unit -> t

(** Count one finished request, e.g. [~kind:"analyze" ~outcome:"ok"]
    or [~kind:"sweep" ~outcome:"deadline_exceeded"]. *)
val incr_request : t -> kind:string -> outcome:string -> unit

val cache_hit : t -> unit
val cache_miss : t -> unit

(** Record one request's service latency in seconds. *)
val observe_latency : t -> float -> unit

(** Immutable snapshot for the [stats] response and for tests. *)
type view = {
  requests : ((string * string) * int) list;
      (** (kind, outcome) -> count, sorted by key *)
  total_requests : int;
  cache_hits : int;
  cache_misses : int;
  hit_rate : float;  (** hits / (hits + misses); 0 when no lookups *)
  latency_count : int;
  p50 : float;  (** seconds *)
  p95 : float;
  p99 : float;
}

val view : t -> view
val to_json : view -> Skope_report.Json.t
