(** Service metrics registry: request counters by (kind, outcome),
    cache hit/miss counters, a latency histogram with exact
    small-sample percentiles, per-phase span histograms (fed by the
    telemetry {!Skope_telemetry.Agg} sink) and pull-style gauges.
    All operations are thread-safe. *)

type t

val create : unit -> t

(** Count one finished request, e.g. [~kind:"analyze" ~outcome:"ok"]
    or [~kind:"sweep" ~outcome:"deadline_exceeded"]. *)
val incr_request : t -> kind:string -> outcome:string -> unit

val cache_hit : t -> unit
val cache_miss : t -> unit

(** Record one request's service latency in seconds. *)
val observe_latency : t -> float -> unit

val sink : t -> Skope_telemetry.Span.sink
(** A telemetry sink that folds finished pipeline spans into this
    registry's per-phase histograms.  Install with
    [Skope_telemetry.Span.add_sink (Metrics.sink m)]. *)

val register_gauge : t -> name:string -> help:string -> (unit -> float) -> unit
(** Register a pull-style gauge sampled at [view]/[prom_metrics] time
    (e.g. work-queue depth, LRU occupancy).  [name] is the full
    Prometheus metric name ([skope_queue_depth]).  Re-registering a
    name replaces the previous sampler. *)

val reset : t -> unit
(** Zero counters, latency and phase histograms (gauges keep their
    samplers).  For tests. *)

(** Immutable snapshot for the [stats] response and for tests.
    Percentiles are exact nearest-rank over the retained latency
    window — the p99 of a single sample is that sample. *)
type view = {
  requests : ((string * string) * int) list;
      (** (kind, outcome) -> count, sorted by key *)
  total_requests : int;
  cache_hits : int;
  cache_misses : int;
  hit_rate : float;  (** hits / (hits + misses); 0 when no lookups *)
  latency_count : int;
  p50 : float;  (** seconds *)
  p95 : float;
  p99 : float;
  gauges : (string * float) list;  (** sampled at snapshot time *)
  counters : (string * float) list;
      (** process-wide telemetry counters ([client_retries],
          [requests_shed], [connections_timed_out], [faults_injected],
          ...), sorted by name *)
  phases : (string * Skope_telemetry.Hist.snapshot) list;
      (** per-phase duration histograms, sorted by phase name *)
}

val view : t -> view
val to_json : view -> Skope_report.Json.t

val prom_metrics : t -> string
(** The whole registry as Prometheus text exposition: request and
    cache counters, the request-latency histogram, one
    [skope_phase_duration_seconds{phase="..."}] histogram per pipeline
    phase, registered gauges, process-wide telemetry counters
    ([skope_<counter>_total]) and [skope_build_info]. *)
