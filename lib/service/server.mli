(** `skoped` — the TCP server.

    One accept loop feeds a bounded {!Workqueue} drained by a fixed
    pool of OCaml 5 [Domain] workers; each worker reads one
    newline-terminated JSON request from its connection, runs it
    through {!Dispatch} (shared cache + metrics), writes the response
    line and closes.  SIGINT/SIGTERM stop the accept loop, drain the
    queue, join every worker and print a final stats line. *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port *)
  pool : int;  (** worker domains *)
  queue_capacity : int;
  dispatch : Dispatch.config;
}

val default_config : config

(** Serve until SIGINT/SIGTERM.  [on_ready] (default: prints a
    "listening" line) receives the bound port — useful with
    [port = 0]. *)
val run : ?on_ready:(int -> unit) -> config -> unit
