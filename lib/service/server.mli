(** `skoped` — the TCP server.

    One accept loop feeds a bounded {!Workqueue} drained by a fixed
    pool of OCaml 5 [Domain] workers; each worker reads one
    newline-terminated JSON request from its connection, writes the
    response line and closes.

    Reliability posture:
    - {b Admission control}: when the work queue is full, the accept
      loop does not block or let the kernel backlog absorb the load —
      it immediately writes a structured [overloaded] error (with a
      [retry_after_ms] hint derived from queue depth) and closes,
      bumping the [requests_shed] counter.
    - {b Per-connection deadlines}: every worker socket carries
      [SO_RCVTIMEO]/[SO_SNDTIMEO] from the config, so a stalled client
      costs one deadline, not a worker; expiries bump
      [connections_timed_out].
    - {b Graceful shutdown}: SIGINT/SIGTERM (or the [stop] flag) stop
      the accept loop; queued requests drain, workers join, and only
      then does [run] return.
    - {b Fault injection}: an optional {!Faults.t} perturbs
      connections (drop / delay / truncate / injected overload) for
      testing client resilience; every injection bumps
      [faults_injected]. *)

(** Transport-level knobs, independent of what the handler does. *)
type net = {
  n_host : string;
  n_port : int;  (** 0 picks an ephemeral port *)
  n_pool : int;  (** worker domains *)
  n_queue_capacity : int;
  n_read_timeout_s : float;  (** per-connection [SO_RCVTIMEO] *)
  n_write_timeout_s : float;  (** per-connection [SO_SNDTIMEO] *)
  n_max_request_bytes : int;  (** read cap; larger bodies arrive torn *)
}

val default_net : net

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port *)
  pool : int;  (** worker domains *)
  queue_capacity : int;
  read_timeout_s : float;  (** per-connection [SO_RCVTIMEO] *)
  write_timeout_s : float;  (** per-connection [SO_SNDTIMEO] *)
  faults : Faults.t option;  (** [None] in production *)
  dispatch : Dispatch.config;
}

val default_config : config

(** The generic accept-loop/worker-pool server: [handler] receives one
    request body per connection (with the accept timestamp, so queue
    wait counts toward deadlines) and returns the response line.  All
    the reliability posture above — admission control, per-connection
    deadlines, graceful drain, optional fault injection — applies to
    any handler.  [handle_signals] (default [true]) installs the
    SIGINT/SIGTERM/SIGPIPE handlers; pass [false] when embedding
    several servers in one process and let the host own its signals.
    [on_queue] receives a queue-depth thunk once, before accepting
    (the hook for a gauge); [on_shutdown] runs after the drain.
    [recorder] receives a flight-recorder entry for every shed
    request (sheds never reach the handler, so without it they would
    be invisible to [{"kind":"recent"}]). *)
val serve :
  ?stop:bool Atomic.t ->
  ?on_ready:(int -> unit) ->
  ?handle_signals:bool ->
  ?faults:Faults.t ->
  ?recorder:Skope_telemetry.Recorder.t ->
  ?on_queue:((unit -> int) -> unit) ->
  ?on_shutdown:(unit -> unit) ->
  net ->
  handler:(received_at:float -> string -> string) ->
  unit

(** Serve until SIGINT/SIGTERM, or until [stop] (checked a few times a
    second) becomes [true] — the embedding hook for in-process tests.
    [on_ready] (default: prints a "listening" line) receives the bound
    port — useful with [port = 0].  [serve] specialised to a fresh
    {!Dispatch.t}. *)
val run :
  ?stop:bool Atomic.t ->
  ?on_ready:(int -> unit) ->
  ?handle_signals:bool ->
  config ->
  unit
