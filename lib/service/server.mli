(** `skoped` — the TCP server.

    One accept loop feeds a bounded {!Workqueue} drained by a fixed
    pool of OCaml 5 [Domain] workers; each worker reads one
    newline-terminated JSON request from its connection, writes the
    response line and closes.

    Reliability posture:
    - {b Admission control}: when the work queue is full, the accept
      loop does not block or let the kernel backlog absorb the load —
      it immediately writes a structured [overloaded] error (with a
      [retry_after_ms] hint derived from queue depth) and closes,
      bumping the [requests_shed] counter.
    - {b Per-connection deadlines}: every worker socket carries
      [SO_RCVTIMEO]/[SO_SNDTIMEO] from the config, so a stalled client
      costs one deadline, not a worker; expiries bump
      [connections_timed_out].
    - {b Graceful shutdown}: SIGINT/SIGTERM (or the [stop] flag) stop
      the accept loop; queued requests drain, workers join, and only
      then does [run] return.
    - {b Fault injection}: an optional {!Faults.t} perturbs
      connections (drop / delay / truncate / injected overload) for
      testing client resilience; every injection bumps
      [faults_injected]. *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port *)
  pool : int;  (** worker domains *)
  queue_capacity : int;
  read_timeout_s : float;  (** per-connection [SO_RCVTIMEO] *)
  write_timeout_s : float;  (** per-connection [SO_SNDTIMEO] *)
  faults : Faults.t option;  (** [None] in production *)
  dispatch : Dispatch.config;
}

val default_config : config

(** Serve until SIGINT/SIGTERM, or until [stop] (checked a few times a
    second) becomes [true] — the embedding hook for in-process tests.
    [on_ready] (default: prints a "listening" line) receives the bound
    port — useful with [port = 0]. *)
val run : ?stop:bool Atomic.t -> ?on_ready:(int -> unit) -> config -> unit
