(** Bounded blocking FIFO connecting the accept loop to the worker
    pool.  [push] blocks when full (backpressure on accept), [pop]
    blocks when empty. *)

type 'a t

val create : capacity:int -> 'a t

(** Blocks while the queue is at capacity. *)
val push : 'a t -> 'a -> unit

(** Non-blocking push; [false] when the queue is at capacity. *)
val try_push : 'a t -> 'a -> bool

(** Blocks while the queue is empty. *)
val pop : 'a t -> 'a

val length : 'a t -> int
val capacity : 'a t -> int
