module Json = Skope_report.Json

(* Latencies land in a fixed ring so memory stays bounded under
   sustained traffic; percentiles are computed over the ring's
   retained window (the most recent [reservoir_size] samples). *)
let reservoir_size = 65536

type t = {
  lock : Mutex.t;
  requests : (string * string, int) Hashtbl.t;
  mutable cache_hits : int;
  mutable cache_misses : int;
  samples : float array;
  mutable sample_count : int;  (** total observed, may exceed ring size *)
}

let create () =
  {
    lock = Mutex.create ();
    requests = Hashtbl.create 16;
    cache_hits = 0;
    cache_misses = 0;
    samples = Array.make reservoir_size 0.;
    sample_count = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let incr_request t ~kind ~outcome =
  with_lock t (fun () ->
      let key = (kind, outcome) in
      let n = Option.value ~default:0 (Hashtbl.find_opt t.requests key) in
      Hashtbl.replace t.requests key (n + 1))

let cache_hit t = with_lock t (fun () -> t.cache_hits <- t.cache_hits + 1)
let cache_miss t = with_lock t (fun () -> t.cache_misses <- t.cache_misses + 1)

let observe_latency t secs =
  with_lock t (fun () ->
      t.samples.(t.sample_count mod reservoir_size) <- secs;
      t.sample_count <- t.sample_count + 1)

type view = {
  requests : ((string * string) * int) list;
  total_requests : int;
  cache_hits : int;
  cache_misses : int;
  hit_rate : float;
  latency_count : int;
  p50 : float;
  p95 : float;
  p99 : float;
}

(* Nearest-rank percentile over a sorted array. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(min (n - 1) (max 0 (rank - 1)))
  end

let view t =
  with_lock t (fun () ->
      let requests =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.requests []
        |> List.sort compare
      in
      let total_requests = List.fold_left (fun a (_, n) -> a + n) 0 requests in
      let lookups = t.cache_hits + t.cache_misses in
      let hit_rate =
        if lookups = 0 then 0.
        else float_of_int t.cache_hits /. float_of_int lookups
      in
      let retained = min t.sample_count reservoir_size in
      let sorted = Array.sub t.samples 0 retained in
      Array.sort Float.compare sorted;
      {
        requests;
        total_requests;
        cache_hits = t.cache_hits;
        cache_misses = t.cache_misses;
        hit_rate;
        latency_count = t.sample_count;
        p50 = percentile sorted 0.50;
        p95 = percentile sorted 0.95;
        p99 = percentile sorted 0.99;
      })

let to_json (v : view) =
  Json.Obj
    [
      ( "requests",
        Json.List
          (List.map
             (fun ((kind, outcome), n) ->
               Json.Obj
                 [
                   ("kind", Json.String kind);
                   ("outcome", Json.String outcome);
                   ("count", Json.Int n);
                 ])
             v.requests) );
      ("total_requests", Json.Int v.total_requests);
      ("cache_hits", Json.Int v.cache_hits);
      ("cache_misses", Json.Int v.cache_misses);
      ("cache_hit_rate", Json.Float v.hit_rate);
      ("latency_count", Json.Int v.latency_count);
      ("latency_p50_ms", Json.Float (v.p50 *. 1e3));
      ("latency_p95_ms", Json.Float (v.p95 *. 1e3));
      ("latency_p99_ms", Json.Float (v.p99 *. 1e3));
    ]
