module Json = Skope_report.Json
module Hist = Skope_telemetry.Hist
module Agg = Skope_telemetry.Agg
module Prom = Skope_telemetry.Prom
module Span = Skope_telemetry.Span

(* Latencies land in the histogram's bounded sample ring so memory
   stays bounded under sustained traffic; percentiles are exact
   nearest-rank over the retained window (the most recent
   [latency_ring] samples). *)
let latency_ring = 8192

type t = {
  lock : Mutex.t;
  requests : (string * string, int) Hashtbl.t;
  mutable cache_hits : int;
  mutable cache_misses : int;
  latency : Hist.t;
  agg : Agg.t;  (** per-phase span durations *)
  gauges : (string, string * (unit -> float)) Hashtbl.t;
      (** name -> (help, sampler) *)
}

let create () =
  {
    lock = Mutex.create ();
    requests = Hashtbl.create 16;
    cache_hits = 0;
    cache_misses = 0;
    latency = Hist.create ~ring:latency_ring ();
    agg = Agg.create ();
    gauges = Hashtbl.create 8;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let incr_request t ~kind ~outcome =
  with_lock t (fun () ->
      let key = (kind, outcome) in
      let n = Option.value ~default:0 (Hashtbl.find_opt t.requests key) in
      Hashtbl.replace t.requests key (n + 1))

let cache_hit t = with_lock t (fun () -> t.cache_hits <- t.cache_hits + 1)
let cache_miss t = with_lock t (fun () -> t.cache_misses <- t.cache_misses + 1)
let observe_latency t secs = Hist.observe t.latency secs
let sink t = Agg.sink t.agg

let register_gauge t ~name ~help f =
  with_lock t (fun () -> Hashtbl.replace t.gauges name (help, f))

let reset t =
  with_lock t (fun () ->
      Hashtbl.reset t.requests;
      t.cache_hits <- 0;
      t.cache_misses <- 0);
  Hist.reset t.latency;
  Agg.reset t.agg

type view = {
  requests : ((string * string) * int) list;
  total_requests : int;
  cache_hits : int;
  cache_misses : int;
  hit_rate : float;
  latency_count : int;
  p50 : float;
  p95 : float;
  p99 : float;
  gauges : (string * float) list;
  counters : (string * float) list;
  phases : (string * Hist.snapshot) list;
}

let sample_gauges t =
  with_lock t (fun () ->
      Hashtbl.fold (fun name (_, f) acc -> (name, f ()) :: acc) t.gauges [])
  |> List.sort compare

let view t =
  let lat = Hist.snapshot t.latency in
  let gauges = sample_gauges t in
  let counters = List.sort compare (Span.counters ()) in
  let phases = Agg.snapshot t.agg in
  with_lock t (fun () ->
      let requests =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.requests []
        |> List.sort compare
      in
      let total_requests = List.fold_left (fun a (_, n) -> a + n) 0 requests in
      let lookups = t.cache_hits + t.cache_misses in
      let hit_rate =
        if lookups = 0 then 0.
        else float_of_int t.cache_hits /. float_of_int lookups
      in
      {
        requests;
        total_requests;
        cache_hits = t.cache_hits;
        cache_misses = t.cache_misses;
        hit_rate;
        latency_count = lat.Hist.count;
        p50 = lat.Hist.p50;
        p95 = lat.Hist.p95;
        p99 = lat.Hist.p99;
        gauges;
        counters;
        phases;
      })

let to_json (v : view) =
  Json.Obj
    [
      ( "requests",
        Json.List
          (List.map
             (fun ((kind, outcome), n) ->
               Json.Obj
                 [
                   ("kind", Json.String kind);
                   ("outcome", Json.String outcome);
                   ("count", Json.Int n);
                 ])
             v.requests) );
      ("total_requests", Json.Int v.total_requests);
      ("cache_hits", Json.Int v.cache_hits);
      ("cache_misses", Json.Int v.cache_misses);
      ("cache_hit_rate", Json.Float v.hit_rate);
      ("latency_count", Json.Int v.latency_count);
      ("latency_p50_ms", Json.Float (v.p50 *. 1e3));
      ("latency_p95_ms", Json.Float (v.p95 *. 1e3));
      ("latency_p99_ms", Json.Float (v.p99 *. 1e3));
      ( "gauges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) v.gauges) );
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) v.counters) );
      ( "phases",
        Json.List
          (List.map
             (fun (name, (s : Hist.snapshot)) ->
               Json.Obj
                 [
                   ("phase", Json.String name);
                   ("count", Json.Int s.Hist.count);
                   ("total_ms", Json.Float (s.Hist.sum *. 1e3));
                   ("p50_ms", Json.Float (s.Hist.p50 *. 1e3));
                   ("p95_ms", Json.Float (s.Hist.p95 *. 1e3));
                   ("p99_ms", Json.Float (s.Hist.p99 *. 1e3));
                 ])
             v.phases) );
    ]

(* Counter names arriving from [Span.count] are already snake_case
   identifiers; sanitize defensively anyway. *)
let prom_name s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    s

let prom_metrics t =
  let requests =
    with_lock t (fun () ->
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.requests []
        |> List.sort compare)
  in
  let hits, misses =
    with_lock t (fun () -> (t.cache_hits, t.cache_misses))
  in
  let gauges =
    with_lock t (fun () ->
        Hashtbl.fold
          (fun name (help, f) acc -> (name, help, f ()) :: acc)
          t.gauges [])
    |> List.sort compare
  in
  let metrics =
    [
      Prom.Counter
        {
          name = "skope_requests_total";
          help = "Requests served, by kind and outcome.";
          values =
            List.map
              (fun ((kind, outcome), n) ->
                ( [ ("kind", kind); ("outcome", outcome) ],
                  float_of_int n ))
              requests;
        };
      Prom.Counter
        {
          name = "skope_projection_cache_hits_total";
          help = "Projection cache lookups served from cache.";
          values = [ ([], float_of_int hits) ];
        };
      Prom.Counter
        {
          name = "skope_projection_cache_misses_total";
          help = "Projection cache lookups that ran the pipeline.";
          values = [ ([], float_of_int misses) ];
        };
      Prom.Histogram
        {
          name = "skope_request_latency_seconds";
          help = "End-to-end request service latency.";
          series = [ ([], Hist.snapshot t.latency) ];
        };
      Prom.Histogram
        {
          name = "skope_phase_duration_seconds";
          help = "Pipeline phase durations from telemetry spans.";
          series =
            List.map
              (fun (phase, s) -> ([ ("phase", phase) ], s))
              (Agg.snapshot t.agg);
        };
    ]
    @ List.map
        (fun (name, help, v) ->
          Prom.Gauge { name = prom_name name; help; values = [ ([], v) ] })
        gauges
    @ List.map
        (fun (name, v) ->
          Prom.Counter
            {
              name = Printf.sprintf "skope_%s_total" (prom_name name);
              help = "Process-wide telemetry counter.";
              values = [ ([], v) ];
            })
        (Span.counters ())
    @ [
        Prom.Gauge
          {
            name = "skope_build_info";
            help = "Build version and git revision (value is always 1).";
            values =
              [
                ( [ ("version", Core.Version.version);
                    ("git", Core.Version.git) ],
                  1. );
              ];
          };
      ]
  in
  Prom.render metrics
