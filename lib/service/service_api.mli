(** Typed builders for skoped request bodies.

    The client-side counterpart of {!Protocol}: [skope query], the
    tests and the load generator build their request bodies here
    instead of hand-assembling JSON.  Raw JSON remains a first-class
    escape hatch — {!Client.roundtrip} takes any string — but with
    these builders a typo is a type error and every built body parses
    back through {!Protocol.parse_request}. *)

module Json = Skope_report.Json

type query_opts = {
  scale : float option;  (** [None]: the workload's default scale *)
  top : int;
  coverage : float;
  leanness : float;
  overrides : (string * float) list;  (** machine-parameter overrides *)
  engine : string option;
      (** BET pricing engine ("tree"/"arena"); [None]: server default.
          Servers advertise supported names via [capabilities]
          ["bet_engines"]. *)
}

(** top 10, coverage 0.90, leanness 0.10, no scale, no overrides,
    server-default engine — the server-side defaults. *)
val default_query_opts : query_opts

type request =
  | Analyze of { workload : string; machine : string; opts : query_opts }
  | Sweep of {
      workload : string;
      machine : string;
      opts : query_opts;
      axis : string;  (** short axis key: bw, lat, vec, ... *)
      values : float list;
    }
  | Explore of {
      workload : string;
      machine : string;
      opts : query_opts;
      axes : (string * float list) list;  (** (short key, values) per axis *)
      sample : int option;
      seed : int option;
    }
  | Lint of {
      workload : string option;
      source : string option;
      scale : float option;
      deny_warnings : bool;
      disable : string list;
    }
  | Audit of {
      workload : string option;
      source : string option;
      scale : float option;
      machine : string option;  (** [None]: server default ("bgq") *)
      ranks : int option;  (** [None]: server default (4) *)
      deny_warnings : bool;
      disable : string list;
    }
  | Workloads
  | Machines
  | Stats
  | Metrics_prom
  | Version
  | Capabilities
  | Cluster_stats
      (** cluster topology + per-shard stats; router ([skope route]) only *)
  | Recent of { n : int option; errors_only : bool; min_ms : float option }
      (** flight-recorder readback: the last requests, newest first *)
  | Trace of { id : string }
      (** one request's span tree from the flight recorder *)

(** Constructor helpers with server-side defaults. *)

val recent :
  ?n:int -> ?errors_only:bool -> ?min_ms:float -> unit -> request

val trace : id:string -> unit -> request

val analyze :
  ?opts:query_opts -> workload:string -> machine:string -> unit -> request

val sweep :
  ?opts:query_opts ->
  workload:string ->
  machine:string ->
  axis:string ->
  values:float list ->
  unit ->
  request

val explore :
  ?opts:query_opts ->
  ?sample:int ->
  ?seed:int ->
  workload:string ->
  machine:string ->
  axes:(string * float list) list ->
  unit ->
  request

val lint_workload :
  ?scale:float -> ?deny_warnings:bool -> ?disable:string list -> string ->
  request

val lint_source : ?deny_warnings:bool -> ?disable:string list -> string -> request

val audit_workload :
  ?scale:float ->
  ?machine:string ->
  ?ranks:int ->
  ?deny_warnings:bool ->
  ?disable:string list ->
  string ->
  request

val audit_source :
  ?machine:string ->
  ?ranks:int ->
  ?deny_warnings:bool ->
  ?disable:string list ->
  string ->
  request

(** The wire ["kind"] of a request. *)
val kind : request -> string

(** The request as JSON; [timeout_ms] adds the per-request deadline,
    [trace_id]/[trace_parent] the [{"trace":{"id","parent"}}] context
    the server adopts instead of minting its own id. *)
val to_json :
  ?timeout_ms:float -> ?trace_id:string -> ?trace_parent:string -> request ->
  Json.t

(** The request as a one-line body ready for {!Client.roundtrip}. *)
val to_body :
  ?timeout_ms:float -> ?trace_id:string -> ?trace_parent:string -> request ->
  string

(** A decoded response envelope: the protocol version stamp, the
    [ok] verdict, and either the result or the error triple.  The
    client's retry loop uses this to recognize transient [overloaded]
    errors and their [retry_after_ms] backoff hint. *)
type response = {
  r_v : int option;  (** the ["v"] protocol stamp *)
  r_ok : bool;
  r_trace_id : string option;  (** the echoed request trace id *)
  r_result : Json.t option;
  r_error_code : string option;  (** e.g. ["overloaded"] *)
  r_error_message : string option;
  r_retry_after_ms : float option;  (** overloaded backoff hint *)
}

(** Decode one response line.  [Error] means the body was not a JSON
    object at all (a truncated or foreign payload). *)
val parse_response : string -> (response, string) result
