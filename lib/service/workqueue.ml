type 'a t = {
  capacity : int;
  items : 'a Queue.t;
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
}

let create ~capacity =
  {
    capacity = max 1 capacity;
    items = Queue.create ();
    lock = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
  }

let push t x =
  Mutex.lock t.lock;
  while Queue.length t.items >= t.capacity do
    Condition.wait t.not_full t.lock
  done;
  Queue.push x t.items;
  Condition.signal t.not_empty;
  Mutex.unlock t.lock

let try_push t x =
  Mutex.lock t.lock;
  let ok = Queue.length t.items < t.capacity in
  if ok then begin
    Queue.push x t.items;
    Condition.signal t.not_empty
  end;
  Mutex.unlock t.lock;
  ok

let pop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.items do
    Condition.wait t.not_empty t.lock
  done;
  let x = Queue.pop t.items in
  Condition.signal t.not_full;
  Mutex.unlock t.lock;
  x

let length t =
  Mutex.lock t.lock;
  let n = Queue.length t.items in
  Mutex.unlock t.lock;
  n

let capacity t = t.capacity
