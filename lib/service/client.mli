(** `skope query` — fault-tolerant client for a running `skoped`,
    doubling as a load generator.

    Every transport failure is a structured {!error}; {!request} wraps
    one-shot {!roundtrip} in a bounded, capped-exponential-backoff
    retry loop with seeded deterministic jitter.  Server [overloaded]
    responses are decoded into {!Overloaded} (with the server's
    [retry_after_ms] hint) so load shedding composes with client
    backoff instead of fighting it. *)

(** Terminal request outcomes:

    - [Timeout]: connect, read or write exceeded its deadline;
    - [Refused]: the connection could not be established (connection
      refused, unreachable network, ... — the errno is in the
      message);
    - [Overloaded]: the server shed the request (full work queue or
      injected fault) and hinted when to retry;
    - [Protocol]: the transport broke mid-exchange — unexpected EOF,
      truncated or non-JSON response, reset connection.

    Protocol-level failures of a well-delivered request (unknown
    workload, lint findings, ...) are NOT errors here: they come back
    as [Ok] response bodies with ["ok":false]. *)
type error =
  | Timeout of string
  | Refused of string
  | Overloaded of { retry_after_ms : float option; message : string }
  | Protocol of string

(** ["timeout" | "refused" | "overloaded" | "protocol"] — stable
    labels for scripts and metrics. *)
val error_label : error -> string

val error_message : error -> string
val pp_error : error Fmt.t

type timeouts = {
  connect_s : float;  (** TCP connect deadline, seconds *)
  read_s : float;  (** per-[read(2)] deadline ([SO_RCVTIMEO]) *)
  write_s : float;  (** per-[write(2)] deadline ([SO_SNDTIMEO]) *)
}

(** connect 5 s, read 30 s, write 30 s. *)
val default_timeouts : timeouts

(** Retry budget: up to [attempts] retries after the initial attempt,
    sleeping [backoff_ms] between tries. *)
type retry = {
  attempts : int;
  base_ms : float;  (** first backoff step *)
  max_ms : float;  (** hard cap on any single backoff *)
  seed : int;  (** jitter seed — same seed, same schedule *)
}

(** 3 retries, 50 ms base, 2 s cap, seed 42. *)
val default_retry : retry

(** Zero retries (single attempt). *)
val no_retry : retry

(** The backoff before retry [k] (0-based):
    [min max_ms (base_ms * 2^k)] scaled by a deterministic jitter in
    [0.5, 1.0] drawn from [(seed, k)].  Pure — tests can assert the
    exact schedule. *)
val backoff_ms : retry -> int -> float

(** One request/response round trip (a fresh connection per request,
    mirroring the server's one-request-per-connection protocol).
    No retries. *)
val roundtrip :
  ?timeouts:timeouts ->
  host:string ->
  port:int ->
  string ->
  (string, error) result

(** [roundtrip] plus the retry loop.  Retries only failures that are
    safe to repeat: [Overloaded] always; [Timeout]/[Refused]/
    [Protocol] when [idempotent] (the default — every kind in the
    current protocol is) or when the attempt failed before the request
    was sent.  Each retry bumps the [client_retries] telemetry counter
    and calls [on_retry] with the 0-based retry index and the error
    being retried.  An [Overloaded] hint extends the backoff when it
    is longer. *)
val request :
  ?timeouts:timeouts ->
  ?retry:retry ->
  ?idempotent:bool ->
  ?on_retry:(int -> error -> unit) ->
  host:string ->
  port:int ->
  string ->
  (string, error) result

type load_report = {
  requests : int;  (** completed *)
  failures : int;  (** terminally failed after retries *)
  retries : int;  (** total retries across all requests *)
  elapsed : float;  (** wall seconds *)
  throughput : float;  (** completed requests per second *)
  p50 : float;  (** seconds *)
  p95 : float;
  p99 : float;
}

(** Fire [repeat] copies of [body] from [concurrency] client threads
    (each thread jitters with [retry.seed + thread index]) and report
    throughput, retry volume and client-observed latency percentiles.
    [on_response] sees every successful response body, called from the
    issuing thread — the hook for per-shard accounting against a
    cluster router; the callback must synchronize its own state.
    [on_result] additionally sees every terminal outcome (success or
    failure) with its client-observed latency and per-request retry
    count — the hook for per-shard latency/retry breakdowns. *)
val load :
  ?timeouts:timeouts ->
  ?retry:retry ->
  ?on_response:(string -> unit) ->
  ?on_result:
    (result:(string, error) result ->
    latency_s:float ->
    retries:int ->
    unit) ->
  host:string ->
  port:int ->
  repeat:int ->
  concurrency:int ->
  string ->
  load_report

(** Like {!load}, but cycling over [bodies] round-robin by global
    request index — diverse-traffic load generation from a generated
    corpus.  The body schedule is a pure function of [(repeat,
    concurrency)], so a run is reproducible.
    @raise Invalid_argument when [bodies] is empty. *)
val load_multi :
  ?timeouts:timeouts ->
  ?retry:retry ->
  ?on_response:(string -> unit) ->
  ?on_result:
    (result:(string, error) result ->
    latency_s:float ->
    retries:int ->
    unit) ->
  host:string ->
  port:int ->
  repeat:int ->
  concurrency:int ->
  string array ->
  load_report

val pp_load_report : load_report Fmt.t
