(** `skope query` — client for a running `skoped`, doubling as a load
    generator. *)

(** One request/response round trip (a fresh connection per request,
    mirroring the server's one-request-per-connection protocol).
    [Error] carries a transport-level message; protocol-level errors
    come back as [Ok] response bodies with ["ok":false]. *)
val roundtrip : host:string -> port:int -> string -> (string, string) result

type load_report = {
  requests : int;  (** completed *)
  failures : int;  (** transport errors *)
  elapsed : float;  (** wall seconds *)
  throughput : float;  (** completed requests per second *)
  p50 : float;  (** seconds *)
  p95 : float;
  p99 : float;
}

(** Fire [repeat] copies of [body] from [concurrency] client threads
    and report throughput plus client-observed latency percentiles. *)
val load :
  host:string ->
  port:int ->
  repeat:int ->
  concurrency:int ->
  string ->
  load_report

val pp_load_report : load_report Fmt.t
