(** Seeded fault injection for `skoped` — a deterministic chaos layer.

    A {!spec} gives each fault class an independent probability; a
    seeded {!t} turns it into a reproducible stream of per-connection
    {!decision}s.  The server applies decisions at well-defined points
    of the connection lifecycle (see {!Server}), so every client
    retry/degradation path can be exercised deterministically in tests
    and in the smoke script: same seed, same spec, same traffic order
    — same faults.

    Spec strings are comma-separated [key=value] pairs:

    - [drop=P] — close the connection before reading the request;
    - [overload=P] — answer with a transient [overloaded] error
      (plus a [retry_after_ms] hint) instead of dispatching;
    - [truncate=P] — write only the first half of the response and
      close without the terminating newline;
    - [delay_p=P], [delay_ms=MS] — sleep [MS] milliseconds before
      writing the response, with probability [P].

    Example: [drop=0.3,delay_p=0.2,delay_ms=50,overload=0.1]. *)

type spec = {
  drop : float;  (** probability of dropping the connection *)
  overload : float;  (** probability of an injected overloaded reply *)
  truncate : float;  (** probability of truncating the response *)
  delay_p : float;  (** probability of delaying the response *)
  delay_ms : float;  (** delay length when a delay fires *)
}

(** All probabilities zero. *)
val no_faults : spec

(** Parse a spec string ([drop=0.3,delay_ms=50,...]).  Unknown keys,
    non-numeric values and probabilities outside [0, 1] are errors. *)
val spec_of_string : string -> (spec, string) result

val spec_to_string : spec -> string

type t

(** A fault stream: [spec] plus a seeded deterministic generator.
    Thread-safe — worker domains share one [t]. *)
val create : ?seed:int -> spec -> t

val spec : t -> spec

val seed : t -> int
(** The seed this stream was created with — stamped on the structured
    log event each injected fault emits, so a logged fault names the
    schedule that produced it. *)

(** What to do with one connection.  Fault classes draw independently
    (in the fixed order drop, overload, truncate, delay) so a given
    seed yields the same decision sequence regardless of which faults
    are enabled. *)
type decision = {
  d_drop : bool;
  d_overload : bool;
  d_truncate : bool;
  d_delay_ms : float option;
}

(** No faults fire. *)
val clean : decision

val decide : t -> decision

(** Number of faults a decision will inject (for the
    [faults_injected_total] counter). *)
val injected : decision -> int
