open Skope_hw
module Json = Skope_report.Json

type query = {
  workload : string;
  machine : string;
  overrides : (string * float) list;
  scale : float option;
  coverage : float;
  leanness : float;
  top : int;
  engine : Core.Pipeline.engine option;
      (** BET pricing engine; [None] means the server default (tree) *)
}

(** Lint either a bundled workload (by name) or an inline DSL source
    string — exactly one of the two. *)
type lint_query = {
  l_workload : string option;
  l_source : string option;
  l_scale : float option;
  l_deny_warnings : bool;
  l_disabled : string list;
}

(** Audit either a bundled workload (by name) or an inline DSL source
    string — exactly one of the two.  [a_machine] selects the cache
    geometry/balance for the working-set rules; [a_ranks] sizes the
    rank space for imbalance/deadlock checks when the workload has no
    rank-count input. *)
type audit_query = {
  a_workload : string option;
  a_source : string option;
  a_scale : float option;
  a_machine : string;
  a_ranks : int;
  a_deny_warnings : bool;
  a_disabled : string list;
}

(** Multi-axis exploration: the cartesian grid of [e_axes] (optionally
    latin-hypercube sampled down to [e_sample] points). *)
type explore_spec = {
  e_axes : Designspace.axis list;
  e_sample : int option;
  e_seed : int;
}

(** Flight-recorder readback: the last requests the server handled,
    newest first, optionally filtered to errors or slow requests. *)
type recent_query = {
  rc_n : int;
  rc_errors_only : bool;
  rc_min_ms : float option;
}

type request =
  | Analyze of query
  | Sweep of query * Designspace.axis
  | Explore of query * explore_spec
  | Lint of lint_query
  | Audit of audit_query
  | Workloads
  | Machines
  | Stats
  | Metrics_prom
  | Version
  | Capabilities
  | Cluster_stats
  | Recent of recent_query
  | Trace of string

(* Cross-process trace context: the id the caller minted (and wants
   echoed back) plus an opaque parent hop label for the span tree. *)
type trace_context = { t_id : string; t_parent : string option }

type envelope = { timeout_ms : float option; trace : trace_context option }

type error_code =
  | Parse_error
  | Invalid_request
  | Unknown_workload
  | Unknown_machine
  | Oversized
  | Deadline_exceeded
  | Overloaded
  | Internal

let error_code_to_string = function
  | Parse_error -> "parse_error"
  | Invalid_request -> "invalid_request"
  | Unknown_workload -> "unknown_workload"
  | Unknown_machine -> "unknown_machine"
  | Oversized -> "oversized"
  | Deadline_exceeded -> "deadline_exceeded"
  | Overloaded -> "overloaded"
  | Internal -> "internal"

let kind_label = function
  | Analyze _ -> "analyze"
  | Sweep _ -> "sweep"
  | Explore _ -> "explore"
  | Lint _ -> "lint"
  | Audit _ -> "audit"
  | Workloads -> "workloads"
  | Machines -> "machines"
  | Stats -> "stats"
  | Metrics_prom -> "metrics_prom"
  | Version -> "version"
  | Capabilities -> "capabilities"
  | Cluster_stats -> "cluster_stats"
  | Recent _ -> "recent"
  | Trace _ -> "trace"

(* Bump on any change a v1 client could not safely ignore; see the
   compatibility rules in protocol.mli. *)
let protocol_version = 1

(* [cluster_stats] is deliberately absent: every server parses it, but
   only the cluster router serves it — a plain skoped answers with
   [invalid_request], and the router appends the kind to the
   capabilities it proxies. *)

let request_kinds =
  [
    "analyze";
    "sweep";
    "explore";
    "lint";
    "audit";
    "workloads";
    "machines";
    "stats";
    "metrics_prom";
    "version";
    "capabilities";
    "recent";
    "trace";
  ]

(* --- request parsing ---------------------------------------------- *)

let ( let* ) = Result.bind

let invalid msg = Error (Invalid_request, msg)

let string_field json key =
  match Json.member key json with
  | Some (Json.String s) -> Ok s
  | Some _ -> invalid (Printf.sprintf "field %S must be a string" key)
  | None -> invalid (Printf.sprintf "missing required field %S" key)

let opt_number json key =
  match Json.member key json with
  | None | Some Json.Null -> Ok None
  | Some v -> (
    match Json.to_float_opt v with
    | Some f -> Ok (Some f)
    | None -> invalid (Printf.sprintf "field %S must be a number" key))

let opt_int json key ~default =
  match Json.member key json with
  | None | Some Json.Null -> Ok default
  | Some v -> (
    match Json.to_int_opt v with
    | Some i -> Ok i
    | None -> invalid (Printf.sprintf "field %S must be an integer" key))

let parse_overrides json =
  match Json.member "overrides" json with
  | None | Some Json.Null -> Ok []
  | Some (Json.Obj fields) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (k, v) :: rest -> (
        match Json.to_float_opt v with
        | Some f -> go ((k, f) :: acc) rest
        | None ->
          invalid (Printf.sprintf "override %S must be a number" k))
    in
    go [] fields
  | Some _ -> invalid "field \"overrides\" must be an object"

let opt_string json key =
  match Json.member key json with
  | None | Some Json.Null -> Ok None
  | Some (Json.String s) -> Ok (Some s)
  | Some _ -> invalid (Printf.sprintf "field %S must be a string" key)

let opt_bool json key ~default =
  match Json.member key json with
  | None | Some Json.Null -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ -> invalid (Printf.sprintf "field %S must be a boolean" key)

let opt_string_list json key =
  match Json.member key json with
  | None | Some Json.Null -> Ok []
  | Some (Json.List vs) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | Json.String s :: rest -> go (s :: acc) rest
      | _ -> invalid (Printf.sprintf "field %S must be a list of strings" key)
    in
    go [] vs
  | Some _ -> invalid (Printf.sprintf "field %S must be a list of strings" key)

let parse_lint json =
  let* l_workload = opt_string json "workload" in
  let* l_source = opt_string json "source" in
  let* () =
    match (l_workload, l_source) with
    | Some _, Some _ ->
      invalid "fields \"workload\" and \"source\" are mutually exclusive"
    | None, None -> invalid "one of \"workload\" or \"source\" is required"
    | _ -> Ok ()
  in
  let* l_scale = opt_number json "scale" in
  let* () =
    match l_scale with
    | Some s when s <= 0. || not (Float.is_finite s) ->
      invalid "field \"scale\" must be positive and finite"
    | _ -> Ok ()
  in
  let* l_deny_warnings = opt_bool json "deny_warnings" ~default:false in
  let* l_disabled = opt_string_list json "disable" in
  Ok { l_workload; l_source; l_scale; l_deny_warnings; l_disabled }

let parse_audit json =
  let* a_workload = opt_string json "workload" in
  let* a_source = opt_string json "source" in
  let* () =
    match (a_workload, a_source) with
    | Some _, Some _ ->
      invalid "fields \"workload\" and \"source\" are mutually exclusive"
    | None, None -> invalid "one of \"workload\" or \"source\" is required"
    | _ -> Ok ()
  in
  let* a_scale = opt_number json "scale" in
  let* () =
    match a_scale with
    | Some s when s <= 0. || not (Float.is_finite s) ->
      invalid "field \"scale\" must be positive and finite"
    | _ -> Ok ()
  in
  let* a_machine = opt_string json "machine" in
  let a_machine = Option.value ~default:"bgq" a_machine in
  let* a_ranks = opt_int json "ranks" ~default:4 in
  let* () =
    if a_ranks < 1 || a_ranks > 1024 then
      invalid "field \"ranks\" must be in [1, 1024]"
    else Ok ()
  in
  let* a_deny_warnings = opt_bool json "deny_warnings" ~default:false in
  let* a_disabled = opt_string_list json "disable" in
  Ok { a_workload; a_source; a_scale; a_machine; a_ranks; a_deny_warnings; a_disabled }

let parse_query json =
  let* workload = string_field json "workload" in
  let* machine = string_field json "machine" in
  let* overrides = parse_overrides json in
  let* scale = opt_number json "scale" in
  let* () =
    match scale with
    | Some s when s <= 0. || not (Float.is_finite s) ->
      invalid "field \"scale\" must be positive and finite"
    | _ -> Ok ()
  in
  let* coverage = opt_number json "coverage" in
  let coverage = Option.value ~default:0.90 coverage in
  let* () =
    if coverage <= 0. || coverage > 1. then
      invalid "field \"coverage\" must be in (0, 1]"
    else Ok ()
  in
  let* leanness = opt_number json "leanness" in
  let leanness = Option.value ~default:0.10 leanness in
  let* () =
    if leanness <= 0. || leanness > 1. then
      invalid "field \"leanness\" must be in (0, 1]"
    else Ok ()
  in
  let* top = opt_int json "top" ~default:10 in
  let* () =
    if top < 1 || top > 1000 then invalid "field \"top\" must be in [1, 1000]"
    else Ok ()
  in
  let* engine =
    match Json.member "engine" json with
    | None | Some Json.Null -> Ok None
    | Some (Json.String s) -> (
      match Core.Pipeline.engine_of_string s with
      | Some e -> Ok (Some e)
      | None ->
        invalid
          (Printf.sprintf "unknown engine %S (expected one of: %s)" s
             (String.concat ", " Core.Pipeline.engine_names)))
    | Some _ -> invalid "field \"engine\" must be a string"
  in
  Ok { workload; machine; overrides; scale; coverage; leanness; top; engine }

(* One axis from a {"axis":KEY,"values":[...]} object; the axis keys
   themselves live in Designspace so every layer agrees. *)
let parse_one_axis json =
  let* name = string_field json "axis" in
  let* values =
    match Json.member "values" json with
    | Some (Json.List vs) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | v :: rest -> (
          match Json.to_float_opt v with
          | Some f when Float.is_finite f -> go (f :: acc) rest
          | _ -> invalid "field \"values\" must be a list of finite numbers")
      in
      go [] vs
    | Some _ -> invalid "field \"values\" must be a list"
    | None -> invalid "missing required field \"values\""
  in
  let* () =
    if values = [] then invalid "field \"values\" must be non-empty"
    else if List.length values > 256 then
      invalid "field \"values\" is limited to 256 points"
    else Ok ()
  in
  Result.map_error
    (fun msg -> (Invalid_request, msg))
    (Designspace.axis_of_key name values)

let parse_axis json = parse_one_axis json

(* Explore carries {"axes":[{"axis":..,"values":..}, ...]} plus
   optional "sample" and "seed"; the full grid is capped so one
   request cannot monopolize a worker domain forever. *)
let max_grid_points = 4096

let parse_explore json =
  let* axes =
    match Json.member "axes" json with
    | Some (Json.List objs) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (Json.Obj _ as o) :: rest ->
          let* a = parse_one_axis o in
          go (a :: acc) rest
        | _ ->
          invalid "field \"axes\" must be a list of {axis, values} objects"
      in
      go [] objs
    | Some _ -> invalid "field \"axes\" must be a list of {axis, values} objects"
    | None -> invalid "missing required field \"axes\""
  in
  let* () = if axes = [] then invalid "field \"axes\" must be non-empty" else Ok () in
  let* () =
    let dup =
      List.find_opt
        (fun k ->
          List.length
            (List.filter (fun a -> Designspace.axis_key a = k)
               axes)
          > 1)
        (List.map Designspace.axis_key axes)
    in
    match dup with
    | Some k -> invalid (Printf.sprintf "axis %S appears more than once" k)
    | None -> Ok ()
  in
  let* e_sample =
    let* s = opt_int json "sample" ~default:0 in
    if s < 0 then invalid "field \"sample\" must be non-negative"
    else Ok (if s = 0 then None else Some s)
  in
  let* e_seed = opt_int json "seed" ~default:42 in
  let points =
    match e_sample with
    | Some n -> min n (Designspace.grid_size axes)
    | None -> Designspace.grid_size axes
  in
  let* () =
    if points > max_grid_points then
      invalid
        (Printf.sprintf
           "grid of %d points exceeds the limit of %d (use \"sample\")" points
           max_grid_points)
    else Ok ()
  in
  Ok { e_axes = axes; e_sample; e_seed }

let parse_recent json =
  let* rc_n = opt_int json "n" ~default:20 in
  let* () =
    if rc_n < 1 || rc_n > 1000 then invalid "field \"n\" must be in [1, 1000]"
    else Ok ()
  in
  let* rc_errors_only = opt_bool json "errors_only" ~default:false in
  let* rc_min_ms = opt_number json "min_ms" in
  let* () =
    match rc_min_ms with
    | Some v when v < 0. || not (Float.is_finite v) ->
      invalid "field \"min_ms\" must be non-negative and finite"
    | _ -> Ok ()
  in
  Ok { rc_n; rc_errors_only; rc_min_ms }

let max_trace_id_bytes = 128

let parse_trace json =
  match Json.member "trace" json with
  | None | Some Json.Null -> Ok None
  | Some (Json.Obj _ as obj) ->
    let* t_id = string_field obj "id" in
    let* () =
      if t_id = "" || String.length t_id > max_trace_id_bytes then
        invalid
          (Printf.sprintf
             "field \"trace\".\"id\" must be a non-empty string of at most %d \
              bytes"
             max_trace_id_bytes)
      else Ok ()
    in
    let* t_parent = opt_string obj "parent" in
    Ok (Some { t_id; t_parent })
  | Some _ -> invalid "field \"trace\" must be an object"

let parse_request body =
  match Json.of_string body with
  | Error msg -> Error (Parse_error, msg)
  | Ok json ->
    let* () =
      match json with
      | Json.Obj _ -> Ok ()
      | _ -> invalid "request must be a JSON object"
    in
    let* trace = parse_trace json in
    let* timeout_ms = opt_number json "timeout_ms" in
    let* () =
      match timeout_ms with
      | Some t when t <= 0. || not (Float.is_finite t) ->
        invalid "field \"timeout_ms\" must be positive and finite"
      | _ -> Ok ()
    in
    let* kind = string_field json "kind" in
    let* request =
      match kind with
      | "analyze" ->
        let* q = parse_query json in
        Ok (Analyze q)
      | "sweep" ->
        let* q = parse_query json in
        let* axis = parse_axis json in
        Ok (Sweep (q, axis))
      | "explore" ->
        let* q = parse_query json in
        let* spec = parse_explore json in
        Ok (Explore (q, spec))
      | "lint" ->
        let* q = parse_lint json in
        Ok (Lint q)
      | "audit" ->
        let* q = parse_audit json in
        Ok (Audit q)
      | "workloads" -> Ok Workloads
      | "machines" -> Ok Machines
      | "stats" -> Ok Stats
      | "metrics_prom" -> Ok Metrics_prom
      | "version" -> Ok Version
      | "capabilities" -> Ok Capabilities
      | "cluster_stats" -> Ok Cluster_stats
      | "recent" ->
        let* q = parse_recent json in
        Ok (Recent q)
      | "trace" ->
        let* id = string_field json "id" in
        let* () =
          if id = "" then invalid "field \"id\" must be a non-empty string"
          else Ok ()
        in
        Ok (Trace id)
      | other -> invalid (Printf.sprintf "unknown request kind %S" other)
    in
    Ok (request, { timeout_ms; trace })

(* --- machine resolution ------------------------------------------- *)

let apply_override (m : Machine.t) key value =
  let pos name =
    if value > 0. then Ok ()
    else invalid (Printf.sprintf "override %S must be positive" name)
  in
  match key with
  | "freq_ghz" ->
    let* () = pos key in
    Ok { m with Machine.freq_ghz = value }
  | "issue_width" ->
    let* () = pos key in
    Ok { m with Machine.issue_width = value }
  | "vector_width" ->
    let* () = pos key in
    Ok { m with Machine.vector_width = int_of_float value }
  | "flop_issue_per_cycle" ->
    let* () = pos key in
    Ok { m with Machine.flop_issue_per_cycle = value }
  | "div_latency" ->
    let* () = pos key in
    Ok { m with Machine.div_latency = value }
  | "vec_efficiency" ->
    if value < 0. || value > 1. then
      invalid "override \"vec_efficiency\" must be in [0, 1]"
    else Ok { m with Machine.vec_efficiency = value }
  | "mem_latency_cycles" ->
    let* () = pos key in
    Ok { m with Machine.mem_latency_cycles = value }
  | "mem_bw_gbs" ->
    let* () = pos key in
    Ok { m with Machine.mem_bw_gbs = value }
  | "mlp" ->
    let* () = pos key in
    Ok { m with Machine.mlp = value }
  | "l2_size_bytes" ->
    let* () = pos key in
    Ok
      {
        m with
        Machine.l2 = { m.Machine.l2 with Machine.size_bytes = int_of_float value };
      }
  | other -> invalid (Printf.sprintf "unknown machine override %S" other)

let resolve_machine (q : query) =
  match Machines.find q.machine with
  | None ->
    Error
      ( Unknown_machine,
        Printf.sprintf "unknown machine %S (try the machines request)"
          q.machine )
  | Some base ->
    List.fold_left
      (fun acc (k, v) ->
        let* m = acc in
        apply_override m k v)
      (Ok base) q.overrides

(* --- responses ----------------------------------------------------- *)

(* Every response leads with the protocol version stamp so clients
   can detect incompatible servers before touching the payload.
   [trace_id] (when the handler knows it) is echoed on success and
   failure alike — an additive field, so v stays 1. *)
let trace_field = function
  | Some id -> [ ("trace_id", Json.String id) ]
  | None -> []

let ok_response ?trace_id result =
  Json.to_string
    (Json.Obj
       ([ ("v", Json.Int protocol_version); ("ok", Json.Bool true) ]
       @ trace_field trace_id
       @ [ ("result", result) ]))

let error_response ?retry_after_ms ?trace_id code message =
  Json.to_string
    (Json.Obj
       ([ ("v", Json.Int protocol_version); ("ok", Json.Bool false) ]
       @ trace_field trace_id
       @ [
           ( "error",
             Json.Obj
               ([
                  ("code", Json.String (error_code_to_string code));
                  ("message", Json.String message);
                ]
               @
               match retry_after_ms with
               | Some ms -> [ ("retry_after_ms", Json.Float ms) ]
               | None -> []) );
         ]))
