(** Thread-safe LRU cache with string keys.

    O(1) lookup, insert and eviction (hash table + intrusive doubly
    linked recency list), guarded by one mutex so `skoped` worker
    domains can share it. *)

type 'a t

(** [create ~capacity] holds at most [capacity] entries (at least 1). *)
val create : capacity:int -> 'a t

(** Lookup; a hit promotes the entry to most-recently-used. *)
val find : 'a t -> string -> 'a option

(** Insert or replace; evicts the least-recently-used entry when over
    capacity. *)
val add : 'a t -> string -> 'a -> unit

val mem : 'a t -> string -> bool
val length : 'a t -> int
val capacity : 'a t -> int
val clear : 'a t -> unit

(** Keys from most- to least-recently used (for tests/debugging). *)
val keys : 'a t -> string list
