module Span = Skope_telemetry.Span

(* --- structured errors ---------------------------------------------- *)

type error =
  | Timeout of string
  | Refused of string
  | Overloaded of { retry_after_ms : float option; message : string }
  | Protocol of string

let error_label = function
  | Timeout _ -> "timeout"
  | Refused _ -> "refused"
  | Overloaded _ -> "overloaded"
  | Protocol _ -> "protocol"

let error_message = function
  | Timeout m | Refused m | Protocol m -> m
  | Overloaded { message; _ } -> message

let pp_error ppf e = Fmt.pf ppf "%s: %s" (error_label e) (error_message e)

(* The stage at which an attempt failed decides whether a retry is
   safe for non-idempotent requests: a connect-stage failure means the
   request was never sent. *)
type stage = Connecting | Exchanging

let errno_message e fn = Printf.sprintf "%s (%s)" (Unix.error_message e) fn

let classify_unix stage e fn =
  match (stage, e) with
  | _, (Unix.ETIMEDOUT | Unix.EAGAIN | Unix.EWOULDBLOCK) ->
    Timeout (errno_message e fn)
  | Connecting, _ -> Refused (errno_message e fn)
  | Exchanging, _ -> Protocol (errno_message e fn)

(* --- timeouts ------------------------------------------------------- *)

type timeouts = { connect_s : float; read_s : float; write_s : float }

let default_timeouts = { connect_s = 5.; read_s = 30.; write_s = 30. }

(* --- retry policy --------------------------------------------------- *)

type retry = { attempts : int; base_ms : float; max_ms : float; seed : int }

let default_retry = { attempts = 3; base_ms = 50.; max_ms = 2000.; seed = 42 }
let no_retry = { default_retry with attempts = 0 }

(* Stateless SplitMix64 finalizer: hash (seed, attempt) to a uniform
   in [0, 1).  Deterministic across runs and platforms, so a backoff
   schedule can be asserted byte-for-byte in tests. *)
let u01 ~seed k =
  let z =
    Int64.mul
      (Int64.add (Int64.of_int seed) (Int64.of_int (k + 1)))
      0x9E3779B97F4A7C15L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.

let backoff_ms retry k =
  let uncapped = retry.base_ms *. (2. ** float_of_int k) in
  let capped = Float.min retry.max_ms uncapped in
  (* Jitter scales into [0.5, 1.0]x so the cap stays a hard ceiling
     while concurrent clients still decorrelate. *)
  capped *. (0.5 +. (0.5 *. u01 ~seed:retry.seed k))

(* --- one attempt ---------------------------------------------------- *)

let close_quietly sock = try Unix.close sock with Unix.Unix_error _ -> ()

(* Non-blocking connect bounded by [connect_s]: a black-holed SYN must
   not pin the client for the kernel's minutes-long default. *)
let connect ~timeouts ~host ~port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
    Unix.set_nonblock sock;
    (try Unix.connect sock addr with
    | Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> (
      match Unix.select [] [ sock ] [] timeouts.connect_s with
      | _, [], _ ->
        close_quietly sock;
        raise
          (Unix.Unix_error
             (Unix.ETIMEDOUT, Printf.sprintf "connect to %s:%d" host port, ""))
      | _, _ :: _, _ -> (
        match Unix.getsockopt_error sock with
        | Some e -> raise (Unix.Unix_error (e, "connect", ""))
        | None -> ())));
    Unix.clear_nonblock sock;
    Unix.setsockopt_float sock Unix.SO_RCVTIMEO timeouts.read_s;
    Unix.setsockopt_float sock Unix.SO_SNDTIMEO timeouts.write_s;
    Ok sock
  with Unix.Unix_error (e, fn, _) ->
    close_quietly sock;
    Error (classify_unix Connecting e fn)

let rec write_all fd bytes pos len =
  if len > 0 then begin
    let n = Unix.write fd bytes pos len in
    write_all fd bytes (pos + n) (len - n)
  end

(* Read one newline-terminated response.  EOF before the newline is a
   distinct, structured outcome: an empty buffer means the server
   closed without answering (or dropped us), a non-empty one means the
   response was truncated mid-flight. *)
let read_response fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 ->
      if Buffer.length buf = 0 then
        Error (Protocol "server closed the connection without a response")
      else
        Error
          (Protocol
             (Printf.sprintf
                "truncated response (%d bytes, no terminating newline)"
                (Buffer.length buf)))
    | n -> (
      match Bytes.index_from_opt chunk 0 '\n' with
      | Some i when i < n ->
        Buffer.add_subbytes buf chunk 0 i;
        Ok (Buffer.contents buf)
      | _ ->
        Buffer.add_subbytes buf chunk 0 n;
        go ())
  in
  go ()

(* A complete response that decodes to an [overloaded] envelope is a
   transient, retryable failure — surface it as a structured error so
   the retry loop (and the caller) can honor the backoff hint. *)
let classify_body response =
  match Service_api.parse_response response with
  | Ok { r_ok = false; r_error_code = Some "overloaded"; r_error_message;
         r_retry_after_ms; _ } ->
    Error
      (Overloaded
         {
           retry_after_ms = r_retry_after_ms;
           message =
             Option.value ~default:"server overloaded" r_error_message;
         })
  | Ok _ -> Ok response
  | Error msg -> Error (Protocol msg)

let attempt ~timeouts ~host ~port body =
  match connect ~timeouts ~host ~port with
  | Error e -> Error (Connecting, e)
  | Ok sock ->
    (* [close] failures must not mask the exchange's result: the
       socket is closed outside the result computation, and a close
       error on an already-failed connection is deliberately dropped. *)
    let result =
      try
        let line = Bytes.of_string (body ^ "\n") in
        write_all sock line 0 (Bytes.length line);
        read_response sock
      with Unix.Unix_error (e, fn, _) ->
        Error (classify_unix Exchanging e fn)
    in
    close_quietly sock;
    (match result with
    | Ok response -> Result.map_error (fun e -> (Exchanging, e)) (classify_body response)
    | Error e -> Error (Exchanging, e))

let roundtrip ?(timeouts = default_timeouts) ~host ~port body =
  Result.map_error snd (attempt ~timeouts ~host ~port body)

(* --- retry loop ----------------------------------------------------- *)

let retryable ~idempotent stage = function
  | Overloaded _ -> true
  | Timeout _ | Refused _ | Protocol _ -> idempotent || stage = Connecting

let request ?(timeouts = default_timeouts) ?(retry = default_retry)
    ?(idempotent = true) ?on_retry ~host ~port body =
  let rec go k =
    match attempt ~timeouts ~host ~port body with
    | Ok response -> Ok response
    | Error (stage, e) ->
      if k >= retry.attempts || not (retryable ~idempotent stage e) then
        Error e
      else begin
        Span.count "client_retries" 1.;
        (match on_retry with Some f -> f k e | None -> ());
        let wait = backoff_ms retry k in
        (* An explicit server hint dominates the local schedule: the
           server knows how long its queue needs to drain. *)
        let wait =
          match e with
          | Overloaded { retry_after_ms = Some hint; _ } -> Float.max wait hint
          | _ -> wait
        in
        Thread.delay (wait /. 1e3);
        go (k + 1)
      end
  in
  go 0

(* --- load generator ------------------------------------------------- *)

type load_report = {
  requests : int;
  failures : int;
  retries : int;
  elapsed : float;
  throughput : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(min (n - 1) (max 0 (rank - 1)))
  end

let load_multi ?(timeouts = default_timeouts) ?(retry = default_retry)
    ?on_response ?on_result ~host ~port ~repeat ~concurrency bodies =
  if Array.length bodies = 0 then invalid_arg "Client.load_multi: no bodies";
  let repeat = max 1 repeat and concurrency = max 1 concurrency in
  let lock = Mutex.create () in
  let latencies = ref [] and failures = ref 0 and retries = ref 0 in
  let record dt ok my_retries =
    Mutex.lock lock;
    if ok then latencies := dt :: !latencies else incr failures;
    retries := !retries + my_retries;
    Mutex.unlock lock
  in
  (* Thread [i] owns requests i, i+K, i+2K, ... so shares sum to
     [repeat] exactly. *)
  let share i = (repeat - i + concurrency - 1) / concurrency in
  (* Decorrelate the threads' jitter streams while keeping the whole
     run reproducible for a given policy seed. *)
  let thread_retry i = { retry with seed = retry.seed + i } in
  let run_thread i () =
    let retry = thread_retry i in
    for k = 1 to share i do
      (* Retries are counted per request so [on_result] can attribute
         them (the per-shard retries column in loadgen stats). *)
      let my_retries = ref 0 in
      let on_retry k _ = if k >= !my_retries then my_retries := k + 1 in
      (* Thread [i] owns global request indices i, i+K, ...; cycling
         bodies by that index spreads a corpus round-robin across the
         whole run regardless of concurrency. *)
      let body =
        bodies.((i + ((k - 1) * concurrency)) mod Array.length bodies)
      in
      let t0 = Unix.gettimeofday () in
      let result = request ~timeouts ~retry ~on_retry ~host ~port body in
      let dt = Unix.gettimeofday () -. t0 in
      (match result with
      | Ok response ->
        (match on_response with Some f -> f response | None -> ());
        record dt true !my_retries
      | Error _ -> record 0. false !my_retries);
      match on_result with
      | Some f -> f ~result ~latency_s:dt ~retries:!my_retries
      | None -> ()
    done
  in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init concurrency (fun i -> Thread.create (run_thread i) ())
  in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  let sorted = Array.of_list !latencies in
  Array.sort Float.compare sorted;
  let requests = Array.length sorted in
  {
    requests;
    failures = !failures;
    retries = !retries;
    elapsed;
    throughput = (if elapsed > 0. then float_of_int requests /. elapsed else 0.);
    p50 = percentile sorted 0.50;
    p95 = percentile sorted 0.95;
    p99 = percentile sorted 0.99;
  }

let load ?timeouts ?retry ?on_response ?on_result ~host ~port ~repeat
    ~concurrency body =
  load_multi ?timeouts ?retry ?on_response ?on_result ~host ~port ~repeat
    ~concurrency [| body |]

let pp_load_report ppf r =
  Fmt.pf ppf
    "%d requests (%d failed, %d retries) in %.2fs: %.0f req/s; latency p50 \
     %.3f ms, p95 %.3f ms, p99 %.3f ms"
    r.requests r.failures r.retries r.elapsed r.throughput (r.p50 *. 1e3)
    (r.p95 *. 1e3) (r.p99 *. 1e3)
