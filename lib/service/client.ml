let connect ~host ~port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.setsockopt_float sock Unix.SO_RCVTIMEO 30.;
    Unix.setsockopt_float sock Unix.SO_SNDTIMEO 30.;
    Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    Ok sock
  with Unix.Unix_error (e, _, _) ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    Error (Unix.error_message e)

let rec write_all fd bytes pos len =
  if len > 0 then begin
    let n = Unix.write fd bytes pos len in
    write_all fd bytes (pos + n) (len - n)
  end

let read_response fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents buf
    | n -> (
      match Bytes.index_from_opt chunk 0 '\n' with
      | Some i when i < n ->
        Buffer.add_subbytes buf chunk 0 i;
        Buffer.contents buf
      | _ ->
        Buffer.add_subbytes buf chunk 0 n;
        go ())
  in
  go ()

let roundtrip ~host ~port body =
  match connect ~host ~port with
  | Error _ as e -> e
  | Ok sock ->
    Fun.protect
      ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
      (fun () ->
        try
          let line = Bytes.of_string (body ^ "\n") in
          write_all sock line 0 (Bytes.length line);
          match read_response sock with
          | "" -> Error "empty response (server closed the connection)"
          | r -> Ok r
        with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))

type load_report = {
  requests : int;
  failures : int;
  elapsed : float;
  throughput : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(min (n - 1) (max 0 (rank - 1)))
  end

let load ~host ~port ~repeat ~concurrency body =
  let repeat = max 1 repeat and concurrency = max 1 concurrency in
  let lock = Mutex.create () in
  let latencies = ref [] and failures = ref 0 in
  let record dt ok =
    Mutex.lock lock;
    if ok then latencies := dt :: !latencies else incr failures;
    Mutex.unlock lock
  in
  (* Thread [i] owns requests i, i+K, i+2K, ... so shares sum to
     [repeat] exactly. *)
  let share i = (repeat - i + concurrency - 1) / concurrency in
  let run_thread i () =
    for _ = 1 to share i do
      let t0 = Unix.gettimeofday () in
      match roundtrip ~host ~port body with
      | Ok _ -> record (Unix.gettimeofday () -. t0) true
      | Error _ -> record 0. false
    done
  in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init concurrency (fun i -> Thread.create (run_thread i) ())
  in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  let sorted = Array.of_list !latencies in
  Array.sort Float.compare sorted;
  let requests = Array.length sorted in
  {
    requests;
    failures = !failures;
    elapsed;
    throughput = (if elapsed > 0. then float_of_int requests /. elapsed else 0.);
    p50 = percentile sorted 0.50;
    p95 = percentile sorted 0.95;
    p99 = percentile sorted 0.99;
  }

let pp_load_report ppf r =
  Fmt.pf ppf
    "%d requests (%d failed) in %.2fs: %.0f req/s; latency p50 %.3f ms, p95 \
     %.3f ms, p99 %.3f ms"
    r.requests r.failures r.elapsed r.throughput (r.p50 *. 1e3) (r.p95 *. 1e3)
    (r.p99 *. 1e3)
