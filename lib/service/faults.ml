type spec = {
  drop : float;
  overload : float;
  truncate : float;
  delay_p : float;
  delay_ms : float;
}

let no_faults =
  { drop = 0.; overload = 0.; truncate = 0.; delay_p = 0.; delay_ms = 0. }

let spec_of_string s =
  let ( let* ) = Result.bind in
  let parse_field acc field =
    let* acc = acc in
    match String.index_opt field '=' with
    | None -> Error (Printf.sprintf "invalid fault %S (expected KEY=VALUE)" field)
    | Some i -> (
      let key = String.sub field 0 i in
      let raw = String.sub field (i + 1) (String.length field - i - 1) in
      match float_of_string_opt raw with
      | None -> Error (Printf.sprintf "fault %S: %S is not a number" key raw)
      | Some v ->
        let* p =
          (* delay_ms is a duration; everything else is a probability. *)
          if key = "delay_ms" then
            if v < 0. || not (Float.is_finite v) then
              Error "fault \"delay_ms\" must be a non-negative duration"
            else Ok v
          else if v < 0. || v > 1. then
            Error (Printf.sprintf "fault %S must be a probability in [0, 1]" key)
          else Ok v
        in
        (match key with
        | "drop" -> Ok { acc with drop = p }
        | "overload" -> Ok { acc with overload = p }
        | "truncate" -> Ok { acc with truncate = p }
        | "delay_p" -> Ok { acc with delay_p = p }
        | "delay_ms" -> Ok { acc with delay_ms = p }
        | other ->
          Error
            (Printf.sprintf
               "unknown fault %S (drop, overload, truncate, delay_p, delay_ms)"
               other)))
  in
  String.split_on_char ',' s
  |> List.filter (fun f -> String.trim f <> "")
  |> List.map String.trim
  |> List.fold_left parse_field (Ok no_faults)

let spec_to_string s =
  [
    ("drop", s.drop);
    ("overload", s.overload);
    ("truncate", s.truncate);
    ("delay_p", s.delay_p);
    ("delay_ms", s.delay_ms);
  ]
  |> List.filter (fun (_, v) -> v > 0.)
  |> List.map (fun (k, v) -> Printf.sprintf "%s=%g" k v)
  |> String.concat ","

(* SplitMix64 — tiny, seedable, and identical on every platform, so a
   fault schedule in a test or the smoke script replays exactly. *)
type t = { s : spec; seed : int; state : int64 ref; lock : Mutex.t }

let create ?(seed = 42) s =
  { s; seed; state = ref (Int64.of_int seed); lock = Mutex.create () }

let spec t = t.s
let seed t = t.seed

let next_u01 t =
  Mutex.lock t.lock;
  let z = Int64.add !(t.state) 0x9E3779B97F4A7C15L in
  t.state := z;
  Mutex.unlock t.lock;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  (* 53 random bits -> [0, 1) *)
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.

type decision = {
  d_drop : bool;
  d_overload : bool;
  d_truncate : bool;
  d_delay_ms : float option;
}

let clean =
  { d_drop = false; d_overload = false; d_truncate = false; d_delay_ms = None }

let decide t =
  (* Always draw all four so the stream position does not depend on
     which faults are enabled or fire. *)
  let drop = next_u01 t < t.s.drop in
  let overload = next_u01 t < t.s.overload in
  let truncate = next_u01 t < t.s.truncate in
  let delay = next_u01 t < t.s.delay_p in
  {
    d_drop = drop;
    d_overload = (not drop) && overload;
    d_truncate = (not drop) && (not overload) && truncate;
    d_delay_ms = (if (not drop) && delay then Some t.s.delay_ms else None);
  }

let injected d =
  (if d.d_drop then 1 else 0)
  + (if d.d_overload then 1 else 0)
  + (if d.d_truncate then 1 else 0)
  + match d.d_delay_ms with Some _ -> 1 | None -> 0
