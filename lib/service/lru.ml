type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (** toward MRU *)
  mutable next : 'a node option;  (** toward LRU *)
}

type 'a t = {
  capacity : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (** most recently used *)
  mutable tail : 'a node option;  (** least recently used *)
  lock : Mutex.t;
}

let create ~capacity =
  let capacity = max 1 capacity in
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    lock = Mutex.create ();
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* List surgery below assumes the lock is held. *)

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let promote t node =
  if t.head != Some node then begin
    unlink t node;
    push_front t node
  end

let find t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | None -> None
      | Some node ->
        promote t node;
        Some node.value)

let mem t key = with_lock t (fun () -> Hashtbl.mem t.table key)

let add t key value =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some node ->
        node.value <- value;
        promote t node
      | None ->
        let node = { key; value; prev = None; next = None } in
        Hashtbl.replace t.table key node;
        push_front t node;
        if Hashtbl.length t.table > t.capacity then
          match t.tail with
          | Some lru ->
            unlink t lru;
            Hashtbl.remove t.table lru.key;
            Skope_telemetry.Span.count "lru_evictions" 1.
          | None -> ())

let length t = with_lock t (fun () -> Hashtbl.length t.table)
let capacity t = t.capacity

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.table;
      t.head <- None;
      t.tail <- None)

let keys t =
  with_lock t (fun () ->
      let rec go acc = function
        | None -> List.rev acc
        | Some node -> go (node.key :: acc) node.next
      in
      go [] t.head)
