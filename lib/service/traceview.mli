(** Wire rendering of flight-recorder records.

    One JSON dialect for the [{"kind":"recent"}] and
    [{"kind":"trace"}] responses, shared by the single-process server
    and the cluster router (which merges its own record with the
    owning shard's).  {!chrome_of_trace} turns a merged trace result
    back into a Chrome [trace_event] file, with one pid per process,
    so router and shard phases line up on one timeline. *)

module Json = Skope_report.Json
module Recorder = Skope_telemetry.Recorder

val record_to_json : Recorder.record -> Json.t
(** Full record: identity, outcome, timings and the span list
    ([{"id","parent","name","start","duration_ms","domain",
    "attrs","counters"}]). *)

val record_summary_json : Recorder.record -> Json.t
(** The [recent] row: everything but the span list (plus a
    ["spans"] count). *)

val trace_result : trace_id:string -> (string * Recorder.record) list -> Json.t
(** A [{"kind":"trace"}] result: [{"trace_id":…,"processes":[
    {"process":NAME,"record":…},…]}]. *)

val relabel_processes : process:string -> Json.t -> Json.t
(** Rewrite every ["process"] name in a trace result — the router
    stamps the owning shard's id over the shard's generic label. *)

val processes_of_trace : Json.t -> Json.t list
(** The ["processes"] entries of a trace result ([[]] if absent). *)

val chrome_of_trace : Json.t -> (string, string) result
(** Convert a trace result (as returned by {!trace_result}, possibly
    merged across processes) into Chrome [trace_event] JSON.  Each
    process gets its own pid and a process-name metadata event;
    timestamps are microseconds relative to the earliest span. *)
