(** Request execution: validation, catalog lookup, the projection
    cache, and metrics accounting.  Pure with respect to I/O — the
    server hands it a request body and writes back the returned
    string — so the whole protocol is testable without sockets. *)

module Json = Skope_report.Json

type config = {
  max_request_bytes : int;  (** larger bodies get an [oversized] error *)
  cache_capacity : int;  (** LRU slots for projection results *)
}

val default_config : config

type t = {
  config : config;
  cache : Json.t Lru.t;  (** fingerprint -> analyze result object *)
  metrics : Metrics.t;
  recorder : Skope_telemetry.Recorder.t;
      (** flight recorder behind [{"kind":"recent"}] / [{"kind":"trace"}] *)
}

val create : ?config:config -> unit -> t

(** Handle one request body, returning the response body (always a
    single-line JSON string, never raising).  [received_at] is when
    the request entered the system (defaults to now): queue wait
    counts toward both the request's [timeout_ms] deadline and its
    recorded latency.  A caller-supplied [{"trace":{"id":…}}] context
    is adopted (and echoed as ["trace_id"]); otherwise an id is
    minted. *)
val handle : ?received_at:float -> t -> string -> string
