module Json = Skope_report.Json
module Span = Skope_telemetry.Span
module Log = Skope_telemetry.Log
module Recorder = Skope_telemetry.Recorder
module P = Core.Pipeline
module Registry = Core.Workloads.Registry
module Machine = Core.Hw.Machine
module Machines = Core.Hw.Machines
module Designspace = Core.Hw.Designspace
module Hotspot = Core.Analysis.Hotspot
module Blockstat = Core.Analysis.Blockstat
module Roofline = Core.Hw.Roofline
module Explore = Skope_explore.Explore

type config = { max_request_bytes : int; cache_capacity : int }

let default_config = { max_request_bytes = 1 lsl 20; cache_capacity = 4096 }

type t = {
  config : config;
  cache : Json.t Lru.t;
  metrics : Metrics.t;
  recorder : Recorder.t;
}

let create ?(config = default_config) () =
  let cache = Lru.create ~capacity:config.cache_capacity in
  let metrics = Metrics.create () in
  let recorder = Recorder.create () in
  (* Fold pipeline spans into this dispatcher's per-phase histograms.
     The sink is process-global, so spans opened by CLI-embedded
     pipelines also land here — harmless, and it keeps the service
     path allocation-free when no dispatcher exists. *)
  Span.add_sink (Metrics.sink metrics);
  (* The flight recorder rides the same sink bus: spans carrying a
     ["trace_id"] context attribute land in that request's record. *)
  Span.add_sink (Recorder.sink recorder);
  Metrics.register_gauge metrics ~name:"skope_lru_entries"
    ~help:"Projection cache occupancy." (fun () ->
      float_of_int (Lru.length cache));
  Metrics.register_gauge metrics ~name:"skope_lru_capacity"
    ~help:"Projection cache capacity." (fun () ->
      float_of_int (Lru.capacity cache));
  { config; cache; metrics; recorder }

exception Reject of Protocol.error_code * string

let reject code msg = raise (Reject (code, msg))

(* --- result rendering ---------------------------------------------- *)

let json_of_spot rank total (b : Blockstat.t) =
  Json.Obj
    [
      ("rank", Json.Int rank);
      ("block", Json.String b.name);
      ("ms", Json.Float (b.time *. 1e3));
      ("share", Json.Float (if total > 0. then b.time /. total else 0.));
      ("enr", Json.Float b.enr);
      ("bound", Json.String (Fmt.str "%a" Roofline.pp_bound b.bound));
    ]

(* Shared outcome renderer: analyze, sweep points and explore points
   all serialize through here — whichever engine priced them — so a
   cache entry written by any of them is byte-identical for the
   others.  The engine is deliberately NOT part of a point's JSON
   (the two engines agree bit-for-bit, and differential gates diff
   these bytes); responses echo it at the top level instead. *)
let render_outcome ~(workload : Registry.t) ~(machine : Machine.t) ~scale ~top
    ~bet_nodes (o : P.Prepared.outcome) =
  Span.with_ ~name:"report" (fun () ->
  let total = o.P.Prepared.o_total_time in
  let spots =
    List.filteri (fun i _ -> i < top) o.P.Prepared.o_blocks
    |> List.mapi (fun i b -> json_of_spot (i + 1) total b)
  in
  let sel = o.P.Prepared.o_selection in
  let tc, tm, ov = Explore.split o in
  Json.Obj
    [
      ("workload", Json.String workload.Registry.name);
      ("machine", Json.String machine.Machine.name);
      ("scale", Json.Float scale);
      ("total_ms", Json.Float (total *. 1e3));
      ( "split",
        Json.Obj
          [
            ("tc_ms", Json.Float (tc *. 1e3));
            ("tm_ms", Json.Float (tm *. 1e3));
            ("to_ms", Json.Float (ov *. 1e3));
          ] );
      ("bet_nodes", Json.Int bet_nodes);
      ("spots", Json.List spots);
      ( "selection",
        Json.Obj
          [
            ("count", Json.Int (List.length sel.Hotspot.spots));
            ("coverage", Json.Float sel.Hotspot.coverage);
            ("leanness", Json.Float sel.Hotspot.leanness);
          ] );
    ])

let render_analysis ~(workload : Registry.t) ~(machine : Machine.t) ~scale ~top
    (a : P.analysis) =
  render_outcome ~workload ~machine ~scale ~top ~bet_nodes:a.P.a_built.node_count
    (P.Prepared.of_analysis a)

let analysis_result ~(workload : Registry.t) ~(machine : Machine.t) ~scale
    ~criteria ~top ~engine =
  match engine with
  | P.Tree ->
    let a = P.analyze ~criteria ~machine ~workload ~scale () in
    render_analysis ~workload ~machine ~scale ~top a
  | P.Arena ->
    let prep = P.Prepared.create ~engine ~workload ~scale () in
    let o = P.Prepared.project ~criteria prep machine in
    render_outcome ~workload ~machine ~scale ~top
      ~bet_nodes:(P.Prepared.built prep).node_count o

(* --- cached projection --------------------------------------------- *)

let lookup_workload name =
  match Registry.find name with
  | Some w -> w
  | None ->
    reject Protocol.Unknown_workload
      (Printf.sprintf "unknown workload %S (try the workloads request)" name)

(* One projection, through the cache.  The fingerprint covers every
   machine parameter (but the response embeds the machine's catalog
   name), so an [analyze] with overrides and a [sweep] variant with
   the same parameters share a slot. *)
let cached_analysis t ~(workload : Registry.t) ~(machine : Machine.t) ~scale
    ~criteria ~top ~engine =
  let key =
    Fingerprint.of_query ~workload:workload.Registry.name ~machine ~scale
      ~criteria ~top ~engine:(P.engine_to_string engine)
  in
  match Lru.find t.cache key with
  | Some json ->
    Metrics.cache_hit t.metrics;
    json
  | None ->
    Metrics.cache_miss t.metrics;
    let json =
      analysis_result ~workload ~machine ~scale ~criteria ~top ~engine
    in
    Lru.add t.cache key json;
    json

let resolve q =
  match Protocol.resolve_machine q with
  | Ok m -> m
  | Error (code, msg) -> reject code msg

let query_parts (q : Protocol.query) =
  let workload = lookup_workload q.Protocol.workload in
  let machine = resolve q in
  let scale =
    Option.value ~default:workload.Registry.default_scale q.Protocol.scale
  in
  let criteria =
    {
      Hotspot.time_coverage = q.Protocol.coverage;
      code_leanness = q.Protocol.leanness;
    }
  in
  let engine = Option.value ~default:P.Tree q.Protocol.engine in
  (workload, machine, scale, criteria, engine)

(* --- request kinds ------------------------------------------------- *)

let run_analyze t (q : Protocol.query) =
  let workload, machine, scale, criteria, engine = query_parts q in
  cached_analysis t ~workload ~machine ~scale ~criteria ~top:q.Protocol.top
    ~engine

(* One fan-out point (sweep variant or explore grid point), through
   the cache.  Unlike [cached_analysis] a miss does NOT rerun the full
   pipeline: it re-prices the shared prepared BET, which is the whole
   point — and under the arena engine, consecutive misses delta-chain
   through [prev] so a single-axis step re-prices only dependent
   nodes. *)
let cached_point t ~prepared ~prev ~(workload : Registry.t)
    ~(machine : Machine.t) ~scale ~criteria ~top ~engine =
  let key =
    Fingerprint.of_query ~workload:workload.Registry.name ~machine ~scale
      ~criteria ~top ~engine:(P.engine_to_string engine)
  in
  match Lru.find t.cache key with
  | Some json ->
    Metrics.cache_hit t.metrics;
    json
  | None ->
    Metrics.cache_miss t.metrics;
    let prep = Lazy.force prepared in
    let o =
      match !prev with
      | Some p -> P.Prepared.project_delta ~criteria ~prev:p prep machine
      | None -> P.Prepared.project ~criteria prep machine
    in
    prev := Some o;
    Span.count "explore_bet_reuse_hits" 1.;
    let json =
      render_outcome ~workload ~machine ~scale ~top
        ~bet_nodes:(P.Prepared.built prep).node_count o
    in
    Lru.add t.cache key json;
    json

let run_sweep t (q : Protocol.query) axis ~check_deadline =
  let workload, base, scale, criteria, engine = query_parts q in
  (* Arena sweeps share one prepared handle across all variants (and
     delta-chain them); the tree engine keeps the historical
     one-pipeline-per-variant path.  Both render identical points. *)
  let prepared =
    lazy
      (Span.with_ ~name:"prepare" (fun () ->
           P.Prepared.create ~engine ~workload ~scale ()))
  in
  let prev = ref None in
  let points =
    Designspace.variants base axis
    |> List.map (fun (tag, variant) ->
           (* Cooperative cancellation between fan-out points. *)
           check_deadline ();
           (* Re-normalize the variant's name so its fingerprint (and
              rendered result) match an equivalent override query. *)
           let machine = { variant with Machine.name = base.Machine.name } in
           let analysis =
             match engine with
             | P.Tree ->
               cached_analysis t ~workload ~machine ~scale ~criteria
                 ~top:q.Protocol.top ~engine
             | P.Arena ->
               cached_point t ~prepared ~prev ~workload ~machine ~scale
                 ~criteria ~top:q.Protocol.top ~engine
           in
           Json.Obj [ ("tag", Json.String tag); ("analysis", analysis) ])
  in
  Json.Obj
    [
      ("workload", Json.String workload.Registry.name);
      ("machine", Json.String base.Machine.name);
      ("engine", Json.String (P.engine_to_string engine));
      ("axis", Json.String (Designspace.axis_name axis));
      ("points", Json.List points);
    ]

let total_ms_of_analysis json =
  match Json.member "total_ms" json with
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | _ -> 0.

let run_explore t (q : Protocol.query) (spec : Protocol.explore_spec)
    ~check_deadline =
  let workload, base, scale, criteria, engine = query_parts q in
  let pts =
    Explore.grid_points ?sample:spec.Protocol.e_sample ~seed:spec.Protocol.e_seed
      base spec.Protocol.e_axes
  in
  let n = List.length pts in
  (* The machine-independent prefix, built at most once per request —
     and not at all when every point is served from the cache. *)
  let prepared =
    lazy
      (Span.with_ ~name:"prepare" (fun () ->
           P.Prepared.create ~engine ~workload ~scale ()))
  in
  let prev = ref None in
  let completed = ref 0 in
  let points =
    List.map
      (fun (pt : Designspace.point) ->
        (* Cooperative cancellation between grid points: a deadline
           mid-grid reports partial progress instead of hanging. *)
        (try check_deadline ()
         with Reject (code, msg) ->
           reject code
             (Printf.sprintf "%s after %d of %d points" msg !completed n));
        let machine = pt.Designspace.p_machine in
        let analysis =
          cached_point t ~prepared ~prev ~workload ~machine ~scale ~criteria
            ~top:q.Protocol.top ~engine
        in
        Span.count "explore_points_evaluated" 1.;
        incr completed;
        ( pt,
          total_ms_of_analysis analysis,
          Explore.cost_proxy machine,
          Json.Obj
            [ ("tag", Json.String pt.Designspace.p_tag); ("analysis", analysis) ]
        ))
      pts
  in
  let pareto =
    Explore.pareto_by ~metrics:(fun (_, t_ms, cost, _) -> (t_ms, cost)) points
    |> List.map (fun ((pt : Designspace.point), t_ms, cost, _) ->
           Json.Obj
             [
               ("tag", Json.String pt.Designspace.p_tag);
               ("total_ms", Json.Float t_ms);
               ("cost", Json.Float cost);
             ])
  in
  let axes =
    List.map
      (fun axis ->
        Json.Obj
          [
            ("axis", Json.String (Designspace.axis_key axis));
            ( "values",
              Json.List
                (List.map (fun v -> Json.Float v) (Designspace.axis_values axis))
            );
          ])
      spec.Protocol.e_axes
  in
  Json.Obj
    ([
       ("workload", Json.String workload.Registry.name);
       ("machine", Json.String base.Machine.name);
       ("engine", Json.String (P.engine_to_string engine));
       ("axes", Json.List axes);
       ("grid", Json.Int (Designspace.grid_size spec.Protocol.e_axes));
     ]
    @ (match spec.Protocol.e_sample with
      | Some s ->
        [ ("sample", Json.Int s); ("seed", Json.Int spec.Protocol.e_seed) ]
      | None -> [])
    @ [
        ("points", Json.List (List.map (fun (_, _, _, j) -> j) points));
        ("pareto", Json.List pareto);
      ])

let run_capabilities () =
  let strings ss = Json.List (List.map (fun s -> Json.String s) ss) in
  Json.Obj
    [
      ("protocol", Json.Int Protocol.protocol_version);
      ("kinds", strings Protocol.request_kinds);
      ("axes", strings Designspace.axis_keys);
      ("bet_engines", strings P.engine_names);
      ("max_grid_points", Json.Int Protocol.max_grid_points);
      ("version", Json.String Core.Version.version);
    ]

(* Lint requests are cheap (no projection) and parameterized by
   free-form source, so they bypass the cache. *)
let run_lint (q : Protocol.lint_query) =
  let module L = Core.Lint in
  let config =
    { L.Engine.default_config with L.Engine.disabled = q.Protocol.l_disabled }
  in
  let target, diags =
    match (q.Protocol.l_workload, q.Protocol.l_source) with
    | Some name, _ ->
      let w = lookup_workload name in
      let scale =
        Option.value ~default:w.Registry.default_scale q.Protocol.l_scale
      in
      let program, inputs = w.Registry.make ~scale in
      let validation =
        Core.Skeleton.Validate.check ~inputs:(List.map fst inputs) program
      in
      ( w.Registry.name,
        List.map L.Diagnostic.of_validate validation
        @ L.Engine.run ~config ~inputs program )
    | None, Some source -> (
      let file = "<request>" in
      match
        Span.with_ ~name:"parse" (fun () ->
            Core.Skeleton.Parser.parse ~file source)
      with
      | exception Core.Skeleton.Lexer.Error (loc, m) ->
        (file, [ L.Diagnostic.of_lex_error loc m ])
      | exception Core.Skeleton.Parser.Error (loc, m) ->
        (file, [ L.Diagnostic.of_parse_error loc m ])
      | program ->
        let validation = Core.Skeleton.Validate.check program in
        ( file,
          List.map L.Diagnostic.of_validate validation
          @ L.Engine.run ~config program ))
    | None, None ->
      (* unreachable: Protocol.parse_lint requires one of the two *)
      reject Protocol.Invalid_request "lint request has no target"
  in
  let diags = L.Diagnostic.normalize diags in
  let errors, warnings, infos = L.Diagnostic.counts diags in
  Json.Obj
    [
      ("target", Json.String target);
      ("diagnostics", L.Diagnostic.list_to_json diags);
      ("errors", Json.Int errors);
      ("warnings", Json.Int warnings);
      ("infos", Json.Int infos);
      ( "clean",
        Json.Bool
          (not (L.Diagnostic.fails ~deny_warnings:q.Protocol.l_deny_warnings diags))
      );
    ]

(* Audit requests follow the lint shape (free-form source, no
   projection cache); the per-target JSON comes from
   [Audit.result_json], the same renderer the CLI uses, so the two
   paths stay at parity. *)
let run_audit (q : Protocol.audit_query) =
  let module L = Core.Lint in
  let machine =
    match Machines.find q.Protocol.a_machine with
    | Some m -> m
    | None ->
      reject Protocol.Unknown_machine
        (Printf.sprintf "unknown machine %S" q.Protocol.a_machine)
  in
  let config =
    {
      L.Audit.default_config with
      L.Audit.disabled = q.Protocol.a_disabled;
      machine;
      ranks = q.Protocol.a_ranks;
    }
  in
  let deny_warnings = q.Protocol.a_deny_warnings in
  match (q.Protocol.a_workload, q.Protocol.a_source) with
  | Some name, _ ->
    let w = lookup_workload name in
    let scale =
      Option.value ~default:w.Registry.default_scale q.Protocol.a_scale
    in
    let report = P.audit ~config ~workload:w ~scale () in
    L.Audit.result_json ~target:w.Registry.name ~scale ~deny_warnings config report
  | None, Some source -> (
    let file = "<request>" in
    match
      Span.with_ ~name:"parse" (fun () -> Core.Skeleton.Parser.parse ~file source)
    with
    | exception Core.Skeleton.Lexer.Error (loc, m) ->
      L.Audit.diags_json ~target:file ~deny_warnings
        [ L.Diagnostic.of_lex_error loc m ]
    | exception Core.Skeleton.Parser.Error (loc, m) ->
      L.Audit.diags_json ~target:file ~deny_warnings
        [ L.Diagnostic.of_parse_error loc m ]
    | program -> (
      match
        List.map L.Diagnostic.of_validate (Core.Skeleton.Validate.check program)
      with
      | [] ->
        let report = L.Audit.run ~config program in
        L.Audit.result_json ~target:file ~deny_warnings config report
      | validation ->
        L.Audit.diags_json ~target:file ~deny_warnings
          (L.Diagnostic.normalize validation)))
  | None, None ->
    (* unreachable: Protocol.parse_audit requires one of the two *)
    reject Protocol.Invalid_request "audit request has no target"

let run_workloads () =
  Json.List
    (List.map
       (fun (w : Registry.t) ->
         Json.Obj
           [
             ("name", Json.String w.name);
             ("description", Json.String w.description);
             ("default_scale", Json.Float w.default_scale);
             ("paper_top_k", Json.Int w.paper_top_k);
           ])
       Registry.all)

let run_machines () =
  Json.List
    (List.map
       (fun (m : Machine.t) ->
         Json.Obj
           [
             ("name", Json.String m.name);
             ("freq_ghz", Json.Float m.freq_ghz);
             ("issue_width", Json.Float m.issue_width);
             ("vector_width", Json.Int m.vector_width);
             ("fma", Json.Bool m.fma);
             ("mem_bw_gbs", Json.Float m.mem_bw_gbs);
             ("mem_latency_cycles", Json.Float m.mem_latency_cycles);
             ("l2_size_bytes", Json.Int m.l2.size_bytes);
             ( "peak_gflops",
               Json.Float (Machine.peak_flops m /. 1e9) );
           ])
       Machines.all)

let run_metrics_prom t =
  Json.Obj
    [
      ("content_type", Json.String "text/plain; version=0.0.4");
      ("body", Json.String (Metrics.prom_metrics t.metrics));
    ]

let run_version () =
  Json.Obj
    [
      ("version", Json.String Core.Version.version);
      ("git", Json.String Core.Version.git);
      ("describe", Json.String Core.Version.describe);
    ]

let run_stats t =
  let v = Metrics.view t.metrics in
  Json.Obj
    [
      ("metrics", Metrics.to_json v);
      ( "cache",
        Json.Obj
          [
            ("entries", Json.Int (Lru.length t.cache));
            ("capacity", Json.Int (Lru.capacity t.cache));
          ] );
    ]

(* --- flight recorder readback -------------------------------------- *)

let run_recent t (q : Protocol.recent_query) =
  let records =
    Recorder.recent ~n:q.Protocol.rc_n ~errors_only:q.Protocol.rc_errors_only
      ?min_duration_ms:q.Protocol.rc_min_ms t.recorder
  in
  Json.Obj
    [
      ("count", Json.Int (List.length records));
      ("capacity", Json.Int (Recorder.capacity t.recorder));
      ("records", Json.List (List.map Traceview.record_summary_json records));
    ]

let run_trace t id =
  match Recorder.find t.recorder id with
  | Some r -> Traceview.trace_result ~trace_id:id [ ("skoped", r) ]
  | None ->
    reject Protocol.Invalid_request
      (Printf.sprintf
         "no record of trace %S (the flight recorder keeps the last %d \
          requests)"
         id
         (Recorder.capacity t.recorder))

(* The same cache key the LRU will use, recorded so a flight-recorder
   entry can be correlated with cache hits/misses and with the
   router's affinity decision for the same query. *)
let request_fingerprint = function
  | Protocol.Analyze q | Protocol.Sweep (q, _) | Protocol.Explore (q, _) -> (
    match Protocol.resolve_machine q with
    | Error _ -> None
    | Ok machine -> (
      match Registry.find q.Protocol.workload with
      | None -> None
      | Some w ->
        let scale =
          Option.value ~default:w.Registry.default_scale q.Protocol.scale
        in
        let criteria =
          {
            Hotspot.time_coverage = q.Protocol.coverage;
            code_leanness = q.Protocol.leanness;
          }
        in
        let engine = Option.value ~default:P.Tree q.Protocol.engine in
        Some
          (Fingerprint.of_query ~workload:q.Protocol.workload ~machine ~scale
             ~criteria ~top:q.Protocol.top
             ~engine:(P.engine_to_string engine))))
  | _ -> None

(* --- entry point --------------------------------------------------- *)

(* Per-request trace ids, process-wide so concurrent worker domains
   never collide.  Minted only when the caller did not send a trace
   context of its own: a request arriving through the cluster router
   (or from a client that wants to follow its query) already carries
   the id, and adopting it is what makes the id span processes. *)
let next_trace = Atomic.make 1

let mint_trace () =
  Printf.sprintf "req-%06d" (Atomic.fetch_and_add next_trace 1)

let handle ?received_at t body =
  let received_at =
    match received_at with Some x -> x | None -> Unix.gettimeofday ()
  in
  let queue_wait_ms =
    Float.max 0. ((Unix.gettimeofday () -. received_at) *. 1e3)
  in
  let parsed =
    if String.length body > t.config.max_request_bytes then
      Error
        ( Protocol.Oversized,
          Printf.sprintf "request body exceeds %d bytes"
            t.config.max_request_bytes )
    else Protocol.parse_request body
  in
  let trace_id, trace_parent =
    match parsed with
    | Ok (_, { Protocol.trace = Some tc; _ }) ->
      (tc.Protocol.t_id, tc.Protocol.t_parent)
    | _ -> (mint_trace (), None)
  in
  Recorder.begin_request t.recorder trace_id;
  let kind = ref "?" in
  let outcome = ref "ok" in
  let fingerprint = ref None in
  let response =
    Span.with_context ~attrs:[ ("trace_id", trace_id) ] @@ fun () ->
    Span.with_ ~name:"request" @@ fun () ->
    (match trace_parent with
    | Some p -> Span.set_attr "trace_parent" p
    | None -> ());
    try
      let request, envelope =
        match parsed with Ok x -> x | Error (code, msg) -> reject code msg
      in
      let timeout_ms = envelope.Protocol.timeout_ms in
      kind := Protocol.kind_label request;
      Span.set_attr "kind" !kind;
      fingerprint := request_fingerprint request;
      let check_deadline () =
        match timeout_ms with
        | Some ms when Unix.gettimeofday () -. received_at > ms /. 1e3 ->
          reject Protocol.Deadline_exceeded
            (Printf.sprintf "deadline of %g ms exceeded" ms)
        | _ -> ()
      in
      check_deadline ();
      let result =
        match request with
        | Protocol.Analyze q -> run_analyze t q
        | Protocol.Sweep (q, axis) -> run_sweep t q axis ~check_deadline
        | Protocol.Explore (q, spec) -> run_explore t q spec ~check_deadline
        | Protocol.Lint q -> run_lint q
        | Protocol.Audit q -> run_audit q
        | Protocol.Workloads -> run_workloads ()
        | Protocol.Machines -> run_machines ()
        | Protocol.Stats -> run_stats t
        | Protocol.Metrics_prom -> run_metrics_prom t
        | Protocol.Version -> run_version ()
        | Protocol.Capabilities -> run_capabilities ()
        | Protocol.Recent q -> run_recent t q
        | Protocol.Trace id -> run_trace t id
        | Protocol.Cluster_stats ->
          reject Protocol.Invalid_request
            "cluster_stats is served by the cluster router (skope route), \
             not by a single skoped"
      in
      Protocol.ok_response ~trace_id result
    with
    | Reject (code, msg) ->
      outcome := Protocol.error_code_to_string code;
      (match code with
      | Protocol.Deadline_exceeded ->
        Log.emit ~level:Log.Warn ~trace_id "deadline_exceeded"
          [ ("kind", Log.Str !kind); ("message", Log.Str msg) ]
      | _ -> ());
      Protocol.error_response ~trace_id code msg
    | exn ->
      outcome := Protocol.error_code_to_string Protocol.Internal;
      Log.emit ~level:Log.Error ~trace_id "internal_error"
        [ ("kind", Log.Str !kind); ("exn", Log.Str (Printexc.to_string exn)) ];
      Protocol.error_response ~trace_id Protocol.Internal
        (Printexc.to_string exn)
  in
  let finished_at = Unix.gettimeofday () in
  Metrics.incr_request t.metrics ~kind:!kind ~outcome:!outcome;
  Metrics.observe_latency t.metrics (finished_at -. received_at);
  Recorder.commit t.recorder ~trace_id ~kind:!kind ?fingerprint:!fingerprint
    ~outcome:!outcome ~queue_wait_ms ~start:received_at
    ~duration_ms:((finished_at -. received_at) *. 1e3) ();
  response
