open Skope_hw
open Skope_analysis

(* Floats are rendered with full precision so that any parameter
   perturbation — however small — yields a distinct key. *)
let f = Printf.sprintf "%.17g"

let cache_level (c : Machine.cache_level) =
  Printf.sprintf "%d/%d/%d/%s" c.size_bytes c.line_bytes c.assoc
    (f c.latency_cycles)

let canonical ~workload ~(machine : Machine.t) ~scale
    ~(criteria : Hotspot.criteria) ~top ~engine =
  String.concat ";"
    [
      "v2";
      "workload=" ^ workload;
      "engine=" ^ engine;
      "machine=" ^ machine.name;
      "freq=" ^ f machine.freq_ghz;
      "issue=" ^ f machine.issue_width;
      "vec=" ^ string_of_int machine.vector_width;
      "fma=" ^ string_of_bool machine.fma;
      "flop_issue=" ^ f machine.flop_issue_per_cycle;
      "div=" ^ f machine.div_latency;
      "vec_eff=" ^ f machine.vec_efficiency;
      "l1=" ^ cache_level machine.l1;
      "l2=" ^ cache_level machine.l2;
      "mem_lat=" ^ f machine.mem_latency_cycles;
      "mem_bw=" ^ f machine.mem_bw_gbs;
      "mlp=" ^ f machine.mlp;
      "scale=" ^ f scale;
      "coverage=" ^ f criteria.time_coverage;
      "leanness=" ^ f criteria.code_leanness;
      "top=" ^ string_of_int top;
    ]

let of_query ~workload ~machine ~scale ~criteria ~top ~engine =
  Digest.to_hex
    (Digest.string (canonical ~workload ~machine ~scale ~criteria ~top ~engine))
