module Span = Skope_telemetry.Span
module Log = Skope_telemetry.Log
module Recorder = Skope_telemetry.Recorder
module Json = Skope_report.Json

type net = {
  n_host : string;
  n_port : int;
  n_pool : int;
  n_queue_capacity : int;
  n_read_timeout_s : float;
  n_write_timeout_s : float;
  n_max_request_bytes : int;
}

let default_net =
  {
    n_host = "127.0.0.1";
    n_port = 0;
    n_pool = max 2 (Domain.recommended_domain_count () - 1);
    n_queue_capacity = 128;
    n_read_timeout_s = 10.;
    n_write_timeout_s = 10.;
    n_max_request_bytes = 1 lsl 20;
  }

type config = {
  host : string;
  port : int;
  pool : int;
  queue_capacity : int;
  read_timeout_s : float;
  write_timeout_s : float;
  faults : Faults.t option;
  dispatch : Dispatch.config;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7777;
    pool = max 2 (Domain.recommended_domain_count () - 1);
    queue_capacity = 128;
    read_timeout_s = 10.;
    write_timeout_s = 10.;
    faults = None;
    dispatch = Dispatch.default_config;
  }

(* A job is an accepted connection plus its accept timestamp (queue
   wait counts toward the request's deadline and latency). *)
type job = Conn of Unix.file_descr * float | Quit

let rec write_all fd bytes pos len =
  if len > 0 then begin
    let n = Unix.write fd bytes pos len in
    write_all fd bytes (pos + n) (len - n)
  end

(* Read up to (and including) one '\n', or EOF; [limit] bounds the
   total bytes buffered so an oversized body cannot exhaust memory —
   we keep one byte past the limit so the dispatcher sees "too big",
   not a truncated-but-valid body. *)
let read_line fd ~limit =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    if Buffer.length buf > limit then Buffer.contents buf
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> Buffer.contents buf
      | n -> (
        match Bytes.index_from_opt chunk 0 '\n' with
        | Some i when i < n ->
          Buffer.add_subbytes buf chunk 0 i;
          Buffer.contents buf
        | _ ->
          Buffer.add_subbytes buf chunk 0 n;
          go ())
  in
  go ()

(* The backoff hint sent with every shed or fault-injected overloaded
   response: roughly how long one queue slot takes to free up, scaled
   by how full the queue is.  Clamped so a misconfigured server never
   tells clients to hammer it or to go away for minutes. *)
let retry_after_ms ~queue_depth ~pool =
  let per_slot_ms = 25. in
  let slots_ahead = float_of_int (max 1 queue_depth) /. float_of_int (max 1 pool) in
  Float.max 25. (Float.min 1000. (per_slot_ms *. slots_ahead))

let overloaded_response ?trace_id ~queue ~pool message =
  Protocol.error_response
    ~retry_after_ms:(retry_after_ms ~queue_depth:(Workqueue.length queue) ~pool)
    ?trace_id Protocol.Overloaded message

let peer_label fd =
  match Unix.getpeername fd with
  | Unix.ADDR_INET (a, p) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | Unix.ADDR_UNIX s -> s
  | exception Unix.Unix_error _ -> "?"

(* Best-effort trace id extraction for fault log events.  Only runs
   when a fault actually fires (or a connection times out), so the
   happy path never parses the body twice.  A dropped connection's
   body is never read — its event carries no trace id. *)
let trace_id_of_body body =
  match Json.of_string body with
  | Error _ -> None
  | Ok json -> (
    match Option.bind (Json.member "trace" json) (Json.member "id") with
    | Some (Json.String s) -> Some s
    | _ -> None)

(* Every injected fault is attributable: the structured event names
   the fault class, the seed (so the schedule that produced it can be
   replayed), the peer, and the trace id when the body was read. *)
let count_fault ?trace_id ~faults ~fd fault =
  Span.count "faults_injected" 1.;
  Log.emit ~level:Log.Warn ?trace_id "fault_injected"
    ([ ("fault", Log.Str fault); ("peer", Log.Str (peer_label fd)) ]
    @
    match faults with
    | Some f ->
      [
        ("seed", Log.I (Faults.seed f));
        ("spec", Log.Str (Faults.spec_to_string (Faults.spec f)));
      ]
    | None -> [])

let handle_connection net faults handler queue fd accepted_at =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try
        (* A dead or stalled client must not pin a worker forever:
           every read/write on this socket carries its own deadline
           (slow-loris stalls surface as EAGAIN below). *)
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO net.n_read_timeout_s;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO net.n_write_timeout_s;
        let decision =
          match faults with
          | Some faults -> Faults.decide faults
          | None -> Faults.clean
        in
        if decision.Faults.d_drop then count_fault ~faults ~fd "drop"
          (* connection silently closed by [finally] — the client sees
             an unexpected EOF and retries *)
        else begin
          let body = read_line fd ~limit:net.n_max_request_bytes in
          let trace_id =
            if Faults.injected decision > 0 then trace_id_of_body body
            else None
          in
          let response =
            if decision.Faults.d_overload then begin
              count_fault ?trace_id ~faults ~fd "overload";
              overloaded_response ?trace_id ~queue ~pool:net.n_pool
                "injected transient overload (fault injection)"
            end
            else handler ~received_at:accepted_at body
          in
          (match decision.Faults.d_delay_ms with
          | Some ms ->
            count_fault ?trace_id ~faults ~fd "delay";
            Thread.delay (ms /. 1e3)
          | None -> ());
          let line = Bytes.of_string (response ^ "\n") in
          if decision.Faults.d_truncate then begin
            count_fault ?trace_id ~faults ~fd "truncate";
            (* Half the payload, no newline: the client must detect
               the torn frame rather than parse garbage. *)
            write_all fd line 0 (Bytes.length line / 2)
          end
          else write_all fd line 0 (Bytes.length line)
        end
      with
      | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
        ->
        Span.count "connections_timed_out" 1.;
        Log.emit ~level:Log.Warn "connection_timeout"
          [ ("peer", Log.Str (peer_label fd)) ]
      | Unix.Unix_error _ -> ())

let worker net faults handler queue =
  let rec loop () =
    match Workqueue.pop queue with
    | Quit -> ()
    | Conn (fd, accepted_at) ->
      handle_connection net faults handler queue fd accepted_at;
      loop ()
  in
  loop ()

(* Admission control: a full queue answers immediately with a
   structured overloaded error instead of blocking the accept loop
   (which would let the kernel backlog and client timeouts absorb the
   overload invisibly).  The response is a few hundred bytes into a
   fresh socket buffer, so the write cannot stall the accept loop. *)
(* Shed responses are minted before the body is read, so the caller's
   trace id is unknown; a synthetic "shed-N" id ties the response,
   the log event and the flight-recorder entry together. *)
let next_shed = Atomic.make 1

let shed ?recorder net queue fd =
  Span.count "requests_shed" 1.;
  let trace_id = Printf.sprintf "shed-%06d" (Atomic.fetch_and_add next_shed 1) in
  let depth = Workqueue.length queue in
  Log.emit ~level:Log.Warn ~trace_id "request_shed"
    [ ("queue_depth", Log.I depth); ("peer", Log.Str (peer_label fd)) ];
  (match recorder with
  | Some r ->
    let now = Unix.gettimeofday () in
    Recorder.commit r ~trace_id ~kind:"?"
      ~outcome:(Protocol.error_code_to_string Protocol.Overloaded)
      ~queue_wait_ms:0. ~start:now ~duration_ms:0. ()
  | None -> ());
  (try
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.;
     let response =
       overloaded_response ~trace_id ~queue ~pool:net.n_pool
         "work queue is full; retry after the hinted backoff"
       ^ "\n"
     in
     let line = Bytes.of_string response in
     write_all fd line 0 (Bytes.length line)
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* The generic accept-loop/worker-pool server: everything skoped
   except request execution, which is the [handler]'s business.  Both
   the single-process skoped ([run], handler = Dispatch.handle) and
   the cluster router (handler = Router.handle) are instances. *)
let serve ?stop ?on_ready ?(handle_signals = true) ?faults ?recorder ?on_queue
    ?on_shutdown net ~handler =
  let stop = match stop with Some s -> s | None -> Atomic.make false in
  let restore_signals =
    if handle_signals then begin
      let request_stop _ = Atomic.set stop true in
      let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle request_stop) in
      let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle request_stop) in
      let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
      fun () ->
        Sys.set_signal Sys.sigint prev_int;
        Sys.set_signal Sys.sigterm prev_term;
        Sys.set_signal Sys.sigpipe prev_pipe
    end
    else Fun.id
  in
  let queue = Workqueue.create ~capacity:net.n_queue_capacity in
  (match on_queue with
  | Some f -> f (fun () -> Workqueue.length queue)
  | None -> ());
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:restore_signals @@ fun () ->
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  let addr = Unix.inet_addr_of_string net.n_host in
  Unix.bind sock (Unix.ADDR_INET (addr, net.n_port));
  Unix.listen sock 64;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> net.n_port
  in
  (match on_ready with
  | Some f -> f port
  | None ->
    Fmt.pr "skoped listening on %s:%d (%d workers)@." net.n_host port
      net.n_pool;
    (* Scripts wait for this line before issuing queries. *)
    Format.pp_print_flush Format.std_formatter ());
  let workers =
    List.init net.n_pool (fun _ ->
        Domain.spawn (fun () -> worker net faults handler queue))
  in
  let rec accept_loop () =
    if not (Atomic.get stop) then begin
      (match Unix.select [ sock ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept sock with
        | fd, _ ->
          if not (Workqueue.try_push queue (Conn (fd, Unix.gettimeofday ())))
          then shed ?recorder net queue fd
        | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (* Graceful shutdown: no new connections; queued requests drain in
     FIFO order, then each worker sees one Quit and exits — in-flight
     work always finishes before the process does. *)
  List.iter (fun _ -> Workqueue.push queue Quit) workers;
  List.iter Domain.join workers;
  match on_shutdown with Some f -> f () | None -> ()

let run ?stop ?on_ready ?handle_signals config =
  let dispatch = Dispatch.create ~config:config.dispatch () in
  let net =
    {
      n_host = config.host;
      n_port = config.port;
      n_pool = config.pool;
      n_queue_capacity = config.queue_capacity;
      n_read_timeout_s = config.read_timeout_s;
      n_write_timeout_s = config.write_timeout_s;
      n_max_request_bytes = config.dispatch.Dispatch.max_request_bytes;
    }
  in
  let on_ready =
    match on_ready with
    | Some f -> f
    | None ->
      fun port ->
        Fmt.pr "skoped listening on %s:%d (%d workers, cache %d)@." config.host
          port config.pool dispatch.Dispatch.config.cache_capacity;
        (match config.faults with
        | Some f ->
          Fmt.pr "skoped fault injection armed: %s@."
            (Faults.spec_to_string (Faults.spec f))
        | None -> ());
        (* Scripts wait for this line before issuing queries. *)
        Format.pp_print_flush Format.std_formatter ()
  in
  serve ?stop ~on_ready ?handle_signals ?faults:config.faults
    ~recorder:dispatch.Dispatch.recorder
    ~on_queue:(fun depth ->
      Metrics.register_gauge dispatch.Dispatch.metrics
        ~name:"skope_queue_depth"
        ~help:"Accepted connections waiting for a worker." (fun () ->
          float_of_int (depth ())))
    ~on_shutdown:(fun () ->
      let v = Metrics.view dispatch.Dispatch.metrics in
      Fmt.epr
        "skoped: served %d requests (cache hit rate %.1f%%, p50 %.2f ms); bye@."
        v.Metrics.total_requests
        (100. *. v.Metrics.hit_rate)
        (v.Metrics.p50 *. 1e3))
    net
    ~handler:(fun ~received_at body ->
      Dispatch.handle ~received_at dispatch body)
