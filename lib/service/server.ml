type config = {
  host : string;
  port : int;
  pool : int;
  queue_capacity : int;
  dispatch : Dispatch.config;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7777;
    pool = max 2 (Domain.recommended_domain_count () - 1);
    queue_capacity = 128;
    dispatch = Dispatch.default_config;
  }

(* A job is an accepted connection plus its accept timestamp (queue
   wait counts toward the request's deadline and latency). *)
type job = Conn of Unix.file_descr * float | Quit

let rec write_all fd bytes pos len =
  if len > 0 then begin
    let n = Unix.write fd bytes pos len in
    write_all fd bytes (pos + n) (len - n)
  end

(* Read up to (and including) one '\n', or EOF; [limit] bounds the
   total bytes buffered so an oversized body cannot exhaust memory —
   we keep one byte past the limit so the dispatcher sees "too big",
   not a truncated-but-valid body. *)
let read_line fd ~limit =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    if Buffer.length buf > limit then Buffer.contents buf
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> Buffer.contents buf
      | n -> (
        match Bytes.index_from_opt chunk 0 '\n' with
        | Some i when i < n ->
          Buffer.add_subbytes buf chunk 0 i;
          Buffer.contents buf
        | _ ->
          Buffer.add_subbytes buf chunk 0 n;
          go ())
  in
  go ()

let handle_connection dispatch fd accepted_at =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try
        (* A dead or stalled client must not pin a worker forever. *)
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO 10.;
        let body =
          read_line fd ~limit:dispatch.Dispatch.config.max_request_bytes
        in
        let response = Dispatch.handle ~received_at:accepted_at dispatch body in
        let line = Bytes.of_string (response ^ "\n") in
        write_all fd line 0 (Bytes.length line)
      with Unix.Unix_error _ -> ())

let worker dispatch queue =
  let rec loop () =
    match Workqueue.pop queue with
    | Quit -> ()
    | Conn (fd, accepted_at) ->
      handle_connection dispatch fd accepted_at;
      loop ()
  in
  loop ()

let run ?on_ready config =
  let stop = Atomic.make false in
  let request_stop _ = Atomic.set stop true in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle request_stop) in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle request_stop) in
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let restore_signals () =
    Sys.set_signal Sys.sigint prev_int;
    Sys.set_signal Sys.sigterm prev_term;
    Sys.set_signal Sys.sigpipe prev_pipe
  in
  let dispatch = Dispatch.create ~config:config.dispatch () in
  let queue = Workqueue.create ~capacity:config.queue_capacity in
  Metrics.register_gauge dispatch.Dispatch.metrics ~name:"skope_queue_depth"
    ~help:"Accepted connections waiting for a worker." (fun () ->
      float_of_int (Workqueue.length queue));
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:restore_signals @@ fun () ->
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  let addr = Unix.inet_addr_of_string config.host in
  Unix.bind sock (Unix.ADDR_INET (addr, config.port));
  Unix.listen sock 64;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  (match on_ready with
  | Some f -> f port
  | None ->
    Fmt.pr "skoped listening on %s:%d (%d workers, cache %d)@." config.host
      port config.pool dispatch.Dispatch.config.cache_capacity;
    (* Scripts wait for this line before issuing queries. *)
    Format.pp_print_flush Format.std_formatter ());
  let workers =
    List.init config.pool (fun _ -> Domain.spawn (fun () -> worker dispatch queue))
  in
  let rec accept_loop () =
    if not (Atomic.get stop) then begin
      (match Unix.select [ sock ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept sock with
        | fd, _ -> Workqueue.push queue (Conn (fd, Unix.gettimeofday ()))
        | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (* Graceful shutdown: no new connections; queued requests drain,
     then each worker sees one Quit and exits. *)
  List.iter (fun _ -> Workqueue.push queue Quit) workers;
  List.iter Domain.join workers;
  let v = Metrics.view dispatch.Dispatch.metrics in
  Fmt.epr
    "skoped: served %d requests (cache hit rate %.1f%%, p50 %.2f ms); bye@."
    v.Metrics.total_requests
    (100. *. v.Metrics.hit_rate)
    (v.Metrics.p50 *. 1e3)
