(** SRAD — speckle-reducing anisotropic diffusion (paper §VI).

    Removes speckle noise from ultrasound/radar images: each iteration
    (1) estimates the speckle signature from a sample window by random
    sampling, (2) computes per-pixel gradients and a diffusion
    coefficient through libm's [exp], and (3) diffuses the image.

    The paper's measured profile on BG/Q puts 37 % of run time in
    [exp], 28 % in the diffusion loop and 25 % in [rand] — the first
    and third hot spots are {e library} functions, exercising the
    semi-analytical modeling path of §IV-C (instruction-mix profiles
    from {!Skope_hw.Libmix}). *)

open Skope_skeleton
open Skope_bet

let make ~scale =
  let n = max 64 (int_of_float (Float.round (2048. *. scale))) in
  let npix = n * n in
  (* Monte-Carlo signature estimation resamples the window with
     replacement, one draw per image pixel and iteration. *)
  let nsample = npix in
  let niter = 4 in
  let open Builder in
  let pixels ?label body =
    for_ ?label "p" (int 0) (var "npix" - int 1) body
  in
  let sample =
    func "sample_stats"
      [
        (* Monte-Carlo speckle signature: draws over the sample
           window dominate; each draw is two LCG advances plus light
           statistics. *)
        for_ ~label:"extract_sample" "s" (int 0) (var "nsample" - int 1)
          [
            lib "rand" ~scale:(int 3);
            comp ~flops:(int 4) ~iops:(int 3) ();
            load [ a_ "window" [ var "s" % var "nwin" ] ];
          ];
        comp ~label:"signature_reduce" ~flops:(int 200) ~iops:(int 40) ();
      ]
  in
  let gradient =
    func "gradient"
      [
        (* 4-neighbor gradient, normalized contrast, then the
           exponential diffusion coefficient. *)
        pixels ~label:"grad_coef"
          [
            load
              [
                a_ "img" [ var "p" ]; a_ "img" [ var "p" + int 1 ];
                a_ "img" [ var "p" + var "n" ];
              ];
            comp ~flops:(int 6) ~iops:(int 2) ~vec:1 ();
            lib "exp" ~scale:(int 1);
            store [ a_ "coef" [ var "p" ] ];
          ];
      ]
  in
  let diffuse =
    func "diffuse"
      [
        pixels ~label:"diffusion_update"
          [
            load
              [
                a_ "coef" [ var "p" ]; a_ "coef" [ var "p" + int 1 ];
                a_ "coef" [ var "p" + var "n" ]; a_ "img" [ var "p" ];
              ];
            comp ~flops:(int 34) ~iops:(int 3) ~vec:1 ();
            store [ a_ "img" [ var "p" ] ];
          ];
      ]
  in
  let cold_funcs, cold_calls = Coldcode.funcs ~prefix:"srad" ~weight:1500 in
  let main =
    func "main"
      (cold_calls
      @ [
        pixels ~label:"img_init"
          [ comp ~flops:(int 2) ~iops:(int 1) ~vec:4 (); store [ a_ "img" [ var "p" ] ] ];
        for_ ~label:"srad_iter" "it" (int 1) (var "niter")
          [
            call "sample_stats" [];
            call "gradient" [];
            call "diffuse" [];
          ];
      ])
  in
  let program =
    program "srad"
      ~globals:
        [
          (* One ghost row plus one cell pads the forward-difference
             neighbors [p+1] and [p+n], as the original allocates a
             bordered image. *)
          array "img" [ var "npix" + var "n" + int 1 ];
          array "coef" [ var "npix" + var "n" + int 1 ];
          array "window" [ var "nwin" ];
        ]
      ([ main; sample; gradient; diffuse ] @ cold_funcs)
  in
  ( program,
    [
      ("n", Value.int n);
      ("npix", Value.int npix);
      ("nwin", Value.int 16384);
      ("nsample", Value.int nsample);
      ("niter", Value.int niter);
    ] )
