(** CHARGEI — ion density deposition from the Gyrokinetic Toroidal
    Code (paper §VI).

    GTC is a 3D particle-in-cell code studying turbulent transport in
    magnetic fusion; [chargei] computes total ion density for a given
    ion distribution.  The paper notes eight loop structures, some
    producing arrays consumed by later loops, with two dominating hot
    spots measured at 44 % and 38 % of run time.

    The skeleton models the classic PIC deposition pipeline: a 4-point
    gyro-averaging gather over particles (dominant), the
    charge-scatter back to the grid (second), then grid-sized loops —
    field smoothing, Poisson-like iteration (a [while] loop whose trip
    count comes from profiling), boundary correction and
    normalization — each a few percent, matching the long flat tail of
    Fig. 12. *)

open Skope_skeleton
open Skope_bet

let make ~scale =
  let ngrid = max 256 (int_of_float (Float.round (64000. *. scale))) in
  let npart = 8 * ngrid in
  let open Builder in
  let particles ?label body =
    for_ ?label "p" (int 0) (var "npart" - int 1) body
  in
  let grid ?label body = for_ ?label "g" (int 0) (var "ngrid" - int 1) body in
  (* Stencil sweeps touch [g-1]/[g+1]: iterate the interior points
     only, as the original smoothing and Poisson loops do. *)
  let interior ?label body =
    for_ ?label "g" (int 1) (var "ngrid" - int 2) body
  in
  let deposit =
    func "deposit"
      [
        (* Dominant spot: 4-point gyroaverage gather; indirect grid
           accesses through the particle position. *)
        particles ~label:"gyro_average"
          [
            load [ a_ "xpos" [ var "p" ]; a_ "weight" [ var "p" ] ];
            comp ~flops:(int 14) ~iops:(int 8) ~vec:1 ();
            load
              [
                a_ "phi" [ var "p" * int 769 % var "ngrid" ];
                a_ "phi" [ (var "p" * int 769 + int 1) % var "ngrid" ];
                a_ "phi" [ var "p" * int 3571 % var "ngrid" ];
                a_ "phi" [ (var "p" * int 3571 + int 1) % var "ngrid" ];
              ];
            comp ~flops:(int 12) ~iops:(int 2) ~vec:1 ();
            store [ a_ "avg" [ var "p" ] ];
          ];
        (* Second spot: 4-point scatter of the charge to grid points
           (read-modify-write at each deposition point). *)
        particles ~label:"charge_scatter"
          [
            load [ a_ "avg" [ var "p" ]; a_ "weight" [ var "p" ] ];
            comp ~flops:(int 16) ~iops:(int 6) ~vec:1 ();
            load
              [
                a_ "dens" [ var "p" * int 769 % var "ngrid" ];
                a_ "dens" [ (var "p" * int 769 + int 1) % var "ngrid" ];
                a_ "dens" [ var "p" * int 3571 % var "ngrid" ];
                a_ "dens" [ (var "p" * int 3571 + int 1) % var "ngrid" ];
              ];
            store
              [
                a_ "dens" [ var "p" * int 769 % var "ngrid" ];
                a_ "dens" [ (var "p" * int 769 + int 1) % var "ngrid" ];
                a_ "dens" [ var "p" * int 3571 % var "ngrid" ];
                a_ "dens" [ (var "p" * int 3571 + int 1) % var "ngrid" ];
              ];
          ];
      ]
  in
  let field =
    func "field"
      [
        grid ~label:"zero_density"
          [ comp ~iops:(int 1) ~vec:4 (); store [ a_ "tmp" [ var "g" ] ] ];
        interior ~label:"smooth_field"
          [
            load
              [
                a_ "dens" [ var "g" ]; a_ "dens" [ var "g" + int 1 ];
                a_ "dens" [ var "g" - int 1 ];
              ];
            comp ~flops:(int 6) ~iops:(int 1) ~vec:4 ();
            store [ a_ "tmp" [ var "g" ] ];
          ];
        while_ ~label:"poisson_iter" "poisson" ~p_continue:(float 0.75)
          ~max_iter:(int 12)
          [
            interior ~label:"poisson_sweep"
              [
                load [ a_ "tmp" [ var "g" ]; a_ "tmp" [ var "g" + int 1 ] ];
                comp ~flops:(int 5) ~iops:(int 1) ~vec:4 ();
                store [ a_ "phi" [ var "g" ] ];
              ];
          ];
        grid ~label:"boundary_correct"
          [
            if_ (var "g" % (var "ngrid" / int 16) == int 0)
              [ comp ~label:"flux_surface_avg" ~flops:(int 24) ~iops:(int 4) () ]
              [];
            comp ~flops:(int 1) ~iops:(int 1) ~vec:4 ();
            load [ a_ "phi" [ var "g" ] ];
          ];
        grid ~label:"normalize"
          [
            load [ a_ "phi" [ var "g" ] ];
            comp ~flops:(int 2) ~iops:(int 1) ~divs:(int 1) ~vec:4 ();
            store [ a_ "phi" [ var "g" ] ];
          ];
      ]
  in
  let cold_funcs, cold_calls = Coldcode.funcs ~prefix:"gtc" ~weight:1600 in
  let main =
    func "main"
      (cold_calls
      @ [
        grid ~label:"init_grid"
          [ comp ~flops:(int 1) ~iops:(int 1) ~vec:4 (); store [ a_ "phi" [ var "g" ]; a_ "dens" [ var "g" ] ] ];
        particles ~label:"init_particles"
          [ comp ~flops:(int 3) ~iops:(int 2) ~vec:4 (); store [ a_ "xpos" [ var "p" ]; a_ "weight" [ var "p" ] ] ];
        for_ ~label:"pic_step" "it" (int 1) (var "nsteps")
          [ call "deposit" []; call "field" [] ];
      ])
  in
  let program =
    program "chargei"
      ~globals:
        [
          array "xpos" [ var "npart" ];
          array "weight" [ var "npart" ];
          array "avg" [ var "npart" ];
          array "phi" [ var "ngrid" ];
          array "dens" [ var "ngrid" ];
          array "tmp" [ var "ngrid" ];
        ]
      ([ main; deposit; field ] @ cold_funcs)
  in
  ( program,
    [
      ("ngrid", Value.int ngrid);
      ("npart", Value.int npart);
      ("nsteps", Value.int 4);
    ] )
