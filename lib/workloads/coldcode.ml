(** Cold-code mass for workload models.

    The paper's applications are production codes (SORD alone is 5139
    lines / 370 functions) in which the hot loops are a small static
    fraction — that is what makes the 10 % code-leanness criterion
    meaningful.  The workload skeletons model only the hot structure,
    so each one attaches a realistic amount of cold code: setup,
    configuration parsing, checkpointing, and error handling that runs
    once, rarely, or never.  The BET still traverses it (it must — the
    model cannot know statically that it is cold), which also makes the
    examples honest: the analysis finds the hot 10 % among real
    clutter. *)

open Skope_skeleton

(** [funcs ~prefix ~weight] returns cold functions whose total static
    instruction weight is roughly [weight], plus the statements to
    splice into [main] (one-time setup calls and a never-taken error
    check). *)
let funcs ~prefix ~weight : Ast.func list * Ast.stmt list =
  let u = weight / 10 in
  let u2 = 2 * u in
  let uh = u / 2 in
  let open Builder in
  let setup =
    func (prefix ^ "_setup")
      [
        comp ~label:(prefix ^ "_parse_config") ~flops:(int 0)
          ~iops:(int u2) ();
        comp ~label:(prefix ^ "_alloc") ~flops:(int 0) ~iops:(int u) ();
        if_data (prefix ^ "_verbose") (float 0.0)
          [ comp ~label:(prefix ^ "_banner") ~iops:(int u) () ]
          [];
      ]
  in
  let io =
    func (prefix ^ "_io")
      [
        comp ~label:(prefix ^ "_read_mesh") ~flops:(int u) ~iops:(int u2)
          ();
        comp ~label:(prefix ^ "_checkpoint") ~flops:(int 0) ~iops:(int u) ();
      ]
  in
  let diagnostics =
    func (prefix ^ "_diagnostics")
      [
        if_data (prefix ^ "_error") (float 0.0)
          [
            (* Never-taken error handling: pure static mass. *)
            comp ~label:(prefix ^ "_error_recovery") ~iops:(int u2) ();
            comp ~label:(prefix ^ "_abort_path") ~iops:(int u) ();
          ]
          [];
        comp ~label:(prefix ^ "_stats") ~flops:(int uh) ~iops:(int uh)
          ();
      ]
  in
  let calls =
    [
      call (prefix ^ "_setup") [];
      call (prefix ^ "_io") [];
      call (prefix ^ "_diagnostics") [];
    ]
  in
  ([ setup; io; diagnostics ], calls)
