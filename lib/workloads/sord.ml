(** SORD — Support Operator Rupture Dynamics (paper §VI).

    An earthquake simulator solving 3D viscoelastic wave propagation
    over a structured grid; Fortran+MPI, 5139 lines, 370 functions.
    The skeleton models its essential structure: a time-stepping loop
    over {e velocity-stress} finite-difference phases — difference
    operators along the three axes, Hooke's-law stress update,
    hourglass-mode correction, momentum/acceleration update with
    per-cell divisions by density, viscous damping, absorbing boundary
    conditions, rate-and-state fault friction on the rupture plane (the
    data-dependent part), and halo pack/unpack standing in for the MPI
    exchange.

    The grid is flattened to 1D: stencil neighbors at [c+1], [c+nx]
    and [c+nx*ny] preserve the three characteristic access strides,
    which is what drives the machine-dependent cache behaviour that
    reorders the hot spots between BG/Q and Xeon (§VII-A).  About a
    dozen candidate loops with distinct compute/memory/vectorization
    profiles reproduce the paper's "top 10, only 4 shared" setting. *)

open Skope_skeleton
open Skope_bet

let make ~scale =
  let dim f = max 4 (int_of_float (Float.round (f *. scale))) in
  let nx = dim 50. in
  let ny = dim 200. in
  let nz = dim 200. in
  let nt = max 2 (int_of_float (Float.round (8. *. scale *. 4.))) in
  let ncell = nx * ny * nz in
  let nsurf = ny * nz in
  let nfault = ny * nz in
  let open Builder in
  let cell_loop ?label body = for_ ?label "c" (int 0) (var "ncell" - int 1) body in
  (* Central difference along one axis: 2 loads at distance [stride],
     4 flops (coefficient multiply + subtract per pair), streaming
     store. *)
  let diff label src dst stride =
    func label
      [
        cell_loop ~label
          [
            comp ~flops:(int 4) ~iops:(int 2) ~vec:4 ();
            load [ a_ src [ var "c" ]; a_ src [ var "c" + stride ] ];
            store [ a_ dst [ var "c" ] ];
          ];
      ]
  in
  let stress =
    func "stress"
      [
        cell_loop ~label:"stress_diag"
          [
            comp ~flops:(int 15) ~iops:(int 3) ~vec:4 ();
            load
              [
                a_ "dx" [ var "c" ]; a_ "dy" [ var "c" ]; a_ "dz" [ var "c" ];
                a_ "lam" [ var "c" ]; a_ "mu" [ var "c" ];
              ];
            store [ a_ "sxx" [ var "c" ]; a_ "syy" [ var "c" ]; a_ "szz" [ var "c" ] ];
          ];
        cell_loop ~label:"stress_shear"
          [
            comp ~flops:(int 9) ~iops:(int 2) ~vec:4 ();
            load [ a_ "dx" [ var "c" ]; a_ "dy" [ var "c" ]; a_ "mu" [ var "c" ] ];
            store [ a_ "sxy" [ var "c" ] ];
          ];
      ]
  in
  let hourglass =
    func "hourglass"
      [
        (* Irregular 8-point gather the native compilers do not
           vectorize: compute-heavy on every machine, relatively
           heavier on BG/Q's weak scalar pipeline. *)
        cell_loop ~label:"hourglass_gather"
          [
            comp ~flops:(int 34) ~iops:(int 6) ~vec:1 ();
            load
              [
                a_ "u1" [ var "c" ]; a_ "u1" [ var "c" + int 1 ];
                a_ "u1" [ var "c" + var "nx" ];
                a_ "u1" [ var "c" + (var "nx" * var "ny") ];
                a_ "u1" [ var "c" + var "nx" + int 1 ];
                a_ "u1" [ var "c" + (var "nx" * var "ny") + int 1 ];
              ];
            store [ a_ "hg" [ var "c" ] ];
          ];
        cell_loop ~label:"hourglass_apply"
          [
            comp ~flops:(int 12) ~iops:(int 2) ~vec:1 ();
            load [ a_ "hg" [ var "c" ]; a_ "w1" [ var "c" ] ];
            store [ a_ "w1" [ var "c" ] ];
          ];
      ]
  in
  let momentum =
    func "momentum"
      [
        (* Acceleration a = div(stress) / rho: three real divisions per
           cell. *)
        cell_loop ~label:"momentum_acc"
          [
            (* Density reciprocal is precomputed as in the original
               code; one residual division remains (CFL check). *)
            comp ~flops:(int 21) ~iops:(int 3) ~divs:(int 1) ~vec:1 ();
            load
              [
                a_ "sxx" [ var "c" ]; a_ "syy" [ var "c" ]; a_ "szz" [ var "c" ];
                a_ "sxy" [ var "c" ]; a_ "sxy" [ var "c" + int 1 ];
                a_ "rho" [ var "c" ];
              ];
            store [ a_ "ax" [ var "c" ] ];
          ];
        cell_loop ~label:"vel_update"
          [
            comp ~flops:(int 6) ~iops:(int 1) ~vec:4 ();
            load [ a_ "ax" [ var "c" ]; a_ "vx" [ var "c" ] ];
            store [ a_ "vx" [ var "c" ] ];
          ];
        cell_loop ~label:"disp_update"
          [
            comp ~flops:(int 3) ~iops:(int 1) ~vec:4 ();
            load [ a_ "vx" [ var "c" ]; a_ "u1" [ var "c" ] ];
            store [ a_ "u1" [ var "c" ] ];
          ];
      ]
  in
  let viscosity =
    func "viscosity"
      [
        cell_loop ~label:"viscosity"
          [
            comp ~flops:(int 10) ~iops:(int 2) ~vec:4 ();
            load [ a_ "w1" [ var "c" ]; a_ "eta" [ var "c" ] ];
            store [ a_ "w1" [ var "c" ] ];
          ];
      ]
  in
  let boundary =
    func "boundary"
      [
        (* Absorbing boundary over the six faces: surface work. *)
        for_ ~label:"absorb_bc" "c" (int 0) (var "nsurf" - int 1)
          [
            comp ~flops:(int 12) ~iops:(int 3) ~vec:1 ();
            load [ a_ "vx" [ var "c" * var "nx" ]; a_ "bcoef" [ var "c" ] ];
            store [ a_ "vx" [ var "c" * var "nx" ] ];
          ];
      ]
  in
  let fault =
    func "fault"
      [
        for_ ~label:"fault_plane" "c" (int 0) (var "nfault" - int 1)
          [
            load [ a_ "tn" [ var "c" ]; a_ "ts" [ var "c" ] ];
            comp ~flops:(int 8) ~iops:(int 2) ~vec:1 ();
            if_data "rupturing" (float 0.3)
              [
                comp ~label:"friction_solve" ~flops:(int 48) ~iops:(int 8)
                  ~divs:(int 4) ~vec:1 ();
                store [ a_ "ts" [ var "c" ]; a_ "slip" [ var "c" ] ];
              ]
              [ comp ~flops:(int 2) ~iops:(int 1) () ];
          ];
      ]
  in
  let halo =
    func "halo"
      [
        (* Pack/unpack of the ghost layers for each exchanged field:
           strided streaming memory, standing in for MPI buffers. *)
        for_ "f" (int 1) (int 3)
          [
            for_ ~label:"halo_pack" "c" (int 0) (var "nsurf" - int 1)
              [
                comp ~flops:(int 0) ~iops:(int 3) ~vec:4 ();
                load [ a_ "u1" [ var "c" * var "nx" ] ];
                store [ a_ "buf" [ var "c" ] ];
              ];
            for_ ~label:"halo_unpack" "c" (int 0) (var "nsurf" - int 1)
              [
                comp ~flops:(int 0) ~iops:(int 3) ~vec:4 ();
                load [ a_ "buf" [ var "c" ] ];
                store [ a_ "u1" [ (var "c" * var "nx") + var "nx" - int 1 ] ];
              ];
          ];
      ]
  in
  let lookup =
    func "material"
      [
        (* Table-driven nonlinear material response: a gather over a
           2 MB coefficient table at effectively random indices.  The
           table is L2-resident on BG/Q (32 MB shared L2) but spills to
           DRAM on Xeon's small cache — a strongly machine-dependent
           hot spot (the §I/§VII-A portability argument). *)
        for_ ~label:"material_lookup" "c" (int 0) (var "ncell" / int 4 - int 1)
          [
            comp ~flops:(int 2) ~iops:(int 4) ~vec:1 ();
            load [ a_ "mattab" [ var "c" * int 7919 % var "ntab" ] ];
            store [ a_ "eta" [ var "c" ] ];
          ];
        for_ ~label:"aniso_lookup" "c" (int 0) (var "ncell" / int 4 - int 1)
          [
            comp ~flops:(int 3) ~iops:(int 4) ~vec:1 ();
            load [ a_ "anitab" [ var "c" * int 6151 % var "ntab" ] ];
            store [ a_ "hg" [ var "c" ] ];
          ];
      ]
  in
  let source =
    func "source"
      [
        (* Source-time-function convolution: repeated sweeps over two
           ~24 KB arrays.  The working set fits Xeon's 32 KB L1 but
           thrashes BG/Q's 16 KB L1 — machine-dependent in the
           opposite direction from the material lookup. *)
        for_ "rep" (int 1) (int 20)
          [
            for_ ~label:"stf_convolve" "s" (int 0) (var "nstf" - int 1)
              [
                comp ~flops:(int 4) ~iops:(int 1) ~vec:1 ();
                load [ a_ "stf" [ var "s" ]; a_ "hist" [ var "s" ] ];
                store [ a_ "hist" [ var "s" ] ];
              ];
          ];
      ]
  in
  let strain =
    func "strain"
      [
        (* Strain-rate tensor update: wide-vector compute; cheap where
           the compiler vectorizes well (Xeon), expensive on BG/Q's
           partially used QPX. *)
        cell_loop ~label:"strain_rate"
          [
            comp ~flops:(int 28) ~iops:(int 2) ~vec:4 ();
            load [ a_ "dx" [ var "c" ]; a_ "w1" [ var "c" ] ];
            store [ a_ "dz" [ var "c" ] ];
          ];
      ]
  in
  let pml =
    func "pml"
      [
        (* Perfectly-matched-layer damping: scalar index bookkeeping
           dominated, hurt by BG/Q's 2-wide in-order issue. *)
        cell_loop ~label:"pml_damping"
          [
            comp ~flops:(int 4) ~iops:(int 18) ~vec:1 ();
            load [ a_ "vx" [ var "c" ]; a_ "eta" [ var "c" ] ];
            store [ a_ "vx" [ var "c" ] ];
          ];
      ]
  in
  let cold_funcs, cold_calls = Coldcode.funcs ~prefix:"sord" ~weight:2800 in
  let main =
    func "main"
      (cold_calls
      @ [
        for_ ~label:"init_media" "c" (int 0) (var "ncell" - int 1)
          [
            comp ~flops:(int 4) ~iops:(int 2) ~vec:4 ();
            store [ a_ "lam" [ var "c" ]; a_ "mu" [ var "c" ]; a_ "rho" [ var "c" ] ];
          ];
        for_ ~label:"timestep" "it" (int 1) (var "nt")
          [
            call "diff_x" [];
            call "diff_y" [];
            call "diff_z" [];
            call "strain" [];
            call "stress" [];
            call "hourglass" [];
            call "momentum" [];
            call "viscosity" [];
            call "material" [];
            call "source" [];
            call "pml" [];
            call "fault" [];
            call "boundary" [];
            call "halo" [];
            comp ~label:"timeseries" ~flops:(int 50) ~iops:(int 20) ();
          ];
      ])
  in
  let g name = array name [ var "ncell" ] in
  let program =
    program "sord"
      ~globals:
        [
          (* The displacement grid carries a ghost plane (plus one row
             and one cell) so the [c+1], [c+nx] and [c+nx*ny] stencil
             neighbors stay in bounds at the domain edge; the shear
             stress is read one cell ahead in the momentum update. *)
          array "u1" [ var "ncell" + (var "nx" * var "ny") + int 1 ];
          array "sxy" [ var "ncell" + int 1 ];
          g "w1"; g "vx"; g "ax"; g "dx"; g "dy"; g "dz"; g "lam";
          g "mu"; g "rho"; g "eta"; g "sxx"; g "syy"; g "szz";
          g "hg";
          array "tn" [ var "nfault" ];
          array "ts" [ var "nfault" ];
          array "slip" [ var "nfault" ];
          array "bcoef" [ var "nsurf" ];
          array "buf" [ var "nsurf" ];
          array "mattab" [ var "ntab" ];
          array "anitab" [ var "ntab" ];
          array "stf" [ var "nstf" ];
          array "hist" [ var "nstf" ];
        ]
      ([
         main;
         diff "diff_x" "u1" "dx" (int 1);
         diff "diff_y" "u1" "dy" (var "nx");
         diff "diff_z" "u1" "dz" (var "nx" * var "ny");
         strain;
         stress;
         hourglass;
         momentum;
         viscosity;
         lookup;
         source;
         pml;
         boundary;
         fault;
         halo;
       ]
      @ cold_funcs)
  in
  ( program,
    [
      ("nx", Value.int nx);
      ("ny", Value.int ny);
      ("nz", Value.int nz);
      ("nt", Value.int nt);
      ("ncell", Value.int ncell);
      ("nsurf", Value.int nsurf);
      ("nfault", Value.int nfault);
      ("ntab", Value.int 262144);
      ("nstf", Value.int 1500);
    ] )
