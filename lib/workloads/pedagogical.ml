(** The paper's pedagogical example (Fig. 2).

    [main] initializes a knob under a data-dependent branch, runs a
    grid loop, and calls [foo] twice under contexts with different
    [knob] values — exactly the situation whose BET the paper draws:
    the branch at the top affects a branch deep inside [foo], so the
    function mount appears under two contexts with different
    probabilities. *)

open Skope_skeleton
open Skope_bet

let make ~scale =
  let n = max 8 (int_of_float (64. *. scale)) in
  let open Builder in
  let foo =
    func "foo" ~params:[ "x"; "knob" ]
      [
        if_
          (var "knob" == int 1)
          [
            for_ ~label:"foo_heavy" "j" (int 0) (var "x" - int 1)
              [
                comp ~flops:(int 16) ~iops:(int 2) ();
                load [ a_ "data" [ var "j" ] ];
                store [ a_ "data" [ var "j" ] ];
              ];
          ]
          [
            for_ ~label:"foo_light" "j" (int 1) (var "x" / int 4)
              [ comp ~flops:(int 2) ~iops:(int 1) () ];
          ];
      ]
  in
  let main =
    func "main"
      [
        let_ "knob" (int 0);
        if_data "calibrate" (float 0.3) [ let_ "knob" (int 1) ] [];
        for_ ~label:"init" "i" (int 0) (var "n" - int 1)
          [ comp ~flops:(int 1) ~iops:(int 1) (); store [ a_ "data" [ var "i" ] ] ];
        for_ ~label:"main_loop" "i" (int 0) (var "n" - int 1)
          [
            comp ~flops:(int 4) ~iops:(int 2) ();
            load [ a_ "data" [ var "i" ] ];
            if_data "refine" (float 0.1)
              [ comp ~label:"refine_step" ~flops:(int 32) ~divs:(int 2) () ]
              [];
          ];
        call "foo" [ var "n"; var "knob" ];
        call "foo" [ var "n" / int 2; int 0 ];
      ]
  in
  let program =
    program "pedagogical"
      ~globals:[ array "data" [ var "n" ] ]
      [ main; foo ]
  in
  (program, [ ("n", Value.int n) ])
