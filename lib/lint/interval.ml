(** Interval domain over the reals (see the interface for the
    contract).  All operations over-approximate the image of the
    concrete operation, with two documented exceptions noted inline
    and in DESIGN.md §9. *)

type t = { lo : float; hi : float }

let top = { lo = neg_infinity; hi = infinity }

let make a b = if a <= b then { lo = a; hi = b } else { lo = b; hi = a }

let of_float f = { lo = f; hi = f }
let of_int i = of_float (float_of_int i)
let of_bool b = of_float (if b then 1. else 0.)

let const i = if i.lo = i.hi && Float.is_finite i.lo then Some i.lo else None

let is_top i = i.lo = neg_infinity && i.hi = infinity
let bounded i = Float.is_finite i.lo && Float.is_finite i.hi
let contains i x = i.lo <= x && x <= i.hi

let join a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let meet a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if lo <= hi then Some { lo; hi } else None

let clamp_nonneg i =
  if i.hi < 0. then of_float 0. else { lo = Float.max 0. i.lo; hi = i.hi }

(* Hull of candidate bounds; NaNs (0 * inf and friends) collapse to 0,
   the standard interval-arithmetic convention. *)
let hull cands =
  let clean = List.map (fun x -> if Float.is_nan x then 0. else x) cands in
  {
    lo = List.fold_left Float.min infinity clean;
    hi = List.fold_left Float.max neg_infinity clean;
  }

let neg i = { lo = -.i.hi; hi = -.i.lo }
let add a b = hull [ a.lo +. b.lo; a.hi +. b.hi ]
let sub a b = hull [ a.lo -. b.hi; a.hi -. b.lo ]

let mul a b =
  hull [ a.lo *. b.lo; a.lo *. b.hi; a.hi *. b.lo; a.hi *. b.hi ]

let div a b =
  if b.lo > 0. || b.hi < 0. then
    hull [ a.lo /. b.lo; a.lo /. b.hi; a.hi /. b.lo; a.hi /. b.hi ]
  else top

let rem a b =
  if b.lo > 0. then begin
    (* For a positive integer-constant divisor k, the result of
       integral operands lies in [0, k-1]; index arithmetic is assumed
       integral here (DESIGN.md §9). *)
    let upper =
      match const b with
      | Some k when Float.is_integer k -> k -. 1.
      | _ -> b.hi
    in
    if a.lo >= 0. then { lo = 0.; hi = Float.min a.hi upper }
    else { lo = Float.max a.lo (-.upper); hi = Float.min a.hi upper }
  end
  else top

let min_ a b = { lo = Float.min a.lo b.lo; hi = Float.min a.hi b.hi }
let max_ a b = { lo = Float.max a.lo b.lo; hi = Float.max a.hi b.hi }

let pow a b =
  match const b with
  | Some k when Float.is_integer k && k >= 0. ->
    let corners = [ a.lo ** k; a.hi ** k ] in
    (* Even powers reach their minimum at 0 inside the interval. *)
    let corners = if contains a 0. then 0. :: corners else corners in
    hull corners
  | _ ->
    if a.lo >= 0. && b.lo >= 0. then
      hull [ a.lo ** b.lo; a.lo ** b.hi; a.hi ** b.lo; a.hi ** b.hi ]
    else top

let floor_ i = { lo = Float.floor i.lo; hi = Float.floor i.hi }
let ceil_ i = { lo = Float.ceil i.lo; hi = Float.ceil i.hi }

let sqrt_ i =
  let c = clamp_nonneg i in
  { lo = Float.sqrt c.lo; hi = Float.sqrt c.hi }

let log2_ i =
  if i.lo > 0. then
    let l = Float.log i.lo /. Float.log 2. in
    let h = Float.log i.hi /. Float.log 2. in
    { lo = l; hi = h }
  else top

let abs_ i =
  if i.lo >= 0. then i
  else if i.hi <= 0. then neg i
  else { lo = 0.; hi = Float.max (-.i.lo) i.hi }

type tri = True | False | Unknown

let tri_not = function True -> False | False -> True | Unknown -> Unknown

let tri_and a b =
  match (a, b) with
  | False, _ | _, False -> False
  | True, True -> True
  | _ -> Unknown

let tri_or a b =
  match (a, b) with
  | True, _ | _, True -> True
  | False, False -> False
  | _ -> Unknown

let lt a b = if a.hi < b.lo then True else if a.lo >= b.hi then False else Unknown
let le a b = if a.hi <= b.lo then True else if a.lo > b.hi then False else Unknown
let gt a b = lt b a
let ge a b = le b a

let eq a b =
  match (const a, const b) with
  | Some x, Some y when x = y -> True
  | _ -> ( match meet a b with None -> False | Some _ -> Unknown)

let ne a b = tri_not (eq a b)

let truthy i =
  if not (contains i 0.) then True
  else if i.lo = 0. && i.hi = 0. then False
  else Unknown

let pp_bound ppf x =
  if x = infinity then Fmt.string ppf "+inf"
  else if x = neg_infinity then Fmt.string ppf "-inf"
  else Fmt.pf ppf "%g" x

let pp ppf i =
  match const i with
  | Some x -> Fmt.pf ppf "%g" x
  | None -> Fmt.pf ppf "[%a, %a]" pp_bound i.lo pp_bound i.hi

let to_string i = Fmt.str "%a" pp i
