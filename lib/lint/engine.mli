(** Abstract-interpretation lint pass over skeleton programs.

    Walks the program from its entry function with an {!Interval}
    environment seeded from the supplied inputs, inlining calls (the
    BET mounts callee trees in place, so this mirrors projection),
    and emits {!Diagnostic.t}s with stable rule codes:

    {ul
    {- [L001] zero-or-negative-trip loop / non-positive step}
    {- [L002] possible division by zero}
    {- [L003] probability outside [\[0, 1\]]}
    {- [L004] array index possibly out of bounds}
    {- [L005] statically dead branch}
    {- [L006] comp statement modeling zero work}
    {- [L007] function unreachable from the entry point}
    {- [L008] data-dependent construct without a profile hint (info)}
    {- [L009] unbounded while loop ([p_continue] = 1 and no finite cap)}
    {- [L010] send/recv volume asymmetry}}

    The pass subsumes {!Validate.check}'s literal-only loop-step and
    vec checks by evaluating expressions symbolically; it assumes the
    program already passed validation and degrades gracefully (skips,
    never raises) when it has not.  Soundness caveats are documented
    in DESIGN.md §9. *)

open Skope_skeleton

type config = {
  disabled : string list;  (** rule codes to suppress, e.g. [["L008"]] *)
  hints : string list;
      (** statistics names with profile data; named constructs
          outside this set trigger [L008] *)
}

val default_config : config

(** [code, one-line summary] for every rule, in code order; drives
    [skope lint --rules] and the README table. *)
val rules : (string * string) list

(** Run the pass.  [inputs] seed the environment exactly as they seed
    {!Skope_bet.Build}; unlisted context variables start at top.
    Result is {!Diagnostic.normalize}d. *)
val run :
  ?config:config ->
  ?inputs:(string * Skope_bet.Value.t) list ->
  Ast.program ->
  Diagnostic.t list

exception Rejected of Diagnostic.t list

(** [check_exn ?inputs p] raises {!Rejected} when [run] finds at
    least one [Error]-severity diagnostic (warnings and infos pass).
    Used by the projection pipeline to refuse meaningless models. *)
val check_exn : ?inputs:(string * Skope_bet.Value.t) list -> Ast.program -> unit
