(** `skope audit`: scaling, working-set and communication diagnostics
    (rules A001..A008) over the symbolic cost model.

    Complements lint: lint checks what is {e wrong} at one concrete
    scale (intervals); audit checks what {e goes wrong as the scale
    grows} (closed forms from {!Symbolic}, probed along parameter
    sweeps, plus a synchronous-rendezvous deadlock check). *)

open Skope_skeleton
module Value = Skope_bet.Value
module Machine = Skope_hw.Machine

(** [(code, summary)] pairs for every audit rule, in code order. *)
val rules : (string * string) list

type config = {
  disabled : string list;  (** rule codes to skip *)
  machine : Machine.t;  (** cache geometry + balance for A003..A005 *)
  ranks : int;  (** rank-space size for A006/A007 when no [p] input *)
  vary : (float -> (string * Value.t) list) option;
      (** full input rebinding at scale multiplier [m]; defaults to
          multiplying every non-rank numeric input that is [>= 2] *)
}

val default_config : config

type report = { diags : Diagnostic.t list; sym : Symbolic.result }

val run :
  ?config:config -> ?inputs:(string * Value.t) list -> Ast.program -> report

(** Shared per-target JSON rendering, used verbatim by the CLI and the
    skoped [audit] kind so the two paths stay at parity. *)
val result_json :
  target:string ->
  ?scale:float ->
  deny_warnings:bool ->
  config ->
  report ->
  Skope_report.Json.t

(** Reduced form for targets that failed before audit could run
    (parse/validate errors): same envelope, no [sym] block. *)
val diags_json :
  target:string -> deny_warnings:bool -> Diagnostic.t list -> Skope_report.Json.t
