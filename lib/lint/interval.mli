(** Interval domain over the reals, used by the lint engine to
    abstract context-variable values.

    An interval is a closed range [\[lo, hi\]] with infinite bounds
    allowed; {!top} is [\[-inf, +inf\]] and stands for "nothing
    known".  There is no bottom element: operations whose result set
    would be empty (e.g. division by the constant zero) widen to
    {!top} — the engine reports the defect separately, so precision
    there does not matter. *)

type t = private { lo : float; hi : float }

val top : t
val make : float -> float -> t

val of_int : int -> t
val of_float : float -> t
val of_bool : bool -> t

(** [const i] is [Some x] when [i] is the singleton [x]. *)
val const : t -> float option

val is_top : t -> bool

(** Both bounds finite. *)
val bounded : t -> bool

val contains : t -> float -> bool

(** Convex hull of the union. *)
val join : t -> t -> t

(** Intersection; [None] when disjoint. *)
val meet : t -> t -> t option

(** Intersection with [\[0, +inf)]; empty meets clamp to [\[0, 0\]]. *)
val clamp_nonneg : t -> t

(** {1 Arithmetic} — sound over-approximations of the image. *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** Division widens to {!top} when the divisor may be zero. *)
val div : t -> t -> t

(** Remainder; assumes integral operands when the divisor is a
    positive integer constant (see DESIGN.md §9 for the caveat). *)
val rem : t -> t -> t

val min_ : t -> t -> t
val max_ : t -> t -> t
val pow : t -> t -> t
val floor_ : t -> t
val ceil_ : t -> t
val sqrt_ : t -> t
val log2_ : t -> t
val abs_ : t -> t

(** {1 Three-valued comparisons} *)

type tri = True | False | Unknown

val tri_not : tri -> tri
val tri_and : tri -> tri -> tri
val tri_or : tri -> tri -> tri

val lt : t -> t -> tri
val le : t -> t -> tri
val gt : t -> t -> tri
val ge : t -> t -> tri
val eq : t -> t -> tri
val ne : t -> t -> tri

(** Truthiness of a numeric interval: [True] when 0 is excluded,
    [False] for the singleton 0. *)
val truthy : t -> tri

val pp : t Fmt.t
val to_string : t -> string
