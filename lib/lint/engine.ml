open Skope_skeleton
open Ast
module I = Interval
module Value = Skope_bet.Value
module Smap = Map.Make (String)
module Sset = Set.Make (String)

type config = { disabled : string list; hints : string list }

let default_config = { disabled = []; hints = [] }

let rules =
  [
    ("L001", "loop never executes or its step is not positive");
    ("L002", "possible division by zero");
    ("L003", "probability outside [0, 1]");
    ("L004", "array index possibly out of bounds");
    ("L005", "statically dead branch");
    ("L006", "comp statement models zero work");
    ("L007", "function unreachable from the entry point");
    ("L008", "data-dependent construct without a profile hint");
    ("L009", "while loop with p_continue = 1 and no finite cap");
    ("L010", "send and receive volumes can never balance");
  ]

(* Mutable pass state.  [sends]/[recvs] accumulate (site, volume)
   pairs for L010; [budget] caps total statement visits so that a
   pathological call tree cannot hang the linter. *)
(* A function is reached from several call contexts (and loop bodies
   are re-walked during widening), so a branch condition can be decided
   in one context and open in another.  L005 only fires when every
   non-quiet visit agreed — tracked per statement id. *)
type verdict = {
  v_loc : Loc.t;
  v_expr : string;
  v_fname : string;
  mutable all_true : bool;
  mutable all_false : bool;
}

type st = {
  disabled : Sset.t;
  hints : Sset.t;
  funcs : func Smap.t;
  global_arrays : array_decl Smap.t;
  base_env : I.t Smap.t;
  verdicts : (int, verdict) Hashtbl.t;
  mutable diags : Diagnostic.t list;
  mutable sends : (Loc.t * I.t) list;
  mutable recvs : (Loc.t * I.t) list;
  mutable budget : int;
  mutable quiet : bool;
      (** widening-discovery walks: no diagnostics, no volumes *)
}

let emit st ~code ~severity ~loc ?(notes = []) fmt =
  Fmt.kstr
    (fun message ->
      if (not st.quiet) && not (Sset.mem code st.disabled) then
        st.diags <-
          Diagnostic.make ~notes ~code ~severity ~loc message :: st.diags)
    fmt

let expr_str e = Fmt.str "%a" Pretty.pp_expr e

let arrays_of st (f : func) =
  List.fold_left
    (fun m (a : array_decl) -> Smap.add a.aname a m)
    st.global_arrays f.arrays

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

(* --- abstract evaluation -------------------------------------------- *)

let of_tri = function
  | I.True -> I.of_bool true
  | I.False -> I.of_bool false
  | I.Unknown -> I.make 0. 1.

let rec eval env e =
  match e with
  | Int n -> I.of_int n
  | Float f -> I.of_float f
  | Bool b -> I.of_bool b
  | Var v -> ( match Smap.find_opt v env with Some i -> i | None -> I.top)
  | Binop (op, a, b) ->
    let f =
      match op with
      | Add -> I.add
      | Sub -> I.sub
      | Mul -> I.mul
      | Div -> I.div
      | Mod -> I.rem
      | Min -> I.min_
      | Max -> I.max_
      | Pow -> I.pow
    in
    f (eval env a) (eval env b)
  | (Cmp _ | And _ | Or _) as e -> of_tri (truth env e)
  | Unop (op, a) -> (
    match op with
    | Neg -> I.neg (eval env a)
    | Not -> of_tri (I.tri_not (truth env a))
    | Floor -> I.floor_ (eval env a)
    | Ceil -> I.ceil_ (eval env a)
    | Sqrt -> I.sqrt_ (eval env a)
    | Log2 -> I.log2_ (eval env a)
    | Abs -> I.abs_ (eval env a))

and truth env e =
  match e with
  | Bool b -> if b then I.True else I.False
  | Cmp (op, a, b) ->
    let f =
      match op with
      | Lt -> I.lt
      | Le -> I.le
      | Gt -> I.gt
      | Ge -> I.ge
      | Eq -> I.eq
      | Ne -> I.ne
    in
    f (eval env a) (eval env b)
  | And (a, b) -> I.tri_and (truth env a) (truth env b)
  | Or (a, b) -> I.tri_or (truth env a) (truth env b)
  | Unop (Not, a) -> I.tri_not (truth env a)
  | e -> I.truthy (eval env e)

(* --- branch-condition environment refinement ------------------------ *)

let flip_op = function
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le
  | Eq -> Eq
  | Ne -> Ne

let negate_op = function
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt
  | Eq -> Ne
  | Ne -> Eq

let refine_var env v op bound =
  let cur = match Smap.find_opt v env with Some i -> i | None -> I.top in
  let constrained =
    match op with
    | Lt | Le -> I.make neg_infinity bound.I.hi
    | Gt | Ge -> I.make bound.I.lo infinity
    | Eq -> bound
    | Ne -> cur
  in
  match I.meet cur constrained with
  | Some m -> Smap.add v m env
  | None -> env (* contradictory branch; leave unrefined *)

(* Conservatively narrow [env] under the assumption that [cond] is
   [positive].  Only simple var-vs-expression comparisons refine;
   anything else leaves the environment unchanged (sound: refinement
   only ever meets). *)
let rec refine env cond positive =
  match cond with
  | Unop (Not, a) -> refine env a (not positive)
  | And (a, b) when positive -> refine (refine env a true) b true
  | Or (a, b) when not positive -> refine (refine env a false) b false
  | Cmp (op, Var v, rhs) ->
    let op = if positive then op else negate_op op in
    refine_var env v op (eval env rhs)
  | Cmp (op, lhs, Var v) ->
    let op = flip_op (if positive then op else negate_op op) in
    refine_var env v op (eval env lhs)
  | _ -> env

(* --- per-construct checks ------------------------------------------- *)

(* L002: every division or modulus anywhere in a statement's
   expressions.  Top divisors are skipped — "we know nothing" is not
   evidence of a zero. *)
let rec check_div st env loc ~fnote e =
  match e with
  | Int _ | Float _ | Bool _ | Var _ -> ()
  | Binop (op, a, b) -> (
    check_div st env loc ~fnote a;
    check_div st env loc ~fnote b;
    match op with
    | Div | Mod -> (
      let d = eval env b in
      match I.const d with
      | Some 0. ->
        emit st ~code:"L002" ~severity:Diagnostic.Error ~loc
          ~notes:[ Fmt.str "divisor `%s` is always 0" (expr_str b); fnote ]
          "division by zero"
      | _ ->
        if I.contains d 0. && not (I.is_top d) then
          emit st ~code:"L002" ~severity:Diagnostic.Warning ~loc
            ~notes:
              [
                Fmt.str "divisor `%s` has interval %s" (expr_str b)
                  (I.to_string d);
                fnote;
              ]
            "possible division by zero")
    | _ -> ())
  | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
    check_div st env loc ~fnote a;
    check_div st env loc ~fnote b
  | Unop (_, a) -> check_div st env loc ~fnote a

(* L003 *)
let check_prob st env loc ~fnote ~what p =
  let i = eval env p in
  let show =
    Fmt.str "`%s` evaluates to %s" (expr_str p) (I.to_string i)
  in
  if i.I.lo > 1. || i.I.hi < 0. then
    emit st ~code:"L003" ~severity:Diagnostic.Error ~loc
      ~notes:[ show; fnote ] "%s probability is outside [0, 1]" what
  else if
    (Float.is_finite i.I.hi && i.I.hi > 1.)
    || (Float.is_finite i.I.lo && i.I.lo < 0.)
  then
    emit st ~code:"L003" ~severity:Diagnostic.Warning ~loc
      ~notes:[ show; fnote ] "%s probability may fall outside [0, 1]" what

(* L008 *)
let check_hint st loc ~fnote ~what name =
  if not (Sset.mem name st.hints) then
    emit st ~code:"L008" ~severity:Diagnostic.Info ~loc ~notes:[ fnote ]
      "%s `%s` has no profile hint; projection will trust the declared \
       probability"
      what name

(* L004 *)
let check_access st env arrays loc ~fnote ({ array; index } : access) =
  match Smap.find_opt array arrays with
  | None -> () (* Validate's V003 *)
  | Some decl ->
    if List.length index = List.length decl.dims then
      List.iteri
        (fun k idx ->
          let iv = eval env idx in
          let dv = eval env (List.nth decl.dims k) in
          let show =
            Fmt.str "index `%s` evaluates to %s; the dimension is %s"
              (expr_str idx) (I.to_string iv) (I.to_string dv)
          in
          if iv.I.hi < 0. then
            emit st ~code:"L004" ~severity:Diagnostic.Error ~loc
              ~notes:[ show; fnote ]
              "index %d of array `%s` is always negative" k array
          else if Float.is_finite dv.I.hi && iv.I.lo > dv.I.hi -. 1. then
            emit st ~code:"L004" ~severity:Diagnostic.Error ~loc
              ~notes:[ show; fnote ]
              "index %d of array `%s` is always out of bounds" k array
          else begin
            if Float.is_finite iv.I.lo && iv.I.lo < 0. then
              emit st ~code:"L004" ~severity:Diagnostic.Warning ~loc
                ~notes:[ show; fnote ]
                "index %d of array `%s` may be negative" k array;
            if
              Float.is_finite iv.I.hi
              && Float.is_finite dv.I.hi
              && iv.I.hi > dv.I.hi -. 1.
            then
              emit st ~code:"L004" ~severity:Diagnostic.Warning ~loc
                ~notes:[ show; fnote ]
                "index %d of array `%s` may exceed its dimension" k array
          end)
        index

(* --- the walk -------------------------------------------------------- *)

(* Restrict [result] to the variables visible before a nested block:
   names introduced inside go out of scope, but rebinds of outer names
   persist (the BET's context is threaded through branches — the
   pedagogical example's [knob] depends on it). *)
let restrict outer result =
  Smap.mapi
    (fun v cur ->
      match Smap.find_opt v result with Some x -> x | None -> cur)
    outer

let join_envs outer a b =
  Smap.mapi
    (fun v cur ->
      let get m = match Smap.find_opt v m with Some x -> x | None -> cur in
      I.join (get a) (get b))
    outer

let record_verdict st s ~fname ~cond_str t =
  if not st.quiet then begin
    let v =
      match Hashtbl.find_opt st.verdicts s.sid with
      | Some v -> v
      | None ->
        let v =
          {
            v_loc = s.loc;
            v_expr = cond_str;
            v_fname = fname;
            all_true = true;
            all_false = true;
          }
        in
        Hashtbl.add st.verdicts s.sid v;
        v
    in
    v.all_true <- v.all_true && t = I.True;
    v.all_false <- v.all_false && t = I.False
  end

(* [mult] is the interval of expected execution counts of the current
   statement (entry body = 1); it only feeds L010's volume totals.
   [stack] guards against recursive call chains (flagged by V011, so
   we silently stop inlining). *)
let rec walk_block st ~fname ~stack env arrays mult b =
  List.fold_left
    (fun env s -> walk_stmt st ~fname ~stack env arrays mult s)
    env b

(* One-step widening for loop bodies: quietly walk the body to find
   which outer variables it rebinds to a different abstract value,
   widen those to top, and repeat until the set is stable (a Let that
   only depends on stable values is re-established identically every
   iteration, so the widened entry env is a fixpoint). *)
and widen_for_body st ~fname ~stack env arrays ~enter body =
  let apply widen = Sset.fold (fun v m -> Smap.add v I.top m) widen env in
  let rec discover widen n =
    let entry = apply widen in
    let was = st.quiet in
    st.quiet <- true;
    let out = walk_block st ~fname ~stack (enter entry) arrays I.top body in
    st.quiet <- was;
    let changed =
      Smap.fold
        (fun v cur acc ->
          match Smap.find_opt v out with
          | Some x when x <> cur -> Sset.add v acc
          | _ -> acc)
        entry Sset.empty
    in
    let widen' = Sset.union widen changed in
    if n >= 4 || Sset.equal widen' widen then widen' else discover widen' (n + 1)
  in
  apply (discover Sset.empty 0)

and walk_stmt st ~fname ~stack env arrays mult s =
  if st.budget <= 0 then env
  else begin
    st.budget <- st.budget - 1;
    let fnote = Fmt.str "in function `%s`" fname in
    let loc = s.loc in
    match s.kind with
    | Comp { flops; iops; divs; vec = _ } ->
      List.iter (check_div st env loc ~fnote) [ flops; iops; divs ];
      let zero e = I.const (eval env e) = Some 0. in
      if zero flops && zero iops && zero divs then
        emit st ~code:"L006" ~severity:Diagnostic.Warning ~loc
          ~notes:[ fnote ] "comp models no work (flops, iops and divs are all 0)";
      env
    | Mem { loads; stores } ->
      List.iter
        (fun (a : access) ->
          List.iter (check_div st env loc ~fnote) a.index;
          check_access st env arrays loc ~fnote a)
        (loads @ stores);
      env
    | Let (v, e) ->
      check_div st env loc ~fnote e;
      Smap.add v (eval env e) env
    | If { cond; then_; else_ } -> (
      match cond with
      | Cexpr e ->
        check_div st env loc ~fnote e;
        let t = truth env e in
        record_verdict st s ~fname ~cond_str:(expr_str e) t;
        let half = I.mul mult (I.make 0. 1.) in
        let then_mult, else_mult =
          match t with
          | I.True -> (mult, I.of_int 0)
          | I.False -> (I.of_int 0, mult)
          | I.Unknown -> (half, half)
        in
        let env_t =
          walk_block st ~fname ~stack (refine env e true) arrays then_mult
            then_
        in
        let env_e =
          walk_block st ~fname ~stack (refine env e false) arrays else_mult
            else_
        in
        (match t with
        | I.True -> restrict env env_t
        | I.False -> restrict env env_e
        | I.Unknown -> join_envs env env_t env_e)
      | Cdata { name; p } ->
        check_div st env loc ~fnote p;
        check_prob st env loc ~fnote
          ~what:(Fmt.str "data branch `%s`" name)
          p;
        check_hint st loc ~fnote ~what:"data branch" name;
        let m = I.mul mult (I.make 0. 1.) in
        let env_t = walk_block st ~fname ~stack env arrays m then_ in
        let env_e = walk_block st ~fname ~stack env arrays m else_ in
        join_envs env env_t env_e)
    | For { var; lo; hi; step; body } ->
      let wenv =
        widen_for_body st ~fname ~stack env arrays body
          ~enter:(fun entry ->
            let li = eval entry lo and hi_i = eval entry hi in
            Smap.add var (I.make li.I.lo hi_i.I.hi) entry)
      in
      List.iter (check_div st wenv loc ~fnote) [ lo; hi; step ];
      let li = eval wenv lo and hi_i = eval wenv hi and si = eval wenv step in
      if si.I.hi <= 0. then
        emit st ~code:"L001" ~severity:Diagnostic.Error ~loc
          ~notes:
            [
              Fmt.str "step `%s` evaluates to %s" (expr_str step)
                (I.to_string si);
              fnote;
            ]
          "loop step is never positive"
      else if si.I.lo <= 0. && Float.is_finite si.I.lo then
        emit st ~code:"L001" ~severity:Diagnostic.Warning ~loc
          ~notes:
            [
              Fmt.str "step `%s` evaluates to %s" (expr_str step)
                (I.to_string si);
              fnote;
            ]
          "loop step may be non-positive";
      if hi_i.I.hi < li.I.lo then
        emit st ~code:"L001" ~severity:Diagnostic.Warning ~loc
          ~notes:
            [
              Fmt.str "range `%s` to `%s` evaluates to %s to %s"
                (expr_str lo) (expr_str hi) (I.to_string li)
                (I.to_string hi_i);
              fnote;
            ]
          "loop never executes (empty range)";
      let trips =
        if si.I.hi <= 0. then I.of_int 0
        else
          let pos_step =
            match I.meet si (I.make Float.min_float infinity) with
            | Some s -> s
            | None -> si
          in
          I.clamp_nonneg (I.add (I.div (I.sub hi_i li) pos_step) (I.of_int 1))
      in
      let venv = Smap.add var (I.make li.I.lo hi_i.I.hi) wenv in
      let out = walk_block st ~fname ~stack venv arrays (I.mul mult trips) body in
      ignore out;
      restrict env wenv
    | While { name; p_continue; max_iter; body } ->
      let wenv =
        widen_for_body st ~fname ~stack env arrays body ~enter:(fun e -> e)
      in
      List.iter (check_div st wenv loc ~fnote) [ p_continue; max_iter ];
      check_prob st wenv loc ~fnote
        ~what:(Fmt.str "while loop `%s` continue" name)
        p_continue;
      check_hint st loc ~fnote ~what:"while loop" name;
      let pi = eval wenv p_continue and mi = eval wenv max_iter in
      if mi.I.hi < 1. then
        emit st ~code:"L001" ~severity:Diagnostic.Warning ~loc
          ~notes:
            [
              Fmt.str "max_iter `%s` evaluates to %s" (expr_str max_iter)
                (I.to_string mi);
              fnote;
            ]
          "while loop body never executes (max_iter < 1)"
      else if pi.I.lo >= 1. && mi.I.hi = infinity then
        emit st ~code:"L009" ~severity:Diagnostic.Warning ~loc
          ~notes:
            [
              Fmt.str "p_continue `%s` evaluates to %s" (expr_str p_continue)
                (I.to_string pi);
              Fmt.str "max_iter `%s` is unbounded" (expr_str max_iter);
              fnote;
            ]
          "while loop `%s` has p_continue = 1 and no finite iteration cap"
          name;
      let iters = I.make 0. (Float.max 0. mi.I.hi) in
      ignore (walk_block st ~fname ~stack wenv arrays (I.mul mult iters) body);
      restrict env wenv
    | Call (callee, args) ->
      List.iter (check_div st env loc ~fnote) args;
      (match Smap.find_opt callee st.funcs with
      | Some f
        when (not (List.mem callee stack))
             && List.length f.params = List.length args ->
        let cenv =
          List.fold_left2
            (fun m prm a -> Smap.add prm (eval env a) m)
            st.base_env f.params args
        in
        ignore
          (walk_block st ~fname:callee ~stack:(callee :: stack) cenv
             (arrays_of st f) mult f.body)
      | _ -> () (* undefined/recursive/mis-aritied: Validate's turf *));
      env
    | Lib { name; args; scale } ->
      List.iter (check_div st env loc ~fnote) (scale :: args);
      let lower = String.lowercase_ascii name in
      (* Dead code (mult = 0) and discovery walks transfer nothing. *)
      if (not st.quiet) && I.const mult <> Some 0. then begin
        let vol = I.mul mult (eval env scale) in
        if contains_sub lower "send" then st.sends <- (loc, vol) :: st.sends
        else if contains_sub lower "recv" then
          st.recvs <- (loc, vol) :: st.recvs
      end;
      env
    | Return -> env
    | Break { name; p } ->
      check_div st env loc ~fnote p;
      check_prob st env loc ~fnote ~what:(Fmt.str "break `%s`" name) p;
      check_hint st loc ~fnote ~what:"break" name;
      env
    | Continue { name; p } ->
      check_div st env loc ~fnote p;
      check_prob st env loc ~fnote ~what:(Fmt.str "continue `%s`" name) p;
      check_hint st loc ~fnote ~what:"continue" name;
      env
  end

(* --- entry points ---------------------------------------------------- *)

let interval_of_value = function
  | Value.I n -> I.of_int n
  | Value.F f -> I.of_float f
  | Value.B b -> I.of_bool b

let run ?(config = default_config) ?(inputs = []) (p : program) =
  Skope_telemetry.Span.with_ ~name:"lint_run" (fun () ->
  let funcs =
    List.fold_left (fun m f -> Smap.add f.fname f m) Smap.empty p.funcs
  in
  let global_arrays =
    List.fold_left
      (fun m (a : array_decl) -> Smap.add a.aname a m)
      Smap.empty p.globals
  in
  let base_env =
    List.fold_left
      (fun m (v, value) -> Smap.add v (interval_of_value value) m)
      Smap.empty inputs
  in
  let st =
    {
      disabled = Sset.of_list config.disabled;
      hints = Sset.of_list config.hints;
      funcs;
      global_arrays;
      base_env;
      verdicts = Hashtbl.create 64;
      diags = [];
      sends = [];
      recvs = [];
      budget = 200_000;
      quiet = false;
    }
  in
  (* Static reachability from the entry, for L007. *)
  let reachable = Hashtbl.create 16 in
  let rec reach name =
    if not (Hashtbl.mem reachable name) then begin
      Hashtbl.add reachable name ();
      match Smap.find_opt name st.funcs with
      | None -> ()
      | Some f ->
        fold_block
          (fun () s -> match s.kind with Call (n, _) -> reach n | _ -> ())
          () f.body
    end
  in
  reach p.entry;
  (match Smap.find_opt p.entry st.funcs with
  | None -> () (* Validate's V002 *)
  | Some f ->
    let env =
      List.fold_left
        (fun m prm -> Smap.add prm I.top m)
        st.base_env f.params
    in
    ignore
      (walk_block st ~fname:f.fname ~stack:[ f.fname ] env (arrays_of st f)
         (I.of_int 1) f.body));
  (* L010: compare total transferred volumes while only reachable code
     has contributed. *)
  (match (List.rev st.sends, List.rev st.recvs) with
  | (loc, _) :: _, _ :: _ ->
    let total = List.fold_left (fun acc (_, v) -> I.add acc v) (I.of_int 0) in
    let s = total st.sends and r = total st.recvs in
    if I.meet s r = None then
      emit st ~code:"L010" ~severity:Diagnostic.Warning ~loc
        ~notes:
          [
            Fmt.str "total send volume %s" (I.to_string s);
            Fmt.str "total receive volume %s" (I.to_string r);
          ]
        "send and receive volumes can never balance"
  | _ -> ());
  (* L007, then walk the unreachable functions anyway so their local
     defects still surface (with zero execution count). *)
  List.iter
    (fun (f : func) ->
      if not (Hashtbl.mem reachable f.fname) then begin
        let loc = match f.body with s :: _ -> s.loc | [] -> Loc.none in
        emit st ~code:"L007" ~severity:Diagnostic.Warning ~loc
          "function `%s` is unreachable from entry `%s`" f.fname p.entry;
        let env =
          List.fold_left
            (fun m prm -> Smap.add prm I.top m)
            st.base_env f.params
        in
        ignore
          (walk_block st ~fname:f.fname ~stack:[ f.fname ] env
             (arrays_of st f) (I.of_int 0) f.body)
      end)
    p.funcs;
  (* L005: a branch is only dead if EVERY inlined visit (call sites can
     bind parameters differently) decided the condition the same way. *)
  Hashtbl.iter
    (fun _sid v ->
      let fnote = Fmt.str "in function `%s`" v.v_fname in
      if v.all_true then
        emit st ~code:"L005" ~severity:Diagnostic.Warning ~loc:v.v_loc
          ~notes:[ Fmt.str "condition `%s` always holds" v.v_expr; fnote ]
          "branch condition is statically true; the else branch is dead"
      else if v.all_false then
        emit st ~code:"L005" ~severity:Diagnostic.Warning ~loc:v.v_loc
          ~notes:[ Fmt.str "condition `%s` never holds" v.v_expr; fnote ]
          "branch condition is statically false; the then branch is dead")
    st.verdicts;
  let diags = Diagnostic.normalize st.diags in
  Skope_telemetry.Span.count "lint_diagnostics"
    (float_of_int (List.length diags));
  diags)

exception Rejected of Diagnostic.t list

let check_exn ?inputs p =
  let errors =
    List.filter
      (fun d -> d.Diagnostic.severity = Diagnostic.Error)
      (run ?inputs p)
  in
  if errors <> [] then raise (Rejected errors)
