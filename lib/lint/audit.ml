(** The `skope audit` pass: scaling, working-set and communication
    diagnostics (rules A001..A008) over the symbolic cost model.

    Where lint (L-rules) reasons over concrete intervals at one scale,
    audit reasons over {e closed forms}: [Symbolic.derive] gives every
    block a trip/work expression in the workload's input parameters,
    and the rules probe those expressions along parameter sweeps —
    work that refuses to shrink with the rank count (Amdahl),
    communication outgrowing computation, Kerncraft-style layer
    conditions for L1/L2 working-set fits and the scale at which a
    block falls out of cache, per-rank load imbalance, and a
    synchronous-rendezvous deadlock check over send/recv patterns. *)

open Skope_skeleton
module Json = Skope_report.Json
module Span = Skope_telemetry.Span
module Value = Skope_bet.Value
module Eval = Skope_bet.Eval
module Work = Skope_bet.Work
module Bnode = Skope_bet.Node
module Block_id = Skope_bet.Block_id
module Machine = Skope_hw.Machine
module Commsim = Skope_multinode.Commsim
module Smap = Eval.Smap
module S = Symbolic

let rules =
  [
    ("A001", "serial (Amdahl) block: work does not shrink as ranks grow");
    ("A002", "communication volume grows faster with ranks than computation");
    ("A003", "loop working set exceeds L1 at the analyzed scale");
    ("A004", "loop working set exceeds L2 at the analyzed scale (DRAM streaming)");
    ("A005", "working set crosses L2 within reachable scales: flips memory-bound");
    ("A006", "rank load imbalance across the rank space");
    ("A007", "static deadlock: send/recv wait-for cycle");
    ("A008", "scaling hotspot shift: a minor block outgrows the dominant one");
  ]

type config = {
  disabled : string list;
  machine : Machine.t;
  ranks : int;  (** rank-space size for A006/A007 when no [p] input *)
  vary : (float -> (string * Value.t) list) option;
      (** full input rebinding at scale multiplier [m]; defaults to
          multiplying every non-rank numeric input that is [>= 2] *)
}

let default_config =
  {
    disabled = [];
    machine = Skope_hw.Machines.find_exn "bgq";
    ranks = 4;
    vary = None;
  }

type report = { diags : Diagnostic.t list; sym : S.result }

(* --- parameter-space helpers ----------------------------------------- *)

let p_names = [ "p"; "np"; "nproc"; "nprocs"; "nranks"; "ranks"; "npes"; "commsize" ]
let rank_names = [ "rank"; "myrank"; "my_rank"; "rankid"; "rank_id"; "pe"; "mype" ]

let find_input names inputs =
  List.find_opt (fun (k, _) -> List.mem (String.lowercase_ascii k) names) inputs

let scale_param v m =
  match v with
  | Value.I i when i >= 2 ->
    Value.I (max 1 (int_of_float (Float.round (float_of_int i *. m))))
  | Value.F f when f >= 2. -> Value.F (f *. m)
  | v -> v

(* Default sweep: every non-rank numeric input >= 2 scales with [m]
   (rank identities stay fixed; flags and small constants too). *)
let default_vary inputs m =
  List.map
    (fun (k, v) ->
      if List.mem (String.lowercase_ascii k) rank_names then (k, v)
      else (k, scale_param v m))
    inputs

let vary_one inputs name m =
  List.map (fun (k, v) -> if String.equal k name then (k, scale_param v m) else (k, v)) inputs

let rebind inputs name value =
  List.map (fun (k, v) -> if String.equal k name then (k, value) else (k, v)) inputs

(* --- source locations for blocks ------------------------------------- *)

let loc_table program =
  let tbl = Hashtbl.create 64 in
  Ast.fold_program (fun () (s : Ast.stmt) -> Hashtbl.replace tbl s.Ast.sid s.Ast.loc) () program;
  tbl

let block_loc program tbl = function
  | Block_id.Loop sid | Block_id.Arm (sid, _) | Block_id.Libc sid ->
    Option.value ~default:Loc.none (Hashtbl.find_opt tbl sid)
  | Block_id.Fn f -> (
    match Ast.find_func program f with
    | exception Not_found -> Loc.none
    | fn -> ( match fn.Ast.body with s :: _ -> s.Ast.loc | [] -> Loc.none))

(* --- misc ------------------------------------------------------------- *)

let human_bytes b =
  if b >= 1073741824. then Fmt.str "%.3g GiB" (b /. 1073741824.)
  else if b >= 1048576. then Fmt.str "%.3g MiB" (b /. 1048576.)
  else if b >= 1024. then Fmt.str "%.3g KiB" (b /. 1024.)
  else Fmt.str "%.0f B" b

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  go 0

let is_comm_name name =
  let l = String.lowercase_ascii name in
  contains_sub l "send" || contains_sub l "recv"

(* --- per-block enr-weighted totals ----------------------------------- *)

type bt = {
  ops_ref : float;
  flops_ref : float;
  bytes_ref : float;
  ops_sym : Ast.expr;
  flops_sym : Ast.expr;
  bytes_sym : Ast.expr;
}

let ops_expr (n : S.node) =
  S.add (S.add n.S.work.S.s_flops n.S.work.S.s_iops)
    (S.add n.S.work.S.s_loads n.S.work.S.s_stores)

let block_totals sroot =
  S.fold_enr
    (fun m (n : S.node) ~enr_ref ~enr_sym ->
      let entry =
        {
          ops_ref = enr_ref *. Work.ops n.S.work_ref;
          flops_ref = enr_ref *. n.S.work_ref.Work.flops;
          bytes_ref = enr_ref *. Work.bytes n.S.work_ref;
          ops_sym = S.mul enr_sym (ops_expr n);
          flops_sym = S.mul enr_sym n.S.work.S.s_flops;
          bytes_sym = S.mul enr_sym (S.add n.S.work.S.s_lbytes n.S.work.S.s_sbytes);
        }
      in
      Block_id.Map.update n.S.block
        (function
          | None -> Some entry
          | Some t ->
            Some
              {
                ops_ref = t.ops_ref +. entry.ops_ref;
                flops_ref = t.flops_ref +. entry.flops_ref;
                bytes_ref = t.bytes_ref +. entry.bytes_ref;
                ops_sym = S.add t.ops_sym entry.ops_sym;
                flops_sym = S.add t.flops_sym entry.flops_sym;
                bytes_sym = S.add t.bytes_sym entry.bytes_sym;
              })
        m)
    Block_id.Map.empty sroot

(* --- A007 machinery: per-rank op extraction --------------------------- *)

let rec stmts_have_comm program depth stmts =
  List.exists (stmt_has_comm program depth) stmts

and stmt_has_comm program depth (s : Ast.stmt) =
  match s.Ast.kind with
  | Ast.Lib { name; _ } -> is_comm_name name
  | Ast.If { then_; else_; _ } ->
    stmts_have_comm program depth then_ || stmts_have_comm program depth else_
  | Ast.For { body; _ } | Ast.While { body; _ } -> stmts_have_comm program depth body
  | Ast.Call (f, _) when depth > 0 -> (
    match Ast.find_func program f with
    | exception Not_found -> false
    | fn -> stmts_have_comm program (depth - 1) fn.Ast.body)
  | _ -> false

let program_has_comm program =
  Ast.fold_program
    (fun acc (s : Ast.stmt) ->
      acc || match s.Ast.kind with Ast.Lib { name; _ } -> is_comm_name name | _ -> false)
    false program

type xstate = {
  mutable ops_rev : Commsim.op list;
  mutable n_ops : int;
  mutable dropped : bool;
      (** a comm op in the {e middle} of the sequence was skipped
          (unevaluable branch, deep call, unresolvable peer): verdicts
          would be unsound, so A007 abstains *)
  mutable truncated : bool;
      (** a {e suffix} was cut (op cap): cycles remain sound,
          terminated-rank chains do not *)
  mutable first_loc : Loc.t option;
}

exception Capped

let rec lets_of acc stmts =
  List.fold_left
    (fun acc (s : Ast.stmt) ->
      match s.Ast.kind with
      | Ast.Let (v, _) -> v :: acc
      | Ast.If { then_; else_; _ } -> lets_of (lets_of acc then_) else_
      | Ast.For { var; body; _ } -> lets_of (var :: acc) body
      | Ast.While { body; _ } -> lets_of acc body
      | _ -> acc)
    acc stmts

let remove_lets stmts env = List.fold_left (fun e v -> Smap.remove v e) env (lets_of [] stmts)

let max_rank_ops = 128
let max_unroll = 8

(* Concrete straight-line extraction of rank [r]'s blocking comm ops.
   For loops unroll up to [max_unroll] iterations with real index
   values; branches are taken only when decidable ([Cdata] needs p
   outside (0.001, 0.999)); peers come from the first lib argument
   evaluated mod [nranks], falling back to left/right-style name
   suffixes. *)
let extract_rank_ops program ~inputs ~rank_name ~nranks r =
  let xs = { ops_rev = []; n_ops = 0; dropped = false; truncated = false; first_loc = None } in
  let base =
    match rank_name with Some k -> rebind inputs k (Value.I r) | None -> inputs
  in
  let genv = Eval.env_of_list base in
  let flag_if_comm stmts = if stmts_have_comm program max_unroll stmts then xs.dropped <- true in
  let rec walk_block env depth stmts =
    List.fold_left
      (fun envo s -> match envo with None -> None | Some env -> walk env depth s)
      (Some env) stmts
  and walk env depth (s : Ast.stmt) : Eval.env option =
    match s.Ast.kind with
    | Ast.Comp _ | Ast.Mem _ | Ast.Break _ | Ast.Continue _ -> Some env
    | Ast.Let (v, e) ->
      Some
        (match Eval.eval env e with
        | Some value -> Smap.add v value env
        | None -> Smap.remove v env)
    | Ast.Return -> None
    | Ast.If { cond; then_; else_ } -> (
      let undecided () =
        flag_if_comm then_;
        flag_if_comm else_;
        Some (remove_lets then_ (remove_lets else_ env))
      in
      match cond with
      | Ast.Cexpr e -> (
        match Eval.eval env e with
        | Some v -> if Value.truthy v then walk_block env depth then_ else walk_block env depth else_
        | None -> undecided ())
      | Ast.Cdata { p; _ } ->
        let pv = Eval.eval_prob ~default:0.5 env p in
        if pv >= 0.999 then walk_block env depth then_
        else if pv <= 0.001 then walk_block env depth else_
        else undecided ())
    | Ast.For { var; lo; hi; step; body } -> (
      match (Eval.eval env lo, Eval.eval env hi, Eval.eval env step) with
      | Some lov, Some hiv, Some stv ->
        let lof = Value.to_float lov
        and hif = Value.to_float hiv
        and stf = Value.to_float stv in
        if stf <= 0. then Some env
        else begin
          let n = int_of_float (Float.max 0. (Float.floor ((hif -. lof) /. stf) +. 1.)) in
          let k = min n max_unroll in
          if n > k then flag_if_comm body;
          let rec iter i env =
            if i >= k then Some env
            else
              let iv = Value.of_float (lof +. (stf *. float_of_int i)) in
              match walk_block (Smap.add var iv env) depth body with
              | None -> None
              | Some env -> iter (i + 1) env
          in
          match iter 0 env with
          | None -> None
          | Some env ->
            let env = Smap.remove var env in
            Some (if n > k then remove_lets body env else env)
        end
      | _ ->
        flag_if_comm body;
        Some (remove_lets body env))
    | Ast.While { max_iter; body; _ } ->
      (match Eval.eval env max_iter with
      | Some v when Value.to_float v <= 1. -> ignore (walk_block env depth body)
      | _ -> flag_if_comm body);
      Some (remove_lets body env)
    | Ast.Call (fname, args) -> (
      match Ast.find_func program fname with
      | exception Not_found -> Some env
      | callee ->
        if depth >= 8 then begin
          flag_if_comm callee.Ast.body;
          Some env
        end
        else begin
          let params = callee.Ast.params in
          let args' =
            if List.length args = List.length params then args
            else List.init (List.length params) (fun _ -> Ast.Int 0)
          in
          let cenv =
            List.fold_left2
              (fun m p a ->
                match Eval.eval env a with
                | Some v -> Smap.add p v m
                | None -> Smap.remove p m)
              genv params args'
          in
          ignore (walk_block cenv (depth + 1) callee.Ast.body);
          Some env
        end)
    | Ast.Lib { name; args; scale = _ } ->
      let l = String.lowercase_ascii name in
      let is_send = contains_sub l "send" in
      let is_recv = (not is_send) && contains_sub l "recv" in
      if not (is_send || is_recv) then Some env
      else begin
        if xs.n_ops >= max_rank_ops then begin
          xs.truncated <- true;
          raise Capped
        end;
        let peer =
          match args with
          | a :: _ -> (
            match Eval.eval env a with
            | Some v ->
              Some (((int_of_float (Value.to_float v) mod nranks) + nranks) mod nranks)
            | None -> None)
          | [] -> None
        in
        let peer =
          match peer with
          | Some q -> Some q
          | None ->
            if contains_sub l "left" || contains_sub l "prev" || contains_sub l "up" then
              Some ((r - 1 + nranks) mod nranks)
            else if contains_sub l "right" || contains_sub l "next" || contains_sub l "down"
            then Some ((r + 1) mod nranks)
            else None
        in
        (match peer with
        | None -> xs.dropped <- true
        | Some q ->
          if xs.first_loc = None then xs.first_loc <- Some s.Ast.loc;
          xs.ops_rev <- (if is_send then Commsim.Send q else Commsim.Recv q) :: xs.ops_rev;
          xs.n_ops <- xs.n_ops + 1);
        Some env
      end
  in
  (try
     let entry = Ast.entry_func program in
     ignore (walk_block genv 0 entry.Ast.body)
   with
  | Capped -> ()
  | Not_found -> ());
  (List.rev xs.ops_rev, xs)

(* --- the rules -------------------------------------------------------- *)

let run ?(config = default_config) ?(inputs = []) program : report =
  Span.with_ ~name:"audit" (fun () ->
      let sym =
        S.derive ~lib_work:(Skope_hw.Libmix.work_fn Skope_hw.Libmix.default) ~inputs
          program
      in
      let sroot = sym.S.sroot in
      let tbl = loc_table program in
      let bloc = block_loc program tbl in
      let totals = block_totals sroot in
      let grand_ops = Block_id.Map.fold (fun _ t acc -> acc +. t.ops_ref) totals 0. in
      let vary_all =
        match config.vary with Some f -> f | None -> default_vary inputs
      in
      let env_all m = Eval.env_of_list (vary_all m) in
      let p_param = find_input p_names inputs in
      let rank_param = find_input rank_names inputs in
      let nranks =
        match p_param with
        | Some (_, Value.I i) when i >= 2 -> min i 16
        | _ -> max 2 config.ranks
      in
      let m = config.machine in
      let l1 = float_of_int m.Machine.l1.Machine.size_bytes in
      let l2 = float_of_int m.Machine.l2.Machine.size_bytes in
      let balance = Machine.peak_flops m /. (m.Machine.mem_bw_gbs *. 1e9) in

      (* subtree aggregates under a node, given its parent's global ENR *)
      let rec sub_agg ~enr (n : S.node) =
        let enr = n.S.trips_ref *. n.S.prob *. enr in
        let w = n.S.work_ref in
        List.fold_left
          (fun (o, f, b) c ->
            let o', f', b' = sub_agg ~enr c in
            (o +. o', f +. f', b +. b'))
          (enr *. Work.ops w, enr *. w.Work.flops, enr *. Work.bytes w)
          n.S.children
      in

      (* loops with their parent ENR, in traversal order *)
      let loops = ref [] in
      let rec collect ~penr (n : S.node) =
        let enr = n.S.trips_ref *. n.S.prob *. penr in
        (match n.S.kind with
        | Bnode.Loop -> loops := (n, penr) :: !loops
        | _ -> ());
        List.iter (collect ~penr:enr) n.S.children
      in
      collect ~penr:1. sroot;
      let loops = List.rev !loops in
      let rec desc_loops (n : S.node) =
        List.concat_map
          (fun (c : S.node) ->
            (match c.S.kind with Bnode.Loop -> [ c ] | _ -> []) @ desc_loops c)
          n.S.children
      in

      (* per-array subtree traffic as closed forms (bytes per one
         execution of the node), memoized by node id *)
      let traffic_tbl : (int, Ast.expr Smap.t) Hashtbl.t = Hashtbl.create 32 in
      let add_to m a e =
        Smap.update a (function None -> Some e | Some x -> Some (S.add x e)) m
      in
      let rec traffic (n : S.node) : Ast.expr Smap.t =
        match Hashtbl.find_opt traffic_tbl n.S.id with
        | Some t -> t
        | None ->
          let own =
            List.fold_left (fun m (a, b) -> add_to m a (S.cf b)) Smap.empty n.S.touched
          in
          let merged =
            List.fold_left
              (fun m (c : S.node) ->
                Smap.fold (fun a e m -> add_to m a (S.mul (S.cf c.S.prob) e)) (traffic c) m)
              own n.S.children
          in
          let t = Smap.map (fun e -> S.mul n.S.trips e) merged in
          Hashtbl.replace traffic_tbl n.S.id t;
          t
      in
      let decls =
        List.fold_left
          (fun m (a : Ast.array_decl) -> Smap.add a.Ast.aname a m)
          Smap.empty
          (program.Ast.globals
          @ List.concat_map (fun (f : Ast.func) -> f.Ast.arrays) program.Ast.funcs)
      in
      (* layer condition: per-array traffic capped at the array's total
         footprint (a loop re-touching one array never needs more than
         the array), summed over arrays *)
      let cap_at env (a : Ast.array_decl) =
        let rec go = function
          | [] -> Some 1.
          | d :: rest -> (
            match Eval.eval env d with
            | Some v -> Option.map (fun r -> r *. Float.max 0. (Value.to_float v)) (go rest)
            | None -> None)
        in
        Option.map (fun p -> p *. float_of_int a.Ast.elem_bytes) (go a.Ast.dims)
      in
      let ws_detail_at env n =
        Smap.fold
          (fun a e acc ->
            let t = Float.max 0. (Eval.eval_float ~default:0. env e) in
            let t =
              match Smap.find_opt a decls with
              | Some d -> (
                match cap_at env d with Some c -> Float.min c t | None -> t)
              | None -> t
            in
            (a, t) :: acc)
          (traffic n) []
        |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
      in
      let ws_at env n = List.fold_left (fun acc (_, t) -> acc +. t) 0. (ws_detail_at env n) in
      let ws_ref_tbl = Hashtbl.create 32 in
      let root_env = Eval.env_of_list inputs in
      let ws_ref n =
        match Hashtbl.find_opt ws_ref_tbl n.S.id with
        | Some w -> w
        | None ->
          let w = ws_at root_env n in
          Hashtbl.replace ws_ref_tbl n.S.id w;
          w
      in

      let order_at eval_at e = S.growth_order ~eval_at e in

      (* A001: blocks holding >=5% of work whose ops do not shrink as
         the rank count grows. *)
      let a001 () =
        match p_param with
        | Some (pname, _) when grand_ops > 0. ->
          let eval_at mm = Eval.env_of_list (vary_one inputs pname mm) in
          Block_id.Map.fold
            (fun block t acc ->
              let share = t.ops_ref /. grand_ops in
              if share < 0.05 then acc
              else
                match order_at eval_at t.ops_sym with
                | Some o when o >= -0.2 ->
                  Diagnostic.make ~code:"A001" ~severity:Diagnostic.Warning
                    ~loc:(bloc block)
                    ~notes:
                      [
                        Fmt.str "work %a" S.pp_closed_form t.ops_sym;
                        Fmt.str "Amdahl: overall speedup capped near %.3gx" (1. /. share);
                      ]
                    (Fmt.str
                       "serial bottleneck: `%s` holds %.0f%% of total work, independent \
                        of `%s`"
                       (Block_id.to_string block) (100. *. share) pname)
                  :: acc
                | _ -> acc)
            totals []
        | _ -> []
      in

      (* A002: send/recv volume outgrows computation along the rank
         axis. *)
      let comm_sym, comm_ref, comm_loc =
        S.fold_enr
          (fun (cs, cr, loc) (n : S.node) ~enr_ref ~enr_sym ->
            match (n.S.kind, n.S.lib_scale) with
            | Bnode.Libcall name, Some sc when is_comm_name name ->
              let v = enr_ref *. Float.max 0. (Eval.eval_float ~default:0. root_env sc) in
              let loc = match loc with Some _ -> loc | None -> Some (bloc n.S.block) in
              (S.add cs (S.mul enr_sym sc), cr +. v, loc)
            | _ -> (cs, cr, loc))
          (S.cf 0., 0., None) sroot
      in
      let flops_sym, _flops_ref =
        S.fold_enr
          (fun (fs, fr) (n : S.node) ~enr_ref ~enr_sym ->
            ( S.add fs (S.mul enr_sym n.S.work.S.s_flops),
              fr +. (enr_ref *. n.S.work_ref.Work.flops) ))
          (S.cf 0., 0.) sroot
      in
      let a002 () =
        match p_param with
        | Some (pname, _) when comm_ref > 0. -> (
          let eval_at mm = Eval.env_of_list (vary_one inputs pname mm) in
          match (order_at eval_at comm_sym, order_at eval_at flops_sym) with
          | Some oc, Some of_ when oc -. of_ > 0.2 ->
            [
              Diagnostic.make ~code:"A002" ~severity:Diagnostic.Warning
                ~loc:(Option.value ~default:Loc.none comm_loc)
                ~notes:
                  [
                    Fmt.str "comm volume %a" S.pp_closed_form comm_sym;
                    Fmt.str "compute %a" S.pp_closed_form flops_sym;
                  ]
                (Fmt.str
                   "communication outgrows computation with `%s`: comm scales as order \
                    %.2g vs compute %.2g"
                   pname oc of_);
            ]
          | _ -> [])
        | _ -> []
      in

      (* A003/A004: Kerncraft-style layer conditions.  Fire on the
         deepest loop whose working set exceeds the level, weighted by
         the subtree's share of total work. *)
      let a003_a004 () =
        List.filter_map
          (fun ((n : S.node), penr) ->
            let ws = ws_ref n in
            let level =
              if ws > l2 then Some ("A004", "L2", l2, "streams from DRAM")
              else if ws > l1 then Some ("A003", "L1", l1, "spills to L2")
              else None
            in
            match level with
            | None -> None
            | Some (code, lname, lsize, verdict) ->
              if not (List.mem code [ "A003"; "A004" ]) then None
              else if List.exists (fun d -> ws_ref d > lsize) (desc_loops n) then None
              else begin
                let ops, _, _ = sub_agg ~enr:penr n in
                let share = if grand_ops > 0. then ops /. grand_ops else 0. in
                if share < 0.05 then None
                else
                  let detail = ws_detail_at root_env n in
                  let top =
                    List.filteri (fun i _ -> i < 3) detail
                    |> List.map (fun (a, t) ->
                           Fmt.str "array `%s`: %s per loop execution" a (human_bytes t))
                  in
                  Some
                    (Diagnostic.make ~code ~severity:Diagnostic.Info ~loc:(bloc n.S.block)
                       ~notes:
                         (top
                         @ [
                             Fmt.str "subtree holds %.0f%% of total work" (100. *. share);
                           ])
                       (Fmt.str
                          "loop working set ~%s exceeds %s (%s): %s at the analyzed scale"
                          (human_bytes ws) lname (human_bytes lsize) verdict))
              end)
          loops
      in

      (* A005: the loop fits in L2 today but its intensity is below the
         machine balance — probe the default sweep for the multiplier
         where the working set falls out of L2. *)
      let a005 () =
        List.filter_map
          (fun ((n : S.node), penr) ->
            let ws = ws_ref n in
            if ws <= 0. || ws > l2 then None
            else begin
              let ops, flops, bytes = sub_agg ~enr:penr n in
              let share = if grand_ops > 0. then ops /. grand_ops else 0. in
              let intensity = if bytes > 0. then flops /. bytes else infinity in
              if share < 0.05 || intensity >= balance then None
              else
                let crossing =
                  List.find_opt
                    (fun mm -> ws_at (env_all mm) n > l2)
                    [ 2.; 4.; 8.; 16.; 32.; 64. ]
                in
                match crossing with
                | None -> None
                | Some mm ->
                  Some
                    (Diagnostic.make ~code:"A005" ~severity:Diagnostic.Info
                       ~loc:(bloc n.S.block)
                       ~notes:
                         [
                           Fmt.str "working set %s now; L2 = %s" (human_bytes ws)
                             (human_bytes l2);
                           Fmt.str
                             "intensity %.3g flop/byte < machine balance %.3g: \
                              DRAM-bound once out of cache"
                             intensity balance;
                         ]
                       (Fmt.str
                          "working set crosses L2 near %gx the analyzed scale: loop \
                           flips memory-bound"
                          mm))
            end)
          loops
      in

      (* A006: re-run the concrete BET across the rank space and compare
         per-rank total work. *)
      let a006 () =
        match rank_param with
        | None -> []
        | Some (rname, _) ->
          let lib_work = Skope_hw.Libmix.work_fn Skope_hw.Libmix.default in
          let per_rank =
            List.init nranks (fun r ->
                let res =
                  Skope_bet.Build.build ~lib_work
                    ~inputs:(rebind inputs rname (Value.I r))
                    program
                in
                Bnode.fold_enr
                  (fun acc (bn : Bnode.t) ~enr -> acc +. (enr *. Work.ops bn.Bnode.work))
                  0. res.Skope_bet.Build.root)
          in
          let total = List.fold_left ( +. ) 0. per_rank in
          let mean = total /. float_of_int nranks in
          let mx = List.fold_left Float.max 0. per_rank in
          if mean <= 0. || mx /. mean <= 1.25 then []
          else
            let notes =
              List.mapi (fun r o -> Fmt.str "rank %d: %.6g ops" r o) per_rank
              |> List.filteri (fun i _ -> i < 8)
            in
            let notes =
              if nranks > 8 then notes @ [ Fmt.str "... (%d ranks)" nranks ] else notes
            in
            [
              Diagnostic.make ~code:"A006" ~severity:Diagnostic.Warning
                ~loc:(bloc (Block_id.Fn program.Ast.entry))
                ~notes
                (Fmt.str "rank load imbalance: max/mean ops = %.2f across %d ranks"
                   (mx /. mean) nranks);
            ]
      in

      (* A007: extract each rank's blocking op sequence and run the
         rendezvous simulator.  Abstains when a comm op had to be
         dropped mid-sequence (unsound); suffix truncation keeps cycle
         verdicts sound. *)
      let a007 () =
        if not (program_has_comm program) then []
        else begin
          let rank_name = Option.map fst rank_param in
          let per =
            Array.init nranks (fun r ->
                extract_rank_ops program ~inputs ~rank_name ~nranks r)
          in
          let dropped = Array.exists (fun (_, xs) -> xs.dropped) per in
          let truncated = Array.exists (fun (_, xs) -> xs.truncated) per in
          if dropped then []
          else
            match Commsim.simulate (Array.map fst per) with
            | Commsim.Clean -> []
            | Commsim.Deadlock { stuck; cycle } ->
              if cycle = [] && truncated then []
              else begin
                let loc =
                  Array.to_list per
                  |> List.find_map (fun (_, xs) -> xs.first_loc)
                  |> Option.value ~default:Loc.none
                in
                let pending =
                  List.filteri (fun i _ -> i < 8) stuck
                  |> List.map (fun (s : Commsim.stuck) ->
                         Fmt.str "rank %d blocked at op %d: %a" s.Commsim.rank
                           s.Commsim.index Commsim.pp_op s.Commsim.op)
                in
                let model =
                  Fmt.str
                    "model: synchronous rendezvous point-to-point over %d ranks; peers \
                     from first lib arg (mod ranks) or left/right name suffix"
                    nranks
                in
                let msg =
                  if cycle <> [] then
                    Fmt.str "static deadlock: send/recv wait-for cycle %s"
                      (String.concat " -> "
                         (List.map string_of_int (cycle @ [ List.hd cycle ])))
                  else
                    Fmt.str "static deadlock: %d rank(s) blocked on terminated peers"
                      (List.length stuck)
                in
                [
                  Diagnostic.make ~code:"A007" ~severity:Diagnostic.Error ~loc
                    ~notes:(pending @ [ model ])
                    msg;
                ]
              end
        end
      in

      (* A008: a minor block whose growth order along the default sweep
         beats the dominant block's — today's profile is misleading. *)
      let a008 () =
        if grand_ops <= 0. then []
        else
          let dominant =
            Block_id.Map.fold
              (fun b t acc ->
                match acc with
                | Some (_, t') when t'.ops_ref >= t.ops_ref -> acc
                | _ -> Some (b, t))
              totals None
          in
          match dominant with
          | None -> []
          | Some (db, dt) -> (
            match order_at env_all dt.ops_sym with
            | None -> []
            | Some od ->
              let best =
                Block_id.Map.fold
                  (fun b t acc ->
                    if Block_id.equal b db then acc
                    else
                      let share = t.ops_ref /. grand_ops in
                      if share < 0.001 then acc
                      else
                        match order_at env_all t.ops_sym with
                        | Some o when o > od +. 0.3 -> (
                          match acc with
                          | Some (_, _, o') when o' >= o -> acc
                          | _ -> Some (b, t, o))
                        | _ -> acc)
                  totals None
              in
              match best with
              | None -> []
              | Some (b, t, o) ->
                [
                  Diagnostic.make ~code:"A008" ~severity:Diagnostic.Info ~loc:(bloc b)
                    ~notes:
                      [
                        Fmt.str "block work %a" S.pp_closed_form t.ops_sym;
                        Fmt.str "dominant `%s` work %a" (Block_id.to_string db)
                          S.pp_closed_form dt.ops_sym;
                      ]
                    (Fmt.str
                       "hotspot shift: `%s` (%.1f%% of work) grows as order %.2g, \
                        outpacing dominant `%s` (order %.2g)"
                       (Block_id.to_string b)
                       (100. *. t.ops_ref /. grand_ops)
                       o (Block_id.to_string db) od);
                ])
      in

      let guard code f = if List.mem code config.disabled then [] else f () in
      let diags =
        List.concat
          [
            guard "A001" a001;
            guard "A002" a002;
            (if List.mem "A003" config.disabled && List.mem "A004" config.disabled then
               []
             else
               a003_a004 ()
               |> List.filter (fun (d : Diagnostic.t) ->
                      not (List.mem d.Diagnostic.code config.disabled)));
            guard "A005" a005;
            guard "A006" a006;
            guard "A007" a007;
            guard "A008" a008;
          ]
      in
      let diags = Diagnostic.normalize diags in
      Span.count "audit_diagnostics" (float_of_int (List.length diags));
      Span.count "audit_sym_fallbacks" (float_of_int sym.S.fallbacks);
      { diags; sym })

(* --- shared JSON rendering (CLI / skoped / cluster parity) ------------ *)

let diags_json ~target ~deny_warnings diags =
  let errors, warnings, infos = Diagnostic.counts diags in
  Json.Obj
    [
      ("target", Json.String target);
      ("diagnostics", Diagnostic.list_to_json diags);
      ("errors", Json.Int errors);
      ("warnings", Json.Int warnings);
      ("infos", Json.Int infos);
      ("clean", Json.Bool (not (Diagnostic.fails ~deny_warnings diags)));
    ]

let result_json ~target ?scale ~deny_warnings (config : config) (report : report) =
  let errors, warnings, infos = Diagnostic.counts report.diags in
  Json.Obj
    ([
       ("target", Json.String target);
       ("machine", Json.String config.machine.Machine.name);
     ]
    @ (match scale with Some s -> [ ("scale", Json.Float s) ] | None -> [])
    @ [
        ("diagnostics", Diagnostic.list_to_json report.diags);
        ("errors", Json.Int errors);
        ("warnings", Json.Int warnings);
        ("infos", Json.Int infos);
        ("clean", Json.Bool (not (Diagnostic.fails ~deny_warnings report.diags)));
        ( "sym",
          Json.Obj
            [
              ("nodes", Json.Int (S.node_count report.sym.S.sroot));
              ("checked", Json.Int report.sym.S.checked);
              ("fallbacks", Json.Int report.sym.S.fallbacks);
              ("shape_mismatches", Json.Int report.sym.S.shape_mismatches);
            ] );
      ])
