(** Symbolic cost model over skeleton ASTs.

    [derive] mirrors [Bet.Build.build] step for step but carries, next
    to every concrete expectation, a closed-form [Ast.expr] over the
    workload's input parameters.  Evaluating the symbolic tree at the
    reference inputs reproduces the BET's concrete counts exactly (a
    zip against an independently built BET enforces this, demoting any
    divergent expression to a literal and counting it in [fallbacks]);
    evaluating at other bindings predicts per-block scaling. *)

open Skope_skeleton
module Value = Skope_bet.Value
module Eval = Skope_bet.Eval
module Work = Skope_bet.Work
module Block_id = Skope_bet.Block_id
module Smap = Eval.Smap

(** {1 Expression construction and manipulation}

    Smart constructors folding only float-exact identities, shared
    with the audit rules. *)

val const_v : Value.t -> Ast.expr
val cf : float -> Ast.expr
val add : Ast.expr -> Ast.expr -> Ast.expr
val sub : Ast.expr -> Ast.expr -> Ast.expr
val mul : Ast.expr -> Ast.expr -> Ast.expr
val div : Ast.expr -> Ast.expr -> Ast.expr
val min_ : Ast.expr -> Ast.expr -> Ast.expr
val max_ : Ast.expr -> Ast.expr -> Ast.expr

(** Expression node count. *)
val size : Ast.expr -> int

(** Substitute symbolic bindings for variables; [None] on an unbound
    variable or when the result exceeds the internal size budget. *)
val subst : Ast.expr Smap.t -> Ast.expr -> Ast.expr option

(** {1 Symbolic work vectors} *)

type swork = {
  s_flops : Ast.expr;
  s_iops : Ast.expr;
  s_divs : Ast.expr;
  s_vec_flops : Ast.expr;
  s_vec_issue : Ast.expr;
  s_loads : Ast.expr;
  s_stores : Ast.expr;
  s_lbytes : Ast.expr;
  s_sbytes : Ast.expr;
}

val swork_zero : swork

(** {1 The symbolic tree} *)

type node = {
  id : int;
  block : Block_id.t;
  kind : Skope_bet.Node.kind;
  prob : float;
  trips_ref : float;  (** concrete trips at the reference inputs *)
  trips : Ast.expr;  (** symbolic trips *)
  work_ref : Work.t;  (** concrete work at the reference inputs *)
  work : swork;
  touched : (string * float) list;
      (** bytes moved per array by one execution of the node's direct
          statements; scale dependence enters through [trips] *)
  lib_scale : Ast.expr option;  (** symbolic call volume of lib nodes *)
  note : string;
  children : node list;
}

type result = {
  sroot : node;
  bet : Skope_bet.Build.result;
      (** the independently built BET the tree was reconciled against *)
  checked : int;  (** expressions verified at the reference inputs *)
  fallbacks : int;  (** expressions demoted to concrete literals *)
  shape_mismatches : int;  (** subtrees where the mirror diverged *)
}

val derive :
  ?hints:Skope_bet.Hints.t ->
  ?lib_work:(string -> Work.t option) ->
  ?max_contexts:int ->
  ?inputs:(string * Value.t) list ->
  Ast.program ->
  result

(** Pre-order fold carrying both the concrete expected number of
    repetitions and its symbolic form (root parent = 1). *)
val fold_enr :
  ('a -> node -> enr_ref:float -> enr_sym:Ast.expr -> 'a) -> 'a -> node -> 'a

val node_count : node -> int

(** Empirical growth order of [e] along a parameter sweep: evaluates
    at multipliers 1, 2, 4 via [eval_at] and averages the log2 ratios.
    [Some 0.] when the expression stays near zero; [None] when
    evaluation fails or values are not positive. *)
val growth_order : eval_at:(float -> Eval.env) -> Ast.expr -> float option

(** {1 Display} *)

(** Human-readable closed form: an approximate Laurent-polynomial
    rendering ("~ 0.5 n^2/p") when one is extractable, the raw
    expression otherwise.  Display only — never used for verdicts. *)
val pp_closed_form : Ast.expr Fmt.t
