(** Span-carrying diagnostics with stable rule codes, a rustc-style
    text renderer and a machine-readable JSON form.

    Used by the lint engine (L001..L010), the validator bridge
    (V001..V011) and the parse-error bridge (P001/P002). *)

open Skope_skeleton

type severity = Info | Warning | Error

val severity_label : severity -> string

(** Info < Warning < Error. *)
val compare_severity : severity -> severity -> int

type t = {
  code : string;  (** stable rule code, e.g. ["L002"] *)
  severity : severity;
  loc : Loc.t;
  message : string;
  notes : string list;
}

val make :
  ?notes:string list -> code:string -> severity:severity -> loc:Loc.t ->
  string -> t

(** Bridge a validator issue (codes V001..V011, severity [Error]). *)
val of_validate : Validate.issue -> t

(** Bridge a lexer (P001) or parser (P002) error. *)
val of_lex_error : Loc.t -> string -> t
val of_parse_error : Loc.t -> string -> t

(** Sort by file, line, column, code; drop exact duplicates. *)
val normalize : t list -> t list

(** [(errors, warnings, infos)] counts. *)
val counts : t list -> int * int * int

val max_severity : t list -> severity option

(** True when [ds] contains an [Error], or a [Warning] and
    [deny_warnings] is set. *)
val fails : ?deny_warnings:bool -> t list -> bool

(** Render one diagnostic; when [source] (the full program text) is
    given, includes the offending line with a caret under the column:

    {v
    warning[L001]: loop never executes
      --> demo.skope:4:3
       |
     4 |   for i = 9 to 0 { comp flops=1 }
       |   ^
       = note: in function `main`
    v} *)
val render : ?source:string -> unit -> t Fmt.t

(** Render a list followed by a [summary] line (when non-empty). *)
val render_all : ?source:string -> unit -> t list Fmt.t

val summary : t list -> string

val to_json : t -> Skope_report.Json.t
val list_to_json : t list -> Skope_report.Json.t
