(** Symbolic cost model over skeleton ASTs (the core of `skope audit`).

    [derive] walks the program exactly like [Bet.Build.build] does —
    same context threading, same mass arithmetic, in the same order —
    but alongside every concrete quantity it carries a reified
    [Ast.expr] over the workload's input parameters (n, p, ...).  The
    result is a tree shaped like the BET whose per-node trip counts and
    work vectors are closed-form expressions: evaluating them with
    [Bet.Eval] at the reference inputs reproduces the BET's concrete
    counts bit for bit, and evaluating them at other bindings predicts
    how each block scales.

    Two approximations are inherent and documented here once:

    - {e frozen control flow}: context masses and branch/exit
      probabilities are embedded as float literals taken from the
      reference scale, so a branch decided differently at another scale
      is not re-decided symbolically;
    - {e reconciliation}: every derived expression is checked by
      evaluating it at the reference inputs against the concrete
      mirror, and again against an independently built BET.  Any
      divergence (non-evaluable substitution, float-path corner,
      oversized expression) demotes that expression to a literal of the
      concrete value and bumps [fallbacks] — so soundness of the
      evaluated-at-reference counts is unconditional, and [fallbacks]
      measures how much genuine symbolic structure survived. *)

open Skope_skeleton
module Value = Skope_bet.Value
module Eval = Skope_bet.Eval
module Hints = Skope_bet.Hints
module Work = Skope_bet.Work
module Bnode = Skope_bet.Node
module Block_id = Skope_bet.Block_id
module Smap = Eval.Smap

(* --- expression construction ---------------------------------------- *)

let const_v : Value.t -> Ast.expr = function
  | Value.I i -> Ast.Int i
  | Value.F f -> Ast.Float f
  | Value.B b -> Ast.Bool b

let cf f : Ast.expr = Ast.Float f

let is_zero = function Ast.Float 0. | Ast.Int 0 -> true | _ -> false
let is_one = function Ast.Float 1. | Ast.Int 1 -> true | _ -> false

(* Only identities that are exact in float arithmetic are folded, so a
   simplified expression still evaluates to the bit-identical value. *)
let add a b = if is_zero a then b else if is_zero b then a else Ast.Binop (Ast.Add, a, b)
let sub a b = if is_zero b then a else Ast.Binop (Ast.Sub, a, b)

let mul a b =
  if is_one a then b
  else if is_one b then a
  else if is_zero a || is_zero b then cf 0.
  else Ast.Binop (Ast.Mul, a, b)

let div a b = if is_one b then a else Ast.Binop (Ast.Div, a, b)
let min_ a b = if a = b then a else Ast.Binop (Ast.Min, a, b)
let max_ a b = if a = b then a else Ast.Binop (Ast.Max, a, b)
let pow a b = Ast.Binop (Ast.Pow, a, b)
let floor_ a = Ast.Unop (Ast.Floor, a)

(* Integer floor division for b > 0: (a - (((a mod b) + b) mod b)) / b.
   All-integer operands make this evaluate exactly like Build's
   [Float.floor (a /. b)] on the same values. *)
let fdiv a b =
  let r = Ast.Binop (Ast.Mod, Ast.Binop (Ast.Add, Ast.Binop (Ast.Mod, a, b), b), b) in
  Ast.Binop (Ast.Div, Ast.Binop (Ast.Sub, a, r), b)

let rec size = function
  | Ast.Int _ | Ast.Float _ | Ast.Bool _ | Ast.Var _ -> 1
  | Ast.Binop (_, a, b) | Ast.Cmp (_, a, b) | Ast.And (a, b) | Ast.Or (a, b) ->
    1 + size a + size b
  | Ast.Unop (_, a) -> 1 + size a

exception Cut

let max_expr_size = 4096

(* Substitute the symbolic environment into [e]; [None] when a variable
   has no symbolic binding or the result would blow past the size cap. *)
let subst (senv : Ast.expr Smap.t) (e : Ast.expr) : Ast.expr option =
  let budget = ref max_expr_size in
  let spend n =
    budget := !budget - n;
    if !budget < 0 then raise Cut
  in
  let rec go e =
    match e with
    | Ast.Int _ | Ast.Float _ | Ast.Bool _ ->
      spend 1;
      e
    | Ast.Var v -> (
      match Smap.find_opt v senv with
      | Some se ->
        spend (size se);
        se
      | None -> raise Cut)
    | Ast.Binop (op, a, b) ->
      spend 1;
      let a = go a in
      let b = go b in
      Ast.Binop (op, a, b)
    | Ast.Cmp (op, a, b) ->
      spend 1;
      let a = go a in
      let b = go b in
      Ast.Cmp (op, a, b)
    | Ast.And (a, b) ->
      spend 1;
      let a = go a in
      let b = go b in
      Ast.And (a, b)
    | Ast.Or (a, b) ->
      spend 1;
      let a = go a in
      let b = go b in
      Ast.Or (a, b)
    | Ast.Unop (op, a) ->
      spend 1;
      Ast.Unop (op, go a)
  in
  match go e with x -> Some x | exception Cut -> None

(* --- contexts: (concrete env, symbolic env, mass) -------------------- *)

type sctx = { env : Eval.env; senv : Ast.expr Smap.t; mass : float }

let mass_of cs = List.fold_left (fun acc (c : sctx) -> acc +. c.mass) 0. cs
let cscale c f = { c with mass = c.mass *. f }
let env_equal (a : Eval.env) b = Smap.equal Value.equal a b

(* Mirrors [Bet.Context.normalize] so masses stay bit-identical.  When
   two contexts merge, the first one's symbolic environment is kept:
   both evaluate to the same concrete values at the reference inputs,
   so the per-context invariant survives the merge. *)
let normalize ?(cap = 64) (cs : sctx list) : sctx list =
  let cs = List.filter (fun c -> c.mass > 1e-12) cs in
  let groups : sctx list ref = ref [] in
  List.iter
    (fun c ->
      let rec insert = function
        | [] -> [ c ]
        | g :: rest when env_equal g.env c.env ->
          { g with mass = g.mass +. c.mass } :: rest
        | g :: rest -> g :: insert rest
      in
      groups := insert !groups)
    cs;
  let sorted = List.sort (fun a b -> Float.compare b.mass a.mass) !groups in
  if List.length sorted <= cap then sorted
  else
    match sorted with
    | [] -> []
    | heaviest :: _ ->
      let kept = List.filteri (fun i _ -> i < cap) sorted in
      let dropped =
        List.fold_left
          (fun acc (c : sctx) -> acc +. c.mass)
          0.
          (List.filteri (fun i _ -> i >= cap) sorted)
      in
      List.map
        (fun c ->
          if env_equal c.env heaviest.env then { c with mass = c.mass +. dropped }
          else c)
        kept

(* = Context.expect / expect_prob over sctx. *)
let expect_conc ?(default = 0.) cs e =
  let total, weighted =
    List.fold_left
      (fun (t, w) (c : sctx) ->
        (t +. c.mass, w +. (c.mass *. Eval.eval_float ~default c.env e)))
      (0., 0.) cs
  in
  if total <= 0. then default else weighted /. total

let expect_prob ?(default = 0.5) cs e =
  let total, weighted =
    List.fold_left
      (fun (t, w) (c : sctx) ->
        (t +. c.mass, w +. (c.mass *. Eval.eval_prob ~default c.env e)))
      (0., 0.) cs
  in
  if total <= 0. then default else weighted /. total

let expect_sym ~default cs e =
  let total = mass_of cs in
  if total <= 0. then cf default
  else
    let sum =
      List.fold_left
        (fun acc (c : sctx) ->
          let term =
            match (Eval.eval c.env e, subst c.senv e) with
            | Some _, Some se -> se
            | _ -> cf default
          in
          add acc (mul (cf c.mass) term))
        (cf 0.) cs
    in
    div sum (cf total)

(* --- symbolic work vectors ------------------------------------------- *)

type swork = {
  s_flops : Ast.expr;
  s_iops : Ast.expr;
  s_divs : Ast.expr;
  s_vec_flops : Ast.expr;
  s_vec_issue : Ast.expr;
  s_loads : Ast.expr;
  s_stores : Ast.expr;
  s_lbytes : Ast.expr;
  s_sbytes : Ast.expr;
}

let swork_zero =
  {
    s_flops = cf 0.;
    s_iops = cf 0.;
    s_divs = cf 0.;
    s_vec_flops = cf 0.;
    s_vec_issue = cf 0.;
    s_loads = cf 0.;
    s_stores = cf 0.;
    s_lbytes = cf 0.;
    s_sbytes = cf 0.;
  }

let swork_add a b =
  {
    s_flops = add a.s_flops b.s_flops;
    s_iops = add a.s_iops b.s_iops;
    s_divs = add a.s_divs b.s_divs;
    s_vec_flops = add a.s_vec_flops b.s_vec_flops;
    s_vec_issue = add a.s_vec_issue b.s_vec_issue;
    s_loads = add a.s_loads b.s_loads;
    s_stores = add a.s_stores b.s_stores;
    s_lbytes = add a.s_lbytes b.s_lbytes;
    s_sbytes = add a.s_sbytes b.s_sbytes;
  }

let swork_of_comp ~flops ~iops ~divs ~vec =
  let vec = max 1 vec in
  {
    swork_zero with
    s_flops = flops;
    s_iops = iops;
    s_divs = divs;
    s_vec_flops = (if vec > 1 then flops else cf 0.);
    s_vec_issue = (if vec > 1 then div flops (cf (float_of_int vec)) else cf 0.);
  }

let swork_of_mem ~loads ~stores ~lbytes ~sbytes =
  { swork_zero with s_loads = loads; s_stores = stores; s_lbytes = lbytes; s_sbytes = sbytes }

(* Mirrors Work.scale: k *. field. *)
let swork_of_lib scale_s (w : Work.t) =
  let f x = mul scale_s (cf x) in
  {
    s_flops = f w.Work.flops;
    s_iops = f w.Work.iops;
    s_divs = f w.Work.divs;
    s_vec_flops = f w.Work.vec_flops;
    s_vec_issue = f w.Work.vec_issue;
    s_loads = f w.Work.loads;
    s_stores = f w.Work.stores;
    s_lbytes = f w.Work.lbytes;
    s_sbytes = f w.Work.sbytes;
  }

(* --- the symbolic tree ----------------------------------------------- *)

type node = {
  id : int;
  block : Block_id.t;
  kind : Bnode.kind;
  prob : float;
  trips_ref : float;  (** concrete trips at the reference inputs *)
  trips : Ast.expr;  (** symbolic trips *)
  work_ref : Work.t;
  work : swork;
  touched : (string * float) list;
      (** bytes moved per array by one execution of the node's direct
          statements; scale dependence enters through [trips] *)
  lib_scale : Ast.expr option;  (** symbolic call volume for lib nodes *)
  note : string;
  children : node list;
}

type result = {
  sroot : node;
  bet : Skope_bet.Build.result;
      (** the independently built BET the tree was reconciled against *)
  checked : int;  (** expressions verified at the reference inputs *)
  fallbacks : int;  (** expressions demoted to concrete literals *)
  shape_mismatches : int;  (** subtrees where the mirror diverged *)
}

type state = {
  program : Ast.program;
  hints : Hints.t;
  lib_work : string -> Work.t option;
  cap : int;
  root_env : Eval.env;
  mutable next_id : int;
  global_bindings : (string * Value.t) list;
  global_sbindings : (string * Ast.expr) list;
  global_abytes : int Smap.t;
  mutable checked : int;
  mutable fallbacks : int;
}

let fresh st =
  let id = st.next_id in
  st.next_id <- id + 1;
  id

let abytes_of st (arrays : Ast.array_decl list) =
  List.fold_left
    (fun m (a : Ast.array_decl) -> Smap.add a.Ast.aname a.Ast.elem_bytes m)
    st.global_abytes arrays

(* Representation-strict equality: [Value.equal] calls I 2 and F 2.
   equal, but downstream Div/Mod behave differently on the two, so a
   symbolic binding must reproduce the exact representative. *)
let strict_equal a b =
  match (a, b) with
  | Value.I a, Value.I b -> a = b
  | Value.F a, Value.F b -> Float.equal a b
  | Value.B a, Value.B b -> a = b
  | _ -> false

let recon_f st conc e =
  st.checked <- st.checked + 1;
  match Eval.eval st.root_env e with
  | Some v when Float.equal (Value.to_float v) conc -> e
  | _ ->
    st.fallbacks <- st.fallbacks + 1;
    cf conc

let recon_v st conc e =
  match Eval.eval st.root_env e with
  | Some v when strict_equal v conc -> e
  | _ ->
    st.fallbacks <- st.fallbacks + 1;
    const_v conc

let sym_or_const st (c : sctx) (e : Ast.expr) (conc : Value.t) =
  match subst c.senv e with
  | Some se -> recon_v st conc se
  | None ->
    st.fallbacks <- st.fallbacks + 1;
    const_v conc

let recon_swork st (w : Work.t) (sw : swork) =
  {
    s_flops = recon_f st w.Work.flops sw.s_flops;
    s_iops = recon_f st w.Work.iops sw.s_iops;
    s_divs = recon_f st w.Work.divs sw.s_divs;
    s_vec_flops = recon_f st w.Work.vec_flops sw.s_vec_flops;
    s_vec_issue = recon_f st w.Work.vec_issue sw.s_vec_issue;
    s_loads = recon_f st w.Work.loads sw.s_loads;
    s_stores = recon_f st w.Work.stores sw.s_stores;
    s_lbytes = recon_f st w.Work.lbytes sw.s_lbytes;
    s_sbytes = recon_f st w.Work.sbytes sw.s_sbytes;
  }

(* Mirrors Build.weighted_count, returning the concrete expectation and
   its symbolic form. *)
let sym_weighted_count _st entry_mass (ctxs : sctx list) (e : Ast.expr) =
  let per = List.map (fun (c : sctx) -> (c, Eval.eval c.env e)) ctxs in
  let conc =
    List.fold_left
      (fun acc ((c : sctx), v) ->
        match v with
        | Some v -> acc +. (c.mass *. Float.max 0. (Value.to_float v))
        | None -> acc)
      0. per
    /. entry_mass
  in
  let sum =
    List.fold_left
      (fun acc ((c : sctx), v) ->
        match v with
        | None -> acc
        | Some value ->
          let se =
            match subst c.senv e with Some se -> se | None -> const_v value
          in
          add acc (mul (cf c.mass) (max_ (cf 0.) se)))
      (cf 0.) per
  in
  (conc, div sum (cf entry_mass))

(* Truncated-geometric / while-loop expectations: concrete mirrors of
   Build's closed forms plus symbolic counterparts branching on the
   same concrete probabilities (frozen control flow). *)
let tg_conc ~p ~n =
  if n <= 0. then 0.
  else if p <= 1e-12 then n
  else if p >= 1. then 1.
  else Float.min n ((1. -. ((1. -. p) ** n)) /. p)

let wt_conc ~p ~n =
  if n <= 0. then 0.
  else if p >= 1. then n
  else if p <= 0. then 1.
  else Float.min n ((1. -. (p ** n)) /. (1. -. p))

let tg_sym ~p ~n_conc ~n_sym =
  if n_conc <= 0. then cf 0.
  else if p <= 1e-12 then n_sym
  else if p >= 1. then cf 1.
  else min_ n_sym (div (sub (cf 1.) (pow (cf (1. -. p)) n_sym)) (cf p))

let wt_sym ~p ~n_conc ~n_sym =
  if n_conc <= 0. then cf 0.
  else if p >= 1. then n_sym
  else if p <= 0. then cf 1.
  else min_ n_sym (div (sub (cf 1.) (pow (cf p) n_sym)) (cf (1. -. p)))

type flow = {
  live : sctx list;
  returned : float;
  broke : float;
  continued : float;
}

let rec build_region st ~kind ~block ~prob ~trips_ref ~strips ~note ~abytes ~ctxs
    ~stmts : node * flow =
  let entry_mass = mass_of ctxs in
  let cwork = ref Work.zero in
  let swork = ref swork_zero in
  let touched = ref Smap.empty in
  let children = ref [] in
  let add_child c = children := c :: !children in
  let flow =
    if entry_mass <= 0. then { live = ctxs; returned = 0.; broke = 0.; continued = 0. }
    else
      List.fold_left
        (fun flow stmt ->
          if mass_of flow.live <= 0. then flow
          else build_stmt st ~entry_mass ~abytes ~cwork ~swork ~touched ~add_child flow stmt)
        { live = ctxs; returned = 0.; broke = 0.; continued = 0. }
        stmts
  in
  let node =
    {
      id = fresh st;
      block;
      kind;
      prob;
      trips_ref;
      trips = strips;
      work_ref = !cwork;
      work = recon_swork st !cwork !swork;
      touched = Smap.bindings !touched;
      lib_scale = None;
      note;
      children = List.rev !children;
    }
  in
  (node, flow)

and build_stmt st ~entry_mass ~abytes ~cwork ~swork ~touched ~add_child flow
    (s : Ast.stmt) : flow =
  let live = flow.live in
  let live_mass = mass_of live in
  match s.Ast.kind with
  | Ast.Comp { flops; iops; divs; vec } ->
    let wf, sf = sym_weighted_count st entry_mass live flops in
    let wi, si = sym_weighted_count st entry_mass live iops in
    let wd, sd = sym_weighted_count st entry_mass live divs in
    cwork := Work.add !cwork (Work.of_comp ~flops:wf ~iops:wi ~divs:wd ~vec);
    swork := swork_add !swork (swork_of_comp ~flops:sf ~iops:si ~divs:sd ~vec);
    flow
  | Ast.Mem { loads; stores } ->
    let frac = live_mass /. entry_mass in
    let eb_of (a : Ast.access) =
      match Smap.find_opt a.Ast.array abytes with Some eb -> eb | None -> 8
    in
    let count_side accesses =
      let n = float_of_int (List.length accesses) *. frac in
      let bytes =
        List.fold_left (fun acc a -> acc +. float_of_int (eb_of a)) 0. accesses
        *. frac
      in
      (n, bytes)
    in
    let nl, lb = count_side loads in
    let ns, sb = count_side stores in
    List.iter
      (fun (a : Ast.access) ->
        let b = float_of_int (eb_of a) *. frac in
        touched :=
          Smap.update a.Ast.array
            (function None -> Some b | Some x -> Some (x +. b))
            !touched)
      (loads @ stores);
    cwork := Work.add !cwork (Work.of_mem ~loads:nl ~stores:ns ~lbytes:lb ~sbytes:sb);
    swork :=
      swork_add !swork
        (swork_of_mem ~loads:(cf nl) ~stores:(cf ns) ~lbytes:(cf lb) ~sbytes:(cf sb));
    flow
  | Ast.Let (v, e) ->
    let k = live_mass /. entry_mass in
    cwork := Work.add !cwork { Work.zero with Work.iops = k };
    swork := swork_add !swork { swork_zero with s_iops = cf k };
    let live =
      List.map
        (fun (c : sctx) ->
          match Eval.eval c.env e with
          | Some value ->
            let se = sym_or_const st c e value in
            { c with env = Smap.add v value c.env; senv = Smap.add v se c.senv }
          | None ->
            { c with env = Smap.remove v c.env; senv = Smap.remove v c.senv })
        live
    in
    { flow with live = normalize ~cap:st.cap live }
  | Ast.If { cond; then_; else_ } ->
    let t_ctxs, f_ctxs = split_cond st live cond in
    let arm which ctxs stmts =
      if stmts = [] then { live = ctxs; returned = 0.; broke = 0.; continued = 0. }
      else begin
        let prob = mass_of ctxs /. entry_mass in
        if prob <= 0. then { live = []; returned = 0.; broke = 0.; continued = 0. }
        else begin
          let node, aflow =
            build_region st ~kind:(Bnode.Arm which)
              ~block:(Block_id.Arm (s.Ast.sid, which))
              ~prob ~trips_ref:1. ~strips:(Ast.Int 1) ~note:"" ~abytes ~ctxs ~stmts
          in
          add_child node;
          aflow
        end
      end
    in
    let tf = arm true t_ctxs then_ in
    let ff = arm false f_ctxs else_ in
    {
      live = normalize ~cap:st.cap (tf.live @ ff.live);
      returned = flow.returned +. tf.returned +. ff.returned;
      broke = flow.broke +. tf.broke +. ff.broke;
      continued = flow.continued +. tf.continued +. ff.continued;
    }
  | Ast.For { var; lo; hi; step; body } ->
    let prob = live_mass /. entry_mass in
    let trips_of (c : sctx) =
      match (Eval.eval c.env lo, Eval.eval c.env hi, Eval.eval c.env step) with
      | Some lov, Some hiv, Some stv ->
        let lof = Value.to_float lov
        and hif = Value.to_float hiv
        and stf = Value.to_float stv in
        if stf <= 0. then ((0., cf 0.), (lov, const_v lov))
        else begin
          let n = Float.max 0. (Float.floor ((hif -. lof) /. stf) +. 1.) in
          let mid = Value.of_float (lof +. (stf *. Float.floor ((n -. 1.) /. 2.))) in
          let subst_or ex v =
            match subst c.senv ex with
            | Some se -> se
            | None ->
              st.fallbacks <- st.fallbacks + 1;
              const_v v
          in
          let lo_s = subst_or lo lov
          and hi_s = subst_or hi hiv
          and st_s = subst_or step stv in
          let all_int =
            match (lov, hiv, stv) with
            | Value.I _, Value.I _, Value.I _ -> true
            | _ -> false
          in
          let n_s, mid_s =
            if all_int then
              let n_s = max_ (Ast.Int 0) (add (fdiv (sub hi_s lo_s) st_s) (Ast.Int 1)) in
              let mid_s = add lo_s (mul st_s (fdiv (sub n_s (Ast.Int 1)) (Ast.Int 2))) in
              (n_s, mid_s)
            else
              ( max_ (cf 0.) (add (floor_ (div (sub hi_s lo_s) st_s)) (cf 1.)),
                const_v mid )
          in
          ((n, recon_f st n n_s), (mid, recon_v st mid mid_s))
        end
      | _ -> ((1., cf 1.), (Value.I 0, Ast.Int 0))
    in
    let per_ctx = List.map (fun c -> (c, trips_of c)) live in
    let n_expected =
      List.fold_left
        (fun acc ((c : sctx), ((n, _), _)) -> acc +. (c.mass *. n))
        0. per_ctx
      /. live_mass
    in
    let n_expected_s =
      div
        (List.fold_left
           (fun acc ((c : sctx), ((_, n_s), _)) -> add acc (mul (cf c.mass) n_s))
           (cf 0.) per_ctx)
        (cf live_mass)
    in
    let body_ctxs =
      List.filter_map
        (fun ((c : sctx), ((n, _), (mid, mid_s))) ->
          if n <= 0. then None
          else
            Some
              { c with env = Smap.add var mid c.env; senv = Smap.add var mid_s c.senv })
        per_ctx
    in
    let note =
      Fmt.str "%s=%a..%a x%.6g" var Pretty.pp_expr lo Pretty.pp_expr hi n_expected
    in
    if n_expected <= 0. || body_ctxs = [] then begin
      let node, _ =
        build_region st ~kind:Bnode.Loop ~block:(Block_id.Loop s.Ast.sid) ~prob
          ~trips_ref:0. ~strips:(cf 0.) ~note ~abytes ~ctxs:[] ~stmts:[]
      in
      add_child node;
      flow
    end
    else begin
      let node, bflow =
        build_region st ~kind:Bnode.Loop ~block:(Block_id.Loop s.Ast.sid) ~prob
          ~trips_ref:n_expected ~strips:n_expected_s ~note ~abytes
          ~ctxs:(normalize ~cap:st.cap body_ctxs)
          ~stmts:body
      in
      let body_mass = mass_of body_ctxs in
      let p_exit = (bflow.broke +. bflow.returned) /. body_mass in
      let trips_eff = Float.min n_expected (tg_conc ~p:p_exit ~n:n_expected) in
      let trips_eff_s =
        min_ n_expected_s (tg_sym ~p:p_exit ~n_conc:n_expected ~n_sym:n_expected_s)
      in
      let node =
        { node with trips_ref = trips_eff; trips = recon_f st trips_eff trips_eff_s }
      in
      add_child node;
      let p_ret_iter = bflow.returned /. body_mass in
      let surv = (1. -. p_ret_iter) ** trips_eff in
      let live =
        if surv >= 1. then live else List.map (fun c -> cscale c surv) live
      in
      {
        live;
        returned = flow.returned +. (live_mass *. (1. -. surv));
        broke = flow.broke;
        continued = flow.continued;
      }
    end
  | Ast.While { name; p_continue; max_iter; body } ->
    let prob = live_mass /. entry_mass in
    let p_declared = expect_prob live p_continue in
    let nmax = Float.max 0. (expect_conc live max_iter) in
    let nmax_s = max_ (cf 0.) (expect_sym ~default:0. live max_iter) in
    let trips_declared = wt_conc ~p:p_declared ~n:nmax in
    let trips = Hints.loop_trips st.hints name ~default:trips_declared in
    let trips_s =
      if Float.equal trips trips_declared then
        wt_sym ~p:p_declared ~n_conc:nmax ~n_sym:nmax_s
      else cf trips
    in
    let note = Fmt.str "while %s x%.6g" name trips in
    let node, bflow =
      build_region st ~kind:Bnode.Loop ~block:(Block_id.Loop s.Ast.sid) ~prob
        ~trips_ref:trips ~strips:trips_s ~note ~abytes ~ctxs:live ~stmts:body
    in
    let body_mass = Float.max live_mass 1e-300 in
    let p_exit = (bflow.broke +. bflow.returned) /. body_mass in
    let trips_eff = Float.min trips (tg_conc ~p:p_exit ~n:trips) in
    let trips_eff_s = min_ trips_s (tg_sym ~p:p_exit ~n_conc:trips ~n_sym:trips_s) in
    let node =
      { node with trips_ref = trips_eff; trips = recon_f st trips_eff trips_eff_s }
    in
    add_child node;
    let p_ret_iter = bflow.returned /. body_mass in
    let surv = (1. -. p_ret_iter) ** trips_eff in
    let live = if surv >= 1. then live else List.map (fun c -> cscale c surv) live in
    {
      live;
      returned = flow.returned +. (live_mass *. (1. -. surv));
      broke = flow.broke;
      continued = flow.continued;
    }
  | Ast.Call (fname, args) -> (
    match Ast.find_func st.program fname with
    | exception Not_found -> flow
    | callee ->
      let prob = live_mass /. entry_mass in
      let params = callee.Ast.params in
      let args' =
        if List.length args = List.length params then args
        else List.init (List.length params) (fun _ -> Ast.Int 0)
      in
      let callee_ctxs =
        List.map
          (fun (c : sctx) ->
            let bindings =
              List.filter_map
                (fun (param, arg) ->
                  match Eval.eval c.env arg with
                  | Some v -> Some (param, v, sym_or_const st c arg v)
                  | None -> None)
                (List.combine params args')
            in
            let env =
              Eval.env_of_list
                (st.global_bindings @ List.map (fun (k, v, _) -> (k, v)) bindings)
            in
            let senv =
              List.fold_left
                (fun m (k, se) -> Smap.add k se m)
                Smap.empty
                (st.global_sbindings @ List.map (fun (k, _, se) -> (k, se)) bindings)
            in
            { env; senv; mass = c.mass })
          live
      in
      let note =
        Fmt.str "%s(%s)" fname
          (String.concat ","
             (List.map (fun a -> Fmt.str "%a" Pretty.pp_expr a) args))
      in
      let node, _callee_flow =
        build_region st ~kind:(Bnode.Func fname) ~block:(Block_id.Fn fname) ~prob
          ~trips_ref:1. ~strips:(Ast.Int 1) ~note
          ~abytes:(abytes_of st callee.Ast.arrays)
          ~ctxs:(normalize ~cap:st.cap callee_ctxs)
          ~stmts:callee.Ast.body
      in
      add_child node;
      flow)
  | Ast.Lib { name; args = _; scale } ->
    let prob = live_mass /. entry_mass in
    let scale_v = Float.max 0. (expect_conc ~default:1. live scale) in
    let scale_s = recon_f st scale_v (max_ (cf 0.) (expect_sym ~default:1. live scale)) in
    let cw, sw =
      match st.lib_work name with
      | Some w -> (Work.scale scale_v w, swork_of_lib scale_s w)
      | None -> (Work.zero, swork_zero)
    in
    let node =
      {
        id = fresh st;
        block = Block_id.Libc s.Ast.sid;
        kind = Bnode.Libcall name;
        prob;
        trips_ref = 1.;
        trips = Ast.Int 1;
        work_ref = cw;
        work = recon_swork st cw sw;
        touched = [];
        lib_scale = Some scale_s;
        note = Fmt.str "scale=%.6g" scale_v;
        children = [];
      }
    in
    add_child node;
    flow
  | Ast.Return -> { flow with live = []; returned = flow.returned +. live_mass }
  | Ast.Break { name; p } ->
    let p_v = Hints.branch_prob st.hints name ~default:(expect_prob live p) in
    {
      flow with
      live = List.map (fun c -> cscale c (1. -. p_v)) live;
      broke = flow.broke +. (live_mass *. p_v);
    }
  | Ast.Continue { name; p } ->
    let p_v = Hints.branch_prob st.hints name ~default:(expect_prob live p) in
    {
      flow with
      live = List.map (fun c -> cscale c (1. -. p_v)) live;
      continued = flow.continued +. (live_mass *. p_v);
    }

and split_cond st (live : sctx list) (cond : Ast.cond) : sctx list * sctx list =
  match cond with
  | Ast.Cexpr e ->
    List.fold_left
      (fun (ts, fs) (c : sctx) ->
        match Eval.eval c.env e with
        | Some v -> if Value.truthy v then (c :: ts, fs) else (ts, c :: fs)
        | None -> (cscale c 0.5 :: ts, cscale c 0.5 :: fs))
      ([], []) live
    |> fun (ts, fs) -> (List.rev ts, List.rev fs)
  | Ast.Cdata { name; p } ->
    let p_v = Hints.branch_prob st.hints name ~default:(expect_prob live p) in
    ( List.filter_map
        (fun c -> if p_v > 0. then Some (cscale c p_v) else None)
        live,
      List.filter_map
        (fun c -> if p_v < 1. then Some (cscale c (1. -. p_v)) else None)
        live )

(* --- reconciliation against the real BET ----------------------------- *)

let rec constify (b : Bnode.t) : node =
  let w = b.Bnode.work in
  {
    id = b.Bnode.id;
    block = b.Bnode.block;
    kind = b.Bnode.kind;
    prob = b.Bnode.prob;
    trips_ref = b.Bnode.trips;
    trips = cf b.Bnode.trips;
    work_ref = w;
    work =
      {
        s_flops = cf w.Work.flops;
        s_iops = cf w.Work.iops;
        s_divs = cf w.Work.divs;
        s_vec_flops = cf w.Work.vec_flops;
        s_vec_issue = cf w.Work.vec_issue;
        s_loads = cf w.Work.loads;
        s_stores = cf w.Work.stores;
        s_lbytes = cf w.Work.lbytes;
        s_sbytes = cf w.Work.sbytes;
      };
    touched = [];
    lib_scale = None;
    note = b.Bnode.note;
    children = List.map constify b.Bnode.children;
  }

let derive ?(hints = Hints.empty) ?(lib_work = fun _ -> None) ?(max_contexts = 64)
    ?(inputs = []) (program : Ast.program) : result =
  let bet =
    Skope_bet.Build.build ~hints ~lib_work ~max_contexts ~inputs program
  in
  let global_abytes =
    List.fold_left
      (fun m (a : Ast.array_decl) -> Smap.add a.Ast.aname a.Ast.elem_bytes m)
      Smap.empty program.Ast.globals
  in
  let st =
    {
      program;
      hints;
      lib_work;
      cap = max_contexts;
      root_env = Eval.env_of_list inputs;
      next_id = 0;
      global_bindings = inputs;
      global_sbindings = List.map (fun (k, _) -> (k, Ast.Var k)) inputs;
      global_abytes;
      checked = 0;
      fallbacks = 0;
    }
  in
  let entry = Ast.entry_func program in
  let senv0 =
    List.fold_left (fun m (k, _) -> Smap.add k (Ast.Var k) m) Smap.empty inputs
  in
  let root, _flow =
    build_region st ~kind:(Bnode.Func entry.Ast.fname)
      ~block:(Block_id.Fn entry.Ast.fname) ~prob:1. ~trips_ref:1.
      ~strips:(Ast.Int 1) ~note:"entry"
      ~abytes:(abytes_of st entry.Ast.arrays)
      ~ctxs:[ { env = st.root_env; senv = senv0; mass = 1.0 } ]
      ~stmts:entry.Ast.body
  in
  (* Safety net: any expression that fails to reproduce the real BET's
     number at the reference inputs is demoted to that number, so the
     evaluated-at-reference tree always byte-matches the BET. *)
  let mismatches = ref 0 in
  let against conc e =
    st.checked <- st.checked + 1;
    match Eval.eval st.root_env e with
    | Some v when Float.equal (Value.to_float v) conc -> e
    | _ ->
      st.fallbacks <- st.fallbacks + 1;
      cf conc
  in
  let rec zip (sn : node) (b : Bnode.t) : node =
    if
      (not (Block_id.equal sn.block b.Bnode.block))
      || List.length sn.children <> List.length b.Bnode.children
    then begin
      incr mismatches;
      constify b
    end
    else
      let w = b.Bnode.work in
      {
        sn with
        prob = b.Bnode.prob;
        trips_ref = b.Bnode.trips;
        trips = against b.Bnode.trips sn.trips;
        work_ref = w;
        work =
          {
            s_flops = against w.Work.flops sn.work.s_flops;
            s_iops = against w.Work.iops sn.work.s_iops;
            s_divs = against w.Work.divs sn.work.s_divs;
            s_vec_flops = against w.Work.vec_flops sn.work.s_vec_flops;
            s_vec_issue = against w.Work.vec_issue sn.work.s_vec_issue;
            s_loads = against w.Work.loads sn.work.s_loads;
            s_stores = against w.Work.stores sn.work.s_stores;
            s_lbytes = against w.Work.lbytes sn.work.s_lbytes;
            s_sbytes = against w.Work.sbytes sn.work.s_sbytes;
          };
        children = List.map2 zip sn.children b.Bnode.children;
      }
  in
  let sroot = zip root bet.Skope_bet.Build.root in
  {
    sroot;
    bet;
    checked = st.checked;
    fallbacks = st.fallbacks;
    shape_mismatches = !mismatches;
  }

(* --- aggregation and growth probing ---------------------------------- *)

(** Pre-order fold with both the concrete expected number of
    repetitions (ENR) and its symbolic form, mirroring
    [Bet.Node.fold_enr]. *)
let fold_enr f acc root =
  let rec go acc n ~enr_ref ~enr_sym =
    let enr_ref = n.trips_ref *. n.prob *. enr_ref in
    let enr_sym = mul (mul n.trips (cf n.prob)) enr_sym in
    let acc = f acc n ~enr_ref ~enr_sym in
    List.fold_left (fun acc c -> go acc c ~enr_ref ~enr_sym) acc n.children
  in
  go acc root ~enr_ref:1. ~enr_sym:(cf 1.)

let rec node_count n = List.fold_left (fun a c -> a + node_count c) 1 n.children

(** Empirical growth order of [e] along a parameter sweep: evaluate at
    multipliers 1/2/4 via [eval_at] and average the log2 ratios.  [Some
    0.] for expressions that stay (near) zero, [None] when evaluation
    fails or values are not positive. *)
let growth_order ~eval_at (e : Ast.expr) : float option =
  let v m = Option.map Value.to_float (Eval.eval (eval_at m) e) in
  match (v 1., v 2., v 4.) with
  | Some a, Some b, Some c ->
    if Float.abs a <= 1e-9 && Float.abs b <= 1e-9 && Float.abs c <= 1e-9 then
      Some 0.
    else if a > 1e-9 && b > 1e-9 && c > 1e-9 then
      Some ((Float.log (b /. a) +. Float.log (c /. b)) /. (2. *. Float.log 2.))
    else None
  | _ -> None

(* --- approximate Laurent-polynomial display form ---------------------- *)

type mono = { coef : float; pows : (string * int) list }

type poly = mono list

let mono_mul a b =
  let pows =
    List.fold_left
      (fun acc (v, k) ->
        match List.assoc_opt v acc with
        | Some k0 -> (v, k0 + k) :: List.remove_assoc v acc
        | None -> (v, k) :: acc)
      a.pows b.pows
  in
  {
    coef = a.coef *. b.coef;
    pows = List.sort compare (List.filter (fun (_, k) -> k <> 0) pows);
  }

let poly_norm (p : poly) : poly =
  let merged =
    List.fold_left
      (fun acc m ->
        match List.partition (fun m' -> m'.pows = m.pows) acc with
        | [ m' ], rest -> { m with coef = m.coef +. m'.coef } :: rest
        | _ -> m :: acc)
      [] p
  in
  List.filter (fun m -> Float.abs m.coef > 1e-12) merged
  |> List.sort (fun a b -> compare b.pows a.pows)

(* Display-only extraction: Min/Max/Floor and the integer floor-div
   pattern are passed through as their real-valued approximations, so
   the result is printed with an "approximately" sign. *)
let rec poly_of (e : Ast.expr) : poly option =
  let ( let* ) = Option.bind in
  match e with
  | Ast.Int i -> Some [ { coef = float_of_int i; pows = [] } ]
  | Ast.Float f -> Some [ { coef = f; pows = [] } ]
  | Ast.Bool _ -> None
  | Ast.Var v -> Some [ { coef = 1.; pows = [ (v, 1) ] } ]
  | Ast.Binop (Ast.Add, a, b) ->
    let* a = poly_of a in
    let* b = poly_of b in
    Some (poly_norm (a @ b))
  | Ast.Binop (Ast.Sub, a, b) ->
    let* a = poly_of a in
    let* b = poly_of b in
    Some (poly_norm (a @ List.map (fun m -> { m with coef = -.m.coef }) b))
  | Ast.Binop (Ast.Mul, a, b) ->
    let* a = poly_of a in
    let* b = poly_of b in
    if List.length a * List.length b > 64 then None
    else Some (poly_norm (List.concat_map (fun ma -> List.map (mono_mul ma) b) a))
  | Ast.Binop (Ast.Div, Ast.Binop (Ast.Sub, a, Ast.Binop (Ast.Mod, _, _)), b) ->
    (* the sfdiv shape: a/b up to the remainder correction *)
    poly_of (Ast.Binop (Ast.Div, a, b))
  | Ast.Binop (Ast.Div, a, b) -> (
    let* a = poly_of a in
    let* b = poly_of b in
    match b with
    | [ m ] when Float.abs m.coef > 1e-300 ->
      let inv = { coef = 1. /. m.coef; pows = List.map (fun (v, k) -> (v, -k)) m.pows } in
      Some (poly_norm (List.map (mono_mul inv) a))
    | _ -> None)
  | Ast.Binop (Ast.Pow, a, Ast.Int k) when k >= 0 && k <= 8 ->
    let* a = poly_of a in
    let rec go acc i =
      if i = 0 then Some acc
      else if List.length acc * List.length a > 64 then None
      else
        go (poly_norm (List.concat_map (fun ma -> List.map (mono_mul ma) a) acc)) (i - 1)
    in
    go [ { coef = 1.; pows = [] } ] k
  | Ast.Binop ((Ast.Min | Ast.Max), a, b) -> (
    (* display approximation: prefer the non-constant side *)
    match (poly_of a, poly_of b) with
    | Some [ { pows = []; _ } ], Some p -> Some p
    | Some p, Some [ { pows = []; _ } ] -> Some p
    | Some p, None | None, Some p -> Some p
    | Some p, Some _ -> Some p
    | None, None -> None)
  | Ast.Unop (Ast.Floor, a) | Ast.Unop (Ast.Ceil, a) -> poly_of a
  | Ast.Unop (Ast.Neg, a) ->
    let* a = poly_of a in
    Some (List.map (fun m -> { m with coef = -.m.coef }) a)
  | _ -> None

let pp_mono ppf (m : mono) =
  let num = List.filter (fun (_, k) -> k > 0) m.pows in
  let den = List.filter (fun (_, k) -> k < 0) m.pows in
  let pp_v ppf (v, k) =
    if abs k = 1 then Fmt.string ppf v else Fmt.pf ppf "%s^%d" v (abs k)
  in
  (if num = [] then Fmt.pf ppf "%.4g" m.coef
   else begin
     if not (Float.equal m.coef 1.) then Fmt.pf ppf "%.4g " m.coef;
     Fmt.(list ~sep:(any " ") pp_v) ppf num
   end);
  if den <> [] then Fmt.pf ppf "/%a" Fmt.(list ~sep:(any "/") pp_v) den

let pp_poly ppf (p : poly) =
  match p with
  | [] -> Fmt.string ppf "0"
  | p -> Fmt.(list ~sep:(any " + ") pp_mono) ppf p

(** Human-readable closed form: the polynomial approximation when one
    exists, otherwise the raw expression. *)
let pp_closed_form ppf e =
  match poly_of e with
  | Some p when List.length p <= 6 -> Fmt.pf ppf "~ %a" pp_poly p
  | _ -> Pretty.pp_expr ppf e
