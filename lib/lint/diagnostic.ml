open Skope_skeleton
module Json = Skope_report.Json

type severity = Info | Warning | Error

let severity_label = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2
let compare_severity a b = compare (severity_rank a) (severity_rank b)

type t = {
  code : string;
  severity : severity;
  loc : Loc.t;
  message : string;
  notes : string list;
}

let make ?(notes = []) ~code ~severity ~loc message =
  { code; severity; loc; message; notes }

let of_validate (i : Validate.issue) =
  make ~code:i.Validate.code ~severity:Error ~loc:i.Validate.where
    i.Validate.what

let of_lex_error loc message = make ~code:"P001" ~severity:Error ~loc message
let of_parse_error loc message = make ~code:"P002" ~severity:Error ~loc message

let order a b =
  let c = String.compare a.loc.Loc.file b.loc.Loc.file in
  if c <> 0 then c
  else
    let c = compare a.loc.Loc.line b.loc.Loc.line in
    if c <> 0 then c
    else
      let c = compare a.loc.Loc.col b.loc.Loc.col in
      if c <> 0 then c
      else
        let c = String.compare a.code b.code in
        if c <> 0 then c
        else
          let c = String.compare a.message b.message in
          if c <> 0 then c else compare a.notes b.notes

(* sort_uniq's order treats equal-keyed duplicates as one; notes join
   the key because distinct findings can share a message when every
   statement carries the same (or no) source location. *)
let normalize ds = List.sort_uniq order ds

let counts ds =
  List.fold_left
    (fun (e, w, i) d ->
      match d.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) ds

let max_severity = function
  | [] -> None
  | d :: ds ->
    Some
      (List.fold_left
         (fun acc x ->
           if compare_severity x.severity acc > 0 then x.severity else acc)
         d.severity ds)

let fails ?(deny_warnings = false) ds =
  List.exists
    (fun d ->
      match d.severity with
      | Error -> true
      | Warning -> deny_warnings
      | Info -> false)
    ds

(* --- text rendering ------------------------------------------------ *)

let source_line source n =
  if n < 1 then None
  else
    let rec go lines n =
      match (lines, n) with
      | l :: _, 1 -> Some l
      | _ :: rest, n -> go rest (n - 1)
      | [], _ -> None
    in
    go (String.split_on_char '\n' source) n

let render ?source () ppf d =
  Fmt.pf ppf "%s[%s]: %s@." (severity_label d.severity) d.code d.message;
  if not (Loc.equal d.loc Loc.none) then begin
    Fmt.pf ppf "  --> %a@." Loc.pp_full d.loc;
    match Option.bind source (fun s -> source_line s d.loc.Loc.line) with
    | Some line ->
      let gutter = String.length (string_of_int d.loc.Loc.line) in
      Fmt.pf ppf "  %*s |@." gutter "";
      Fmt.pf ppf "  %d | %s@." d.loc.Loc.line line;
      let col = max 1 d.loc.Loc.col in
      Fmt.pf ppf "  %*s | %*s^@." gutter "" (col - 1) ""
    | None -> ()
  end;
  List.iter (fun n -> Fmt.pf ppf "  = note: %s@." n) d.notes

let summary ds =
  let e, w, i = counts ds in
  let part n what = Fmt.str "%d %s%s" n what (if n = 1 then "" else "s") in
  Fmt.str "%s, %s, %s" (part e "error") (part w "warning") (part i "info")

let render_all ?source () ppf ds =
  List.iter
    (fun d ->
      render ?source () ppf d;
      Fmt.pf ppf "@.")
    ds;
  if ds <> [] then Fmt.pf ppf "%s@." (summary ds)

(* --- JSON ----------------------------------------------------------- *)

let to_json d =
  Json.Obj
    [
      ("code", Json.String d.code);
      ("severity", Json.String (severity_label d.severity));
      ("file", Json.String d.loc.Loc.file);
      ("line", Json.Int d.loc.Loc.line);
      ("col", Json.Int d.loc.Loc.col);
      ("message", Json.String d.message);
      ("notes", Json.List (List.map (fun n -> Json.String n) d.notes));
    ]

let list_to_json ds = Json.List (List.map to_json ds)
