module Json = Skope_report.Json
module Span = Skope_telemetry.Span
module Log = Skope_telemetry.Log
module Recorder = Skope_telemetry.Recorder
module Traceview = Skope_service.Traceview
module Client = Skope_service.Client
module Protocol = Skope_service.Protocol
module Service_api = Skope_service.Service_api
module Fingerprint = Skope_service.Fingerprint
module Server = Skope_service.Server
module Dispatch = Skope_service.Dispatch
module Registry = Core.Workloads.Registry
module Hotspot = Core.Analysis.Hotspot

type member_spec = { m_id : string; m_host : string; m_port : int }

type config = {
  host : string;
  port : int;
  pool : int;
  queue_capacity : int;
  read_timeout_s : float;
  write_timeout_s : float;
  members : member_spec list;
  vnodes : int;
  ring_seed : int;
  health : Health.config;
  probe_interval_s : float;
  probe_timeouts : Client.timeouts;
  forward_timeouts : Client.timeouts;
  forward_retry : Client.retry;
  load_factor : float;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7878;
    pool = 4;
    queue_capacity = 128;
    read_timeout_s = 10.;
    write_timeout_s = 10.;
    members = [];
    vnodes = 128;
    ring_seed = 42;
    health = Health.default_config;
    probe_interval_s = 2.;
    probe_timeouts = { Client.connect_s = 1.; read_s = 2.; write_s = 2. };
    forward_timeouts = Client.default_timeouts;
    forward_retry = { Client.default_retry with Client.attempts = 1; base_ms = 25. };
    load_factor = 1.25;
  }

type t = {
  config : config;
  members : Member.t array;
  mutable ring : Ring.t;
  ring_lock : Mutex.t;
  requests : int Atomic.t;
  forwards : int Atomic.t;
  failovers : int Atomic.t;
  rejects : int Atomic.t;
  spread : int Atomic.t;  (* rotating key for unkeyed kinds *)
  recorder : Recorder.t;  (* router-side flight recorder *)
}

let create (config : config) =
  if config.members = [] then
    invalid_arg "Router.create: at least one member is required";
  let ids = List.map (fun m -> m.m_id) config.members in
  if List.length (List.sort_uniq String.compare ids) <> List.length ids then
    invalid_arg "Router.create: member ids must be distinct";
  let members =
    Array.of_list
      (List.map
         (fun m -> Member.create ~id:m.m_id ~host:m.m_host ~port:m.m_port)
         config.members)
  in
  let recorder = Recorder.create () in
  Span.add_sink (Recorder.sink recorder);
  {
    config;
    members;
    ring = Ring.create ~vnodes:config.vnodes ~seed:config.ring_seed ids;
    ring_lock = Mutex.create ();
    requests = Atomic.make 0;
    forwards = Atomic.make 0;
    failovers = Atomic.make 0;
    rejects = Atomic.make 0;
    spread = Atomic.make 0;
    recorder;
  }

let current_ring t =
  Mutex.lock t.ring_lock;
  let ring = t.ring in
  Mutex.unlock t.ring_lock;
  ring

(* Membership changed (ejection or readmission): the ring is rebuilt
   over the currently-routable members.  Seeded placement means
   survivors keep their keys — only the ejected member's share moves,
   and it moves back on readmission. *)
let rebuild_ring t =
  let ids =
    Array.to_list t.members
    |> List.filter Member.available
    |> List.map Member.id
  in
  Mutex.lock t.ring_lock;
  t.ring <- Ring.create ~vnodes:t.config.vnodes ~seed:t.config.ring_seed ids;
  Mutex.unlock t.ring_lock

let member_by_id t id =
  Array.to_seq t.members |> Seq.find (fun m -> Member.id m = id)

let healthy_count t =
  Array.fold_left
    (fun acc m -> if Member.available m then acc + 1 else acc)
    0 t.members

let observe_health t m ~ok =
  match Member.observe t.config.health m ~ok with
  | None -> ()
  | Some Health.Ejection ->
    Span.count "cluster_ejections" 1.;
    Log.emit ~level:Log.Warn "shard_ejected"
      [ ("shard", Log.Str (Member.id m)); ("healthy", Log.I (healthy_count t)) ];
    rebuild_ring t
  | Some Health.Readmission ->
    Span.count "cluster_readmissions" 1.;
    Log.emit "shard_readmitted" [ ("shard", Log.Str (Member.id m)) ];
    rebuild_ring t

(* --- affinity -------------------------------------------------------- *)

let body_key body = Digest.to_hex (Digest.string body)

(* The same fingerprint the shard's cache will use, computed without
   running anything: resolve the machine (catalog + overrides) and the
   workload's default scale exactly as Dispatch.query_parts does.  A
   query that fails to resolve still routes deterministically (by body
   hash) — the owning shard then returns the structured error. *)
let query_fingerprint (q : Protocol.query) =
  match Protocol.resolve_machine q with
  | Error _ -> None
  | Ok machine -> (
    match Registry.find q.Protocol.workload with
    | None -> None
    | Some w ->
      let scale =
        Option.value ~default:w.Registry.default_scale q.Protocol.scale
      in
      let criteria =
        {
          Hotspot.time_coverage = q.Protocol.coverage;
          code_leanness = q.Protocol.leanness;
        }
      in
      let engine =
        Option.value ~default:Core.Pipeline.Tree q.Protocol.engine
      in
      Some
        (Fingerprint.of_query ~workload:q.Protocol.workload ~machine ~scale
           ~criteria ~top:q.Protocol.top
           ~engine:(Core.Pipeline.engine_to_string engine)))

(* Sweep and explore key on their base query: the whole fan-out lands
   on one shard, where its points share the LRU (and explore its
   prepared BET).  Spreading the points instead would defeat both. *)
let affinity_key t request body =
  match request with
  | Protocol.Analyze q | Protocol.Sweep (q, _) | Protocol.Explore (q, _) -> (
    match query_fingerprint q with
    | Some fp -> fp
    | None -> body_key body)
  | Protocol.Lint _ | Protocol.Audit _ -> body_key body
  | Protocol.Workloads | Protocol.Machines | Protocol.Stats
  | Protocol.Metrics_prom | Protocol.Version | Protocol.Capabilities
  | Protocol.Cluster_stats | Protocol.Recent _ | Protocol.Trace _ ->
    (* Recent/Trace are served router-locally before routing; the
       spread key is only a fallback should that ever change. *)
    Printf.sprintf "spread-%d" (Atomic.fetch_and_add t.spread 1)

let route_order t key =
  let ring = current_ring t in
  let ids =
    if t.config.load_factor > 0. then
      Ring.route
        ~load:(fun id ->
          match member_by_id t id with
          | Some m -> Member.in_flight m
          | None -> 0)
        ~factor:t.config.load_factor ring key
    else Ring.route ring key
  in
  List.filter_map (member_by_id t) ids
  |> List.filter Member.available

(* --- forwarding ------------------------------------------------------ *)

type forward_outcome =
  | Forwarded of Member.t * string
  | Shard_overloaded of { retry_after_ms : float option; message : string }
  | No_shard

(* Inject the router's trace context into the forwarded body, so the
   shard adopts the router's id instead of minting its own — the one
   id then follows query → route → shard → pipeline phases.  A body
   that does not re-serialize (it parsed once already, so this is
   defensive) is forwarded untouched. *)
let with_trace_context ~trace_id body =
  match Json.of_string body with
  | Ok (Json.Obj fields) ->
    let fields = List.filter (fun (k, _) -> k <> "trace") fields in
    Json.to_string
      (Json.Obj
         (fields
         @ [
             ( "trace",
               Json.Obj
                 [
                   ("id", Json.String trace_id);
                   ("parent", Json.String "router");
                 ] );
           ]))
  | Ok _ | Error _ -> body

(* Returns the outcome plus how many shards this request failed over
   past (the record's retries column).  Each attempt runs in its own
   child span, so a failover chain is visible in the trace tree. *)
let forward t ~trace_id ~key body =
  let failovers = ref 0 in
  let rec go = function
    | [] -> (No_shard, !failovers)
    | m :: rest -> (
      Member.begin_request m;
      let result =
        Span.with_ ~name:"forward" ~attrs:[ ("shard", Member.id m) ]
          (fun () ->
            Client.request ~timeouts:t.config.forward_timeouts
              ~retry:t.config.forward_retry ~idempotent:true
              ~host:(Member.host m) ~port:(Member.port m) body)
      in
      match result with
      | Ok resp ->
        Member.end_request m ~ok:true;
        observe_health t m ~ok:true;
        Atomic.incr t.forwards;
        (Forwarded (m, resp), !failovers)
      | Error (Client.Overloaded { retry_after_ms; message }) ->
        (* The shard answered: it is alive, just shedding.  Surface its
           backoff hint instead of stampeding the successor (whose
           cache is cold for this key anyway). *)
        Member.end_request m ~ok:true;
        observe_health t m ~ok:true;
        (Shard_overloaded { retry_after_ms; message }, !failovers)
      | Error e ->
        Member.end_request m ~ok:false;
        (match e with
        | Client.Refused _ | Client.Timeout _ -> observe_health t m ~ok:false
        | _ -> ());
        Member.skip m;
        Atomic.incr t.failovers;
        incr failovers;
        Span.count "cluster_failovers" 1.;
        Log.emit ~level:Log.Warn ~trace_id "failover"
          [
            ("shard", Log.Str (Member.id m));
            ("error", Log.Str (Client.error_label e));
            ("remaining", Log.I (List.length rest));
          ];
        go rest)
  in
  go (route_order t key)

(* Append a field to a response's top-level object without a full
   re-serialization (proxied bodies can be large). *)
let splice_field ~key ~value resp =
  let n = String.length resp in
  if n >= 2 && resp.[n - 1] = '}' then
    let sep = if resp.[n - 2] = '{' then "" else "," in
    String.sub resp 0 (n - 1) ^ Printf.sprintf "%s%S:%S}" sep key value
  else resp

let splice_shard ~shard resp = splice_field ~key:"shard" ~value:shard resp

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

(* A shard that adopted the forwarded trace context already echoes
   ["trace_id"]; splice it only when absent so proxied responses
   always carry the router's id exactly once. *)
let splice_trace ~trace_id resp =
  if contains_substring resp "\"trace_id\":" then resp
  else splice_field ~key:"trace_id" ~value:trace_id resp

let shard_of_response resp =
  let marker = "\"shard\":\"" in
  let mlen = String.length marker in
  let n = String.length resp in
  (* The router appends the field, so scan backwards from the tail. *)
  let rec find i =
    if i < 0 then None
    else if String.sub resp i mlen = marker then Some i
    else find (i - 1)
  in
  match find (n - mlen) with
  | None -> None
  | Some i -> (
    let start = i + mlen in
    match String.index_from_opt resp start '"' with
    | Some j -> Some (String.sub resp start (j - start))
    | None -> None)

(* --- router-local kinds ---------------------------------------------- *)

let stats_body = Service_api.to_body Service_api.Stats
let version_body = Service_api.to_body Service_api.Version
let capabilities_body = Service_api.to_body Service_api.Capabilities
let metrics_prom_body = Service_api.to_body Service_api.Metrics_prom

(* A side request to one shard (stats / capabilities / metrics
   scrapes): probe timeouts, no retries — a slow shard must not stall
   a cluster_stats answer for long. *)
let side_request t m body =
  match
    Client.request ~timeouts:t.config.probe_timeouts ~retry:Client.no_retry
      ~host:(Member.host m) ~port:(Member.port m) body
  with
  | Error _ -> None
  | Ok resp -> (
    match Service_api.parse_response resp with
    | Ok { Service_api.r_ok = true; r_result = Some r; _ } -> Some r
    | _ -> None)

let ring_json t =
  let ring = current_ring t in
  Json.Obj
    [
      ("seed", Json.Int (Ring.seed ring));
      ("vnodes", Json.Int (Ring.vnodes ring));
      ( "members",
        Json.List (List.map (fun m -> Json.String m) (Ring.members ring)) );
    ]

let member_json ?stats m =
  let s = Member.snapshot m in
  Json.Obj
    ([
       ("id", Json.String (Member.id m));
       ("host", Json.String (Member.host m));
       ("port", Json.Int (Member.port m));
       ("state", Json.String (Health.label s.Member.s_health));
       ("in_flight", Json.Int s.Member.s_in_flight);
       ("forwarded", Json.Int s.Member.s_forwarded);
       ("failovers", Json.Int s.Member.s_failovers);
       ("errors", Json.Int s.Member.s_errors);
       ("probes_ok", Json.Int s.Member.s_probes_ok);
       ("probes_failed", Json.Int s.Member.s_probes_failed);
     ]
    @ match stats with Some j -> [ ("stats", j) ] | None -> [])

let run_cluster_stats t =
  let members =
    Array.to_list t.members
    |> List.map (fun m ->
           let stats =
             if Member.available m then side_request t m stats_body else None
           in
           member_json ?stats m)
  in
  Json.Obj
    [
      ("shards", Json.Int (Array.length t.members));
      ("healthy", Json.Int (healthy_count t));
      ("ring", ring_json t);
      ("members", Json.List members);
      ( "router",
        Json.Obj
          [
            ("requests", Json.Int (Atomic.get t.requests));
            ("forwards", Json.Int (Atomic.get t.forwards));
            ("failovers", Json.Int (Atomic.get t.failovers));
            ("rejects", Json.Int (Atomic.get t.rejects));
          ] );
    ]

let cluster_topology t =
  Json.Obj
    [
      ("shards", Json.Int (Array.length t.members));
      ("healthy", Json.Int (healthy_count t));
      ("ring", ring_json t);
      ( "members",
        Json.List
          (Array.to_list t.members
          |> List.map (fun m ->
                 Json.Obj
                   [
                     ("id", Json.String (Member.id m));
                     ("state", Json.String (Health.label (Member.health m)));
                   ])) );
    ]

(* Capabilities: a shard's own answer (protocol version, kinds, axes)
   extended with the kind only the router serves and the cluster
   topology.  With every shard down, fall back to what Protocol
   guarantees statically. *)
let run_capabilities t =
  let add_cluster_stats = function
    | Json.List kinds
      when not (List.mem (Json.String "cluster_stats") kinds) ->
      Json.List (kinds @ [ Json.String "cluster_stats" ])
    | v -> v
  in
  let base =
    Array.to_list t.members
    |> List.filter Member.available
    |> List.find_map (fun m -> side_request t m capabilities_body)
  in
  let fields =
    match base with
    | Some (Json.Obj fields) ->
      List.map
        (fun (k, v) ->
          if k = "kinds" then (k, add_cluster_stats v) else (k, v))
        fields
    | _ ->
      [
        ("protocol", Json.Int Protocol.protocol_version);
        ( "kinds",
          Json.List
            (List.map
               (fun s -> Json.String s)
               (Protocol.request_kinds @ [ "cluster_stats" ])) );
        ("version", Json.String Core.Version.version);
      ]
  in
  Json.Obj (fields @ [ ("cluster", cluster_topology t) ])

let router_exposition t =
  let buf = Buffer.create 1024 in
  let family name typ help emit =
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name typ);
    emit (fun line -> Buffer.add_string buf (line ^ "\n"))
  in
  let per_member emit_line value =
    Array.iter
      (fun m ->
        let s = Member.snapshot m in
        emit_line (Member.id m) (value s))
      t.members
  in
  family "skope_cluster_shards" "gauge" "Configured cluster shards."
    (fun out ->
      out (Printf.sprintf "skope_cluster_shards %d" (Array.length t.members)));
  family "skope_cluster_healthy" "gauge" "Routable (non-ejected) shards."
    (fun out ->
      out (Printf.sprintf "skope_cluster_healthy %d" (healthy_count t)));
  family "skope_cluster_requests_total" "counter"
    "Requests handled by the router." (fun out ->
      out
        (Printf.sprintf "skope_cluster_requests_total %d"
           (Atomic.get t.requests)));
  family "skope_cluster_member_available" "gauge"
    "Per-shard availability (1 = routable)." (fun out ->
      per_member
        (fun id v -> out (Printf.sprintf
             "skope_cluster_member_available{shard=%S} %d" id v))
        (fun s -> if Health.available s.Member.s_health then 1 else 0));
  family "skope_cluster_forwards_total" "counter"
    "Responses obtained from each shard." (fun out ->
      per_member
        (fun id v ->
          out (Printf.sprintf "skope_cluster_forwards_total{shard=%S} %d" id v))
        (fun s -> s.Member.s_forwarded));
  family "skope_cluster_failovers_total" "counter"
    "Requests that failed over past each shard." (fun out ->
      per_member
        (fun id v ->
          out
            (Printf.sprintf "skope_cluster_failovers_total{shard=%S} %d" id v))
        (fun s -> s.Member.s_failovers));
  family "skope_cluster_probe_failures_total" "counter"
    "Failed health probes per shard." (fun out ->
      per_member
        (fun id v ->
          out
            (Printf.sprintf "skope_cluster_probe_failures_total{shard=%S} %d"
               id v))
        (fun s -> s.Member.s_probes_failed));
  Buffer.contents buf

let run_metrics_prom t =
  let parts =
    Array.to_list t.members
    |> List.filter Member.available
    |> List.filter_map (fun m ->
           match side_request t m metrics_prom_body with
           | Some r -> (
             match Json.member "body" r with
             | Some (Json.String text) -> Some (Member.id m, text)
             | _ -> None)
           | None -> None)
  in
  Json.Obj
    [
      ("content_type", Json.String "text/plain; version=0.0.4");
      ("body", Json.String (router_exposition t ^ Aggregate.merge parts));
    ]

(* --- flight recorder: router-side recent + merged traces ------------ *)

let run_recent t (q : Protocol.recent_query) =
  let records =
    Recorder.recent ~n:q.Protocol.rc_n ~errors_only:q.Protocol.rc_errors_only
      ?min_duration_ms:q.Protocol.rc_min_ms t.recorder
  in
  Json.Obj
    [
      ("count", Json.Int (List.length records));
      ("capacity", Json.Int (Recorder.capacity t.recorder));
      ("records", Json.List (List.map Traceview.record_summary_json records));
    ]

(* Fetch one shard's record of [id], relabelling its generic process
   name ("skoped") with the member id so a merged trace names both
   sides of the hop. *)
let shard_trace t m id =
  match side_request t m (Service_api.to_body (Service_api.trace ~id ())) with
  | None -> []
  | Some result ->
    Traceview.processes_of_trace
      (Traceview.relabel_processes ~process:(Member.id m) result)

(* The merged trace: the router's own record (which knows the owning
   shard) plus that shard's span tree.  When the router's ring entry
   has already rotated out, every routable shard is asked in turn. *)
let run_trace t id =
  let own = Recorder.find t.recorder id in
  let shard_processes =
    match Option.bind own (fun r -> r.Recorder.shard) with
    | Some sid -> (
      match member_by_id t sid with
      | Some m -> shard_trace t m id
      | None -> [])
    | None ->
      Array.to_list t.members
      |> List.filter Member.available
      |> List.fold_left
           (fun acc m -> if acc <> [] then acc else shard_trace t m id)
           []
  in
  let own_processes =
    match own with
    | Some r ->
      [
        Json.Obj
          [
            ("process", Json.String "router");
            ("record", Traceview.record_to_json r);
          ];
      ]
    | None -> []
  in
  match own_processes @ shard_processes with
  | [] -> None
  | processes ->
    Some
      (Json.Obj
         [
           ("trace_id", Json.String id); ("processes", Json.List processes);
         ])

(* --- entry points ---------------------------------------------------- *)

(* Router-minted ids (used only when the client sent no trace context)
   carry a distinct prefix so a log line names the process that minted
   them. *)
let next_trace = Atomic.make 1

let mint_trace () =
  Printf.sprintf "rtr-%06d" (Atomic.fetch_and_add next_trace 1)

let handle ?received_at t body =
  let received_at =
    match received_at with Some x -> x | None -> Unix.gettimeofday ()
  in
  let queue_wait_ms =
    Float.max 0. ((Unix.gettimeofday () -. received_at) *. 1e3)
  in
  Atomic.incr t.requests;
  match Protocol.parse_request body with
  | Error (code, msg) -> Protocol.error_response code msg
  | Ok (request, envelope) ->
    let trace_id =
      match envelope.Protocol.trace with
      | Some tc -> tc.Protocol.t_id
      | None -> mint_trace ()
    in
    Recorder.begin_request t.recorder trace_id;
    let kind = Protocol.kind_label request in
    let outcome = ref "ok" in
    let shard = ref None in
    let retries = ref 0 in
    let response =
      Span.with_context ~attrs:[ ("trace_id", trace_id) ] @@ fun () ->
      Span.with_ ~name:"route" @@ fun () ->
      Span.set_attr "kind" kind;
      try
        match request with
        | Protocol.Cluster_stats ->
          Protocol.ok_response ~trace_id (run_cluster_stats t)
        | Protocol.Capabilities ->
          Protocol.ok_response ~trace_id (run_capabilities t)
        | Protocol.Metrics_prom ->
          Protocol.ok_response ~trace_id (run_metrics_prom t)
        | Protocol.Recent q -> Protocol.ok_response ~trace_id (run_recent t q)
        | Protocol.Trace id -> (
          match run_trace t id with
          | Some result -> Protocol.ok_response ~trace_id result
          | None ->
            outcome := Protocol.error_code_to_string Protocol.Invalid_request;
            Protocol.error_response ~trace_id Protocol.Invalid_request
              (Printf.sprintf
                 "no record of trace %S on the router or any routable shard" id))
        | _ -> (
          (* The shard enforces timeout_ms itself — queue wait is
             included via the forward timeouts.  The forwarded body
             carries the router's trace context. *)
          let key = affinity_key t request body in
          let outcome_, fails =
            forward t ~trace_id ~key (with_trace_context ~trace_id body)
          in
          retries := fails;
          match outcome_ with
          | Forwarded (m, resp) ->
            shard := Some (Member.id m);
            splice_shard ~shard:(Member.id m) (splice_trace ~trace_id resp)
          | Shard_overloaded { retry_after_ms; message } ->
            outcome := Protocol.error_code_to_string Protocol.Overloaded;
            Protocol.error_response ?retry_after_ms ~trace_id
              Protocol.Overloaded message
          | No_shard ->
            Atomic.incr t.rejects;
            outcome := Protocol.error_code_to_string Protocol.Overloaded;
            Log.emit ~level:Log.Error ~trace_id "no_shard"
              [ ("kind", Log.Str kind) ];
            Protocol.error_response
              ~retry_after_ms:(1000. *. t.config.probe_interval_s) ~trace_id
              Protocol.Overloaded
              "no healthy shard available; retry after the next probe cycle")
      with exn ->
        outcome := Protocol.error_code_to_string Protocol.Internal;
        Protocol.error_response ~trace_id Protocol.Internal
          (Printexc.to_string exn)
    in
    let finished_at = Unix.gettimeofday () in
    Recorder.commit t.recorder ~trace_id ~kind ?shard:!shard ~outcome:!outcome
      ~retries:!retries ~queue_wait_ms ~start:received_at
      ~duration_ms:((finished_at -. received_at) *. 1e3) ();
    response

(* Routable members get a cheap [version] probe; ejected ones must
   answer [capabilities] with a matching protocol version before
   readmission — a shard restarted with an incompatible binary stays
   out of the ring. *)
let probe_member t m =
  let ejected = not (Member.available m) in
  let body = if ejected then capabilities_body else version_body in
  let ok =
    match
      Client.request ~timeouts:t.config.probe_timeouts ~retry:Client.no_retry
        ~host:(Member.host m) ~port:(Member.port m) body
    with
    | Error _ -> false
    | Ok resp -> (
      match Service_api.parse_response resp with
      | Ok { Service_api.r_ok = true; r_result; _ } ->
        if not ejected then true
        else (
          match Option.bind r_result (Json.member "protocol") with
          | Some (Json.Int p) -> p = Protocol.protocol_version
          | _ -> false)
      | _ -> false)
  in
  Member.probe_result m ~ok;
  observe_health t m ~ok

let probe_once t = Array.iter (probe_member t) t.members

let run ?stop ?on_ready ?handle_signals (config : config) =
  let t = create config in
  let stop = match stop with Some s -> s | None -> Atomic.make false in
  let prober =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          probe_once t;
          (* Sleep in slices so shutdown stays prompt. *)
          let slices =
            max 1 (int_of_float (Float.ceil (config.probe_interval_s /. 0.05)))
          in
          let i = ref 0 in
          while !i < slices && not (Atomic.get stop) do
            Thread.delay 0.05;
            incr i
          done
        done)
      ()
  in
  let on_ready =
    match on_ready with
    | Some f -> f
    | None ->
      fun port ->
        Fmt.pr
          "skope router listening on %s:%d (%d shards, %d vnodes, seed %d)@."
          config.host port
          (List.length config.members)
          config.vnodes config.ring_seed;
        (* Scripts wait for this line before issuing queries. *)
        Format.pp_print_flush Format.std_formatter ()
  in
  let net =
    {
      Server.default_net with
      Server.n_host = config.host;
      n_port = config.port;
      n_pool = config.pool;
      n_queue_capacity = config.queue_capacity;
      n_read_timeout_s = config.read_timeout_s;
      n_write_timeout_s = config.write_timeout_s;
    }
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Thread.join prober)
  @@ fun () ->
  Server.serve ~stop ~on_ready ?handle_signals ~recorder:t.recorder net
    ~handler:(fun ~received_at body -> handle ~received_at t body)
