module Server = Skope_service.Server
module Dispatch = Skope_service.Dispatch

type t = {
  stop_all : bool Atomic.t;
  shard_stops : bool Atomic.t array;
  shard_threads : Thread.t array;
  watcher : Thread.t;
  router_thread : Thread.t;
  router_port : int;
  shard_ports : int array;
  shard_ids : string array;
}

let wait_port ?(timeout_s = 10.) cell what =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match Atomic.get cell with
    | 0 ->
      if Unix.gettimeofday () > deadline then
        failwith (Printf.sprintf "Local.start: %s did not come up" what)
      else begin
        Thread.delay 0.01;
        go ()
      end
    | p -> p
  in
  go ()

let start ?stop ?(host = "127.0.0.1") ?(router_port = 0) ?(shards = 2)
    ?(shard_pool = 2) ?(shard_queue = 64) ?(cache_capacity = 4096)
    ?(router_pool = 4) ?(probe_interval_s = 0.25)
    ?(health = Health.default_config) () =
  if shards < 1 then invalid_arg "Local.start: shards must be >= 1";
  (* A late write into a shard torn down by [stop_shard] must not kill
     the process. *)
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let stop_all = match stop with Some s -> s | None -> Atomic.make false in
  let shard_stops = Array.init shards (fun _ -> Atomic.make false) in
  let ready = Array.init shards (fun _ -> Atomic.make 0) in
  let shard_threads =
    Array.init shards (fun i ->
        Thread.create
          (fun () ->
            let config =
              {
                Server.default_config with
                Server.host;
                port = 0;
                pool = shard_pool;
                queue_capacity = shard_queue;
                dispatch =
                  { Dispatch.default_config with Dispatch.cache_capacity };
              }
            in
            Server.run ~stop:shard_stops.(i) ~handle_signals:false
              ~on_ready:(fun p -> Atomic.set ready.(i) p)
              config)
          ())
  in
  (* Each Server.run watches exactly one flag, so a global stop is
     fanned out to the per-shard flags by a tiny watcher thread. *)
  let watcher =
    Thread.create
      (fun () ->
        while not (Atomic.get stop_all) do
          Thread.delay 0.05
        done;
        Array.iter (fun s -> Atomic.set s true) shard_stops)
      ()
  in
  let shard_ports =
    Array.mapi (fun i c -> wait_port c (Printf.sprintf "shard s%d" i)) ready
  in
  let shard_ids = Array.init shards (Printf.sprintf "s%d") in
  let members =
    Array.to_list
      (Array.mapi
         (fun i id ->
           { Router.m_id = id; m_host = host; m_port = shard_ports.(i) })
         shard_ids)
  in
  let router_ready = Atomic.make 0 in
  let router_thread =
    Thread.create
      (fun () ->
        let config =
          {
            Router.default_config with
            Router.host;
            port = router_port;
            pool = router_pool;
            members;
            probe_interval_s;
            health;
          }
        in
        Router.run ~stop:stop_all ~handle_signals:false
          ~on_ready:(fun p -> Atomic.set router_ready p)
          config)
      ()
  in
  let router_port = wait_port router_ready "router" in
  {
    stop_all;
    shard_stops;
    shard_threads;
    watcher;
    router_thread;
    router_port;
    shard_ports;
    shard_ids;
  }

let router_port t = t.router_port
let shard_ports t = Array.copy t.shard_ports
let shard_ids t = Array.copy t.shard_ids

let stop_shard t i =
  Atomic.set t.shard_stops.(i) true;
  Thread.join t.shard_threads.(i)

let join t =
  Thread.join t.router_thread;
  Thread.join t.watcher;
  Array.iter Thread.join t.shard_threads

let stop t =
  Atomic.set t.stop_all true;
  join t
