(** An in-process cluster: N skoped shards plus a router, each in its
    own thread (sharing the process — this is the test/bench/smoke
    harness behind [skope serve --cluster N], not a deployment mode).

    Each shard gets its own {!Skope_service.Dispatch} — so its own LRU
    and its own request/cache counters, which is what the disjointness
    gates measure.  The process-global telemetry sink means per-phase
    histograms mix across shards; the counters the cluster gates rely
    on ([cache_hits]/[cache_misses], request totals) do not.

    Signals: the supervisor ignores SIGPIPE (a torn client socket must
    not kill the process) and installs no other handlers — pass [stop]
    and flip it from your own SIGINT/SIGTERM handler if you need
    one. *)

type t

(** Boot [shards] servers on ephemeral ports, then the router over
    them (member ids [s0], [s1], ...).  Blocks until every listener is
    ready; raises [Failure] if one fails to come up within ~10 s.
    [stop] stops the whole cluster when set.  Defaults: 2 shards,
    pool 2 / queue 64 / cache 4096 per shard, router pool 4, probe
    every 0.25 s, fall 3 / rise 2. *)
val start :
  ?stop:bool Atomic.t ->
  ?host:string ->
  ?router_port:int ->
  ?shards:int ->
  ?shard_pool:int ->
  ?shard_queue:int ->
  ?cache_capacity:int ->
  ?router_pool:int ->
  ?probe_interval_s:float ->
  ?health:Health.config ->
  unit ->
  t

val router_port : t -> int
val shard_ports : t -> int array

(** [s0], [s1], ... — index-aligned with {!shard_ports}. *)
val shard_ids : t -> string array

(** Stop one shard and join its thread (the in-process stand-in for
    killing a worker: its port starts refusing connections, the router
    fails over and eventually ejects it). *)
val stop_shard : t -> int -> unit

(** Block until the cluster stops (via [stop] or {!stop}). *)
val join : t -> unit

(** Stop everything and join. *)
val stop : t -> unit
