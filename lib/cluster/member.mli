(** One shard as the router sees it: address, health, and the
    counters behind [cluster_stats] and the cluster Prometheus
    families.  All mutation is behind a per-member mutex — the data
    path (worker domains) and the prober thread race on these. *)

type t

val create : id:string -> host:string -> port:int -> t
val id : t -> string
val host : t -> string
val port : t -> int

(** Current health, and whether the member is routable. *)
val health : t -> Health.state

val available : t -> bool

(** Requests currently forwarded to (and not yet answered by) this
    member — the bounded-load signal. *)
val in_flight : t -> int

(** Feed a data-path or probe outcome through {!Health.observe};
    returns the transition event, if any, so the caller can rebuild
    the ring. *)
val observe : Health.config -> t -> ok:bool -> Health.event option

val begin_request : t -> unit

(** [ok] decides between the [forwarded] and [errors] counters. *)
val end_request : t -> ok:bool -> unit

(** This member failed and the request moved on to its successor. *)
val skip : t -> unit

val probe_result : t -> ok:bool -> unit

type snapshot = {
  s_health : Health.state;
  s_in_flight : int;
  s_forwarded : int;  (** responses obtained from this shard *)
  s_failovers : int;  (** requests that failed over past it *)
  s_errors : int;  (** transport failures talking to it *)
  s_probes_ok : int;
  s_probes_failed : int;
}

(** A consistent copy of the counters (one lock acquisition). *)
val snapshot : t -> snapshot
