(** The cluster router: one front process owning a consistent-hash
    ring over N skoped shards.

    Keyed requests (analyze / sweep / explore — anything with a
    projection fingerprint) are forwarded to the shard owning their
    {!Skope_service.Fingerprint}, so each shard's LRU stays hot and
    the shard caches are disjoint: a given fingerprint is only ever
    built, and only ever a hit, on one shard.  Unkeyed requests
    (catalogs, version, stats) spread round-robin.  Forwarding rides
    the existing {!Skope_service.Client} retry/deadline machinery; a
    [refused]/[timeout] terminal failure fails over to the next ring
    successor and feeds the member's {!Health} state machine, ejecting
    it from the ring after [fall] consecutive failures.  A background
    prober (periodic [version] probes; [capabilities] — including a
    protocol-version check — for ejected members) readmits recovered
    shards after [rise] consecutive successes.

    The router answers three kinds locally: [cluster_stats] (topology,
    member health, per-shard cache stats), [capabilities] (a shard's
    answer extended with a ["cluster"] object), and [metrics_prom]
    (per-shard scrapes merged by {!Aggregate} under its own
    [skope_cluster_*] families).  Every proxied response gains a
    ["shard"] field naming the member that produced it. *)

type member_spec = { m_id : string; m_host : string; m_port : int }

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port *)
  pool : int;  (** router worker domains *)
  queue_capacity : int;
  read_timeout_s : float;
  write_timeout_s : float;
  members : member_spec list;
  vnodes : int;
  ring_seed : int;
  health : Health.config;
  probe_interval_s : float;
  probe_timeouts : Skope_service.Client.timeouts;
  forward_timeouts : Skope_service.Client.timeouts;
  forward_retry : Skope_service.Client.retry;
  load_factor : float;  (** bounded-load factor; [<= 0] disables *)
}

(** 4 workers, 128 vnodes, ring seed 42, fall 3 / rise 2, 2 s probe
    interval, 1 forward retry, load factor 1.25 — and no members:
    every deployment must name its shards. *)
val default_config : config

type t

(** Raises [Invalid_argument] on an empty member list or duplicate
    member ids.  All members start [Healthy] (optimistic: the first
    probe cycle or data-path failure corrects this). *)
val create : config -> t

(** Handle one request body (the router's [Server.serve] handler).
    Never raises. *)
val handle : ?received_at:float -> t -> string -> string

(** One synchronous probe sweep over all members — the prober thread's
    body, exposed so tests can drive the state machine without
    sleeping. *)
val probe_once : t -> unit

(** Serve until [stop]; starts the prober thread, then delegates to
    {!Skope_service.Server.serve}.  The default [on_ready] prints a
    "listening" line (scripts wait for it). *)
val run :
  ?stop:bool Atomic.t ->
  ?on_ready:(int -> unit) ->
  ?handle_signals:bool ->
  config ->
  unit

(** The ["shard"] field the router appended to a proxied response —
    shared by the CLI histogram, the bench and the tests.  A cheap
    tail scan, not a full JSON parse, so load generators can call it
    per response. *)
val shard_of_response : string -> string option
