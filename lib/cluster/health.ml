type config = { fall : int; rise : int }

let default_config = { fall = 3; rise = 2 }

type state = Healthy | Suspect of int | Ejected of int
type event = Ejection | Readmission

let initial = Healthy
let available = function Healthy | Suspect _ -> true | Ejected _ -> false

let observe config state ~ok =
  let fall = max 1 config.fall and rise = max 1 config.rise in
  match (state, ok) with
  | Healthy, true -> (Healthy, None)
  | Healthy, false ->
    if fall <= 1 then (Ejected 0, Some Ejection) else (Suspect 1, None)
  | Suspect _, true -> (Healthy, None)
  | Suspect n, false ->
    if n + 1 >= fall then (Ejected 0, Some Ejection)
    else (Suspect (n + 1), None)
  | Ejected n, true ->
    if n + 1 >= rise then (Healthy, Some Readmission)
    else (Ejected (n + 1), None)
  | Ejected _, false -> (Ejected 0, None)

let label = function
  | Healthy -> "healthy"
  | Suspect _ -> "suspect"
  | Ejected _ -> "ejected"

let to_string = function
  | Healthy -> "healthy"
  | Suspect n -> Printf.sprintf "suspect(%d)" n
  | Ejected n -> Printf.sprintf "ejected(%d)" n
