let is_comment line = String.length line > 0 && line.[0] = '#'

(* "# HELP name ..." / "# TYPE name ...". *)
let family_of_comment line =
  match String.split_on_char ' ' line with
  | "#" :: ("HELP" | "TYPE") :: name :: _ when name <> "" -> Some name
  | _ -> None

(* The metric name of a sample line: everything before '{' or ' '. *)
let name_of_sample line =
  let n = String.length line in
  let stop = ref n in
  (try
     for i = 0 to n - 1 do
       match line.[i] with
       | '{' | ' ' ->
         stop := i;
         raise Exit
       | _ -> ()
     done
   with Exit -> ());
  String.sub line 0 !stop

let inject_label ~shard line =
  let label = Printf.sprintf "shard=%S" shard in
  match String.index_opt line '{' with
  | Some i ->
    let rest = String.sub line (i + 1) (String.length line - i - 1) in
    let sep = if String.length rest > 0 && rest.[0] = '}' then "" else "," in
    String.sub line 0 (i + 1) ^ label ^ sep ^ rest
  | None -> (
    match String.index_opt line ' ' with
    | Some i ->
      String.sub line 0 i ^ "{" ^ label ^ "}"
      ^ String.sub line i (String.length line - i)
    | None -> line)

let merge parts =
  let order = ref [] in
  let seen = Hashtbl.create 16 in
  (* family -> (owning shard, comment lines rev) — headers come from
     the first shard to mention the family, once. *)
  let comments : (string, string * string list) Hashtbl.t =
    Hashtbl.create 16
  in
  let samples : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let touch fam =
    if not (Hashtbl.mem seen fam) then begin
      Hashtbl.add seen fam ();
      order := fam :: !order
    end
  in
  List.iter
    (fun (shard, text) ->
      (* Block family context: samples like [foo_bucket]/[foo_sum]
         following a [# TYPE foo histogram] belong to [foo]. *)
      let current = ref None in
      String.split_on_char '\n' text
      |> List.iter (fun line ->
             let line = String.trim line in
             if line = "" then ()
             else if is_comment line then (
               match family_of_comment line with
               | Some fam -> (
                 touch fam;
                 current := Some fam;
                 match Hashtbl.find_opt comments fam with
                 | None -> Hashtbl.replace comments fam (shard, [ line ])
                 | Some (owner, lines) when owner = shard ->
                   Hashtbl.replace comments fam (owner, line :: lines)
                 | Some _ -> ())
               | None -> ())
             else begin
               let name = name_of_sample line in
               let fam =
                 match !current with
                 | Some c when String.starts_with ~prefix:c name -> c
                 | _ ->
                   current := Some name;
                   name
               in
               touch fam;
               let prev =
                 Option.value ~default:[] (Hashtbl.find_opt samples fam)
               in
               Hashtbl.replace samples fam (inject_label ~shard line :: prev)
             end))
    parts;
  let buf = Buffer.create 4096 in
  List.iter
    (fun fam ->
      (match Hashtbl.find_opt comments fam with
      | Some (_, lines) ->
        List.iter
          (fun l ->
            Buffer.add_string buf l;
            Buffer.add_char buf '\n')
          (List.rev lines)
      | None -> ());
      match Hashtbl.find_opt samples fam with
      | Some lines ->
        List.iter
          (fun l ->
            Buffer.add_string buf l;
            Buffer.add_char buf '\n')
          (List.rev lines)
      | None -> ())
    (List.rev !order);
  Buffer.contents buf
