(** Merge per-shard Prometheus text expositions (format 0.0.4) into
    one cluster-level exposition.

    Families keep first-seen order; each family's [# HELP]/[# TYPE]
    header appears once (taken from the first shard that emitted it);
    every sample line gains a [shard="<id>"] label so per-shard series
    stay distinguishable after the merge. *)

(** [merge [(shard_id, exposition); ...]]. *)
val merge : (string * string) list -> string

(** Add [shard="<id>"] to one sample line — inserted first into an
    existing label set, or as a fresh [{...}] on a bare name.  Exposed
    for tests. *)
val inject_label : shard:string -> string -> string
