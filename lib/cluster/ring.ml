type t = {
  seed : int;
  vnodes : int;
  members : string list;  (* sorted, distinct *)
  points : (int64 * string) array;  (* sorted by unsigned point *)
}

(* FNV-1a over the bytes, then a SplitMix64 finalizer: FNV alone
   clusters nearby keys ("s0#1" vs "s0#2"), the finalizer's avalanche
   spreads them uniformly around the ring.  The seed perturbs the
   initial basis so distinct deployments get distinct placements. *)
let hash64 ~seed key =
  let h =
    ref
      (Int64.logxor 0xCBF29CE484222325L
         (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L))
  in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001B3L)
    key;
  let z = !h in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ?(vnodes = 128) ?(seed = 42) members =
  let vnodes = max 1 vnodes in
  let members = List.sort_uniq String.compare members in
  let points =
    List.concat_map
      (fun m ->
        List.init vnodes (fun i ->
            (hash64 ~seed (Printf.sprintf "%s#%d" m i), m)))
      members
    |> Array.of_list
  in
  Array.sort
    (fun (a, ma) (b, mb) ->
      match Int64.unsigned_compare a b with
      | 0 -> String.compare ma mb
      | c -> c)
    points;
  { seed; vnodes; members; points }

let members t = t.members
let size t = List.length t.members
let is_empty t = t.members = []
let seed t = t.seed
let vnodes t = t.vnodes
let add t m = create ~vnodes:t.vnodes ~seed:t.seed (m :: t.members)

let remove t m =
  create ~vnodes:t.vnodes ~seed:t.seed
    (List.filter (fun x -> x <> m) t.members)

(* Index of the first point clockwise of [h] (wrapping past the top). *)
let first_at_or_after t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let p, _ = t.points.(mid) in
    if Int64.unsigned_compare p h < 0 then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let successors t key =
  if is_empty t then []
  else begin
    let n = Array.length t.points in
    let start = first_at_or_after t (hash64 ~seed:t.seed key) in
    let total = size t in
    let seen = Hashtbl.create total in
    let order = ref [] in
    let i = ref 0 in
    while Hashtbl.length seen < total && !i < n do
      let _, m = t.points.((start + !i) mod n) in
      if not (Hashtbl.mem seen m) then begin
        Hashtbl.add seen m ();
        order := m :: !order
      end;
      incr i
    done;
    List.rev !order
  end

let owner t key =
  match successors t key with [] -> None | m :: _ -> Some m

let route ?load ?(factor = 1.25) t key =
  let order = successors t key in
  match load with
  | None -> order
  | Some load_of ->
    let n = List.length order in
    if n = 0 || factor <= 0. then order
    else begin
      (* Capacity counts the incoming request, so a single-member ring
         or an all-idle ring never rejects its own owner. *)
      let total = List.fold_left (fun acc m -> acc + load_of m) 0 order in
      let mean = float_of_int (total + 1) /. float_of_int n in
      let cap = max 1 (int_of_float (Float.ceil (factor *. mean))) in
      let under, over = List.partition (fun m -> load_of m < cap) order in
      under @ over
    end
