(** Consistent-hash ring with virtual nodes, seeded placement and
    bounded-load routing.

    Each member contributes [vnodes] points on a 64-bit ring; a key is
    owned by the first point clockwise of its hash.  Placement is a
    pure function of [(seed, vnodes, member set)] — two routers with
    the same configuration route identically, and tests can assert
    exact ownership.  Virtual nodes keep the per-member key share
    balanced (max/mean ≤ 1.25 at 128 vnodes is asserted in the test
    suite); hashing only the member id (never the member count) gives
    the classic minimal-disruption property: removing a member moves
    only the keys it owned. *)

type t

(** [create ~vnodes ~seed members] — duplicates and ordering of
    [members] are irrelevant (the set is sorted and deduplicated).
    Defaults: 128 vnodes, seed 42. *)
val create : ?vnodes:int -> ?seed:int -> string list -> t

val members : t -> string list
(** sorted, distinct *)

val size : t -> int
val is_empty : t -> bool
val seed : t -> int
val vnodes : t -> int

(** Rebuild with one member added/removed; placement of surviving
    members is untouched. *)
val add : t -> string -> t

val remove : t -> string -> t

(** The member owning [key], [None] on an empty ring. *)
val owner : t -> string -> string option

(** All members in ring order starting at [key]'s owner — the failover
    order: if the head is unreachable the next entry is the ring
    successor, and so on.  Distinct; length = [size]. *)
val successors : t -> string -> string list

(** [successors], bounded-load flavor (consistent hashing with bounded
    loads): members whose current [load] is at or above
    [ceil (factor * (total_load + 1) / size)] are rotated to the back
    of the order instead of dropped, so a saturated ring still routes
    everywhere while moderate hot spots spill to their successor. *)
val route :
  ?load:(string -> int) -> ?factor:float -> t -> string -> string list

(** The ring's key/point hash — exposed so tests can place keys
    deterministically. *)
val hash64 : seed:int -> string -> int64
