(** The per-member health state machine, pure so every transition is
    unit-testable.

    {v
      Healthy --fail--> Suspect(1) --fail--> ... --fail--> Ejected
         ^                  |  (any success resets)            |
         |                  v                                  |
         +<-------------- Healthy <---- rise consecutive ------+
                                        probe successes
    v}

    [Suspect] members are still routable (one blip must not dump a
    shard's hot cache on the floor); [Ejected] members leave the ring
    until [rise] consecutive probe successes readmit them. *)

type config = {
  fall : int;  (** consecutive failures before ejection *)
  rise : int;  (** consecutive successes before readmission *)
}

(** fall 3, rise 2. *)
val default_config : config

type state =
  | Healthy
  | Suspect of int  (** consecutive failures so far, < fall *)
  | Ejected of int  (** consecutive successes so far, < rise *)

type event = Ejection | Readmission

val initial : state

(** Routable? [Healthy] and [Suspect] yes, [Ejected] no. *)
val available : state -> bool

(** Feed one observation (data-path outcome or probe result) through
    the state machine; the event, when present, is the edge the caller
    reacts to (rebuild the ring). *)
val observe : config -> state -> ok:bool -> state * event option

(** ["healthy" | "suspect" | "ejected"] — stable labels for JSON and
    metrics. *)
val label : state -> string

(** [label] plus the internal counter, for humans. *)
val to_string : state -> string
