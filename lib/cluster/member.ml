type t = {
  id : string;
  host : string;
  port : int;
  lock : Mutex.t;
  mutable health : Health.state;
  mutable in_flight : int;
  mutable forwarded : int;
  mutable failovers : int;
  mutable errors : int;
  mutable probes_ok : int;
  mutable probes_failed : int;
}

let create ~id ~host ~port =
  {
    id;
    host;
    port;
    lock = Mutex.create ();
    health = Health.initial;
    in_flight = 0;
    forwarded = 0;
    failovers = 0;
    errors = 0;
    probes_ok = 0;
    probes_failed = 0;
  }

let id t = t.id
let host t = t.host
let port t = t.port

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let health t = with_lock t (fun () -> t.health)
let available t = Health.available (health t)
let in_flight t = with_lock t (fun () -> t.in_flight)

let observe config t ~ok =
  with_lock t (fun () ->
      let state, event = Health.observe config t.health ~ok in
      t.health <- state;
      event)

let begin_request t = with_lock t (fun () -> t.in_flight <- t.in_flight + 1)

let end_request t ~ok =
  with_lock t (fun () ->
      t.in_flight <- max 0 (t.in_flight - 1);
      if ok then t.forwarded <- t.forwarded + 1
      else t.errors <- t.errors + 1)

let skip t = with_lock t (fun () -> t.failovers <- t.failovers + 1)

let probe_result t ~ok =
  with_lock t (fun () ->
      if ok then t.probes_ok <- t.probes_ok + 1
      else t.probes_failed <- t.probes_failed + 1)

type snapshot = {
  s_health : Health.state;
  s_in_flight : int;
  s_forwarded : int;
  s_failovers : int;
  s_errors : int;
  s_probes_ok : int;
  s_probes_failed : int;
}

let snapshot t =
  with_lock t (fun () ->
      {
        s_health = t.health;
        s_in_flight = t.in_flight;
        s_forwarded = t.forwarded;
        s_failovers = t.failovers;
        s_errors = t.errors;
        s_probes_ok = t.probes_ok;
        s_probes_failed = t.probes_failed;
      })
