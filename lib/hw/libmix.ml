(** Semi-analytical modeling of opaque library functions (paper
    §IV-C).

    Library source is unavailable, but for a given input the dynamic
    instruction count is assumed stable across hardware.  The paper
    obtains each function's dynamic instruction mixture from hardware
    counters on a local machine and feeds it to the roofline model.
    Here the registry plays the role of those counter measurements:
    each profile is the per-call instruction mix (for [scale = 1]); the
    [measure] helper averages several randomized "runs" the way the
    paper averages over random input instances, and is exercised by the
    SRAD workload whose top hot spots are libm's [exp] and [rand]. *)

open Skope_bet

module Smap = Map.Make (String)

type profile = { name : string; per_call : Work.t; description : string }

let mk name ?(description = "") ~flops ~iops ~divs ~loads ~stores ~lbytes
    ~sbytes () =
  {
    name;
    description;
    per_call =
      {
        Work.flops;
        iops;
        divs;
        vec_flops = 0.;
        vec_issue = 0.;
        loads;
        stores;
        lbytes;
        sbytes;
      };
  }

(* Default mixes for the math-library calls the paper's benchmarks
   exercise.  Counts approximate one scalar call of a table-driven
   libm implementation: polynomial evaluation flops, table lookups,
   and integer range reduction. *)
let defaults =
  [
    mk "exp" ~description:"scalar libm exp: range reduction + degree-10 poly"
      ~flops:36. ~iops:16. ~divs:0. ~loads:2. ~stores:1. ~lbytes:16. ~sbytes:8.
      ();
    mk "log" ~description:"scalar libm log" ~flops:26. ~iops:12. ~divs:1.
      ~loads:3. ~stores:1. ~lbytes:24. ~sbytes:8. ();
    mk "rand"
      ~description:
        "libc rand: LCG state update, integer dominated; state stays \
         register/L1 resident"
      ~flops:0. ~iops:12. ~divs:0. ~loads:0.25 ~stores:0.25 ~lbytes:2.
      ~sbytes:2. ();
    mk "sqrt" ~description:"scalar libm sqrt (Newton refinement)" ~flops:14.
      ~iops:4. ~divs:2. ~loads:1. ~stores:1. ~lbytes:8. ~sbytes:8. ();
    mk "sincos" ~description:"scalar libm sin/cos pair" ~flops:30. ~iops:16.
      ~divs:0. ~loads:4. ~stores:2. ~lbytes:32. ~sbytes:16. ();
    mk "memcpy_elem" ~description:"per-element bulk copy" ~flops:0. ~iops:1.
      ~divs:0. ~loads:1. ~stores:1. ~lbytes:8. ~sbytes:8. ();
    (* Point-to-point message endpoints: the per-byte local cost of a
       rendezvous send/recv (header packing, copy through the NIC
       staging buffer).  Network latency/bandwidth is the multinode
       model's job; these mixes only keep generated comm skeletons
       priceable without unknown-library warnings. *)
    mk "send"
      ~description:"rendezvous send endpoint: per-byte staging copy + header"
      ~flops:0. ~iops:2. ~divs:0. ~loads:1. ~stores:1. ~lbytes:1. ~sbytes:1. ();
    mk "recv"
      ~description:"rendezvous recv endpoint: per-byte staging copy + header"
      ~flops:0. ~iops:2. ~divs:0. ~loads:1. ~stores:1. ~lbytes:1. ~sbytes:1. ();
  ]

type t = profile Smap.t

let default : t =
  List.fold_left (fun m p -> Smap.add p.name p m) Smap.empty defaults

let register t p = Smap.add p.name p t

let find (t : t) name = Smap.find_opt name t

(** Lookup function in the shape BET construction expects. *)
let work_fn (t : t) : string -> Work.t option =
 fun name -> Option.map (fun p -> p.per_call) (find t name)

(** Average the instruction mixes observed over [runs] randomized
    input instances of a library call (paper §IV-C: "randomly generate
    a sufficient number of input instances ... and average the
    statistics").  [sample] maps a pseudo-random seed to the observed
    work of one call. *)
let measure ~name ?(description = "measured") ~runs sample : profile =
  if runs <= 0 then invalid_arg "Libmix.measure: runs must be positive";
  let acc = ref Work.zero in
  for i = 1 to runs do
    acc := Work.add !acc (sample i)
  done;
  { name; description; per_call = Work.scale (1. /. float_of_int runs) !acc }
