(** Hardware design-space exploration.

    The point of the paper's title: because projection needs no
    execution on the target, a designer can sweep architecture
    parameters of a {e conceptual} machine and watch how the
    application's hot spots and bottlenecks move.  This module builds
    machine variants along one design axis; the examples and benches
    combine it with the pipeline to produce sensitivity tables. *)

type axis =
  | Mem_bandwidth of float list  (** GB/s per core *)
  | Mem_latency of float list  (** cycles *)
  | Vector_width of int list
  | Issue_width of float list
  | Frequency of float list  (** GHz *)
  | L2_size of int list  (** bytes *)
  | Div_latency of float list

let axis_name = function
  | Mem_bandwidth _ -> "memory bandwidth (GB/s)"
  | Mem_latency _ -> "memory latency (cycles)"
  | Vector_width _ -> "vector width (DP lanes)"
  | Issue_width _ -> "issue width"
  | Frequency _ -> "frequency (GHz)"
  | L2_size _ -> "L2 size (bytes)"
  | Div_latency _ -> "division latency (cycles)"

(* The short axis keys are the protocol/CLI surface: `--axis bw=...`,
   {"axis":"bw"}; keep them in one place so every layer agrees. *)
let axis_key = function
  | Mem_bandwidth _ -> "bw"
  | Mem_latency _ -> "lat"
  | Vector_width _ -> "vec"
  | Issue_width _ -> "issue"
  | Frequency _ -> "freq"
  | L2_size _ -> "l2"
  | Div_latency _ -> "div"

let axis_keys = [ "bw"; "lat"; "vec"; "issue"; "freq"; "l2"; "div" ]

let axis_of_key key values =
  let ints () = List.map int_of_float values in
  match String.lowercase_ascii key with
  | "bw" -> Ok (Mem_bandwidth values)
  | "lat" -> Ok (Mem_latency values)
  | "vec" -> Ok (Vector_width (ints ()))
  | "issue" -> Ok (Issue_width values)
  | "freq" -> Ok (Frequency values)
  | "l2" -> Ok (L2_size (ints ()))
  | "div" -> Ok (Div_latency values)
  | other ->
    Error
      (Printf.sprintf "unknown axis %S (expected %s)" other
         (String.concat "|" axis_keys))

let axis_values = function
  | Mem_bandwidth vs | Mem_latency vs | Issue_width vs | Frequency vs
  | Div_latency vs ->
    vs
  | Vector_width vs | L2_size vs -> List.map float_of_int vs

(** Machine variants along [axis], each tagged with the swept value
    rendered as a string. *)
let variants (base : Machine.t) (axis : axis) : (string * Machine.t) list =
  let tag fmt v = Fmt.str fmt v in
  match axis with
  | Mem_bandwidth vs ->
    List.map
      (fun v ->
        ( tag "%.1f" v,
          { base with Machine.name = Fmt.str "%s/bw=%.1f" base.Machine.name v;
            mem_bw_gbs = v } ))
      vs
  | Mem_latency vs ->
    List.map
      (fun v ->
        ( tag "%.0f" v,
          { base with Machine.name = Fmt.str "%s/lat=%.0f" base.Machine.name v;
            mem_latency_cycles = v } ))
      vs
  | Vector_width vs ->
    List.map
      (fun v ->
        ( tag "%d" v,
          { base with Machine.name = Fmt.str "%s/vw=%d" base.Machine.name v;
            vector_width = v } ))
      vs
  | Issue_width vs ->
    List.map
      (fun v ->
        ( tag "%.0f" v,
          { base with Machine.name = Fmt.str "%s/iw=%.0f" base.Machine.name v;
            issue_width = v } ))
      vs
  | Frequency vs ->
    List.map
      (fun v ->
        ( tag "%.1f" v,
          { base with Machine.name = Fmt.str "%s/f=%.1f" base.Machine.name v;
            freq_ghz = v } ))
      vs
  | L2_size vs ->
    List.map
      (fun v ->
        ( tag "%dK" (v / 1024),
          {
            base with
            Machine.name = Fmt.str "%s/l2=%dK" base.Machine.name (v / 1024);
            l2 = { base.Machine.l2 with Machine.size_bytes = v };
          } ))
      vs
  | Div_latency vs ->
    List.map
      (fun v ->
        ( tag "%.0f" v,
          { base with Machine.name = Fmt.str "%s/div=%.0f" base.Machine.name v;
            div_latency = v } ))
      vs

(** A balanced sweep around [base] for quick exploration: halve and
    double the memory bandwidth. *)
let default_bandwidth_sweep (base : Machine.t) =
  let bw = base.Machine.mem_bw_gbs in
  variants base (Mem_bandwidth [ bw /. 4.; bw /. 2.; bw; bw *. 2.; bw *. 4. ])

(* --- multi-axis grids ---------------------------------------------- *)

type point = {
  p_tag : string;  (** ["7.0"] on one axis, ["bw=7.0,vec=4"] on more *)
  p_values : (string * float) list;  (** axis key -> swept value *)
  p_machine : Machine.t;
}

let with_value axis v =
  match axis with
  | Mem_bandwidth _ -> Mem_bandwidth [ v ]
  | Mem_latency _ -> Mem_latency [ v ]
  | Vector_width _ -> Vector_width [ int_of_float v ]
  | Issue_width _ -> Issue_width [ v ]
  | Frequency _ -> Frequency [ v ]
  | L2_size _ -> L2_size [ int_of_float v ]
  | Div_latency _ -> Div_latency [ v ]

(* Apply one swept value, reusing [variants] so tags (and therefore
   the single-axis wire format) stay identical to a plain sweep. *)
let apply machine axis v =
  match variants machine (with_value axis v) with
  | [ (tag, m) ] -> (tag, m)
  | _ -> assert false

let empty_point base = { p_tag = ""; p_values = []; p_machine = base }

let extend ~single pt axis v =
  let tag, m = apply pt.p_machine axis v in
  let tag = if single then tag else axis_key axis ^ "=" ^ tag in
  {
    p_tag = (if pt.p_tag = "" then tag else pt.p_tag ^ "," ^ tag);
    p_values = pt.p_values @ [ (axis_key axis, v) ];
    p_machine = m;
  }

(** Full cartesian product of [axes] around [base]; the first axis
    varies slowest, so a one-axis grid lists points in [variants]
    order (byte-compatible with a sweep). *)
let grid (base : Machine.t) (axes : axis list) : point list =
  let single = match axes with [ _ ] -> true | _ -> false in
  List.fold_left
    (fun pts axis ->
      List.concat_map
        (fun pt ->
          List.map (fun v -> extend ~single pt axis v) (axis_values axis))
        pts)
    [ empty_point base ] axes

(** Number of points [grid] would produce, without building them. *)
let grid_size axes =
  List.fold_left (fun acc a -> acc * List.length (axis_values a)) 1 axes

(* Small deterministic xorshift; sampling must be reproducible across
   runs and machines, so no dependency on Stdlib.Random. *)
let sample ?(seed = 42) ~n (base : Machine.t) (axes : axis list) : point list =
  let n = max 1 n in
  let state = ref (((seed * 2654435761) lxor 0x9e3779b9) lor 1) in
  let next () =
    let x = !state in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    let x = x land max_int in
    state := x;
    x
  in
  let shuffle a =
    for i = Array.length a - 1 downto 1 do
      let j = next () mod (i + 1) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done
  in
  (* One stratified column per axis: sample [i]'s level index is drawn
     evenly across the axis's values then shuffled, so each axis's
     marginal coverage is as uniform as [n] allows — a discrete latin
     hypercube.  Duplicate points (possible when an axis has fewer
     levels than [n]) are dropped, keeping the first occurrence. *)
  let columns =
    List.map
      (fun axis ->
        let vs = Array.of_list (axis_values axis) in
        let idx = Array.init n (fun i -> i * Array.length vs / n) in
        shuffle idx;
        (axis, idx, vs))
      axes
  in
  let single = match axes with [ _ ] -> true | _ -> false in
  let pts =
    List.init n (fun i ->
        List.fold_left
          (fun pt (axis, idx, vs) -> extend ~single pt axis vs.(idx.(i)))
          (empty_point base) columns)
  in
  let seen = Hashtbl.create 16 in
  List.filter
    (fun p ->
      if Hashtbl.mem seen p.p_tag then false
      else begin
        Hashtbl.add seen p.p_tag ();
        true
      end)
    pts
