(** Semi-analytical modeling of opaque library functions (paper
    §IV-C).

    Each profile is the per-call dynamic instruction mix a local
    hardware-counter measurement would yield; the BET prices library
    calls by scaling these mixes. *)

open Skope_bet

type profile = { name : string; per_call : Work.t; description : string }

val mk :
  string ->
  ?description:string ->
  flops:float ->
  iops:float ->
  divs:float ->
  loads:float ->
  stores:float ->
  lbytes:float ->
  sbytes:float ->
  unit ->
  profile

type t

(** Profiles for the math-library calls the paper's benchmarks
    exercise ([exp], [log], [rand], [sqrt], [sincos], [memcpy_elem])
    plus the [send]/[recv] point-to-point endpoints generated comm
    skeletons price their exchanges with. *)
val default : t

val register : t -> profile -> t
val find : t -> string -> profile option

(** Lookup in the shape {!Skope_bet.Build.build} expects. *)
val work_fn : t -> string -> Work.t option

(** Average the mixes observed over [runs] randomized input instances
    (§IV-C); [sample i] is the observed work of the [i]-th call.
    @raise Invalid_argument if [runs <= 0]. *)
val measure :
  name:string ->
  ?description:string ->
  runs:int ->
  (int -> Work.t) ->
  profile
