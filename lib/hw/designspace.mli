(** Hardware design-space exploration: machine variants along one
    design axis — or a multi-axis grid — for sweeping conceptual
    architectures without any target execution (the point of the
    paper's title). *)

type axis =
  | Mem_bandwidth of float list  (** GB/s per core *)
  | Mem_latency of float list  (** cycles *)
  | Vector_width of int list
  | Issue_width of float list
  | Frequency of float list  (** GHz *)
  | L2_size of int list  (** bytes *)
  | Div_latency of float list

val axis_name : axis -> string

(** The short protocol/CLI key of an axis: ["bw"], ["lat"], ["vec"],
    ["issue"], ["freq"], ["l2"], ["div"]. *)
val axis_key : axis -> string

(** Every recognized short key, in canonical order (the capabilities
    response advertises these). *)
val axis_keys : string list

(** Build an axis from its short key and swept values (integral axes
    truncate).  [Error] carries a human-readable message listing the
    recognized keys. *)
val axis_of_key : string -> float list -> (axis, string) result

(** The swept values of an axis, as floats. *)
val axis_values : axis -> float list

(** Machine variants along [axis], tagged with the swept value. *)
val variants : Machine.t -> axis -> (string * Machine.t) list

(** Quarter to quadruple the base machine's memory bandwidth. *)
val default_bandwidth_sweep : Machine.t -> (string * Machine.t) list

(** One grid point: a machine with every axis value applied.  On a
    single axis the tag is the bare [variants] tag (["7.0"]); with
    more axes, comma-joined [key=tag] pairs (["bw=7.0,vec=4"]). *)
type point = {
  p_tag : string;
  p_values : (string * float) list;  (** axis key -> swept value *)
  p_machine : Machine.t;
}

(** Full cartesian product of [axes] around [base]; the first axis
    varies slowest, so a one-axis grid lists points in [variants]
    order. *)
val grid : Machine.t -> axis list -> point list

(** Number of points {!grid} would produce, without building them. *)
val grid_size : axis list -> int

(** [n] points of the grid chosen by a seeded discrete latin-hypercube
    (each axis's levels are covered as evenly as [n] allows).
    Deterministic for a given [seed] (default 42); duplicates are
    dropped, so fewer than [n] points may return. *)
val sample : ?seed:int -> n:int -> Machine.t -> axis list -> point list
