(** Hot-spot identification (paper §V-B).

    Two user criteria drive the selection:

    - {b time coverage}: the selected spots should together account for
      at least this fraction of total run time (default 0.90);
    - {b code leanness}: the selected spots may contain at most this
      fraction of the program's static instructions (default 0.10).

    Leanness takes precedence: when both cannot be met, coverage is
    maximized subject to the leanness bound.  The underlying problem is
    a knapsack; like the paper we use a greedy algorithm, walking
    blocks in decreasing time order and skipping any block whose static
    size would exceed the leanness budget. *)

open Skope_bet

type criteria = { time_coverage : float; code_leanness : float }

let default_criteria = { time_coverage = 0.90; code_leanness = 0.10 }

type spot = {
  stat : Blockstat.t;
  rank : int;  (** 1-based rank by time among selected spots *)
  coverage : float;  (** this spot's share of total time *)
  cum_coverage : float;  (** cumulative share up to and including it *)
}

type selection = {
  spots : spot list;  (** selected, in rank order *)
  ranked : Blockstat.t list;  (** all candidates by decreasing time *)
  coverage : float;  (** total coverage achieved *)
  leanness : float;  (** fraction of static instructions selected *)
  total_time : float;
  total_instructions : int;
  criteria : criteria;
}

let spot_blocks sel = List.map (fun s -> s.stat.Blockstat.block) sel.spots

let spot_set sel = Block_id.Set.of_list (spot_blocks sel)

(** Select hot spots among [blocks].

    [total_instructions] is the program's static instruction count (the
    leanness denominator).  Blocks with negligible time are not
    candidates.

    [assume_ranked] promises that [blocks] is already in
    {!Blockstat.rank} order, skipping the re-sort.  This is safe —
    and bit-identical, since the rank order is strict (unique block-id
    tiebreak) — whenever the caller got the list from a ranking
    producer such as {!Perf.project} or [Arena_price]. *)
let select ?(criteria = default_criteria) ?(assume_ranked = false)
    ~total_instructions (blocks : Blockstat.t list) : selection =
  let ranked = if assume_ranked then blocks else Blockstat.rank blocks in
  let total_time = Blockstat.total_time ranked in
  let budget =
    criteria.code_leanness *. float_of_int (max 1 total_instructions)
  in
  let eligible (b : Blockstat.t) = b.time > total_time *. 1e-9 in
  let selected, size_used, time_used =
    List.fold_left
      (fun ((sel, size, time) as acc) (b : Blockstat.t) ->
        let coverage_met =
          total_time > 0. && time /. total_time >= criteria.time_coverage
        in
        if coverage_met || not (eligible b) then acc
        else if float_of_int (size + b.static_size) <= budget then
          (b :: sel, size + b.static_size, time +. b.time)
        else acc)
      ([], 0, 0.) ranked
  in
  let selected = List.rev selected in
  let spots =
    List.mapi
      (fun i (b : Blockstat.t) ->
        {
          stat = b;
          rank = i + 1;
          coverage = (if total_time > 0. then b.time /. total_time else 0.);
          cum_coverage = 0.;
        })
      selected
  in
  (* Fill cumulative coverages. *)
  let _, spots =
    List.fold_left_map
      (fun cum (s : spot) ->
        let cum = cum +. s.coverage in
        (cum, { s with cum_coverage = cum }))
      0. spots
  in
  {
    spots;
    ranked;
    coverage = (if total_time > 0. then time_used /. total_time else 0.);
    leanness = float_of_int size_used /. float_of_int (max 1 total_instructions);
    total_time;
    total_instructions;
    criteria;
  }

(** Cumulative-coverage curve of the first [k] ranked blocks
    (ignoring selection criteria) — the y-values of the paper's
    figures 5 and 10–13. *)
let coverage_curve ?(k = 10) (blocks : Blockstat.t list) : float list =
  let ranked = Blockstat.rank blocks in
  let total = Blockstat.total_time ranked in
  let rec go i cum = function
    | [] -> []
    | (b : Blockstat.t) :: rest ->
      if i >= k then []
      else
        let cum = cum +. (if total > 0. then b.time /. total else 0.) in
        cum :: go (i + 1) cum rest
  in
  go 0 0. ranked

(** Top-[k] blocks by time. *)
let top_k ~k blocks =
  let ranked = Blockstat.rank blocks in
  List.filteri (fun i _ -> i < k) ranked
