(** Per-static-block performance statistics.

    Both the analytic projection (lib/analysis {!Perf}) and the
    ground-truth simulator (lib/sim) produce values of this type, so
    hot-spot selection and the quality metric can consume either
    interchangeably.  [time] is {e exclusive}: seconds attributed to
    the block's direct statements only, so coverages of disjoint
    blocks sum cleanly. *)

open Skope_bet
open Skope_hw

type t = {
  block : Block_id.t;
  name : string;
  time : float;  (** exclusive seconds over the whole execution *)
  tc : float;  (** computation component (zero for simulator output) *)
  tm : float;  (** memory component *)
  t_overlap : float;  (** overlapped component *)
  enr : float;  (** expected/observed number of executions *)
  static_size : int;  (** exclusive static instruction statements *)
  bound : Roofline.bound;
  work : Work.t;  (** total dynamic work of the block *)
  note : string;  (** representative invocation context *)
}

let make ?(tc = 0.) ?(tm = 0.) ?(t_overlap = 0.) ?(enr = 0.)
    ?(bound = Roofline.Balanced) ?(work = Work.zero) ?(note = "") ~block ~name
    ~time ~static_size () =
  { block; name; time; tc; tm; t_overlap; enr; static_size; bound; work; note }

(** Rank order: decreasing time, ties broken by block id.  A strict
    total order over any set of distinct blocks, so every correct sort
    produces the same sequence. *)
let compare_rank (a : t) (b : t) =
  match Float.compare b.time a.time with
  | 0 -> Block_id.compare a.block b.block
  | c -> c

let rank (l : t list) : t list = List.sort compare_rank l

let total_time (l : t list) = List.fold_left (fun acc b -> acc +. b.time) 0. l

let find (l : t list) id =
  List.find_opt (fun b -> Block_id.equal b.block id) l

let pp ppf (b : t) =
  Fmt.pf ppf "%-28s %10.4gs x%-10.4g [%a]" b.name b.time b.enr
    Roofline.pp_bound b.bound
