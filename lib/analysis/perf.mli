(** Analytic performance projection over a BET (paper §V-A).

    Every node's exclusive work is priced once with the roofline; its
    total contribution is [t * ENR] where
    [ENR = trips * prob * ENR(parent)].  Contributions are aggregated
    per static block — the granularity of hot spots. *)

open Skope_bet
open Skope_hw

type projection = {
  machine : Machine.t;
  blocks : Blockstat.t list;  (** ranked by decreasing projected time *)
  total_time : float;
  node_time : (int, float) Hashtbl.t;
      (** BET node id -> projected seconds, for hot-path annotation *)
  node_enr : (int, float) Hashtbl.t;
}

(** Cache-ratio model: [Constant] is the paper's fixed-hit-ratio
    assumption; [Footprint] derives per-level hit ratios from whether
    the innermost enclosing loop's working set fits in the level —
    the refinement the paper leaves to future work (§VIII). *)
type cache_model = Constant | Footprint

(** Expected bytes touched by one execution of a node (children
    included, no cross-iteration reuse assumed). *)
val bytes_per_exec : Node.t -> float

(** Hit ratios under the [Footprint] model: per cache level, 0.95 if
    the working set fits, else only spatial (within-line) reuse.
    Shared by the tree walk and the arena engine so the two price
    identically. *)
val footprint_hits :
  Machine.t -> footprint:float -> base:Roofline.opts -> Roofline.opts

(** Project [built] onto [machine]; [opts] selects roofline
    refinements and [cache] the hit-ratio model (default: the paper's
    baseline). *)
val project :
  ?opts:Roofline.opts ->
  ?cache:cache_model ->
  Machine.t ->
  Build.result ->
  projection
