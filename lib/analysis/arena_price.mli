(** Batched re-pricing of a flat BET {!Arena} (paper §V-A).

    Bit-for-bit identical to {!Perf.project} on blocks and total time:
    per-node pricing calls the same {!Roofline.estimate} on the same
    work records with the same opts resolution, and per-block
    aggregation replays the arena's recorded pre-order so float
    addition rounds identically.  The projection's per-node hash
    tables ([node_time]/[node_enr], used only by hot-path annotation)
    are not produced — use the tree engine for [skope hotpath]. *)

open Skope_bet
open Skope_hw

(** Pricing state for one machine point: the unscaled breakdown of
    every arena slot, retained so a later point can re-price only the
    slots a machine-axis change reaches. *)
type state

type priced = {
  p_machine : Machine.t;
  p_blocks : Blockstat.t list;  (** ranked, as {!Perf.project} ranks *)
  p_total_time : float;
  p_state : state;
}

val machine : priced -> Machine.t
val blocks : priced -> Blockstat.t list
val total_time : priced -> float

(** Changed-axes bitmask ({!Arena} dep bits) between two machines.
    Zero means no field the evaluator reads differs. *)
val change_mask : cache:Perf.cache_model -> Machine.t -> Machine.t -> int

(** Price every slot (full pass). *)
val price :
  ?opts:Roofline.opts ->
  ?cache:Perf.cache_model ->
  Arena.t ->
  Machine.t ->
  priced

(** Re-price against [prev]: only slots whose dependency mask
    intersects the machine diff are re-estimated; the rest reuse
    [prev]'s breakdowns.  Counters ["arena_nodes_priced"] and
    ["arena_reprice_skipped"] record the split. *)
val price_delta :
  ?opts:Roofline.opts ->
  ?cache:Perf.cache_model ->
  prev:priced ->
  Arena.t ->
  Machine.t ->
  priced

(** Price a machine sweep, delta-chaining consecutive points so each
    slot is estimated at most once per point and usually far less. *)
val price_batch :
  ?opts:Roofline.opts ->
  ?cache:Perf.cache_model ->
  Arena.t ->
  Machine.t array ->
  priced array
