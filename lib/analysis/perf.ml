(** Analytic performance projection over a BET (paper §V-A).

    Every BET node's exclusive work is priced once with the roofline
    model; the node's total contribution is [t * ENR] where the
    expected number of repetitions is [trips * prob * ENR(parent)].
    Contributions are aggregated per static block, which is the
    granularity at which hot spots are reported. *)

open Skope_bet
open Skope_hw

type projection = {
  machine : Machine.t;
  blocks : Blockstat.t list;  (** ranked by decreasing projected time *)
  total_time : float;
  node_time : (int, float) Hashtbl.t;
      (** BET node id -> total projected seconds (exclusive),
          for hot-path annotation *)
  node_enr : (int, float) Hashtbl.t;
}

type acc = {
  mutable time : float;
  mutable tc : float;
  mutable tm : float;
  mutable t_overlap : float;
  mutable enr : float;
  mutable work : Work.t;
  mutable note : string;
}

(** Cache-ratio model for the projection.

    [Constant] is the paper's first-order assumption (fixed hit ratios
    from {!Roofline.opts}).  [Footprint] is the refinement the paper
    leaves to future work (§VIII): per BET node, estimate the data
    footprint of the innermost enclosing loop's full execution and
    derive the hit ratio of each level from whether that working set
    fits — a streaming sweep larger than the cache only keeps spatial
    (within-line) reuse. *)
type cache_model = Constant | Footprint

(* Expected bytes touched by one execution of [node], children
   included (no cross-iteration reuse assumed). *)
let rec bytes_per_exec (node : Node.t) =
  List.fold_left
    (fun acc (c : Node.t) ->
      acc +. (c.Node.prob *. c.Node.trips *. bytes_per_exec c))
    (Work.bytes node.Node.work)
    node.Node.children

let footprint_hits (machine : Machine.t) ~footprint ~(base : Roofline.opts) =
  let spatial (level : Machine.cache_level) =
    (* Streaming beyond the cache: only within-line reuse survives
       (8-byte elements in [line_bytes] lines). *)
    1. -. (8. /. float_of_int level.Machine.line_bytes)
  in
  let hit (level : Machine.cache_level) =
    if footprint <= float_of_int level.Machine.size_bytes then 0.95
    else spatial level
  in
  { base with Roofline.hit_l1 = hit machine.Machine.l1;
    hit_l2 = hit machine.Machine.l2 }

(** Project the execution of [built] onto [machine].  [opts] selects
    roofline refinements and [cache] the hit-ratio model (default:
    the paper's baseline — constant ratios, flop-uniform, scalar). *)
let project ?(opts = Roofline.default_opts) ?(cache = Constant)
    (machine : Machine.t) (built : Build.result) : projection =
  Skope_telemetry.Span.with_ ~name:"eval"
    ~attrs:[ ("machine", machine.Machine.name) ]
    (fun () ->
  let visited = ref 0 in
  let per_block : (Block_id.t, acc) Hashtbl.t = Hashtbl.create 64 in
  let node_time = Hashtbl.create 256 in
  let node_enr = Hashtbl.create 256 in
  let visit (node : Node.t) ~enr ~footprint =
      incr visited;
      let opts =
        match cache with
        | Constant -> opts
        | Footprint -> footprint_hits machine ~footprint ~base:opts
      in
      let breakdown = Roofline.estimate ~opts machine node.Node.work in
      let t = breakdown.Roofline.total *. enr in
      Hashtbl.replace node_time node.Node.id t;
      Hashtbl.replace node_enr node.Node.id enr;
      let acc =
        match Hashtbl.find_opt per_block node.Node.block with
        | Some a -> a
        | None ->
          let a =
            {
              time = 0.;
              tc = 0.;
              tm = 0.;
              t_overlap = 0.;
              enr = 0.;
              work = Work.zero;
              note = "";
            }
          in
          Hashtbl.add per_block node.Node.block a;
          a
      in
      acc.time <- acc.time +. t;
      acc.tc <- acc.tc +. (breakdown.Roofline.tc *. enr);
      acc.tm <- acc.tm +. (breakdown.Roofline.tm *. enr);
      acc.t_overlap <- acc.t_overlap +. (breakdown.Roofline.t_overlap *. enr);
      acc.enr <- acc.enr +. enr;
      acc.work <- Work.add acc.work (Work.scale enr node.Node.work);
      if acc.note = "" then acc.note <- node.Node.note
  in
  (* Walk the BET computing ENR top-down and, for the footprint cache
     model, the working set of the innermost enclosing loop. *)
  let rec go (node : Node.t) ~parent_enr ~footprint =
    let enr = node.Node.trips *. node.Node.prob *. parent_enr in
    let footprint =
      match node.Node.kind with
      | Node.Loop -> node.Node.trips *. bytes_per_exec node
      | _ -> footprint
    in
    visit node ~enr ~footprint;
    List.iter (fun c -> go c ~parent_enr:enr ~footprint) node.Node.children
  in
  go built.Build.root ~parent_enr:1.
    ~footprint:(bytes_per_exec built.Build.root);
  let blocks =
    Hashtbl.fold
      (fun block (a : acc) l ->
        let bound =
          if a.tc > a.tm *. 1.25 then Roofline.Compute_bound
          else if a.tm > a.tc *. 1.25 then Roofline.Memory_bound
          else Roofline.Balanced
        in
        Blockstat.make ~block
          ~name:(Bst.block_name built.Build.bst block)
          ~time:a.time ~tc:a.tc ~tm:a.tm ~t_overlap:a.t_overlap ~enr:a.enr
          ~static_size:(Bst.block_size built.Build.bst block)
          ~bound ~work:a.work ~note:a.note ()
        :: l)
      per_block []
    |> Blockstat.rank
  in
  Skope_telemetry.Span.count "bet_nodes_evaluated" (float_of_int !visited);
  {
    machine;
    blocks;
    total_time = Blockstat.total_time blocks;
    node_time;
    node_enr;
  })
