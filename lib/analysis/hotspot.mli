(** Hot-spot identification (paper §V-B).

    Greedy knapsack under two user criteria: minimum time coverage
    (default 90%) and maximum code leanness (default 10% of static
    instructions), leanness taking precedence. *)

open Skope_bet

type criteria = { time_coverage : float; code_leanness : float }

val default_criteria : criteria

type spot = {
  stat : Blockstat.t;
  rank : int;  (** 1-based among selected spots *)
  coverage : float;  (** share of total time *)
  cum_coverage : float;
}

type selection = {
  spots : spot list;  (** selected, in rank order *)
  ranked : Blockstat.t list;  (** all candidates by decreasing time *)
  coverage : float;
  leanness : float;
  total_time : float;
  total_instructions : int;
  criteria : criteria;
}

val spot_blocks : selection -> Block_id.t list
val spot_set : selection -> Block_id.Set.t

(** Select hot spots; [total_instructions] is the static instruction
    weight of the whole program (the leanness denominator).
    [assume_ranked] promises the input is already in {!Blockstat.rank}
    order (a strict total order, so skipping the re-sort is
    bit-identical). *)
val select :
  ?criteria:criteria ->
  ?assume_ranked:bool ->
  total_instructions:int ->
  Blockstat.t list ->
  selection

(** Cumulative-coverage curve of the first [k] ranked blocks (the
    y-values of the paper's Figs. 5, 10-13). *)
val coverage_curve : ?k:int -> Blockstat.t list -> float list

val top_k : k:int -> Blockstat.t list -> Blockstat.t list
