(** Batched re-pricing of a flat BET arena (paper §V-A, executed as a
    forward loop instead of a tree walk).

    The engine is split in two passes so that per-node pricing and
    per-block aggregation can be optimized independently while staying
    bit-for-bit identical to {!Perf.project}:

    - pass 1 prices each arena slot with {!Roofline.estimate} — the
      very same function, on the very same [Work.t] record, with the
      very same opts resolution as the tree walk — and stores the
      unscaled breakdown in flat float arrays;
    - pass 2 replays the arena's [pre_order] sequence, accumulating
      per-block statistics with exactly the floating point expressions
      of the tree walk's visit function, so non-associative float
      addition rounds identically.

    Incrementality: [price_delta] diffs the previous and next machine
    into a changed-axes bitmask and re-runs pass 1 only for slots
    whose frozen dependency mask intersects it; every other slot
    reuses its stored breakdown (bit-identical by purity of
    [Roofline.estimate]).  Pass 2 re-aggregates only the blocks a
    re-priced slot feeds and merges them back into the previous rank
    order, reusing every untouched block's immutable record. *)

open Skope_bet
open Skope_hw

(* Per-machine pricing state: the unscaled roofline breakdown of every
   arena slot, kept so the next machine point can re-price only the
   slots an axis change actually reaches. *)
type state = {
  s_machine : Machine.t;
  s_tc : float array;
  s_tm : float array;
  s_to : float array;
  s_tot : float array;
  s_stats : Blockstat.t array;
      (** per dense block index; records are immutable, so a delta
          pricing shares the untouched blocks' records with its
          predecessor instead of rebuilding them *)
  s_order : int array;
      (** dense block indices in {!Blockstat.rank} order; a delta
          pricing merges the few re-ranked blocks into the previous
          order instead of re-sorting from scratch *)
}

type priced = {
  p_machine : Machine.t;
  p_blocks : Blockstat.t list;  (** ranked, as {!Perf.project} ranks *)
  p_total_time : float;
  p_state : state;
}

let machine p = p.p_machine
let blocks p = p.p_blocks
let total_time p = p.p_total_time

(* Machine-side changed-axes mask: which dependency groups a diff
   between two machines can reach.  Under the [Constant] cache model
   the structural cache fields are never read, so pure geometry
   changes contribute nothing. *)
let change_mask ~(cache : Perf.cache_model) (a : Machine.t) (b : Machine.t) =
  let m = ref 0 in
  let on bit cond = if cond then m := !m lor bit in
  on Arena.dep_freq (a.freq_ghz <> b.freq_ghz);
  on Arena.dep_cpu
    (a.fma <> b.fma || a.flop_issue_per_cycle <> b.flop_issue_per_cycle);
  on Arena.dep_issue (a.issue_width <> b.issue_width);
  on Arena.dep_vec (a.vector_width <> b.vector_width);
  on Arena.dep_div (a.div_latency <> b.div_latency);
  on Arena.dep_mem
    (a.mem_bw_gbs <> b.mem_bw_gbs
    || a.mem_latency_cycles <> b.mem_latency_cycles
    || a.mlp <> b.mlp
    || a.l1.latency_cycles <> b.l1.latency_cycles
    || a.l2.latency_cycles <> b.l2.latency_cycles
    || a.l2.line_bytes <> b.l2.line_bytes);
  (match cache with
  | Perf.Constant -> ()
  | Perf.Footprint ->
    on Arena.dep_geom
      (a.l1.size_bytes <> b.l1.size_bytes
      || a.l2.size_bytes <> b.l2.size_bytes
      || a.l1.line_bytes <> b.l1.line_bytes
      || a.l2.line_bytes <> b.l2.line_bytes));
  !m

(* Pass 1: (re-)price the slots selected by [mask] and store their
   unscaled breakdowns in [st]. *)
let reprice ~opts ~cache ~mask (a : Arena.t) (machine : Machine.t) st =
  let priced = ref 0 in
  for i = 0 to a.Arena.n - 1 do
    if a.Arena.deps.(i) land mask <> 0 then begin
      incr priced;
      let opts =
        match cache with
        | Perf.Constant -> opts
        | Perf.Footprint ->
          Perf.footprint_hits machine ~footprint:a.Arena.footprints.(i)
            ~base:opts
      in
      let b = Roofline.estimate ~opts machine a.Arena.works.(i) in
      st.s_tc.(i) <- b.Roofline.tc;
      st.s_tm.(i) <- b.Roofline.tm;
      st.s_to.(i) <- b.Roofline.t_overlap;
      st.s_tot.(i) <- b.Roofline.total
    end
  done;
  Skope_telemetry.Span.count "arena_nodes_priced" (float_of_int !priced);
  Skope_telemetry.Span.count "arena_reprice_skipped"
    (float_of_int (a.Arena.n - !priced))

(* Pass 2: per-block aggregation.  A block's time sums only ever
   accumulate over its own slots, so replaying [block_slots] (the
   block's slice of the pre_order visit sequence) with the tree walk's
   exact float expressions rounds identically to the full replay.
   ENR, work and note sums are machine-independent and were frozen at
   arena build; and a block none of whose slots were re-priced under
   [mask] has bit-identical sums to the previous point, so its
   immutable [Blockstat.t] record is reused outright. *)
let aggregate ~mask ?prev (a : Arena.t) st =
  let nb = Array.length a.Arena.block_ids in
  let rebuild b =
    let time = ref 0. and tc = ref 0. and tm = ref 0. and tov = ref 0. in
    Array.iter
      (fun i ->
        let enr = a.Arena.enrs.(i) in
        time := !time +. (st.s_tot.(i) *. enr);
        tc := !tc +. (st.s_tc.(i) *. enr);
        tm := !tm +. (st.s_tm.(i) *. enr);
        tov := !tov +. (st.s_to.(i) *. enr))
      a.Arena.block_slots.(b);
    let bound =
      if !tc > !tm *. 1.25 then Roofline.Compute_bound
      else if !tm > !tc *. 1.25 then Roofline.Memory_bound
      else Roofline.Balanced
    in
    Blockstat.make ~block:a.Arena.block_ids.(b) ~name:a.Arena.block_names.(b)
      ~time:!time ~tc:!tc ~tm:!tm ~t_overlap:!tov ~enr:a.Arena.block_enrs.(b)
      ~static_size:a.Arena.block_sizes.(b) ~bound
      ~work:a.Arena.block_works.(b) ~note:a.Arena.block_notes.(b) ()
  in
  let by_rank i j = Blockstat.compare_rank st.s_stats.(i) st.s_stats.(j) in
  (match prev with
  | Some (p : state) ->
    (* Re-aggregate only the blocks a re-priced slot feeds, then merge
       them back into the previous rank order: both sequences are
       sorted under the same strict total order, so the merge result
       is the unique rank order — bit-identical to a full re-sort. *)
    let changed = ref [] in
    let nc = ref 0 in
    for b = 0 to nb - 1 do
      if a.Arena.block_deps.(b) land mask = 0 then
        st.s_stats.(b) <- p.s_stats.(b)
      else begin
        st.s_stats.(b) <- rebuild b;
        changed := b :: !changed;
        incr nc
      end
    done;
    let changed = Array.of_list !changed in
    Array.sort by_rank changed;
    let chg = Array.make nb false in
    Array.iter (fun b -> chg.(b) <- true) changed;
    let nc = !nc in
    let ci = ref 0 and pi = ref 0 in
    for oi = 0 to nb - 1 do
      while !pi < nb && chg.(p.s_order.(!pi)) do
        incr pi
      done;
      if
        !ci < nc
        && (!pi >= nb || by_rank changed.(!ci) p.s_order.(!pi) < 0)
      then begin
        st.s_order.(oi) <- changed.(!ci);
        incr ci
      end
      else begin
        st.s_order.(oi) <- p.s_order.(!pi);
        incr pi
      end
    done
  | None ->
    for b = 0 to nb - 1 do
      st.s_stats.(b) <- rebuild b
    done;
    (* Merge sort (List.sort) does about half the comparisons heapsort
       (Array.sort) would; comparisons dominate here. *)
    List.iteri
      (fun oi b -> st.s_order.(oi) <- b)
      (List.sort by_rank (List.init nb (fun b -> b))));
  let blocks = ref [] in
  for oi = nb - 1 downto 0 do
    blocks := st.s_stats.(st.s_order.(oi)) :: !blocks
  done;
  !blocks

let with_eval_span (machine : Machine.t) f =
  Skope_telemetry.Span.with_ ~name:"eval"
    ~attrs:[ ("machine", machine.Machine.name); ("engine", "arena") ]
    f

let price ?(opts = Roofline.default_opts) ?(cache = Perf.Constant)
    (a : Arena.t) (machine : Machine.t) : priced =
  with_eval_span machine (fun () ->
      let n = a.Arena.n in
      let st =
        {
          s_machine = machine;
          s_tc = Array.make n 0.;
          s_tm = Array.make n 0.;
          s_to = Array.make n 0.;
          s_tot = Array.make n 0.;
          s_stats =
            Array.make
              (Array.length a.Arena.block_ids)
              (Blockstat.make ~block:a.Arena.block_ids.(0) ~name:"" ~time:0.
                 ~static_size:0 ());
          s_order = Array.make (Array.length a.Arena.block_ids) 0;
        }
      in
      reprice ~opts ~cache ~mask:Arena.dep_all a machine st;
      let blocks = aggregate ~mask:Arena.dep_all a st in
      {
        p_machine = machine;
        p_blocks = blocks;
        p_total_time = Blockstat.total_time blocks;
        p_state = st;
      })

let price_delta ?(opts = Roofline.default_opts) ?(cache = Perf.Constant)
    ~(prev : priced) (a : Arena.t) (machine : Machine.t) : priced =
  let mask = change_mask ~cache prev.p_state.s_machine machine in
  if mask = 0 then begin
    (* Nothing the model reads changed: the previous pricing is the
       answer (the machines may still differ in unread fields such as
       the name or associativity). *)
    Skope_telemetry.Span.count "arena_reprice_skipped"
      (float_of_int a.Arena.n);
    {
      prev with
      p_machine = machine;
      p_state = { prev.p_state with s_machine = machine };
    }
  end
  else
    with_eval_span machine (fun () ->
        let st =
          {
            s_machine = machine;
            s_tc = Array.copy prev.p_state.s_tc;
            s_tm = Array.copy prev.p_state.s_tm;
            s_to = Array.copy prev.p_state.s_to;
            s_tot = Array.copy prev.p_state.s_tot;
            s_stats = Array.copy prev.p_state.s_stats;
            s_order = Array.make (Array.length prev.p_state.s_order) 0;
          }
        in
        reprice ~opts ~cache ~mask a machine st;
        let blocks = aggregate ~mask ~prev:prev.p_state a st in
        {
          p_machine = machine;
          p_blocks = blocks;
          p_total_time = Blockstat.total_time blocks;
          p_state = st;
        })

let price_batch ?opts ?cache (a : Arena.t) (machines : Machine.t array) :
    priced array =
  let prev = ref None in
  Array.map
    (fun m ->
      let p =
        match !prev with
        | None -> price ?opts ?cache a m
        | Some p -> price_delta ?opts ?cache ~prev:p a m
      in
      prev := Some p;
      p)
    machines
