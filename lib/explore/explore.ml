(** Multi-axis design-space exploration (the paper's co-design loop at
    grid scale).

    The paper's pitch is that projection needs no execution on the
    target, so a designer can ask "what if?" for whole families of
    conceptual machines.  A naive sweep re-runs the entire pipeline —
    workload construction, validation, lint, BET build — for every
    machine point even though only the roofline pricing depends on the
    machine.  This engine runs the machine-independent prefix once
    ({!Core.Pipeline.Prepared.create}) and re-prices the shared BET
    per grid point ({!Core.Pipeline.Prepared.project}), turning
    O(points x full pipeline) into O(1 build + points x projection).
    Under the arena engine consecutive points within a worker's chunk
    are additionally delta-chained ({!Core.Pipeline.Prepared.project_delta}),
    so a point differing from its neighbour on one axis re-prices only
    the dependent BET nodes.

    Evaluation is embarrassingly parallel: the BET is read-only during
    pricing, so a pool of OCaml 5 domains walks the grid with chunked
    work distribution.  Results stream through [on_point] as they
    complete; the final result also carries the Pareto frontier over
    (projected time, hardware cost proxy). *)

module P = Core.Pipeline
module Machine = Core.Hw.Machine
module Designspace = Core.Hw.Designspace
module Hotspot = Core.Analysis.Hotspot
module Blockstat = Core.Analysis.Blockstat
module Roofline = Core.Hw.Roofline
module Perf = Core.Analysis.Perf
module Span = Core.Telemetry.Span

type point = {
  index : int;  (** position in grid order *)
  tag : string;  (** {!Designspace.point} tag, e.g. ["bw=7.0,vec=4"] *)
  values : (string * float) list;  (** axis key -> swept value *)
  machine : Machine.t;
  outcome : P.Prepared.outcome;  (** pricing result (state stripped) *)
  time : float;  (** projected seconds (the outcome total) *)
  cost : float;  (** {!cost_proxy} of [machine] *)
}

type result = {
  prepared : P.Prepared.t;
  points : point list;  (** grid order *)
  pareto : point list;  (** non-dominated points, by increasing time *)
  elapsed : float;  (** wall seconds for the grid evaluation *)
}

(* A dimensionless "hardware budget" so the Pareto frontier has a
   second objective.  Deliberately simple and fixed: relative units
   that grow with everything a designer pays for — pipeline width and
   clock, SIMD datapath, memory interface, SRAM.  Absolute values are
   meaningless; only comparisons within one grid matter. *)
let cost_proxy (m : Machine.t) =
  (m.Machine.freq_ghz *. m.Machine.issue_width)
  +. 0.25 *. m.Machine.freq_ghz
     *. float_of_int m.Machine.vector_width
     *. (if m.Machine.fma then 2. else 1.)
  +. (m.Machine.mem_bw_gbs /. 4.)
  +. (float_of_int m.Machine.l2.Machine.size_bytes /. (1024. *. 1024.) *. 2.)

(** Aggregate (compute, memory, overlapped) seconds over all blocks of
    an outcome — the Tc/Tm/To split of one grid point. *)
let split (o : P.Prepared.outcome) =
  List.fold_left
    (fun (tc, tm, ov) (b : Blockstat.t) ->
      (tc +. b.Blockstat.tc, tm +. b.Blockstat.tm, ov +. b.Blockstat.t_overlap))
    (0., 0., 0.) o.P.Prepared.o_blocks

(** Minimizing Pareto frontier of [items] under [metrics] (both
    objectives smaller-is-better), in increasing order of the first
    objective.  Duplicated metric pairs all survive. *)
let pareto_by ~metrics items =
  let dominates a b =
    let ta, ca = metrics a and tb, cb = metrics b in
    ta <= tb && ca <= cb && (ta < tb || ca < cb)
  in
  List.filter (fun x -> not (List.exists (fun y -> dominates y x) items)) items
  |> List.sort (fun a b -> compare (metrics a) (metrics b))

let pareto_points = pareto_by ~metrics:(fun p -> (p.time, p.cost))

(** The grid to evaluate: the cartesian product of [axes] around
    [base], or — when [sample] is given — that many latin-hypercube
    samples of it.  Every point's machine keeps [base]'s name so
    results (and service fingerprints) match an equivalent
    override query. *)
let grid_points ?sample ?seed (base : Machine.t)
    (axes : Designspace.axis list) : Designspace.point list =
  let pts =
    match sample with
    | None -> Designspace.grid base axes
    | Some n -> Designspace.sample ?seed ~n base axes
  in
  List.map
    (fun (p : Designspace.point) ->
      {
        p with
        Designspace.p_machine =
          { p.Designspace.p_machine with Machine.name = base.Machine.name };
      })
    pts

(** Evaluate [pts] against a shared prepared BET.

    [jobs] sizes the domain pool (default 1: run in the caller's
    domain, which is what the service does — its worker domains are
    the pool).  [check_deadline] is called before each point and may
    raise to abort; the first exception wins, the pool drains, and it
    is re-raised to the caller.  [on_point] observes points as they
    complete (serialized, any domain's points). *)
let evaluate ?(jobs = 1) ?(criteria = Hotspot.default_criteria)
    ?(opts = Roofline.default_opts) ?(cache = Perf.Constant)
    ?check_deadline ?on_point (prepared : P.Prepared.t)
    (pts : Designspace.point list) : result =
  let t0 = Unix.gettimeofday () in
  let arr = Array.of_list pts in
  let n = Array.length arr in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let failure : exn option Atomic.t = Atomic.make None in
  let out_lock = Mutex.create () in
  (* [prev] delta-chains consecutive points of one worker's chunk
     (arena engine; a [None] or tree-engine prev is a full pricing).
     Chains never cross chunks, so workers share nothing mutable. *)
  let eval_one ~prev i =
    (match check_deadline with Some f -> f () | None -> ());
    let pt = arr.(i) in
    let outcome =
      match prev with
      | Some prev ->
        P.Prepared.project_delta ~criteria ~opts ~cache ~prev prepared
          pt.Designspace.p_machine
      | None ->
        P.Prepared.project ~criteria ~opts ~cache prepared
          pt.Designspace.p_machine
    in
    Span.count "explore_points_evaluated" 1.;
    (* Every priced point reuses the shared BET instead of rebuilding
       the machine-independent prefix. *)
    Span.count "explore_bet_reuse_hits" 1.;
    let point =
      {
        index = i;
        tag = pt.Designspace.p_tag;
        values = pt.Designspace.p_values;
        machine = pt.Designspace.p_machine;
        outcome = P.Prepared.strip_state outcome;
        time = outcome.P.Prepared.o_total_time;
        cost = cost_proxy pt.Designspace.p_machine;
      }
    in
    results.(i) <- Some point;
    (match on_point with
    | None -> ()
    | Some f ->
      Mutex.lock out_lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock out_lock) (fun () -> f point));
    outcome
  in
  let jobs = max 1 (min jobs (max 1 n)) in
  (* Chunked distribution: cheap points amortize the atomic fetch,
     while ~4 chunks per worker keep the tail balanced. *)
  let chunk = max 1 (n / (jobs * 4)) in
  let worker () =
    let rec loop () =
      if Atomic.get failure = None then begin
        let start = Atomic.fetch_and_add next chunk in
        if start < n then begin
          (try
             let prev = ref None in
             for i = start to min (start + chunk) n - 1 do
               if Atomic.get failure = None then
                 prev := Some (eval_one ~prev:!prev i)
             done
           with e -> ignore (Atomic.compare_and_set failure None (Some e)));
          loop ()
        end
      end
    in
    loop ()
  in
  Span.with_ ~name:"explore"
    ~attrs:
      [
        ( "workload",
          (P.Prepared.workload prepared).Core.Workloads.Registry.name );
        ("points", string_of_int n);
        ("jobs", string_of_int jobs);
      ]
    (fun () ->
      let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join domains);
  (match Atomic.get failure with Some e -> raise e | None -> ());
  let points =
    Array.to_list results |> List.filter_map Fun.id
  in
  {
    prepared;
    points;
    pareto = pareto_points points;
    elapsed = Unix.gettimeofday () -. t0;
  }
