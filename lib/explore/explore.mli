(** Multi-axis design-space exploration.

    Runs the machine-independent prefix of the pipeline once
    ({!Core.Pipeline.Prepared.create}) and prices the shared BET on
    every machine of a {!Core.Hw.Designspace} grid
    ({!Core.Pipeline.Prepared.project}) — O(1 build + points x
    projection) instead of O(points x full pipeline).  Evaluation runs
    on an OCaml 5 domain pool with chunked work distribution;
    projection is read-only on the prepared artifact, so concurrent
    pricing is safe.  Under the arena engine, consecutive points of a
    worker's chunk are delta-chained so single-axis moves re-price
    only dependent BET nodes. *)

module P = Core.Pipeline
module Machine = Core.Hw.Machine
module Designspace = Core.Hw.Designspace
module Hotspot = Core.Analysis.Hotspot
module Roofline = Core.Hw.Roofline
module Perf = Core.Analysis.Perf

(** One evaluated grid point. *)
type point = {
  index : int;  (** position in grid order *)
  tag : string;  (** {!Designspace.point} tag, e.g. ["bw=7.0,vec=4"] *)
  values : (string * float) list;  (** axis key -> swept value *)
  machine : Machine.t;
  outcome : P.Prepared.outcome;  (** pricing result (state stripped) *)
  time : float;  (** projected seconds (the outcome total) *)
  cost : float;  (** {!cost_proxy} of [machine] *)
}

type result = {
  prepared : P.Prepared.t;  (** the shared machine-independent handle *)
  points : point list;  (** grid order *)
  pareto : point list;  (** non-dominated points, by increasing time *)
  elapsed : float;  (** wall seconds for the grid evaluation *)
}

(** Dimensionless hardware-budget proxy: grows with issue width x
    clock, SIMD datapath width (doubled under FMA), memory bandwidth
    and L2 capacity.  Only comparisons within one grid are
    meaningful. *)
val cost_proxy : Machine.t -> float

(** Aggregate (compute, memory, overlapped) seconds over all blocks —
    the Tc/Tm/To split of one grid point. *)
val split : P.Prepared.outcome -> float * float * float

(** Minimizing Pareto frontier under [metrics] (both objectives
    smaller-is-better), sorted by increasing first objective. *)
val pareto_by : metrics:('a -> float * float) -> 'a list -> 'a list

(** {!pareto_by} over [(time, cost)]. *)
val pareto_points : point list -> point list

(** The grid to evaluate: cartesian product of [axes] around the base
    machine, or [sample] latin-hypercube points of it.  Each point's
    machine keeps the base's name so results (and service cache
    fingerprints) match an equivalent override query. *)
val grid_points :
  ?sample:int ->
  ?seed:int ->
  Machine.t ->
  Designspace.axis list ->
  Designspace.point list

(** Evaluate the points against a shared prepared BET.

    [jobs] sizes the domain pool (default 1: run in the caller's
    domain — the service path, whose worker domains are the pool).
    [check_deadline] runs before each point and may raise to abort:
    the first exception wins, the pool drains, and it is re-raised.
    [on_point] observes points as they complete (calls are
    serialized; order follows completion, not grid order). *)
val evaluate :
  ?jobs:int ->
  ?criteria:Hotspot.criteria ->
  ?opts:Roofline.opts ->
  ?cache:Perf.cache_model ->
  ?check_deadline:(unit -> unit) ->
  ?on_point:(point -> unit) ->
  P.Prepared.t ->
  Designspace.point list ->
  result
