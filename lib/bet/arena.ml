(** Flat post-order BET arena (ROADMAP: incremental BET engine).

    [of_build] flattens a built BET into contiguous int-indexed arrays
    in a single pass: children occupy lower slots than their parent
    (post-order), the root is the last slot, and [pre_order] records
    the original depth-first visit sequence so per-block accumulation
    can replay the tree walk's exact floating point order.

    Everything machine-independent is frozen here, once: the expected
    number of repetitions of every node ([enrs], paper §V-A), the
    working-set footprint of the innermost enclosing loop
    ([footprints], used by the footprint cache model), and a
    machine-dependency bitmask per node ([deps]) derived from the
    shape of its work vector.  Re-pricing the arena for a new machine
    point then touches only frozen floats — and, when two machine
    points differ on a single axis, only the nodes whose dependency
    mask intersects the changed axes. *)

(* Dependency bits: which machine parameters a node's priced
   breakdown can depend on.  Masks are intentionally conservative
   (shape-based, computed without knowing the roofline opts): a set
   bit may recompute a node whose value would not have changed, but a
   clear bit is a proof that no machine field in that group reaches
   the node's Tc/Tm/To terms. *)
let dep_freq = 1 (* freq_ghz: scales every cycle-denominated term *)
let dep_cpu = 2 (* fma, flop_issue_per_cycle *)
let dep_issue = 4 (* issue_width *)
let dep_vec = 8 (* vector_width *)
let dep_div = 16 (* div_latency *)
let dep_mem = 32 (* mem_bw, latencies, mlp, l2 line *)
let dep_geom = 64 (* cache sizes/lines (footprint hit model only) *)

let dep_all =
  dep_freq lor dep_cpu lor dep_issue lor dep_vec lor dep_div lor dep_mem
  lor dep_geom

let deps_of_work (w : Work.t) =
  if Work.is_zero w then 0
  else begin
    let m = ref 0 in
    if Work.ops w > 0. then m := !m lor dep_freq lor dep_issue;
    if w.Work.flops > 0. then m := !m lor dep_cpu;
    if w.Work.vec_flops > 0. then m := !m lor dep_vec;
    if w.Work.divs > 0. then m := !m lor dep_div;
    if Work.mem_accesses w > 0. then m := !m lor dep_mem lor dep_geom;
    !m
  end

type t = {
  n : int;  (** number of nodes *)
  root : int;  (** slot of the BET root (always [n - 1]) *)
  ids : int array;  (** slot -> original BET node id *)
  kinds : Node.kind array;
  probs : float array;
  trips : float array;
  notes : string array;
  works : Work.t array;  (** shared with the tree nodes, not copied *)
  enrs : float array;  (** frozen ENR: trips * prob * ENR(parent) *)
  footprints : float array;
      (** frozen working set of the innermost enclosing loop, bytes *)
  deps : int array;  (** machine-dependency bitmask per slot *)
  parents : int array;  (** slot of parent; -1 for the root *)
  children : int array array;  (** child slots, in execution order *)
  pre_order : int array;
      (** depth-first visit sequence of slots (root first); replaying
          accumulation in this order reproduces the tree walk's float
          rounding bit-for-bit *)
  block_ix : int array;  (** slot -> dense block index *)
  block_ids : Block_id.t array;  (** dense block index -> static block *)
  block_names : string array;
  block_sizes : int array;
  block_slots : int array array;
      (** dense block index -> its slots, in [pre_order] visit order:
          per-block accumulation over this sequence reproduces the
          tree walk's per-block float rounding exactly *)
  block_deps : int array;  (** OR of the block's slot dependency masks *)
  block_enrs : float array;  (** frozen per-block ENR sum *)
  block_works : Work.t array;  (** frozen per-block ENR-scaled work *)
  block_notes : string array;
      (** first non-empty invocation note, in visit order *)
  total_instructions : int;  (** static weight (leanness denominator) *)
}

let node_count t = t.n
let block_count t = Array.length t.block_ids

let of_build (built : Build.result) : t =
  let n = Node.size built.Build.root in
  let ids = Array.make n 0 in
  let kinds = Array.make n Node.Loop in
  let probs = Array.make n 0. in
  let trips = Array.make n 0. in
  let notes = Array.make n "" in
  let works = Array.make n Work.zero in
  let enrs = Array.make n 0. in
  let footprints = Array.make n 0. in
  let deps = Array.make n 0 in
  let parents = Array.make n (-1) in
  let children = Array.make n [||] in
  let pre_order = Array.make n 0 in
  let block_ix = Array.make n 0 in
  let blocks_tbl : (Block_id.t, int) Hashtbl.t = Hashtbl.create 64 in
  let blocks_rev = ref [] in
  let nblocks = ref 0 in
  let next_slot = ref 0 in
  (* Post-order flattening: one recursive pass assigns children their
     slots before the parent, so a forward loop over [0, n) always
     sees children first. *)
  let rec flatten (node : Node.t) =
    let kids = List.map flatten node.Node.children in
    let slot = !next_slot in
    incr next_slot;
    ids.(slot) <- node.Node.id;
    kinds.(slot) <- node.Node.kind;
    probs.(slot) <- node.Node.prob;
    trips.(slot) <- node.Node.trips;
    notes.(slot) <- node.Node.note;
    works.(slot) <- node.Node.work;
    deps.(slot) <- deps_of_work node.Node.work;
    children.(slot) <- Array.of_list kids;
    Array.iter (fun c -> parents.(c) <- slot) children.(slot);
    (block_ix.(slot) <-
       (match Hashtbl.find_opt blocks_tbl node.Node.block with
       | Some b -> b
       | None ->
         let b = !nblocks in
         incr nblocks;
         Hashtbl.add blocks_tbl node.Node.block b;
         blocks_rev := node.Node.block :: !blocks_rev;
         b));
    slot
  in
  let root = flatten built.Build.root in
  (* Bytes touched by one execution, children included — memoized
     bottom-up with the same left-to-right fold as the recursive
     [Perf.bytes_per_exec], so every value is bit-identical to what
     the tree walk computes. *)
  let bpe = Array.make n 0. in
  for slot = 0 to n - 1 do
    bpe.(slot) <-
      Array.fold_left
        (fun acc c -> acc +. (probs.(c) *. trips.(c) *. bpe.(c)))
        (Work.bytes works.(slot))
        children.(slot)
  done;
  (* Freeze ENR and footprint top-down, in the tree walk's visit
     order; that visit order is also the [pre_order] replay
     sequence. *)
  let step = ref 0 in
  let rec freeze slot ~parent_enr ~footprint =
    let enr = trips.(slot) *. probs.(slot) *. parent_enr in
    let footprint =
      match kinds.(slot) with
      | Node.Loop -> trips.(slot) *. bpe.(slot)
      | _ -> footprint
    in
    enrs.(slot) <- enr;
    footprints.(slot) <- footprint;
    pre_order.(!step) <- slot;
    incr step;
    Array.iter (fun c -> freeze c ~parent_enr:enr ~footprint) children.(slot)
  in
  freeze root ~parent_enr:1. ~footprint:bpe.(root);
  let block_ids = Array.of_list (List.rev !blocks_rev) in
  let nb = Array.length block_ids in
  (* Per-block frozen aggregates, replayed in visit order.  The
     machine-dependent time sums of a block only ever accumulate over
     the block's own slots, so their relative visit order is all that
     matters for float rounding — recorded here as [block_slots].  ENR
     and work sums never depend on the machine at all, so they are
     frozen outright with the tree walk's exact expressions. *)
  let block_slots_rev = Array.make nb [] in
  let block_deps = Array.make nb 0 in
  let block_enrs = Array.make nb 0. in
  let block_notes = Array.make nb "" in
  let w_acc = Array.make nb Work.zero in
  Array.iter
    (fun slot ->
      let b = block_ix.(slot) in
      let enr = enrs.(slot) in
      let w = works.(slot) in
      block_slots_rev.(b) <- slot :: block_slots_rev.(b);
      block_deps.(b) <- block_deps.(b) lor deps.(slot);
      block_enrs.(b) <- block_enrs.(b) +. enr;
      (let acc = w_acc.(b) in
       w_acc.(b) <-
         {
           Work.flops = acc.Work.flops +. (enr *. w.Work.flops);
           iops = acc.Work.iops +. (enr *. w.Work.iops);
           divs = acc.Work.divs +. (enr *. w.Work.divs);
           vec_flops = acc.Work.vec_flops +. (enr *. w.Work.vec_flops);
           vec_issue = acc.Work.vec_issue +. (enr *. w.Work.vec_issue);
           loads = acc.Work.loads +. (enr *. w.Work.loads);
           stores = acc.Work.stores +. (enr *. w.Work.stores);
           lbytes = acc.Work.lbytes +. (enr *. w.Work.lbytes);
           sbytes = acc.Work.sbytes +. (enr *. w.Work.sbytes);
         });
      if block_notes.(b) = "" then block_notes.(b) <- notes.(slot))
    pre_order;
  let block_slots =
    Array.map (fun l -> Array.of_list (List.rev l)) block_slots_rev
  in
  let bst = built.Build.bst in
  {
    n;
    root;
    ids;
    kinds;
    probs;
    trips;
    notes;
    works;
    enrs;
    footprints;
    deps;
    parents;
    children;
    pre_order;
    block_ix;
    block_ids;
    block_names = Array.map (Bst.block_name bst) block_ids;
    block_sizes = Array.map (Bst.block_size bst) block_ids;
    block_slots;
    block_deps;
    block_enrs;
    block_works = w_acc;
    block_notes;
    total_instructions = Bst.total_instructions bst;
  }

(** Structural invariants; used by the test suite and cheap enough to
    assert after [of_build] in debug contexts.  Returns [Error msg] on
    the first violation. *)
let check (t : t) : (unit, string) result =
  let fail fmt = Fmt.kstr (fun m -> Error m) fmt in
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let* () = if t.n > 0 then Ok () else fail "empty arena" in
  let* () =
    if t.root = t.n - 1 then Ok ()
    else fail "root slot %d is not the last slot %d" t.root (t.n - 1)
  in
  let* () =
    if t.parents.(t.root) = -1 then Ok () else fail "root has a parent"
  in
  let rec slots i =
    if i >= t.n then Ok ()
    else
      let* () =
        Array.fold_left
          (fun r c ->
            let* () = r in
            if c < 0 || c >= t.n then
              fail "slot %d: child %d out of bounds" i c
            else if c >= i then
              fail "slot %d: child %d not in post-order (child >= parent)" i c
            else if t.parents.(c) <> i then
              fail "slot %d: child %d has parent %d" i c t.parents.(c)
            else Ok ())
          (Ok ()) t.children.(i)
      in
      let* () =
        let b = t.block_ix.(i) in
        if b < 0 || b >= Array.length t.block_ids then
          fail "slot %d: block index %d out of bounds" i b
        else Ok ()
      in
      slots (i + 1)
  in
  let* () = slots 0 in
  (* pre_order must be a permutation of the slots starting at the
     root, with every node visited after its parent. *)
  let seen = Array.make t.n false in
  let rec pre k =
    if k >= t.n then Ok ()
    else
      let s = t.pre_order.(k) in
      let* () =
        if s < 0 || s >= t.n then fail "pre_order.(%d) = %d out of bounds" k s
        else if seen.(s) then fail "pre_order visits slot %d twice" s
        else if k = 0 && s <> t.root then
          fail "pre_order starts at %d, not the root" s
        else if k > 0 && not seen.(t.parents.(s)) then
          fail "pre_order visits slot %d before its parent" s
        else Ok ()
      in
      seen.(s) <- true;
      pre (k + 1)
  in
  pre 0
