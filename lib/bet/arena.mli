(** Flat post-order BET arena.

    A built BET flattened into contiguous int-indexed arrays by a
    single [of_build] pass: children occupy lower slots than their
    parent, the root is the last slot, and every machine-independent
    quantity — ENR, loop working-set footprint, and a per-node
    machine-dependency bitmask — is frozen at construction.  Pricing a
    machine point (lib/analysis [Arena_price]) is then a tight forward
    loop over these arrays instead of a pointer-chasing tree walk, and
    a point that differs from the previous one on a single machine
    axis re-prices only the slots whose dependency mask intersects the
    changed axes. *)

(** {1 Machine-dependency bits}

    Shape-based and conservative: a set bit means the node's priced
    Tc/Tm/To terms {e may} read machine fields in that group; a clear
    bit proves they cannot. *)

val dep_freq : int  (** [freq_ghz] *)

val dep_cpu : int  (** [fma], [flop_issue_per_cycle] *)

val dep_issue : int  (** [issue_width] *)

val dep_vec : int  (** [vector_width] *)

val dep_div : int  (** [div_latency] *)

val dep_mem : int  (** [mem_bw_gbs], latencies, [mlp], L2 line *)

val dep_geom : int  (** cache sizes/lines (footprint hit model) *)

val dep_all : int

val deps_of_work : Work.t -> int

(** {1 The arena} *)

type t = {
  n : int;  (** number of nodes *)
  root : int;  (** slot of the BET root (always [n - 1]) *)
  ids : int array;  (** slot -> original BET node id *)
  kinds : Node.kind array;
  probs : float array;
  trips : float array;
  notes : string array;
  works : Work.t array;  (** shared with the tree nodes, not copied *)
  enrs : float array;  (** frozen ENR: trips * prob * ENR(parent) *)
  footprints : float array;
      (** frozen working set of the innermost enclosing loop, bytes *)
  deps : int array;  (** machine-dependency bitmask per slot *)
  parents : int array;  (** slot of parent; -1 for the root *)
  children : int array array;  (** child slots, in execution order *)
  pre_order : int array;
      (** depth-first visit sequence of slots (root first); replaying
          accumulation in this order reproduces the tree walk's float
          rounding bit-for-bit *)
  block_ix : int array;  (** slot -> dense block index *)
  block_ids : Block_id.t array;  (** dense block index -> static block *)
  block_names : string array;
  block_sizes : int array;
  block_slots : int array array;
      (** dense block index -> its slots in [pre_order] visit order;
          per-block accumulation over this sequence reproduces the
          tree walk's per-block float rounding exactly *)
  block_deps : int array;  (** OR of the block's slot dependency masks *)
  block_enrs : float array;  (** frozen per-block ENR sum *)
  block_works : Work.t array;  (** frozen per-block ENR-scaled work *)
  block_notes : string array;
      (** first non-empty invocation note, in visit order *)
  total_instructions : int;  (** static weight (leanness denominator) *)
}

val node_count : t -> int
val block_count : t -> int

(** Flatten a built BET.  One pass; ENRs, footprints and dependency
    masks are frozen here. *)
val of_build : Build.result -> t

(** Structural invariants (post-order child < parent, index bounds,
    [pre_order] a root-first permutation respecting parent order).
    [Error msg] describes the first violation. *)
val check : t -> (unit, string) result
