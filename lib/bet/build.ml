(** Bayesian Execution Tree construction (paper §IV-B).

    The builder conceptually traverses the BST from the entry function,
    threading a set of weighted contexts:

    - at each function call the callee's tree is mounted in place with
      arguments evaluated in the caller's contexts;
    - a loop becomes a {e single} node carrying its expected trip
      count — the body is modeled once with the loop variable bound to
      the midpoint of its range, so analysis cost is independent of the
      input size;
    - branches split context mass; [let] under different outcomes makes
      contexts diverge, and identical contexts re-merge;
    - [return] moves mass out of the function, [break]/[continue]
      promote their probability to the enclosing loop; the expected
      trip count of a breaking loop is the truncated-geometric
      expectation [(1-(1-p)^n)/p]. *)

open Skope_skeleton
module Smap = Eval.Smap

type result = {
  root : Node.t;
  bst : Bst.t;
  node_count : int;
  warnings : string list;
}

(** Expected trips of a loop over at most [n] iterations when each
    iteration exits early with probability [p]. *)
let truncated_geometric ~p ~n =
  if n <= 0. then 0.
    (* Below ~1e-12 the cancellation in [1 - (1-p)^n] loses all
       precision; the limit is simply [n]. *)
  else if p <= 1e-12 then n
  else if p >= 1. then 1.
  else Float.min n ((1. -. ((1. -. p) ** n)) /. p)

(** Expected trips of a [while] loop continuing with probability [p]
    per iteration, capped at [n] iterations (first iteration always
    runs). *)
let while_trips ~p ~n =
  if n <= 0. then 0.
  else if p >= 1. then n
  else if p <= 0. then 1.
  else Float.min n ((1. -. (p ** n)) /. (1. -. p))

type flow = {
  live : Context.t list;
  returned : float;
  broke : float;
  continued : float;
}

type state = {
  program : Ast.program;
  hints : Hints.t;
  lib_work : string -> Work.t option;
  cap : int;
  mutable next_id : int;
  mutable warnings : string list;
  global_bindings : (string * Value.t) list;
  global_abytes : int Smap.t;
}

let warn st fmt =
  Fmt.kstr (fun m -> if not (List.mem m st.warnings) then st.warnings <- m :: st.warnings) fmt

let fresh st =
  let id = st.next_id in
  st.next_id <- id + 1;
  id

let abytes_of st (arrays : Ast.array_decl list) =
  List.fold_left
    (fun m (a : Ast.array_decl) -> Smap.add a.aname a.elem_bytes m)
    st.global_abytes arrays

(* Mass-weighted sum of [e] over contexts, normalized by [entry_mass]:
   the expected per-execution contribution of a conditionally-reached
   statement. *)
let weighted_count st entry_mass ctxs e =
  List.fold_left
    (fun acc (c : Context.t) ->
      match Eval.eval c.env e with
      | Some v -> acc +. (c.mass *. Float.max 0. (Value.to_float v))
      | None ->
        warn st "count expression did not evaluate; treated as 0";
        acc)
    0. ctxs
  /. entry_mass

(* Builds the node for one code block: processes [stmts] under [ctxs],
   accumulating exclusive work and creating child nodes. [entry_mass]
   is the total mass entering the block (for normalizing conditional
   statements inside it). *)
let rec build_region st ~kind ~block ~prob ~trips ~note ~abytes ~ctxs ~stmts :
    Node.t * flow =
  let entry_mass = Context.mass_of ctxs in
  let work = ref Work.zero in
  let children = ref [] in
  let add_child c = children := c :: !children in
  let flow =
    if entry_mass <= 0. then { live = ctxs; returned = 0.; broke = 0.; continued = 0. }
    else
      List.fold_left
        (fun flow stmt ->
          if Context.mass_of flow.live <= 0. then flow
          else
            build_stmt st ~entry_mass ~abytes ~work ~add_child flow stmt)
        { live = ctxs; returned = 0.; broke = 0.; continued = 0. }
        stmts
  in
  let node =
    {
      Node.id = fresh st;
      block;
      kind;
      prob;
      trips;
      work = !work;
      note;
      children = List.rev !children;
    }
  in
  (node, flow)

and build_stmt st ~entry_mass ~abytes ~work ~add_child flow (s : Ast.stmt) :
    flow =
  let live = flow.live in
  let live_mass = Context.mass_of live in
  match s.kind with
  | Ast.Comp { flops; iops; divs; vec } ->
    let w e = weighted_count st entry_mass live e in
    work :=
      Work.add !work
        (Work.of_comp ~flops:(w flops) ~iops:(w iops) ~divs:(w divs) ~vec);
    flow
  | Ast.Mem { loads; stores } ->
    let frac = live_mass /. entry_mass in
    let count_side accesses =
      let n = float_of_int (List.length accesses) *. frac in
      let bytes =
        List.fold_left
          (fun acc (a : Ast.access) ->
            let eb =
              match Smap.find_opt a.array abytes with
              | Some eb -> eb
              | None ->
                warn st "access to undeclared array %s; assuming 8 bytes"
                  a.array;
                8
            in
            acc +. float_of_int eb)
          0. accesses
        *. frac
      in
      (n, bytes)
    in
    let nl, lb = count_side loads in
    let ns, sb = count_side stores in
    work :=
      Work.add !work (Work.of_mem ~loads:nl ~stores:ns ~lbytes:lb ~sbytes:sb);
    flow
  | Ast.Let (v, e) ->
    work := Work.add !work { Work.zero with iops = live_mass /. entry_mass };
    let live =
      List.map
        (fun (c : Context.t) ->
          match Eval.eval c.env e with
          | Some value -> Context.bind c v value
          | None ->
            warn st "let %s: rhs did not evaluate; variable left unbound" v;
            Context.unbind c v)
        live
    in
    { flow with live = Context.normalize ~cap:st.cap live }
  | Ast.If { cond; then_; else_ } ->
    let t_ctxs, f_ctxs = split_cond st live cond in
    let arm which ctxs stmts =
      if stmts = [] then { live = ctxs; returned = 0.; broke = 0.; continued = 0. }
      else begin
        let prob = Context.mass_of ctxs /. entry_mass in
        if prob <= 0. then
          { live = []; returned = 0.; broke = 0.; continued = 0. }
        else begin
          let node, aflow =
            build_region st ~kind:(Node.Arm which)
              ~block:(Block_id.Arm (s.sid, which))
              ~prob ~trips:1.
              ~note:""
              ~abytes ~ctxs ~stmts
          in
          add_child node;
          aflow
        end
      end
    in
    let tf = arm true t_ctxs then_ in
    let ff = arm false f_ctxs else_ in
    {
      live = Context.normalize ~cap:st.cap (tf.live @ ff.live);
      returned = flow.returned +. tf.returned +. ff.returned;
      broke = flow.broke +. tf.broke +. ff.broke;
      continued = flow.continued +. tf.continued +. ff.continued;
    }
  | Ast.For { var; lo; hi; step; body } ->
    let prob = live_mass /. entry_mass in
    (* Per-context trip count and midpoint binding. *)
    let trips_of (c : Context.t) =
      match (Eval.eval c.env lo, Eval.eval c.env hi, Eval.eval c.env step) with
      | Some lov, Some hiv, Some stv ->
        let lof = Value.to_float lov
        and hif = Value.to_float hiv
        and stf = Value.to_float stv in
        if stf <= 0. then (
          warn st "loop at %s has non-positive step; 0 trips assumed"
            (Loc.to_string s.loc);
          (0., lov))
        else
          let n = Float.max 0. (Float.floor ((hif -. lof) /. stf) +. 1.) in
          let mid =
            Value.of_float (lof +. (stf *. Float.floor ((n -. 1.) /. 2.)))
          in
          (n, mid)
      | _ ->
        warn st "loop bounds at %s did not evaluate; 1 trip assumed"
          (Loc.to_string s.loc);
        (1., Value.I 0)
    in
    let per_ctx = List.map (fun c -> (c, trips_of c)) live in
    let n_expected =
      List.fold_left (fun acc (c, (n, _)) -> acc +. (c.Context.mass *. n)) 0. per_ctx
      /. live_mass
    in
    let body_ctxs =
      List.filter_map
        (fun ((c : Context.t), (n, mid)) ->
          if n <= 0. then None else Some (Context.bind c var mid))
        per_ctx
    in
    let note =
      Fmt.str "%s=%a..%a x%.6g" var Pretty.pp_expr lo Pretty.pp_expr hi
        n_expected
    in
    if n_expected <= 0. || body_ctxs = [] then begin
      let node, _ =
        build_region st ~kind:Node.Loop ~block:(Block_id.Loop s.sid) ~prob
          ~trips:0. ~note ~abytes ~ctxs:[] ~stmts:[]
      in
      add_child node;
      flow
    end
    else begin
      let node, bflow =
        build_region st ~kind:Node.Loop ~block:(Block_id.Loop s.sid) ~prob
          ~trips:n_expected ~note ~abytes
          ~ctxs:(Context.normalize ~cap:st.cap body_ctxs)
          ~stmts:body
      in
      let body_mass = Context.mass_of body_ctxs in
      let p_exit = (bflow.broke +. bflow.returned) /. body_mass in
      let trips_eff =
        Float.min n_expected (truncated_geometric ~p:p_exit ~n:n_expected)
      in
      let node = { node with Node.trips = trips_eff } in
      add_child node;
      (* Mass returning from inside the loop exits the function for
         good: thin the surviving contexts accordingly. *)
      let p_ret_iter = bflow.returned /. body_mass in
      let surv = (1. -. p_ret_iter) ** trips_eff in
      let live =
        if surv >= 1. then live
        else List.map (fun c -> Context.scale c surv) live
      in
      {
        live;
        returned = flow.returned +. (live_mass *. (1. -. surv));
        broke = flow.broke;
        continued = flow.continued;
      }
    end
  | Ast.While { name; p_continue; max_iter; body } ->
    let prob = live_mass /. entry_mass in
    let p_declared = Context.expect_prob live p_continue in
    let nmax = Float.max 0. (Context.expect live max_iter) in
    let trips_declared = while_trips ~p:p_declared ~n:nmax in
    let trips =
      Hints.loop_trips st.hints name ~default:trips_declared
    in
    let note = Fmt.str "while %s x%.6g" name trips in
    let node, bflow =
      build_region st ~kind:Node.Loop ~block:(Block_id.Loop s.sid) ~prob
        ~trips ~note ~abytes ~ctxs:live ~stmts:body
    in
    let body_mass = Float.max live_mass 1e-300 in
    let p_exit = (bflow.broke +. bflow.returned) /. body_mass in
    let trips_eff = Float.min trips (truncated_geometric ~p:p_exit ~n:trips) in
    let node = { node with Node.trips = trips_eff } in
    add_child node;
    let p_ret_iter = bflow.returned /. body_mass in
    let surv = (1. -. p_ret_iter) ** trips_eff in
    let live =
      if surv >= 1. then live
      else List.map (fun c -> Context.scale c surv) live
    in
    {
      live;
      returned = flow.returned +. (live_mass *. (1. -. surv));
      broke = flow.broke;
      continued = flow.continued;
    }
  | Ast.Call (fname, args) -> (
    match Ast.find_func st.program fname with
    | exception Not_found ->
      warn st "call to undefined function %s ignored" fname;
      flow
    | callee ->
      let prob = live_mass /. entry_mass in
      let callee_ctxs =
        List.map
          (fun (c : Context.t) ->
            let bindings =
              List.filter_map
                (fun (param, arg) ->
                  match Eval.eval c.Context.env arg with
                  | Some v -> Some (param, v)
                  | None ->
                    warn st "argument %s of %s did not evaluate" param fname;
                    None)
                (List.combine callee.params
                   (if List.length args = List.length callee.params then args
                    else (
                      warn st "arity mismatch calling %s" fname;
                      List.init (List.length callee.params) (fun _ -> Ast.Int 0))))
            in
            Context.make ~mass:c.Context.mass (st.global_bindings @ bindings))
          live
      in
      let note =
        Fmt.str "%s(%s)" fname
          (String.concat ","
             (List.map (fun a -> Fmt.str "%a" Pretty.pp_expr a) args))
      in
      let node, _callee_flow =
        build_region st ~kind:(Node.Func fname) ~block:(Block_id.Fn fname)
          ~prob ~trips:1. ~note
          ~abytes:(abytes_of st callee.arrays)
          ~ctxs:(Context.normalize ~cap:st.cap callee_ctxs)
          ~stmts:callee.body
      in
      add_child node;
      (* Returns inside the callee are absorbed at the function
         boundary; the caller's contexts continue unchanged. *)
      flow)
  | Ast.Lib { name; args = _; scale } ->
    let prob = live_mass /. entry_mass in
    let scale_v = Float.max 0. (Context.expect ~default:1. live scale) in
    let w =
      match st.lib_work name with
      | Some w -> Work.scale scale_v w
      | None ->
        warn st "no instruction-mix profile for library function %s" name;
        Work.zero
    in
    let node =
      {
        Node.id = fresh st;
        block = Block_id.Libc s.sid;
        kind = Node.Libcall name;
        prob;
        trips = 1.;
        work = w;
        note = Fmt.str "scale=%.6g" scale_v;
        children = [];
      }
    in
    add_child node;
    flow
  | Ast.Return ->
    { flow with live = []; returned = flow.returned +. live_mass }
  | Ast.Break { name; p } ->
    let p_v = Hints.branch_prob st.hints name ~default:(Context.expect_prob live p) in
    {
      flow with
      live = List.map (fun c -> Context.scale c (1. -. p_v)) live;
      broke = flow.broke +. (live_mass *. p_v);
    }
  | Ast.Continue { name; p } ->
    let p_v = Hints.branch_prob st.hints name ~default:(Context.expect_prob live p) in
    {
      flow with
      live = List.map (fun c -> Context.scale c (1. -. p_v)) live;
      continued = flow.continued +. (live_mass *. p_v);
    }

and split_cond st (live : Context.t list) (cond : Ast.cond) :
    Context.t list * Context.t list =
  match cond with
  | Ast.Cexpr e ->
    List.fold_left
      (fun (ts, fs) (c : Context.t) ->
        match Eval.eval c.Context.env e with
        | Some v -> if Value.truthy v then (c :: ts, fs) else (ts, c :: fs)
        | None ->
          warn st "branch condition did not evaluate; 50/50 split assumed";
          (Context.scale c 0.5 :: ts, Context.scale c 0.5 :: fs))
      ([], []) live
    |> fun (ts, fs) -> (List.rev ts, List.rev fs)
  | Ast.Cdata { name; p } ->
    let p_v =
      Hints.branch_prob st.hints name ~default:(Context.expect_prob live p)
    in
    ( List.filter_map
        (fun c -> if p_v > 0. then Some (Context.scale c p_v) else None)
        live,
      List.filter_map
        (fun c -> if p_v < 1. then Some (Context.scale c (1. -. p_v)) else None)
        live )

(** Build the BET for [program].

    [inputs] supplies the entry-point parameters and any global
    constants (the paper's "hint file" of input sizes); they are
    visible in every function.  [hints] carries profiled branch
    statistics; [lib_work] maps a library function name to its
    per-unit-scale instruction mix (§IV-C).  [max_contexts] caps the
    number of simultaneously tracked contexts per program point. *)
let build ?(hints = Hints.empty) ?(lib_work = fun _ -> None)
    ?(max_contexts = 64) ?(inputs = []) (program : Ast.program) : result =
  Skope_telemetry.Span.with_ ~name:"bet_build" (fun () ->
  let global_abytes =
    List.fold_left
      (fun m (a : Ast.array_decl) -> Smap.add a.aname a.elem_bytes m)
      Smap.empty program.globals
  in
  let st =
    {
      program;
      hints;
      lib_work;
      cap = max_contexts;
      next_id = 0;
      warnings = [];
      global_bindings = inputs;
      global_abytes;
    }
  in
  let entry = Ast.entry_func program in
  let ctxs = [ Context.make ~mass:1.0 inputs ] in
  let root, _flow =
    build_region st ~kind:(Node.Func entry.fname)
      ~block:(Block_id.Fn entry.fname) ~prob:1. ~trips:1. ~note:"entry"
      ~abytes:(abytes_of st entry.arrays)
      ~ctxs ~stmts:entry.body
  in
  let node_count = Node.size root in
  Skope_telemetry.Span.count "bet_nodes_built" (float_of_int node_count);
  {
    root;
    bst = Bst.build program;
    node_count;
    warnings = List.rev st.warnings;
  })
