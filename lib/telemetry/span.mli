(** Hierarchical spans with pluggable sinks.

    A span is one timed region of one domain ([Span.with_ ~name f]);
    nesting is tracked with a domain-local stack, so concurrent
    domains trace independently.  Finished spans are delivered to
    every installed sink (see {!Chrome} and {!Agg}).

    With no sink installed, [with_] degenerates to a single atomic
    load and a closure call — tracing left compiled-in costs nothing
    measurable — and counters still accumulate process-wide so that
    Prometheus exposition works without tracing. *)

(** A finished span. *)
type t = {
  id : int;  (** unique per process *)
  parent : int option;  (** enclosing span's id, same domain *)
  name : string;  (** the phase: "parse", "bet_build", "eval", … *)
  attrs : (string * string) list;
      (** own attributes, then ambient context ([with_context]) *)
  counters : (string * float) list;
      (** counter increments attributed to this span *)
  start : float;  (** {!Clock.now} seconds *)
  duration : float;  (** seconds, never negative *)
  domain : int;  (** id of the domain that ran the span *)
}

(** A sink consumes finished spans.  [on_span] must be thread-safe
    and must not raise (exceptions are swallowed). *)
type sink = { sink_name : string; on_span : t -> unit }

val add_sink : sink -> unit
val remove_sink : sink -> unit
(** Removal is by physical equality on the record. *)

val clear_sinks : unit -> unit
val enabled : unit -> bool
(** True when at least one sink is installed. *)

val with_ : name:string -> ?attrs:(string * string) list -> (unit -> 'a) -> 'a
(** Run [f] in a span.  The span is emitted even when [f] raises
    (with an ["error"="true"] attribute); the exception propagates. *)

val with_context :
  attrs:(string * string) list -> (unit -> 'a) -> 'a
(** Attach [attrs] (e.g. a request trace id) to every span this
    domain opens while [f] runs. *)

val set_attr : string -> string -> unit
(** Set an attribute on the innermost open span of this domain, e.g.
    the request kind once it is known.  No-op outside any span. *)

val count : string -> float -> unit
(** Add to the process-wide counter [name] and, when inside a span,
    to that span's counter map.  Counters survive span boundaries;
    use {!counters} to read and {!reset_counters} between tests. *)

val counters : unit -> (string * float) list
(** Process-wide counter totals, sorted by name. *)

val reset_counters : unit -> unit
