type level = Debug | Info | Warn | Error

let level_label = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type value = Str of string | F of float | I of int | B of bool

(* Same minimal RFC 8259 escaping as Chrome: this library sits below
   the report layer, so it cannot borrow its printer. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let value_lit = function
  | Str s -> Printf.sprintf "\"%s\"" (escape s)
  | F f ->
    if Float.is_finite f then Printf.sprintf "%.6g" f
    else Printf.sprintf "\"%s\"" (Float.to_string f)
  | I i -> string_of_int i
  | B b -> if b then "true" else "false"

(* One token bucket per event name.  All limiter and writer state is
   behind one mutex: the log is a low-rate side channel (the limiter
   exists precisely to keep it that way), so contention is not a
   concern the way it is for spans. *)
type bucket = { mutable tokens : float; mutable last : float; mutable held : int }

type state = {
  lock : Mutex.t;
  mutable min_level : level;
  mutable write : string -> unit;
  mutable burst : int;
  mutable per_s : float;
  buckets : (string, bucket) Hashtbl.t;
  mutable suppressed : int;
}

let stderr_write line =
  output_string stderr (line ^ "\n");
  flush stderr

let state =
  {
    lock = Mutex.create ();
    min_level = Info;
    write = stderr_write;
    burst = 50;
    per_s = 10.;
    buckets = Hashtbl.create 16;
    suppressed = 0;
  }

let with_lock f =
  Mutex.lock state.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock state.lock) f

let set_level l = with_lock (fun () -> state.min_level <- l)
let get_level () = with_lock (fun () -> state.min_level)
let set_output w = with_lock (fun () -> state.write <- w)
let use_stderr () = set_output stderr_write

let set_rate ~burst ~per_s =
  with_lock (fun () ->
      state.burst <- burst;
      state.per_s <- Float.max 0. per_s;
      Hashtbl.reset state.buckets)

let suppressed_total () = with_lock (fun () -> state.suppressed)

(* Returns [Some held] (emit, with how many repeats the limiter ate
   since the last line for this event) or [None] (drop).  Must be
   called under the lock. *)
let admit event now =
  if state.burst <= 0 then Some 0
  else begin
    let b =
      match Hashtbl.find_opt state.buckets event with
      | Some b -> b
      | None ->
        let b = { tokens = float_of_int state.burst; last = now; held = 0 } in
        Hashtbl.replace state.buckets event b;
        b
    in
    let dt = Float.max 0. (now -. b.last) in
    b.last <- now;
    b.tokens <-
      Float.min (float_of_int state.burst) (b.tokens +. (dt *. state.per_s));
    if b.tokens >= 1. then begin
      b.tokens <- b.tokens -. 1.;
      let held = b.held in
      b.held <- 0;
      Some held
    end
    else begin
      b.held <- b.held + 1;
      state.suppressed <- state.suppressed + 1;
      None
    end
  end

let emit ?(level = Info) ?trace_id event attrs =
  with_lock (fun () ->
      if severity level >= severity state.min_level then begin
        let now = Unix.gettimeofday () in
        match admit event now with
        | None -> ()
        | Some held ->
          let buf = Buffer.create 160 in
          Buffer.add_string buf (Printf.sprintf "{\"ts\":%.6f" now);
          Buffer.add_string buf
            (Printf.sprintf ",\"level\":\"%s\"" (level_label level));
          Buffer.add_string buf
            (Printf.sprintf ",\"event\":\"%s\"" (escape event));
          (match trace_id with
          | Some id ->
            Buffer.add_string buf
              (Printf.sprintf ",\"trace_id\":\"%s\"" (escape id))
          | None -> ());
          if held > 0 then
            Buffer.add_string buf (Printf.sprintf ",\"suppressed\":%d" held);
          if attrs <> [] then begin
            Buffer.add_string buf ",\"attrs\":{";
            List.iteri
              (fun i (k, v) ->
                if i > 0 then Buffer.add_char buf ',';
                Buffer.add_string buf
                  (Printf.sprintf "\"%s\":%s" (escape k) (value_lit v)))
              attrs;
            Buffer.add_char buf '}'
          end;
          Buffer.add_char buf '}';
          (try state.write (Buffer.contents buf) with _ -> ())
      end)
