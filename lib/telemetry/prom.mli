(** Prometheus text exposition (format version 0.0.4).

    Renders counters, gauges and histograms with [# HELP] / [# TYPE]
    headers, cumulative [_bucket{le="..."}] series ending at
    [le="+Inf"], plus [_sum] and [_count].  Label values are escaped
    per the exposition-format rules. *)

type metric =
  | Counter of {
      name : string;
      help : string;
      values : ((string * string) list * float) list;
          (** one series per label set *)
    }
  | Gauge of {
      name : string;
      help : string;
      values : ((string * string) list * float) list;
    }
  | Histogram of {
      name : string;
      help : string;
      series : ((string * string) list * Hist.snapshot) list;
    }

val render : metric list -> string
(** Full exposition body; ends with a newline. *)
