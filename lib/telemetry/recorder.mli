(** The flight recorder: a bounded ring of per-request records.

    Always on in the server and the cluster router, cheap enough to
    leave on: committing a record is one mutex-protected array store,
    and span collection only touches requests that were explicitly
    begun ({!begin_request}), so unrelated spans cost a hashtable
    probe.

    Life of a record: the request loop calls [begin_request] with the
    trace id, runs the request under
    [Span.with_context ~attrs:[("trace_id", id)]] (so every span the
    request opens carries the id the {!sink} groups by), then
    [commit]s the outcome.  The ring keeps the last [capacity]
    records; [recent] and [find] read them back for the
    [{"kind":"recent"}] and [{"kind":"trace"}] request kinds. *)

type record = {
  trace_id : string;
  kind : string;  (** request kind, "?" when undeterminable *)
  fingerprint : string option;  (** projection cache key, when keyed *)
  shard : string option;  (** owning shard (router-side records) *)
  outcome : string;  (** "ok" or the error code *)
  retries : int;  (** router: failovers; server: always 0 *)
  queue_wait_ms : float;  (** accept-to-dispatch wait *)
  start : float;  (** epoch seconds at accept *)
  duration_ms : float;
  spans : Span.t list;  (** completion order (parents last) *)
}

type t

val create : ?capacity:int -> ?max_spans:int -> ?max_pending:int -> unit -> t
(** Ring of [capacity] records (default 512), keeping at most
    [max_spans] spans per request (default 128) across at most
    [max_pending] concurrently-open requests (default 1024). *)

val sink : t -> Span.sink
(** Routes finished spans into the open request named by their
    ["trace_id"] attribute.  Spans with no such attribute, or for a
    trace id that was never begun, are ignored. *)

val begin_request : t -> string -> unit
(** Open span collection for [trace_id].  Idempotent. *)

val commit :
  t ->
  trace_id:string ->
  kind:string ->
  ?fingerprint:string ->
  ?shard:string ->
  outcome:string ->
  ?retries:int ->
  ?queue_wait_ms:float ->
  start:float ->
  duration_ms:float ->
  unit ->
  unit
(** Close [trace_id] and push its record onto the ring. *)

val discard : t -> string -> unit
(** Close [trace_id] without recording (collection cap reached, …). *)

val recent :
  ?n:int -> ?errors_only:bool -> ?min_duration_ms:float -> t -> record list
(** Newest first; at most [n] (default 20) records matching the
    filters. *)

val find : t -> string -> record option
(** The newest record for this trace id, if still in the ring. *)

val length : t -> int
val capacity : t -> int
val clear : t -> unit
