type metric =
  | Counter of {
      name : string;
      help : string;
      values : ((string * string) list * float) list;
    }
  | Gauge of {
      name : string;
      help : string;
      values : ((string * string) list * float) list;
    }
  | Histogram of {
      name : string;
      help : string;
      series : ((string * string) list * Hist.snapshot) list;
    }

(* Label-value escaping per the exposition format: backslash, double
   quote and newline. *)
let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let escape_help v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let labels_str = function
  | [] -> ""
  | ls ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
           ls)
    ^ "}"

let number f =
  if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_nan f then "NaN"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let header buf name help kind =
  Buffer.add_string buf
    (Printf.sprintf "# HELP %s %s\n# TYPE %s %s\n" name (escape_help help)
       name kind)

let simple buf name values =
  List.iter
    (fun (ls, v) ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s %s\n" name (labels_str ls) (number v)))
    values

let histogram buf name series =
  List.iter
    (fun (ls, (s : Hist.snapshot)) ->
      List.iter
        (fun (bound, cum) ->
          let ls = ls @ [ ("le", number bound) ] in
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" name (labels_str ls) cum))
        (Hist.cumulative s);
      Buffer.add_string buf
        (Printf.sprintf "%s_sum%s %s\n" name (labels_str ls) (number s.sum));
      Buffer.add_string buf
        (Printf.sprintf "%s_count%s %d\n" name (labels_str ls) s.count))
    series

let render metrics =
  let buf = Buffer.create 4096 in
  List.iter
    (fun m ->
      match m with
      | Counter { name; help; values } ->
        header buf name help "counter";
        simple buf name values
      | Gauge { name; help; values } ->
        header buf name help "gauge";
        simple buf name values
      | Histogram { name; help; series } ->
        header buf name help "histogram";
        histogram buf name series)
    metrics;
  Buffer.contents buf
