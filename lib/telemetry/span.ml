type t = {
  id : int;
  parent : int option;
  name : string;
  attrs : (string * string) list;
  counters : (string * float) list;
  start : float;
  duration : float;
  domain : int;
}

type sink = { sink_name : string; on_span : t -> unit }

(* An open span under construction; frames live on a domain-local
   stack so concurrent domains nest independently. *)
type frame = {
  f_id : int;
  f_name : string;
  mutable f_attrs : (string * string) list;
  mutable f_counters : (string * float) list;
  f_start : float;
}

let sinks : sink list Atomic.t = Atomic.make []
let next_id = Atomic.make 1

let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let ambient_key : (string * string) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let counters_lock = Mutex.create ()
let counters_tbl : (string, float ref) Hashtbl.t = Hashtbl.create 32

let enabled () = Atomic.get sinks <> []

let rec add_sink s =
  let cur = Atomic.get sinks in
  if not (Atomic.compare_and_set sinks cur (s :: cur)) then add_sink s

let rec remove_sink s =
  let cur = Atomic.get sinks in
  let next = List.filter (fun x -> x != s) cur in
  if not (Atomic.compare_and_set sinks cur next) then remove_sink s

let clear_sinks () = Atomic.set sinks []

let bump assoc name v =
  match List.assoc_opt name assoc with
  | Some old -> (name, old +. v) :: List.remove_assoc name assoc
  | None -> (name, v) :: assoc

let count name v =
  Mutex.lock counters_lock;
  (match Hashtbl.find_opt counters_tbl name with
  | Some r -> r := !r +. v
  | None -> Hashtbl.add counters_tbl name (ref v));
  Mutex.unlock counters_lock;
  match !(Domain.DLS.get stack_key) with
  | [] -> ()
  | fr :: _ -> fr.f_counters <- bump fr.f_counters name v

let counters () =
  Mutex.lock counters_lock;
  let l =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) counters_tbl []
    |> List.sort compare
  in
  Mutex.unlock counters_lock;
  l

let reset_counters () =
  Mutex.lock counters_lock;
  Hashtbl.reset counters_tbl;
  Mutex.unlock counters_lock

let set_attr key value =
  match !(Domain.DLS.get stack_key) with
  | [] -> ()
  | fr :: _ -> fr.f_attrs <- (key, value) :: List.remove_assoc key fr.f_attrs

let with_context ~attrs f =
  let amb = Domain.DLS.get ambient_key in
  let saved = !amb in
  amb := attrs @ saved;
  Fun.protect ~finally:(fun () -> amb := saved) f

let with_ ~name ?(attrs = []) f =
  if Atomic.get sinks = [] then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let parent =
      match !stack with [] -> None | fr :: _ -> Some fr.f_id
    in
    let fr =
      {
        f_id = Atomic.fetch_and_add next_id 1;
        f_name = name;
        f_attrs = attrs;
        f_counters = [];
        f_start = Clock.now ();
      }
    in
    stack := fr :: !stack;
    let finish ok =
      let duration = Clock.now () -. fr.f_start in
      (match !stack with
      | top :: rest when top == fr -> stack := rest
      | _ -> () (* unbalanced: a sink raised out of band; drop silently *));
      let attrs =
        (if ok then fr.f_attrs else ("error", "true") :: fr.f_attrs)
        @ !(Domain.DLS.get ambient_key)
      in
      let span =
        {
          id = fr.f_id;
          parent;
          name = fr.f_name;
          attrs;
          counters = fr.f_counters;
          start = fr.f_start;
          duration;
          domain = (Domain.self () :> int);
        }
      in
      List.iter
        (fun s -> try s.on_span span with _ -> ())
        (Atomic.get sinks)
    in
    match f () with
    | v ->
      finish true;
      v
    | exception e ->
      finish false;
      raise e
  end
