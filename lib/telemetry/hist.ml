(* 1 µs doubling to ~67 s: 27 bounds, covering everything from a
   cache-warm dispatch to a full simulated validation run. *)
let default_bounds = Array.init 27 (fun i -> 1e-6 *. (2. ** float_of_int i))

type t = {
  bounds : float array;
  bucket_counts : int array;  (** length bounds + 1; last = overflow *)
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  ring : float array;  (** most recent [Array.length ring] samples *)
  mutable seen : int;  (** total observed; ring index = seen mod size *)
  lock : Mutex.t;
}

let create ?(ring = 1024) ?(bounds = default_bounds) () =
  Array.iteri
    (fun i b ->
      if i > 0 && bounds.(i - 1) >= b then
        invalid_arg "Hist.create: bounds must be strictly increasing")
    bounds;
  {
    bounds;
    bucket_counts = Array.make (Array.length bounds + 1) 0;
    count = 0;
    sum = 0.;
    min_v = infinity;
    max_v = neg_infinity;
    ring = Array.make (max 1 ring) 0.;
    seen = 0;
    lock = Mutex.create ();
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let bucket_of t v =
  let n = Array.length t.bounds in
  let rec go i =
    if i >= n then n else if v <= t.bounds.(i) then i else go (i + 1)
  in
  go 0

let observe t v =
  let v = Float.max 0. v in
  with_lock t (fun () ->
      let b = bucket_of t v in
      t.bucket_counts.(b) <- t.bucket_counts.(b) + 1;
      t.count <- t.count + 1;
      t.sum <- t.sum +. v;
      if v < t.min_v then t.min_v <- v;
      if v > t.max_v then t.max_v <- v;
      t.ring.(t.seen mod Array.length t.ring) <- v;
      t.seen <- t.seen + 1)

let reset t =
  with_lock t (fun () ->
      Array.fill t.bucket_counts 0 (Array.length t.bucket_counts) 0;
      t.count <- 0;
      t.sum <- 0.;
      t.min_v <- infinity;
      t.max_v <- neg_infinity;
      t.seen <- 0)

type snapshot = {
  bounds : float array;
  counts : int array;
  count : int;
  sum : float;
  min : float;
  max : float;
  samples : float array;
  p50 : float;
  p95 : float;
  p99 : float;
}

(* Nearest-rank percentile over a sorted array: the smallest sample
   such that at least a fraction [q] of the samples are <= it.  A
   1-element window yields that element for every q. *)
let rank_percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(min (n - 1) (max 0 (rank - 1)))
  end

let snapshot t =
  with_lock t (fun () ->
      let retained = min t.seen (Array.length t.ring) in
      let sorted = Array.sub t.ring 0 retained in
      Array.sort Float.compare sorted;
      {
        bounds = Array.copy t.bounds;
        counts = Array.copy t.bucket_counts;
        count = t.count;
        sum = t.sum;
        min = (if t.count = 0 then 0. else t.min_v);
        max = (if t.count = 0 then 0. else t.max_v);
        samples = sorted;
        p50 = rank_percentile sorted 0.50;
        p95 = rank_percentile sorted 0.95;
        p99 = rank_percentile sorted 0.99;
      })

let quantile (s : snapshot) q = rank_percentile s.samples q

let cumulative (s : snapshot) =
  let acc = ref 0 in
  let buckets =
    Array.to_list
      (Array.mapi
         (fun i b ->
           acc := !acc + s.counts.(i);
           (b, !acc))
         s.bounds)
  in
  buckets @ [ (infinity, s.count) ]
