(** Process-wide monotone wall clock.

    [Unix.gettimeofday] can step backwards (NTP slew); span durations
    must never be negative, so readings are clamped to the largest
    value any domain has observed.  Resolution is the system clock's
    (~1 µs), which is plenty for phase-level spans. *)

val now : unit -> float
(** Current time in seconds.  Successive calls never decrease, across
    all domains. *)
