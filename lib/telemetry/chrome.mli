(** Chrome [trace_event] exporter.

    Collects finished spans and serialises them as "X" (complete)
    events loadable by chrome://tracing and Perfetto.  Timestamps are
    microseconds relative to the earliest collected span, thread ids
    are OCaml domain ids, and span attributes/counters land in
    [args].  JSON is emitted locally (this library sits below the
    report layer, so it cannot borrow its printer). *)

type t

val create : unit -> t
val sink : t -> Span.sink
val length : t -> int
(** Number of spans collected so far. *)

val to_json : t -> string
(** The whole trace as a JSON object:
    [{"displayTimeUnit":"ms","traceEvents":[...]}]. *)

val write_file : t -> string -> unit
