let last = Atomic.make 0.

let rec clamp t =
  let l = Atomic.get last in
  if t >= l then if Atomic.compare_and_set last l t then t else clamp t
  else l

let now () = clamp (Unix.gettimeofday ())
