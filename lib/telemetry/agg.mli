(** In-memory aggregating sink: folds finished spans into one
    duration histogram per span name, giving per-phase p50/p95/p99
    without retaining individual spans.  This is what backs the
    service's per-phase metrics and [skope query --stats]. *)

type t

val create : unit -> t
val sink : t -> Span.sink

val snapshot : t -> (string * Hist.snapshot) list
(** Per-phase snapshots, sorted by phase name. *)

val reset : t -> unit
