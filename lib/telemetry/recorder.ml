type record = {
  trace_id : string;
  kind : string;
  fingerprint : string option;
  shard : string option;
  outcome : string;
  retries : int;
  queue_wait_ms : float;
  start : float;
  duration_ms : float;
  spans : Span.t list;
}

(* Spans for one in-flight request, newest first. *)
type pending = { mutable p_spans : Span.t list; mutable p_count : int }

type t = {
  lock : Mutex.t;
  ring : record option array;
  mutable head : int;  (* next slot to write *)
  mutable count : int;  (* total commits, for length *)
  open_ : (string, pending) Hashtbl.t;
  max_spans : int;
  max_pending : int;
}

let create ?(capacity = 512) ?(max_spans = 128) ?(max_pending = 1024) () =
  let capacity = max 1 capacity in
  {
    lock = Mutex.create ();
    ring = Array.make capacity None;
    head = 0;
    count = 0;
    open_ = Hashtbl.create 64;
    max_spans;
    max_pending;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let begin_request t trace_id =
  with_lock t (fun () ->
      if
        (not (Hashtbl.mem t.open_ trace_id))
        && Hashtbl.length t.open_ < t.max_pending
      then Hashtbl.replace t.open_ trace_id { p_spans = []; p_count = 0 })

let sink t =
  {
    Span.sink_name = "recorder";
    on_span =
      (fun s ->
        match List.assoc_opt "trace_id" s.Span.attrs with
        | None -> ()
        | Some id ->
          with_lock t (fun () ->
              match Hashtbl.find_opt t.open_ id with
              | Some p when p.p_count < t.max_spans ->
                p.p_spans <- s :: p.p_spans;
                p.p_count <- p.p_count + 1
              | _ -> ()));
  }

let discard t trace_id = with_lock t (fun () -> Hashtbl.remove t.open_ trace_id)

let commit t ~trace_id ~kind ?fingerprint ?shard ~outcome ?(retries = 0)
    ?(queue_wait_ms = 0.) ~start ~duration_ms () =
  with_lock t (fun () ->
      let spans =
        match Hashtbl.find_opt t.open_ trace_id with
        | Some p ->
          Hashtbl.remove t.open_ trace_id;
          p.p_spans
        | None -> []
      in
      let r =
        {
          trace_id;
          kind;
          fingerprint;
          shard;
          outcome;
          retries;
          queue_wait_ms;
          start;
          duration_ms;
          spans;
        }
      in
      t.ring.(t.head) <- Some r;
      t.head <- (t.head + 1) mod Array.length t.ring;
      t.count <- t.count + 1)

let capacity t = Array.length t.ring
let length t = with_lock t (fun () -> min t.count (Array.length t.ring))

let clear t =
  with_lock t (fun () ->
      Array.fill t.ring 0 (Array.length t.ring) None;
      t.head <- 0;
      t.count <- 0;
      Hashtbl.reset t.open_)

(* Iterate newest first.  [f] returns [true] to keep going. *)
let iter_newest t f =
  let n = Array.length t.ring in
  let rec go i steps =
    if steps < n then
      match t.ring.(((i mod n) + n) mod n) with
      | Some r -> if f r then go (i - 1) (steps + 1)
      | None -> ()
  in
  go (t.head - 1) 0

let recent ?(n = 20) ?(errors_only = false) ?min_duration_ms t =
  with_lock t (fun () ->
      let out = ref [] and kept = ref 0 in
      iter_newest t (fun r ->
          let keep =
            ((not errors_only) || r.outcome <> "ok")
            &&
            match min_duration_ms with
            | Some ms -> r.duration_ms >= ms
            | None -> true
          in
          if keep then begin
            out := r :: !out;
            incr kept
          end;
          !kept < n);
      List.rev !out)

let find t trace_id =
  with_lock t (fun () ->
      let found = ref None in
      iter_newest t (fun r ->
          if r.trace_id = trace_id then begin
            found := Some r;
            false
          end
          else true);
      !found)
