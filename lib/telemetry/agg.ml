type t = { lock : Mutex.t; phases : (string, Hist.t) Hashtbl.t }

let create () = { lock = Mutex.create (); phases = Hashtbl.create 16 }

let hist_for t name =
  Mutex.lock t.lock;
  let h =
    match Hashtbl.find_opt t.phases name with
    | Some h -> h
    | None ->
      let h = Hist.create () in
      Hashtbl.add t.phases name h;
      h
  in
  Mutex.unlock t.lock;
  h

let sink t =
  {
    Span.sink_name = "agg";
    on_span = (fun s -> Hist.observe (hist_for t s.Span.name) s.Span.duration);
  }

let snapshot t =
  Mutex.lock t.lock;
  let l = Hashtbl.fold (fun k h acc -> (k, h) :: acc) t.phases [] in
  Mutex.unlock t.lock;
  List.map (fun (k, h) -> (k, Hist.snapshot h)) l
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  Mutex.lock t.lock;
  Hashtbl.reset t.phases;
  Mutex.unlock t.lock
