type t = { lock : Mutex.t; mutable spans : Span.t list }

let create () = { lock = Mutex.create (); spans = [] }

let sink t =
  {
    Span.sink_name = "chrome";
    on_span =
      (fun s ->
        Mutex.lock t.lock;
        t.spans <- s :: t.spans;
        Mutex.unlock t.lock);
  }

let length t =
  Mutex.lock t.lock;
  let n = List.length t.spans in
  Mutex.unlock t.lock;
  n

(* Minimal RFC 8259 string escaping; attribute values are short
   ASCII-ish identifiers in practice, but be correct anyway. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_lit f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let event buf ~t0 (s : Span.t) =
  let ts_us = (s.start -. t0) *. 1e6 in
  let dur_us = s.duration *. 1e6 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"%s\",\"cat\":\"skope\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{"
       (escape s.name) ts_us dur_us s.domain);
  let first = ref true in
  let field k v =
    if not !first then Buffer.add_char buf ',';
    first := false;
    Buffer.add_string buf (Printf.sprintf "\"%s\":%s" (escape k) v)
  in
  field "span_id" (string_of_int s.id);
  (match s.parent with
  | Some p -> field "parent_id" (string_of_int p)
  | None -> ());
  List.iter
    (fun (k, v) -> field k (Printf.sprintf "\"%s\"" (escape v)))
    s.attrs;
  List.iter (fun (k, v) -> field k (float_lit v)) s.counters;
  Buffer.add_string buf "}}"

let to_json t =
  Mutex.lock t.lock;
  (* Oldest first, so nested events follow their parents. *)
  let spans = List.rev t.spans in
  Mutex.unlock t.lock;
  let t0 =
    List.fold_left
      (fun acc (s : Span.t) -> Float.min acc s.start)
      infinity spans
  in
  let t0 = if t0 = infinity then 0. else t0 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      event buf ~t0 s)
    spans;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json t);
      output_char oc '\n')
