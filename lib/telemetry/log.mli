(** Structured, leveled, rate-limited event logging.

    One JSON object per line: [{"ts":…,"level":…,"event":…,
    "trace_id":…,"attrs":{…}}].  Events are keyed for rate limiting
    by their [event] name — a fault-injection storm or a shedding
    burst cannot flood the log; suppressed repeats are counted and
    reported on the next line that passes the limiter
    (["suppressed":N]).

    This module sits in the telemetry layer (depends only on [unix]),
    so the JSON is emitted locally; the schema is validated against
    the report layer's parser in the test suite.

    The default output is [stderr].  [set_output] redirects every
    line (tests capture, servers could ship to a file); the writer
    must be fast — it runs under the log mutex. *)

type level = Debug | Info | Warn | Error

val level_label : level -> string
(** ["debug" | "info" | "warn" | "error"]. *)

val level_of_string : string -> level option

val set_level : level -> unit
(** Drop events below this level.  Default [Info]. *)

val get_level : unit -> level

(** Attribute values, typed so numbers stay numbers in the JSON. *)
type value = Str of string | F of float | I of int | B of bool

val emit :
  ?level:level -> ?trace_id:string -> string -> (string * value) list -> unit
(** [emit ?level ?trace_id event attrs] writes one JSON line.
    Default level [Info].  Never raises: output-writer exceptions are
    swallowed (logging must not take down the request path). *)

val set_output : (string -> unit) -> unit
(** Redirect lines (without the trailing newline). *)

val use_stderr : unit -> unit
(** Restore the default writer. *)

val set_rate : burst:int -> per_s:float -> unit
(** Per-event token bucket: up to [burst] lines at once, refilled at
    [per_s] lines/second.  Default burst 50 at 10/s.  A non-positive
    [burst] disables rate limiting entirely (useful in tests). *)

val suppressed_total : unit -> int
(** Lines dropped by the rate limiter since process start. *)
