(** Thread-safe duration histogram.

    Two data structures in one: Prometheus-style cumulative-bucket
    counts over fixed log-spaced bounds (for exposition and for
    monitoring systems to aggregate), and a bounded ring of the most
    recent raw samples for {e exact} nearest-rank percentiles — a
    bucket-interpolated p99 of three samples is garbage; the ring
    makes the p99 of a 1-element window equal that element. *)

type t

val create : ?ring:int -> ?bounds:float array -> unit -> t
(** [ring] bounds the raw-sample window (default 1024, min 1);
    [bounds] are strictly increasing bucket upper bounds in seconds
    (default: 1 µs doubling up to ~67 s). *)

val observe : t -> float -> unit
(** Record one sample (seconds).  Negative samples are clamped to 0. *)

val reset : t -> unit

(** Immutable snapshot.  [counts] has [Array.length bounds + 1]
    entries: per-bucket (not cumulative) counts, the last being the
    overflow (+Inf) bucket.  Percentiles are nearest-rank over the
    retained raw-sample window; 0 when empty. *)
type snapshot = {
  bounds : float array;
  counts : int array;
  count : int;  (** total observations, may exceed the ring size *)
  sum : float;
  min : float;
  max : float;
  samples : float array;  (** retained window, sorted ascending *)
  p50 : float;
  p95 : float;
  p99 : float;
}

val snapshot : t -> snapshot

val quantile : snapshot -> float -> float
(** Exact nearest-rank quantile [q] in [0,1] over the snapshot's
    retained raw-sample window (the same window p50/p95/p99 use). *)

val cumulative : snapshot -> (float * int) list
(** Prometheus-style cumulative buckets: [(upper_bound, count <= bound)]
    pairs ending with [(infinity, count)]. *)
