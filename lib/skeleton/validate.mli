(** Semantic validation of skeleton programs.

    Checks for undefined functions and arrays, call and access arity
    mismatches, unbound variables, recursion (BET construction mounts
    callee trees in place, so call graphs must be acyclic) and
    non-positive literal loop steps. *)

(** An issue with a stable machine-readable [code] (V001..V011), used
    by the diagnostics renderer and the JSON output of [skope parse]. *)
type issue = { where : Loc.t; code : string; what : string }

val pp_issue : issue Fmt.t

(** [check ?inputs p] returns the issues found in [p]; empty means
    valid.  [inputs] are externally supplied global bindings (the
    paper's "hint file" of input sizes), visible in every function. *)
val check : ?inputs:string list -> Ast.program -> issue list

(** @raise Invalid_argument with a readable message when invalid. *)
val check_exn : ?inputs:string list -> Ast.program -> unit
