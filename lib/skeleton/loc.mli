(** Source locations for skeleton statements. *)

type t = { file : string; line : int; col : int }

(** Placeholder location for programs built with {!Builder}. *)
val none : t

(** [make ~file ~line] builds a location with an unknown column. *)
val make : file:string -> line:int -> t

(** [make_col ~file ~line ~col] additionally records the 1-based
    column. *)
val make_col : file:string -> line:int -> col:int -> t

(** Prints [file:line] (column elided so location-derived block names
    stay stable). *)
val pp : t Fmt.t

(** Prints [file:line:col] when the column is known. *)
val pp_full : t Fmt.t

val to_string : t -> string
val equal : t -> t -> bool
