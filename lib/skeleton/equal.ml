(** Structural program equality modulo statement identity (sid/loc),
    with optional load/store fission normalization.  See the mli. *)

open Ast

(* Rewrite a program into a canonical form: sids zeroed, locations
   erased, negated literals folded ([Unop (Neg, Int 5)] and
   [Int (-5)] both print as "-5", so the parse of a pretty-print can
   differ from the source AST by exactly this), and (optionally) every
   combined Mem statement split into a load-only statement followed by
   a store-only one, exactly the way the pretty-printer serializes
   it. *)
let rec norm_expr e =
  match e with
  | Int _ | Float _ | Bool _ | Var _ -> e
  | Binop (op, a, b) -> Binop (op, norm_expr a, norm_expr b)
  | Cmp (op, a, b) -> Cmp (op, norm_expr a, norm_expr b)
  | And (a, b) -> And (norm_expr a, norm_expr b)
  | Or (a, b) -> Or (norm_expr a, norm_expr b)
  | Unop (op, a) -> (
    match (op, norm_expr a) with
    | Neg, Int n -> Int (-n)
    | Neg, Float f -> Float (-.f)
    | _, a -> Unop (op, a))

let norm_access a = { a with index = List.map norm_expr a.index }

let norm_cond = function
  | Cexpr e -> Cexpr (norm_expr e)
  | Cdata { name; p } -> Cdata { name; p = norm_expr p }

let norm_decl d = { d with dims = List.map norm_expr d.dims }

let rec norm_block ~fission b = List.concat_map (norm_stmt ~fission) b

and norm_stmt ~fission s =
  let s = { s with sid = 0; loc = Loc.none } in
  match s.kind with
  | Mem { loads; stores } when fission && loads <> [] && stores <> [] ->
    [
      { s with kind = Mem { loads = List.map norm_access loads; stores = [] } };
      {
        s with
        label = None;
        kind = Mem { loads = []; stores = List.map norm_access stores };
      };
    ]
  | Mem { loads; stores } ->
    [
      {
        s with
        kind =
          Mem
            {
              loads = List.map norm_access loads;
              stores = List.map norm_access stores;
            };
      };
    ]
  | Comp c ->
    [
      {
        s with
        kind =
          Comp
            {
              c with
              flops = norm_expr c.flops;
              iops = norm_expr c.iops;
              divs = norm_expr c.divs;
            };
      };
    ]
  | Let (v, e) -> [ { s with kind = Let (v, norm_expr e) } ]
  | If r ->
    [
      {
        s with
        kind =
          If
            {
              cond = norm_cond r.cond;
              then_ = norm_block ~fission r.then_;
              else_ = norm_block ~fission r.else_;
            };
      };
    ]
  | For r ->
    [
      {
        s with
        kind =
          For
            {
              r with
              lo = norm_expr r.lo;
              hi = norm_expr r.hi;
              step = norm_expr r.step;
              body = norm_block ~fission r.body;
            };
      };
    ]
  | While r ->
    [
      {
        s with
        kind =
          While
            {
              r with
              p_continue = norm_expr r.p_continue;
              max_iter = norm_expr r.max_iter;
              body = norm_block ~fission r.body;
            };
      };
    ]
  | Call (f, args) -> [ { s with kind = Call (f, List.map norm_expr args) } ]
  | Lib r ->
    [
      {
        s with
        kind =
          Lib
            { r with args = List.map norm_expr r.args; scale = norm_expr r.scale };
      };
    ]
  | Break { name; p } -> [ { s with kind = Break { name; p = norm_expr p } } ]
  | Continue { name; p } ->
    [ { s with kind = Continue { name; p = norm_expr p } } ]
  | Return -> [ s ]

let norm_func ~fission f =
  {
    f with
    arrays = List.map norm_decl f.arrays;
    body = norm_block ~fission f.body;
  }

let norm_program ~fission p =
  {
    p with
    globals = List.map norm_decl p.globals;
    funcs = List.map (norm_func ~fission) p.funcs;
  }

let program ?(fission_mem = false) a b =
  norm_program ~fission:fission_mem a = norm_program ~fission:fission_mem b

(* --- first difference ------------------------------------------------ *)

let pp_stmt_line s =
  Fmt.str "@[<v>%a@]" (Pretty.pp_stmt 0) s
  |> String.split_on_char '\n' |> List.hd |> String.trim

let rec diff_blocks path a b =
  match (a, b) with
  | [], [] -> None
  | s :: _, [] -> Some (Fmt.str "%s: extra statement `%s`" path (pp_stmt_line s))
  | [], s :: _ -> Some (Fmt.str "%s: missing statement `%s`" path (pp_stmt_line s))
  | sa :: ra, sb :: rb -> (
    match diff_stmts path sa sb with
    | Some _ as d -> d
    | None -> diff_blocks path ra rb)

and diff_stmts path sa sb =
  if sa.label <> sb.label then
    Some
      (Fmt.str "%s: label %a <> %a on `%s`" path
         Fmt.(option ~none:(any "<none>") string)
         sa.label
         Fmt.(option ~none:(any "<none>") string)
         sb.label (pp_stmt_line sa))
  else
    match (sa.kind, sb.kind) with
    | If ra, If rb when ra.cond = rb.cond -> (
      match diff_blocks (path ^ "/if") ra.then_ rb.then_ with
      | Some _ as d -> d
      | None -> diff_blocks (path ^ "/else") ra.else_ rb.else_)
    | For ra, For rb
      when ra.var = rb.var && ra.lo = rb.lo && ra.hi = rb.hi && ra.step = rb.step
      ->
      diff_blocks (Fmt.str "%s/for %s" path ra.var) ra.body rb.body
    | While ra, While rb
      when ra.name = rb.name
           && ra.p_continue = rb.p_continue
           && ra.max_iter = rb.max_iter ->
      diff_blocks (Fmt.str "%s/while %s" path ra.name) ra.body rb.body
    | ka, kb ->
      if ka = kb then None
      else
        Some
          (Fmt.str "%s: `%s` <> `%s`" path (pp_stmt_line sa) (pp_stmt_line sb))

let diff_funcs fa fb =
  if fa.fname <> fb.fname then
    Some (Fmt.str "function name %s <> %s" fa.fname fb.fname)
  else if fa.params <> fb.params then
    Some (Fmt.str "%s: params (%s) <> (%s)" fa.fname
            (String.concat ", " fa.params)
            (String.concat ", " fb.params))
  else if fa.arrays <> fb.arrays then
    Some (Fmt.str "%s: local array declarations differ" fa.fname)
  else diff_blocks fa.fname fa.body fb.body

let first_diff ?(fission_mem = false) a b =
  let a = norm_program ~fission:fission_mem a
  and b = norm_program ~fission:fission_mem b in
  if a = b then None
  else if a.pname <> b.pname then
    Some (Fmt.str "program name %s <> %s" a.pname b.pname)
  else if a.entry <> b.entry then
    Some (Fmt.str "entry %s <> %s" a.entry b.entry)
  else if a.globals <> b.globals then Some "global array declarations differ"
  else if List.length a.funcs <> List.length b.funcs then
    Some
      (Fmt.str "%d functions <> %d functions" (List.length a.funcs)
         (List.length b.funcs))
  else
    List.fold_left2
      (fun acc fa fb -> match acc with Some _ -> acc | None -> diff_funcs fa fb)
      None a.funcs b.funcs
    |> function
    | Some _ as d -> d
    | None -> Some "programs differ (unlocalized)"
