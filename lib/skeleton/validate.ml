(** Semantic validation of skeleton programs.

    Catches the mistakes that would otherwise surface as confusing
    failures deep inside BET construction or simulation: references to
    undefined functions or arrays, arity mismatches on calls and array
    accesses, unbound variables, recursion (the BET mounts callee trees
    in place, so call graphs must be acyclic), and non-positive literal
    loop steps. *)

open Ast

type issue = { where : Loc.t; code : string; what : string }

let pp_issue ppf { where; code; what } =
  Fmt.pf ppf "%a: %s [%s]" Loc.pp_full where what code

module Smap = Map.Make (String)
module Sset = Set.Make (String)

(* Stable machine-readable issue codes (shared with the lint
   diagnostics renderer and the JSON outputs of `skope parse`):
   V001 duplicate-function        V002 undefined-entry
   V003 undeclared-array          V004 array-arity-mismatch
   V005 unbound-variable          V006 invalid-vec-width
   V007 non-positive-loop-step    V008 undefined-function
   V009 call-arity-mismatch       V010 duplicate-statistics-name
   V011 recursive-call-cycle *)
let issue where code fmt = Fmt.kstr (fun what -> { where; code; what }) fmt

let rec expr_vars acc = function
  | Int _ | Float _ | Bool _ -> acc
  | Var v -> Sset.add v acc
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
    expr_vars (expr_vars acc a) b
  | Unop (_, a) -> expr_vars acc a

(** [check ?inputs p] returns the list of issues found in [p]; empty
    means valid.  [inputs] are externally supplied variables (the
    "hint file" of input sizes) considered bound in the entry
    function. *)
let check ?(inputs = []) (p : program) : issue list =
  let issues = ref [] in
  let add i = issues := i :: !issues in
  let funcs =
    List.fold_left (fun m f -> Smap.add f.fname f m) Smap.empty p.funcs
  in
  (* Duplicate detection. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (f : func) ->
      if Hashtbl.mem seen f.fname then
        add (issue Loc.none "V001" "duplicate function %s" f.fname)
      else Hashtbl.add seen f.fname ())
    p.funcs;
  if not (Smap.mem p.entry funcs) then
    add (issue Loc.none "V002" "entry function %s is not defined" p.entry);
  (* Per-function checks. *)
  let global_arrays =
    List.fold_left (fun m a -> Smap.add a.aname a m) Smap.empty p.globals
  in
  let check_func (f : func) =
    let arrays =
      List.fold_left (fun m a -> Smap.add a.aname a m) global_arrays f.arrays
    in
    let check_access loc { array; index } =
      match Smap.find_opt array arrays with
      | None -> add (issue loc "V003" "access to undeclared array %s" array)
      | Some decl ->
        if List.length index <> List.length decl.dims then
          add
            (issue loc "V004" "array %s has %d dims but is accessed with %d indices"
               array (List.length decl.dims) (List.length index))
    in
    let check_vars loc bound e =
      Sset.iter
        (fun v ->
          if not (Sset.mem v bound) then
            add (issue loc "V005" "unbound variable %s" v))
        (expr_vars Sset.empty e)
    in
    (* Input bindings are global constants, visible in every
       function (mirroring Bet.Build). *)
    let initially_bound =
      Sset.union (Sset.of_list f.params) (Sset.of_list inputs)
    in
    let rec check_block bound b = List.fold_left check_stmt bound b
    and check_stmt bound s =
      match s.kind with
      | Comp { flops; iops; divs; vec } ->
        check_vars s.loc bound flops;
        check_vars s.loc bound iops;
        check_vars s.loc bound divs;
        if Stdlib.(vec < 1) then add (issue s.loc "V006" "vec must be >= 1");
        bound
      | Mem { loads; stores } ->
        List.iter (check_access s.loc) loads;
        List.iter (check_access s.loc) stores;
        List.iter
          (fun a -> List.iter (check_vars s.loc bound) a.index)
          (loads @ stores);
        bound
      | Let (v, e) ->
        check_vars s.loc bound e;
        Sset.add v bound
      | If { cond; then_; else_ } ->
        (match cond with
        | Cexpr e -> check_vars s.loc bound e
        | Cdata { p; _ } -> check_vars s.loc bound p);
        let _ = check_block bound then_ in
        let _ = check_block bound else_ in
        bound
      | For { var; lo; hi; step; body } ->
        check_vars s.loc bound lo;
        check_vars s.loc bound hi;
        check_vars s.loc bound step;
        (match step with
        | Int i when Stdlib.(i <= 0) ->
          add (issue s.loc "V007" "loop step must be positive")
        | Float x when Stdlib.(x <= 0.) ->
          add (issue s.loc "V007" "loop step must be positive")
        | _ -> ());
        let _ = check_block (Sset.add var bound) body in
        bound
      | While { p_continue; max_iter; body; _ } ->
        check_vars s.loc bound p_continue;
        check_vars s.loc bound max_iter;
        let _ = check_block bound body in
        bound
      | Call (name, args) ->
        (match Smap.find_opt name funcs with
        | None -> add (issue s.loc "V008" "call to undefined function %s" name)
        | Some callee ->
          if List.length callee.params <> List.length args then
            add
              (issue s.loc "V009" "%s expects %d arguments, got %d" name
                 (List.length callee.params)
                 (List.length args)));
        List.iter (check_vars s.loc bound) args;
        bound
      | Lib { args; scale; _ } ->
        List.iter (check_vars s.loc bound) args;
        check_vars s.loc bound scale;
        bound
      | Return -> bound
      | Break { p; _ } | Continue { p; _ } ->
        check_vars s.loc bound p;
        bound
    in
    ignore (check_block initially_bound f.body)
  in
  List.iter check_func p.funcs;
  (* Data-dependent branches, loops and early exits are keyed by name
     in the profiler's hint table; a name used at two different sites
     pools their statistics, which silently corrupts the model.  Flag
     duplicates. *)
  let stat_names = Hashtbl.create 16 in
  let flag_dup loc kind name =
    match Hashtbl.find_opt stat_names name with
    | Some first ->
      add
        (issue loc "V010"
           "%s %S reuses a statistics name first used at %s; profiled \
            probabilities would be pooled across both sites"
           kind name (Loc.to_string first))
    | None -> Hashtbl.add stat_names name loc
  in
  List.iter
    (fun (f : func) ->
      ignore
        (fold_block
           (fun () s ->
             match s.kind with
             | If { cond = Cdata { name; _ }; _ } ->
               flag_dup s.loc "data branch" name
             | While { name; _ } -> flag_dup s.loc "while loop" name
             | Break { name; _ } -> flag_dup s.loc "break" name
             | Continue { name; _ } -> flag_dup s.loc "continue" name
             | _ -> ())
           () f.body))
    p.funcs;
  (* Recursion check: DFS over the static call graph. *)
  let calls_of f =
    fold_block
      (fun acc s ->
        match s.kind with Call (n, _) -> Sset.add n acc | _ -> acc)
      Sset.empty f.body
  in
  let call_graph = Smap.map calls_of funcs in
  let rec dfs path name =
    if List.mem name path then
      add
        (issue Loc.none "V011" "recursive call cycle: %s"
           (String.concat " -> " (List.rev (name :: path))))
    else
      match Smap.find_opt name call_graph with
      | None -> ()
      | Some callees -> Sset.iter (dfs (name :: path)) callees
  in
  if Smap.mem p.entry funcs then dfs [] p.entry;
  List.rev !issues

(** Raise [Invalid_argument] with a readable message if [p] is not
    valid. *)
let check_exn ?inputs p =
  match check ?inputs p with
  | [] -> ()
  | issues ->
    invalid_arg
      (Fmt.str "invalid skeleton %s:@ %a" p.pname
         (Fmt.list ~sep:Fmt.semi pp_issue)
         issues)
