(** Recursive-descent parser for the skeleton DSL.

    Grammar sketch (statements are self-delimiting; no terminators):

    {v
    program  ::= "program" IDENT decl*
    decl     ::= array_decl | func
    array_decl ::= "array" IDENT ("[" expr "]")+ (":" IDENT)?   # f64|f32|i64|i32|i8
    func     ::= "def" IDENT "(" params ")" "{" stmt* "}"
    stmt     ::= ("@" IDENT ":")? core
    core     ::= "let" IDENT "=" expr
               | "comp" comp_attr ("," comp_attr)*
               | "load" access ("," access)*
               | "store" access ("," access)*
               | "if" cond block ("else" block)?
               | "for" IDENT "=" expr "to" expr ("step" expr)? block
               | "while" IDENT "prob" expr "max" expr block
               | "call" IDENT "(" args ")"
               | "lib" IDENT ("(" args ")")? ("scale" expr)?
               | "return" | "break" IDENT "prob" expr
               | "continue" IDENT "prob" expr
    cond     ::= "(" expr ")" | "data" IDENT "prob" expr
    comp_attr ::= ("flops"|"iops"|"divs") "=" expr | "vec" "=" INT
    access   ::= IDENT ("[" expr "]")*
    v}

    Expressions use conventional precedence; [min], [max], [floor],
    [ceil], [sqrt], [log2], [abs] and [pow] are builtin function calls. *)

open Ast

exception Error of Loc.t * string

let error loc fmt = Fmt.kstr (fun m -> raise (Error (loc, m))) fmt

type state = { mutable toks : Lexer.lexed list }

let peek st =
  match st.toks with
  | t :: _ -> t
  | [] -> { Lexer.tok = Lexer.EOF; tloc = Loc.none }

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok =
  let t = next st in
  if t.Lexer.tok <> tok then
    error t.Lexer.tloc "expected %a but found %a" Lexer.pp_token tok
      Lexer.pp_token t.Lexer.tok

let expect_ident st =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.IDENT s -> (s, t.Lexer.tloc)
  | tok -> error t.Lexer.tloc "expected identifier, found %a" Lexer.pp_token tok

let expect_keyword st kw =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.IDENT s when String.equal s kw -> ()
  | tok ->
    error t.Lexer.tloc "expected keyword %S, found %a" kw Lexer.pp_token tok

let accept st tok =
  if (peek st).Lexer.tok = tok then (
    advance st;
    true)
  else false

let accept_keyword st kw =
  match (peek st).Lexer.tok with
  | Lexer.IDENT s when String.equal s kw ->
    advance st;
    true
  | _ -> false

(* --- Expressions -------------------------------------------------- *)

let builtin_unops =
  [
    ("floor", Floor); ("ceil", Ceil); ("sqrt", Sqrt); ("log2", Log2);
    ("abs", Abs);
  ]

let builtin_binops = [ ("min", Min); ("max", Max); ("pow", Pow) ]

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while (peek st).Lexer.tok = Lexer.OROR do
    advance st;
    lhs := Or (!lhs, parse_and st)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_cmp st) in
  while (peek st).Lexer.tok = Lexer.ANDAND do
    advance st;
    lhs := And (!lhs, parse_cmp st)
  done;
  !lhs

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match (peek st).Lexer.tok with
    | Lexer.LT -> Some Lt
    | Lexer.LE -> Some Le
    | Lexer.GT -> Some Gt
    | Lexer.GE -> Some Ge
    | Lexer.EQ -> Some Eq
    | Lexer.NE -> Some Ne
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance st;
    Cmp (op, lhs, parse_add st)

and parse_add st =
  let lhs = ref (parse_mul st) in
  let continue = ref true in
  while !continue do
    match (peek st).Lexer.tok with
    | Lexer.PLUS ->
      advance st;
      lhs := Binop (Add, !lhs, parse_mul st)
    | Lexer.MINUS ->
      advance st;
      lhs := Binop (Sub, !lhs, parse_mul st)
    | _ -> continue := false
  done;
  !lhs

and parse_mul st =
  let lhs = ref (parse_pow st) in
  let continue = ref true in
  while !continue do
    match (peek st).Lexer.tok with
    | Lexer.STAR ->
      advance st;
      lhs := Binop (Mul, !lhs, parse_pow st)
    | Lexer.SLASH ->
      advance st;
      lhs := Binop (Div, !lhs, parse_pow st)
    | Lexer.PERCENT ->
      advance st;
      lhs := Binop (Mod, !lhs, parse_pow st)
    | _ -> continue := false
  done;
  !lhs

and parse_pow st =
  let lhs = parse_unary st in
  if (peek st).Lexer.tok = Lexer.CARET then (
    advance st;
    (* right associative *)
    Binop (Pow, lhs, parse_pow st))
  else lhs

and parse_unary st =
  match (peek st).Lexer.tok with
  | Lexer.MINUS ->
    advance st;
    Unop (Neg, parse_unary st)
  | Lexer.BANG ->
    advance st;
    Unop (Not, parse_unary st)
  | _ -> parse_atom st

and parse_atom st =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.INT i -> Int i
  | Lexer.FLOAT f -> Float f
  | Lexer.LPAREN ->
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    e
  | Lexer.IDENT "true" -> Bool true
  | Lexer.IDENT "false" -> Bool false
  | Lexer.IDENT name when List.mem_assoc name builtin_unops ->
    let op = List.assoc name builtin_unops in
    expect st Lexer.LPAREN;
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    Unop (op, e)
  | Lexer.IDENT name when List.mem_assoc name builtin_binops ->
    let op = List.assoc name builtin_binops in
    expect st Lexer.LPAREN;
    let a = parse_expr st in
    expect st Lexer.COMMA;
    let b = parse_expr st in
    expect st Lexer.RPAREN;
    Binop (op, a, b)
  | Lexer.IDENT name -> Var name
  | tok -> error t.Lexer.tloc "expected expression, found %a" Lexer.pp_token tok

(* --- Statements --------------------------------------------------- *)

let parse_access st =
  let array, _ = expect_ident st in
  let index = ref [] in
  while accept st Lexer.LBRACKET do
    index := parse_expr st :: !index;
    expect st Lexer.RBRACKET
  done;
  { array; index = List.rev !index }

let parse_access_list st =
  let first = parse_access st in
  let rest = ref [] in
  while accept st Lexer.COMMA do
    rest := parse_access st :: !rest
  done;
  first :: List.rev !rest

let parse_comp_attrs st loc =
  let c = ref comp_zero in
  let parse_one () =
    let name, nloc = expect_ident st in
    expect st Lexer.ASSIGN;
    match name with
    | "flops" -> c := { !c with flops = parse_expr st }
    | "iops" -> c := { !c with iops = parse_expr st }
    | "divs" -> c := { !c with divs = parse_expr st }
    | "vec" -> (
      match (next st).Lexer.tok with
      | Lexer.INT v -> c := { !c with vec = v }
      | _ -> error nloc "vec expects an integer literal")
    | other -> error nloc "unknown comp attribute %S" other
  in
  (match (peek st).Lexer.tok with
  | Lexer.IDENT _ -> parse_one ()
  | _ -> error loc "comp requires at least one attribute");
  while accept st Lexer.COMMA do
    parse_one ()
  done;
  !c

let rec parse_block st =
  expect st Lexer.LBRACE;
  let stmts = ref [] in
  while (peek st).Lexer.tok <> Lexer.RBRACE do
    stmts := parse_stmt st :: !stmts
  done;
  expect st Lexer.RBRACE;
  List.rev !stmts

and parse_stmt st =
  let label =
    if accept st Lexer.AT then (
      let name, _ = expect_ident st in
      expect st Lexer.COLON;
      Some name)
    else None
  in
  let t = peek st in
  let loc = t.Lexer.tloc in
  let kind =
    match t.Lexer.tok with
    | Lexer.IDENT "let" ->
      advance st;
      let name, _ = expect_ident st in
      expect st Lexer.ASSIGN;
      Let (name, parse_expr st)
    | Lexer.IDENT "comp" ->
      advance st;
      Comp (parse_comp_attrs st loc)
    | Lexer.IDENT "load" ->
      advance st;
      Mem { loads = parse_access_list st; stores = [] }
    | Lexer.IDENT "store" ->
      advance st;
      Mem { loads = []; stores = parse_access_list st }
    | Lexer.IDENT "if" ->
      advance st;
      let cond =
        if accept_keyword st "data" then (
          let name, _ = expect_ident st in
          expect_keyword st "prob";
          Cdata { name; p = parse_expr st })
        else (
          expect st Lexer.LPAREN;
          let e = parse_expr st in
          expect st Lexer.RPAREN;
          Cexpr e)
      in
      let then_ = parse_block st in
      let else_ = if accept_keyword st "else" then parse_block st else [] in
      If { cond; then_; else_ }
    | Lexer.IDENT "for" ->
      advance st;
      let var, _ = expect_ident st in
      expect st Lexer.ASSIGN;
      let lo = parse_expr st in
      expect_keyword st "to";
      let hi = parse_expr st in
      let step = if accept_keyword st "step" then parse_expr st else Int 1 in
      For { var; lo; hi; step; body = parse_block st }
    | Lexer.IDENT "while" ->
      advance st;
      let name, _ = expect_ident st in
      expect_keyword st "prob";
      let p_continue = parse_expr st in
      expect_keyword st "max";
      let max_iter = parse_expr st in
      While { name; p_continue; max_iter; body = parse_block st }
    | Lexer.IDENT "call" ->
      advance st;
      let name, _ = expect_ident st in
      expect st Lexer.LPAREN;
      let args = parse_args st in
      Call (name, args)
    | Lexer.IDENT "lib" ->
      advance st;
      let name, _ = expect_ident st in
      let args =
        if accept st Lexer.LPAREN then parse_args st else []
      in
      let scale = if accept_keyword st "scale" then parse_expr st else Int 1 in
      Lib { name; args; scale }
    | Lexer.IDENT "return" ->
      advance st;
      Return
    | Lexer.IDENT "break" ->
      advance st;
      let name, _ = expect_ident st in
      expect_keyword st "prob";
      Break { name; p = parse_expr st }
    | Lexer.IDENT "continue" ->
      advance st;
      let name, _ = expect_ident st in
      expect_keyword st "prob";
      Continue { name; p = parse_expr st }
    | tok -> error loc "expected a statement, found %a" Lexer.pp_token tok
  in
  { sid = -1; loc; label; kind }

and parse_args st =
  if accept st Lexer.RPAREN then []
  else (
    let first = parse_expr st in
    let rest = ref [] in
    while accept st Lexer.COMMA do
      rest := parse_expr st :: !rest
    done;
    expect st Lexer.RPAREN;
    first :: List.rev !rest)

(* --- Declarations -------------------------------------------------- *)

let elem_bytes_of_type loc = function
  | "f64" -> 8
  | "f32" -> 4
  | "i64" -> 8
  | "i32" -> 4
  | "i8" -> 1
  | other -> (
    (* Generic f<bits>/i<bits> widths: the pretty-printer emits these
       for element sizes outside the named set (e.g. "f16" for 2-byte
       elements), so the parser must accept them for round-tripping. *)
    let generic =
      let n = String.length other in
      if n >= 2 && (other.[0] = 'f' || other.[0] = 'i') then
        match int_of_string_opt (String.sub other 1 (n - 1)) with
        | Some bits when bits > 0 && bits mod 8 = 0 -> Some (bits / 8)
        | _ -> None
      else None
    in
    match generic with
    | Some bytes -> bytes
    | None ->
      error loc "unknown element type %S (use f64|f32|i64|i32|i8 or f<bits>/i<bits>)"
        other)

let parse_array_decl st =
  let aname, loc = expect_ident st in
  let dims = ref [] in
  while accept st Lexer.LBRACKET do
    dims := parse_expr st :: !dims;
    expect st Lexer.RBRACKET
  done;
  if !dims = [] then error loc "array %s needs at least one dimension" aname;
  let elem_bytes =
    if accept st Lexer.COLON then (
      let ty, tloc = expect_ident st in
      elem_bytes_of_type tloc ty)
    else 8
  in
  { aname; dims = List.rev !dims; elem_bytes }

let parse_func st =
  let fname, _ = expect_ident st in
  expect st Lexer.LPAREN;
  let params =
    if accept st Lexer.RPAREN then []
    else (
      let first, _ = expect_ident st in
      let rest = ref [] in
      while accept st Lexer.COMMA do
        rest := fst (expect_ident st) :: !rest
      done;
      expect st Lexer.RPAREN;
      first :: List.rev !rest)
  in
  let arrays = ref [] in
  while accept_keyword st "array" do
    arrays := parse_array_decl st :: !arrays
  done;
  let body = parse_block st in
  { fname; params; arrays = List.rev !arrays; body }

(** Parse a complete skeleton program from source text.
    @raise Error on syntax errors. *)
let parse ~file src : program =
  let st = { toks = Lexer.tokenize ~file src } in
  expect_keyword st "program";
  let pname, _ = expect_ident st in
  let globals = ref [] in
  let funcs = ref [] in
  let entry = ref "main" in
  let continue = ref true in
  while !continue do
    let t = peek st in
    match t.Lexer.tok with
    | Lexer.IDENT "array" ->
      advance st;
      globals := parse_array_decl st :: !globals
    | Lexer.IDENT "def" ->
      advance st;
      funcs := parse_func st :: !funcs
    | Lexer.IDENT "entry" ->
      advance st;
      entry := fst (expect_ident st)
    | Lexer.EOF -> continue := false
    | tok ->
      error t.Lexer.tloc "expected 'array', 'def' or 'entry', found %a"
        Lexer.pp_token tok
  done;
  Ast.renumber
    {
      pname;
      globals = List.rev !globals;
      funcs = List.rev !funcs;
      entry = !entry;
    }

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse ~file:(Filename.basename path) src
