(** Pretty-printer for skeleton programs.

    Emits the concrete DSL syntax accepted by {!Parser}; the
    round-trip [Parser.parse (Pretty.to_string p)] reproduces [p] up to
    statement ids and source locations (checked by property tests). *)

open Ast

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Min -> "min"
  | Max -> "max"
  | Pow -> "pow"

let cmpop_name = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="

let unop_name = function
  | Neg -> "-"
  | Not -> "!"
  | Floor -> "floor"
  | Ceil -> "ceil"
  | Sqrt -> "sqrt"
  | Log2 -> "log2"
  | Abs -> "abs"

(* Precedence levels, higher binds tighter; used to parenthesize
   minimally. *)
let prec_or = 1
let prec_and = 2
let prec_cmp = 3
let prec_add = 4
let prec_mul = 5
let prec_unary = 7
let prec_atom = 8

let rec pp_prec level ppf e =
  let prec, doc =
    match e with
    | Int i -> (prec_atom, fun ppf -> Fmt.int ppf i)
    | Float f ->
      (* Shortest representation that round-trips, with a decimal
         point so the lexer reads it back as a float. *)
      let rec shortest p =
        if p >= 17 then Fmt.str "%.17g" f
        else
          let s = Fmt.str "%.*g" p f in
          if float_of_string s = f then s else shortest (p + 1)
      in
      let s = shortest 1 in
      let s =
        if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"
      in
      (prec_atom, fun ppf -> Fmt.string ppf s)
    | Bool b -> (prec_atom, fun ppf -> Fmt.string ppf (string_of_bool b))
    | Var v -> (prec_atom, fun ppf -> Fmt.string ppf v)
    | Binop (((Min | Max | Pow) as op), a, b) ->
      ( prec_atom,
        fun ppf ->
          Fmt.pf ppf "%s(%a, %a)" (binop_name op) (pp_prec 0) a (pp_prec 0) b )
    | Binop (((Add | Sub) as op), a, b) ->
      ( prec_add,
        fun ppf ->
          Fmt.pf ppf "%a %s %a" (pp_prec prec_add) a (binop_name op)
            (pp_prec (prec_add + 1))
            b )
    | Binop (((Mul | Div | Mod) as op), a, b) ->
      ( prec_mul,
        fun ppf ->
          Fmt.pf ppf "%a %s %a" (pp_prec prec_mul) a (binop_name op)
            (pp_prec (prec_mul + 1))
            b )
    | Cmp (op, a, b) ->
      ( prec_cmp,
        fun ppf ->
          Fmt.pf ppf "%a %s %a"
            (pp_prec (prec_cmp + 1))
            a (cmpop_name op)
            (pp_prec (prec_cmp + 1))
            b )
    | And (a, b) ->
      ( prec_and,
        fun ppf ->
          Fmt.pf ppf "%a && %a" (pp_prec prec_and) a
            (pp_prec (prec_and + 1))
            b )
    | Or (a, b) ->
      ( prec_or,
        fun ppf ->
          Fmt.pf ppf "%a || %a" (pp_prec prec_or) a (pp_prec (prec_or + 1)) b )
    | Unop (((Neg | Not) as op), a) ->
      ( prec_unary,
        fun ppf -> Fmt.pf ppf "%s%a" (unop_name op) (pp_prec prec_unary) a )
    | Unop (op, a) ->
      (prec_atom, fun ppf -> Fmt.pf ppf "%s(%a)" (unop_name op) (pp_prec 0) a)
  in
  if prec < level then Fmt.pf ppf "(%t)" doc else doc ppf

let pp_expr ppf e = pp_prec 0 ppf e

let pp_access ppf { array; index } =
  Fmt.pf ppf "%s%a" array
    (Fmt.list ~sep:Fmt.nop (fun ppf e -> Fmt.pf ppf "[%a]" pp_expr e))
    index

let pp_cond ppf = function
  | Cexpr e -> Fmt.pf ppf "(%a)" pp_expr e
  | Cdata { name; p } -> Fmt.pf ppf "data %s prob %a" name pp_expr p

let pp_comp ppf { flops; iops; divs; vec } =
  let parts = ref [] in
  let add fmt = parts := fmt :: !parts in
  if vec <> 1 then add (Fmt.str "vec=%d" vec);
  if divs <> Int 0 then add (Fmt.str "divs=%a" pp_expr divs);
  if iops <> Int 0 then add (Fmt.str "iops=%a" pp_expr iops);
  (* Always emit flops so a zero-comp statement still parses. *)
  add (Fmt.str "flops=%a" pp_expr flops);
  Fmt.string ppf (String.concat ", " !parts)

let rec pp_stmt indent ppf (s : stmt) =
  let pad = String.make indent ' ' in
  let lbl = match s.label with None -> "" | Some l -> "@" ^ l ^ ": " in
  Fmt.pf ppf "%s%s" pad lbl;
  match s.kind with
  | Comp c -> Fmt.pf ppf "comp %a@," pp_comp c
  | Mem { loads; stores } ->
    if loads <> [] then
      Fmt.pf ppf "load %a" (Fmt.list ~sep:(Fmt.any ", ") pp_access) loads;
    (* A combined load/store statement prints as two lines; the label
       must not repeat on the second or it would reparse as two
       identically-labelled statements. *)
    if loads <> [] && stores <> [] then Fmt.pf ppf "@,%s" pad;
    if stores <> [] then
      Fmt.pf ppf "store %a" (Fmt.list ~sep:(Fmt.any ", ") pp_access) stores;
    if loads = [] && stores = [] then Fmt.pf ppf "comp flops=0";
    Fmt.pf ppf "@,"
  | Let (v, e) -> Fmt.pf ppf "let %s = %a@," v pp_expr e
  | If { cond; then_; else_ } ->
    Fmt.pf ppf "if %a {@,%a%s}" pp_cond cond (pp_block (indent + 2)) then_ pad;
    if else_ <> [] then
      Fmt.pf ppf " else {@,%a%s}" (pp_block (indent + 2)) else_ pad;
    Fmt.pf ppf "@,"
  | For { var; lo; hi; step; body } ->
    Fmt.pf ppf "for %s = %a to %a" var pp_expr lo pp_expr hi;
    if step <> Int 1 then Fmt.pf ppf " step %a" pp_expr step;
    Fmt.pf ppf " {@,%a%s}@," (pp_block (indent + 2)) body pad
  | While { name; p_continue; max_iter; body } ->
    Fmt.pf ppf "while %s prob %a max %a {@,%a%s}@," name pp_expr p_continue
      pp_expr max_iter
      (pp_block (indent + 2))
      body pad
  | Call (f, args) ->
    Fmt.pf ppf "call %s(%a)@," f (Fmt.list ~sep:(Fmt.any ", ") pp_expr) args
  | Lib { name; args; scale } ->
    Fmt.pf ppf "lib %s" name;
    if args <> [] then
      Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any ", ") pp_expr) args;
    if scale <> Int 1 then Fmt.pf ppf " scale %a" pp_expr scale;
    Fmt.pf ppf "@,"
  | Return -> Fmt.pf ppf "return@,"
  | Break { name; p } -> Fmt.pf ppf "break %s prob %a@," name pp_expr p
  | Continue { name; p } -> Fmt.pf ppf "continue %s prob %a@," name pp_expr p

and pp_block indent ppf (b : block) =
  List.iter (fun s -> pp_stmt indent ppf s) b

let pp_array_decl ppf { aname; dims; elem_bytes } =
  let ty =
    match elem_bytes with
    | 8 -> "f64"
    | 4 -> "f32"
    | 1 -> "i8"
    | n -> Fmt.str "f%d" (n * 8)
  in
  Fmt.pf ppf "array %s%a : %s@," aname
    (Fmt.list ~sep:Fmt.nop (fun ppf e -> Fmt.pf ppf "[%a]" pp_expr e))
    dims ty

let pp_func ppf (f : func) =
  Fmt.pf ppf "def %s(%a)@," f.fname
    (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
    f.params;
  List.iter (fun a -> Fmt.pf ppf "  %a" pp_array_decl a) f.arrays;
  Fmt.pf ppf "{@,%a}@,@," (pp_block 2) f.body

let pp_program ppf (p : program) =
  Fmt.pf ppf "@[<v>program %s@,@," p.pname;
  List.iter (pp_array_decl ppf) p.globals;
  if p.globals <> [] then Fmt.pf ppf "@,";
  List.iter (pp_func ppf) p.funcs;
  if not (String.equal p.entry "main") then Fmt.pf ppf "entry %s@," p.entry;
  Fmt.pf ppf "@]"

let to_string p = Fmt.str "%a" pp_program p
