(** Structural program equality modulo statement identity.

    The round-trip oracle (generate, pretty-print, reparse) needs to
    compare two programs for semantic identity while ignoring the
    bookkeeping the parser attaches: statement ids are assigned in
    pre-order by {!Ast.renumber} and source locations obviously differ
    between a built program and its reparsed text.

    One genuine representational gap is normalized away on request:
    the grammar has no single statement carrying both loads and
    stores, so the pretty-printer fissions a combined [Mem] into a
    [load] line followed by a [store] line.  With [~fission_mem:true]
    both sides are rewritten into that fissioned normal form before
    comparison, making the oracle exact over the full AST. *)

(** [program ?fission_mem a b] is [true] when [a] and [b] are
    structurally identical ignoring [sid] and [loc] (and, with
    [fission_mem], modulo load/store fission). *)
val program : ?fission_mem:bool -> Ast.program -> Ast.program -> bool

(** [first_diff ?fission_mem a b] describes the first structural
    difference found, or [None] when the programs are equal.  Used to
    build actionable fuzz-failure reports. *)
val first_diff : ?fission_mem:bool -> Ast.program -> Ast.program -> string option
