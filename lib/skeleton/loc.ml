(** Source locations for skeleton statements.

    A location is a file name, a 1-based line and a 1-based column.
    [col = 0] means "column unknown" (builder-made programs, legacy
    callers); {!pp} deliberately prints only [file:line] so that
    hot-spot names derived from locations stay stable, while
    {!pp_full} adds the column for diagnostics. *)

type t = { file : string; line : int; col : int }

let none = { file = "<builtin>"; line = 0; col = 0 }

let make ~file ~line = { file; line; col = 0 }

(** [make_col] additionally records the 1-based column. *)
let make_col ~file ~line ~col = { file; line; col }

let pp ppf { file; line; _ } = Fmt.pf ppf "%s:%d" file line

(** Like {!pp} but with the column when one is known
    ([file:line:col]) — the form diagnostics point at. *)
let pp_full ppf ({ file; line; col } as t) =
  if col > 0 then Fmt.pf ppf "%s:%d:%d" file line col else pp ppf t

let to_string t = Fmt.str "%a" pp t

let equal a b =
  String.equal a.file b.file && a.line = b.line && a.col = b.col
