(** Pretty-printer for skeleton programs.

    Emits the concrete DSL syntax accepted by {!Parser}; the round
    trip [Parser.parse (Pretty.to_string p)] reproduces [p] up to
    statement ids and source locations (checked by property tests). *)

val pp_expr : Ast.expr Fmt.t
val pp_access : Ast.access Fmt.t
val pp_cond : Ast.cond Fmt.t

(** [pp_stmt indent] prints one statement (and its sub-block) at the
    given indentation; the caller must provide an enclosing vertical
    box.  Exposed for diff rendering in {!Equal}. *)
val pp_stmt : int -> Ast.stmt Fmt.t
val pp_program : Ast.program Fmt.t
val to_string : Ast.program -> string
