(** Hand-written lexer for the skeleton DSL.

    The language is newline-insensitive; every statement begins with a
    keyword, so no statement terminator is needed.  Comments run from
    [#] to end of line. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | COLON
  | SEMI
  | AT
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | CARET
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | ANDAND
  | OROR
  | BANG
  | EOF

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %S" s
  | INT i -> Fmt.pf ppf "integer %d" i
  | FLOAT f -> Fmt.pf ppf "float %g" f
  | STRING s -> Fmt.pf ppf "string %S" s
  | LPAREN -> Fmt.string ppf "'('"
  | RPAREN -> Fmt.string ppf "')'"
  | LBRACE -> Fmt.string ppf "'{'"
  | RBRACE -> Fmt.string ppf "'}'"
  | LBRACKET -> Fmt.string ppf "'['"
  | RBRACKET -> Fmt.string ppf "']'"
  | COMMA -> Fmt.string ppf "','"
  | COLON -> Fmt.string ppf "':'"
  | SEMI -> Fmt.string ppf "';'"
  | AT -> Fmt.string ppf "'@'"
  | ASSIGN -> Fmt.string ppf "'='"
  | PLUS -> Fmt.string ppf "'+'"
  | MINUS -> Fmt.string ppf "'-'"
  | STAR -> Fmt.string ppf "'*'"
  | SLASH -> Fmt.string ppf "'/'"
  | PERCENT -> Fmt.string ppf "'%'"
  | CARET -> Fmt.string ppf "'^'"
  | LT -> Fmt.string ppf "'<'"
  | LE -> Fmt.string ppf "'<='"
  | GT -> Fmt.string ppf "'>'"
  | GE -> Fmt.string ppf "'>='"
  | EQ -> Fmt.string ppf "'=='"
  | NE -> Fmt.string ppf "'!='"
  | ANDAND -> Fmt.string ppf "'&&'"
  | OROR -> Fmt.string ppf "'||'"
  | BANG -> Fmt.string ppf "'!'"
  | EOF -> Fmt.string ppf "end of input"

exception Error of Loc.t * string

let error loc fmt = Fmt.kstr (fun m -> raise (Error (loc, m))) fmt

type lexed = { tok : token; tloc : Loc.t }

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c || c = '.'

(** Tokenize [src]; [file] is used for locations only. *)
let tokenize ~file src : lexed list =
  let n = String.length src in
  let line = ref 1 in
  let bol = ref 0 in
  (* byte offset of the current line's first character *)
  let toks = ref [] in
  let i = ref 0 in
  let loc () = Loc.make_col ~file ~line:!line ~col:(!i - !bol + 1) in
  let push tok = toks := { tok; tloc = loc () } :: !toks in
  let newline_at pos =
    incr line;
    bol := pos + 1
  in
  while !i < n do
    let c = src.[!i] in
    let peek () = if !i + 1 < n then Some src.[!i + 1] else None in
    (match c with
    | '\n' ->
      newline_at !i;
      incr i
    | ' ' | '\t' | '\r' -> incr i
    | '#' ->
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    | '(' ->
      push LPAREN;
      incr i
    | ')' ->
      push RPAREN;
      incr i
    | '{' ->
      push LBRACE;
      incr i
    | '}' ->
      push RBRACE;
      incr i
    | '[' ->
      push LBRACKET;
      incr i
    | ']' ->
      push RBRACKET;
      incr i
    | ',' ->
      push COMMA;
      incr i
    | ':' ->
      push COLON;
      incr i
    | ';' ->
      push SEMI;
      incr i
    | '@' ->
      push AT;
      incr i
    | '+' ->
      push PLUS;
      incr i
    | '-' ->
      push MINUS;
      incr i
    | '*' ->
      push STAR;
      incr i
    | '/' ->
      push SLASH;
      incr i
    | '%' ->
      push PERCENT;
      incr i
    | '^' ->
      push CARET;
      incr i
    | '<' ->
      if peek () = Some '=' then (
        push LE;
        i := !i + 2)
      else (
        push LT;
        incr i)
    | '>' ->
      if peek () = Some '=' then (
        push GE;
        i := !i + 2)
      else (
        push GT;
        incr i)
    | '=' ->
      if peek () = Some '=' then (
        push EQ;
        i := !i + 2)
      else (
        push ASSIGN;
        incr i)
    | '!' ->
      if peek () = Some '=' then (
        push NE;
        i := !i + 2)
      else (
        push BANG;
        incr i)
    | '&' ->
      if peek () = Some '&' then (
        push ANDAND;
        i := !i + 2)
      else error (loc ()) "stray '&'"
    | '|' ->
      if peek () = Some '|' then (
        push OROR;
        i := !i + 2)
      else error (loc ()) "stray '|'"
    | '"' ->
      let opening = loc () in
      let start = !i + 1 in
      let j = ref start in
      while !j < n && src.[!j] <> '"' do
        if src.[!j] = '\n' then newline_at !j;
        incr j
      done;
      if !j >= n then error opening "unterminated string literal";
      toks :=
        { tok = STRING (String.sub src start (!j - start)); tloc = opening }
        :: !toks;
      i := !j + 1
    | c when is_digit c ->
      let start = !i in
      let j = ref !i in
      while !j < n && is_digit src.[!j] do
        incr j
      done;
      let is_float = ref false in
      if !j < n && src.[!j] = '.' && !j + 1 < n && is_digit src.[!j + 1] then (
        is_float := true;
        incr j;
        while !j < n && is_digit src.[!j] do
          incr j
        done);
      if !j < n && (src.[!j] = 'e' || src.[!j] = 'E') then (
        is_float := true;
        incr j;
        if !j < n && (src.[!j] = '+' || src.[!j] = '-') then incr j;
        while !j < n && is_digit src.[!j] do
          incr j
        done);
      let text = String.sub src start (!j - start) in
      if !is_float then push (FLOAT (float_of_string text))
      else push (INT (int_of_string text));
      i := !j
    | c when is_ident_start c ->
      let start = !i in
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do
        incr j
      done;
      push (IDENT (String.sub src start (!j - start)));
      i := !j
    | c -> error (loc ()) "unexpected character %C" c);
    ()
  done;
  push EOF;
  List.rev !toks
