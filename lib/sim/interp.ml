(** Concrete skeleton interpreter with a cycle-level cost model — the
    repo's ground truth.

    This substrate stands in for the paper's real machines and their
    native profilers (§VI): it executes the skeleton program with real
    loop iteration and pseudo-random data-dependent branch outcomes,
    attributes exclusive cycles to every source block, and models
    precisely the effects the paper's analytic model ignores —
    set-associative caches with actual reuse, expensive floating point
    division, and SIMD throughput.  It also doubles as the gcov-style
    branch profiler (§III-B): every run returns the empirical branch
    and trip-count statistics as {!Skope_bet.Hints.t}.

    For speed the program is {e compiled} once into closures: variables
    resolve to array slots instead of hash lookups, and constant
    expressions (the common case for operation counts) are folded at
    compile time.  Simulated executions routinely run hundreds of
    millions of statement instances, so this matters.

    The core model is in-order: computation, scalar bookkeeping and
    memory penalties accumulate additively; pipelined L1 hits cost one
    issue slot while misses pay the level's latency divided by the
    machine's memory-level parallelism. *)

open Skope_skeleton
open Skope_bet
open Skope_hw

exception Brk
exception Cont
exception Ret
exception Unbound of string * Loc.t

type config = { machine : Machine.t; libmix : Libmix.t; seed : int64 }

let default_config ?(machine = Machines.bgq) ?(libmix = Libmix.default)
    ?(seed = 42L) () =
  { machine; libmix; seed }

type result = {
  machine : Machine.t;
  blocks : Skope_analysis.Blockstat.t list;
      (** measured exclusive time per block, ranked by time *)
  total_cycles : float;
  total_time : float;  (** seconds *)
  hints : Hints.t;  (** branch/trip statistics for BET construction *)
  counters : Counters.t;  (** per-block counter detail (Fig. 8) *)
}

(* ------------------------------------------------------------------ *)

type array_info = { base : int; dims : int array; elem : int }

type state = {
  cfg : config;
  program : Ast.program;
  globals : Value.t array;
  global_index : (string, int) Hashtbl.t;
  l1 : Cache.t;
  l2 : Cache.t;
  rng : Rng.t;
  counters : Counters.t;
  layouts : (string * string, array_info option ref) Hashtbl.t;
  mutable cursor : int;  (** next free byte address *)
  branch_tally : (string, (int * int) ref) Hashtbl.t;  (** taken, total *)
  loop_tally : (string, (int * int) ref) Hashtbl.t;  (** iters, entries *)
  (* cost model constants *)
  flop_cycles : float;  (** cycles per scalar non-division flop *)
  iop_cycles : float;
  load_base : float;  (** issue cost of a pipelined L1 hit *)
  l2_penalty : float;
  mem_penalty : float;
}

type frame = Value.t array

(* --- compilation -------------------------------------------------- *)

(* Per-function variable slots: parameters, [let] targets and loop
   variables get dense indices; everything else resolves to the global
   input bindings. *)
type scope = { func : string; slots : (string, int) Hashtbl.t; st : state }

let slot_count scope = Hashtbl.length scope.slots

let local_vars (f : Ast.func) : string list =
  let add acc v = if List.mem v acc then acc else v :: acc in
  let acc =
    Ast.fold_block
      (fun acc (s : Ast.stmt) ->
        match s.Ast.kind with
        | Ast.Let (v, _) -> add acc v
        | Ast.For { var; _ } -> add acc var
        | _ -> acc)
      (List.rev f.Ast.params) f.Ast.body
  in
  List.rev acc

type cexpr = frame -> Value.t

let rec compile_expr (scope : scope) (e : Ast.expr) : cexpr =
  match compile_const scope e with
  | Some v -> fun _ -> v
  | None -> compile_dyn scope e

and compile_const scope (e : Ast.expr) : Value.t option =
  (* Fold expressions that only reference constants and global inputs
     (immutable during execution). *)
  let rec refs_local = function
    | Ast.Var v -> Hashtbl.mem scope.slots v
    | Ast.Int _ | Ast.Float _ | Ast.Bool _ -> false
    | Ast.Binop (_, a, b) | Ast.Cmp (_, a, b) | Ast.And (a, b) | Ast.Or (a, b)
      ->
      refs_local a || refs_local b
    | Ast.Unop (_, a) -> refs_local a
  in
  if refs_local e then None
  else begin
    (* Evaluate once against globals only. *)
    let scope_frame = [||] in
    match compile_dyn scope e scope_frame with
    | v -> Some v
    | exception Unbound _ -> None
  end

and compile_dyn (scope : scope) (e : Ast.expr) : cexpr =
  match e with
  | Ast.Int i ->
    let v = Value.I i in
    fun _ -> v
  | Ast.Float f ->
    let v = Value.F f in
    fun _ -> v
  | Ast.Bool b ->
    let v = Value.B b in
    fun _ -> v
  | Ast.Var name -> (
    match Hashtbl.find_opt scope.slots name with
    | Some slot -> fun frame -> Array.unsafe_get frame slot
    | None -> (
      match Hashtbl.find_opt scope.st.global_index name with
      | Some gi ->
        let globals = scope.st.globals in
        fun _ -> Array.unsafe_get globals gi
      | None -> raise (Unbound (name, Loc.none))))
  | Ast.Binop (op, a, b) ->
    let ca = compile_expr scope a and cb = compile_expr scope b in
    fun frame ->
      (match Eval.arith op (ca frame) (cb frame) with
      | Some v -> v
      | None -> Value.F 0.)
  | Ast.Cmp (op, a, b) ->
    let ca = compile_expr scope a and cb = compile_expr scope b in
    let test =
      match op with
      | Ast.Lt -> fun c -> c < 0
      | Ast.Le -> fun c -> c <= 0
      | Ast.Gt -> fun c -> c > 0
      | Ast.Ge -> fun c -> c >= 0
      | Ast.Eq -> fun c -> c = 0
      | Ast.Ne -> fun c -> c <> 0
    in
    fun frame -> Value.B (test (Value.compare (ca frame) (cb frame)))
  | Ast.And (a, b) ->
    let ca = compile_expr scope a and cb = compile_expr scope b in
    fun frame ->
      Value.B (Value.truthy (ca frame) && Value.truthy (cb frame))
  | Ast.Or (a, b) ->
    let ca = compile_expr scope a and cb = compile_expr scope b in
    fun frame ->
      Value.B (Value.truthy (ca frame) || Value.truthy (cb frame))
  | Ast.Unop (op, a) -> (
    let ca = compile_expr scope a in
    match op with
    | Ast.Neg -> (
      fun frame ->
        match ca frame with
        | Value.I i -> Value.I (-i)
        | v -> Value.F (-.Value.to_float v))
    | Ast.Not -> fun frame -> Value.B (not (Value.truthy (ca frame)))
    | Ast.Floor ->
      fun frame ->
        Value.I (int_of_float (Float.floor (Value.to_float (ca frame))))
    | Ast.Ceil ->
      fun frame ->
        Value.I (int_of_float (Float.ceil (Value.to_float (ca frame))))
    | Ast.Sqrt ->
      fun frame ->
        Value.F (Float.sqrt (Float.max 0. (Value.to_float (ca frame))))
    | Ast.Log2 ->
      fun frame ->
        let f = Value.to_float (ca frame) in
        Value.F (if f <= 0. then 0. else Float.log f /. Float.log 2.)
    | Ast.Abs -> (
      fun frame ->
        match ca frame with
        | Value.I i -> Value.I (abs i)
        | v -> Value.F (Float.abs (Value.to_float v))))

let compile_float scope e : frame -> float =
  match compile_const scope e with
  | Some v ->
    let f = Value.to_float v in
    fun _ -> f
  | None ->
    let c = compile_dyn scope e in
    fun frame -> Value.to_float (c frame)

let compile_int scope e : frame -> int =
  let cf = compile_float scope e in
  fun frame -> int_of_float (Float.round (cf frame))

let compile_prob scope e : frame -> float =
  let cf = compile_float scope e in
  fun frame -> Float.min 1. (Float.max 0. (cf frame))

(* --- tallies ------------------------------------------------------- *)

let branch_cell st name =
  match Hashtbl.find_opt st.branch_tally name with
  | Some c -> c
  | None ->
    let c = ref (0, 0) in
    Hashtbl.add st.branch_tally name c;
    c

let loop_cell st name =
  match Hashtbl.find_opt st.loop_tally name with
  | Some c -> c
  | None ->
    let c = ref (0, 0) in
    Hashtbl.add st.loop_tally name c;
    c

let tally_branch cell taken =
  let t, n = !cell in
  cell := ((t + if taken then 1 else 0), n + 1)

(* --- memory layout -------------------------------------------------- *)

let layout_cell st ~func name =
  let key = (func, name) in
  match Hashtbl.find_opt st.layouts key with
  | Some c -> c
  | None ->
    let c = ref None in
    Hashtbl.add st.layouts key c;
    c

(* Resolution order mirrors scoping: function-local declaration first,
   then global. *)
let find_array_cell st ~func ~(declared : Ast.array_decl list) name =
  let is_local =
    List.exists (fun (d : Ast.array_decl) -> String.equal d.Ast.aname name) declared
  in
  if is_local then Some (layout_cell st ~func name)
  else if Hashtbl.mem st.layouts ("", name) then Some (layout_cell st ~func:"" name)
  else None

let do_layout st ~func frame (decls : Ast.array_decl list) scope =
  List.iter
    (fun (d : Ast.array_decl) ->
      let cell = layout_cell st ~func d.Ast.aname in
      if !cell = None then begin
        let dims =
          Array.of_list
            (List.map
               (fun e -> max 1 (compile_int scope e frame))
               d.Ast.dims)
        in
        let total = Array.fold_left ( * ) 1 dims * d.Ast.elem_bytes in
        let align = max st.l1.Cache.level.line_bytes 64 in
        let base = (st.cursor + align - 1) / align * align in
        st.cursor <- base + total;
        cell := Some { base; dims; elem = d.Ast.elem_bytes }
      end)
    decls

(* --- cost charging --------------------------------------------------- *)

let charge_access st (e : Counters.entry) ~is_store addr bytes =
  let c = ref st.load_base in
  if not (Cache.access st.l1 ~addr) then begin
    e.Counters.l1_misses <- e.Counters.l1_misses + 1;
    if Cache.access st.l2 ~addr then c := !c +. st.l2_penalty
    else begin
      e.Counters.l2_misses <- e.Counters.l2_misses + 1;
      c := !c +. st.mem_penalty
    end
  end;
  e.Counters.cycles <- e.Counters.cycles +. !c;
  e.Counters.mem_cycles <- e.Counters.mem_cycles +. !c;
  e.Counters.instrs <- e.Counters.instrs +. 1.;
  e.Counters.bytes <- e.Counters.bytes +. float_of_int bytes;
  if is_store then e.Counters.stores <- e.Counters.stores + 1
  else e.Counters.loads <- e.Counters.loads + 1

let charge_lib st (e : Counters.entry) (w : Work.t) =
  let m = st.cfg.machine in
  let comp =
    (Float.max 0. (w.Work.flops -. w.Work.divs) *. st.flop_cycles)
    +. (w.Work.divs *. m.Machine.div_latency)
    +. (w.Work.iops *. st.iop_cycles)
  in
  (* Library working sets are small; accesses are L1-resident. *)
  let mem = Work.mem_accesses w *. st.load_base in
  e.Counters.cycles <- e.Counters.cycles +. comp +. mem;
  e.Counters.comp_cycles <- e.Counters.comp_cycles +. comp;
  e.Counters.mem_cycles <- e.Counters.mem_cycles +. mem;
  e.Counters.instrs <- e.Counters.instrs +. Work.ops w;
  e.Counters.flops <- e.Counters.flops +. w.Work.flops;
  e.Counters.bytes <- e.Counters.bytes +. Work.bytes w

(* --- statement compilation -------------------------------------------- *)

(* A compiled statement runs against a frame, charging its costs to the
   counters entry it was compiled under. *)
type cstmt = frame -> unit

let rec compile_block (scope : scope) ~(declared : Ast.array_decl list)
    ~(entry : Counters.entry) (b : Ast.block) : cstmt =
  let stmts =
    Array.of_list (List.map (compile_stmt scope ~declared ~entry) b)
  in
  let n = Array.length stmts in
  fun frame ->
    for i = 0 to n - 1 do
      (Array.unsafe_get stmts i) frame
    done

and compile_stmt (scope : scope) ~declared ~(entry : Counters.entry)
    (s : Ast.stmt) : cstmt =
  let st = scope.st in
  match s.Ast.kind with
  | Ast.Comp { flops; iops; divs; vec } ->
    let m = st.cfg.machine in
    let lanes = float_of_int (max 1 (min vec m.Machine.vector_width)) in
    let vec_eff = 1. +. ((lanes -. 1.) *. m.Machine.vec_efficiency) in
    let cflops = compile_float scope flops
    and ciops = compile_float scope iops
    and cdivs = compile_float scope divs in
    fun frame ->
      let fl = cflops frame and io = ciops frame and dv = cdivs frame in
      let c =
        (Float.max 0. (fl -. dv) *. st.flop_cycles /. vec_eff)
        +. (dv *. m.Machine.div_latency)
        +. (io *. st.iop_cycles)
      in
      entry.Counters.cycles <- entry.Counters.cycles +. c;
      entry.Counters.comp_cycles <- entry.Counters.comp_cycles +. c;
      entry.Counters.instrs <- entry.Counters.instrs +. fl +. io;
      entry.Counters.flops <- entry.Counters.flops +. fl
  | Ast.Mem { loads; stores } ->
    let compile_access is_store (a : Ast.access) : cstmt =
      match find_array_cell st ~func:scope.func ~declared a.Ast.array with
      | None ->
        (* Undeclared array: pessimistic memory access. *)
        fun _ ->
          entry.Counters.cycles <- entry.Counters.cycles +. st.mem_penalty;
          entry.Counters.mem_cycles <-
            entry.Counters.mem_cycles +. st.mem_penalty;
          entry.Counters.instrs <- entry.Counters.instrs +. 1.
      | Some cell ->
        let idx = Array.of_list (List.map (compile_int scope) a.Ast.index) in
        let n = Array.length idx in
        fun frame ->
          (match !cell with
          | None -> ()
          | Some info ->
            let flat = ref 0 in
            for k = 0 to n - 1 do
              if k < Array.length info.dims then begin
                let d = Array.unsafe_get info.dims k in
                let i = (Array.unsafe_get idx k) frame in
                let i = if i >= 0 && i < d then i else ((i mod d) + d) mod d in
                flat := (!flat * d) + i
              end
            done;
            charge_access st entry ~is_store
              (info.base + (!flat * info.elem))
              info.elem)
    in
    let all =
      Array.of_list
        (List.map (compile_access false) loads
        @ List.map (compile_access true) stores)
    in
    let n = Array.length all in
    fun frame ->
      for i = 0 to n - 1 do
        (Array.unsafe_get all i) frame
      done
  | Ast.Let (v, e) ->
    let slot = Hashtbl.find scope.slots v in
    let ce = compile_expr scope e in
    fun frame ->
      entry.Counters.cycles <- entry.Counters.cycles +. st.iop_cycles;
      entry.Counters.comp_cycles <-
        entry.Counters.comp_cycles +. st.iop_cycles;
      entry.Counters.instrs <- entry.Counters.instrs +. 1.;
      Array.unsafe_set frame slot (ce frame)
  | Ast.If { cond; then_; else_ } ->
    let arm which body =
      if body = [] then None
      else begin
        let e = Counters.entry st.counters (Block_id.Arm (s.Ast.sid, which)) in
        let cb = compile_block scope ~declared ~entry:e body in
        Some
          (fun frame ->
            e.Counters.execs <- e.Counters.execs + 1;
            cb frame)
      end
    in
    let cthen = arm true then_ and celse = arm false else_ in
    let ctaken : frame -> bool =
      match cond with
      | Ast.Cexpr e ->
        let ce = compile_expr scope e in
        fun frame -> Value.truthy (ce frame)
      | Ast.Cdata { name; p } ->
        let cp = compile_prob scope p in
        let cell = branch_cell st name in
        fun frame ->
          let outcome = Rng.bernoulli st.rng (cp frame) in
          tally_branch cell outcome;
          outcome
    in
    fun frame ->
      entry.Counters.cycles <- entry.Counters.cycles +. st.iop_cycles;
      entry.Counters.instrs <- entry.Counters.instrs +. 1.;
      let branch = if ctaken frame then cthen else celse in
      (match branch with Some run -> run frame | None -> ())
  | Ast.For { var; lo; hi; step; body } ->
    let slot = Hashtbl.find scope.slots var in
    let clo = compile_float scope lo
    and chi = compile_float scope hi
    and cstep = compile_float scope step in
    let e = Counters.entry st.counters (Block_id.Loop s.Ast.sid) in
    let cb = compile_block scope ~declared ~entry:e body in
    let overhead = 2. *. st.iop_cycles in
    fun frame ->
      let lo_v = clo frame and hi_v = chi frame and st_v = cstep frame in
      if st_v > 0. then begin
        let integral = Float.is_integer lo_v && Float.is_integer st_v in
        try
          let x = ref lo_v in
          while !x <= hi_v +. 1e-12 do
            Array.unsafe_set frame slot
              (if integral then Value.I (int_of_float !x) else Value.F !x);
            e.Counters.execs <- e.Counters.execs + 1;
            e.Counters.cycles <- e.Counters.cycles +. overhead;
            e.Counters.instrs <- e.Counters.instrs +. 2.;
            (try cb frame with Cont -> ());
            x := !x +. st_v
          done
        with Brk -> ()
      end
  | Ast.While { name; p_continue; max_iter; body } ->
    let cp = compile_prob scope p_continue in
    let cmax = compile_int scope max_iter in
    let e = Counters.entry st.counters (Block_id.Loop s.Ast.sid) in
    let cb = compile_block scope ~declared ~entry:e body in
    let cell = loop_cell st name in
    let overhead = 2. *. st.iop_cycles in
    fun frame ->
      let nmax = cmax frame in
      let iters = ref 0 in
      (try
         let continue = ref (nmax > 0) in
         while !continue do
           incr iters;
           e.Counters.execs <- e.Counters.execs + 1;
           e.Counters.cycles <- e.Counters.cycles +. overhead;
           e.Counters.instrs <- e.Counters.instrs +. 2.;
           (try cb frame with Cont -> ());
           if !iters >= nmax then continue := false
           else continue := Rng.bernoulli st.rng (cp frame)
         done
       with Brk -> ());
      let i, n = !cell in
      cell := (i + !iters, n + 1)
  | Ast.Call (fname, args) -> (
    match Ast.find_func st.program fname with
    | exception Not_found -> fun _ -> ()
    | callee ->
      let cargs = Array.of_list (List.map (compile_expr scope) args) in
      (* The callee is compiled lazily (and memoized per call site) to
         keep recursion in the compiler simple; skeleton call graphs
         are acyclic (validated). *)
      let compiled = lazy (compile_func st callee) in
      let e = Counters.entry st.counters (Block_id.Fn fname) in
      let overhead = 4. *. st.iop_cycles in
      fun frame ->
        let nslots, run = Lazy.force compiled in
        let callee_frame = Array.make nslots (Value.I 0) in
        Array.iteri
          (fun i c -> if i < nslots then callee_frame.(i) <- c frame)
          cargs;
        e.Counters.execs <- e.Counters.execs + 1;
        e.Counters.cycles <- e.Counters.cycles +. overhead;
        e.Counters.instrs <- e.Counters.instrs +. 4.;
        (try run callee_frame with Ret -> ()))
  | Ast.Lib { name; args = _; scale } ->
    let e = Counters.entry st.counters (Block_id.Libc s.Ast.sid) in
    let cscale = compile_float scope scale in
    let per_call =
      match Libmix.find st.cfg.libmix name with
      | Some p -> p.Libmix.per_call
      | None -> Work.zero
    in
    fun frame ->
      e.Counters.execs <- e.Counters.execs + 1;
      let s_v = Float.max 0. (cscale frame) in
      charge_lib st e (Work.scale s_v per_call)
  | Ast.Return -> fun _ -> raise Ret
  | Ast.Break { name; p } ->
    let cp = compile_prob scope p in
    let cell = branch_cell st name in
    fun frame ->
      let outcome = Rng.bernoulli st.rng (cp frame) in
      tally_branch cell outcome;
      entry.Counters.cycles <- entry.Counters.cycles +. st.iop_cycles;
      entry.Counters.instrs <- entry.Counters.instrs +. 1.;
      if outcome then raise Brk
  | Ast.Continue { name; p } ->
    let cp = compile_prob scope p in
    let cell = branch_cell st name in
    fun frame ->
      let outcome = Rng.bernoulli st.rng (cp frame) in
      tally_branch cell outcome;
      entry.Counters.cycles <- entry.Counters.cycles +. st.iop_cycles;
      entry.Counters.instrs <- entry.Counters.instrs +. 1.;
      if outcome then raise Cont

(* Returns the frame size and the compiled body (which also lays out
   the function's arrays on first execution). *)
and compile_func (st : state) (f : Ast.func) : int * cstmt =
  let slots = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace slots v i) (local_vars f);
  let scope = { func = f.Ast.fname; slots; st } in
  let entry = Counters.entry st.counters (Block_id.Fn f.Ast.fname) in
  let body = compile_block scope ~declared:f.Ast.arrays ~entry f.Ast.body in
  let nslots = max 1 (slot_count scope) in
  ( nslots,
    fun frame ->
      do_layout st ~func:f.Ast.fname frame f.Ast.arrays scope;
      body frame )

(* --- results --------------------------------------------------------- *)

let hints_of st =
  let h = ref Hints.empty in
  Hashtbl.iter
    (fun name cell ->
      let taken, total = !cell in
      let stat = { Hints.taken; total } in
      h :=
        { !h with Hints.branches = Hints.Smap.add name stat !h.Hints.branches })
    st.branch_tally;
  Hashtbl.iter
    (fun name cell ->
      let iters, entries = !cell in
      let stat = { Hints.iters; entries } in
      h := { !h with Hints.loops = Hints.Smap.add name stat !h.Hints.loops })
    st.loop_tally;
  !h

let blockstats_of st (bst : Bst.t) =
  let cps = Machine.cycles_per_sec st.cfg.machine in
  Counters.entries st.counters
  |> List.filter (fun (e : Counters.entry) -> e.Counters.execs > 0)
  |> List.map (fun (e : Counters.entry) ->
         let time = e.Counters.cycles /. cps in
         let tc = e.Counters.comp_cycles /. cps in
         let tm = e.Counters.mem_cycles /. cps in
         let bound =
           if tc > tm *. 1.25 then Skope_hw.Roofline.Compute_bound
           else if tm > tc *. 1.25 then Skope_hw.Roofline.Memory_bound
           else Skope_hw.Roofline.Balanced
         in
         let loads = float_of_int e.Counters.loads
         and stores = float_of_int e.Counters.stores in
         let work =
           {
             Work.zero with
             Work.flops = e.Counters.flops;
             loads;
             stores;
             lbytes = e.Counters.bytes;
             iops =
               Float.max 0.
                 (e.Counters.instrs -. e.Counters.flops -. loads -. stores);
           }
         in
         Skope_analysis.Blockstat.make ~block:e.Counters.block
           ~name:(Bst.block_name bst e.Counters.block)
           ~time ~tc ~tm
           ~enr:(float_of_int e.Counters.execs)
           ~static_size:(Bst.block_size bst e.Counters.block)
           ~bound ~work ())
  |> Skope_analysis.Blockstat.rank

(** Execute [program] with the given [inputs] bound as global
    constants.  Returns the measured per-block profile, total time, and
    the hardware-independent profiling hints. *)
let run ?(config = default_config ()) ~inputs (program : Ast.program) : result
    =
  Skope_telemetry.Span.with_ ~name:"simulate" (fun () ->
  let m = config.machine in
  let globals = Array.of_list (List.map snd inputs) in
  let global_index = Hashtbl.create 16 in
  List.iteri (fun i (name, _) -> Hashtbl.replace global_index name i) inputs;
  let st =
    {
      cfg = config;
      program;
      globals;
      global_index;
      l1 = Cache.create m.Machine.l1;
      l2 = Cache.create m.Machine.l2;
      rng = Rng.create config.seed;
      counters = Counters.create ();
      layouts = Hashtbl.create 16;
      cursor = 4096;
      branch_tally = Hashtbl.create 16;
      loop_tally = Hashtbl.create 16;
      flop_cycles =
        1.
        /. (m.Machine.flop_issue_per_cycle *. if m.Machine.fma then 2. else 1.);
      iop_cycles = 1. /. m.Machine.issue_width;
      load_base = 1. /. m.Machine.issue_width;
      l2_penalty = m.Machine.l2.latency_cycles /. m.Machine.mlp;
      mem_penalty = m.Machine.mem_latency_cycles /. m.Machine.mlp;
    }
  in
  let entry_fn = Ast.entry_func program in
  (* Lay out the global arrays using the input bindings. *)
  let global_scope = { func = ""; slots = Hashtbl.create 1; st } in
  do_layout st ~func:"" [||] program.Ast.globals global_scope;
  let nslots, run_entry = compile_func st entry_fn in
  let e = Counters.entry st.counters (Block_id.Fn entry_fn.Ast.fname) in
  e.Counters.execs <- e.Counters.execs + 1;
  let entry_frame = Array.make nslots (Value.I 0) in
  (* Entry parameters have no call site: bind them from the input
     bindings by name (they occupy the first slots — [local_vars] lists
     parameters before loop/let variables), matching the analytic
     model, which resolves them against the same inputs.  A parameter
     with no matching input stays 0, like any uninitialized local. *)
  List.iteri
    (fun i v ->
      match Hashtbl.find_opt global_index v with
      | Some gi when i < nslots -> entry_frame.(i) <- globals.(gi)
      | _ -> ())
    entry_fn.Ast.params;
  (try run_entry entry_frame with Ret -> ());
  let bst = Bst.build program in
  let total_cycles = Counters.total_cycles st.counters in
  let module Span = Skope_telemetry.Span in
  Span.count "sim_l1_hits" (float_of_int (Cache.hits st.l1));
  Span.count "sim_l1_misses" (float_of_int (Cache.misses st.l1));
  Span.count "sim_l2_hits" (float_of_int (Cache.hits st.l2));
  Span.count "sim_l2_misses" (float_of_int (Cache.misses st.l2));
  {
    machine = m;
    blocks = blockstats_of st bst;
    total_cycles;
    total_time = total_cycles /. Machine.cycles_per_sec m;
    hints = hints_of st;
    counters = st.counters;
  })
