(** Deterministic corpus batches: generate [count] cases for a seed,
    optionally in parallel, and write them to a directory with a
    manifest.

    Parallelism never changes the result: each case derives its own
    stream from [(seed, index)] ({!Gen.case_seed}), so the corpus is
    byte-identical for every [jobs] value — a property the test suite
    pins. *)

(** [generate ?config ?archetype ?jobs ~seed ~count ()] builds cases
    [0 .. count-1] in index order. *)
val generate :
  ?config:Gen.config ->
  ?archetype:Archetype.t ->
  ?jobs:int ->
  seed:int64 ->
  count:int ->
  unit ->
  Gen.case list

(** Run [f] over [0 .. n-1] on [jobs] domains (work-stealing by
    atomic counter); results are returned in index order.  Exposed
    for {!Fuzzcheck}. *)
val parmap : jobs:int -> (int -> 'a) -> int -> 'a list

(** File name of a case inside a corpus directory,
    [<name>.skope]. *)
val file_of_case : Gen.case -> string

(** JSON manifest: schema tag, seed, count, config echo, and one
    entry per case (file, index, archetype, case seed, program name,
    inputs). *)
val manifest_json :
  ?archetype:Archetype.t -> config:Gen.config -> seed:int64 -> Gen.case list ->
  Skope_report.Json.t

(** Write every case plus [corpus.json] into [dir] (created,
    including parents, when missing).  Returns the written case file
    names in index order. *)
val write :
  ?archetype:Archetype.t -> config:Gen.config -> seed:int64 -> dir:string ->
  Gen.case list -> string list

(** Load a corpus manifest back: [(file, program name, inputs)] per
    case, for loadgen replay.  Errors with a readable message when
    the manifest is missing or malformed. *)
val read_manifest :
  dir:string ->
  ((string * string * (string * Skope_bet.Value.t) list) list, string) result
