(** Differential fuzzing harness over generated skeletons.

    Every case must pass five gates:

    + {b round-trip}: parse(pretty(p)) is structurally identical to p
      (modulo load/store fission, {!Skope_skeleton.Equal}), and
      pretty-printing the reparse reproduces the exact text;
    + {b lint}: {!Skope_lint.Engine.run} neither raises nor reports an
      [Error]-severity finding (the generator promises error-free
      programs);
    + {b audit}: {!Skope_lint.Audit.run} neither raises nor reports an
      [Error] (generated comm exchanges are phased, so A007 must stay
      quiet);
    + {b engine parity}: the tree walk ({!Skope_analysis.Perf}) and the
      arena engine ({!Skope_analysis.Arena_price}) agree bit-for-bit
      on total time and ranked block statistics;
    + {b sim bounds}: {!Skope_sim.Interp} executes the program; both
      the simulated and the projected times must be finite and
      positive, and their ratio within a (generous) factor — the
      analytic model and the simulator may disagree on constants but
      never catastrophically.

    A failing case carries a one-line reproducer command that
    regenerates and re-checks exactly that case. *)

type gate = Roundtrip | Lint | Audit | Parity | Sim

val gate_name : gate -> string

(** Number of gates every case runs through. *)
val n_gates : int

type failure = {
  index : int;
  archetype : Archetype.t;
  gate : gate;
  detail : string;
  repro : string;
}

type report = {
  total : int;
  gates_per_case : int;
  failures : failure list;  (** ordered by case index, then gate *)
  by_archetype : (Archetype.t * int) list;  (** cases per archetype *)
}

(** The one-line command that regenerates case [index]:
    [skope fuzz --seed S --index I ...] plus whichever config flags
    differ from the defaults.  [archetype] must be passed iff the run
    forced one (the forced and mixed streams differ). *)
val repro_command :
  ?config:Gen.config -> ?archetype:Archetype.t -> seed:int64 -> index:int ->
  unit -> string

(** Check one case against every gate; returns its failures (empty =
    clean).  [sim_bound] is the allowed analyze/sim time ratio in
    either direction (default 1e4). *)
val check_case :
  ?sim_bound:float -> repro:string -> Gen.case -> failure list

(** Generate and check cases [0 .. count-1].  [jobs] parallelizes
    across domains; the report is deterministic for fixed
    [(seed, config, archetype, count)] regardless of [jobs]. *)
val run :
  ?config:Gen.config ->
  ?archetype:Archetype.t ->
  ?jobs:int ->
  ?sim_bound:float ->
  seed:int64 ->
  count:int ->
  unit ->
  report

val report_json : seed:int64 -> report -> Skope_report.Json.t
