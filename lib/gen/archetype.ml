type t = Compute | Memory | Branchy | Comm

let all = [ Compute; Memory; Branchy; Comm ]

let to_string = function
  | Compute -> "compute"
  | Memory -> "memory"
  | Branchy -> "branchy"
  | Comm -> "comm"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "compute" -> Ok Compute
  | "memory" | "mem" -> Ok Memory
  | "branchy" -> Ok Branchy
  | "comm" | "comm-heavy" -> Ok Comm
  | other ->
    Error
      (Fmt.str "unknown archetype %S (expected compute|memory|branchy|comm)"
         other)

let default_mix = [ (Compute, 0.3); (Memory, 0.3); (Branchy, 0.25); (Comm, 0.15) ]

let mix_of_string s =
  let parts = String.split_on_char ',' s |> List.filter (fun p -> String.trim p <> "") in
  let rec go acc = function
    | [] ->
      let acc = List.rev acc in
      if List.exists (fun (_, w) -> w > 0.) acc then Ok acc
      else Error "archetype mix needs at least one positive weight"
    | p :: rest -> (
      match String.index_opt p '=' with
      | None -> Error (Fmt.str "bad mix entry %S (expected name=weight)" p)
      | Some i -> (
        let name = String.sub p 0 i in
        let w = String.sub p (i + 1) (String.length p - i - 1) in
        match (of_string name, float_of_string_opt (String.trim w)) with
        | Error e, _ -> Error e
        | _, None -> Error (Fmt.str "bad mix weight %S" w)
        | Ok _, Some f when f < 0. || not (Float.is_finite f) ->
          Error (Fmt.str "mix weight %g out of range" f)
        | Ok a, Some f -> go ((a, f) :: acc) rest))
  in
  go [] parts

let pp_mix ppf mix =
  Fmt.(list ~sep:(any ",") (fun ppf (a, w) -> pf ppf "%s=%g" (to_string a) w))
    ppf mix
