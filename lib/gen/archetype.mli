(** Workload archetypes for the skeleton generator.

    Mirrors the synthetic workload families co-design studies sweep:
    compute-bound kernels, memory-bound streaming/stencil code,
    branch-dominated control flow, and communication-heavy SPMD
    exchanges.  Each archetype biases the generator's statement mix,
    nesting, and input set. *)

type t = Compute | Memory | Branchy | Comm

val all : t list
val to_string : t -> string

(** Case-insensitive; accepts the canonical names plus the aliases
    [mem] and [comm-heavy]. *)
val of_string : string -> (t, string) result

(** Default corpus mix (weights; normalized by the picker). *)
val default_mix : (t * float) list

(** Parse a mix spec like ["compute=4,memory=3,branchy=2,comm=1"].
    Weights are non-negative floats; at least one must be positive. *)
val mix_of_string : string -> ((t * float) list, string) result

val pp_mix : (t * float) list Fmt.t
