(** Seeded random skeleton generator.

    Fully deterministic: a [(master seed, index, config)] triple maps
    to exactly one generated case, independent of generation order or
    parallelism — each case derives its own SplitMix64 stream with
    {!case_seed}.  Generated programs are constructed to pass the
    linter (no [Error]- or [Warning]-severity findings at the recorded
    inputs): loop bounds guarantee at least one trip, array indices
    stay provably in bounds under interval analysis, branch conditions
    inside loops remain undecidable, data-dependent constructs carry
    declared probabilities, comm exchanges are phased (deadlock-free)
    and volume-balanced.  The differential fuzz harness
    ({!Fuzzcheck}) then checks the *analysis stack* against this
    corpus, not the generator. *)

type config = {
  depth : int;  (** max loop/branch nesting below a function body *)
  max_stmts : int;  (** max statements drawn per block *)
  stmt_budget : int;  (** soft cap on statements per program *)
  trip_lo : int;  (** literal-trip loop range (inclusive) *)
  trip_hi : int;
  size_lo : int;  (** range of the [n] input (array extents) *)
  size_hi : int;
  ranks : int;  (** max rank count for comm skeletons (rounded even) *)
  funcs : int;  (** max helper functions *)
  sim_iters : int;  (** cap on the concrete iteration-space product,
                        so {!Skope_sim.Interp} stays fast *)
  mix : (Archetype.t * float) list;  (** corpus archetype weights *)
}

val default : config

(** Clamp every field into its documented range (e.g. [ranks] rounded
    up to an even value >= 2). *)
val clamp : config -> config

type case = {
  index : int;
  master_seed : int64;
  case_seed : int64;
  archetype : Archetype.t;
  name : string;  (** program name, [gen_<archetype>_<index>] *)
  program : Skope_skeleton.Ast.program;
  inputs : (string * Skope_bet.Value.t) list;
      (** concrete bindings for every entry parameter *)
}

(** Per-case stream derivation: two SplitMix64 steps over
    [master + golden * (index+1)], so neighboring indices are
    decorrelated and cases can be generated in any order or in
    parallel. *)
val case_seed : int64 -> int -> int64

(** Generate case [index] of the corpus for [seed].  [archetype]
    forces the family; otherwise it is drawn from [config.mix] (note
    the forced and mixed streams differ — a reproducer must record
    whether the archetype was forced). *)
val generate :
  ?config:config -> ?archetype:Archetype.t -> seed:int64 -> index:int -> unit -> case

(** The source text emitted for a case: a provenance comment header
    (seed, index, archetype, inputs) followed by the pretty-printed
    program. *)
val to_source : case -> string
