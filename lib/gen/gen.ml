(** Seeded random skeleton generator.  See the mli for the
    determinism and lint-cleanliness contracts; the shape choices
    below are all drawn from one SplitMix64 stream per case. *)

open Skope_skeleton
module Rng = Skope_sim.Rng
module Value = Skope_bet.Value
module B = Builder

type config = {
  depth : int;
  max_stmts : int;
  stmt_budget : int;
  trip_lo : int;
  trip_hi : int;
  size_lo : int;
  size_hi : int;
  ranks : int;
  funcs : int;
  sim_iters : int;
  mix : (Archetype.t * float) list;
}

let default =
  {
    depth = 3;
    max_stmts = 4;
    stmt_budget = 96;
    trip_lo = 2;
    trip_hi = 24;
    size_lo = 8;
    size_hi = 64;
    ranks = 4;
    funcs = 2;
    sim_iters = 100_000;
    mix = Archetype.default_mix;
  }

let clamp c =
  let depth = max 1 (min 6 c.depth) in
  let max_stmts = max 1 (min 8 c.max_stmts) in
  let stmt_budget = max 8 c.stmt_budget in
  (* trip >= 2 keeps loop-variable intervals wide enough that branch
     conditions on them stay undecidable (no L005). *)
  let trip_lo = max 2 c.trip_lo in
  let trip_hi = max trip_lo c.trip_hi in
  (* size >= 4 leaves room for stencil bounds and n/2 sub-ranges. *)
  let size_lo = max 4 c.size_lo in
  let size_hi = max size_lo c.size_hi in
  let ranks = max 2 (c.ranks + (c.ranks land 1)) in
  let funcs = max 0 (min 4 c.funcs) in
  let sim_iters = max 100 c.sim_iters in
  { c with depth; max_stmts; stmt_budget; trip_lo; trip_hi; size_lo; size_hi;
    ranks; funcs; sim_iters }

type case = {
  index : int;
  master_seed : int64;
  case_seed : int64;
  archetype : Archetype.t;
  name : string;
  program : Ast.program;
  inputs : (string * Value.t) list;
}

let golden = 0x9E3779B97F4A7C15L

let case_seed master index =
  let r =
    Rng.create Int64.(add master (mul golden (of_int (index + 1))))
  in
  ignore (Rng.next_int64 r);
  Rng.next_int64 r

(* --- draw helpers ----------------------------------------------------- *)

type st = {
  rng : Rng.t;
  cfg : config;
  n_val : int;  (** concrete value of the [n] input *)
  mutable fresh : int;
  mutable budget : int;  (** remaining statement allowance *)
}

let fresh st prefix =
  let i = st.fresh in
  st.fresh <- i + 1;
  Fmt.str "%s%d" prefix i

let pick st xs = List.nth xs (Rng.int st.rng (List.length xs))
let range st lo hi = lo + Rng.int st.rng (hi - lo + 1)
let chance st p = Rng.bernoulli st.rng p

(* Probabilities on a 0.05 grid: short to print, exact to reparse. *)
let prob st lo hi =
  let k = range st (int_of_float (Float.ceil (lo /. 0.05)))
      (int_of_float (Float.floor (hi /. 0.05))) in
  float_of_string (Fmt.str "%.2f" (float_of_int k *. 0.05))

(* --- leaves ----------------------------------------------------------- *)

let comp_stmt st ~(arch : Archetype.t) =
  let heavy = match arch with Compute -> chance st 0.8 | _ -> chance st 0.25 in
  let flops =
    if heavy then
      if chance st 0.2 then B.(var "n" * int (range st 1 4))
      else B.int (range st 8 64)
    else B.int (range st 1 8)
  in
  let iops = if chance st 0.5 then B.int (range st 1 16) else B.int 0 in
  let divs =
    if heavy && chance st 0.15 then B.int (range st 1 2) else B.int 0
  in
  let vec = pick st [ 1; 1; 1; 2; 4; 8 ] in
  B.comp ~flops ~iops ~divs ~vec ()

(* [idxs] are expressions provably in [0, n-1] in the current scope;
   every array extent is n, so any of them indexes any dimension. *)
let access st ~arrays ~idxs =
  let aname, ndims = pick st arrays in
  B.a_ aname (List.init ndims (fun _ -> pick st idxs))

let mem_stmt st ~arch ~arrays ~idxs =
  if arrays = [] then comp_stmt st ~arch
  else
    let accs n = List.init n (fun _ -> access st ~arrays ~idxs) in
    let r = Rng.float st.rng in
    if r < 0.45 then B.load (accs (range st 1 2))
    else if r < 0.75 then B.store (accs 1)
    else
      (* Combined load+store: the pretty-printer fissions this into
         two lines, exercising the round-trip normalization. *)
      let label = if chance st 0.3 then Some (fresh st "m") else None in
      B.stmt ?label (Ast.Mem { loads = accs (range st 1 2); stores = accs 1 })

let lib_stmt st ~(arch : Archetype.t) =
  let name =
    match arch with
    | Memory -> pick st [ "memcpy_elem"; "memcpy_elem"; "rand" ]
    | _ -> pick st [ "sqrt"; "exp"; "log"; "sincos"; "rand" ]
  in
  let scale =
    if chance st 0.4 then B.var "n" else B.int (range st st.cfg.trip_lo st.cfg.trip_hi)
  in
  B.lib ~scale name

let leaf st ~arch ~arrays ~idxs =
  let open Archetype in
  let r = Rng.float st.rng in
  match arch with
  | Compute ->
    if r < 0.6 then comp_stmt st ~arch
    else if r < 0.8 then lib_stmt st ~arch
    else mem_stmt st ~arch ~arrays ~idxs
  | Memory ->
    if r < 0.6 then mem_stmt st ~arch ~arrays ~idxs
    else if r < 0.8 then lib_stmt st ~arch
    else comp_stmt st ~arch
  | Branchy | Comm ->
    if r < 0.6 then comp_stmt st ~arch else mem_stmt st ~arch ~arrays ~idxs

(* --- structure -------------------------------------------------------- *)

(* [iters] is the product of concrete trip counts enclosing the
   current block: the simulator executes real iterations, so loops are
   only opened while the product stays under [sim_iters].
   [cond_vars] are loop variables whose interval spans >= 2 values —
   safe to branch on without the condition becoming statically
   decidable. *)
type ctx = {
  arch : Archetype.t;
  arrays : (string * int) list;
  depth : int;
  idxs : Ast.expr list;
  cond_vars : string list;
  in_for : bool;
  iters : int;
}

let rec gen_block st (c : ctx) =
  let k = range st 1 st.cfg.max_stmts in
  let stmts =
    List.concat (List.init k (fun _ -> gen_stmt st c))
  in
  if stmts = [] then [ leaf st ~arch:c.arch ~arrays:c.arrays ~idxs:c.idxs ]
  else stmts

and gen_stmt st (c : ctx) =
  st.budget <- st.budget - 1;
  let structural_p =
    if c.depth <= 0 || st.budget <= 0 then 0.
    else match c.arch with Archetype.Branchy -> 0.55 | _ -> 0.45
  in
  if chance st structural_p then gen_structural st c
  else
    let l = leaf st ~arch:c.arch ~arrays:c.arrays ~idxs:c.idxs in
    (* Occasional probabilistic early exit inside for loops. *)
    if c.in_for && chance st 0.08 then
      let p = prob st 0.05 0.2 in
      let exit_ =
        if chance st 0.5 then B.break_ (fresh st "b") (B.float p)
        else B.continue_ (fresh st "c") (B.float p)
      in
      [ l; exit_ ]
    else [ l ]

and gen_structural st (c : ctx) =
  let fits trips = c.iters * trips <= st.cfg.sim_iters in
  let deeper = { c with depth = c.depth - 1 } in
  let choices =
    List.concat
      [
        (if fits st.n_val && c.arrays <> [] then [ `Loop_plain; `Loop_plain ] else []);
        (if fits st.n_val && c.arrays <> [] then [ `Loop_stencil ] else []);
        (if fits (st.n_val / 2) && c.arrays <> [] then [ `Loop_half ] else []);
        (if fits st.cfg.trip_hi then [ `Loop_trip; `Loop_trip ] else []);
        (if c.cond_vars <> [] then [ `If_cexpr; `If_cexpr ] else []);
        (* Stochastic constructs only where the enclosing loops sample
           them enough times for the simulated mean to converge on the
           model's expectation: a one-shot [if data prob 0.7] whose
           heavy arm isn't taken makes the model/sim ratio unbounded
           (first fuzz campaign, seed 42 case 71). *)
        (if c.iters >= 8 then
           match c.arch with
           | Archetype.Branchy -> [ `If_data; `If_data; `While ]
           | _ -> [ `If_data ]
         else []);
      ]
  in
  if choices = [] then
    (* Nothing structural fits here (no arrays, tight iteration
       budget, too few samples for stochastic constructs): degrade to
       a leaf rather than break the [sim_iters]/variance promises. *)
    [ leaf st ~arch:c.arch ~arrays:c.arrays ~idxs:c.idxs ]
  else
  match pick st choices with
  | `Loop_plain ->
    let v = fresh st "i" in
    let body =
      gen_block st
        { deeper with
          idxs = B.var v :: c.idxs;
          cond_vars = v :: c.cond_vars;
          in_for = true;
          iters = c.iters * st.n_val;
        }
    in
    [ B.for_ v (B.int 0) B.(var "n" - int 1) body ]
  | `Loop_stencil ->
    let v = fresh st "i" in
    let body =
      gen_block st
        { deeper with
          idxs = B.(var v + int 1) :: B.var v :: c.idxs;
          cond_vars = v :: c.cond_vars;
          in_for = true;
          iters = c.iters * st.n_val;
        }
    in
    [ B.for_ v (B.int 0) B.(var "n" - int 2) body ]
  | `Loop_half ->
    (* let h = n / 2; for v = 0 to h - 1: exercises Let-bound loop
       limits; v stays within [0, n/2-1], in bounds for extent n. *)
    let h = fresh st "h" in
    let v = fresh st "i" in
    let body =
      gen_block st
        { deeper with
          idxs = B.var v :: c.idxs;
          cond_vars = v :: c.cond_vars;
          in_for = true;
          iters = c.iters * max 1 (st.n_val / 2);
        }
    in
    [ B.let_ h B.(var "n" / int 2); B.for_ v (B.int 0) B.(var h - int 1) body ]
  | `Loop_trip ->
    let v = fresh st "t" in
    let trips = range st st.cfg.trip_lo st.cfg.trip_hi in
    let body =
      gen_block st
        { deeper with
          cond_vars = v :: c.cond_vars;
          in_for = true;
          iters = c.iters * trips;
        }
    in
    [ B.for_ v (B.int 1) (B.int trips) body ]
  | `If_cexpr ->
    let v = B.var (pick st c.cond_vars) in
    let cond =
      match Rng.int st.rng 4 with
      | 0 -> B.(v % int 2 == int 0)
      | 1 -> B.(v % int 3 != int 0)
      | 2 -> B.(v < var "n" / int 2)
      | _ -> B.(v > int 1)
    in
    let then_ = gen_block st deeper in
    let else_ = if chance st 0.5 then gen_block st deeper else [] in
    [ B.if_ cond then_ else_ ]
  | `If_data ->
    let s = fresh st "d" in
    let p = prob st 0.1 0.9 in
    let then_ = gen_block st deeper in
    let else_ = if chance st 0.4 then gen_block st deeper else [] in
    [ B.if_data s (B.float p) then_ else_ ]
  | `While ->
    let s = fresh st "w" in
    let p = prob st 0.3 0.85 in
    let cap = range st 4 16 in
    let body =
      gen_block st { deeper with in_for = false; iters = c.iters * cap }
    in
    [ B.while_ s ~p_continue:(B.float p) ~max_iter:(B.int cap) body ]

(* --- comm exchange ---------------------------------------------------- *)

(* Phased even/odd ring exchange: in phase [ph], ranks with
   [(rank + ph) mod 2 = 0] exchange send-first with their right
   neighbor while the others exchange recv-first with their left —
   deadlock-free over an even ring (A007-clean) and volume-balanced
   (L010-clean: each arm posts one send and one recv of equal size).
   The phase variable keeps the parity condition undecidable for the
   linter (rank is a concrete input, ph spans [0,1]). *)
let exchange_block st =
  let vol = B.(var "n" * int (pick st [ 4; 8 ])) in
  let right = B.((var "rank" + int 1) % var "nranks") in
  let left = B.((var "rank" - int 1 + var "nranks") % var "nranks") in
  let ph = fresh st "ph" in
  B.for_ ph (B.int 0) (B.int 1)
    [
      B.if_
        B.((var "rank" + var ph) % int 2 == int 0)
        [ B.lib ~args:[ right ] ~scale:vol "send";
          B.lib ~args:[ right ] ~scale:vol "recv" ]
        [ B.lib ~args:[ left ] ~scale:vol "recv";
          B.lib ~args:[ left ] ~scale:vol "send" ];
    ]

(* --- program assembly ------------------------------------------------- *)

let gen_arrays st ~(arch : Archetype.t) =
  let count =
    match arch with Memory -> range st 2 3 | Comm -> 1 | _ -> range st 1 2
  in
  List.init count (fun i ->
      let name = String.make 1 (Char.chr (Char.code 'A' + i)) in
      let ndims =
        match arch with Memory -> (if chance st 0.3 then 2 else 1) | _ -> 1
      in
      let elem_bytes =
        (* mostly f64/f32; occasionally a 2-byte width to exercise the
           generic f16 element-type round-trip *)
        pick st [ 8; 8; 8; 4; 4; (if chance st 0.5 then 2 else 8) ]
      in
      (name, ndims, elem_bytes))

let generate ?(config = default) ?archetype ~seed ~index () =
  let cfg = clamp config in
  let cs = case_seed seed index in
  let rng = Rng.create cs in
  let arch =
    match archetype with
    | Some a -> a
    | None ->
      let total = List.fold_left (fun a (_, w) -> a +. w) 0. cfg.mix in
      let x = Rng.float rng *. total in
      let rec go acc = function
        | [] -> fst (List.hd cfg.mix)
        | (a, w) :: rest -> if x < acc +. w || rest = [] then a else go (acc +. w) rest
      in
      go 0. (List.filter (fun (_, w) -> w > 0.) cfg.mix)
  in
  let n_val = 0 in
  let st = { rng; cfg; n_val; fresh = 0; budget = cfg.stmt_budget } in
  let n_val = range st cfg.size_lo cfg.size_hi in
  let st = { st with n_val } in
  let arrays3 = gen_arrays st ~arch in
  let arrays = List.map (fun (a, nd, _) -> (a, nd)) arrays3 in
  let globals =
    List.map
      (fun (a, nd, eb) ->
        B.array ~elem_bytes:eb a (List.init nd (fun _ -> B.var "n")))
      arrays3
  in
  let is_comm = arch = Archetype.Comm in
  let params = if is_comm then [ "n"; "nranks"; "rank" ] else [ "n" ] in
  let nranks =
    if is_comm then 2 * range st 1 (cfg.ranks / 2) else 0
  in
  (* helper functions, each called exactly once from main (L007) *)
  let n_helpers = range st 0 cfg.funcs in
  let base_ctx =
    {
      arch;
      arrays;
      depth = cfg.depth;
      idxs = [ B.int 0 ];
      cond_vars = [];
      in_for = false;
      iters = 1;
    }
  in
  let helpers =
    List.init n_helpers (fun i ->
        let name = Fmt.str "kern%d" i in
        let body =
          comp_stmt st ~arch :: gen_block st { base_ctx with depth = cfg.depth - 1 }
        in
        let body = if chance st 0.2 then body @ [ B.return_ () ] else body in
        B.func ~params:[ "n" ] name body)
  in
  let calls =
    List.init n_helpers (fun i -> B.call (Fmt.str "kern%d" i) [ B.var "n" ])
  in
  let segments = gen_block st base_ctx in
  let body =
    (* leading comp guarantees nonzero modeled and simulated work *)
    (comp_stmt st ~arch:Archetype.Compute :: calls)
    @ segments
    @ (if is_comm then [ exchange_block st ] else [])
  in
  let main = B.func ~params "main" body in
  let name = Fmt.str "gen_%s_%04d" (Archetype.to_string arch) index in
  let program = B.program ~globals name (main :: helpers) in
  let inputs =
    (("n", Value.I n_val)
     :: (if is_comm then [ ("nranks", Value.I nranks); ("rank", Value.I 0) ] else []))
  in
  { index; master_seed = seed; case_seed = cs; archetype = arch; name; program;
    inputs }

let to_source case =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Fmt.str "# generated: skope gen --seed %Ld --count %d (case %d, %s)\n"
       case.master_seed (case.index + 1) case.index
       (Archetype.to_string case.archetype));
  Buffer.add_string b
    (Fmt.str "# inputs: %s\n\n"
       (String.concat ", "
          (List.map
             (fun (k, v) -> Fmt.str "%s=%s" k (Value.to_string v))
             case.inputs)));
  Buffer.add_string b (Pretty.to_string case.program);
  Buffer.contents b
